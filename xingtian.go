// Package xingtian is the public API of the XingTian deep-reinforcement-
// learning framework (Pan et al., Middleware '22): decentralized explorer
// and learner processes joined by an asynchronous, sender-initiated
// communication channel that overlaps communication with computation.
//
// Quick start (see examples/quickstart for the runnable version):
//
//	e := xingtian.NewCartPole(0)
//	spec := xingtian.SpecFor(e)
//	algF := func(seed int64) (xingtian.Algorithm, error) {
//		return xingtian.NewDQN(spec, xingtian.DefaultDQNConfig(), seed), nil
//	}
//	agF := func(id int32, seed int64) (xingtian.Agent, error) {
//		runner := xingtian.NewEnvRunner(xingtian.NewCartPole(seed), spec)
//		return xingtian.NewDQNAgent(spec, runner, seed), nil
//	}
//	report, err := xingtian.Run(xingtian.Config{
//		NumExplorers: 4,
//		RolloutLen:   100,
//		MaxSteps:     50_000,
//	}, algF, agF, 1)
//
// The framework pieces live in internal packages; this package re-exports
// the researcher-facing surface: the deployment Config/Run entry points,
// the four §4.2 interfaces (Environment via env.Env, Model via ModelSpec,
// Algorithm, Agent), the algorithm zoo (DQN, PPO, IMPALA), and the PBT
// extension.
package xingtian

import (
	"xingtian/internal/core"
	"xingtian/internal/env"
	"xingtian/internal/pbt"
)

// Deployment ------------------------------------------------------------------

// Config describes one XingTian deployment (machines, explorers, stop
// conditions). See core.Config for field documentation.
type Config = core.Config

// Report summarizes a completed run: throughput, wait/transmission
// latencies, and episode statistics.
type Report = core.Report

// Session is a running deployment under a center controller.
type Session = core.Session

// Run builds, starts, waits for, and stops a deployment.
func Run(cfg Config, algF AlgorithmFactory, agF AgentFactory, seed int64) (*Report, error) {
	return core.Run(cfg, algF, agF, seed)
}

// NewSession builds a deployment without starting it.
func NewSession(cfg Config, algF AlgorithmFactory, agF AgentFactory, seed int64) (*Session, error) {
	return core.NewSession(cfg, algF, agF, seed)
}

// Researcher interfaces (§4.2) --------------------------------------------------

// Agent is the explorer-side interface: action inference and rollout
// assembly.
type Agent = core.Agent

// Algorithm is the learner-side interface: data preparation and training.
type Algorithm = core.Algorithm

// TrainResult describes one training session.
type TrainResult = core.TrainResult

// AgentFactory builds one explorer's agent.
type AgentFactory = core.AgentFactory

// AlgorithmFactory builds the learner's algorithm.
type AlgorithmFactory = core.AlgorithmFactory

// Environments ------------------------------------------------------------------

// Env is the gym-style environment interface.
type Env = env.Env

// Obs is an environment observation (frame stack or feature vector).
type Obs = env.Obs

// MakeEnv constructs a named environment: CartPole, MountainCar, Acrobot,
// BeamRider, Breakout, Qbert, or SpaceInvaders.
func MakeEnv(name string, seed int64) (Env, error) { return env.Make(name, seed) }

// NewCartPole returns the classic CartPole-v1 control environment.
func NewCartPole(seed int64) Env { return env.NewCartPole(seed) }

// ContinuousEnv is the continuous-action environment interface.
type ContinuousEnv = env.ContinuousEnv

// NewPendulum returns the classic Pendulum-v1 continuous-control
// environment.
func NewPendulum(seed int64) ContinuousEnv { return env.NewPendulum(seed) }

// Population-based training ------------------------------------------------------

// PBTConfig parameterizes a population-based training search.
type PBTConfig = pbt.Config

// PBTResult is the outcome of a PBT run.
type PBTResult = pbt.Result

// Hyperparams is one population's hyperparameter combination.
type Hyperparams = pbt.Hyperparams

// SessionFactory builds one population's session.
type SessionFactory = pbt.SessionFactory

// RunPBT executes the population-based training loop (§4.3).
func RunPBT(cfg PBTConfig, factory SessionFactory, weightsOf func(*Session) []float32) (*PBTResult, error) {
	return pbt.Run(cfg, factory, weightsOf)
}

// PerturbMutator returns the standard PBT perturbation mutator.
var PerturbMutator = pbt.PerturbMutator
