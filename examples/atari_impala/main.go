// IMPALA on the synthetic BeamRider arcade game with several asynchronous
// explorers — the paper's flagship workload (Figs. 8 and 11).
//
// Observations are full 84×84×4 frame stacks (28 KB per step, the real
// Atari payload size), so each 100-step rollout message carries ≈2.8 MB;
// the learner trains on whichever explorer's fragment arrives next and
// V-trace corrects the policy lag.
//
//	go run ./examples/atari_impala
package main

import (
	"fmt"
	"log"
	"time"

	"xingtian"
)

func main() {
	const explorers = 2

	probe, err := xingtian.MakeEnv("BeamRider", 0)
	if err != nil {
		log.Fatalf("make env: %v", err)
	}
	spec := xingtian.SpecFor(probe)

	algF := func(seed int64) (xingtian.Algorithm, error) {
		return xingtian.NewIMPALA(spec, xingtian.DefaultIMPALAConfig(), seed), nil
	}
	agF := func(id int32, seed int64) (xingtian.Agent, error) {
		e, err := xingtian.MakeEnv("BeamRider", seed)
		if err != nil {
			return nil, err
		}
		return xingtian.NewIMPALAAgent(spec, xingtian.NewEnvRunner(e, spec), seed), nil
	}

	report, err := xingtian.Run(xingtian.Config{
		NumExplorers: explorers,
		RolloutLen:   100,
		MaxSteps:     6_000,
		MaxDuration:  3 * time.Minute,
		Compress:     true, // rollout messages exceed the 1 MB threshold
	}, algF, agF, 3)
	if err != nil {
		log.Fatalf("run: %v", err)
	}

	fmt.Printf("IMPALA x%d explorers on BeamRider-sim\n", explorers)
	fmt.Printf("  %d steps in %v (%.0f steps/s)\n",
		report.StepsConsumed, report.Duration.Round(time.Millisecond), report.Throughput)
	fmt.Printf("  mean episode return: %.0f over %d episodes (scores are multiples of 44, like BeamRider)\n",
		report.MeanReturn, report.Episodes)
	fmt.Printf("  rollout transmission overlapped training: learner waited only %v on average\n",
		report.MeanWait.Round(time.Microsecond))
}
