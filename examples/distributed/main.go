// Distributed deployment over the real TCP fabric (Fig. 2(b)): two broker
// "machines" on loopback, the learner on machine 0 and an explorer on
// machine 1, exchanging rollouts and weights through length-prefixed TCP
// frames — the production code path that netsim models for experiments.
//
//	go run ./examples/distributed
package main

import (
	"fmt"
	"log"
	"time"

	"xingtian/internal/algorithm"
	"xingtian/internal/broker"
	"xingtian/internal/core"
	"xingtian/internal/env"
	"xingtian/internal/fabric"
	"xingtian/internal/serialize"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Machine placement, as it would appear in the configuration file.
	locator := fabric.StaticLocator{
		core.LearnerName:     0,
		core.ExplorerName(0): 1,
	}

	// One fabric node + broker per machine, connected both ways.
	node0, err := fabric.Listen(0, "127.0.0.1:0")
	if err != nil {
		return err
	}
	defer node0.Stop()
	node1, err := fabric.Listen(1, "127.0.0.1:0")
	if err != nil {
		return err
	}
	defer node1.Stop()

	comp := serialize.NewCompressor() // rollout frames exceed 1 MB
	b0 := broker.New(broker.Config{MachineID: 0, Remote: node0, Locator: locator, Compressor: comp})
	b1 := broker.New(broker.Config{MachineID: 1, Remote: node1, Locator: locator, Compressor: comp})
	defer b0.Stop()
	defer b1.Stop()
	node0.AttachBroker(b0)
	node1.AttachBroker(b1)
	if err := node0.Connect(1, node1.Addr()); err != nil {
		return err
	}
	if err := node1.Connect(0, node0.Addr()); err != nil {
		return err
	}
	fmt.Printf("fabric up: machine 0 at %s, machine 1 at %s\n", node0.Addr(), node1.Addr())

	// Learner (machine 0) and explorer (machine 1), wired manually across
	// the two brokers.
	probe, err := env.Make("Breakout", 0)
	if err != nil {
		return err
	}
	spec := algorithm.SpecFor(probe)
	alg := algorithm.NewIMPALA(spec, algorithm.DefaultIMPALAConfig(), 1)

	learnerPort, err := b0.Register(core.LearnerName)
	if err != nil {
		return err
	}
	learner := core.NewLearner(alg, learnerPort, core.LearnerConfig{
		Explorers: []int32{0},
		MaxSteps:  2_000,
	})

	explorerEnv, err := env.Make("Breakout", 2)
	if err != nil {
		return err
	}
	agent := algorithm.NewIMPALAAgent(spec, algorithm.NewEnvRunner(explorerEnv, spec), 2)
	explorerPort, err := b1.Register(core.ExplorerName(0))
	if err != nil {
		return err
	}
	explorer := core.NewExplorer(0, agent, explorerPort, 100)

	start := time.Now()
	learner.Start()
	explorer.Start()

	// NewTimer + Stop rather than time.After: the 2-minute timer would
	// otherwise keep its allocation alive long after the run completes.
	limit := time.NewTimer(2 * time.Minute)
	defer limit.Stop()
	select {
	case <-learner.Done():
	case <-limit.C:
		fmt.Println("wall-clock limit reached")
	}

	learner.Stop()
	explorer.Stop()
	b0.Stop()
	b1.Stop()
	learner.Join()
	explorer.Join()

	fmt.Printf("consumed %d rollout steps over TCP in %v (%d training sessions)\n",
		learner.StepsConsumed(), time.Since(start).Round(time.Millisecond), learner.TrainIters())
	fmt.Printf("learner waited %v on average; rollouts crossed the wire while it trained\n",
		learner.WaitHist.Mean().Round(time.Microsecond))
	return nil
}
