// Distributed deployment over the real TCP fabric (Fig. 2(b)): two broker
// "machines" on loopback joined by fabric.Grid, the learner on machine 0 and
// explorers spread across both, exchanging rollouts and weights through
// length-prefixed TCP frames — the production code path that netsim models
// for experiments.
//
// The run is deliberately hostile: a seeded fault injector resets the TCP
// link every K writes and crashes each explorer's agent once mid-training.
// The session's supervisor restarts the crashed explorers (releasing and
// re-registering their broker ports), the fabric redials dropped peers and
// retries the frames caught mid-failure, and training still reaches its step
// target with both object stores drained clean. DESIGN.md §5e describes the
// failure model.
//
//	go run ./examples/distributed
package main

import (
	"errors"
	"fmt"
	"log"
	"sync"
	"time"

	"xingtian/internal/algorithm"
	"xingtian/internal/core"
	"xingtian/internal/env"
	"xingtian/internal/fabric"
	"xingtian/internal/faultinject"
	"xingtian/internal/rollout"
)

// crashOnceAgent wraps a real agent and injects one crash at the point its
// fault handle dictates. The handle is shared across the slot's restarts, so
// the supervised replacement runs clean.
type crashOnceAgent struct {
	core.Agent
	fault *faultinject.AgentFault
}

func (a *crashOnceAgent) Rollout(n int) (*rollout.Batch, error) {
	if a.fault.ShouldFail() {
		return nil, errors.New("injected agent crash")
	}
	return a.Agent.Rollout(n)
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	inj := faultinject.New(faultinject.Config{
		Seed:                   7,
		ConnResetEveryKWrites:  50, // kill the link every 50 frames
		AgentFailAfterRollouts: 5,  // crash each explorer once, 5 rollouts in
	})

	// Two loopback machines, full-mesh connected, every conn wrapped by the
	// injector. Aggressive redial so repairs beat the wall clock.
	grid, err := fabric.NewGrid(2, fabric.GridOptions{
		ConnWrapper:    inj.WrapConn,
		RedialAttempts: 100,
		RedialBackoff:  5 * time.Millisecond,
	})
	if err != nil {
		return err
	}
	for m := 0; m < grid.Machines(); m++ {
		fmt.Printf("fabric up: machine %d at %s\n", m, grid.Node(m).Addr())
	}

	probe, err := env.Make("CartPole", 0)
	if err != nil {
		return err
	}
	spec := algorithm.SpecFor(probe)
	algF := func(seed int64) (core.Algorithm, error) {
		return algorithm.NewDQN(spec, algorithm.DefaultDQNConfig(), seed), nil
	}

	// One fault handle per explorer slot, shared across restarts.
	var mu sync.Mutex
	faults := map[int32]*faultinject.AgentFault{}
	agF := func(id int32, seed int64) (core.Agent, error) {
		mu.Lock()
		f, ok := faults[id]
		if !ok {
			f = inj.NewAgentFault()
			faults[id] = f
		}
		mu.Unlock()
		e, err := env.Make("CartPole", seed)
		if err != nil {
			return nil, err
		}
		real := algorithm.NewDQNAgent(spec, algorithm.NewEnvRunner(e, spec), seed)
		return &crashOnceAgent{Agent: real, fault: f}, nil
	}

	// The session owns the grid from here on: explorer 0 lands next to the
	// learner on machine 0, explorer 1 is remote.
	report, err := core.Run(core.Config{
		NumExplorers:        2,
		Machines:            2,
		Transport:           grid,
		RolloutLen:          100,
		MaxSteps:            20_000,
		MaxDuration:         2 * time.Minute,
		MaxExplorerRestarts: 3,
		RestartBackoff:      50 * time.Millisecond,
	}, algF, agF, 1)
	if err != nil {
		return err
	}

	stats := inj.Stats()
	fmt.Printf("consumed %d rollout steps over TCP in %v (%d training sessions)\n",
		report.StepsConsumed, report.Duration.Round(time.Millisecond), report.TrainIters)
	fmt.Printf("injected %d conn reset(s) and %d agent crash(es); supervision restarted %d explorer(s)\n",
		stats.ConnResets, stats.AgentFaults, report.ExplorerRestarts)
	if report.RestartLastError != "" {
		fmt.Printf("last handled error: %s\n", report.RestartLastError)
	}
	for _, w := range report.Channel.Wire {
		fmt.Printf("%s\n", w)
	}
	if leaked := report.Channel.TotalLeaked(); leaked != 0 {
		return fmt.Errorf("%d object(s) leaked in the store despite the chaos", leaked)
	}
	fmt.Println("object stores drained clean")
	return nil
}
