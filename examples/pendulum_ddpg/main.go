// DDPG on the Pendulum swing-up task — continuous control through the full
// XingTian framework. The actor-critic trains off-policy from the
// trainer-local replay buffer while the explorer keeps sampling with
// Gaussian exploration noise.
//
//	go run ./examples/pendulum_ddpg
package main

import (
	"fmt"
	"log"
	"time"

	"xingtian"
)

func main() {
	e := xingtian.NewPendulum(0)
	spec := xingtian.ContinuousSpecFor(e)

	cfg := xingtian.DefaultDDPGConfig()
	cfg.TrainStart = 500
	cfg.TrainEvery = 2

	algF := func(seed int64) (xingtian.Algorithm, error) {
		return xingtian.NewDDPG(spec, cfg, seed), nil
	}
	agF := func(id int32, seed int64) (xingtian.Agent, error) {
		runner := xingtian.NewContinuousEnvRunner(xingtian.NewPendulum(seed))
		return xingtian.NewDDPGAgent(spec, runner, seed), nil
	}

	report, err := xingtian.Run(xingtian.Config{
		NumExplorers: 1,
		RolloutLen:   100,
		MaxSteps:     400_000,
		MaxDuration:  3 * time.Minute,
	}, algF, agF, 11)
	if err != nil {
		log.Fatalf("run: %v", err)
	}

	fmt.Printf("DDPG on Pendulum: %d steps in %v (%.0f steps/s)\n",
		report.StepsConsumed, report.Duration.Round(time.Millisecond), report.Throughput)
	fmt.Printf("mean episode return over the last window: %.0f "+
		"(random ≈ -1200, good policies approach -200)\n", report.MeanReturn)
}
