// Quickstart: train DQN on CartPole through the full XingTian framework —
// decentralized explorers and learner joined by the asynchronous channel —
// in about forty lines of public API.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"xingtian"
)

func main() {
	e := xingtian.NewCartPole(0)
	spec := xingtian.SpecFor(e)

	cfg := xingtian.DefaultDQNConfig()
	cfg.TrainStart = 500
	cfg.TrainEvery = 2
	cfg.LR = 3e-4
	cfg.TargetSyncEvery = 200

	algF := func(seed int64) (xingtian.Algorithm, error) {
		return xingtian.NewDQN(spec, cfg, seed), nil
	}
	agF := func(id int32, seed int64) (xingtian.Agent, error) {
		runner := xingtian.NewEnvRunner(xingtian.NewCartPole(seed), spec)
		return xingtian.NewDQNAgent(spec, runner, seed), nil
	}

	report, err := xingtian.Run(xingtian.Config{
		NumExplorers: 1,
		RolloutLen:   100,
		MaxSteps:     400_000,
		MaxDuration:  2 * time.Minute,
	}, algF, agF, 1)
	if err != nil {
		log.Fatalf("run: %v", err)
	}

	fmt.Printf("trained on %d steps in %v (%.0f steps/s)\n",
		report.StepsConsumed, report.Duration.Round(time.Millisecond), report.Throughput)
	fmt.Printf("episodes: %d, mean return over the last window: %.1f\n",
		report.Episodes, report.MeanReturn)
	fmt.Printf("learner waited %v on average for rollouts (transmission overlapped training)\n",
		report.MeanWait.Round(time.Microsecond))
}
