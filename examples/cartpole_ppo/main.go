// PPO on CartPole with parallel synchronous explorers.
//
// PPO is on-policy: the learner waits for a rollout from every explorer
// each iteration, and explorers wait for fresh weights before sampling
// again. Even so, XingTian overlaps fast explorers' rollout transmission
// with slow explorers' environment interaction — §3.2.1's on-policy
// acceleration argument — which this example surfaces by printing the
// learner's actual wait.
//
//	go run ./examples/cartpole_ppo
package main

import (
	"fmt"
	"log"
	"time"

	"xingtian"
)

func main() {
	const explorers = 4

	e := xingtian.NewCartPole(0)
	spec := xingtian.SpecFor(e)

	cfg := xingtian.DefaultPPOConfig(explorers)
	cfg.LR = 1e-3
	cfg.Epochs = 3

	algF := func(seed int64) (xingtian.Algorithm, error) {
		return xingtian.NewPPO(spec, cfg, seed), nil
	}
	agF := func(id int32, seed int64) (xingtian.Agent, error) {
		runner := xingtian.NewEnvRunner(xingtian.NewCartPole(seed), spec)
		return xingtian.NewPPOAgent(spec, runner, seed), nil
	}

	report, err := xingtian.Run(xingtian.Config{
		NumExplorers: explorers,
		RolloutLen:   128,
		MaxSteps:     60_000,
		MaxDuration:  3 * time.Minute,
	}, algF, agF, 7)
	if err != nil {
		log.Fatalf("run: %v", err)
	}

	fmt.Printf("PPO x%d explorers: %d steps in %v (%.0f steps/s)\n",
		explorers, report.StepsConsumed, report.Duration.Round(time.Millisecond), report.Throughput)
	fmt.Printf("iterations: %d (each consumes %d steps: one fragment per explorer)\n",
		report.TrainIters, explorers*128)
	fmt.Printf("mean episode return: %.1f over %d episodes\n", report.MeanReturn, report.Episodes)
	fmt.Printf("learner's actual wait per iteration: %v (the synchronization barrier, minus overlap)\n",
		report.MeanWait.Round(time.Microsecond))
}
