// Population-based training over DQN's learning rate on CartPole (§4.3):
// four isolated populations (broker sets) train concurrently; each
// generation the center scheduler eliminates the worst, mutates the best's
// hyperparameters, and hands its weights to the replacement.
//
//	go run ./examples/pbt_search
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"xingtian"
)

func main() {
	e := xingtian.NewCartPole(0)
	spec := xingtian.SpecFor(e)

	factory := func(rank int, hp xingtian.Hyperparams, initial []float32) (*xingtian.Session, error) {
		cfg := xingtian.DefaultDQNConfig()
		cfg.TrainStart = 300
		cfg.TrainEvery = 2
		cfg.LR = float32(hp["lr"])
		algF := func(seed int64) (xingtian.Algorithm, error) {
			d := xingtian.NewDQN(spec, cfg, seed)
			if initial != nil {
				if err := d.LoadWeights(initial); err != nil {
					return nil, err
				}
			}
			return d, nil
		}
		agF := func(id int32, seed int64) (xingtian.Agent, error) {
			runner := xingtian.NewEnvRunner(xingtian.NewCartPole(seed), spec)
			return xingtian.NewDQNAgent(spec, runner, seed), nil
		}
		return xingtian.NewSession(xingtian.Config{
			NumExplorers: 1,
			RolloutLen:   100,
			MaxSteps:     5_000,
			MaxDuration:  time.Minute,
		}, algF, agF, int64(rank)*1000+1)
	}

	res, err := xingtian.RunPBT(xingtian.PBTConfig{
		Populations: 4,
		Generations: 3,
		Initial:     xingtian.Hyperparams{"lr": 1e-3},
		Mutators: map[string]func(*rand.Rand, float64) float64{
			"lr": xingtian.PerturbMutator(0.8, 1.25),
		},
		Seed: 42,
	}, factory, func(s *xingtian.Session) []float32 {
		return s.Learner().Algorithm().Weights().Data
	})
	if err != nil {
		log.Fatalf("pbt: %v", err)
	}

	for _, gen := range res.Generations {
		fmt.Printf("generation %d:\n", gen.Generation)
		for _, p := range gen.Populations {
			fmt.Printf("  population %d: lr %.2e -> mean return %.1f\n",
				p.Rank, p.Hyperparams["lr"], p.MeanReturn)
		}
	}
	fmt.Printf("best combination: lr %.2e (mean return %.1f)\n",
		res.BestHyperparams["lr"], res.BestReturn)
}
