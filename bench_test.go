package xingtian_test

// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation, plus the design-choice ablations called out in
// DESIGN.md §6. Each figure benchmark executes the corresponding experiment
// from internal/experiments in quick mode and reports the headline metric;
// run `go test -bench=. -benchmem` here, or use cmd/xt-experiments for the
// full-size sweeps with printed tables.

import (
	"io"
	"testing"

	"xingtian/internal/baselines/rllibsim"
	"xingtian/internal/broker"
	"xingtian/internal/dummy"
	"xingtian/internal/experiments"
	"xingtian/internal/message"
	"xingtian/internal/netsim"
	"xingtian/internal/objectstore"
	"xingtian/internal/serialize"
)

func quickSettings() experiments.Settings {
	s := experiments.DefaultSettings()
	s.Quick = true
	return s
}

// benchExperiment runs a registered experiment once per iteration.
func benchExperiment(b *testing.B, name string) {
	b.Helper()
	run := experiments.Registry()[name]
	if run == nil {
		b.Fatalf("experiment %q not registered", name)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := run(quickSettings(), io.Discard); err != nil {
			b.Fatalf("%s: %v", name, err)
		}
	}
}

// BenchmarkTable1 regenerates Table 1 (rollout sizes, transmission times in
// both baselines, training times).
func BenchmarkTable1(b *testing.B) { benchExperiment(b, "table1") }

// BenchmarkFig4 regenerates Fig. 4 (single-machine transmission sweep).
func BenchmarkFig4(b *testing.B) { benchExperiment(b, "fig4") }

// BenchmarkFig5 regenerates Fig. 5 (two-machine transmission).
func BenchmarkFig5(b *testing.B) { benchExperiment(b, "fig5") }

// BenchmarkFig6 regenerates Fig. 6 (convergence, XingTian vs RLLib).
func BenchmarkFig6(b *testing.B) { benchExperiment(b, "fig6") }

// BenchmarkFig7 regenerates Fig. 7 (time to complete the step budget).
func BenchmarkFig7(b *testing.B) { benchExperiment(b, "fig7") }

// BenchmarkFig8 regenerates Fig. 8 (IMPALA throughput & wait analysis).
func BenchmarkFig8(b *testing.B) { benchExperiment(b, "fig8") }

// BenchmarkFig9 regenerates Fig. 9 (DQN throughput & replay placement).
func BenchmarkFig9(b *testing.B) { benchExperiment(b, "fig9") }

// BenchmarkFig10 regenerates Fig. 10 (PPO throughput & wait analysis).
func BenchmarkFig10(b *testing.B) { benchExperiment(b, "fig10") }

// BenchmarkFig11 regenerates Fig. 11 (scalability sweep).
func BenchmarkFig11(b *testing.B) { benchExperiment(b, "fig11") }

// Ablations ---------------------------------------------------------------------

// BenchmarkAblationPushVsPull compares the two communication models on the
// identical substrate and workload, reporting MB/s for each.
func BenchmarkAblationPushVsPull(b *testing.B) {
	cfg := dummy.Config{
		Explorers:    4,
		MessageBytes: 1 << 20,
		Rounds:       5,
		Net:          netsim.Config{Bandwidth: 1 << 30, TimeScale: 50},
		Compress:     true,
		PlaneNsPerKB: 1440,
	}
	b.Run("push", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := dummy.RunXingTian(cfg)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(res.ThroughputMBps, "MB/s")
		}
	})
	b.Run("pull", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := rllibsim.RunDummy(cfg)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(res.ThroughputMBps, "MB/s")
		}
	})
}

// BenchmarkAblationCompression sweeps the compression decision on the real
// XingTian channel with mildly compressible payloads.
func BenchmarkAblationCompression(b *testing.B) {
	base := dummy.Config{
		Explorers:    2,
		MessageBytes: 2 << 20,
		Rounds:       5,
		Net:          netsim.Config{Bandwidth: 1 << 30, TimeScale: 50},
	}
	for _, mode := range []struct {
		name     string
		compress bool
	}{{"off", false}, {"lz4_1MB_threshold", true}} {
		b.Run(mode.name, func(b *testing.B) {
			cfg := base
			cfg.Compress = mode.compress
			for i := 0; i < b.N; i++ {
				res, err := dummy.RunXingTian(cfg)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.ThroughputMBps, "MB/s")
			}
		})
	}
}

// BenchmarkAblationZeroCopy contrasts the object store's zero-copy reads
// against a copy-per-hop design (what the router would pay if it copied
// bodies at every dispatch).
func BenchmarkAblationZeroCopy(b *testing.B) {
	payload := make([]byte, 1<<20)
	b.Run("zero_copy_store", func(b *testing.B) {
		store := objectstore.New()
		b.SetBytes(int64(len(payload)))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			id := store.Put(payload, 1)
			if _, err := store.Get(id); err != nil {
				b.Fatal(err)
			}
			if err := store.Release(id); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("copy_per_hop", func(b *testing.B) {
		store := objectstore.New()
		b.SetBytes(int64(len(payload)))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			id := store.Put(append([]byte(nil), payload...), 1) // sender copy
			got, err := store.Get(id)
			if err != nil {
				b.Fatal(err)
			}
			_ = append([]byte(nil), got...) // receiver copy
			if err := store.Release(id); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkChannelRoundTrip measures the raw XingTian channel: one message
// through send buffer -> object store -> router -> ID queue -> receive.
func BenchmarkChannelRoundTrip(b *testing.B) {
	for _, size := range []int{1 << 10, 64 << 10, 1 << 20} {
		b.Run(sizeName(size), func(b *testing.B) {
			br := broker.New(broker.Config{MachineID: 0})
			defer br.Stop()
			s, err := br.Register("s")
			if err != nil {
				b.Fatal(err)
			}
			r, err := br.Register("r")
			if err != nil {
				b.Fatal(err)
			}
			payload := make([]byte, size)
			b.SetBytes(int64(size))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m := message.New(message.TypeDummy, "s", []string{"r"},
					&message.DummyPayload{Data: payload})
				if err := s.Send(m); err != nil {
					b.Fatal(err)
				}
				if _, err := r.Recv(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkWeightsBroadcast measures a weights fan-out to 8 explorers.
func BenchmarkWeightsBroadcast(b *testing.B) {
	br := broker.New(broker.Config{MachineID: 0, Compressor: serialize.NewCompressor()})
	defer br.Stop()
	learner, err := br.Register("learner")
	if err != nil {
		b.Fatal(err)
	}
	const fanout = 8
	ports := make([]*broker.Port, fanout)
	dst := make([]string, fanout)
	for i := range ports {
		dst[i] = nameOf(i)
		p, err := br.Register(dst[i])
		if err != nil {
			b.Fatal(err)
		}
		ports[i] = p
	}
	weights := &message.WeightsPayload{Version: 1, Data: make([]float32, 100_000)}
	b.SetBytes(int64(4 * len(weights.Data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := message.New(message.TypeWeights, "learner", dst, weights)
		if err := learner.Send(m); err != nil {
			b.Fatal(err)
		}
		for _, p := range ports {
			if _, err := p.Recv(); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func sizeName(n int) string {
	switch {
	case n >= 1<<20:
		return "1MB"
	case n >= 64<<10:
		return "64KB"
	default:
		return "1KB"
	}
}

func nameOf(i int) string {
	return string(rune('a'+i)) + "-explorer"
}
