module xingtian

go 1.22
