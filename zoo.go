package xingtian

import (
	"xingtian/internal/algorithm"
)

// The DRL algorithm zoo: the paper ships DQN, PPO, IMPALA (among others) as
// reference implementations over the framework; these re-exports are the
// supported set in this reproduction.

// ModelSpec describes the network family for an environment (the paper's
// Model class).
type ModelSpec = algorithm.ModelSpec

// SpecFor derives a ModelSpec from an environment.
func SpecFor(e Env) ModelSpec { return algorithm.SpecFor(e) }

// EnvRunner drives one environment and assembles rollout fragments.
type EnvRunner = algorithm.EnvRunner

// NewEnvRunner wraps an environment for an agent.
func NewEnvRunner(e Env, spec ModelSpec) *EnvRunner { return algorithm.NewEnvRunner(e, spec) }

// DQN --------------------------------------------------------------------------

// DQNConfig holds DQN hyperparameters.
type DQNConfig = algorithm.DQNConfig

// DQN is the value-based off-policy learner with a trainer-local replay
// buffer.
type DQN = algorithm.DQN

// DQNAgent is DQN's ε-greedy explorer agent.
type DQNAgent = algorithm.DQNAgent

// DefaultDQNConfig returns the paper's DQN setup.
func DefaultDQNConfig() DQNConfig { return algorithm.DefaultDQNConfig() }

// NewDQN builds a DQN learner.
func NewDQN(spec ModelSpec, cfg DQNConfig, seed int64) *DQN {
	return algorithm.NewDQN(spec, cfg, seed)
}

// NewDQNAgent builds a DQN explorer agent.
func NewDQNAgent(spec ModelSpec, runner *EnvRunner, seed int64) *DQNAgent {
	return algorithm.NewDQNAgent(spec, runner, seed)
}

// PPO --------------------------------------------------------------------------

// PPOConfig holds PPO hyperparameters.
type PPOConfig = algorithm.PPOConfig

// PPO is the on-policy actor-critic learner with GAE and clipped surrogate.
type PPO = algorithm.PPO

// PPOAgent is PPO's stochastic explorer agent.
type PPOAgent = algorithm.PPOAgent

// DefaultPPOConfig returns standard PPO hyperparameters for n explorers.
func DefaultPPOConfig(n int) PPOConfig { return algorithm.DefaultPPOConfig(n) }

// NewPPO builds a PPO learner.
func NewPPO(spec ModelSpec, cfg PPOConfig, seed int64) *PPO {
	return algorithm.NewPPO(spec, cfg, seed)
}

// NewPPOAgent builds a PPO explorer agent.
func NewPPOAgent(spec ModelSpec, runner *EnvRunner, seed int64) *PPOAgent {
	return algorithm.NewPPOAgent(spec, runner, seed)
}

// IMPALA -----------------------------------------------------------------------

// IMPALAConfig holds IMPALA hyperparameters.
type IMPALAConfig = algorithm.IMPALAConfig

// IMPALA is the off-policy actor-critic learner with V-trace correction.
type IMPALA = algorithm.IMPALA

// IMPALAAgent is IMPALA's explorer agent, recording behavior logits.
type IMPALAAgent = algorithm.IMPALAAgent

// DefaultIMPALAConfig returns standard IMPALA hyperparameters.
func DefaultIMPALAConfig() IMPALAConfig { return algorithm.DefaultIMPALAConfig() }

// NewIMPALA builds an IMPALA learner.
func NewIMPALA(spec ModelSpec, cfg IMPALAConfig, seed int64) *IMPALA {
	return algorithm.NewIMPALA(spec, cfg, seed)
}

// NewIMPALAAgent builds an IMPALA explorer agent.
func NewIMPALAAgent(spec ModelSpec, runner *EnvRunner, seed int64) *IMPALAAgent {
	return algorithm.NewIMPALAAgent(spec, runner, seed)
}

// DDPG -------------------------------------------------------------------------

// DDPGConfig holds DDPG hyperparameters.
type DDPGConfig = algorithm.DDPGConfig

// DDPG is the continuous-control off-policy actor-critic learner.
type DDPG = algorithm.DDPG

// DDPGAgent is DDPG's explorer agent with Gaussian exploration noise.
type DDPGAgent = algorithm.DDPGAgent

// ContinuousSpec describes actor-critic networks for continuous control.
type ContinuousSpec = algorithm.ContinuousSpec

// ContinuousEnvRunner drives a continuous environment for an agent.
type ContinuousEnvRunner = algorithm.ContinuousEnvRunner

// DefaultDDPGConfig returns standard DDPG hyperparameters.
func DefaultDDPGConfig() DDPGConfig { return algorithm.DefaultDDPGConfig() }

// NewDDPG builds a DDPG learner.
func NewDDPG(spec ContinuousSpec, cfg DDPGConfig, seed int64) *DDPG {
	return algorithm.NewDDPG(spec, cfg, seed)
}

// NewDDPGAgent builds a DDPG explorer agent.
func NewDDPGAgent(spec ContinuousSpec, runner *ContinuousEnvRunner, seed int64) *DDPGAgent {
	return algorithm.NewDDPGAgent(spec, runner, seed)
}

// NewContinuousEnvRunner wraps a continuous environment for an agent.
func NewContinuousEnvRunner(e ContinuousEnv) *ContinuousEnvRunner {
	return algorithm.NewContinuousEnvRunner(e)
}

// ContinuousSpecFor derives a ContinuousSpec from an environment.
func ContinuousSpecFor(e ContinuousEnv) ContinuousSpec {
	return algorithm.ContinuousSpecFor(e)
}
