// Package checkpoint persists DNN parameters to disk and restores them —
// the fault-tolerance mechanism §4.2 describes: the Algorithm class "saves
// the checkpoints of the DNNs periodically to restore DNN parameters after
// failure".
//
// Files are written atomically (temp file + rename) so a crash mid-write
// never corrupts the latest good checkpoint.
package checkpoint

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// ErrCorrupt is returned when a checkpoint file fails validation.
var ErrCorrupt = errors.New("checkpoint: corrupt file")

// ErrNoCheckpoint is returned by LoadLatest when no restorable checkpoint
// exists at the path — neither a rotation member nor a bare file.
var ErrNoCheckpoint = errors.New("checkpoint: no checkpoint found")

// magic identifies checkpoint files.
const magic = 0x58544350 // "XTCP"

// State is a restorable parameter snapshot.
type State struct {
	// Version is the weights version at save time.
	Version int64
	// Weights are the flattened parameters.
	Weights []float32
}

// Save writes the state to path atomically.
func Save(path string, s State) error {
	buf := make([]byte, 0, 24+4*len(s.Weights))
	buf = binary.LittleEndian.AppendUint32(buf, magic)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(s.Version))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(s.Weights)))
	for _, w := range s.Weights {
		buf = binary.LittleEndian.AppendUint32(buf, math.Float32bits(w))
	}
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))

	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".ckpt-*")
	if err != nil {
		return fmt.Errorf("checkpoint save: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(buf); err != nil {
		_ = tmp.Close()
		_ = os.Remove(tmpName)
		return fmt.Errorf("checkpoint save: %w", err)
	}
	if err := tmp.Close(); err != nil {
		_ = os.Remove(tmpName)
		return fmt.Errorf("checkpoint save: %w", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		_ = os.Remove(tmpName)
		return fmt.Errorf("checkpoint save: %w", err)
	}
	return nil
}

// SaveRotating writes the state as the next member of a rotation set:
// path.1, path.2, … ascending, where a larger suffix is always newer. After
// the write, members beyond the newest keep are pruned. keep < 1 is treated
// as 1. Each member is written with Save's atomic temp-file + rename, so a
// crash mid-save leaves every older member intact.
func SaveRotating(path string, s State, keep int) error {
	if keep < 1 {
		keep = 1
	}
	members, err := rotationMembers(path)
	if err != nil {
		return fmt.Errorf("checkpoint rotate: %w", err)
	}
	next := 1
	if len(members) > 0 {
		next = members[len(members)-1] + 1
	}
	if err := Save(fmt.Sprintf("%s.%d", path, next), s); err != nil {
		return err
	}
	members = append(members, next)
	for len(members) > keep {
		_ = os.Remove(fmt.Sprintf("%s.%d", path, members[0]))
		members = members[1:]
	}
	return nil
}

// LoadLatest restores the newest readable checkpoint at path: rotation
// members (path.N) newest-first, then the bare path itself. Corrupt or
// unreadable members are skipped — a torn write of the newest checkpoint
// must not block restoring from an older good one. ErrNoCheckpoint means
// nothing restorable exists.
func LoadLatest(path string) (State, error) {
	members, err := rotationMembers(path)
	if err != nil {
		return State{}, fmt.Errorf("checkpoint load: %w", err)
	}
	for i := len(members) - 1; i >= 0; i-- {
		if s, err := Load(fmt.Sprintf("%s.%d", path, members[i])); err == nil {
			return s, nil
		}
	}
	if s, err := Load(path); err == nil {
		return s, nil
	}
	return State{}, fmt.Errorf("%s: %w", path, ErrNoCheckpoint)
}

// rotationMembers lists the numeric suffixes of path's rotation set in
// ascending order.
func rotationMembers(path string) ([]int, error) {
	dir, base := filepath.Split(path)
	if dir == "" {
		dir = "."
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var members []int
	prefix := base + "."
	for _, e := range entries {
		if e.IsDir() || !strings.HasPrefix(e.Name(), prefix) {
			continue
		}
		n, err := strconv.Atoi(e.Name()[len(prefix):])
		if err != nil || n < 1 {
			continue
		}
		members = append(members, n)
	}
	sort.Ints(members)
	return members, nil
}

// Load reads and validates a checkpoint.
func Load(path string) (State, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return State{}, fmt.Errorf("checkpoint load: %w", err)
	}
	if len(data) < 20 {
		return State{}, fmt.Errorf("file too short: %w", ErrCorrupt)
	}
	body, sum := data[:len(data)-4], binary.LittleEndian.Uint32(data[len(data)-4:])
	if crc32.ChecksumIEEE(body) != sum {
		return State{}, fmt.Errorf("checksum mismatch: %w", ErrCorrupt)
	}
	if binary.LittleEndian.Uint32(body) != magic {
		return State{}, fmt.Errorf("bad magic: %w", ErrCorrupt)
	}
	version := int64(binary.LittleEndian.Uint64(body[4:]))
	n := int(binary.LittleEndian.Uint32(body[12:]))
	if len(body) != 16+4*n {
		return State{}, fmt.Errorf("length mismatch: %w", ErrCorrupt)
	}
	weights := make([]float32, n)
	for i := range weights {
		weights[i] = math.Float32frombits(binary.LittleEndian.Uint32(body[16+4*i:]))
	}
	return State{Version: version, Weights: weights}, nil
}
