package checkpoint

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "model.ckpt")
	in := State{Version: 42, Weights: []float32{1.5, -2.25, 0, 3e8}}
	if err := Save(path, in); err != nil {
		t.Fatalf("Save: %v", err)
	}
	out, err := Load(path)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if out.Version != in.Version || len(out.Weights) != len(in.Weights) {
		t.Fatalf("Load = %+v", out)
	}
	for i := range in.Weights {
		if in.Weights[i] != out.Weights[i] {
			t.Fatalf("weight %d mismatch", i)
		}
	}
}

func TestSaveOverwritesAtomically(t *testing.T) {
	path := filepath.Join(t.TempDir(), "model.ckpt")
	if err := Save(path, State{Version: 1, Weights: []float32{1}}); err != nil {
		t.Fatalf("Save: %v", err)
	}
	if err := Save(path, State{Version: 2, Weights: []float32{2, 3}}); err != nil {
		t.Fatalf("Save overwrite: %v", err)
	}
	out, err := Load(path)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if out.Version != 2 || len(out.Weights) != 2 {
		t.Fatalf("Load after overwrite = %+v", out)
	}
	// No stray temp files.
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("directory has %d entries, want 1", len(entries))
	}
}

func TestLoadMissing(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "nope.ckpt")); err == nil {
		t.Fatal("Load missing file did not error")
	}
}

func TestLoadCorrupt(t *testing.T) {
	path := filepath.Join(t.TempDir(), "model.ckpt")
	if err := Save(path, State{Version: 7, Weights: []float32{1, 2, 3}}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[8] ^= 0xFF // flip a version byte; checksum must catch it
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Load corrupt = %v, want ErrCorrupt", err)
	}
}

func TestLoadTruncated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "model.ckpt")
	if err := os.WriteFile(path, []byte{1, 2, 3}, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Load truncated = %v, want ErrCorrupt", err)
	}
}

func TestSaveRotatingKeepsLastK(t *testing.T) {
	path := filepath.Join(t.TempDir(), "model.ckpt")
	const keep = 3
	for v := int64(1); v <= 5; v++ {
		if err := SaveRotating(path, State{Version: v, Weights: []float32{float32(v)}}, keep); err != nil {
			t.Fatalf("SaveRotating v%d: %v", v, err)
		}
	}
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != keep {
		names := make([]string, 0, len(entries))
		for _, e := range entries {
			names = append(names, e.Name())
		}
		t.Fatalf("directory holds %v, want %d rotation members", names, keep)
	}
	// Oldest members pruned: model.ckpt.1 and .2 are gone, .3–.5 remain.
	for _, gone := range []string{"model.ckpt.1", "model.ckpt.2"} {
		if _, err := os.Stat(filepath.Join(filepath.Dir(path), gone)); !os.IsNotExist(err) {
			t.Fatalf("%s still exists after pruning", gone)
		}
	}
	out, err := LoadLatest(path)
	if err != nil {
		t.Fatalf("LoadLatest: %v", err)
	}
	if out.Version != 5 {
		t.Fatalf("LoadLatest version = %d, want 5", out.Version)
	}
}

func TestLoadLatestSkipsCorrupt(t *testing.T) {
	path := filepath.Join(t.TempDir(), "model.ckpt")
	for v := int64(1); v <= 3; v++ {
		if err := SaveRotating(path, State{Version: v, Weights: []float32{float32(v)}}, 5); err != nil {
			t.Fatal(err)
		}
	}
	// Corrupt the newest member; restore must fall back to the previous one.
	newest := path + ".3"
	data, err := os.ReadFile(newest)
	if err != nil {
		t.Fatal(err)
	}
	data[8] ^= 0xFF
	if err := os.WriteFile(newest, data, 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := LoadLatest(path)
	if err != nil {
		t.Fatalf("LoadLatest with corrupt newest: %v", err)
	}
	if out.Version != 2 {
		t.Fatalf("LoadLatest version = %d, want 2 (newest good member)", out.Version)
	}
}

func TestLoadLatestBarePathFallback(t *testing.T) {
	path := filepath.Join(t.TempDir(), "model.ckpt")
	if err := Save(path, State{Version: 11, Weights: []float32{1}}); err != nil {
		t.Fatal(err)
	}
	out, err := LoadLatest(path)
	if err != nil {
		t.Fatalf("LoadLatest bare path: %v", err)
	}
	if out.Version != 11 {
		t.Fatalf("LoadLatest version = %d, want 11", out.Version)
	}
}

func TestLoadLatestNoCheckpoint(t *testing.T) {
	if _, err := LoadLatest(filepath.Join(t.TempDir(), "model.ckpt")); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("LoadLatest empty dir = %v, want ErrNoCheckpoint", err)
	}
	// A missing directory is also "no checkpoint", not an error.
	if _, err := LoadLatest(filepath.Join(t.TempDir(), "sub", "model.ckpt")); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("LoadLatest missing dir = %v, want ErrNoCheckpoint", err)
	}
}

// TestPropertyRoundTrip: arbitrary states survive the disk round trip.
func TestPropertyRoundTrip(t *testing.T) {
	dir := t.TempDir()
	i := 0
	f := func(version int64, weights []float32) bool {
		i++
		path := filepath.Join(dir, "w.ckpt")
		if err := Save(path, State{Version: version, Weights: weights}); err != nil {
			return false
		}
		out, err := Load(path)
		if err != nil || out.Version != version || len(out.Weights) != len(weights) {
			return false
		}
		for j := range weights {
			// NaN != NaN; compare bit patterns via == only for non-NaN.
			if weights[j] == weights[j] && out.Weights[j] != weights[j] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
