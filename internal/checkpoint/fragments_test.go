package checkpoint

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func sampleStates() []FragmentState {
	return []FragmentState{
		{Name: "broadcaster", State: State{Version: 42, Weights: []float32{1.5, -2.25, 0}}},
		{Name: "learn-0", State: State{Version: 41, Weights: []float32{0.5, 0.25, -1}}},
		{Name: "learn-1", State: State{Version: 40, Weights: []float32{3, 4, 5}}},
	}
}

func TestFragmentsRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "frag.ckpt")
	want := sampleStates()
	if err := SaveFragments(path, want); err != nil {
		t.Fatalf("SaveFragments: %v", err)
	}
	got, err := LoadFragments(path)
	if err != nil {
		t.Fatalf("LoadFragments: %v", err)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d states, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Name != want[i].Name || got[i].State.Version != want[i].State.Version {
			t.Fatalf("state %d = %+v, want %+v", i, got[i], want[i])
		}
		for j, w := range want[i].State.Weights {
			if got[i].State.Weights[j] != w {
				t.Fatalf("state %d weight %d = %v, want %v", i, j, got[i].State.Weights[j], w)
			}
		}
	}
}

func TestFragmentsEmptySet(t *testing.T) {
	path := filepath.Join(t.TempDir(), "frag.ckpt")
	if err := SaveFragments(path, nil); err != nil {
		t.Fatalf("SaveFragments(nil): %v", err)
	}
	got, err := LoadFragments(path)
	if err != nil {
		t.Fatalf("LoadFragments: %v", err)
	}
	if len(got) != 0 {
		t.Fatalf("got %d states, want 0", len(got))
	}
}

func TestFragmentsCorruptionDetected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "frag.ckpt")
	if err := SaveFragments(path, sampleStates()); err != nil {
		t.Fatalf("SaveFragments: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name   string
		mutate func([]byte) []byte
	}{
		{"flipped-byte", func(b []byte) []byte { b[9] ^= 0xff; return b }},
		{"truncated", func(b []byte) []byte { return b[:len(b)/2] }},
		{"bad-magic", func(b []byte) []byte { b[0] ^= 0xff; return b }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			mut := tc.mutate(append([]byte(nil), data...))
			p := filepath.Join(t.TempDir(), "bad.ckpt")
			if err := os.WriteFile(p, mut, 0o644); err != nil {
				t.Fatal(err)
			}
			if _, err := LoadFragments(p); !errors.Is(err, ErrCorrupt) && err == nil {
				t.Fatalf("LoadFragments(%s) = %v, want error", tc.name, err)
			}
		})
	}
}

// TestFragmentsPlainCheckpointRejected: a fragment-set loader pointed at a
// single-state checkpoint (different magic) must fail cleanly, not
// misparse it.
func TestFragmentsPlainCheckpointRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "plain.ckpt")
	if err := Save(path, State{Version: 1, Weights: []float32{1}}); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFragments(path); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("LoadFragments on plain checkpoint = %v, want ErrCorrupt", err)
	}
}

func TestFragmentsRotation(t *testing.T) {
	path := filepath.Join(t.TempDir(), "frag.ckpt")
	for v := int64(1); v <= 5; v++ {
		states := []FragmentState{{Name: "broadcaster", State: State{Version: v, Weights: []float32{float32(v)}}}}
		if err := SaveFragmentsRotating(path, states, 3); err != nil {
			t.Fatalf("SaveFragmentsRotating v%d: %v", v, err)
		}
	}
	members, err := rotationMembers(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(members) != 3 {
		t.Fatalf("rotation kept %d members, want 3", len(members))
	}
	got, err := LoadLatestFragments(path)
	if err != nil {
		t.Fatalf("LoadLatestFragments: %v", err)
	}
	if got[0].State.Version != 5 {
		t.Fatalf("latest version = %d, want 5", got[0].State.Version)
	}
}

// TestFragmentsLatestSkipsCorrupt: a torn newest member must not block
// restoring from the previous good one.
func TestFragmentsLatestSkipsCorrupt(t *testing.T) {
	path := filepath.Join(t.TempDir(), "frag.ckpt")
	good := []FragmentState{{Name: "broadcaster", State: State{Version: 7, Weights: []float32{7}}}}
	if err := SaveFragmentsRotating(path, good, 3); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(fmt.Sprintf("%s.2", path), []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := LoadLatestFragments(path)
	if err != nil {
		t.Fatalf("LoadLatestFragments: %v", err)
	}
	if got[0].State.Version != 7 {
		t.Fatalf("restored version = %d, want 7", got[0].State.Version)
	}
}

func TestLoadLatestFragmentsMissing(t *testing.T) {
	if _, err := LoadLatestFragments(filepath.Join(t.TempDir(), "none.ckpt")); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("err = %v, want ErrNoCheckpoint", err)
	}
}

// TestFragmentsLoadRacingSave: the standby-rebuild path (§5j) reads the
// fragment checkpoint while the incumbent is still writing rotations. A
// concurrent LoadLatestFragments must never observe a torn fragment set —
// every successful load returns a complete, internally consistent snapshot
// from some finished rotation member (all fragments from the same save, the
// broadcaster's version matching its weights).
func TestFragmentsLoadRacingSave(t *testing.T) {
	path := filepath.Join(t.TempDir(), "frag.ckpt")
	seed := []FragmentState{
		{Name: "broadcaster", State: State{Version: 1, Weights: []float32{1, 1}}},
		{Name: "sampler", State: State{Version: 1}},
	}
	if err := SaveFragmentsRotating(path, seed, 3); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	saverDone := make(chan error, 1)
	go func() {
		var err error
		for v := int64(2); ; v++ {
			select {
			case <-stop:
				saverDone <- err
				return
			default:
			}
			states := []FragmentState{
				{Name: "broadcaster", State: State{Version: v, Weights: []float32{float32(v), float32(v)}}},
				{Name: "sampler", State: State{Version: v}},
			}
			if serr := SaveFragmentsRotating(path, states, 3); serr != nil && err == nil {
				err = serr
			}
		}
	}()

	for i := 0; i < 200; i++ {
		got, err := LoadLatestFragments(path)
		if err != nil {
			t.Fatalf("load %d: %v", i, err)
		}
		if len(got) != 2 {
			t.Fatalf("load %d: %d fragments, want 2 (torn set)", i, len(got))
		}
		byName := map[string]State{}
		for _, fs := range got {
			byName[fs.Name] = fs.State
		}
		b, ok := byName["broadcaster"]
		if !ok {
			t.Fatalf("load %d: broadcaster missing: %+v", i, got)
		}
		s, ok := byName["sampler"]
		if !ok {
			t.Fatalf("load %d: sampler missing: %+v", i, got)
		}
		// Same-save consistency: both fragments carry the save's version,
		// and the broadcaster's weights encode it too.
		if b.Version != s.Version {
			t.Fatalf("load %d: torn set — broadcaster v%d, sampler v%d", i, b.Version, s.Version)
		}
		if len(b.Weights) != 2 || b.Weights[0] != float32(b.Version) {
			t.Fatalf("load %d: broadcaster v%d carries weights %v", i, b.Version, b.Weights)
		}
	}
	close(stop)
	if err := <-saverDone; err != nil {
		t.Fatalf("saver: %v", err)
	}
}
