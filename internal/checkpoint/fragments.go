package checkpoint

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
)

// fragMagic identifies fragment-set checkpoint files.
const fragMagic = 0x58544653 // "XTFS"

// FragmentState is one named fragment's parameter snapshot inside a
// fragment-set checkpoint: the broadcast fragment's committed aggregate plus
// each learn replica's last pushed weights, keyed by canonical fragment name.
type FragmentState struct {
	Name  string
	State State
}

// SaveFragments writes the named states to path atomically as one
// fragment-set file, so a restore always sees a mutually consistent set.
func SaveFragments(path string, states []FragmentState) error {
	size := 12
	for _, fs := range states {
		size += 4 + len(fs.Name) + 12 + 4*len(fs.State.Weights)
	}
	buf := make([]byte, 0, size+4)
	buf = binary.LittleEndian.AppendUint32(buf, fragMagic)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(states)))
	for _, fs := range states {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(fs.Name)))
		buf = append(buf, fs.Name...)
		buf = binary.LittleEndian.AppendUint64(buf, uint64(fs.State.Version))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(fs.State.Weights)))
		for _, w := range fs.State.Weights {
			buf = binary.LittleEndian.AppendUint32(buf, math.Float32bits(w))
		}
	}
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))

	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".ckpt-*")
	if err != nil {
		return fmt.Errorf("checkpoint save fragments: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(buf); err != nil {
		_ = tmp.Close()
		_ = os.Remove(tmpName)
		return fmt.Errorf("checkpoint save fragments: %w", err)
	}
	if err := tmp.Close(); err != nil {
		_ = os.Remove(tmpName)
		return fmt.Errorf("checkpoint save fragments: %w", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		_ = os.Remove(tmpName)
		return fmt.Errorf("checkpoint save fragments: %w", err)
	}
	return nil
}

// SaveFragmentsRotating writes the states as the next member of path's
// rotation set (path.N ascending, newest largest), pruning members beyond
// keep — the fragment-set counterpart of SaveRotating.
func SaveFragmentsRotating(path string, states []FragmentState, keep int) error {
	if keep < 1 {
		keep = 1
	}
	members, err := rotationMembers(path)
	if err != nil {
		return fmt.Errorf("checkpoint rotate fragments: %w", err)
	}
	next := 1
	if len(members) > 0 {
		next = members[len(members)-1] + 1
	}
	if err := SaveFragments(fmt.Sprintf("%s.%d", path, next), states); err != nil {
		return err
	}
	members = append(members, next)
	for len(members) > keep {
		_ = os.Remove(fmt.Sprintf("%s.%d", path, members[0]))
		members = members[1:]
	}
	return nil
}

// LoadFragments reads and validates one fragment-set checkpoint file.
func LoadFragments(path string) ([]FragmentState, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("checkpoint load fragments: %w", err)
	}
	if len(data) < 12 {
		return nil, fmt.Errorf("file too short: %w", ErrCorrupt)
	}
	body, sum := data[:len(data)-4], binary.LittleEndian.Uint32(data[len(data)-4:])
	if crc32.ChecksumIEEE(body) != sum {
		return nil, fmt.Errorf("checksum mismatch: %w", ErrCorrupt)
	}
	if binary.LittleEndian.Uint32(body) != fragMagic {
		return nil, fmt.Errorf("bad magic: %w", ErrCorrupt)
	}
	count := int(binary.LittleEndian.Uint32(body[4:]))
	off := 8
	need := func(n int) bool { return off+n <= len(body) }
	states := make([]FragmentState, 0, count)
	for i := 0; i < count; i++ {
		if !need(4) {
			return nil, fmt.Errorf("truncated name length: %w", ErrCorrupt)
		}
		nl := int(binary.LittleEndian.Uint32(body[off:]))
		off += 4
		if nl > len(body)-off {
			return nil, fmt.Errorf("truncated name: %w", ErrCorrupt)
		}
		name := string(body[off : off+nl])
		off += nl
		if !need(12) {
			return nil, fmt.Errorf("truncated state header: %w", ErrCorrupt)
		}
		version := int64(binary.LittleEndian.Uint64(body[off:]))
		off += 8
		nw := int(binary.LittleEndian.Uint32(body[off:]))
		off += 4
		if nw > (len(body)-off)/4 {
			return nil, fmt.Errorf("truncated weights: %w", ErrCorrupt)
		}
		weights := make([]float32, nw)
		for j := range weights {
			weights[j] = math.Float32frombits(binary.LittleEndian.Uint32(body[off+4*j:]))
		}
		off += 4 * nw
		states = append(states, FragmentState{Name: name, State: State{Version: version, Weights: weights}})
	}
	if off != len(body) {
		return nil, fmt.Errorf("trailing bytes: %w", ErrCorrupt)
	}
	return states, nil
}

// LoadLatestFragments restores the newest readable fragment-set checkpoint
// at path: rotation members newest-first, then the bare path. Corrupt
// members are skipped; ErrNoCheckpoint means nothing restorable exists.
func LoadLatestFragments(path string) ([]FragmentState, error) {
	members, err := rotationMembers(path)
	if err != nil {
		return nil, fmt.Errorf("checkpoint load fragments: %w", err)
	}
	for i := len(members) - 1; i >= 0; i-- {
		if states, err := LoadFragments(fmt.Sprintf("%s.%d", path, members[i])); err == nil {
			return states, nil
		}
	}
	if states, err := LoadFragments(path); err == nil {
		return states, nil
	}
	return nil, fmt.Errorf("%s: %w", path, ErrNoCheckpoint)
}
