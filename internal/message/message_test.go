package message

import (
	"sync"
	"testing"
	"time"
)

func TestNewAssignsUniqueIDs(t *testing.T) {
	seen := make(map[uint64]bool)
	for i := 0; i < 1000; i++ {
		m := New(TypeRollout, "src", []string{"dst"}, nil)
		if seen[m.Header.ID] {
			t.Fatalf("duplicate message ID %d", m.Header.ID)
		}
		seen[m.Header.ID] = true
	}
}

func TestNewIDsUniqueUnderConcurrency(t *testing.T) {
	const goroutines, each = 8, 500
	ids := make(chan uint64, goroutines*each)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				ids <- New(TypeStats, "s", nil, nil).Header.ID
			}
		}()
	}
	wg.Wait()
	close(ids)
	seen := make(map[uint64]bool)
	for id := range ids {
		if seen[id] {
			t.Fatalf("duplicate ID %d under concurrency", id)
		}
		seen[id] = true
	}
}

func TestNewPopulatesHeader(t *testing.T) {
	before := time.Now().UnixNano()
	m := New(TypeWeights, "learner", []string{"explorer-0", "explorer-1"}, &WeightsPayload{Version: 3})
	after := time.Now().UnixNano()
	h := m.Header
	if h.Type != TypeWeights || h.Src != "learner" || len(h.Dst) != 2 {
		t.Fatalf("header = %+v", h)
	}
	if h.CreatedNanos < before || h.CreatedNanos > after {
		t.Fatalf("CreatedNanos %d outside [%d, %d]", h.CreatedNanos, before, after)
	}
	if m.Body.(*WeightsPayload).Version != 3 {
		t.Fatal("body lost")
	}
}

func TestTypeString(t *testing.T) {
	cases := map[Type]string{
		TypeRollout: "rollout",
		TypeWeights: "weights",
		TypeStats:   "stats",
		TypeControl: "control",
		TypeDummy:   "dummy",
		Type(99):    "unknown",
	}
	for typ, want := range cases {
		if got := typ.String(); got != want {
			t.Fatalf("%d.String() = %q, want %q", typ, got, want)
		}
	}
}

func TestTypeDroppable(t *testing.T) {
	cases := map[Type]bool{
		TypeRollout: true,
		TypeDummy:   true,
		TypeStats:   true,
		TypeWeights: false,
		TypeControl: false,
	}
	for typ, want := range cases {
		if got := typ.Droppable(); got != want {
			t.Fatalf("%v.Droppable() = %v, want %v", typ, got, want)
		}
	}
}
