// Package message defines the message envelope that travels through
// XingTian's asynchronous communication channel: a lightweight header
// (what flows through header and ID queues) and a typed body (what lives in
// the shared-memory object store).
package message

import (
	"sync/atomic"
	"time"

	"xingtian/internal/objectstore"
	"xingtian/internal/rollout"
)

// Type tags the payload carried by a message.
type Type uint8

// Message types. The router treats them uniformly (it is algorithm
// agnostic); types exist so workhorse threads can dispatch received bodies.
const (
	TypeRollout Type = iota + 1
	TypeWeights
	TypeStats
	TypeControl
	TypeDummy
	// TypeWeightsDelta carries a sparse/quantized weight update against a
	// base version the destination already holds. It shares the privileged
	// class with TypeWeights: deltas chain, so losing one would wedge the
	// destination until a dense fallback.
	TypeWeightsDelta
)

// String returns a human-readable type name.
func (t Type) String() string {
	switch t {
	case TypeRollout:
		return "rollout"
	case TypeWeights:
		return "weights"
	case TypeStats:
		return "stats"
	case TypeControl:
		return "control"
	case TypeDummy:
		return "dummy"
	case TypeWeightsDelta:
		return "weights-delta"
	default:
		return "unknown"
	}
}

// WeightsClass reports whether messages of this type carry learner weights
// (dense snapshots or deltas) — the traffic the weight plane plans, the
// explorer credit window counts as credits, and the broadcast tree relays.
// The switch is deliberately exhaustive with no default: adding a message
// type must force a decision here (xt-lint's typeswitch analyzer enforces it).
func (t Type) WeightsClass() bool {
	switch t {
	case TypeWeights, TypeWeightsDelta:
		return true
	case TypeRollout, TypeStats, TypeControl, TypeDummy:
		return false
	}
	return false // unknown wire value: not weights traffic
}

// Droppable reports whether messages of this type may be shed under
// backpressure. The channel recognizes two classes: continuously regenerated
// traffic — trajectories, dummy benchmark bodies, and periodic statistics —
// is droppable (off-policy corrections tolerate lost or stale trajectories,
// and the next telemetry snapshot supersedes a shed one), while weights and
// control messages are privileged and must always be delivered. Only the
// privileged class may hold store references past the budget's high
// watermark, so its volume must stay small — which is exactly why
// high-frequency telemetry is in the droppable class.
// Exhaustive by design, like WeightsClass: the shed paths in broker and the
// relay tree consult this, so a new type must be classified explicitly.
func (t Type) Droppable() bool {
	switch t {
	case TypeRollout, TypeDummy, TypeStats:
		return true
	case TypeWeights, TypeControl, TypeWeightsDelta:
		return false
	}
	return false // unknown wire value: fail safe, never shed
}

// Header is the metadata that travels through header queues and ID queues.
// It is intentionally small: queues carry headers, the object store carries
// bodies.
type Header struct {
	// ID is unique per process for the lifetime of the run.
	ID uint64
	// Type tags the body.
	Type Type
	// Src is the producing node ("explorer-3", "learner", ...).
	Src string
	// Dst lists destination nodes; weights broadcasts have several.
	Dst []string
	// ObjectID locates the serialized body in the object store once the
	// sender thread has inserted it; zero until then.
	ObjectID objectstore.ID
	// BodySize is the serialized (possibly compressed) body length.
	BodySize int
	// Compressed records whether the stored body is LZ4-compressed.
	Compressed bool
	// CreatedNanos is the production timestamp (for latency accounting).
	CreatedNanos int64
	// WeightsVersion annotates weights messages.
	WeightsVersion int64
	// BaseVersion annotates weights-delta messages with the version the
	// delta applies on top of.
	BaseVersion int64
	// RelayHops is the remaining relay budget for tree-routed broadcasts: a
	// broker receiving a remote-bound destination list forwards it onward
	// only while RelayHops > 0, decrementing per hop. Zero (the default)
	// means star routing.
	RelayHops uint8
	// Round annotates dummy-benchmark messages with their round index,
	// fragment heartbeat/weights traffic with the sending replica's
	// incarnation epoch (so a respawned replica's peers can discard a
	// retired incarnation's late messages), and membership verdict/takeover
	// records with the machine-death verdict epoch respectively the
	// re-placed fragment's new incarnation epoch.
	Round int32
}

// Message couples a header with its in-process body. Inside a process the
// body stays a typed Go value; it is serialized only when crossing the
// process boundary through the shared-memory communicator.
type Message struct {
	Header *Header
	Body   any
}

// Payload bodies -------------------------------------------------------------

// WeightsPayload carries flattened DNN parameters from the learner.
type WeightsPayload struct {
	Version int64
	Data    []float32
}

// WeightsDeltaPayload carries a sparse and optionally int8-quantized update
// from BaseVersion to Version. The destination must currently hold exactly
// the reconstructed weights of BaseVersion (the learner's planner tracks
// what it last sent each destination and keeps the same reconstruction,
// so both sides apply bit-identical float32 arithmetic).
//
// Layouts:
//   - sparse:    Indices[i] names the parameter changed by the i-th entry.
//   - dense:     Indices == nil and the entries cover all NumParams slots.
//   - quantized: Scale > 0 and Q holds int8 steps; delta[i] = Scale*Q[i].
//   - exact:     Scale == 0 and Values holds raw float32 deltas.
//   - empty:     no entries at all — a pure version bump for a broadcast
//     whose delta norm fell below the skip threshold. It still flows as a
//     privileged message because weights traffic doubles as flow-control
//     credit for on-policy explorers.
type WeightsDeltaPayload struct {
	Version     int64
	BaseVersion int64
	// NumParams is the full parameter-vector length, checked on apply.
	NumParams int32
	// Scale is the quantization step (maxAbs/127); 0 means unquantized.
	Scale float32
	// Indices are sorted parameter indices for sparse layout; nil = dense.
	Indices []uint32
	// Q holds quantized deltas when Scale > 0.
	Q []int8
	// Values holds exact float32 deltas when Scale == 0.
	Values []float32
}

// Entries returns the number of encoded delta entries.
func (d *WeightsDeltaPayload) Entries() int {
	if d.Scale > 0 {
		return len(d.Q)
	}
	return len(d.Values)
}

// StatsPayload carries periodic metrics from workhorse threads to the
// center controller.
type StatsPayload struct {
	Node           string
	Episodes       int64
	MeanReturn     float64
	StepsGenerated int64
	StepsConsumed  int64
	TrainIters     int64
	UnixNanos      int64
}

// ControlKind enumerates controller commands.
type ControlKind uint8

// Controller commands.
const (
	ControlShutdown ControlKind = iota + 1
	ControlStart
	ControlSetHyperparams
	// ControlWeightsResync is an explorer→learner NACK: a weights delta
	// failed to apply (stale base after a restart, corrupt payload), so the
	// learner must fall back to a dense snapshot for that explorer.
	ControlWeightsResync
	// ControlAckSnapshot carries a sample fragment's rollout-carried
	// weights-version ledger to the broadcast fragment, whose broker may
	// never see rollout traffic directly (the fragments can live on
	// different machines). The snapshot rides in ControlPayload.Acked.
	ControlAckSnapshot
	// ControlVersionAnnounce tells the sample fragment which weights
	// version the broadcast fragment last committed; the version itself
	// travels in Header.WeightsVersion. The sampler's bounded-staleness
	// filter measures rollout age against it.
	ControlVersionAnnounce
	// ControlHeartbeat is a learn replica's liveness beat to the sample and
	// broadcast fragments. Header.Src names the replica, Header.Round its
	// incarnation epoch, and ControlPayload.LastRolloutID the newest
	// dispatched rollout the replica has ingested — the consumption ack the
	// sampler prunes its in-flight ledger with.
	ControlHeartbeat
	// ControlQuarantine tells the sample and broadcast fragments to retire
	// the replica named in ControlPayload.Peer: the sampler stops
	// dispatching to it (re-dispatching its un-acked in-flight batches to
	// survivors) and the broadcaster drops it from aggregation.
	ControlQuarantine
	// ControlRejoin reverses a quarantine after a supervised respawn: the
	// replica named in ControlPayload.Peer rejoins dispatch and aggregation
	// at the incarnation epoch carried in Header.Round. The broadcaster
	// answers with a dense aggregate echo (the RestoreWeights resync path).
	ControlRejoin
	// ControlDrain is a teardown nudge addressed to a stopping replica so a
	// receiver thread blocked on its port observes the closed receive buffer
	// and exits. Live incarnations ignore it.
	ControlDrain
	// ControlLeaseRenew is a machine's membership lease renewal, sent from
	// its memberd port to the session coordinator's lease sink. The renewing
	// machine's ID travels in ControlPayload.Machine; a coordinator that
	// misses enough consecutive renewals (corroborated by the fabric's
	// per-peer link state) declares the machine dead.
	ControlLeaseRenew
	// ControlMachineDead records an epoch-fenced machine-death verdict:
	// ControlPayload.Machine names the dead machine and Header.Round carries
	// the verdict epoch. The re-placement engine emits it to the controller
	// port as the audit record for a takeover wave.
	ControlMachineDead
	// ControlTakeover announces that the fragment named in
	// ControlPayload.Peer has been re-placed onto the machine in
	// ControlPayload.Machine at the new incarnation epoch in Header.Round.
	// Sent to the controller port for audit counting; sampler and explorer
	// takeovers are additionally sent to the broadcast fragment, which
	// re-broadcasts dense weights so rebuilt (or credit-starved) peers
	// resynchronize with the committed version space.
	ControlTakeover
)

// ControlPayload carries a control command from a controller.
type ControlPayload struct {
	Kind ControlKind
	// Hyperparams is set for ControlSetHyperparams (PBT mutation).
	Hyperparams map[string]float64
	// Acked is set for ControlAckSnapshot: the last weights version seen on
	// each source's rollout traffic, keyed by source name.
	Acked map[string]int64
	// Peer names the learn replica a ControlQuarantine/ControlRejoin (and,
	// redundantly with Header.Src, a ControlHeartbeat) concerns.
	Peer string
	// LastRolloutID is set for ControlHeartbeat: the highest dispatched
	// rollout header ID the replica has ingested this incarnation.
	LastRolloutID uint64
	// Machine is set for membership traffic: the renewing machine for
	// ControlLeaseRenew, the dead machine for ControlMachineDead, and the
	// fragment's new home for ControlTakeover.
	Machine int
}

// DummyPayload is the opaque byte body used by the §5.1 data-transmission
// benchmark.
type DummyPayload struct {
	Data []byte
}

// RolloutBody aliases the rollout batch for readability at use sites.
type RolloutBody = rollout.Batch

var nextID atomic.Uint64

// New creates a message with a fresh ID and the current timestamp.
func New(t Type, src string, dst []string, body any) *Message {
	return &Message{
		Header: &Header{
			ID:           nextID.Add(1),
			Type:         t,
			Src:          src,
			Dst:          dst,
			CreatedNanos: time.Now().UnixNano(),
		},
		Body: body,
	}
}
