// Package core implements XingTian's decentralized computation layer: the
// explorer and learner processes (workhorse + sender + receiver threads),
// the controller that manages their life cycle, and the researcher-facing
// Agent/Algorithm interfaces of the paper's §4.2.
//
// There is deliberately no task graph and no central scheduler: explorers
// and the learner are driven purely by the arrival of the data they await
// (weights and rollouts respectively) and push what they produce into the
// asynchronous channel immediately.
package core

import (
	"xingtian/internal/message"
	"xingtian/internal/rollout"
)

// Agent is the explorer-side interface (the paper's Agent class): it owns
// copies of the DNNs, decides actions (infer_action), and assembles rollout
// fragments from environment feedback (handle_env_feedback).
type Agent interface {
	// Rollout interacts with the environment for up to n steps and returns
	// the assembled batch.
	Rollout(n int) (*rollout.Batch, error)
	// SetWeights applies a parameter broadcast from the learner.
	SetWeights(w *message.WeightsPayload) error
	// WeightsVersion returns the version currently applied.
	WeightsVersion() int64
	// OnPolicy reports whether the agent must wait for fresh weights after
	// shipping each rollout (PPO) or may keep sampling with stale ones
	// (DQN, IMPALA).
	OnPolicy() bool
	// EpisodeStats reports completed episodes and their mean return over
	// the most recent window.
	EpisodeStats() (episodes int64, meanReturn float64)
}

// DeltaAgent is implemented by agents that can advance their parameters by
// a sparse/quantized delta against the last broadcast they applied. Agents
// without it (or a delta whose base the agent no longer holds) trigger a
// ControlWeightsResync NACK and the learner falls back to a dense snapshot.
type DeltaAgent interface {
	ApplyWeightsDelta(d *message.WeightsDeltaPayload) error
}

// TrainResult describes one completed training session.
type TrainResult struct {
	// StepsConsumed is the number of rollout steps used by the session
	// (the unit of the paper's throughput metric).
	StepsConsumed int
	// Broadcast indicates new weights should be sent out now.
	Broadcast bool
	// Targets lists explorer IDs to receive the weights; nil means all
	// explorers (IMPALA sends exactly to the contributors, DQN/PPO to
	// everyone).
	Targets []int32
	// Loss is the session's training loss, for diagnostics.
	Loss float32
}

// Algorithm is the learner-side interface (the paper's Algorithm class):
// prepare_data ingests rollouts (including replay-buffer maintenance, which
// XingTian keeps inside the trainer thread) and train runs optimization
// sessions.
type Algorithm interface {
	// Name identifies the algorithm ("DQN", "PPO", "IMPALA").
	Name() string
	// PrepareData ingests one received rollout batch.
	PrepareData(b *rollout.Batch)
	// TryTrain runs a training session if the algorithm has enough data,
	// returning ok=false when it must wait for more rollouts.
	TryTrain() (res TrainResult, ok bool, err error)
	// Weights snapshots the current parameters for broadcast.
	Weights() *message.WeightsPayload
}

// WeightsRestorer is implemented by algorithms that can reinstate a
// checkpointed snapshot including its version counter. Session resume
// prefers it; algorithms without it fall back to a plain weights load
// (versions restart from zero).
type WeightsRestorer interface {
	RestoreWeights(version int64, data []float32) error
}

// AgentFactory builds the agent for one explorer. Factories receive the
// explorer's ID and a derived seed so parallel explorers diversify the
// state space (the point of parallel sampling).
type AgentFactory func(explorerID int32, seed int64) (Agent, error)

// AlgorithmFactory builds the learner's algorithm instance.
type AlgorithmFactory func(seed int64) (Algorithm, error)
