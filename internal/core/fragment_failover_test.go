package core_test

import (
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"xingtian/internal/core"
	"xingtian/internal/message"
	"xingtian/internal/rollout"
)

// failoverAlgorithm is a deterministic learn-replica algorithm for failover
// tests: it consumes one batch per train, bumps its version, and broadcasts.
// crashAt > 0 makes the crashAt-th train return an error (a dying replica);
// stallAt > 0 makes the stallAt-th train hang for stallFor instead (a silent
// wedge — the failure mode only the heartbeat deadline detector catches). It
// restores checkpointed or echoed state, so respawned incarnations rejoin
// the committed version sequence.
type failoverAlgorithm struct {
	crashAt  int
	stallAt  int
	stallFor time.Duration

	mu       sync.Mutex
	pending  []*rollout.Batch
	version  int64
	weights  []float32
	trains   int
	consumed int64
}

// consumedSteps reports the rollout steps this instance actually trained on
// (errored trains excluded) — the ground truth the session report must match.
func (f *failoverAlgorithm) consumedSteps() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.consumed
}

var (
	_ core.Algorithm       = (*failoverAlgorithm)(nil)
	_ core.WeightsRestorer = (*failoverAlgorithm)(nil)
)

func (f *failoverAlgorithm) Name() string { return "failover" }

func (f *failoverAlgorithm) PrepareData(b *rollout.Batch) {
	f.mu.Lock()
	f.pending = append(f.pending, b)
	f.mu.Unlock()
}

func (f *failoverAlgorithm) Weights() *message.WeightsPayload {
	f.mu.Lock()
	defer f.mu.Unlock()
	return &message.WeightsPayload{Version: f.version, Data: append([]float32(nil), f.weights...)}
}

func (f *failoverAlgorithm) RestoreWeights(version int64, data []float32) error {
	f.mu.Lock()
	f.version = version
	f.weights = append(f.weights[:0], data...)
	f.mu.Unlock()
	return nil
}

func (f *failoverAlgorithm) TryTrain() (core.TrainResult, bool, error) {
	f.mu.Lock()
	if len(f.pending) == 0 {
		f.mu.Unlock()
		return core.TrainResult{}, false, nil
	}
	b := f.pending[0]
	f.pending = f.pending[1:]
	f.trains++
	trains := f.trains
	f.version++
	f.mu.Unlock()
	if f.crashAt > 0 && trains == f.crashAt {
		return core.TrainResult{}, false, errTrainBoom
	}
	if f.stallAt > 0 && trains == f.stallAt {
		time.Sleep(f.stallFor)
	}
	f.mu.Lock()
	f.consumed += int64(len(b.Steps))
	f.mu.Unlock()
	return core.TrainResult{StepsConsumed: len(b.Steps), Broadcast: true}, true, nil
}

// faultSpec configures the single faulty first incarnation that
// failoverFactories wires up. A plain value type (unlike failoverAlgorithm,
// which carries a mutex) so it can be passed by value.
type faultSpec struct {
	crashAt  int
	stallAt  int
	stallFor time.Duration
}

// failoverFactories wires a 2-replica failover deployment: the first factory
// call (learn replica 0's first incarnation) gets the configured fault,
// every later call — replica 1 and all respawns — runs clean. Explorers
// never fail.
func failoverFactories(fault faultSpec) (core.AlgorithmFactory, core.AgentFactory) {
	var calls atomic.Int32
	algF := func(seed int64) (core.Algorithm, error) {
		a := &failoverAlgorithm{weights: []float32{1}}
		if calls.Add(1) == 1 {
			a.crashAt = fault.crashAt
			a.stallAt = fault.stallAt
			a.stallFor = fault.stallFor
		}
		return a, nil
	}
	agF := func(id int32, seed int64) (core.Agent, error) {
		return &faultyAgent{failAfter: 1 << 30}, nil
	}
	return algF, agF
}

// TestLearnerFailoverStepAccounting: every incarnation's steps must count
// exactly once in the session report, whether the slot respawned (the retired
// incarnation's progress is folded into the slot when its successor is
// installed) or degraded permanently (the retiree stays installed and keeps
// counting directly). The report is compared against the ground truth the
// algorithm instances tracked themselves — a double-count fails the equality.
func TestLearnerFailoverStepAccounting(t *testing.T) {
	for _, tc := range []struct {
		name     string
		restarts int
	}{
		{name: "degraded-no-respawn", restarts: 0},
		{name: "respawned", restarts: 3},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var mu sync.Mutex
			var algs []*failoverAlgorithm
			algF := func(seed int64) (core.Algorithm, error) {
				a := &failoverAlgorithm{weights: []float32{1}}
				mu.Lock()
				if len(algs) == 0 {
					a.crashAt = 2
				}
				algs = append(algs, a)
				mu.Unlock()
				return a, nil
			}
			agF := func(id int32, seed int64) (core.Agent, error) {
				return &faultyAgent{failAfter: 1 << 30}, nil
			}
			s, err := core.NewSession(core.Config{
				NumExplorers:       4,
				RolloutLen:         40,
				MaxSteps:           2000,
				MaxDuration:        60 * time.Second,
				Topology:           core.ReplicatedTopology(2),
				LearnerFailover:    true,
				MaxLearnerRestarts: tc.restarts,
				RestartBackoff:     2 * time.Millisecond,
				HeartbeatEvery:     20 * time.Millisecond,
			}, algF, agF, 25)
			if err != nil {
				t.Fatalf("NewSession: %v", err)
			}
			s.Start()
			s.Wait()
			rep := s.Stop()
			if err := s.Err(); err != nil {
				t.Fatalf("session error: %v", err)
			}
			var actual int64
			mu.Lock()
			for _, a := range algs {
				actual += a.consumedSteps()
			}
			mu.Unlock()
			var reported int64
			for _, n := range rep.Fragments.LearnSteps {
				reported += n
			}
			if reported != actual {
				t.Fatalf("LearnSteps sum = %d, algorithms trained on %d — each incarnation must count exactly once", reported, actual)
			}
			if int64(rep.StepsConsumed) != actual {
				t.Fatalf("StepsConsumed = %d, algorithms trained on %d", rep.StepsConsumed, actual)
			}
		})
	}
}

// TestLearnerFailoverRespawn: a 2-replica topology with a crashing replica
// must quarantine it, re-dispatch its in-flight batches, respawn it from the
// fragment checkpoint, and still reach the step target with a clean channel.
func TestLearnerFailoverRespawn(t *testing.T) {
	algF, agF := failoverFactories(faultSpec{crashAt: 3})
	s, err := core.NewSession(core.Config{
		NumExplorers:       4,
		RolloutLen:         40,
		MaxSteps:           4000,
		MaxDuration:        60 * time.Second,
		Topology:           core.ReplicatedTopology(2),
		LearnerFailover:    true,
		MaxLearnerRestarts: 3,
		RestartBackoff:     2 * time.Millisecond,
		HeartbeatEvery:     20 * time.Millisecond,
		CheckpointPath:     filepath.Join(t.TempDir(), "failover.ckpt"),
		CheckpointEvery:    2,
	}, algF, agF, 21)
	if err != nil {
		t.Fatalf("NewSession: %v", err)
	}
	s.Start()
	s.Wait()
	rep := s.Stop()
	if err := s.Err(); err != nil {
		t.Fatalf("session error: %v", err)
	}
	if rep.StepsConsumed < 4000 {
		t.Fatalf("StepsConsumed = %d, want >= 4000", rep.StepsConsumed)
	}
	fr := rep.Fragments
	if fr == nil {
		t.Fatal("fragmented run must report fragment measurements")
	}
	if fr.Quarantines < 1 {
		t.Fatalf("Quarantines = %d, want >= 1", fr.Quarantines)
	}
	if fr.Respawns < 1 {
		t.Fatalf("Respawns = %d, want >= 1", fr.Respawns)
	}
	if fr.Degraded != 0 {
		t.Fatalf("Degraded = %d, want 0 (budget never ran out)", fr.Degraded)
	}
	if leaked := rep.Channel.TotalLeaked(); leaked != 0 {
		t.Fatalf("TotalLeaked = %d, want 0; health:\n%s", leaked, rep.Channel.String())
	}
}

// TestLearnerFailoverDegradedBudgetZero: with a zero respawn budget a dead
// replica is quarantined and its slot degrades permanently; the run must
// complete N-1 on the survivor without a session error.
func TestLearnerFailoverDegradedBudgetZero(t *testing.T) {
	algF, agF := failoverFactories(faultSpec{crashAt: 2})
	s, err := core.NewSession(core.Config{
		NumExplorers:       4,
		RolloutLen:         40,
		MaxSteps:           3000,
		MaxDuration:        60 * time.Second,
		Topology:           core.ReplicatedTopology(2),
		LearnerFailover:    true,
		MaxLearnerRestarts: 0,
		RestartBackoff:     2 * time.Millisecond,
		HeartbeatEvery:     20 * time.Millisecond,
	}, algF, agF, 22)
	if err != nil {
		t.Fatalf("NewSession: %v", err)
	}
	s.Start()
	s.Wait()
	rep := s.Stop()
	if err := s.Err(); err != nil {
		t.Fatalf("session error: %v (degraded N-1 must not fail the session)", err)
	}
	if rep.StepsConsumed < 3000 {
		t.Fatalf("StepsConsumed = %d, want >= 3000", rep.StepsConsumed)
	}
	fr := rep.Fragments
	if fr.Quarantines != 1 {
		t.Fatalf("Quarantines = %d, want 1", fr.Quarantines)
	}
	if fr.Respawns != 0 {
		t.Fatalf("Respawns = %d, want 0 (budget is zero)", fr.Respawns)
	}
	if fr.Degraded != 1 {
		t.Fatalf("Degraded = %d, want 1", fr.Degraded)
	}
	if leaked := rep.Channel.TotalLeaked(); leaked != 0 {
		t.Fatalf("TotalLeaked = %d, want 0", leaked)
	}
}

// TestLearnerFailoverHungReplicaDetected: a replica that silently wedges
// inside a training step never errors — only the heartbeat deadline detector
// can catch it. The detector must quarantine it and the run complete on the
// survivor.
func TestLearnerFailoverHungReplicaDetected(t *testing.T) {
	algF, agF := failoverFactories(faultSpec{stallAt: 2, stallFor: 1500 * time.Millisecond})
	s, err := core.NewSession(core.Config{
		NumExplorers:       4,
		RolloutLen:         40,
		MaxSteps:           1 << 40, // the test stops the run itself, after detection
		MaxDuration:        5 * time.Minute,
		Topology:           core.ReplicatedTopology(2),
		LearnerFailover:    true,
		MaxLearnerRestarts: 0,
		RestartBackoff:     2 * time.Millisecond,
		HeartbeatEvery:     10 * time.Millisecond, // 40ms deadline, well under the stall
	}, algF, agF, 23)
	if err != nil {
		t.Fatalf("NewSession: %v", err)
	}
	s.Start()

	// The wedged replica produces no error — detection must come from the
	// heartbeat deadline alone.
	_, _, caster := s.Fragments()
	waitUntil(t, 10*time.Second, "the hung replica to be quarantined", func() bool {
		return caster.Quarantines() >= 1
	})

	rep := s.Stop()
	if err := s.Err(); err != nil {
		t.Fatalf("session error: %v", err)
	}
	if rep.StepsConsumed == 0 {
		t.Fatal("StepsConsumed = 0, want training progress around the hang")
	}
	fr := rep.Fragments
	if fr.Quarantines < 1 {
		t.Fatalf("Quarantines = %d, want >= 1 (the hung replica must be detected)", fr.Quarantines)
	}
	if fr.Respawns != 0 {
		t.Fatalf("Respawns = %d, want 0 (budget is zero)", fr.Respawns)
	}
	if leaked := rep.Channel.TotalLeaked(); leaked != 0 {
		t.Fatalf("TotalLeaked = %d, want 0", leaked)
	}
}

// TestStopDuringLearnerFailoverReturnsPromptly: Session.Stop issued while a
// learn-replica supervisor sleeps out a long respawn backoff must interrupt
// it, return within the 5s bound, and stay idempotent.
func TestStopDuringLearnerFailoverReturnsPromptly(t *testing.T) {
	algF, agF := failoverFactories(faultSpec{crashAt: 1})
	s, err := core.NewSession(core.Config{
		NumExplorers:       2,
		RolloutLen:         20,
		MaxSteps:           1 << 40,
		MaxDuration:        5 * time.Minute,
		Topology:           core.ReplicatedTopology(2),
		LearnerFailover:    true,
		MaxLearnerRestarts: 10,
		RestartBackoff:     30 * time.Second,
		HeartbeatEvery:     20 * time.Millisecond,
	}, algF, agF, 24)
	if err != nil {
		t.Fatalf("NewSession: %v", err)
	}
	s.Start()

	// Wait until the failure has been quarantined — the supervisor records
	// it on the broadcaster before entering the backoff sleep.
	_, _, caster := s.Fragments()
	waitUntil(t, 10*time.Second, "the crashed replica to be quarantined", func() bool {
		return caster.Quarantines() >= 1
	})

	stopStart := time.Now()
	rep := s.Stop()
	if elapsed := time.Since(stopStart); elapsed > 5*time.Second {
		t.Fatalf("Stop took %v with a %v respawn backoff pending — the backoff sleep must be interrupted",
			elapsed, 30*time.Second)
	}
	if again := s.Stop(); again != rep {
		t.Fatal("Stop is not idempotent: second call returned a different report")
	}
	if err := s.Err(); err != nil {
		t.Fatalf("session error: %v (a mid-failover Stop is not a failure)", err)
	}
	if rep.Fragments.Quarantines < 1 {
		t.Fatalf("Quarantines = %d, want >= 1", rep.Fragments.Quarantines)
	}
	if leaked := rep.Channel.TotalLeaked(); leaked != 0 {
		t.Fatalf("TotalLeaked = %d, want 0", leaked)
	}
}
