// Dataflow-fragment runtime: the training loop decomposed into
// independently placeable fragments in the style of MSRL, connected only by
// the existing queue/store/fabric primitives (broker ports). Four fragment
// kinds exist:
//
//   - rollout fragments — the explorers, unchanged, pointed at the sample
//     fragment instead of the learner;
//   - the replay/sample fragment — receives every rollout, applies the
//     topology's bounded-staleness rule against the committed weights
//     version, and dispatches survivors round-robin to the learn replicas;
//   - learn fragments — one Algorithm replica each, training independently
//     and pushing post-train weights to the broadcast fragment;
//   - the broadcast fragment — aggregates replica weights (element-wise
//     mean of each replica's latest push), commits a new global version,
//     plans the weight broadcast to every explorer through the §5g weight
//     plane, periodically echoes the aggregate back to the replicas so they
//     do not drift, and owns per-fragment checkpointing.
//
// Relaxed assignment dependencies: stages never hand-shake. A learn
// fragment may train on any rollout the sampler dispatched, and the sampler
// dispatches any rollout at most Topology.MaxStaleness weight versions
// behind the committed version (0 = strict assignment order, negative =
// unbounded). The dispatch-time committed version is stamped into the
// rollout header's BaseVersion so the bound is checkable downstream.
package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"xingtian/internal/broker"
	"xingtian/internal/buffer"
	"xingtian/internal/checkpoint"
	"xingtian/internal/message"
	"xingtian/internal/queue"
	"xingtian/internal/stats"
	"xingtian/internal/weightplane"
)

// ackSnapshotEvery is the rollout cadence at which the sample fragment
// forwards its ack ledger to the broadcast fragment. Snapshots are
// privileged control traffic, so the cadence bounds their rate.
const ackSnapshotEvery = 4

// SampleFragment is the replay/sample stage: the one consumer of raw
// rollout traffic. It keeps the rollout-carried ack ledger, enforces the
// bounded-staleness edge, and load-balances dispatch across learn replicas.
type SampleFragment struct {
	port      *broker.Port
	learnDsts []string
	maxStale  int

	committed atomic.Int64
	ledger    map[string]int64 // touched only by the recv loop
	next      int
	sinceSnap int

	staleDrops atomic.Int64
	dispatched atomic.Int64

	wg      sync.WaitGroup
	mu      sync.Mutex
	lastErr error
}

// NewSampleFragment builds the sample fragment over a broker port.
func NewSampleFragment(port *broker.Port, learnDsts []string, maxStale int) *SampleFragment {
	return &SampleFragment{
		port:      port,
		learnDsts: append([]string(nil), learnDsts...),
		maxStale:  maxStale,
		ledger:    make(map[string]int64),
	}
}

// Start launches the sampler's receive/dispatch loop.
func (s *SampleFragment) Start() {
	s.wg.Add(1)
	go s.loop()
}

func (s *SampleFragment) loop() {
	defer s.wg.Done()
	for {
		m, err := s.port.Recv()
		if err != nil {
			return // broker stopped
		}
		switch body := m.Body.(type) {
		case *message.RolloutBody:
			if !s.dispatch(m, body) {
				return
			}
		case *message.ControlPayload:
			switch body.Kind {
			case message.ControlShutdown:
				return
			case message.ControlVersionAnnounce:
				s.advanceCommitted(m.Header.WeightsVersion)
			}
		}
	}
}

// dispatch applies the bounded-staleness rule to one rollout and forwards
// the survivors. It returns false when the channel is torn down.
func (s *SampleFragment) dispatch(m *message.Message, body *message.RolloutBody) bool {
	v := m.Header.WeightsVersion
	src := m.Header.Src
	s.ledger[src] = v
	c := s.committed.Load()
	if s.maxStale >= 0 && c-v > int64(s.maxStale) {
		// The rollout is older than the edge allows: shed it here. The
		// explorer's credit is unharmed — broadcasts reach every explorer,
		// so the spent fragment is refilled by the next weights message.
		s.staleDrops.Add(1)
	} else {
		// Strict assignment order (K=0) routes by version: every rollout of
		// one weights version reaches the same replica, so algorithms that
		// train on one batch per explorer at the current policy (PPO) see
		// the complete synchronous set — per-rollout round-robin would split
		// it and no replica could ever train. Relaxed edges (K != 0) keep
		// round-robin, which balances load without regard to version.
		var dst string
		if s.maxStale == 0 {
			dst = s.learnDsts[int(v)%len(s.learnDsts)]
		} else {
			dst = s.learnDsts[s.next%len(s.learnDsts)]
			s.next++
		}
		fm := message.New(message.TypeRollout, src, []string{dst}, body)
		fm.Header.WeightsVersion = v
		fm.Header.BaseVersion = c // dispatch-time committed version, for the bound's audit
		if err := s.port.Send(fm); err != nil {
			if !errors.Is(err, queue.ErrClosed) {
				s.fail(fmt.Errorf("sample fragment dispatch: %w", err))
			}
			return false
		}
		s.dispatched.Add(1)
	}
	s.sinceSnap++
	if s.sinceSnap >= ackSnapshotEvery {
		s.sinceSnap = 0
		snap := make(map[string]int64, len(s.ledger))
		for k, ver := range s.ledger {
			snap[k] = ver
		}
		sm := message.New(message.TypeControl, SampleName, []string{BroadcastName},
			&message.ControlPayload{Kind: message.ControlAckSnapshot, Acked: snap})
		if err := s.port.Send(sm); err != nil {
			if !errors.Is(err, queue.ErrClosed) {
				s.fail(fmt.Errorf("sample fragment ack snapshot: %w", err))
			}
			return false
		}
	}
	return true
}

// advanceCommitted raises the committed version monotonically — announces
// can arrive out of order across machines and a regression would re-open
// the staleness window.
func (s *SampleFragment) advanceCommitted(v int64) {
	for {
		cur := s.committed.Load()
		if v <= cur || s.committed.CompareAndSwap(cur, v) {
			return
		}
	}
}

func (s *SampleFragment) fail(err error) {
	s.mu.Lock()
	if s.lastErr == nil {
		s.lastErr = err
	}
	s.mu.Unlock()
}

// Err returns the first error the sampler hit, if any.
func (s *SampleFragment) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastErr
}

// StaleDrops reports rollouts shed by the bounded-staleness filter.
func (s *SampleFragment) StaleDrops() int64 { return s.staleDrops.Load() }

// Dispatched reports rollouts forwarded to learn fragments.
func (s *SampleFragment) Dispatched() int64 { return s.dispatched.Load() }

// Committed reports the newest committed weights version the sampler knows.
func (s *SampleFragment) Committed() int64 { return s.committed.Load() }

// Join waits for the sampler's loop after the broker has been stopped.
func (s *SampleFragment) Join() { s.wg.Wait() }

// LearnFragment is one learn replica: an Algorithm instance training on
// whatever the sampler dispatches to it, pushing post-train weights to the
// broadcast fragment, and installing the aggregate echoes it receives.
type LearnFragment struct {
	idx          int
	alg          Algorithm
	port         *broker.Port
	recvBuf      *buffer.Buffer
	numExplorers int

	// WaitHist, TransHist, and Series mirror the legacy learner's
	// measurement hooks; the session merges them across replicas.
	WaitHist  *stats.Histogram
	TransHist *stats.Histogram
	Series    *stats.Series

	stepsConsumed       atomic.Int64
	trainIters          atomic.Int64
	rolloutsSinceUpdate atomic.Int64

	// observeStaleness, when set before Start, is called for every rollout
	// the replica ingests with the rollout's weights version and the
	// committed version stamped at dispatch — the audit hook the bounded-
	// staleness property tests use.
	observeStaleness func(rolloutVer, dispatchVer int64)

	wg      sync.WaitGroup
	stopped chan struct{}
	stopOne sync.Once

	mu      sync.Mutex
	lastErr error
}

// NewLearnFragment builds learn replica idx around an algorithm and port.
func NewLearnFragment(idx int, alg Algorithm, port *broker.Port, numExplorers int, bucket time.Duration) *LearnFragment {
	if bucket <= 0 {
		bucket = time.Second
	}
	return &LearnFragment{
		idx:          idx,
		alg:          alg,
		port:         port,
		recvBuf:      buffer.New(),
		numExplorers: numExplorers,
		WaitHist:     stats.NewHistogram(),
		TransHist:    stats.NewHistogram(),
		Series:       stats.NewSeries(bucket),
		stopped:      make(chan struct{}),
	}
}

// SetStalenessObserver installs the per-rollout staleness audit hook. Call
// before Start.
func (l *LearnFragment) SetStalenessObserver(fn func(rolloutVer, dispatchVer int64)) {
	l.observeStaleness = fn
}

// Start launches the replica's receiver and trainer threads.
func (l *LearnFragment) Start() {
	l.wg.Add(2)
	go l.receiverLoop()
	go l.trainerLoop()
}

func (l *LearnFragment) receiverLoop() {
	defer l.wg.Done()
	for {
		m, err := l.port.Recv()
		if err != nil {
			l.recvBuf.Close()
			return
		}
		if m.Header.Type == message.TypeRollout {
			l.TransHist.Observe(time.Duration(time.Now().UnixNano() - m.Header.CreatedNanos))
		}
		if err := l.recvBuf.Put(m); err != nil {
			return
		}
	}
}

// trainerLoop mirrors the legacy trainer thread: ingest what has arrived,
// train when the algorithm is ready, push the result to the broadcast
// fragment, and block only when there is truly nothing to do.
func (l *LearnFragment) trainerLoop() {
	defer l.wg.Done()
	for {
		select {
		case <-l.stopped:
			return
		default:
		}

		ingested := l.drainNonBlocking()

		res, ok, err := l.alg.TryTrain()
		if err != nil {
			l.fail(fmt.Errorf("learn fragment %d train: %w", l.idx, err))
			return
		}
		if !ok {
			// Warm-up credit refresh, as in the fused loop: explorers spend
			// credit per rollout and refill on weights-class messages, so a
			// replica that cannot train yet must nudge the broadcast
			// fragment into re-broadcasting or the deployment can wedge
			// with every explorer out of credit.
			if l.rolloutsSinceUpdate.Load() >= int64(l.numExplorers) {
				if !l.pushWeights() {
					return
				}
			}
			if ingested == 0 {
				waitStart := time.Now()
				m, err := l.recvBuf.Next()
				if err != nil {
					return
				}
				l.WaitHist.Observe(time.Since(waitStart))
				if !l.ingest(m) {
					return
				}
			}
			continue
		}

		l.trainIters.Add(1)
		l.stepsConsumed.Add(int64(res.StepsConsumed))
		l.Series.Add(float64(res.StepsConsumed))
		if res.Broadcast {
			if !l.pushWeights() {
				return
			}
		}
	}
}

func (l *LearnFragment) drainNonBlocking() int {
	n := 0
	for n < drainCap {
		m, err := l.recvBuf.TryNext()
		if errors.Is(err, queue.ErrEmpty) || errors.Is(err, queue.ErrClosed) {
			return n
		}
		if err != nil {
			return n
		}
		if !l.ingest(m) {
			return n
		}
		n++
	}
	return n
}

// ingest routes one received message; it returns false on shutdown.
func (l *LearnFragment) ingest(m *message.Message) bool {
	switch body := m.Body.(type) {
	case *message.RolloutBody:
		if l.observeStaleness != nil {
			l.observeStaleness(m.Header.WeightsVersion, m.Header.BaseVersion)
		}
		l.alg.PrepareData(body)
		l.rolloutsSinceUpdate.Add(1)
	case *message.WeightsPayload:
		// Aggregate echo from the broadcast fragment: install it so the
		// replicas stay within one aggregation of each other. All four zoo
		// algorithms restore versions; one that cannot just keeps training
		// on its own parameters.
		if r, okR := l.alg.(WeightsRestorer); okR {
			if err := r.RestoreWeights(body.Version, body.Data); err != nil {
				l.fail(fmt.Errorf("learn fragment %d install aggregate: %w", l.idx, err))
				return false
			}
		}
	case *message.ControlPayload:
		if body.Kind == message.ControlShutdown {
			l.stopOne.Do(func() { close(l.stopped) })
			return false
		}
	}
	return true
}

// pushWeights sends the replica's current parameters to the broadcast
// fragment. It returns false when the channel is torn down.
func (l *LearnFragment) pushWeights() bool {
	w := l.alg.Weights()
	m := message.New(message.TypeWeights, LearnName(l.idx), []string{BroadcastName}, w)
	m.Header.WeightsVersion = w.Version
	if err := l.port.Send(m); err != nil {
		if !errors.Is(err, queue.ErrClosed) {
			l.fail(fmt.Errorf("learn fragment %d push: %w", l.idx, err))
		}
		return false
	}
	l.rolloutsSinceUpdate.Store(0)
	return true
}

func (l *LearnFragment) fail(err error) {
	l.mu.Lock()
	if l.lastErr == nil {
		l.lastErr = err
	}
	l.mu.Unlock()
	l.stopOne.Do(func() { close(l.stopped) })
}

// Err returns the first error the replica hit, if any.
func (l *LearnFragment) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.lastErr
}

// StepsConsumed reports rollout steps this replica trained on.
func (l *LearnFragment) StepsConsumed() int64 { return l.stepsConsumed.Load() }

// TrainIters reports completed training sessions on this replica.
func (l *LearnFragment) TrainIters() int64 { return l.trainIters.Load() }

// Algorithm exposes the replica's algorithm for tests and experiments.
func (l *LearnFragment) Algorithm() Algorithm { return l.alg }

// Stop signals the replica's threads to finish.
func (l *LearnFragment) Stop() {
	l.stopOne.Do(func() { close(l.stopped) })
	l.recvBuf.Close()
}

// Join waits for the replica's threads after Stop and broker shutdown.
func (l *LearnFragment) Join() { l.wg.Wait() }

// BroadcastFragment aggregates replica weights into the committed model and
// plans its distribution: weight-plane broadcasts to every explorer,
// aggregate echoes to the replicas, version announces to the sampler, and
// per-fragment checkpoints.
type BroadcastFragment struct {
	port      *broker.Port
	explorers []string
	learnDsts []string
	plane     *weightplane.Planner
	syncEvery int

	ckptPath  string
	ckptEvery int64
	ckptKeep  int

	version atomic.Int64
	aggs    atomic.Int64

	// Replica state is touched only by the recv loop.
	replica    map[string][]float32
	replicaVer map[string]int64
	agg        []float32

	wg      sync.WaitGroup
	mu      sync.Mutex
	lastErr error
}

// BroadcastConfig parameterizes the broadcast fragment.
type BroadcastConfig struct {
	// Explorers lists every explorer client name (broadcast destinations).
	Explorers []string
	// Learners lists the learn replica names (aggregate-echo destinations).
	Learners []string
	// SyncEvery is the aggregation cadence of replica echoes (>= 1).
	SyncEvery int
	// InitialVersion/InitialWeights seed the committed model (the replicas'
	// shared initialization, or the restored checkpoint).
	InitialVersion int64
	InitialWeights []float32
	// WeightPlane configures delta/quantized broadcasting (§5g).
	WeightPlane weightplane.Config
	// CheckpointPath, when set, saves the per-fragment checkpoint set every
	// CheckpointEvery aggregations, rotating CheckpointKeep members.
	CheckpointPath  string
	CheckpointEvery int64
	CheckpointKeep  int
}

// NewBroadcastFragment builds the broadcast fragment over a broker port.
func NewBroadcastFragment(port *broker.Port, cfg BroadcastConfig) *BroadcastFragment {
	every := cfg.CheckpointEvery
	if every <= 0 {
		every = 100
	}
	sync := cfg.SyncEvery
	if sync < 1 {
		sync = 1
	}
	b := &BroadcastFragment{
		port:       port,
		explorers:  append([]string(nil), cfg.Explorers...),
		learnDsts:  append([]string(nil), cfg.Learners...),
		plane:      weightplane.New(cfg.WeightPlane),
		syncEvery:  sync,
		ckptPath:   cfg.CheckpointPath,
		ckptEvery:  every,
		ckptKeep:   cfg.CheckpointKeep,
		replica:    make(map[string][]float32),
		replicaVer: make(map[string]int64),
		agg:        append([]float32(nil), cfg.InitialWeights...),
	}
	b.version.Store(cfg.InitialVersion)
	return b
}

// Start broadcasts the initial committed model (seeding every explorer's
// behavior policy, as the fused loop does on Session.Start) and launches
// the aggregation loop.
func (b *BroadcastFragment) Start() {
	b.broadcast()
	b.wg.Add(1)
	go b.loop()
}

func (b *BroadcastFragment) loop() {
	defer b.wg.Done()
	for {
		m, err := b.port.Recv()
		if err != nil {
			return // broker stopped
		}
		switch body := m.Body.(type) {
		case *message.WeightsPayload:
			if !b.aggregate(m.Header.Src, body) {
				return
			}
		case *message.ControlPayload:
			switch body.Kind {
			case message.ControlShutdown:
				return
			case message.ControlAckSnapshot:
				b.port.MergeAcked(body.Acked)
			case message.ControlWeightsResync:
				b.plane.MarkStale(m.Header.Src)
			}
		}
	}
}

// aggregate folds one replica push into the committed model: the aggregate
// is the element-wise mean of every replica's latest weights (lazy
// aggregation — replicas contribute at their own pace), the global version
// advances, and the new model is distributed. It returns false when the
// channel is torn down.
func (b *BroadcastFragment) aggregate(src string, w *message.WeightsPayload) bool {
	b.replica[src] = w.Data
	b.replicaVer[src] = w.Version
	if len(b.replica) == 1 {
		b.agg = append(b.agg[:0], w.Data...)
	} else {
		if len(b.agg) != len(w.Data) {
			b.fail(fmt.Errorf("broadcast fragment: replica %s pushed %d params, aggregate holds %d",
				src, len(w.Data), len(b.agg)))
			return false
		}
		for i := range b.agg {
			var sum float32
			for _, rw := range b.replica {
				sum += rw[i]
			}
			b.agg[i] = sum / float32(len(b.replica))
		}
	}
	b.version.Add(1)
	n := b.aggs.Add(1)
	if !b.broadcast() {
		return false
	}
	// Echo the committed model back to the replicas — even a single one.
	// The echo is what ties a replica's internal version counter to the
	// committed version explorers see on their broadcasts: an on-policy
	// algorithm (PPO) matches incoming batch versions against its own
	// counter, and a warm-up push bumps the committed version without a
	// train, so without the echo the two counters drift apart and every
	// subsequent batch is discarded as stale. The echo is staged before any
	// explorer's next batch can arrive, so the replica re-syncs first.
	if n%int64(b.syncEvery) == 0 {
		if !b.echoAggregate() {
			return false
		}
	}
	if b.ckptPath != "" && n%b.ckptEvery == 0 {
		if err := b.saveCheckpoint(); err != nil {
			b.fail(fmt.Errorf("broadcast fragment checkpoint: %w", err))
			return false
		}
	}
	return true
}

// broadcast plans and sends the committed model to every explorer through
// the weight plane, then announces the committed version to the sampler.
func (b *BroadcastFragment) broadcast() bool {
	v := b.version.Load()
	for _, o := range b.plane.Plan(b.agg, v, b.explorers, b.port.AckedWeights()) {
		m := message.New(o.Type, BroadcastName, o.Dsts, o.Body)
		m.Header.WeightsVersion = v
		m.Header.BaseVersion = o.BaseVersion
		if !b.send(m) {
			return false
		}
	}
	am := message.New(message.TypeControl, BroadcastName, []string{SampleName},
		&message.ControlPayload{Kind: message.ControlVersionAnnounce})
	am.Header.WeightsVersion = v
	return b.send(am)
}

// echoAggregate sends the committed model back to every learn replica.
func (b *BroadcastFragment) echoAggregate() bool {
	m := message.New(message.TypeWeights, BroadcastName, b.learnDsts,
		&message.WeightsPayload{Version: b.version.Load(), Data: append([]float32(nil), b.agg...)})
	m.Header.WeightsVersion = b.version.Load()
	return b.send(m)
}

// saveCheckpoint persists the per-fragment checkpoint set: the committed
// aggregate plus each replica's last pushed weights.
func (b *BroadcastFragment) saveCheckpoint() error {
	states := []checkpoint.FragmentState{{
		Name:  BroadcastName,
		State: checkpoint.State{Version: b.version.Load(), Weights: append([]float32(nil), b.agg...)},
	}}
	for _, name := range b.learnDsts {
		if w, ok := b.replica[name]; ok {
			states = append(states, checkpoint.FragmentState{
				Name:  name,
				State: checkpoint.State{Version: b.replicaVer[name], Weights: append([]float32(nil), w...)},
			})
		}
	}
	if b.ckptKeep > 0 {
		return checkpoint.SaveFragmentsRotating(b.ckptPath, states, b.ckptKeep)
	}
	return checkpoint.SaveFragments(b.ckptPath, states)
}

func (b *BroadcastFragment) send(m *message.Message) bool {
	if err := b.port.Send(m); err != nil {
		if !errors.Is(err, queue.ErrClosed) {
			b.fail(fmt.Errorf("broadcast fragment send: %w", err))
		}
		return false
	}
	return true
}

func (b *BroadcastFragment) fail(err error) {
	b.mu.Lock()
	if b.lastErr == nil {
		b.lastErr = err
	}
	b.mu.Unlock()
}

// Err returns the first error the broadcast fragment hit, if any.
func (b *BroadcastFragment) Err() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.lastErr
}

// Version reports the committed weights version.
func (b *BroadcastFragment) Version() int64 { return b.version.Load() }

// Aggregations reports completed aggregation rounds.
func (b *BroadcastFragment) Aggregations() int64 { return b.aggs.Load() }

// PlaneStats snapshots the weight plane's planning counters.
func (b *BroadcastFragment) PlaneStats() weightplane.Stats { return b.plane.Stats() }

// Join waits for the aggregation loop after the broker has been stopped.
func (b *BroadcastFragment) Join() { b.wg.Wait() }

// FragmentReport summarizes a fragment-topology run inside core.Report.
type FragmentReport struct {
	// Topology echoes the normalized topology the run used.
	Learners     int
	MaxStaleness int
	// StaleDrops counts rollouts shed by the bounded-staleness filter and
	// Dispatched the rollouts that reached a learn replica.
	StaleDrops int64
	Dispatched int64
	// Aggregations counts broadcast-fragment aggregation rounds and
	// CommittedVersion the final committed weights version.
	Aggregations     int64
	CommittedVersion int64
	// LearnSteps/LearnIters break consumption down per replica.
	LearnSteps []int64
	LearnIters []int64
	// Plane is the weight plane's final planning counters.
	Plane weightplane.Stats
}

// fragRuntime is the Session-side scheduler state for a fragment topology.
type fragRuntime struct {
	topo    Topology
	sampler *SampleFragment
	learns  []*LearnFragment
	caster  *BroadcastFragment

	maxSteps int64
	done     chan struct{}
	doneOne  sync.Once
	monWG    sync.WaitGroup
	stopMon  chan struct{}
}

// start launches every fragment plus the completion monitor (the fragment
// scheduler's only centralized piece: fragments do not know the global step
// budget, so the session sums replica consumption and ends the run).
func (f *fragRuntime) start() {
	f.caster.Start()
	for _, l := range f.learns {
		l.Start()
	}
	f.sampler.Start()
	f.monWG.Add(1)
	go f.monitor()
}

func (f *fragRuntime) monitor() {
	defer f.monWG.Done()
	ticker := time.NewTicker(5 * time.Millisecond)
	defer ticker.Stop()
	for {
		select {
		case <-f.stopMon:
			return
		case <-ticker.C:
			if f.maxSteps > 0 && f.stepsConsumed() >= f.maxSteps {
				f.doneOne.Do(func() { close(f.done) })
				return
			}
			for _, l := range f.learns {
				if l.Err() != nil {
					f.doneOne.Do(func() { close(f.done) })
					return
				}
			}
			if f.sampler.Err() != nil || f.caster.Err() != nil {
				f.doneOne.Do(func() { close(f.done) })
				return
			}
		}
	}
}

func (f *fragRuntime) stepsConsumed() int64 {
	var sum int64
	for _, l := range f.learns {
		sum += l.StepsConsumed()
	}
	return sum
}

func (f *fragRuntime) trainIters() int64 {
	var sum int64
	for _, l := range f.learns {
		sum += l.TrainIters()
	}
	return sum
}

// err returns the first fragment error, if any.
func (f *fragRuntime) err() error {
	for _, l := range f.learns {
		if e := l.Err(); e != nil {
			return e
		}
	}
	if e := f.sampler.Err(); e != nil {
		return e
	}
	return f.caster.Err()
}

// stop signals every fragment to finish; the broker teardown that follows
// unblocks their receive loops.
func (f *fragRuntime) stop() {
	close(f.stopMon)
	f.doneOne.Do(func() { close(f.done) })
	for _, l := range f.learns {
		l.Stop()
	}
}

// join waits for every fragment thread after broker shutdown.
func (f *fragRuntime) join() {
	f.monWG.Wait()
	f.sampler.Join()
	for _, l := range f.learns {
		l.Join()
	}
	f.caster.Join()
}

// report assembles the fragment-side measurements.
func (f *fragRuntime) report() *FragmentReport {
	fr := &FragmentReport{
		Learners:         f.topo.Learners,
		MaxStaleness:     f.topo.MaxStaleness,
		StaleDrops:       f.sampler.StaleDrops(),
		Dispatched:       f.sampler.Dispatched(),
		Aggregations:     f.caster.Aggregations(),
		CommittedVersion: f.caster.Version(),
		Plane:            f.caster.PlaneStats(),
	}
	for _, l := range f.learns {
		fr.LearnSteps = append(fr.LearnSteps, l.StepsConsumed())
		fr.LearnIters = append(fr.LearnIters, l.TrainIters())
	}
	return fr
}

// mergedSeries sums per-replica throughput series element-wise.
func (f *fragRuntime) mergedSeries() []float64 {
	var out []float64
	for _, l := range f.learns {
		s := l.Series.PerSecond()
		if len(s) > len(out) {
			grown := make([]float64, len(s))
			copy(grown, out)
			out = grown
		}
		for i, v := range s {
			out[i] += v
		}
	}
	return out
}

// meanOver computes the observation-weighted mean of per-replica histogram
// means.
func meanOver(hists []*stats.Histogram) time.Duration {
	var total int64
	var weighted float64
	for _, h := range hists {
		n := int64(h.Count())
		total += n
		weighted += float64(h.Mean()) * float64(n)
	}
	if total == 0 {
		return 0
	}
	return time.Duration(weighted / float64(total))
}

// busiest returns the histogram with the most observations (the CDF the
// report carries; replicas see statistically identical traffic).
func busiest(hists []*stats.Histogram) *stats.Histogram {
	best := hists[0]
	for _, h := range hists[1:] {
		if h.Count() > best.Count() {
			best = h
		}
	}
	return best
}
