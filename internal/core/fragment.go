// Dataflow-fragment runtime: the training loop decomposed into
// independently placeable fragments in the style of MSRL, connected only by
// the existing queue/store/fabric primitives (broker ports). Four fragment
// kinds exist:
//
//   - rollout fragments — the explorers, unchanged, pointed at the sample
//     fragment instead of the learner;
//   - the replay/sample fragment — receives every rollout, applies the
//     topology's bounded-staleness rule against the committed weights
//     version, and dispatches survivors round-robin to the learn replicas;
//   - learn fragments — one Algorithm replica each, training independently
//     and pushing post-train weights to the broadcast fragment;
//   - the broadcast fragment — aggregates replica weights (element-wise
//     mean of each replica's latest push), commits a new global version,
//     plans the weight broadcast to every explorer through the §5g weight
//     plane, periodically echoes the aggregate back to the replicas so they
//     do not drift, and owns per-fragment checkpointing.
//
// Relaxed assignment dependencies: stages never hand-shake. A learn
// fragment may train on any rollout the sampler dispatched, and the sampler
// dispatches any rollout at most Topology.MaxStaleness weight versions
// behind the committed version (0 = strict assignment order, negative =
// unbounded). The dispatch-time committed version is stamped into the
// rollout header's BaseVersion so the bound is checkable downstream.
package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"xingtian/internal/broker"
	"xingtian/internal/buffer"
	"xingtian/internal/checkpoint"
	"xingtian/internal/message"
	"xingtian/internal/queue"
	"xingtian/internal/stats"
	"xingtian/internal/weightplane"
)

// ackSnapshotEvery is the rollout cadence at which the sample fragment
// forwards its ack ledger to the broadcast fragment. Snapshots are
// privileged control traffic, so the cadence bounds their rate.
const ackSnapshotEvery = 4

// inflightCap bounds the sampler's per-replica in-flight retention ring
// (failover mode only): the newest un-acked dispatches kept for re-dispatch
// if the replica is quarantined. Rollouts are droppable traffic, so rolling
// the oldest entry off a full ring loses nothing the channel guarantees.
const inflightCap = 128

// heartbeatMisses is the deadline multiplier of the broadcast-side health
// detector: a replica silent for heartbeatMisses consecutive heartbeat
// intervals is suspected hung and reported for quarantine.
const heartbeatMisses = 4

// inflightRollout is one un-acked dispatch retained by the sampler for
// possible re-dispatch. Bodies are plain Go values (no store references), so
// retention costs memory only.
type inflightRollout struct {
	id   uint64
	ver  int64
	src  string
	body *message.RolloutBody
}

// SampleFragment is the replay/sample stage: the one consumer of raw
// rollout traffic. It keeps the rollout-carried ack ledger, enforces the
// bounded-staleness edge, and load-balances dispatch across learn replicas.
type SampleFragment struct {
	port      *broker.Port
	learnDsts []string
	maxStale  int

	committed atomic.Int64
	ledger    map[string]int64 // touched only by the recv loop
	next      int
	sinceSnap int

	// Failover state (§5i), touched only by the recv loop. live is the
	// current dispatch rotation (learnDsts minus quarantined replicas),
	// epochs the incarnation epoch each replica last rejoined at, and
	// inflight the per-replica un-acked dispatch retention ring.
	failover bool
	live     []string
	epochs   map[string]int32
	inflight map[string][]inflightRollout

	staleDrops   atomic.Int64
	dispatched   atomic.Int64
	redispatches atomic.Int64

	wg      sync.WaitGroup
	mu      sync.Mutex
	lastErr error
}

// NewSampleFragment builds the sample fragment over a broker port.
func NewSampleFragment(port *broker.Port, learnDsts []string, maxStale int) *SampleFragment {
	return &SampleFragment{
		port:      port,
		learnDsts: append([]string(nil), learnDsts...),
		live:      append([]string(nil), learnDsts...),
		maxStale:  maxStale,
		ledger:    make(map[string]int64),
	}
}

// SetFailover arms the sampler's quarantine/re-dispatch machinery: the
// dispatch rotation shrinks past quarantined replicas and every dispatch is
// retained (bounded) until the destination's heartbeat acks it. Call before
// Start.
func (s *SampleFragment) SetFailover() {
	s.failover = true
	s.epochs = make(map[string]int32)
	s.inflight = make(map[string][]inflightRollout)
}

// Start launches the sampler's receive/dispatch loop.
func (s *SampleFragment) Start() {
	s.wg.Add(1)
	go s.loop()
}

func (s *SampleFragment) loop() {
	defer s.wg.Done()
	for {
		m, err := s.port.Recv()
		if err != nil {
			return // broker stopped
		}
		switch body := m.Body.(type) {
		case *message.RolloutBody:
			if !s.dispatch(m, body) {
				return
			}
		case *message.ControlPayload:
			switch body.Kind {
			case message.ControlShutdown:
				return
			case message.ControlVersionAnnounce:
				s.advanceCommitted(m.Header.WeightsVersion)
			case message.ControlHeartbeat:
				s.handleHeartbeat(m.Header.Src, m.Header.Round, body.LastRolloutID)
			case message.ControlQuarantine:
				if !s.quarantine(body.Peer) {
					return
				}
			case message.ControlRejoin:
				s.rejoin(body.Peer, m.Header.Round)
			}
		}
	}
}

// handleHeartbeat folds one replica liveness beat into the broker's
// consumption-ack ledger and prunes the replica's in-flight retention ring:
// IDs are monotonic within this process and per-destination delivery is
// ordered, so everything at or below the acked ID is consumed (or shed by
// the replica) and never needs re-dispatch. Beats from retired incarnations
// (stale epoch) are ignored — a zombie's ack must not release batches its
// replacement never saw.
func (s *SampleFragment) handleHeartbeat(src string, epoch int32, lastID uint64) {
	if !s.failover || s.epochs[src] != epoch {
		return
	}
	s.port.MergeConsumed(src, lastID)
	acked := s.port.ConsumedAcks()[src]
	q := s.inflight[src]
	keep := q[:0]
	for _, e := range q {
		if e.id > acked {
			keep = append(keep, e)
		}
	}
	s.inflight[src] = keep
}

// quarantine retires a replica from the dispatch rotation and re-dispatches
// its retained un-acked batches to the survivors, subject to the same
// bounded-staleness rule as first dispatch (an entry that aged past the
// bound while in flight is shed, not replayed). Duplicate training is
// possible — the ack is a heartbeat-carried high-water mark, so a batch the
// replica trained on just before dying is replayed at-least-once — which
// off-policy replicas absorb and the staleness bound caps for on-policy
// ones. It returns false when the channel is torn down mid-redispatch.
func (s *SampleFragment) quarantine(peer string) bool {
	if !s.failover {
		return true
	}
	live := s.live[:0]
	found := false
	for _, n := range s.live {
		if n == peer {
			found = true
			continue
		}
		live = append(live, n)
	}
	s.live = live
	if !found {
		return true // duplicate quarantine: already retired
	}
	pend := s.inflight[peer]
	delete(s.inflight, peer)
	c := s.committed.Load()
	for _, e := range pend {
		if s.maxStale >= 0 && c-e.ver > int64(s.maxStale) {
			s.staleDrops.Add(1)
			continue
		}
		if len(s.live) == 0 {
			// No survivors to replay onto; the slot supervisors decide
			// whether that is terminal. Account the batch as shed.
			s.staleDrops.Add(1)
			continue
		}
		if !s.forward(e.src, e.ver, c, e.body) {
			return false
		}
		s.redispatches.Add(1)
	}
	return true
}

// rejoin restores a respawned replica to the dispatch rotation at its new
// incarnation epoch.
func (s *SampleFragment) rejoin(peer string, epoch int32) {
	if !s.failover {
		return
	}
	// Record the new incarnation epoch even when the peer is already in the
	// rotation: a standby sampler's seeded epochs may predate a respawn that
	// raced the machine takeover, and the rejoin is the authoritative epoch
	// record either way (a stale entry would fence out the live replica's
	// heartbeats and its in-flight ring would never prune).
	s.epochs[peer] = epoch
	for _, n := range s.live {
		if n == peer {
			return // duplicate rejoin
		}
	}
	// Preserve the canonical replica order so K=0 version-routing stays
	// deterministic for a fixed live set.
	old := s.live
	live := make([]string, 0, len(old)+1)
	for _, n := range s.learnDsts {
		if n == peer || s.contains(old, n) {
			live = append(live, n)
		}
	}
	s.live = live
	s.epochs[peer] = epoch
	s.inflight[peer] = nil
}

// seedFailoverState primes a standby sampler (machine takeover) before
// Start: the slot-tracked incarnation epochs fence retired incarnations'
// late traffic, and the live rotation excludes replicas already degraded
// out of the run. Transiently-quarantined replicas may appear live here —
// their supervisor's ControlRejoin re-synchronizes the epoch, and the
// bounded in-flight ring absorbs any dispatch to a not-yet-respawned
// replica. Call after SetFailover.
func (s *SampleFragment) seedFailoverState(epochs map[string]int32, live []string) {
	for n, ep := range epochs {
		s.epochs[n] = ep
	}
	s.live = append([]string(nil), live...)
}

func (s *SampleFragment) contains(names []string, want string) bool {
	for _, n := range names {
		if n == want {
			return true
		}
	}
	return false
}

// dispatch applies the bounded-staleness rule to one rollout and forwards
// the survivors. It returns false when the channel is torn down.
func (s *SampleFragment) dispatch(m *message.Message, body *message.RolloutBody) bool {
	v := m.Header.WeightsVersion
	src := m.Header.Src
	s.ledger[src] = v
	c := s.committed.Load()
	if s.maxStale >= 0 && c-v > int64(s.maxStale) {
		// The rollout is older than the edge allows: shed it here. The
		// explorer's credit is unharmed — broadcasts reach every explorer,
		// so the spent fragment is refilled by the next weights message.
		s.staleDrops.Add(1)
	} else if len(s.live) == 0 {
		// Every replica is quarantined; the supervisors decide whether the
		// run is terminal. Shed rather than wedge the rollout path.
		s.staleDrops.Add(1)
	} else if !s.forward(src, v, c, body) {
		return false
	}
	s.sinceSnap++
	if s.sinceSnap >= ackSnapshotEvery {
		s.sinceSnap = 0
		snap := make(map[string]int64, len(s.ledger))
		for k, ver := range s.ledger {
			snap[k] = ver
		}
		sm := message.New(message.TypeControl, SampleName, []string{BroadcastName},
			&message.ControlPayload{Kind: message.ControlAckSnapshot, Acked: snap})
		if err := s.port.Send(sm); err != nil {
			if !errors.Is(err, queue.ErrClosed) {
				s.fail(fmt.Errorf("sample fragment ack snapshot: %w", err))
			}
			return false
		}
	}
	return true
}

// forward routes one surviving rollout to a live learn replica and, in
// failover mode, retains it in the destination's in-flight ring until a
// heartbeat acks it. It returns false when the channel is torn down.
func (s *SampleFragment) forward(src string, v, c int64, body *message.RolloutBody) bool {
	// Strict assignment order (K=0) routes by version: every rollout of
	// one weights version reaches the same replica, so algorithms that
	// train on one batch per explorer at the current policy (PPO) see
	// the complete synchronous set — per-rollout round-robin would split
	// it and no replica could ever train. Relaxed edges (K != 0) keep
	// round-robin, which balances load without regard to version.
	var dst string
	if s.maxStale == 0 {
		dst = s.live[int(v)%len(s.live)]
	} else {
		dst = s.live[s.next%len(s.live)]
		s.next++
	}
	fm := message.New(message.TypeRollout, src, []string{dst}, body)
	fm.Header.WeightsVersion = v
	fm.Header.BaseVersion = c // dispatch-time committed version, for the bound's audit
	if err := s.port.Send(fm); err != nil {
		if !errors.Is(err, queue.ErrClosed) {
			s.fail(fmt.Errorf("sample fragment dispatch: %w", err))
		}
		return false
	}
	s.dispatched.Add(1)
	if s.failover {
		q := append(s.inflight[dst], inflightRollout{id: fm.Header.ID, ver: v, src: src, body: body})
		if len(q) > inflightCap {
			q = q[1:]
		}
		s.inflight[dst] = q
	}
	return true
}

// advanceCommitted raises the committed version monotonically — announces
// can arrive out of order across machines and a regression would re-open
// the staleness window.
func (s *SampleFragment) advanceCommitted(v int64) {
	for {
		cur := s.committed.Load()
		if v <= cur || s.committed.CompareAndSwap(cur, v) {
			return
		}
	}
}

func (s *SampleFragment) fail(err error) {
	s.mu.Lock()
	if s.lastErr == nil {
		s.lastErr = err
	}
	s.mu.Unlock()
}

// Err returns the first error the sampler hit, if any.
func (s *SampleFragment) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastErr
}

// StaleDrops reports rollouts shed by the bounded-staleness filter.
func (s *SampleFragment) StaleDrops() int64 { return s.staleDrops.Load() }

// Dispatched reports rollouts forwarded to learn fragments.
func (s *SampleFragment) Dispatched() int64 { return s.dispatched.Load() }

// Redispatches reports quarantined replicas' un-acked batches replayed to
// surviving replicas.
func (s *SampleFragment) Redispatches() int64 { return s.redispatches.Load() }

// Committed reports the newest committed weights version the sampler knows.
func (s *SampleFragment) Committed() int64 { return s.committed.Load() }

// Join waits for the sampler's loop after the broker has been stopped.
func (s *SampleFragment) Join() { s.wg.Wait() }

// LearnFragment is one learn replica: an Algorithm instance training on
// whatever the sampler dispatches to it, pushing post-train weights to the
// broadcast fragment, and installing the aggregate echoes it receives.
type LearnFragment struct {
	idx          int
	alg          Algorithm
	port         *broker.Port
	recvBuf      *buffer.Buffer
	numExplorers int

	// WaitHist, TransHist, and Series mirror the legacy learner's
	// measurement hooks; the session merges them across replicas.
	WaitHist  *stats.Histogram
	TransHist *stats.Histogram
	Series    *stats.Series

	stepsConsumed       atomic.Int64
	trainIters          atomic.Int64
	rolloutsSinceUpdate atomic.Int64

	// observeStaleness, when set before Start, is called for every rollout
	// the replica ingests with the rollout's weights version and the
	// committed version stamped at dispatch — the audit hook the bounded-
	// staleness property tests use.
	observeStaleness func(rolloutVer, dispatchVer int64)

	// Failover plumbing (§5i). epoch is the incarnation number stamped into
	// every outbound push and heartbeat (Header.Round) so peers can discard
	// a retired incarnation's late messages; hbEvery > 0 runs the heartbeat
	// thread. activity counts trainer-loop iterations and waiting marks the
	// trainer blocked on input — together the liveness evidence: a beat is
	// sent only while the trainer progresses or idles at the receive buffer,
	// so a trainer wedged inside a training step falls silent and trips the
	// broadcast-side deadline detector. lastRollout is the newest dispatched
	// rollout ID ingested, carried on beats as the consumption ack.
	epoch       int32
	hbEvery     time.Duration
	activity    atomic.Int64
	waiting     atomic.Bool
	lastRollout atomic.Uint64

	wg       sync.WaitGroup
	stopped  chan struct{}
	stopOne  sync.Once
	failed   chan struct{}
	failOne  sync.Once
	recvDone chan struct{}

	mu      sync.Mutex
	lastErr error
}

// NewLearnFragment builds learn replica idx around an algorithm and port.
func NewLearnFragment(idx int, alg Algorithm, port *broker.Port, numExplorers int, bucket time.Duration) *LearnFragment {
	if bucket <= 0 {
		bucket = time.Second
	}
	return &LearnFragment{
		idx:          idx,
		alg:          alg,
		port:         port,
		recvBuf:      buffer.New(),
		numExplorers: numExplorers,
		WaitHist:     stats.NewHistogram(),
		TransHist:    stats.NewHistogram(),
		Series:       stats.NewSeries(bucket),
		stopped:      make(chan struct{}),
		failed:       make(chan struct{}),
		recvDone:     make(chan struct{}),
	}
}

// SetFailover stamps the replica's incarnation epoch and arms the heartbeat
// thread (hbEvery > 0). Call before Start.
func (l *LearnFragment) SetFailover(epoch int32, hbEvery time.Duration) {
	l.epoch = epoch
	l.hbEvery = hbEvery
}

// Failed is closed when the replica records an error (never on a clean
// Stop); the slot supervisor selects on it.
func (l *LearnFragment) Failed() <-chan struct{} { return l.failed }

// RecvDone is closed when the receiver thread exits; the supervisor waits on
// it before handing the replica's port to a new incarnation, so two receiver
// threads never compete for one queue.
func (l *LearnFragment) RecvDone() <-chan struct{} { return l.recvDone }

// SetStalenessObserver installs the per-rollout staleness audit hook. Call
// before Start.
func (l *LearnFragment) SetStalenessObserver(fn func(rolloutVer, dispatchVer int64)) {
	l.observeStaleness = fn
}

// Start launches the replica's receiver and trainer threads, plus the
// heartbeat thread when failover armed one.
func (l *LearnFragment) Start() {
	l.wg.Add(2)
	go l.receiverLoop()
	go l.trainerLoop()
	if l.hbEvery > 0 {
		l.wg.Add(1)
		go l.heartbeatLoop()
	}
}

// heartbeatLoop piggybacks liveness on the control plane: every hbEvery it
// sends a ControlHeartbeat to the sampler and broadcaster — but only when the
// trainer either made progress since the last beat or is parked at the
// receive buffer waiting for input. A trainer wedged *inside* a training step
// is neither, so the replica falls silent and the broadcaster's deadline
// detector quarantines it. Each beat carries the newest dispatched rollout ID
// ingested, which the sampler folds into the broker's consumption ledger to
// prune its in-flight window.
func (l *LearnFragment) heartbeatLoop() {
	defer l.wg.Done()
	tick := time.NewTicker(l.hbEvery)
	defer tick.Stop()
	var lastSeen int64 = -1
	for {
		select {
		case <-l.stopped:
			return
		case <-tick.C:
		}
		act := l.activity.Load()
		if act == lastSeen && !l.waiting.Load() {
			continue
		}
		lastSeen = act
		m := message.New(message.TypeControl, LearnName(l.idx), []string{SampleName, BroadcastName}, &message.ControlPayload{
			Kind:          message.ControlHeartbeat,
			Peer:          LearnName(l.idx),
			LastRolloutID: l.lastRollout.Load(),
		})
		m.Header.Round = l.epoch
		if err := l.port.Send(m); err != nil {
			// Only a closed channel ends the beat silently; any other send
			// failure is surfaced through fail() so the supervisor sees the
			// real cause instead of a deadline-detector quarantine of a
			// replica that merely stopped beating.
			if !errors.Is(err, queue.ErrClosed) {
				l.fail(fmt.Errorf("learn fragment %d heartbeat: %w", l.idx, err))
			}
			return
		}
	}
}

func (l *LearnFragment) receiverLoop() {
	defer l.wg.Done()
	defer close(l.recvDone)
	for {
		m, err := l.port.Recv()
		if err != nil {
			l.recvBuf.Close()
			return
		}
		if m.Header.Type == message.TypeRollout {
			l.TransHist.Observe(time.Duration(time.Now().UnixNano() - m.Header.CreatedNanos))
		}
		if err := l.recvBuf.Put(m); err != nil {
			return
		}
	}
}

// trainerLoop mirrors the legacy trainer thread: ingest what has arrived,
// train when the algorithm is ready, push the result to the broadcast
// fragment, and block only when there is truly nothing to do.
func (l *LearnFragment) trainerLoop() {
	defer l.wg.Done()
	for {
		select {
		case <-l.stopped:
			return
		default:
		}
		l.activity.Add(1)

		ingested := l.drainNonBlocking()

		res, ok, err := l.alg.TryTrain()
		if err != nil {
			l.fail(fmt.Errorf("learn fragment %d train: %w", l.idx, err))
			return
		}
		if !ok {
			// Warm-up credit refresh, as in the fused loop: explorers spend
			// credit per rollout and refill on weights-class messages, so a
			// replica that cannot train yet must nudge the broadcast
			// fragment into re-broadcasting or the deployment can wedge
			// with every explorer out of credit.
			if l.rolloutsSinceUpdate.Load() >= int64(l.numExplorers) {
				if !l.pushWeights() {
					return
				}
			}
			if ingested == 0 {
				waitStart := time.Now()
				l.waiting.Store(true)
				m, err := l.recvBuf.Next()
				l.waiting.Store(false)
				if err != nil {
					return
				}
				l.WaitHist.Observe(time.Since(waitStart))
				if !l.ingest(m) {
					return
				}
			}
			continue
		}

		l.trainIters.Add(1)
		l.stepsConsumed.Add(int64(res.StepsConsumed))
		l.Series.Add(float64(res.StepsConsumed))
		if res.Broadcast {
			if !l.pushWeights() {
				return
			}
		}
	}
}

func (l *LearnFragment) drainNonBlocking() int {
	n := 0
	for n < drainCap {
		m, err := l.recvBuf.TryNext()
		if errors.Is(err, queue.ErrEmpty) || errors.Is(err, queue.ErrClosed) {
			return n
		}
		if err != nil {
			return n
		}
		if !l.ingest(m) {
			return n
		}
		n++
	}
	return n
}

// ingest routes one received message; it returns false on shutdown.
func (l *LearnFragment) ingest(m *message.Message) bool {
	switch body := m.Body.(type) {
	case *message.RolloutBody:
		if l.observeStaleness != nil {
			l.observeStaleness(m.Header.WeightsVersion, m.Header.BaseVersion)
		}
		l.lastRollout.Store(m.Header.ID)
		l.alg.PrepareData(body)
		l.rolloutsSinceUpdate.Add(1)
	case *message.WeightsPayload:
		// Aggregate echo from the broadcast fragment: install it so the
		// replicas stay within one aggregation of each other. All four zoo
		// algorithms restore versions; one that cannot just keeps training
		// on its own parameters.
		if r, okR := l.alg.(WeightsRestorer); okR {
			if err := r.RestoreWeights(body.Version, body.Data); err != nil {
				l.fail(fmt.Errorf("learn fragment %d install aggregate: %w", l.idx, err))
				return false
			}
		}
	case *message.ControlPayload:
		switch body.Kind {
		case message.ControlShutdown:
			l.stopOne.Do(func() { close(l.stopped) })
			return false
		case message.ControlDrain:
			// Teardown nudge for a *retired* incarnation whose receiver is
			// blocked: its recvBuf is closed, so the Put fails and the
			// receiver exits. A live incarnation's buffer accepts the Put and
			// the nudge is ignored here.
		}
	}
	return true
}

// pushWeights sends the replica's current parameters to the broadcast
// fragment. It returns false when the channel is torn down.
func (l *LearnFragment) pushWeights() bool {
	w := l.alg.Weights()
	m := message.New(message.TypeWeights, LearnName(l.idx), []string{BroadcastName}, w)
	m.Header.WeightsVersion = w.Version
	m.Header.Round = l.epoch
	if err := l.port.Send(m); err != nil {
		if !errors.Is(err, queue.ErrClosed) {
			l.fail(fmt.Errorf("learn fragment %d push: %w", l.idx, err))
		}
		return false
	}
	l.rolloutsSinceUpdate.Store(0)
	return true
}

func (l *LearnFragment) fail(err error) {
	l.mu.Lock()
	if l.lastErr == nil {
		l.lastErr = err
	}
	l.mu.Unlock()
	l.failOne.Do(func() { close(l.failed) })
	l.stopOne.Do(func() { close(l.stopped) })
}

// Err returns the first error the replica hit, if any.
func (l *LearnFragment) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.lastErr
}

// StepsConsumed reports rollout steps this replica trained on.
func (l *LearnFragment) StepsConsumed() int64 { return l.stepsConsumed.Load() }

// TrainIters reports completed training sessions on this replica.
func (l *LearnFragment) TrainIters() int64 { return l.trainIters.Load() }

// Algorithm exposes the replica's algorithm for tests and experiments.
func (l *LearnFragment) Algorithm() Algorithm { return l.alg }

// Stop signals the replica's threads to finish.
func (l *LearnFragment) Stop() {
	l.stopOne.Do(func() { close(l.stopped) })
	l.recvBuf.Close()
}

// Join waits for the replica's threads after Stop and broker shutdown.
func (l *LearnFragment) Join() { l.wg.Wait() }

// BroadcastFragment aggregates replica weights into the committed model and
// plans its distribution: weight-plane broadcasts to every explorer,
// aggregate echoes to the replicas, version announces to the sampler, and
// per-fragment checkpoints.
type BroadcastFragment struct {
	port      *broker.Port
	explorers []string
	learnDsts []string
	plane     *weightplane.Planner
	syncEvery int

	ckptPath  string
	ckptEvery int64
	ckptKeep  int

	version atomic.Int64
	aggs    atomic.Int64

	// Replica state is touched only by the recv loop.
	replica    map[string][]float32
	replicaVer map[string]int64
	agg        []float32

	// Failover plumbing (§5i). hbTimeout > 0 arms the deadline detector: a
	// replica whose weight pushes and heartbeats both fall silent for the
	// timeout is reported to onSuspect (the session's slot supervisor), which
	// quarantines it out of band. seenMu guards the liveness maps — they are
	// written by both the recv loop and the detector thread. epochs fences
	// out a retired incarnation's late traffic by incarnation number; the
	// verdict carries the suspected incarnation's epoch so a stale verdict
	// cannot condemn a respawned successor.
	hbTimeout   time.Duration
	onSuspect   func(name string, epoch int32)
	seenMu      sync.Mutex
	lastSeen    map[string]time.Time
	suspected   map[string]bool
	quarantined map[string]bool
	epochs      map[string]int32
	quarantines atomic.Int64
	stalePushes atomic.Int64
	detStop     chan struct{}
	detOne      sync.Once

	wg      sync.WaitGroup
	mu      sync.Mutex
	lastErr error
}

// BroadcastConfig parameterizes the broadcast fragment.
type BroadcastConfig struct {
	// Explorers lists every explorer client name (broadcast destinations).
	Explorers []string
	// Learners lists the learn replica names (aggregate-echo destinations).
	Learners []string
	// SyncEvery is the aggregation cadence of replica echoes (>= 1).
	SyncEvery int
	// InitialVersion/InitialWeights seed the committed model (the replicas'
	// shared initialization, or the restored checkpoint).
	InitialVersion int64
	InitialWeights []float32
	// WeightPlane configures delta/quantized broadcasting (§5g).
	WeightPlane weightplane.Config
	// CheckpointPath, when set, saves the per-fragment checkpoint set every
	// CheckpointEvery aggregations, rotating CheckpointKeep members.
	CheckpointPath  string
	CheckpointEvery int64
	CheckpointKeep  int
}

// NewBroadcastFragment builds the broadcast fragment over a broker port.
func NewBroadcastFragment(port *broker.Port, cfg BroadcastConfig) *BroadcastFragment {
	every := cfg.CheckpointEvery
	if every <= 0 {
		every = 100
	}
	sync := cfg.SyncEvery
	if sync < 1 {
		sync = 1
	}
	b := &BroadcastFragment{
		port:        port,
		explorers:   append([]string(nil), cfg.Explorers...),
		learnDsts:   append([]string(nil), cfg.Learners...),
		plane:       weightplane.New(cfg.WeightPlane),
		syncEvery:   sync,
		ckptPath:    cfg.CheckpointPath,
		ckptEvery:   every,
		ckptKeep:    cfg.CheckpointKeep,
		replica:     make(map[string][]float32),
		replicaVer:  make(map[string]int64),
		agg:         append([]float32(nil), cfg.InitialWeights...),
		lastSeen:    make(map[string]time.Time),
		suspected:   make(map[string]bool),
		quarantined: make(map[string]bool),
		epochs:      make(map[string]int32),
		detStop:     make(chan struct{}),
	}
	b.version.Store(cfg.InitialVersion)
	return b
}

// SetFailover arms the replica deadline detector: a live replica silent for
// hbTimeout is handed to onSuspect exactly once. Call before Start.
func (b *BroadcastFragment) SetFailover(hbTimeout time.Duration, onSuspect func(name string, epoch int32)) {
	b.hbTimeout = hbTimeout
	b.onSuspect = onSuspect
}

// seedFailoverState primes a standby broadcaster (machine takeover) before
// Start with the slot-tracked incarnation epochs and the set of replicas
// already degraded out of the run, so the standby fences retired
// incarnations' late pushes exactly as the dead incarnation did. Call after
// SetFailover.
func (b *BroadcastFragment) seedFailoverState(epochs map[string]int32, quarantined []string) {
	b.seenMu.Lock()
	defer b.seenMu.Unlock()
	for n, ep := range epochs {
		b.epochs[n] = ep
	}
	for _, n := range quarantined {
		b.quarantined[n] = true
	}
}

// Start broadcasts the initial committed model (seeding every explorer's
// behavior policy, as the fused loop does on Session.Start) and launches
// the aggregation loop.
func (b *BroadcastFragment) Start() {
	b.broadcast()
	b.wg.Add(1)
	go b.loop()
	if b.hbTimeout > 0 {
		b.wg.Add(1)
		go b.detectorLoop()
	}
}

// detectorLoop is the broadcast-side deadline detector: it scans the
// liveness map a few times per timeout window and reports every live replica
// whose pushes and heartbeats have both gone silent past the deadline. The
// suspicion callback runs outside seenMu — it sends on channels.
func (b *BroadcastFragment) detectorLoop() {
	defer b.wg.Done()
	period := b.hbTimeout / 4
	if period < time.Millisecond {
		period = time.Millisecond
	}
	tick := time.NewTicker(period)
	defer tick.Stop()
	for {
		select {
		case <-b.detStop:
			return
		case <-tick.C:
		}
		now := time.Now()
		type verdict struct {
			name  string
			epoch int32
		}
		var overdue []verdict
		b.seenMu.Lock()
		for _, name := range b.learnDsts {
			if b.quarantined[name] || b.suspected[name] {
				continue
			}
			seen, ok := b.lastSeen[name]
			if !ok {
				// First sighting: the deadline clock starts at detector
				// startup, not at process zero, so a slow-to-warm-up replica
				// gets a full window before suspicion.
				b.lastSeen[name] = now
				continue
			}
			if now.Sub(seen) > b.hbTimeout {
				b.suspected[name] = true
				overdue = append(overdue, verdict{name: name, epoch: b.epochs[name]})
			}
		}
		b.seenMu.Unlock()
		for _, v := range overdue {
			if b.onSuspect != nil {
				b.onSuspect(v.name, v.epoch)
			}
		}
	}
}

// admitPush fences replica traffic during failover: a quarantined replica's
// late pushes and a retired incarnation's (stale epoch) pushes are counted
// and dropped; admitted traffic refreshes the liveness clock.
func (b *BroadcastFragment) admitPush(src string, epoch int32) bool {
	if b.hbTimeout <= 0 {
		return true
	}
	b.seenMu.Lock()
	defer b.seenMu.Unlock()
	if b.quarantined[src] || epoch != b.epochs[src] {
		b.stalePushes.Add(1)
		return false
	}
	b.lastSeen[src] = time.Now()
	return true
}

func (b *BroadcastFragment) loop() {
	defer b.wg.Done()
	for {
		m, err := b.port.Recv()
		if err != nil {
			return // broker stopped
		}
		switch body := m.Body.(type) {
		case *message.WeightsPayload:
			if !b.admitPush(m.Header.Src, m.Header.Round) {
				continue
			}
			if !b.aggregate(m.Header.Src, body) {
				return
			}
		case *message.ControlPayload:
			switch body.Kind {
			case message.ControlShutdown:
				return
			case message.ControlAckSnapshot:
				b.port.MergeAcked(body.Acked)
			case message.ControlWeightsResync:
				b.plane.MarkStale(m.Header.Src)
			case message.ControlHeartbeat:
				b.admitPush(m.Header.Src, m.Header.Round)
			case message.ControlQuarantine:
				if !b.retireReplica(body.Peer) {
					return
				}
			case message.ControlRejoin:
				if !b.rejoinReplica(body.Peer, m.Header.Round) {
					return
				}
			case message.ControlTakeover:
				// A fragment was re-placed after a machine death. A rebuilt
				// explorer's plane state is marked stale so its next weights
				// are a dense snapshot; either way the committed model is
				// re-broadcast — the takeover window may have starved
				// explorers of flow-control credit, and a standby sampler
				// re-learns the committed version from the announce that
				// rides along with every broadcast.
				if body.Peer != SampleName {
					b.plane.MarkStale(body.Peer)
				}
				if !b.broadcast() {
					return
				}
			}
		}
	}
}

// aggregate folds one replica push into the committed model: the aggregate
// is the element-wise mean of every replica's latest weights (lazy
// aggregation — replicas contribute at their own pace), the global version
// advances, and the new model is distributed. It returns false when the
// channel is torn down.
func (b *BroadcastFragment) aggregate(src string, w *message.WeightsPayload) bool {
	b.replica[src] = w.Data
	b.replicaVer[src] = w.Version
	if len(b.replica) == 1 {
		b.agg = append(b.agg[:0], w.Data...)
	} else {
		if len(b.agg) != len(w.Data) {
			b.fail(fmt.Errorf("broadcast fragment: replica %s pushed %d params, aggregate holds %d",
				src, len(w.Data), len(b.agg)))
			return false
		}
		for i := range b.agg {
			var sum float32
			for _, rw := range b.replica {
				sum += rw[i]
			}
			b.agg[i] = sum / float32(len(b.replica))
		}
	}
	b.version.Add(1)
	n := b.aggs.Add(1)
	if !b.broadcast() {
		return false
	}
	// Echo the committed model back to the replicas — even a single one.
	// The echo is what ties a replica's internal version counter to the
	// committed version explorers see on their broadcasts: an on-policy
	// algorithm (PPO) matches incoming batch versions against its own
	// counter, and a warm-up push bumps the committed version without a
	// train, so without the echo the two counters drift apart and every
	// subsequent batch is discarded as stale. The echo is staged before any
	// explorer's next batch can arrive, so the replica re-syncs first.
	if n%int64(b.syncEvery) == 0 {
		if !b.echoAggregate() {
			return false
		}
	}
	if b.ckptPath != "" && n%b.ckptEvery == 0 {
		if err := b.saveCheckpoint(); err != nil {
			b.fail(fmt.Errorf("broadcast fragment checkpoint: %w", err))
			return false
		}
	}
	return true
}

// broadcast plans and sends the committed model to every explorer through
// the weight plane, then announces the committed version to the sampler.
func (b *BroadcastFragment) broadcast() bool {
	v := b.version.Load()
	for _, o := range b.plane.Plan(b.agg, v, b.explorers, b.port.AckedWeights()) {
		m := message.New(o.Type, BroadcastName, o.Dsts, o.Body)
		m.Header.WeightsVersion = v
		m.Header.BaseVersion = o.BaseVersion
		if !b.send(m) {
			return false
		}
	}
	am := message.New(message.TypeControl, BroadcastName, []string{SampleName},
		&message.ControlPayload{Kind: message.ControlVersionAnnounce})
	am.Header.WeightsVersion = v
	return b.send(am)
}

// retireReplica drops a quarantined replica's contribution from the
// committed model: its last push leaves the element-wise mean, the survivor
// mean is recommitted at a fresh version, and the correction is broadcast so
// explorers and surviving replicas converge on the post-failure aggregate.
// It returns false when the channel is torn down.
func (b *BroadcastFragment) retireReplica(peer string) bool {
	b.seenMu.Lock()
	dup := b.quarantined[peer]
	b.quarantined[peer] = true
	delete(b.suspected, peer)
	b.seenMu.Unlock()
	if dup {
		return true
	}
	b.quarantines.Add(1)
	if _, contributed := b.replica[peer]; !contributed {
		return true // never pushed: the aggregate already excludes it
	}
	delete(b.replica, peer)
	delete(b.replicaVer, peer)
	if len(b.replica) > 0 {
		for i := range b.agg {
			var sum float32
			for _, rw := range b.replica {
				sum += rw[i]
			}
			b.agg[i] = sum / float32(len(b.replica))
		}
	}
	// With zero survivors the last committed aggregate stands — it is the
	// checkpointable state a respawned replica restores from.
	b.version.Add(1)
	b.plane.NoteCorrection()
	if !b.broadcast() {
		return false
	}
	return b.echoAggregate()
}

// rejoinReplica readmits a respawned replica at its new incarnation epoch
// and answers with a dense resync echo so the newcomer installs the current
// committed model before its first push. It returns false when the channel
// is torn down.
func (b *BroadcastFragment) rejoinReplica(peer string, epoch int32) bool {
	b.seenMu.Lock()
	delete(b.quarantined, peer)
	delete(b.suspected, peer)
	b.epochs[peer] = epoch
	b.lastSeen[peer] = time.Now()
	b.seenMu.Unlock()
	m := message.New(message.TypeWeights, BroadcastName, []string{peer},
		&message.WeightsPayload{Version: b.version.Load(), Data: append([]float32(nil), b.agg...)})
	m.Header.WeightsVersion = b.version.Load()
	return b.send(m)
}

// liveLearnDsts returns the replicas currently in the echo set.
func (b *BroadcastFragment) liveLearnDsts() []string {
	if b.hbTimeout <= 0 {
		return b.learnDsts
	}
	b.seenMu.Lock()
	defer b.seenMu.Unlock()
	live := make([]string, 0, len(b.learnDsts))
	for _, name := range b.learnDsts {
		if !b.quarantined[name] {
			live = append(live, name)
		}
	}
	return live
}

// echoAggregate sends the committed model back to every live learn replica.
func (b *BroadcastFragment) echoAggregate() bool {
	dsts := b.liveLearnDsts()
	if len(dsts) == 0 {
		return true
	}
	m := message.New(message.TypeWeights, BroadcastName, dsts,
		&message.WeightsPayload{Version: b.version.Load(), Data: append([]float32(nil), b.agg...)})
	m.Header.WeightsVersion = b.version.Load()
	return b.send(m)
}

// saveCheckpoint persists the per-fragment checkpoint set: the committed
// aggregate, the sampler's committed-version fence (its dispatch ledger and
// in-flight ring cover droppable traffic only and are reconstructed from
// heartbeats), plus each replica's last pushed weights.
func (b *BroadcastFragment) saveCheckpoint() error {
	states := []checkpoint.FragmentState{{
		Name:  BroadcastName,
		State: checkpoint.State{Version: b.version.Load(), Weights: append([]float32(nil), b.agg...)},
	}, {
		Name:  SampleName,
		State: checkpoint.State{Version: b.version.Load()},
	}}
	for _, name := range b.learnDsts {
		if w, ok := b.replica[name]; ok {
			states = append(states, checkpoint.FragmentState{
				Name:  name,
				State: checkpoint.State{Version: b.replicaVer[name], Weights: append([]float32(nil), w...)},
			})
		}
	}
	if b.ckptKeep > 0 {
		return checkpoint.SaveFragmentsRotating(b.ckptPath, states, b.ckptKeep)
	}
	return checkpoint.SaveFragments(b.ckptPath, states)
}

func (b *BroadcastFragment) send(m *message.Message) bool {
	if err := b.port.Send(m); err != nil {
		if !errors.Is(err, queue.ErrClosed) {
			b.fail(fmt.Errorf("broadcast fragment send: %w", err))
		}
		return false
	}
	return true
}

func (b *BroadcastFragment) fail(err error) {
	b.mu.Lock()
	if b.lastErr == nil {
		b.lastErr = err
	}
	b.mu.Unlock()
}

// Err returns the first error the broadcast fragment hit, if any.
func (b *BroadcastFragment) Err() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.lastErr
}

// Version reports the committed weights version.
func (b *BroadcastFragment) Version() int64 { return b.version.Load() }

// Aggregations reports completed aggregation rounds.
func (b *BroadcastFragment) Aggregations() int64 { return b.aggs.Load() }

// PlaneStats snapshots the weight plane's planning counters.
func (b *BroadcastFragment) PlaneStats() weightplane.Stats { return b.plane.Stats() }

// Quarantines reports replicas retired from the aggregate.
func (b *BroadcastFragment) Quarantines() int64 { return b.quarantines.Load() }

// StalePushes reports pushes and heartbeats fenced out by quarantine or a
// retired incarnation epoch.
func (b *BroadcastFragment) StalePushes() int64 { return b.stalePushes.Load() }

// Stop signals the detector thread; the recv loop exits with the broker.
func (b *BroadcastFragment) Stop() {
	b.detOne.Do(func() { close(b.detStop) })
}

// Join waits for the aggregation loop after the broker has been stopped.
func (b *BroadcastFragment) Join() { b.wg.Wait() }

// FragmentReport summarizes a fragment-topology run inside core.Report.
type FragmentReport struct {
	// Topology echoes the normalized topology the run used.
	Learners     int
	MaxStaleness int
	// StaleDrops counts rollouts shed by the bounded-staleness filter and
	// Dispatched the rollouts that reached a learn replica.
	StaleDrops int64
	Dispatched int64
	// Aggregations counts broadcast-fragment aggregation rounds and
	// CommittedVersion the final committed weights version.
	Aggregations     int64
	CommittedVersion int64
	// LearnSteps/LearnIters break consumption down per replica, priors from
	// retired incarnations included.
	LearnSteps []int64
	LearnIters []int64
	// Failover counters (§5i): Quarantines is replicas retired from the
	// aggregate, Redispatches the un-acked batches replayed to survivors,
	// Respawns the restarted incarnations, Degraded the slots that exhausted
	// their restart budget and run permanently N-1, and StalePushes the
	// fenced-out traffic from retired incarnations.
	Quarantines  int64
	Redispatches int64
	Respawns     int64
	Degraded     int64
	StalePushes  int64
	// Machine-failover counters (§5j): LeaseRenewals is the membership
	// plane's received lease count, MachineVerdicts the epoch-fenced
	// machine-death verdicts, Takeovers the fragments re-placed onto
	// survivors, and TakeoverByFragment the per-fragment breakdown counted
	// from ControlTakeover records on the control plane (exactly one per
	// dead fragment when epoch fencing holds).
	LeaseRenewals      int64
	MachineVerdicts    int64
	Takeovers          int64
	TakeoverByFragment map[string]int64
	// Plane is the weight plane's final planning counters.
	Plane weightplane.Stats
}

// learnSlot is the supervised home of one learn replica: the slot outlives
// every incarnation, carrying the restart budget, the incarnation epoch, and
// the retired incarnations' accumulated progress.
type learnSlot struct {
	idx     int
	machine int
	// suspect receives deadline-detector verdicts for this slot (capacity 1;
	// duplicates collapse). Each verdict carries the epoch of the suspected
	// incarnation so the supervisor can discard one that raced a respawn.
	suspect chan int32

	mu          sync.Mutex
	frag        *LearnFragment
	epoch       int32
	restarts    int64
	degraded    bool
	lastErr     error
	terminalErr error
	// priorSteps/priorIters accumulate the progress of *replaced*
	// incarnations only: they are folded in at the instant frag is swapped
	// to the respawn, so a retired incarnation that never gets a successor
	// (degraded slot, failed respawn, backoff window) keeps contributing
	// through frag — each incarnation's steps count exactly once.
	priorSteps int64
	priorIters int64
}

// current returns the slot's live incarnation.
func (sl *learnSlot) current() *LearnFragment {
	sl.mu.Lock()
	defer sl.mu.Unlock()
	return sl.frag
}

// curEpoch returns the slot's current incarnation epoch.
func (sl *learnSlot) curEpoch() int32 {
	sl.mu.Lock()
	defer sl.mu.Unlock()
	return sl.epoch
}

// home returns the slot's current machine (machine failover may move it).
func (sl *learnSlot) home() int {
	sl.mu.Lock()
	defer sl.mu.Unlock()
	return sl.machine
}

// fragRuntime is the Session-side scheduler state for a fragment topology.
type fragRuntime struct {
	topo  Topology
	slots []*learnSlot

	// fragMu guards the singleton-fragment pointers and their placement:
	// machine failover swaps a standby sampler or broadcaster in while the
	// monitor, reporters, and supervisors keep reading. sampleMachine and
	// castMachine track the current homes; samplerEpoch/casterEpoch count
	// incarnations (takeover fencing, stamped into ControlTakeover).
	fragMu        sync.Mutex
	sampler       *SampleFragment
	caster        *BroadcastFragment
	sampleMachine int
	castMachine   int
	samplerEpoch  int32
	casterEpoch   int32

	// failover arms replica supervision (LearnerFailover or MachineFailover
	// with >= 2 replicas); maxRestarts and hbEvery echo the session config,
	// and suspectFn is the broadcaster's deadline-detector callback — kept
	// so a standby broadcaster re-arms the identical detector.
	failover    bool
	maxRestarts int
	hbEvery     time.Duration
	suspectFn   func(name string, epoch int32)
	respawns    atomic.Int64
	degraded    atomic.Int64
	takeovers   atomic.Int64
	// zombieWG tracks reaper threads joining retired incarnations whose
	// trainer may be wedged; join() waits for it after the transport stops.
	zombieWG sync.WaitGroup

	maxSteps int64
	done     chan struct{}
	doneOne  sync.Once
	monWG    sync.WaitGroup
	stopMon  chan struct{}
}

// getSampler returns the live sampler incarnation.
func (f *fragRuntime) getSampler() *SampleFragment {
	f.fragMu.Lock()
	defer f.fragMu.Unlock()
	return f.sampler
}

// getCaster returns the live broadcaster incarnation.
func (f *fragRuntime) getCaster() *BroadcastFragment {
	f.fragMu.Lock()
	defer f.fragMu.Unlock()
	return f.caster
}

// learns snapshots the live incarnation of every slot.
func (f *fragRuntime) learns() []*LearnFragment {
	out := make([]*LearnFragment, len(f.slots))
	for i, sl := range f.slots {
		out[i] = sl.current()
	}
	return out
}

// liveReplicas counts slots that have not degraded out of the run.
func (f *fragRuntime) liveReplicas() int {
	n := 0
	for _, sl := range f.slots {
		sl.mu.Lock()
		if !sl.degraded {
			n++
		}
		sl.mu.Unlock()
	}
	return n
}

// start launches every fragment plus the completion monitor (the fragment
// scheduler's only centralized piece: fragments do not know the global step
// budget, so the session sums replica consumption and ends the run).
func (f *fragRuntime) start() {
	f.getCaster().Start()
	for _, l := range f.learns() {
		l.Start()
	}
	f.getSampler().Start()
	f.monWG.Add(1)
	go f.monitor()
}

func (f *fragRuntime) monitor() {
	defer f.monWG.Done()
	ticker := time.NewTicker(5 * time.Millisecond)
	defer ticker.Stop()
	for {
		select {
		case <-f.stopMon:
			return
		case <-ticker.C:
			if f.maxSteps > 0 && f.stepsConsumed() >= f.maxSteps {
				f.doneOne.Do(func() { close(f.done) })
				return
			}
			if f.failover {
				// Replica errors are the supervisors' to judge: the run ends
				// only on a terminal verdict (budget exhausted with no live
				// replica left, or an unrecoverable respawn).
				for _, sl := range f.slots {
					sl.mu.Lock()
					terminal := sl.terminalErr != nil
					sl.mu.Unlock()
					if terminal {
						f.doneOne.Do(func() { close(f.done) })
						return
					}
				}
			} else {
				for _, l := range f.learns() {
					if l.Err() != nil {
						f.doneOne.Do(func() { close(f.done) })
						return
					}
				}
			}
			if f.getSampler().Err() != nil || f.getCaster().Err() != nil {
				f.doneOne.Do(func() { close(f.done) })
				return
			}
		}
	}
}

func (f *fragRuntime) stepsConsumed() int64 {
	var sum int64
	for _, sl := range f.slots {
		sl.mu.Lock()
		sum += sl.priorSteps + sl.frag.StepsConsumed()
		sl.mu.Unlock()
	}
	return sum
}

func (f *fragRuntime) trainIters() int64 {
	var sum int64
	for _, sl := range f.slots {
		sl.mu.Lock()
		sum += sl.priorIters + sl.frag.TrainIters()
		sl.mu.Unlock()
	}
	return sum
}

// err returns the first fragment error, if any. Under failover a replica
// error surfaces only when its slot supervisor judged it terminal.
func (f *fragRuntime) err() error {
	for _, sl := range f.slots {
		sl.mu.Lock()
		terminal := sl.terminalErr
		frag := sl.frag
		sl.mu.Unlock()
		if f.failover {
			if terminal != nil {
				return terminal
			}
			continue
		}
		if e := frag.Err(); e != nil {
			return e
		}
	}
	if e := f.getSampler().Err(); e != nil {
		return e
	}
	return f.getCaster().Err()
}

// stop signals every fragment to finish; the broker teardown that follows
// unblocks their receive loops.
func (f *fragRuntime) stop() {
	close(f.stopMon)
	f.doneOne.Do(func() { close(f.done) })
	f.getCaster().Stop()
	for _, l := range f.learns() {
		l.Stop()
	}
}

// join waits for every fragment thread after broker shutdown, including
// reapers still draining retired incarnations.
func (f *fragRuntime) join() {
	f.monWG.Wait()
	f.getSampler().Join()
	for _, l := range f.learns() {
		l.Join()
	}
	f.getCaster().Join()
	f.zombieWG.Wait()
}

// report assembles the fragment-side measurements.
func (f *fragRuntime) report() *FragmentReport {
	sampler, caster := f.getSampler(), f.getCaster()
	fr := &FragmentReport{
		Learners:         f.topo.Learners,
		MaxStaleness:     f.topo.MaxStaleness,
		StaleDrops:       sampler.StaleDrops(),
		Dispatched:       sampler.Dispatched(),
		Aggregations:     caster.Aggregations(),
		CommittedVersion: caster.Version(),
		Quarantines:      caster.Quarantines(),
		Redispatches:     sampler.Redispatches(),
		Respawns:         f.respawns.Load(),
		Degraded:         f.degraded.Load(),
		Takeovers:        f.takeovers.Load(),
		StalePushes:      caster.StalePushes(),
		Plane:            caster.PlaneStats(),
	}
	for _, sl := range f.slots {
		sl.mu.Lock()
		fr.LearnSteps = append(fr.LearnSteps, sl.priorSteps+sl.frag.StepsConsumed())
		fr.LearnIters = append(fr.LearnIters, sl.priorIters+sl.frag.TrainIters())
		sl.mu.Unlock()
	}
	return fr
}

// mergedSeries sums per-replica throughput series element-wise.
func (f *fragRuntime) mergedSeries() []float64 {
	var out []float64
	for _, l := range f.learns() {
		s := l.Series.PerSecond()
		if len(s) > len(out) {
			grown := make([]float64, len(s))
			copy(grown, out)
			out = grown
		}
		for i, v := range s {
			out[i] += v
		}
	}
	return out
}

// meanOver computes the observation-weighted mean of per-replica histogram
// means.
func meanOver(hists []*stats.Histogram) time.Duration {
	var total int64
	var weighted float64
	for _, h := range hists {
		n := int64(h.Count())
		total += n
		weighted += float64(h.Mean()) * float64(n)
	}
	if total == 0 {
		return 0
	}
	return time.Duration(weighted / float64(total))
}

// busiest returns the histogram with the most observations (the CDF the
// report carries; replicas see statistically identical traffic).
func busiest(hists []*stats.Histogram) *stats.Histogram {
	best := hists[0]
	for _, h := range hists[1:] {
		if h.Count() > best.Count() {
			best = h
		}
	}
	return best
}
