package core_test

import (
	"testing"
	"time"
)

// waitUntil polls cond with exponential backoff (1ms doubling to 50ms) until
// it holds or the timeout expires, failing the test on timeout. Tests use it
// instead of hand-rolled sleep loops so every wait has the same backoff shape
// and the same failure message discipline.
func waitUntil(t *testing.T, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	backoff := time.Millisecond
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out after %v waiting for %s", timeout, what)
		}
		time.Sleep(backoff)
		if backoff < 50*time.Millisecond {
			backoff *= 2
		}
	}
}
