package core_test

import (
	"testing"
	"time"

	"xingtian/internal/core"
	"xingtian/internal/netsim"
)

// TestSessionWeightDeltaEndToEnd: a full multi-machine session with the
// delta plane and relay tree on must train normally — deltas applied in
// sequence, zero privileged drops, refcount-clean shutdown.
func TestSessionWeightDeltaEndToEnd(t *testing.T) {
	algF, agF := quickDQNFactories(t)
	s, err := core.NewSession(core.Config{
		NumExplorers:     4,
		Machines:         3,
		RolloutLen:       40,
		MaxSteps:         2000,
		MaxDuration:      30 * time.Second,
		Net:              netsim.Config{Bandwidth: 1 << 30, TimeScale: 1},
		WeightDelta:      true,
		WeightQuantBits:  8,
		WeightTreeFanout: 1,
	}, algF, agF, 11)
	if err != nil {
		t.Fatalf("NewSession: %v", err)
	}
	s.Start()
	s.Wait()
	rep := s.Stop()
	if err := s.Err(); err != nil {
		t.Fatalf("session error: %v", err)
	}
	if rep.StepsConsumed < 2000 {
		t.Fatalf("StepsConsumed = %d, want >= 2000", rep.StepsConsumed)
	}
	ps := s.Learner().PlaneStats()
	if ps.Delta == 0 {
		t.Fatalf("plane never sent a delta: %+v", ps)
	}
	if ps.Dense == 0 {
		t.Fatal("plane never sent the dense bootstrap")
	}
	if leaked := rep.Channel.TotalLeaked(); leaked != 0 {
		t.Fatalf("TotalLeaked = %d, want 0", leaked)
	}
	// Shutdown legitimately drains queues; what the weight plane must never
	// produce is an unreachable tree leaf, a corrupt body, or a lost ref.
	for _, b := range rep.Channel.Brokers {
		if b.Drops.RelayExpired != 0 || b.Drops.RecvError != 0 || b.Drops.StoreMiss != 0 {
			t.Fatalf("machine %d: relayExpired=%d recvError=%d storeMiss=%d",
				b.MachineID, b.Drops.RelayExpired, b.Drops.RecvError, b.Drops.StoreMiss)
		}
	}
}

// TestSessionWeightDeltaConvergenceParity: with the same seed, the delta
// plane must not change what the learner trains on — returns stay in family
// with the dense run (both reach episodes and comparable mean return).
func TestSessionWeightDeltaConvergenceParity(t *testing.T) {
	run := func(delta bool) *core.Report {
		algF, agF := quickDQNFactories(t)
		cfg := core.Config{
			NumExplorers: 2,
			RolloutLen:   50,
			MaxSteps:     3000,
			MaxDuration:  30 * time.Second,
		}
		if delta {
			cfg.WeightDelta = true
			cfg.WeightQuantBits = 8
		}
		rep, err := core.Run(cfg, algF, agF, 21)
		if err != nil {
			t.Fatalf("Run(delta=%v): %v", delta, err)
		}
		return rep
	}
	dense := run(false)
	deltaRep := run(true)
	if deltaRep.Episodes == 0 || dense.Episodes == 0 {
		t.Fatalf("episodes: dense=%d delta=%d", dense.Episodes, deltaRep.Episodes)
	}
	// Async schedules differ, so exact equality is not expected; a delta
	// run that collapses to a fraction of the dense return means the
	// reconstruction chain corrupted the weights.
	if deltaRep.MeanReturn < dense.MeanReturn/3 {
		t.Fatalf("delta MeanReturn %.2f collapsed vs dense %.2f", deltaRep.MeanReturn, dense.MeanReturn)
	}
}

// TestSessionWeightDeltaSurvivesRestarts: supervised explorer restarts lose
// the agent's mirror; the NACK/ack-regression path must resync them with a
// dense snapshot instead of wedging or failing the session.
func TestSessionWeightDeltaSurvivesRestarts(t *testing.T) {
	algF, agF := quickDQNFactories(t)
	s, err := core.NewSession(core.Config{
		NumExplorers:        2,
		RolloutLen:          40,
		MaxSteps:            1_000_000, // bounded by wall time
		MaxDuration:         700 * time.Millisecond,
		WeightDelta:         true,
		WeightQuantBits:     8,
		MaxExplorerRestarts: 3,
	}, algF, agF, 31)
	if err != nil {
		t.Fatalf("NewSession: %v", err)
	}
	s.Start()
	s.Wait()
	rep := s.Stop()
	if err := s.Err(); err != nil {
		t.Fatalf("session error: %v", err)
	}
	if rep.StepsConsumed == 0 {
		t.Fatal("no steps consumed")
	}
}
