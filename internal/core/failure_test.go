package core_test

import (
	"errors"
	"strings"
	"testing"
	"time"

	"xingtian/internal/core"
	"xingtian/internal/message"
	"xingtian/internal/rollout"
)

// faultyAgent errs after a configurable number of rollouts.
type faultyAgent struct {
	failAfter int
	calls     int
}

var _ core.Agent = (*faultyAgent)(nil)

var errAgentBoom = errors.New("agent boom")

func (a *faultyAgent) Rollout(n int) (*rollout.Batch, error) {
	a.calls++
	if a.calls > a.failAfter {
		return nil, errAgentBoom
	}
	steps := make([]rollout.Step, n)
	return &rollout.Batch{Steps: steps}, nil
}

func (a *faultyAgent) SetWeights(*message.WeightsPayload) error { return nil }
func (a *faultyAgent) WeightsVersion() int64                    { return 0 }
func (a *faultyAgent) OnPolicy() bool                           { return false }
func (a *faultyAgent) EpisodeStats() (int64, float64)           { return 0, 0 }

// faultyAlgorithm errs on its first training attempt with data.
type faultyAlgorithm struct {
	batches int
}

var _ core.Algorithm = (*faultyAlgorithm)(nil)

var errTrainBoom = errors.New("train boom")

func (f *faultyAlgorithm) Name() string                 { return "faulty" }
func (f *faultyAlgorithm) PrepareData(b *rollout.Batch) { f.batches++ }
func (f *faultyAlgorithm) Weights() *message.WeightsPayload {
	return &message.WeightsPayload{Data: []float32{1}}
}

func (f *faultyAlgorithm) TryTrain() (core.TrainResult, bool, error) {
	if f.batches == 0 {
		return core.TrainResult{}, false, nil
	}
	return core.TrainResult{}, false, errTrainBoom
}

// countingAlgorithm trains normally, consuming whatever arrives.
type countingAlgorithm struct {
	pending []*rollout.Batch
}

var _ core.Algorithm = (*countingAlgorithm)(nil)

func (c *countingAlgorithm) Name() string                 { return "counting" }
func (c *countingAlgorithm) PrepareData(b *rollout.Batch) { c.pending = append(c.pending, b) }
func (c *countingAlgorithm) Weights() *message.WeightsPayload {
	return &message.WeightsPayload{Data: []float32{1}}
}

func (c *countingAlgorithm) TryTrain() (core.TrainResult, bool, error) {
	if len(c.pending) == 0 {
		return core.TrainResult{}, false, nil
	}
	b := c.pending[0]
	c.pending = c.pending[1:]
	return core.TrainResult{StepsConsumed: len(b.Steps), Broadcast: true, Targets: []int32{b.ExplorerID}}, true, nil
}

func TestAgentErrorSurfacesInSession(t *testing.T) {
	algF := func(seed int64) (core.Algorithm, error) { return &countingAlgorithm{}, nil }
	agF := func(id int32, seed int64) (core.Agent, error) {
		return &faultyAgent{failAfter: 2}, nil
	}
	s, err := core.NewSession(core.Config{
		NumExplorers: 1,
		RolloutLen:   10,
		MaxSteps:     1 << 40,
		MaxDuration:  5 * time.Second,
	}, algF, agF, 1)
	if err != nil {
		t.Fatalf("NewSession: %v", err)
	}
	s.Start()
	// The explorer dies after 2 fragments; wait out the clock.
	time.Sleep(300 * time.Millisecond)
	s.Stop()
	err = s.Err()
	if err == nil {
		t.Fatal("agent failure not surfaced")
	}
	if !strings.Contains(err.Error(), "agent boom") {
		t.Fatalf("Err = %v, want agent boom", err)
	}
}

func TestAlgorithmErrorStopsLearner(t *testing.T) {
	algF := func(seed int64) (core.Algorithm, error) { return &faultyAlgorithm{}, nil }
	agF := func(id int32, seed int64) (core.Agent, error) {
		return &faultyAgent{failAfter: 1 << 30}, nil
	}
	s, err := core.NewSession(core.Config{
		NumExplorers: 1,
		RolloutLen:   10,
		MaxSteps:     1 << 40,
		MaxDuration:  5 * time.Second,
	}, algF, agF, 2)
	if err != nil {
		t.Fatalf("NewSession: %v", err)
	}
	s.Start()
	timer := time.NewTimer(3 * time.Second)
	defer timer.Stop()
	select {
	case <-s.Learner().Done():
	case <-timer.C:
		t.Fatal("learner did not stop on training error")
	}
	s.Stop()
	if err := s.Err(); err == nil || !strings.Contains(err.Error(), "train boom") {
		t.Fatalf("Err = %v, want train boom", err)
	}
}

func TestTargetedBroadcastReachesOnlyProducer(t *testing.T) {
	// countingAlgorithm broadcasts to the producing explorer only; with two
	// explorers both must still make progress (each gets its own weights).
	algF := func(seed int64) (core.Algorithm, error) { return &countingAlgorithm{}, nil }
	agF := func(id int32, seed int64) (core.Agent, error) {
		return &faultyAgent{failAfter: 1 << 30}, nil
	}
	rep, err := core.Run(core.Config{
		NumExplorers: 2,
		RolloutLen:   10,
		MaxSteps:     400,
		MaxDuration:  5 * time.Second,
	}, algF, agF, 3)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.StepsConsumed < 400 {
		t.Fatalf("StepsConsumed = %d", rep.StepsConsumed)
	}
}

func TestSessionStopIsIdempotent(t *testing.T) {
	algF := func(seed int64) (core.Algorithm, error) { return &countingAlgorithm{}, nil }
	agF := func(id int32, seed int64) (core.Agent, error) {
		return &faultyAgent{failAfter: 1 << 30}, nil
	}
	s, err := core.NewSession(core.Config{
		NumExplorers: 1,
		RolloutLen:   5,
		MaxSteps:     50,
		MaxDuration:  5 * time.Second,
	}, algF, agF, 4)
	if err != nil {
		t.Fatalf("NewSession: %v", err)
	}
	s.Start()
	s.Wait()
	rep := s.Stop()
	if rep.StepsConsumed < 50 {
		t.Fatalf("StepsConsumed = %d", rep.StepsConsumed)
	}
	// A second Stop must be a no-op returning the same report, not a second
	// teardown (double channel-close, double-counted drains, a fresh
	// duration measurement...).
	again := s.Stop()
	if again != rep {
		t.Fatal("second Stop returned a different *Report")
	}
	if again.Duration != rep.Duration || again.StepsConsumed != rep.StepsConsumed {
		t.Fatalf("second Stop re-measured the run: %+v vs %+v", again, rep)
	}
	// Concurrent Stops settle on the same report too.
	reports := make(chan *core.Report, 4)
	for i := 0; i < 4; i++ {
		go func() { reports <- s.Stop() }()
	}
	for i := 0; i < 4; i++ {
		if r := <-reports; r != rep {
			t.Fatal("concurrent Stop returned a different *Report")
		}
	}
}
