package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"xingtian/internal/broker"
	"xingtian/internal/buffer"
	"xingtian/internal/checkpoint"
	"xingtian/internal/message"
	"xingtian/internal/queue"
	"xingtian/internal/stats"
	"xingtian/internal/weightplane"
)

// Learner is the learner process of Fig. 2(a): the trainer thread consumes
// rollouts from the local receive buffer and runs training sessions; the
// receiver thread keeps that buffer filled as messages arrive (so rollout
// transmission overlaps training); the sender thread pushes weight
// broadcasts out the moment the trainer stages them.
type Learner struct {
	alg       Algorithm
	port      *broker.Port
	sendBuf   *buffer.Buffer
	recvBuf   *buffer.Buffer
	explorers []int32
	maxSteps  int64
	plane     *weightplane.Planner

	checkpointPath  string
	checkpointEvery int64
	checkpointKeep  int

	// Measurement hooks for the evaluation figures.
	WaitHist  *stats.Histogram // time the trainer waits for rollouts (Fig 8(c))
	TransHist *stats.Histogram // message creation -> receive-buffer latency
	Series    *stats.Series    // steps consumed per wall-time bucket

	stepsConsumed atomic.Int64
	trainIters    atomic.Int64

	rolloutsSinceBroadcast atomic.Int64

	wg      sync.WaitGroup
	stopped chan struct{}
	stopOne sync.Once

	mu      sync.Mutex
	lastErr error
}

// LearnerConfig parameterizes a learner.
type LearnerConfig struct {
	// Explorers lists all explorer IDs (for full broadcasts).
	Explorers []int32
	// MaxSteps stops the learner after consuming this many rollout steps
	// (<= 0 means run until stopped).
	MaxSteps int64
	// SeriesBucket is the throughput series bucket width (default 1s).
	SeriesBucket time.Duration
	// CheckpointPath, when set, makes the trainer save the DNN parameters
	// every CheckpointEvery sessions (the paper's §4.2 fault tolerance).
	CheckpointPath  string
	CheckpointEvery int64
	// CheckpointKeep > 0 rotates checkpoints (path.N, last CheckpointKeep
	// retained) instead of overwriting a single file.
	CheckpointKeep int
	// WeightPlane configures delta/quantized weight broadcasting; the zero
	// value keeps dense star broadcasts.
	WeightPlane weightplane.Config
}

// NewLearner builds a learner around an algorithm and a broker port.
func NewLearner(alg Algorithm, port *broker.Port, cfg LearnerConfig) *Learner {
	bucket := cfg.SeriesBucket
	if bucket <= 0 {
		bucket = time.Second
	}
	every := cfg.CheckpointEvery
	if every <= 0 {
		every = 100
	}
	return &Learner{
		alg:             alg,
		port:            port,
		sendBuf:         buffer.New(),
		recvBuf:         buffer.New(),
		explorers:       append([]int32(nil), cfg.Explorers...),
		maxSteps:        cfg.MaxSteps,
		checkpointPath:  cfg.CheckpointPath,
		checkpointEvery: every,
		checkpointKeep:  cfg.CheckpointKeep,
		plane:           weightplane.New(cfg.WeightPlane),
		WaitHist:        stats.NewHistogram(),
		TransHist:       stats.NewHistogram(),
		Series:          stats.NewSeries(bucket),
		stopped:         make(chan struct{}),
	}
}

// Start launches the three learner threads.
func (l *Learner) Start() {
	l.wg.Add(3)
	go l.senderLoop()
	go l.receiverLoop()
	go l.trainerLoop()
}

func (l *Learner) senderLoop() {
	defer l.wg.Done()
	for {
		m, err := l.sendBuf.Next()
		if err != nil {
			return
		}
		if err := l.port.Send(m); err != nil {
			if errors.Is(err, queue.ErrClosed) {
				return // channel torn down during shutdown
			}
			l.fail(fmt.Errorf("learner send: %w", err))
			return
		}
	}
}

func (l *Learner) receiverLoop() {
	defer l.wg.Done()
	for {
		m, err := l.port.Recv()
		if err != nil {
			l.recvBuf.Close()
			return
		}
		if m.Header.Type == message.TypeRollout {
			l.TransHist.Observe(time.Duration(time.Now().UnixNano() - m.Header.CreatedNanos))
		}
		if err := l.recvBuf.Put(m); err != nil {
			return
		}
	}
}

// trainerLoop is the trainer thread: ingest whatever has already arrived,
// train when ready, stage weight broadcasts, and account the time spent
// actually waiting for data (the paper's "XingTian Actual Wait").
func (l *Learner) trainerLoop() {
	defer l.wg.Done()
	defer l.sendBuf.Close()
	for {
		select {
		case <-l.stopped:
			return
		default:
		}

		// Drain everything that has arrived without blocking.
		ingested := l.drainNonBlocking()

		res, ok, err := l.alg.TryTrain()
		if err != nil {
			l.fail(fmt.Errorf("learner train: %w", err))
			return
		}
		if !ok {
			// Warm-up acknowledgement: explorers bound their un-acknowledged
			// fragments on weights broadcasts, so an algorithm that cannot
			// train yet (e.g. DQN below TrainStart) must keep re-issuing its
			// current weights or the deployment deadlocks with every
			// explorer out of credit and the learner short of data.
			if l.rolloutsSinceBroadcast.Load() >= int64(len(l.explorers)) {
				l.broadcastWeights(nil)
			}
			// Not enough data: now block. This is the only place the trainer
			// waits on communication, and the wait it observes is what is
			// left of the transmission after overlap.
			if ingested == 0 {
				waitStart := time.Now()
				m, err := l.recvBuf.Next()
				if err != nil {
					return
				}
				l.WaitHist.Observe(time.Since(waitStart))
				if !l.ingest(m) {
					return
				}
			}
			continue
		}

		iters := l.trainIters.Add(1)
		consumed := l.stepsConsumed.Add(int64(res.StepsConsumed))
		l.Series.Add(float64(res.StepsConsumed))

		if res.Broadcast {
			l.broadcastWeights(res.Targets)
		}
		if l.checkpointPath != "" && iters%l.checkpointEvery == 0 {
			w := l.alg.Weights()
			st := checkpoint.State{Version: w.Version, Weights: w.Data}
			var err error
			if l.checkpointKeep > 0 {
				err = checkpoint.SaveRotating(l.checkpointPath, st, l.checkpointKeep)
			} else {
				err = checkpoint.Save(l.checkpointPath, st)
			}
			if err != nil {
				l.fail(fmt.Errorf("learner checkpoint: %w", err))
				return
			}
		}
		if l.maxSteps > 0 && consumed >= l.maxSteps {
			l.stopOne.Do(func() { close(l.stopped) })
			return
		}
	}
}

// drainCap bounds how many messages one trainer cycle ingests before it
// must attempt to train again — otherwise a producer that stays ahead of
// PrepareData would starve training entirely.
const drainCap = 16

func (l *Learner) drainNonBlocking() int {
	n := 0
	for n < drainCap {
		m, err := l.recvBuf.TryNext()
		if errors.Is(err, queue.ErrEmpty) || errors.Is(err, queue.ErrClosed) {
			return n
		}
		if err != nil {
			return n
		}
		if !l.ingest(m) {
			return n
		}
		n++
	}
	return n
}

// ingest routes one received message; it returns false on shutdown.
func (l *Learner) ingest(m *message.Message) bool {
	switch body := m.Body.(type) {
	case *message.RolloutBody:
		l.alg.PrepareData(body)
		l.rolloutsSinceBroadcast.Add(1)
	case *message.ControlPayload:
		switch body.Kind {
		case message.ControlShutdown:
			l.stopOne.Do(func() { close(l.stopped) })
			return false
		case message.ControlWeightsResync:
			// Explorer NACK: its next broadcast must be a dense snapshot.
			l.plane.MarkStale(m.Header.Src)
		}
	}
	return true
}

// broadcastWeights stages weight messages for the sender thread. The weight
// plane decides the wire form per destination group — dense snapshot,
// sparse/quantized delta against the base it last sent, or a pure version
// bump when the update fell below the adaptive skip threshold.
func (l *Learner) broadcastWeights(targets []int32) {
	w := l.alg.Weights()
	dst := make([]string, 0, len(l.explorers))
	if targets == nil {
		for _, id := range l.explorers {
			dst = append(dst, ExplorerName(id))
		}
	} else {
		for _, id := range targets {
			dst = append(dst, ExplorerName(id))
		}
	}
	if len(dst) == 0 {
		return
	}
	for _, o := range l.plane.Plan(w.Data, w.Version, dst, l.port.AckedWeights()) {
		m := message.New(o.Type, LearnerName, o.Dsts, o.Body)
		m.Header.WeightsVersion = w.Version
		m.Header.BaseVersion = o.BaseVersion
		_ = l.sendBuf.Put(m)
	}
	l.rolloutsSinceBroadcast.Store(0)
}

// PlaneStats snapshots the weight plane's planning counters.
func (l *Learner) PlaneStats() weightplane.Stats { return l.plane.Stats() }

func (l *Learner) fail(err error) {
	l.mu.Lock()
	if l.lastErr == nil {
		l.lastErr = err
	}
	l.mu.Unlock()
	l.stopOne.Do(func() { close(l.stopped) })
}

// Err returns the first error the learner hit, if any.
func (l *Learner) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.lastErr
}

// Algorithm exposes the learner's algorithm (e.g. for PBT weight export).
func (l *Learner) Algorithm() Algorithm { return l.alg }

// StepsConsumed reports total rollout steps used for training so far.
func (l *Learner) StepsConsumed() int64 { return l.stepsConsumed.Load() }

// TrainIters reports completed training sessions.
func (l *Learner) TrainIters() int64 { return l.trainIters.Load() }

// Done returns a channel closed when the learner finishes (goal reached,
// shutdown command, or error).
func (l *Learner) Done() <-chan struct{} { return l.stopped }

// Stop signals the learner threads to finish.
func (l *Learner) Stop() {
	l.stopOne.Do(func() { close(l.stopped) })
	l.recvBuf.Close()
}

// Join waits for the learner threads after Stop and broker shutdown.
func (l *Learner) Join() { l.wg.Wait() }
