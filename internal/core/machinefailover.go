// Machine-level fault domains (§5j): the re-placement engine consuming
// membership death verdicts and rebuilding the dead machine's fragments on
// survivors.
//
// The transport's membership plane (fabric.Grid leases) declares a machine
// dead; the engine then fences the machine out with Kill — the condemned
// incarnation physically cannot drive its old fragments once its broker and
// links are gone — and re-places every fragment the machine hosted:
//
//   - the broadcast fragment rebuilds from the newest of the dead
//     incarnation's in-memory aggregate and the fragment checkpoint, at a
//     version bumped past everything any survivor has seen;
//   - the sample fragment rebuilds from the slot-tracked replica epochs and
//     the broker ack ledger reconstructed by heartbeats, its staleness fence
//     recovered from the live broadcaster and the checkpoint;
//   - learn replicas ride the §5i respawn path — the engine injects a
//     suspicion verdict and respawnLearn re-places the port because the home
//     is recorded dead;
//   - explorer slots are rebuilt directly on a survivor, their retired
//     counters folded in.
//
// Every re-placement is announced with a ControlTakeover carrying the new
// incarnation epoch; the broadcaster answers a takeover with a rebroadcast
// of the committed model, refilling flow-control credit any explorer burned
// during the outage. The coordinator machine hosts the controller and the
// membership detector; its death is terminal by design.
package core

import (
	"fmt"
	"time"

	"xingtian/internal/checkpoint"
	"xingtian/internal/message"
	"xingtian/internal/weightplane"
)

// coordinatorMachine hosts the controller, the learner-or-fragment control
// plane, and the membership detector under MachineFailover. Its death is not
// survivable (and not observable — the detector dies with it).
const coordinatorMachine = 0

// leaseMisses is the consecutive-miss budget handed to the membership
// detector: a machine overdue by leaseMisses*LeaseEvery with a corroborating
// downed link (or twice that regardless of link state) is declared dead.
const leaseMisses = 4

// MachineFailoverTransport is the contract Config.MachineFailover needs from
// its transport: whole-machine membership (a lease plane rendering
// epoch-fenced death verdicts) plus the expulsion primitive the engine
// fences condemned machines with. fabric.Grid implements it; the netsim
// cluster does not — machine failover is a real-wire feature.
type MachineFailoverTransport interface {
	Transport
	// Machines reports the deployment width.
	Machines() int
	// StartMembership arms the lease plane: machine `coordinator` hosts the
	// lease sink and detector, every other machine renews each `every`
	// (zero = transport default), and a machine missing `misses` renewals
	// is declared dead — onDead fires exactly once per machine with the
	// verdict epoch.
	StartMembership(coordinator int, every time.Duration, misses int, onDead func(machine, epoch int)) error
	// Kill expels a machine: links severed, broker stopped. Idempotent.
	Kill(machineID int)
	// MembershipStats reports leases received and verdicts fired.
	MembershipStats() (renewals, verdicts int64)
}

// mfVerdict is one membership death verdict queued for the engine.
type mfVerdict struct {
	machine int
	epoch   int
}

// machineFailoverLoop is the re-placement engine thread: it consumes
// membership verdicts until shutdown. Verdicts are processed one at a time —
// placement decisions must see the previous re-placement completed.
func (s *Session) machineFailoverLoop() {
	defer s.superWG.Done()
	for {
		select {
		case <-s.shutdown:
			return
		case v := <-s.mfVerdicts:
			s.handleMachineDead(v.machine, v.epoch)
		}
	}
}

// machineDead reports whether a machine has been condemned by a verdict the
// engine already accepted.
func (s *Session) machineDead(machine int) bool {
	s.mfMu.Lock()
	defer s.mfMu.Unlock()
	return s.mfDead[machine]
}

// handleMachineDead is one whole-machine failover: fence the machine out,
// then re-place its fragments in dependency order — broadcaster first (the
// sampler's rebuilt fence reads its version), then sampler, then learn
// replicas via their supervisors, then explorer slots.
func (s *Session) handleMachineDead(machine, epoch int) {
	s.mfMu.Lock()
	if s.mfDead[machine] {
		s.mfMu.Unlock()
		return // duplicate verdict (the plane fires once, but be safe)
	}
	s.mfDead[machine] = true
	s.mfMu.Unlock()

	// Record the verdict on the controller's own stats channel so live
	// polls (TakeoverStats) and the final report agree on what was seen.
	dm := message.New(message.TypeControl, ControllerName, []string{ControllerName},
		&message.ControlPayload{Kind: message.ControlMachineDead, Machine: machine})
	dm.Header.Round = int32(epoch)
	_ = s.ctrlPort.Send(dm)

	if machine == coordinatorMachine {
		s.failFragments(fmt.Errorf("core: coordinator machine %d condemned by membership verdict", machine))
		return
	}

	// Fence first: expel the machine so its incarnations cannot drive their
	// old fragments (or ack, push, or renew) while standbys rebuild.
	s.mfTransport.Kill(machine)

	f := s.frags
	f.fragMu.Lock()
	castDead := f.castMachine == machine
	sampleDead := f.sampleMachine == machine
	f.fragMu.Unlock()
	if castDead {
		if err := s.rebuildBroadcaster(machine); err != nil {
			s.failFragments(fmt.Errorf("core: rebuild broadcaster after machine %d death: %w", machine, err))
			return
		}
	}
	if sampleDead {
		if err := s.rebuildSampler(machine); err != nil {
			s.failFragments(fmt.Errorf("core: rebuild sampler after machine %d death: %w", machine, err))
			return
		}
	}

	// Learn replicas ride the §5i respawn path: inject a suspicion verdict
	// at the slot's current epoch; the supervisor quarantines (the sampler
	// re-dispatches un-acked batches, the broadcaster recommits the
	// survivor mean) and respawnLearn re-places the port onto a survivor
	// because the home is now recorded dead.
	for _, sl := range f.slots {
		sl.mu.Lock()
		onDead := sl.machine == machine && !sl.degraded
		ep := sl.epoch
		sl.mu.Unlock()
		if onDead {
			select {
			case sl.suspect <- ep:
			default: // a verdict is already pending for this slot
			}
		}
	}

	// Explorer slots last: the broadcaster and sampler are live again, so a
	// rebuilt explorer's first rollout has somewhere to go and the takeover
	// rebroadcast hands it the committed model.
	for _, sl := range s.slots {
		sl.mu.Lock()
		onDead := sl.machine == machine
		sl.mu.Unlock()
		if !onDead {
			continue
		}
		if err := s.rebuildExplorer(sl, machine); err != nil {
			// A lost explorer slot degrades throughput, not safety: record
			// the failure and keep the run alive on the remaining slots.
			sl.mu.Lock()
			if sl.lastErr == nil {
				sl.lastErr = err
			}
			sl.mu.Unlock()
		}
	}
}

// failFragments drives the run to a terminal failure: every learn slot is
// marked terminal (the monitor and Err surface the verdict) and the done
// channel closes so Wait returns.
func (s *Session) failFragments(err error) {
	for _, sl := range s.frags.slots {
		sl.mu.Lock()
		if sl.terminalErr == nil {
			sl.terminalErr = err
		}
		sl.mu.Unlock()
	}
	s.frags.doneOne.Do(func() { close(s.frags.done) })
}

// pickSurvivor chooses the least-loaded surviving machine by hosted-fragment
// count (sampler, broadcaster, learn replicas, explorer slots), lowest ID on
// ties. Returns -1 when nothing survives.
func (s *Session) pickSurvivor() int {
	n := s.mfTransport.Machines()
	load := make([]int, n)
	note := func(m int) {
		if m >= 0 && m < n {
			load[m]++
		}
	}
	f := s.frags
	f.fragMu.Lock()
	note(f.sampleMachine)
	note(f.castMachine)
	f.fragMu.Unlock()
	for _, sl := range f.slots {
		sl.mu.Lock()
		note(sl.machine)
		sl.mu.Unlock()
	}
	for _, sl := range s.slots {
		sl.mu.Lock()
		note(sl.machine)
		sl.mu.Unlock()
	}
	s.mfMu.Lock()
	defer s.mfMu.Unlock()
	best := -1
	for m := 0; m < n; m++ {
		if s.mfDead[m] {
			continue
		}
		if best < 0 || load[m] < load[best] {
			best = m
		}
	}
	return best
}

// announceTakeover records one fragment re-placement on the control plane.
// The controller counts it (TakeoverStats, FragmentReport); when the
// broadcaster is addressed too it marks the fragment's weight-plane state
// stale and rebroadcasts the committed model — re-seeding the newcomer and
// refilling the flow-control credit explorers burned during the outage.
func (s *Session) announceTakeover(name string, machine int, epoch int32, toCaster bool) {
	s.frags.takeovers.Add(1)
	dsts := []string{ControllerName}
	if toCaster {
		dsts = append(dsts, BroadcastName)
	}
	m := message.New(message.TypeControl, ControllerName, dsts,
		&message.ControlPayload{Kind: message.ControlTakeover, Peer: name, Machine: machine})
	m.Header.Round = epoch
	_ = s.ctrlPort.Send(m)
}

// checkpointState reads one fragment's state from the newest readable
// fragment checkpoint set (ok = false when none).
func (s *Session) checkpointState(name string) (checkpoint.State, bool) {
	if s.cfg.CheckpointPath == "" {
		return checkpoint.State{}, false
	}
	states, err := checkpoint.LoadLatestFragments(s.cfg.CheckpointPath)
	if err != nil {
		return checkpoint.State{}, false
	}
	for _, fs := range states {
		if fs.Name == name {
			return fs.State, true
		}
	}
	return checkpoint.State{}, false
}

// learnNames returns the canonical replica name list in slot order.
func (s *Session) learnNames() []string {
	names := make([]string, len(s.frags.slots))
	for i := range names {
		names[i] = LearnName(i)
	}
	return names
}

// rebuildSampler stands a warm-standby sample fragment up on a survivor.
// The sampler's hard state is reconstructible: replica epochs and the live
// rotation come from the slots, the consumption ack ledger is rebuilt by the
// next heartbeats, and the committed-version fence recovers from the live
// broadcaster and the checkpointed sampler entry — without it a strict
// staleness bound would re-admit rollouts the dead sampler had outlawed.
func (s *Session) rebuildSampler(dead int) error {
	f := s.frags
	old := f.getSampler()
	s.transport.Unregister(dead, SampleName)
	to := s.pickSurvivor()
	if to < 0 {
		return fmt.Errorf("no survivor machine for %s", SampleName)
	}
	port, err := s.transport.Register(to, SampleName)
	if err != nil {
		return err
	}
	// The dead incarnation's loop exited when its broker stopped; joining
	// it makes the swap single-writer.
	old.Join()

	next := NewSampleFragment(port, s.learnNames(), f.topo.MaxStaleness)
	if f.failover {
		next.SetFailover()
		epochs := make(map[string]int32, len(f.slots))
		live := make([]string, 0, len(f.slots))
		for _, sl := range f.slots {
			sl.mu.Lock()
			epochs[LearnName(sl.idx)] = sl.epoch
			if !sl.degraded {
				live = append(live, LearnName(sl.idx))
			}
			sl.mu.Unlock()
		}
		next.seedFailoverState(epochs, live)
	}
	recovered := f.getCaster().Version()
	if st, ok := s.checkpointState(SampleName); ok && st.Version > recovered {
		recovered = st.Version
	}
	next.advanceCommitted(recovered)

	f.fragMu.Lock()
	f.sampler = next
	f.sampleMachine = to
	f.samplerEpoch++
	ep := f.samplerEpoch
	f.fragMu.Unlock()
	next.Start()
	// The broadcaster's takeover rebroadcast re-announces the committed
	// version to the standby and refills every explorer's credit.
	s.announceTakeover(SampleName, to, ep, true)
	return nil
}

// rebuildBroadcaster stands a warm-standby broadcast fragment up on a
// survivor. The committed model recovers from the newest of the dead
// incarnation's in-memory aggregate (safe to read once its loop is joined)
// and the fragment checkpoint; the version is bumped past both — and past
// the sampler's fence — so every survivor's next comparison sees strictly
// newer state and a stale-version livelock is impossible.
func (s *Session) rebuildBroadcaster(dead int) error {
	f := s.frags
	old := f.getCaster()
	old.Stop() // detector thread; the recv loop died with the broker
	s.transport.Unregister(dead, BroadcastName)
	to := s.pickSurvivor()
	if to < 0 {
		return fmt.Errorf("no survivor machine for %s", BroadcastName)
	}
	port, err := s.transport.Register(to, BroadcastName)
	if err != nil {
		return err
	}
	old.Join()

	version := old.Version()
	weights := append([]float32(nil), old.agg...)
	if st, ok := s.checkpointState(BroadcastName); ok && st.Version > version {
		version, weights = st.Version, st.Weights
	}
	if c := f.getSampler().Committed(); c > version {
		version = c
	}
	version++

	explorers := make([]string, s.cfg.NumExplorers)
	for i := range explorers {
		explorers[i] = ExplorerName(int32(i))
	}
	next := NewBroadcastFragment(port, BroadcastConfig{
		Explorers:      explorers,
		Learners:       s.learnNames(),
		SyncEvery:      f.topo.SyncEvery,
		InitialVersion: version,
		InitialWeights: weights,
		WeightPlane: weightplane.Config{
			Enabled:    s.cfg.WeightDelta,
			QuantBits:  s.cfg.WeightQuantBits,
			SkipFactor: s.cfg.WeightSkipFactor,
		},
		CheckpointPath:  s.cfg.CheckpointPath,
		CheckpointEvery: s.cfg.CheckpointEvery,
		CheckpointKeep:  s.cfg.CheckpointKeep,
	})
	if f.failover {
		next.SetFailover(heartbeatMisses*f.hbEvery, f.suspectFn)
		epochs := make(map[string]int32, len(f.slots))
		quarantined := make([]string, 0, len(f.slots))
		for _, sl := range f.slots {
			sl.mu.Lock()
			epochs[LearnName(sl.idx)] = sl.epoch
			if sl.degraded {
				quarantined = append(quarantined, LearnName(sl.idx))
			}
			sl.mu.Unlock()
		}
		next.seedFailoverState(epochs, quarantined)
	}
	f.fragMu.Lock()
	f.caster = next
	f.castMachine = to
	f.casterEpoch++
	ep := f.casterEpoch
	f.fragMu.Unlock()
	// Start broadcasts the recovered model to every explorer (dense — the
	// standby's weight plane has no ack state) and announces the bumped
	// version to the sampler.
	next.Start()
	s.announceTakeover(BroadcastName, to, ep, false)
	return nil
}

// rebuildExplorer re-places one explorer slot onto a survivor, folding the
// retired incarnation's counters. It runs on the engine thread; the slot's
// rebuildMu serializes it against the slot supervisor's own restart path.
func (s *Session) rebuildExplorer(sl *explorerSlot, dead int) error {
	sl.rebuildMu.Lock()
	defer sl.rebuildMu.Unlock()
	sl.mu.Lock()
	old := sl.ex
	home := sl.machine
	sl.mu.Unlock()
	if home != dead {
		return nil // the supervisor already rebuilt the slot elsewhere
	}
	name := ExplorerName(sl.id)
	old.Stop()
	s.transport.Unregister(dead, name)
	old.Join()
	to := s.pickSurvivor()
	if to < 0 {
		return fmt.Errorf("core: no survivor machine for %s", name)
	}
	next, err := s.buildExplorer(sl.id, to)
	if err != nil {
		return fmt.Errorf("core: re-place %s on machine %d: %w", name, to, err)
	}
	var ep int32
	sl.mu.Lock()
	sl.priorSteps += old.StepsGenerated()
	n, mean := old.EpisodeStats()
	sl.priorEpisodes += n
	sl.priorReturnSum += mean * float64(n)
	sl.ex = next
	sl.machine = to
	sl.moves++
	ep = sl.moves
	sl.mu.Unlock()
	next.Start()
	// Nudge the supervisor off the retired incarnation, then announce: the
	// broadcaster marks the slot stale and rebroadcasts, so the newcomer
	// gets a dense model and credit-starved peers are refilled.
	select {
	case sl.replaced <- struct{}{}:
	default:
	}
	s.announceTakeover(name, to, ep, true)
	return nil
}
