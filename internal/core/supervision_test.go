package core_test

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"xingtian/internal/core"
)

// restartableAgentFactory fails the first incarnation of each slot after a
// few rollouts and hands out healthy agents afterwards — the crash-then-
// recover shape supervision exists for.
func restartableAgentFactory(failFirstAfter int) core.AgentFactory {
	var mu sync.Mutex
	built := map[int32]int{}
	return func(id int32, seed int64) (core.Agent, error) {
		mu.Lock()
		n := built[id]
		built[id]++
		mu.Unlock()
		if n == 0 {
			return &faultyAgent{failAfter: failFirstAfter}, nil
		}
		return &faultyAgent{failAfter: 1 << 30}, nil
	}
}

func TestExplorerRestartReachesStepTarget(t *testing.T) {
	algF := func(seed int64) (core.Algorithm, error) { return &countingAlgorithm{}, nil }
	rep, err := core.Run(core.Config{
		NumExplorers:        2,
		RolloutLen:          10,
		MaxSteps:            400,
		MaxDuration:         10 * time.Second,
		MaxExplorerRestarts: 3,
		RestartBackoff:      time.Millisecond,
	}, algF, restartableAgentFactory(2), 7)
	if err != nil {
		t.Fatalf("Run: %v (restarts should have absorbed the agent errors)", err)
	}
	if rep.StepsConsumed < 400 {
		t.Fatalf("StepsConsumed = %d, want >= 400", rep.StepsConsumed)
	}
	if rep.ExplorerRestarts != 2 {
		t.Fatalf("ExplorerRestarts = %d, want 2 (one crash per slot)", rep.ExplorerRestarts)
	}
	if !strings.Contains(rep.RestartLastError, "agent boom") {
		t.Fatalf("RestartLastError = %q, want the handled agent error", rep.RestartLastError)
	}
	if rep.RestartBudgetExhausted != 0 {
		t.Fatalf("RestartBudgetExhausted = %d, want 0", rep.RestartBudgetExhausted)
	}
	if got := rep.Channel.Supervision.ExplorerRestarts; got != 2 {
		t.Fatalf("ClusterHealth supervision restarts = %d, want 2", got)
	}
	if leaked := rep.Channel.TotalLeaked(); leaked != 0 {
		t.Fatalf("TotalLeaked = %d after restarts (teardown must release refs)", leaked)
	}
}

func TestRestartBudgetExhaustionFailsFast(t *testing.T) {
	algF := func(seed int64) (core.Algorithm, error) { return &countingAlgorithm{}, nil }
	// Every incarnation dies after one rollout: the budget must run out and
	// the slot's last error must surface through Err.
	agF := func(id int32, seed int64) (core.Agent, error) {
		return &faultyAgent{failAfter: 1}, nil
	}
	s, err := core.NewSession(core.Config{
		NumExplorers:        1,
		RolloutLen:          10,
		MaxSteps:            1 << 40,
		MaxDuration:         10 * time.Second,
		MaxExplorerRestarts: 2,
		RestartBackoff:      time.Millisecond,
	}, algF, agF, 8)
	if err != nil {
		t.Fatalf("NewSession: %v", err)
	}
	s.Start()
	waitUntil(t, 5*time.Second, "budget exhaustion to surface in Err", func() bool {
		return s.Err() != nil
	})
	rep := s.Stop()
	err = s.Err()
	if !strings.Contains(err.Error(), "restart budget") || !errors.Is(err, errAgentBoom) {
		t.Fatalf("Err = %v, want budget exhaustion wrapping the agent error", err)
	}
	if rep.ExplorerRestarts != 2 {
		t.Fatalf("ExplorerRestarts = %d, want 2 (the full budget)", rep.ExplorerRestarts)
	}
	if rep.RestartBudgetExhausted != 1 {
		t.Fatalf("RestartBudgetExhausted = %d, want 1", rep.RestartBudgetExhausted)
	}
	if leaked := rep.Channel.TotalLeaked(); leaked != 0 {
		t.Fatalf("TotalLeaked = %d", leaked)
	}
}

func TestSupervisionOffPreservesFailFast(t *testing.T) {
	// MaxExplorerRestarts = 0: the historical semantics — the error surfaces,
	// nothing restarts, and the factory is called exactly once per slot.
	algF := func(seed int64) (core.Algorithm, error) { return &countingAlgorithm{}, nil }
	var mu sync.Mutex
	builds := 0
	agF := func(id int32, seed int64) (core.Agent, error) {
		mu.Lock()
		builds++
		mu.Unlock()
		return &faultyAgent{failAfter: 2}, nil
	}
	s, err := core.NewSession(core.Config{
		NumExplorers: 1,
		RolloutLen:   10,
		MaxSteps:     1 << 40,
		MaxDuration:  5 * time.Second,
	}, algF, agF, 9)
	if err != nil {
		t.Fatalf("NewSession: %v", err)
	}
	s.Start()
	time.Sleep(200 * time.Millisecond)
	rep := s.Stop()
	if err := s.Err(); err == nil || !strings.Contains(err.Error(), "agent boom") {
		t.Fatalf("Err = %v, want the raw agent error", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if builds != 1 {
		t.Fatalf("agent factory called %d times, want 1 (no restarts without a budget)", builds)
	}
	if rep.ExplorerRestarts != 0 {
		t.Fatalf("ExplorerRestarts = %d, want 0", rep.ExplorerRestarts)
	}
}
