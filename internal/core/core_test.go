package core_test

import (
	"strings"
	"testing"
	"time"

	"xingtian/internal/algorithm"
	"xingtian/internal/core"
	"xingtian/internal/env"
	"xingtian/internal/netsim"
)

func quickDQNFactories(t *testing.T) (core.AlgorithmFactory, core.AgentFactory) {
	t.Helper()
	e := env.NewCartPole(0)
	spec := algorithm.SpecFor(e)
	spec.Hidden = []int{16}
	algF := func(seed int64) (core.Algorithm, error) {
		cfg := algorithm.DefaultDQNConfig()
		cfg.TrainStart = 100
		cfg.TrainEvery = 2
		cfg.BatchSize = 16
		cfg.BroadcastEvery = 5
		return algorithm.NewDQN(spec, cfg, seed), nil
	}
	agF := func(id int32, seed int64) (core.Agent, error) {
		envInst := env.NewCartPole(seed)
		return algorithm.NewDQNAgent(spec, algorithm.NewEnvRunner(envInst, spec), seed), nil
	}
	return algF, agF
}

func quickIMPALAFactories(t *testing.T) (core.AlgorithmFactory, core.AgentFactory) {
	t.Helper()
	e := env.NewCartPole(0)
	spec := algorithm.SpecFor(e)
	spec.Hidden = []int{16}
	algF := func(seed int64) (core.Algorithm, error) {
		return algorithm.NewIMPALA(spec, algorithm.DefaultIMPALAConfig(), seed), nil
	}
	agF := func(id int32, seed int64) (core.Agent, error) {
		envInst := env.NewCartPole(seed)
		return algorithm.NewIMPALAAgent(spec, algorithm.NewEnvRunner(envInst, spec), seed), nil
	}
	return algF, agF
}

func quickPPOFactories(t *testing.T, explorers int) (core.AlgorithmFactory, core.AgentFactory) {
	t.Helper()
	e := env.NewCartPole(0)
	spec := algorithm.SpecFor(e)
	spec.Hidden = []int{16}
	algF := func(seed int64) (core.Algorithm, error) {
		cfg := algorithm.DefaultPPOConfig(explorers)
		cfg.Epochs = 2
		return algorithm.NewPPO(spec, cfg, seed), nil
	}
	agF := func(id int32, seed int64) (core.Agent, error) {
		envInst := env.NewCartPole(seed)
		return algorithm.NewPPOAgent(spec, algorithm.NewEnvRunner(envInst, spec), seed), nil
	}
	return algF, agF
}

func TestSessionDQNSingleMachine(t *testing.T) {
	algF, agF := quickDQNFactories(t)
	rep, err := core.Run(core.Config{
		NumExplorers: 2,
		RolloutLen:   50,
		MaxSteps:     1500,
		MaxDuration:  30 * time.Second,
	}, algF, agF, 1)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.StepsConsumed < 1500 {
		t.Fatalf("StepsConsumed = %d, want >= 1500", rep.StepsConsumed)
	}
	if rep.TrainIters == 0 {
		t.Fatal("no training sessions ran")
	}
	if rep.Episodes == 0 {
		t.Fatal("no episodes completed")
	}
	if rep.Throughput <= 0 {
		t.Fatalf("Throughput = %v", rep.Throughput)
	}
	if rep.StepsGenerated == 0 {
		t.Fatal("explorers generated no steps")
	}
}

func TestSessionIMPALAMultiMachine(t *testing.T) {
	algF, agF := quickIMPALAFactories(t)
	rep, err := core.Run(core.Config{
		NumExplorers: 4,
		RolloutLen:   40,
		MaxSteps:     2000,
		MaxDuration:  30 * time.Second,
		Machines:     2,
		Net:          netsim.Config{Bandwidth: 1 << 30, TimeScale: 1},
	}, algF, agF, 2)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.StepsConsumed < 2000 {
		t.Fatalf("StepsConsumed = %d, want >= 2000", rep.StepsConsumed)
	}
	// Wait/transmission histograms must have been populated.
	if rep.MeanTransmission <= 0 {
		t.Fatal("MeanTransmission not measured")
	}
}

func TestSessionPPOSynchronous(t *testing.T) {
	algF, agF := quickPPOFactories(t, 3)
	rep, err := core.Run(core.Config{
		NumExplorers: 3,
		RolloutLen:   64,
		MaxSteps:     1920, // 10 iterations of 3x64
		MaxDuration:  30 * time.Second,
	}, algF, agF, 3)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.StepsConsumed < 1920 {
		t.Fatalf("StepsConsumed = %d, want >= 1920", rep.StepsConsumed)
	}
	// PPO consumes one batch per explorer per iteration.
	perIter := int64(3 * 64)
	if rep.StepsConsumed%perIter != 0 {
		t.Fatalf("StepsConsumed = %d, want a multiple of %d", rep.StepsConsumed, perIter)
	}
}

func TestSessionStopsOnMaxDuration(t *testing.T) {
	algF, agF := quickDQNFactories(t)
	start := time.Now()
	rep, err := core.Run(core.Config{
		NumExplorers: 1,
		RolloutLen:   50,
		MaxSteps:     1 << 40, // unreachable
		MaxDuration:  300 * time.Millisecond,
	}, algF, agF, 4)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("Run took %v despite 300ms MaxDuration", elapsed)
	}
	if rep.Duration < 250*time.Millisecond {
		t.Fatalf("Duration = %v, want >= 250ms", rep.Duration)
	}
}

func TestSessionThroughputSeriesPopulated(t *testing.T) {
	algF, agF := quickIMPALAFactories(t)
	rep, err := core.Run(core.Config{
		NumExplorers: 2,
		RolloutLen:   50,
		MaxSteps:     3000,
		MaxDuration:  30 * time.Second,
		SeriesBucket: 50 * time.Millisecond,
	}, algF, agF, 5)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(rep.ThroughputSeries) == 0 {
		t.Fatal("empty throughput series")
	}
	var total float64
	for _, r := range rep.ThroughputSeries {
		total += r * 0.05
	}
	if total < float64(rep.StepsConsumed)/2 {
		t.Fatalf("series accounts for %v steps of %d consumed", total, rep.StepsConsumed)
	}
}

func TestSessionCompressionOn(t *testing.T) {
	algF, agF := quickIMPALAFactories(t)
	rep, err := core.Run(core.Config{
		NumExplorers: 1,
		RolloutLen:   50,
		MaxSteps:     500,
		MaxDuration:  30 * time.Second,
		Compress:     true,
	}, algF, agF, 6)
	if err != nil {
		t.Fatalf("Run with compression: %v", err)
	}
	if rep.StepsConsumed < 500 {
		t.Fatalf("StepsConsumed = %d", rep.StepsConsumed)
	}
}

func TestSessionWaitHistogramRecorded(t *testing.T) {
	algF, agF := quickIMPALAFactories(t)
	s, err := core.NewSession(core.Config{
		NumExplorers: 2,
		RolloutLen:   50,
		MaxSteps:     2000,
		MaxDuration:  30 * time.Second,
	}, algF, agF, 7)
	if err != nil {
		t.Fatalf("NewSession: %v", err)
	}
	s.Start()
	s.Wait()
	rep := s.Stop()
	if err := s.Err(); err != nil {
		t.Fatalf("session error: %v", err)
	}
	if s.Learner().WaitHist.Count() == 0 {
		t.Fatal("learner never recorded a wait — the trainer must block at least once at startup")
	}
	if len(rep.WaitCDF) == 0 {
		t.Fatal("empty wait CDF")
	}
}

// TestRunChannelHealthLeakFree: a full multi-machine session must end with
// every broker's object store drained and the final report carrying the
// channel-health snapshot.
func TestRunChannelHealthLeakFree(t *testing.T) {
	algF, agF := quickDQNFactories(t)
	var buf strings.Builder
	cfg := core.Config{
		NumExplorers:  2,
		Machines:      2,
		RolloutLen:    20,
		MaxSteps:      1_000_000, // bounded by wall time below
		MaxDuration:   500 * time.Millisecond,
		Net:           netsim.Config{Bandwidth: 1 << 30, TimeScale: 1},
		MetricsEvery:  100 * time.Millisecond,
		MetricsWriter: &buf,
	}
	rep, err := core.Run(cfg, algF, agF, 3)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(rep.Channel.Brokers) != 2 {
		t.Fatalf("Channel snapshots = %d brokers, want 2", len(rep.Channel.Brokers))
	}
	if leaked := rep.Channel.TotalLeaked(); leaked != 0 {
		t.Fatalf("TotalLeaked = %d, want 0; health:\n%s", leaked, rep.Channel.String())
	}
	for _, b := range rep.Channel.Brokers {
		if b.ReleaseErrors != 0 {
			t.Fatalf("machine %d ReleaseErrors = %d, want 0", b.MachineID, b.ReleaseErrors)
		}
	}
	if rep.Channel.Brokers[0].Receives == 0 {
		t.Fatal("no receives recorded on machine 0")
	}
	if !strings.Contains(buf.String(), "channel:") {
		t.Fatalf("periodic metrics log missing; got %q", buf.String())
	}
}
