package core

import "fmt"

// FragmentKind identifies one of the four dataflow-fragment types the
// training loop decomposes into (the MSRL fragment model): rollout fragments
// (explorers), the replay/sample fragment, learn fragments, and the
// broadcast fragment.
type FragmentKind uint8

// Fragment kinds.
const (
	FragRollout FragmentKind = iota + 1
	FragSample
	FragLearn
	FragBroadcast
)

// String returns a human-readable fragment-kind name.
func (k FragmentKind) String() string {
	switch k {
	case FragRollout:
		return "rollout"
	case FragSample:
		return "sample"
	case FragLearn:
		return "learn"
	case FragBroadcast:
		return "broadcast"
	default:
		return "unknown"
	}
}

// SampleName is the canonical client name of the replay/sample fragment.
const SampleName = "sampler"

// BroadcastName is the canonical client name of the broadcast fragment.
const BroadcastName = "broadcaster"

// LearnName formats the canonical client name of a learn-fragment replica.
func LearnName(i int) string { return fmt.Sprintf("learn-%d", i) }

// StalenessUnbounded disables the sample→learn staleness filter: rollouts
// are dispatched regardless of how many weight versions behind they are.
const StalenessUnbounded = -1

// Topology describes how the training loop's fragments are replicated and
// placed. The zero value is the fused compatibility topology: the
// replay/sample, learn, and broadcast fragments run fused inside the single
// legacy Learner on machine 0, reproducing the seed's
// explorer→broker→learner loop bit for bit. Any non-fused topology runs the
// fragment runtime instead: explorers ship rollouts to the sample fragment,
// which dispatches them round-robin to N learn replicas under a bounded-
// staleness rule, and a broadcast fragment aggregates replica weights and
// plans the broadcasts back to every explorer.
type Topology struct {
	// Learners replicates the learn fragment. 0 keeps the fused legacy
	// loop; 1 runs a single learn fragment on the fragment runtime; values
	// > 1 replicate it (Fused must be false).
	Learners int
	// Fused runs the compatibility topology regardless of the other fields
	// (except Learners, which must be <= 1): sample+learn+broadcast fused
	// in the legacy Learner. A zero-value Topology is treated as fused.
	Fused bool
	// SampleMachine places the replay/sample fragment (default machine 0).
	SampleMachine int
	// BroadcastMachine places the broadcast fragment (default machine 0).
	BroadcastMachine int
	// LearnMachines places each learn replica; nil places all replicas on
	// machine 0, otherwise its length must equal the replica count.
	LearnMachines []int
	// MaxStaleness bounds the sample→learn edge in weight versions: a
	// rollout generated under weights version v is dispatched only while
	// the broadcast fragment's committed version c satisfies c-v <=
	// MaxStaleness. 0 is strict assignment order (only rollouts from the
	// current weights reach a learn fragment); StalenessUnbounded (-1, or
	// any negative value) disables the filter. Ignored when Fused.
	MaxStaleness int
	// SyncEvery makes the broadcast fragment echo the aggregated weights
	// back to the learn replicas every SyncEvery aggregations (0 = every
	// aggregation). The echo keeps replicas from drifting apart and pins
	// each replica's internal version counter to the committed version
	// explorers see — on-policy algorithms need SyncEvery == 1.
	SyncEvery int
}

// FusedTopology returns the compatibility topology: the seed's single-
// learner loop, bit-for-bit.
func FusedTopology() Topology { return Topology{Learners: 1, Fused: true} }

// ReplicatedTopology returns a fragment topology with n learn replicas on
// machine 0 and an unbounded staleness edge — the multi-learner scaling
// configuration.
func ReplicatedTopology(n int) Topology {
	return Topology{Learners: n, MaxStaleness: StalenessUnbounded}
}

// fragmented reports whether the topology runs the fragment runtime (as
// opposed to the fused legacy loop). A zero-value Topology (Fused false,
// Learners 0) is fused: callers opt into the fragment runtime by naming a
// replica count, e.g. Topology{Learners: 1} or ReplicatedTopology(n).
func (t Topology) fragmented() bool {
	return !t.Fused && t.Learners >= 1
}

// normalized fills defaults and validates the topology against the
// deployment width.
func (t Topology) normalized(machines int) (Topology, error) {
	if t.Learners < 1 {
		t.Learners = 1
	}
	if t.Fused && t.Learners > 1 {
		return t, fmt.Errorf("core: fused topology cannot replicate the learn fragment (%d learners)", t.Learners)
	}
	if t.LearnMachines == nil {
		t.LearnMachines = make([]int, t.Learners)
	}
	if len(t.LearnMachines) != t.Learners {
		return t, fmt.Errorf("core: topology places %d learn fragments but replicates %d",
			len(t.LearnMachines), t.Learners)
	}
	place := func(what string, m int) error {
		if m < 0 || m >= machines {
			return fmt.Errorf("core: topology places the %s fragment on machine %d of %d", what, m, machines)
		}
		return nil
	}
	if err := place("sample", t.SampleMachine); err != nil {
		return t, err
	}
	if err := place("broadcast", t.BroadcastMachine); err != nil {
		return t, err
	}
	for _, m := range t.LearnMachines {
		if err := place("learn", m); err != nil {
			return t, err
		}
	}
	if t.MaxStaleness < 0 {
		t.MaxStaleness = StalenessUnbounded
	}
	if t.SyncEvery < 1 {
		t.SyncEvery = 1
	}
	return t, nil
}
