package core_test

import (
	"testing"
	"time"

	"xingtian/internal/core"
)

// TestControllerCollectsStats verifies the §3.2.2 statistics pipeline:
// explorers emit stats messages through the channel and the center
// controller's collector stores the latest per node.
func TestControllerCollectsStats(t *testing.T) {
	algF, agF := quickDQNFactories(t)
	s, err := core.NewSession(core.Config{
		NumExplorers: 2,
		RolloutLen:   50,
		MaxSteps:     1000,
		MaxDuration:  30 * time.Second,
	}, algF, agF, 12)
	if err != nil {
		t.Fatalf("NewSession: %v", err)
	}
	s.Start()
	s.Wait()

	var got map[string]struct{ steps int64 }
	collect := func() bool {
		stats := s.ControllerStats()
		got = map[string]struct{ steps int64 }{}
		for node, st := range stats {
			got[node] = struct{ steps int64 }{st.StepsGenerated}
		}
		return len(got) >= 2
	}
	waitUntil(t, 2*time.Second, "stats from both nodes", collect)
	s.Stop()
	if err := s.Err(); err != nil {
		t.Fatalf("session error: %v", err)
	}
	if len(got) < 2 {
		t.Fatalf("controller collected stats from %d nodes, want 2: %v", len(got), got)
	}
	for node, st := range got {
		if st.steps == 0 {
			t.Fatalf("node %s reported 0 generated steps", node)
		}
	}
}
