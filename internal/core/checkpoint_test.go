package core_test

import (
	"path/filepath"
	"testing"
	"time"

	"xingtian/internal/checkpoint"
	"xingtian/internal/core"
)

func TestLearnerCheckpoints(t *testing.T) {
	path := filepath.Join(t.TempDir(), "learner.ckpt")
	algF, agF := quickDQNFactories(t)
	rep, err := core.Run(core.Config{
		NumExplorers:    1,
		RolloutLen:      50,
		MaxSteps:        1000,
		MaxDuration:     30 * time.Second,
		CheckpointPath:  path,
		CheckpointEvery: 10,
	}, algF, agF, 9)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.TrainIters < 10 {
		t.Fatalf("TrainIters = %d, want >= 10 for a checkpoint", rep.TrainIters)
	}
	st, err := checkpoint.Load(path)
	if err != nil {
		t.Fatalf("Load checkpoint: %v", err)
	}
	if len(st.Weights) == 0 {
		t.Fatal("checkpoint has no weights")
	}

	// Restore into a fresh learner: the weights must fit the architecture.
	alg, err := algF(99)
	if err != nil {
		t.Fatal(err)
	}
	type loader interface{ LoadWeights([]float32) error }
	ld, ok := alg.(loader)
	if !ok {
		t.Fatal("DQN does not implement LoadWeights")
	}
	if err := ld.LoadWeights(st.Weights); err != nil {
		t.Fatalf("restore after failure: %v", err)
	}
}

// TestSessionResumeRestoresVersion runs a checkpointing session with
// rotation, then resumes a fresh session from the newest member and proves
// the restored learner continues the weights version sequence instead of
// restarting from zero.
func TestSessionResumeRestoresVersion(t *testing.T) {
	path := filepath.Join(t.TempDir(), "model.ckpt")
	algF, agF := quickDQNFactories(t)
	cfg := core.Config{
		NumExplorers:    1,
		RolloutLen:      50,
		MaxSteps:        1000,
		MaxDuration:     30 * time.Second,
		CheckpointPath:  path,
		CheckpointEvery: 10,
		CheckpointKeep:  2,
	}
	if _, err := core.Run(cfg, algF, agF, 9); err != nil {
		t.Fatalf("first Run: %v", err)
	}
	st, err := checkpoint.LoadLatest(path)
	if err != nil {
		t.Fatalf("LoadLatest after rotating run: %v", err)
	}
	if st.Version <= 0 {
		t.Fatalf("checkpoint version = %d, want > 0", st.Version)
	}

	cfg.Resume = true
	s, err := core.NewSession(cfg, algF, agF, 10)
	if err != nil {
		t.Fatalf("NewSession resume: %v", err)
	}
	w := s.Learner().Algorithm().Weights()
	s.Stop()
	if w.Version != st.Version {
		t.Fatalf("resumed weights version = %d, want checkpoint's %d", w.Version, st.Version)
	}
	if len(w.Data) != len(st.Weights) {
		t.Fatalf("resumed weights len = %d, want %d", len(w.Data), len(st.Weights))
	}
}

// TestSessionResumeFreshStart proves Resume with no checkpoint on disk is a
// clean fresh start, not an error.
func TestSessionResumeFreshStart(t *testing.T) {
	algF, agF := quickDQNFactories(t)
	s, err := core.NewSession(core.Config{
		NumExplorers:   1,
		RolloutLen:     50,
		MaxSteps:       100,
		CheckpointPath: filepath.Join(t.TempDir(), "model.ckpt"),
		Resume:         true,
	}, algF, agF, 3)
	if err != nil {
		t.Fatalf("NewSession with nothing to resume: %v", err)
	}
	s.Stop()
}
