package core_test

import (
	"path/filepath"
	"testing"
	"time"

	"xingtian/internal/checkpoint"
	"xingtian/internal/core"
)

func TestLearnerCheckpoints(t *testing.T) {
	path := filepath.Join(t.TempDir(), "learner.ckpt")
	algF, agF := quickDQNFactories(t)
	rep, err := core.Run(core.Config{
		NumExplorers:    1,
		RolloutLen:      50,
		MaxSteps:        1000,
		MaxDuration:     30 * time.Second,
		CheckpointPath:  path,
		CheckpointEvery: 10,
	}, algF, agF, 9)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.TrainIters < 10 {
		t.Fatalf("TrainIters = %d, want >= 10 for a checkpoint", rep.TrainIters)
	}
	st, err := checkpoint.Load(path)
	if err != nil {
		t.Fatalf("Load checkpoint: %v", err)
	}
	if len(st.Weights) == 0 {
		t.Fatal("checkpoint has no weights")
	}

	// Restore into a fresh learner: the weights must fit the architecture.
	alg, err := algF(99)
	if err != nil {
		t.Fatal(err)
	}
	type loader interface{ LoadWeights([]float32) error }
	ld, ok := alg.(loader)
	if !ok {
		t.Fatal("DQN does not implement LoadWeights")
	}
	if err := ld.LoadWeights(st.Weights); err != nil {
		t.Fatalf("restore after failure: %v", err)
	}
}
