package core

import (
	"fmt"
	"io"
	"sync"
	"time"

	"xingtian/internal/broker"
	"xingtian/internal/message"
	"xingtian/internal/netsim"
	"xingtian/internal/serialize"
	"xingtian/internal/stats"
)

// Config describes one XingTian deployment, mirroring the paper's
// configuration file: which machines exist, where the learner lives, how
// many explorers run, and when training stops.
type Config struct {
	// NumExplorers is the total explorer count across all machines.
	NumExplorers int
	// RolloutLen is the number of steps per rollout message.
	RolloutLen int
	// MaxSteps stops the run after the learner consumes this many steps.
	MaxSteps int64
	// MaxDuration stops the run on wall time regardless of progress
	// (0 = no limit).
	MaxDuration time.Duration
	// Machines is the deployment width; the learner runs on machine 0 and
	// explorers are assigned round-robin. Values < 1 mean a single machine.
	Machines int
	// Compress enables the 1 MB-threshold LZ4 compression of the paper.
	Compress bool
	// PlaneNsPerKB emulates a slower serialization plane
	// (serialize.Compressor.PackNsPerKB); 0 uses the raw Go codec.
	PlaneNsPerKB int
	// Net overrides the simulated network (zero value = paper defaults).
	Net netsim.Config
	// SeriesBucket sets the throughput series resolution (default 1s).
	SeriesBucket time.Duration
	// TargetReturn stops the run once the mean episode return across
	// explorers reaches this value (0 = disabled).
	TargetReturn float64
	// CheckpointPath, when set, periodically saves the learner's DNN
	// parameters (every CheckpointEvery training sessions; default 100).
	CheckpointPath  string
	CheckpointEvery int64
	// MaxInflight bounds un-acknowledged rollout fragments per explorer
	// (0 = DefaultMaxInflight; < 0 disables flow control).
	MaxInflight int
	// MetricsEvery, when > 0 with MetricsWriter set, logs a channel-health
	// summary line for every broker at this interval while the run waits.
	MetricsEvery time.Duration
	// MetricsWriter receives the periodic channel-health summaries.
	MetricsWriter io.Writer
}

// Report summarizes a completed run — the measurements behind Figs. 6–11.
type Report struct {
	// StepsConsumed is the learner's total (throughput numerator).
	StepsConsumed int64
	// TrainIters is the number of training sessions.
	TrainIters int64
	// Duration is the measured wall time.
	Duration time.Duration
	// Throughput is StepsConsumed per second.
	Throughput float64
	// ThroughputSeries is the bucketed steps/s timeline.
	ThroughputSeries []float64
	// MeanWait is the trainer's average block time waiting for rollouts.
	MeanWait time.Duration
	// WaitCDF is the empirical CDF of those waits (Fig. 8(c)).
	WaitCDF []stats.CDFPoint
	// MeanTransmission is the average rollout creation→delivery latency.
	MeanTransmission time.Duration
	// Episodes and MeanReturn aggregate explorer episode statistics.
	Episodes   int64
	MeanReturn float64
	// StepsGenerated is the total steps produced by explorers.
	StepsGenerated int64
	// Channel is the final channel-health snapshot of every broker, taken
	// after shutdown: cumulative traffic/drop counters plus the leak check
	// (Channel.TotalLeaked() must be 0 in a refcount-clean run).
	Channel broker.ClusterHealth
}

// Session is a running XingTian deployment under a center controller.
type Session struct {
	cfg       Config
	cluster   *broker.Cluster
	learner   *Learner
	explorers []*Explorer
	ctrlPort  *broker.Port
	start     time.Time

	statsMu   sync.Mutex
	nodeStats map[string]*message.StatsPayload

	wg sync.WaitGroup
}

// NewSession builds the full deployment: brokers on every machine, the
// learner on machine 0, and explorers spread round-robin — the structure of
// Fig. 2(b), with the learner's machine as the data-transmission center.
func NewSession(cfg Config, algF AlgorithmFactory, agF AgentFactory, seed int64) (*Session, error) {
	if cfg.NumExplorers < 1 {
		cfg.NumExplorers = 1
	}
	if cfg.Machines < 1 {
		cfg.Machines = 1
	}
	comp := serialize.Compressor{}
	if cfg.Compress {
		comp = serialize.NewCompressor()
	}
	comp.PackNsPerKB = cfg.PlaneNsPerKB
	cluster := broker.NewCluster(netsim.New(cfg.Net))
	for m := 0; m < cfg.Machines; m++ {
		if _, err := cluster.AddBroker(m, comp); err != nil {
			cluster.Stop()
			return nil, err
		}
	}

	s := &Session{cfg: cfg, cluster: cluster}

	alg, err := algF(seed)
	if err != nil {
		cluster.Stop()
		return nil, fmt.Errorf("core: build algorithm: %w", err)
	}
	learnerPort, err := cluster.Register(0, LearnerName)
	if err != nil {
		cluster.Stop()
		return nil, err
	}
	ids := make([]int32, cfg.NumExplorers)
	for i := range ids {
		ids[i] = int32(i)
	}
	s.learner = NewLearner(alg, learnerPort, LearnerConfig{
		Explorers:       ids,
		MaxSteps:        cfg.MaxSteps,
		SeriesBucket:    cfg.SeriesBucket,
		CheckpointPath:  cfg.CheckpointPath,
		CheckpointEvery: cfg.CheckpointEvery,
	})

	ctrlPort, err := cluster.Register(0, ControllerName)
	if err != nil {
		cluster.Stop()
		return nil, err
	}
	s.ctrlPort = ctrlPort
	s.nodeStats = make(map[string]*message.StatsPayload)

	for i := 0; i < cfg.NumExplorers; i++ {
		machine := i % cfg.Machines
		agent, err := agF(int32(i), seed+int64(i)+1)
		if err != nil {
			cluster.Stop()
			return nil, fmt.Errorf("core: build agent %d: %w", i, err)
		}
		port, err := cluster.Register(machine, ExplorerName(int32(i)))
		if err != nil {
			cluster.Stop()
			return nil, err
		}
		ex := NewExplorer(int32(i), agent, port, cfg.RolloutLen)
		if cfg.MaxInflight != 0 {
			ex.SetMaxInflight(cfg.MaxInflight)
		}
		s.explorers = append(s.explorers, ex)
	}
	return s, nil
}

// Start launches every process and seeds explorers with the learner's
// initial weights so all behavior policies begin in sync. The center
// controller's collector thread starts here too, receiving the periodic
// statistics messages workhorse threads emit.
func (s *Session) Start() {
	s.start = time.Now()
	s.wg.Add(1)
	go s.collectStats()
	s.learner.Start()
	for _, e := range s.explorers {
		e.Start()
	}
	s.learner.broadcastWeights(nil)
}

// collectStats is the center controller's receive loop.
func (s *Session) collectStats() {
	defer s.wg.Done()
	for {
		m, err := s.ctrlPort.Recv()
		if err != nil {
			return // broker stopped
		}
		if stats, ok := m.Body.(*message.StatsPayload); ok {
			s.statsMu.Lock()
			s.nodeStats[stats.Node] = stats
			s.statsMu.Unlock()
		}
	}
}

// ControllerStats snapshots the latest statistics message per node, as
// collected by the center controller.
func (s *Session) ControllerStats() map[string]message.StatsPayload {
	s.statsMu.Lock()
	defer s.statsMu.Unlock()
	out := make(map[string]message.StatsPayload, len(s.nodeStats))
	for k, v := range s.nodeStats {
		out[k] = *v
	}
	return out
}

// Wait blocks until the learner reaches its goal, the optional wall-clock
// limit expires, or the optional target return is reached.
func (s *Session) Wait() {
	var timeout <-chan time.Time
	if s.cfg.MaxDuration > 0 {
		t := time.NewTimer(s.cfg.MaxDuration)
		defer t.Stop()
		timeout = t.C
	}
	ticker := time.NewTicker(50 * time.Millisecond)
	defer ticker.Stop()
	lastMetrics := time.Now()
	for {
		select {
		case <-s.learner.Done():
			return
		case <-timeout:
			return
		case <-ticker.C:
			if s.cfg.MetricsEvery > 0 && s.cfg.MetricsWriter != nil &&
				time.Since(lastMetrics) >= s.cfg.MetricsEvery {
				lastMetrics = time.Now()
				fmt.Fprintf(s.cfg.MetricsWriter, "channel: %s\n", s.cluster.Health().Summary())
			}
			if s.cfg.TargetReturn > 0 {
				_, mean := s.aggregateEpisodes()
				if mean >= s.cfg.TargetReturn {
					return
				}
			}
		}
	}
}

func (s *Session) aggregateEpisodes() (int64, float64) {
	var episodes int64
	var weighted float64
	for _, e := range s.explorers {
		n, mean := e.EpisodeStats()
		episodes += n
		weighted += mean * float64(n)
	}
	if episodes == 0 {
		return 0, 0
	}
	return episodes, weighted / float64(episodes)
}

// Stop shuts the deployment down: a shutdown command is broadcast to every
// process (the center controller's role in the paper), then brokers close
// and all threads are joined.
func (s *Session) Stop() *Report {
	duration := time.Since(s.start)

	// Broadcast shutdown like the center controller.
	dst := make([]string, 0, len(s.explorers)+1)
	for _, e := range s.explorers {
		dst = append(dst, ExplorerName(e.id))
	}
	dst = append(dst, LearnerName)
	_ = s.ctrlPort.Send(message.New(message.TypeControl, ControllerName, dst,
		&message.ControlPayload{Kind: message.ControlShutdown}))

	s.learner.Stop()
	for _, e := range s.explorers {
		e.Stop()
	}
	s.cluster.Stop() // closes ID queues, unblocking receiver threads
	s.learner.Join()
	for _, e := range s.explorers {
		e.Join()
	}
	s.wg.Wait() // the controller's collector thread

	episodes, meanReturn := s.aggregateEpisodes()
	var generated int64
	for _, e := range s.explorers {
		generated += e.StepsGenerated()
	}
	steps := s.learner.StepsConsumed()
	rep := &Report{
		StepsConsumed:    steps,
		TrainIters:       s.learner.TrainIters(),
		Duration:         duration,
		Throughput:       float64(steps) / duration.Seconds(),
		ThroughputSeries: s.learner.Series.PerSecond(),
		MeanWait:         s.learner.WaitHist.Mean(),
		WaitCDF:          s.learner.WaitHist.CDF(),
		MeanTransmission: s.learner.TransHist.Mean(),
		Episodes:         episodes,
		MeanReturn:       meanReturn,
		StepsGenerated:   generated,
		Channel:          s.cluster.Health(),
	}
	return rep
}

// ChannelHealth snapshots live channel metrics for every broker (usable
// while the session runs; Report.Channel holds the final snapshot).
func (s *Session) ChannelHealth() broker.ClusterHealth { return s.cluster.Health() }

// Learner exposes the learner for inspection in tests and experiments.
func (s *Session) Learner() *Learner { return s.learner }

// Err returns the first process error observed, if any.
func (s *Session) Err() error {
	if err := s.learner.Err(); err != nil {
		return err
	}
	for _, e := range s.explorers {
		if err := e.Err(); err != nil {
			return err
		}
	}
	return nil
}

// Run executes a full session: build, start, wait, stop.
func Run(cfg Config, algF AlgorithmFactory, agF AgentFactory, seed int64) (*Report, error) {
	s, err := NewSession(cfg, algF, agF, seed)
	if err != nil {
		return nil, err
	}
	s.Start()
	s.Wait()
	rep := s.Stop()
	if err := s.Err(); err != nil {
		return rep, err
	}
	return rep, nil
}
