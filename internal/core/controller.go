package core

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"xingtian/internal/broker"
	"xingtian/internal/checkpoint"
	"xingtian/internal/message"
	"xingtian/internal/netsim"
	"xingtian/internal/serialize"
	"xingtian/internal/stats"
	"xingtian/internal/weightplane"
)

// Transport is the deployment substrate a Session runs over: a set of
// per-machine brokers plus the cross-machine forwarding between them.
// broker.Cluster (netsim) and fabric.Grid (real TCP) both satisfy it. The
// Session takes ownership of the transport and stops it during Stop.
type Transport interface {
	// Register attaches a named client to a machine's broker.
	Register(machineID int, name string) (*broker.Port, error)
	// Unregister detaches a named client, closing its ID queue and
	// releasing queued refs, so the name can be registered again.
	Unregister(machineID int, name string)
	// Broker exposes a machine's broker (nil if unknown).
	Broker(machineID int) *broker.Broker
	// Health snapshots channel health across the deployment.
	Health() broker.ClusterHealth
	// Stop shuts every broker (and any wire underneath) down.
	Stop()
}

// Config describes one XingTian deployment, mirroring the paper's
// configuration file: which machines exist, where the learner lives, how
// many explorers run, and when training stops.
type Config struct {
	// NumExplorers is the total explorer count across all machines.
	NumExplorers int
	// RolloutLen is the number of steps per rollout message.
	RolloutLen int
	// MaxSteps stops the run after the learner consumes this many steps.
	MaxSteps int64
	// MaxDuration stops the run on wall time regardless of progress
	// (0 = no limit).
	MaxDuration time.Duration
	// Machines is the deployment width; the learner runs on machine 0 and
	// explorers are assigned round-robin. Values < 1 mean a single machine.
	Machines int
	// Compress enables the 1 MB-threshold LZ4 compression of the paper.
	Compress bool
	// PlaneNsPerKB emulates a slower serialization plane
	// (serialize.Compressor.PackNsPerKB); 0 uses the raw Go codec.
	PlaneNsPerKB int
	// Net overrides the simulated network (zero value = paper defaults).
	// Ignored when Transport is set.
	Net netsim.Config
	// Transport overrides the deployment substrate. Nil builds the default
	// netsim-backed broker.Cluster from Machines/Net; a fabric.Grid here
	// runs the same session over real TCP. The session stops the transport.
	Transport Transport
	// SeriesBucket sets the throughput series resolution (default 1s).
	SeriesBucket time.Duration
	// TargetReturn stops the run once the mean episode return across
	// explorers reaches this value (0 = disabled).
	TargetReturn float64
	// CheckpointPath, when set, periodically saves the learner's DNN
	// parameters (every CheckpointEvery training sessions; default 100).
	CheckpointPath  string
	CheckpointEvery int64
	// CheckpointKeep > 0 switches saving to a rotation set (path.1, path.2,
	// …) retaining the last CheckpointKeep checkpoints; 0 keeps the single
	// overwritten file.
	CheckpointKeep int
	// Resume restores the newest readable checkpoint at CheckpointPath
	// before training starts (no-op when none exists). The restored weights
	// version seeds the learner's broadcasts, so explorers continue from
	// the pre-crash sequence.
	Resume bool
	// StoreBudget bounds each broker's object store (bytes; 0 = unbounded)
	// and ShedQueueDepth caps destination queues by shedding the oldest
	// droppable messages — the overload-protection knobs of broker.Config.
	// Both apply only to the default netsim transport; a caller-supplied
	// Transport configures its own brokers.
	StoreBudget    int64
	ShedQueueDepth int
	// MaxInflight bounds un-acknowledged rollout fragments per explorer
	// (0 = DefaultMaxInflight; < 0 disables flow control).
	MaxInflight int
	// WeightDelta enables the communication-efficient weight plane: the
	// learner broadcasts sparse deltas against the version each explorer
	// last acked, with dense-snapshot fallback for stale or NACKed peers.
	WeightDelta bool
	// WeightQuantBits quantizes delta steps (8 = int8; 0 = exact float32).
	WeightQuantBits int
	// WeightSkipFactor scales the adaptive skip threshold: updates whose
	// relative norm falls below WeightSkipFactor × EMA become pure version
	// bumps (0 disables skipping).
	WeightSkipFactor float64
	// WeightTreeFanout relays weight-class broadcasts wider than this
	// through a depth-2 machine tree instead of a star (0 keeps the star).
	// Applies only to the default netsim transport; a caller-supplied
	// Transport configures its own brokers.
	WeightTreeFanout int
	// MaxExplorerRestarts is the per-explorer restart budget. 0 keeps the
	// historical fail-fast semantics: an explorer error surfaces in Err()
	// and nothing restarts. With a positive budget the session supervises
	// every explorer, tears a failed one down cleanly (ports unregistered,
	// queued refs released), and re-creates its agent from the factory.
	// The learner is never restarted: a learner error always fails fast.
	MaxExplorerRestarts int
	// RestartBackoff is the delay before the first restart of a slot;
	// it doubles per consecutive restart (default 10ms).
	RestartBackoff time.Duration
	// Topology selects how the training loop's dataflow fragments are
	// replicated and placed. The zero value keeps the fused legacy loop
	// (single Learner on machine 0 — the seed's behavior, bit for bit); a
	// fragmented topology (Learners >= 1, Fused false) runs the sample,
	// learn, and broadcast fragments as separate processes per the
	// topology's placement, with the bounded-staleness rule on the
	// sample→learn edge.
	Topology Topology
	// LearnerFailover supervises learn replicas in a fragmented topology
	// with >= 2 replicas (§5i): a replica that errors or misses its
	// heartbeat deadline is quarantined — the sampler re-dispatches its
	// un-acked batches to survivors and the broadcaster recommits the
	// survivor mean — and, while MaxLearnerRestarts lasts, respawned from
	// the latest fragment checkpoint under an exponential backoff. A slot
	// whose budget runs out degrades the run to permanent N-1; when every
	// slot has degraded the session fails. Fused topologies and single
	// replicas keep the historical fail-fast semantics regardless.
	LearnerFailover bool
	// MaxLearnerRestarts is the per-replica respawn budget under
	// LearnerFailover. 0 quarantines without respawning (a failed replica
	// immediately degrades its slot).
	MaxLearnerRestarts int
	// HeartbeatEvery is the replica liveness cadence under LearnerFailover
	// (default 25ms). The broadcast-side detector deadline is four missed
	// beats.
	HeartbeatEvery time.Duration
	// MachineFailover arms machine-level fault domains (§5j): the
	// transport's lease-based membership plane declares a silent machine
	// dead and the session re-places every fragment it hosted onto
	// survivors — learn replicas through the §5i respawn path, the sampler
	// and broadcaster through warm standbys rebuilt from surviving state,
	// the broker ack ledger, and fragment checkpoints, explorer slots
	// directly. Requires a Transport implementing MachineFailoverTransport
	// (fabric.Grid) over >= 2 machines and a fragmented topology with >= 2
	// replicas. The coordinator (machine 0) hosts the detector; its own
	// death stays terminal. A zero MaxLearnerRestarts is raised to 1 —
	// re-placing a learn replica consumes respawn budget.
	MachineFailover bool
	// LeaseEvery is the membership lease renewal period under
	// MachineFailover (0 = the transport default, 25ms for fabric.Grid). A
	// machine silent for four consecutive renewals with a corroborating
	// downed link — or eight regardless of link state — is declared dead.
	LeaseEvery time.Duration
	// MetricsEvery, when > 0 with MetricsWriter set, logs a channel-health
	// summary line for every broker at this interval while the run waits.
	MetricsEvery time.Duration
	// MetricsWriter receives the periodic channel-health summaries.
	MetricsWriter io.Writer
}

// Report summarizes a completed run — the measurements behind Figs. 6–11.
type Report struct {
	// StepsConsumed is the learner's total (throughput numerator).
	StepsConsumed int64
	// TrainIters is the number of training sessions.
	TrainIters int64
	// Duration is the measured wall time.
	Duration time.Duration
	// Throughput is StepsConsumed per second.
	Throughput float64
	// ThroughputSeries is the bucketed steps/s timeline.
	ThroughputSeries []float64
	// MeanWait is the trainer's average block time waiting for rollouts.
	MeanWait time.Duration
	// WaitCDF is the empirical CDF of those waits (Fig. 8(c)).
	WaitCDF []stats.CDFPoint
	// MeanTransmission is the average rollout creation→delivery latency.
	MeanTransmission time.Duration
	// Episodes and MeanReturn aggregate explorer episode statistics.
	Episodes   int64
	MeanReturn float64
	// StepsGenerated is the total steps produced by explorers (including
	// restarted-away incarnations).
	StepsGenerated int64
	// ExplorerRestarts counts explorer restarts performed by supervision.
	ExplorerRestarts int64
	// RestartBudgetExhausted counts explorer slots whose restart budget
	// ran out (their last error surfaces through Err()).
	RestartBudgetExhausted int64
	// RestartLastError is the most recently recorded explorer failure that
	// supervision handled ("" if none).
	RestartLastError string
	// Channel is the final channel-health snapshot of every broker, taken
	// after shutdown: cumulative traffic/drop counters plus the leak check
	// (Channel.TotalLeaked() must be 0 in a refcount-clean run).
	Channel broker.ClusterHealth
	// Fragments carries the fragment-runtime measurements (nil for fused
	// runs): staleness-filter drops, per-replica consumption, aggregation
	// rounds, and the broadcast fragment's weight-plane counters.
	Fragments *FragmentReport
}

// explorerSlot is one supervised explorer position: a stable ID/machine/name
// whose *Explorer incarnation may be replaced after a failure.
type explorerSlot struct {
	id int32

	// replaced is nudged (capacity 1) when machine failover installs a
	// replacement incarnation, waking a supervisor blocked on the retiree.
	replaced chan struct{}
	// rebuildMu serializes whole teardown-and-rebuild critical sections
	// between the slot supervisor and the machine-failover engine, so two
	// actors never race on the slot's port registration.
	rebuildMu sync.Mutex

	mu              sync.Mutex
	machine         int // current home; machine failover may move the slot
	ex              *Explorer
	restarts        int64
	moves           int32 // machine-failover re-placements (takeover epochs)
	lastErr         error // most recent failure supervision observed
	terminalErr     error // budget exhaustion or rebuild failure; surfaces in Err
	budgetExhausted bool
	// Counters of retired incarnations, folded in when a replacement is
	// installed (never at teardown, so live sums don't double-count).
	priorSteps     int64
	priorEpisodes  int64
	priorReturnSum float64
}

// home returns the slot's current machine.
func (sl *explorerSlot) home() int {
	sl.mu.Lock()
	defer sl.mu.Unlock()
	return sl.machine
}

// current returns the slot's live explorer.
func (sl *explorerSlot) current() *Explorer {
	sl.mu.Lock()
	defer sl.mu.Unlock()
	return sl.ex
}

// Session is a running XingTian deployment under a center controller.
type Session struct {
	cfg       Config
	transport Transport
	learner   *Learner     // fused topology only
	frags     *fragRuntime // fragmented topology only
	slots     []*explorerSlot
	ctrlPort  *broker.Port
	agF       AgentFactory
	algF      AlgorithmFactory // retained for learn-replica respawns
	seed      int64
	start     time.Time

	shutdown chan struct{}
	superWG  sync.WaitGroup

	// Machine failover (§5j): mfTransport is the membership-capable
	// transport when armed, mfVerdicts carries death verdicts from the
	// membership detector to the re-placement engine, and mfDead (under
	// mfMu) fences duplicates and steers placement away from dead homes.
	mfTransport MachineFailoverTransport
	mfVerdicts  chan mfVerdict
	mfMu        sync.Mutex
	mfDead      map[int]bool

	statsMu   sync.Mutex
	nodeStats map[string]*message.StatsPayload
	// takeoverByFrag counts ControlTakeover announcements per fragment name
	// and machineDeadSeen the ControlMachineDead verdicts, as observed on
	// the controller's stats channel.
	takeoverByFrag  map[string]int64
	machineDeadSeen int64

	stopOnce sync.Once
	report   *Report

	wg sync.WaitGroup
}

// NewSession builds the full deployment: brokers on every machine, the
// learner on machine 0, and explorers spread round-robin — the structure of
// Fig. 2(b), with the learner's machine as the data-transmission center.
func NewSession(cfg Config, algF AlgorithmFactory, agF AgentFactory, seed int64) (*Session, error) {
	if cfg.NumExplorers < 1 {
		cfg.NumExplorers = 1
	}
	if cfg.Machines < 1 {
		cfg.Machines = 1
	}
	if cfg.MachineFailover && cfg.MaxLearnerRestarts < 1 {
		// A learn replica on a condemned machine is re-placed through the
		// §5i respawn path, which consumes restart budget; machine failover
		// is meaningless without at least one respawn per slot.
		cfg.MaxLearnerRestarts = 1
	}
	transport := cfg.Transport
	if transport == nil {
		comp := serialize.Compressor{}
		if cfg.Compress {
			comp = serialize.NewCompressor()
		}
		comp.PackNsPerKB = cfg.PlaneNsPerKB
		cluster := broker.NewCluster(netsim.New(cfg.Net))
		for m := 0; m < cfg.Machines; m++ {
			bcfg := broker.Config{
				Compressor:     comp,
				StoreBudget:    cfg.StoreBudget,
				ShedQueueDepth: cfg.ShedQueueDepth,
				RelayFanout:    cfg.WeightTreeFanout,
			}
			if _, err := cluster.AddBrokerCfg(m, bcfg); err != nil {
				cluster.Stop()
				return nil, err
			}
		}
		transport = cluster
	}

	s := &Session{
		cfg:       cfg,
		transport: transport,
		agF:       agF,
		algF:      algF,
		seed:      seed,
		shutdown:  make(chan struct{}),
	}

	if cfg.Topology.fragmented() {
		topo, err := cfg.Topology.normalized(cfg.Machines)
		if err != nil {
			transport.Stop()
			return nil, err
		}
		if err := s.buildFragments(topo, algF); err != nil {
			transport.Stop()
			return nil, err
		}
	} else {
		alg, err := algF(seed)
		if err != nil {
			transport.Stop()
			return nil, fmt.Errorf("core: build algorithm: %w", err)
		}
		if cfg.Resume && cfg.CheckpointPath != "" {
			if err := restoreAlgorithm(alg, cfg.CheckpointPath); err != nil {
				transport.Stop()
				return nil, err
			}
		}
		learnerPort, err := transport.Register(0, LearnerName)
		if err != nil {
			transport.Stop()
			return nil, err
		}
		ids := make([]int32, cfg.NumExplorers)
		for i := range ids {
			ids[i] = int32(i)
		}
		s.learner = NewLearner(alg, learnerPort, LearnerConfig{
			Explorers:       ids,
			MaxSteps:        cfg.MaxSteps,
			SeriesBucket:    cfg.SeriesBucket,
			CheckpointPath:  cfg.CheckpointPath,
			CheckpointEvery: cfg.CheckpointEvery,
			CheckpointKeep:  cfg.CheckpointKeep,
			WeightPlane: weightplane.Config{
				Enabled:    cfg.WeightDelta,
				QuantBits:  cfg.WeightQuantBits,
				SkipFactor: cfg.WeightSkipFactor,
			},
		})
	}

	ctrlPort, err := transport.Register(0, ControllerName)
	if err != nil {
		transport.Stop()
		return nil, err
	}
	s.ctrlPort = ctrlPort
	s.nodeStats = make(map[string]*message.StatsPayload)
	s.takeoverByFrag = make(map[string]int64)

	for i := 0; i < cfg.NumExplorers; i++ {
		machine := i % cfg.Machines
		ex, err := s.buildExplorer(int32(i), machine)
		if err != nil {
			transport.Stop()
			return nil, err
		}
		s.slots = append(s.slots, &explorerSlot{
			id:       int32(i),
			machine:  machine,
			ex:       ex,
			replaced: make(chan struct{}, 1),
		})
	}

	if cfg.MachineFailover {
		if err := s.armMachineFailover(); err != nil {
			transport.Stop()
			return nil, err
		}
	}
	return s, nil
}

// armMachineFailover validates the deployment against the §5j requirements
// and starts the transport's membership plane; verdicts are enqueued for
// the re-placement engine (started in Start).
func (s *Session) armMachineFailover() error {
	mft, ok := s.transport.(MachineFailoverTransport)
	if !ok {
		return fmt.Errorf("core: MachineFailover requires a membership-capable transport (fabric.Grid); got %T", s.transport)
	}
	if s.frags == nil {
		return fmt.Errorf("core: MachineFailover requires a fragmented topology (Topology.Learners >= 2)")
	}
	if !s.frags.failover {
		return fmt.Errorf("core: MachineFailover requires >= 2 learn replicas, got %d", s.frags.topo.Learners)
	}
	if mft.Machines() < 2 {
		return fmt.Errorf("core: MachineFailover needs at least 2 machines, got %d", mft.Machines())
	}
	s.mfTransport = mft
	s.mfDead = make(map[int]bool)
	// One verdict per machine fits the buffer, so the non-blocking enqueue
	// below can never drop a verdict.
	s.mfVerdicts = make(chan mfVerdict, mft.Machines())
	onDead := func(machine, epoch int) {
		select {
		case s.mfVerdicts <- mfVerdict{machine: machine, epoch: epoch}:
		default:
		}
	}
	if err := mft.StartMembership(coordinatorMachine, s.cfg.LeaseEvery, leaseMisses, onDead); err != nil {
		return fmt.Errorf("core: start membership plane: %w", err)
	}
	return nil
}

// restoreAlgorithm reinstates the newest readable checkpoint at path into
// the algorithm before training starts. A missing checkpoint is a fresh
// start, not an error; a checkpoint that exists but cannot be applied is.
func restoreAlgorithm(alg Algorithm, path string) error {
	st, err := checkpoint.LoadLatest(path)
	if errors.Is(err, checkpoint.ErrNoCheckpoint) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("core: resume: %w", err)
	}
	switch a := alg.(type) {
	case WeightsRestorer:
		err = a.RestoreWeights(st.Version, st.Weights)
	case interface{ LoadWeights([]float32) error }:
		err = a.LoadWeights(st.Weights)
	default:
		return fmt.Errorf("core: resume: algorithm %s cannot restore weights", alg.Name())
	}
	if err != nil {
		return fmt.Errorf("core: resume: %w", err)
	}
	return nil
}

// buildFragments constructs the fragment runtime for a fragmented topology:
// N algorithm replicas from the same factory and seed (identical
// initialization, so the broadcast fragment's first aggregate is exact), a
// sample fragment on its machine, one learn fragment per replica, and the
// broadcast fragment seeded with the shared initial weights — or the
// per-fragment checkpoint set when resuming.
func (s *Session) buildFragments(topo Topology, algF AlgorithmFactory) error {
	algs := make([]Algorithm, topo.Learners)
	for i := range algs {
		alg, err := algF(s.seed)
		if err != nil {
			return fmt.Errorf("core: build algorithm replica %d: %w", i, err)
		}
		algs[i] = alg
	}

	w0 := algs[0].Weights()
	initVersion, initWeights := w0.Version, w0.Data
	if s.cfg.Resume && s.cfg.CheckpointPath != "" {
		states, err := checkpoint.LoadLatestFragments(s.cfg.CheckpointPath)
		switch {
		case errors.Is(err, checkpoint.ErrNoCheckpoint):
			// Fresh start.
		case err != nil:
			return fmt.Errorf("core: resume fragments: %w", err)
		default:
			byName := make(map[string]checkpoint.State, len(states))
			for _, fs := range states {
				byName[fs.Name] = fs.State
			}
			for i, alg := range algs {
				st, ok := byName[LearnName(i)]
				if !ok {
					continue // replica added since the checkpoint: keeps fresh init
				}
				r, okR := alg.(WeightsRestorer)
				if !okR {
					return fmt.Errorf("core: resume fragments: algorithm %s cannot restore weights", alg.Name())
				}
				if err := r.RestoreWeights(st.Version, st.Weights); err != nil {
					return fmt.Errorf("core: resume fragment %s: %w", LearnName(i), err)
				}
			}
			if st, ok := byName[BroadcastName]; ok {
				initVersion, initWeights = st.Version, st.Weights
			}
		}
	}

	// Failover arms only with replicas to fail over to: fused topologies and
	// single replicas keep the historical fail-fast semantics. Machine
	// failover implies replica failover — its learn re-placement rides the
	// same quarantine/respawn path.
	failover := (s.cfg.LearnerFailover || s.cfg.MachineFailover) && topo.Learners >= 2
	hbEvery := s.cfg.HeartbeatEvery
	if hbEvery <= 0 {
		hbEvery = 25 * time.Millisecond
	}

	samplePort, err := s.transport.Register(topo.SampleMachine, SampleName)
	if err != nil {
		return err
	}
	learnNames := make([]string, topo.Learners)
	lslots := make([]*learnSlot, topo.Learners)
	for i := range lslots {
		learnNames[i] = LearnName(i)
		port, err := s.transport.Register(topo.LearnMachines[i], learnNames[i])
		if err != nil {
			return err
		}
		frag := NewLearnFragment(i, algs[i], port, s.cfg.NumExplorers, s.cfg.SeriesBucket)
		if failover {
			frag.SetFailover(0, hbEvery)
		}
		lslots[i] = &learnSlot{
			idx:     i,
			machine: topo.LearnMachines[i],
			suspect: make(chan int32, 1),
			frag:    frag,
		}
	}
	castPort, err := s.transport.Register(topo.BroadcastMachine, BroadcastName)
	if err != nil {
		return err
	}
	explorerNames := make([]string, s.cfg.NumExplorers)
	for i := range explorerNames {
		explorerNames[i] = ExplorerName(int32(i))
	}
	caster := NewBroadcastFragment(castPort, BroadcastConfig{
		Explorers:      explorerNames,
		Learners:       learnNames,
		SyncEvery:      topo.SyncEvery,
		InitialVersion: initVersion,
		InitialWeights: initWeights,
		WeightPlane: weightplane.Config{
			Enabled:    s.cfg.WeightDelta,
			QuantBits:  s.cfg.WeightQuantBits,
			SkipFactor: s.cfg.WeightSkipFactor,
		},
		CheckpointPath:  s.cfg.CheckpointPath,
		CheckpointEvery: s.cfg.CheckpointEvery,
		CheckpointKeep:  s.cfg.CheckpointKeep,
	})
	sampler := NewSampleFragment(samplePort, learnNames, topo.MaxStaleness)
	s.frags = &fragRuntime{
		topo:          topo,
		sampler:       sampler,
		slots:         lslots,
		caster:        caster,
		sampleMachine: topo.SampleMachine,
		castMachine:   topo.BroadcastMachine,
		failover:      failover,
		maxRestarts:   s.cfg.MaxLearnerRestarts,
		hbEvery:       hbEvery,
		maxSteps:      s.cfg.MaxSteps,
		done:          make(chan struct{}),
		stopMon:       make(chan struct{}),
	}
	if failover {
		sampler.SetFailover()
		byName := make(map[string]*learnSlot, len(lslots))
		for _, sl := range lslots {
			byName[LearnName(sl.idx)] = sl
		}
		// Retained on the runtime so a standby broadcaster re-arms the
		// identical deadline detector after a machine takeover.
		s.frags.suspectFn = func(name string, epoch int32) {
			if sl, ok := byName[name]; ok {
				select {
				case sl.suspect <- epoch:
				default:
				}
			}
		}
		caster.SetFailover(heartbeatMisses*hbEvery, s.frags.suspectFn)
	}
	return nil
}

// buildExplorer creates one explorer incarnation: fresh agent from the
// factory, port registered under the slot's canonical name.
func (s *Session) buildExplorer(id int32, machine int) (*Explorer, error) {
	agent, err := s.agF(id, s.seed+int64(id)+1)
	if err != nil {
		return nil, fmt.Errorf("core: build agent %d: %w", id, err)
	}
	port, err := s.transport.Register(machine, ExplorerName(id))
	if err != nil {
		return nil, err
	}
	ex := NewExplorer(id, agent, port, s.cfg.RolloutLen)
	if s.cfg.MaxInflight != 0 {
		ex.SetMaxInflight(s.cfg.MaxInflight)
	}
	if s.frags != nil {
		ex.SetRolloutDst(SampleName)
	}
	return ex, nil
}

// Start launches every process and seeds explorers with the learner's
// initial weights so all behavior policies begin in sync. The center
// controller's collector thread starts here too, receiving the periodic
// statistics messages workhorse threads emit. With a positive restart
// budget a supervisor thread per explorer slot starts as well.
func (s *Session) Start() {
	s.start = time.Now()
	s.wg.Add(1)
	go s.collectStats()
	if s.frags != nil {
		// Fragments first: the broadcast fragment's initial broadcast lands
		// in the explorer ID queues before any explorer starts sampling.
		s.frags.start()
	} else {
		s.learner.Start()
	}
	for _, sl := range s.slots {
		sl.current().Start()
	}
	if s.cfg.MaxExplorerRestarts > 0 {
		for _, sl := range s.slots {
			s.superWG.Add(1)
			go s.supervise(sl)
		}
	}
	if s.frags != nil && s.frags.failover {
		for _, sl := range s.frags.slots {
			s.superWG.Add(1)
			go s.superviseLearn(sl)
		}
	}
	if s.mfTransport != nil {
		s.superWG.Add(1)
		go s.machineFailoverLoop()
	}
	if s.frags == nil {
		s.learner.broadcastWeights(nil)
	}
}

// superviseLearn is the per-slot supervisor of one learn replica: it waits
// for the incarnation to record an error or for the broadcast fragment's
// deadline detector to flag it hung, quarantines it (the sampler shrinks its
// rotation and re-dispatches the un-acked batches; the broadcaster recommits
// the survivor mean), tears the incarnation down without unregistering its
// port, and — while the respawn budget lasts — rebuilds the replica from the
// latest fragment checkpoint at the next incarnation epoch and rejoins it.
// A slot whose budget runs out degrades to permanent N-1; when the last live
// slot degrades, the session fails.
func (s *Session) superviseLearn(sl *learnSlot) {
	defer s.superWG.Done()
	backoff := s.cfg.RestartBackoff
	if backoff <= 0 {
		backoff = 10 * time.Millisecond
	}
	for {
		frag := sl.current()
		var err error
		select {
		case <-s.shutdown:
			return
		case <-frag.Failed():
			err = frag.Err()
		case ep := <-sl.suspect:
			if ep != sl.curEpoch() {
				// Stale verdict: the detector condemned an incarnation that
				// has already been torn down and replaced. The successor is
				// healthy until its own epoch says otherwise.
				continue
			}
			err = fmt.Errorf("core: learn replica %d missed its heartbeat deadline", sl.idx)
		}
		name := LearnName(sl.idx)

		// Quarantine first, so the dataflow reroutes while the incarnation
		// is still being torn down. The replica's port stays registered —
		// in-flight echoes to its name must drain as consumed messages, not
		// privileged drops — and is reused by the next incarnation.
		qm := message.New(message.TypeControl, ControllerName, []string{SampleName, BroadcastName},
			&message.ControlPayload{Kind: message.ControlQuarantine, Peer: name})
		if s.ctrlPort.Send(qm) != nil {
			return // transport torn down under us
		}

		// Tear the incarnation down: Stop closes its receive buffer, then a
		// drain nudge makes a receiver blocked in Recv observe the closure
		// (its Put fails). Waiting on RecvDone before building the
		// replacement guarantees the nudge cannot be consumed by the new
		// incarnation's receiver.
		frag.Stop()
		_ = s.ctrlPort.Send(message.New(message.TypeControl, ControllerName, []string{name},
			&message.ControlPayload{Kind: message.ControlDrain}))
		select {
		case <-s.shutdown:
			return
		case <-frag.RecvDone():
		}
		// The trainer may be wedged inside a training step (the very hang
		// that tripped the detector); reap it in the background so failover
		// latency is not hostage to the stall.
		s.frags.zombieWG.Add(1)
		go func(old *LearnFragment) {
			defer s.frags.zombieWG.Done()
			old.Join()
		}(frag)

		sl.mu.Lock()
		sl.lastErr = err
		exhausted := sl.restarts >= int64(s.cfg.MaxLearnerRestarts)
		if exhausted {
			sl.degraded = true
		}
		sl.mu.Unlock()
		if exhausted {
			s.frags.degraded.Add(1)
			if s.frags.liveReplicas() == 0 {
				sl.mu.Lock()
				sl.terminalErr = fmt.Errorf("core: learn replica %d restart budget (%d) exhausted with no live replica left: %w",
					sl.idx, s.cfg.MaxLearnerRestarts, err)
				sl.mu.Unlock()
			}
			return
		}

		timer := time.NewTimer(backoff)
		select {
		case <-s.shutdown:
			timer.Stop()
			return
		case <-timer.C:
		}
		backoff *= 2

		homeBefore := sl.home()
		next, berr := s.respawnLearn(sl, frag)
		if berr != nil {
			sl.mu.Lock()
			sl.degraded = true
			sl.mu.Unlock()
			s.frags.degraded.Add(1)
			if s.frags.liveReplicas() == 0 {
				sl.mu.Lock()
				sl.terminalErr = fmt.Errorf("core: respawn learn replica %d: %w", sl.idx, berr)
				sl.mu.Unlock()
			}
			return
		}
		sl.mu.Lock()
		sl.restarts++
		sl.epoch++
		epoch := sl.epoch
		// Fold the retired incarnation's progress exactly when it stops being
		// sl.frag: stepsConsumed()/report() read priorSteps + frag's counters,
		// so folding any earlier would double-count the retiree for as long
		// as (or forever, if the slot degrades) it stays installed.
		sl.priorSteps += frag.StepsConsumed()
		sl.priorIters += frag.TrainIters()
		sl.frag = next
		sl.mu.Unlock()
		s.frags.respawns.Add(1)
		// Discard any suspicion verdict still buffered against the retired
		// incarnation, so it cannot occupy the slot's capacity-1 channel when
		// the detector has a genuine verdict on the successor.
		select {
		case <-sl.suspect:
		default:
		}
		next.Start()
		// Rejoin at the new epoch: the sampler re-admits the replica to its
		// rotation and the broadcaster answers with a dense resync echo.
		rm := message.New(message.TypeControl, ControllerName, []string{SampleName, BroadcastName},
			&message.ControlPayload{Kind: message.ControlRejoin, Peer: name})
		rm.Header.Round = epoch
		if s.ctrlPort.Send(rm) != nil {
			return
		}
		if to := sl.home(); to != homeBefore {
			// The respawn re-placed the replica onto a survivor (§5j):
			// record exactly one takeover for the cross-machine move.
			s.announceTakeover(name, to, epoch, false)
		}
	}
}

// respawnLearn builds the next incarnation of a learn slot: a fresh
// algorithm from the retained factory, restored from the replica's state in
// the latest fragment checkpoint set (falling back to the committed
// aggregate's state, then to fresh initialization — the rejoin echo resyncs
// it either way), over the slot's original port. When the slot's home
// machine has been condemned by a membership verdict the port is re-placed
// onto a survivor instead (§5j): the old registration died with its broker.
func (s *Session) respawnLearn(sl *learnSlot, old *LearnFragment) (*LearnFragment, error) {
	alg, err := s.algF(s.seed)
	if err != nil {
		return nil, fmt.Errorf("build algorithm: %w", err)
	}
	port := old.port
	sl.mu.Lock()
	home := sl.machine
	sl.mu.Unlock()
	if s.machineDead(home) {
		name := LearnName(sl.idx)
		s.transport.Unregister(home, name)
		to := s.pickSurvivor()
		if to < 0 {
			return nil, fmt.Errorf("no survivor machine for %s", name)
		}
		p, rerr := s.transport.Register(to, name)
		if rerr != nil {
			return nil, fmt.Errorf("re-place %s on machine %d: %w", name, to, rerr)
		}
		port = p
		sl.mu.Lock()
		sl.machine = to
		sl.mu.Unlock()
	}
	if s.cfg.CheckpointPath != "" {
		states, lerr := checkpoint.LoadLatestFragments(s.cfg.CheckpointPath)
		if lerr == nil {
			byName := make(map[string]checkpoint.State, len(states))
			for _, fs := range states {
				byName[fs.Name] = fs.State
			}
			st, ok := byName[LearnName(sl.idx)]
			if !ok {
				st, ok = byName[BroadcastName]
			}
			if ok {
				if r, okR := alg.(WeightsRestorer); okR {
					if rerr := r.RestoreWeights(st.Version, st.Weights); rerr != nil {
						return nil, fmt.Errorf("restore checkpoint: %w", rerr)
					}
				}
			}
		}
		// An unreadable checkpoint is a fresh start, not a terminal error:
		// the rejoin echo installs the committed aggregate regardless.
	}
	next := NewLearnFragment(sl.idx, alg, port, s.cfg.NumExplorers, s.cfg.SeriesBucket)
	next.observeStaleness = old.observeStaleness
	sl.mu.Lock()
	epoch := sl.epoch + 1
	sl.mu.Unlock()
	next.SetFailover(epoch, s.frags.hbEvery)
	return next, nil
}

// supervise is the per-slot supervisor thread: it waits for the slot's
// explorer to record an error, tears the incarnation down cleanly (stop,
// unregister — which closes the ID queue and releases queued refs — join),
// and, while the restart budget lasts, re-creates the agent from the
// factory after an exponential backoff and restarts the slot under its
// original name. Session shutdown ends supervision on every path.
func (s *Session) supervise(sl *explorerSlot) {
	defer s.superWG.Done()
	backoff := s.cfg.RestartBackoff
	if backoff <= 0 {
		backoff = 10 * time.Millisecond
	}
	for {
		ex := sl.current()
		select {
		case <-s.shutdown:
			return
		case <-sl.replaced:
			// Machine failover installed a replacement; supervise it.
			continue
		case <-ex.Failed():
		}
		err := ex.Err()
		name := ExplorerName(sl.id)

		// The teardown and the rebuild each run under rebuildMu so they are
		// atomic against the machine-failover engine's own re-placement; a
		// current() mismatch inside the critical section means the engine
		// got there first and this incarnation is already torn down.
		sl.rebuildMu.Lock()
		if sl.current() != ex {
			sl.rebuildMu.Unlock()
			continue
		}
		machine := sl.home()
		ex.Stop()
		s.transport.Unregister(machine, name)
		ex.Join()

		sl.mu.Lock()
		sl.lastErr = err
		exhausted := sl.restarts >= int64(s.cfg.MaxExplorerRestarts)
		if exhausted {
			sl.budgetExhausted = true
			sl.terminalErr = fmt.Errorf("core: explorer %d restart budget (%d) exhausted: %w",
				sl.id, s.cfg.MaxExplorerRestarts, err)
		}
		sl.mu.Unlock()
		sl.rebuildMu.Unlock()
		if exhausted {
			return
		}

		timer := time.NewTimer(backoff)
		select {
		case <-s.shutdown:
			timer.Stop()
			return
		case <-timer.C:
		}
		backoff *= 2

		sl.rebuildMu.Lock()
		if sl.current() != ex {
			sl.rebuildMu.Unlock()
			continue
		}
		next, berr := s.buildExplorer(sl.id, sl.home())
		if berr != nil {
			sl.rebuildMu.Unlock()
			if s.mfTransport != nil {
				// The home broker may be dying ahead of its machine-death
				// verdict; the re-placement engine rebuilds the slot on a
				// survivor and nudges replaced.
				select {
				case <-s.shutdown:
					return
				case <-sl.replaced:
					continue
				}
			}
			sl.mu.Lock()
			sl.terminalErr = fmt.Errorf("core: restart explorer %d: %w", sl.id, berr)
			sl.mu.Unlock()
			return
		}
		sl.mu.Lock()
		sl.priorSteps += ex.StepsGenerated()
		n, mean := ex.EpisodeStats()
		sl.priorEpisodes += n
		sl.priorReturnSum += mean * float64(n)
		sl.ex = next
		sl.restarts++
		sl.mu.Unlock()
		next.Start()
		sl.rebuildMu.Unlock()
	}
}

// collectStats is the center controller's receive loop: periodic node
// statistics, plus the machine-failover record — takeover announcements and
// death verdicts the re-placement engine posts to the controller.
func (s *Session) collectStats() {
	defer s.wg.Done()
	for {
		m, err := s.ctrlPort.Recv()
		if err != nil {
			return // broker stopped
		}
		switch body := m.Body.(type) {
		case *message.StatsPayload:
			s.statsMu.Lock()
			s.nodeStats[body.Node] = body
			s.statsMu.Unlock()
		case *message.ControlPayload:
			switch body.Kind {
			case message.ControlTakeover:
				s.statsMu.Lock()
				s.takeoverByFrag[body.Peer]++
				s.statsMu.Unlock()
			case message.ControlMachineDead:
				s.statsMu.Lock()
				s.machineDeadSeen++
				s.statsMu.Unlock()
			}
		}
	}
}

// TakeoverStats snapshots machine-failover progress while the session runs:
// membership death verdicts fired and per-fragment takeover counts the
// controller has observed. Zero and nil when MachineFailover is off.
func (s *Session) TakeoverStats() (verdicts int64, byFragment map[string]int64) {
	if s.mfTransport == nil {
		return 0, nil
	}
	_, verdicts = s.mfTransport.MembershipStats()
	s.statsMu.Lock()
	defer s.statsMu.Unlock()
	byFragment = make(map[string]int64, len(s.takeoverByFrag))
	for k, v := range s.takeoverByFrag {
		byFragment[k] = v
	}
	return verdicts, byFragment
}

// ControllerStats snapshots the latest statistics message per node, as
// collected by the center controller.
func (s *Session) ControllerStats() map[string]message.StatsPayload {
	s.statsMu.Lock()
	defer s.statsMu.Unlock()
	out := make(map[string]message.StatsPayload, len(s.nodeStats))
	for k, v := range s.nodeStats {
		out[k] = *v
	}
	return out
}

// Wait blocks until the learner reaches its goal, the optional wall-clock
// limit expires, or the optional target return is reached.
func (s *Session) Wait() {
	var timeout <-chan time.Time
	if s.cfg.MaxDuration > 0 {
		t := time.NewTimer(s.cfg.MaxDuration)
		defer t.Stop()
		timeout = t.C
	}
	ticker := time.NewTicker(50 * time.Millisecond)
	defer ticker.Stop()
	lastMetrics := time.Now()
	var done <-chan struct{}
	if s.frags != nil {
		done = s.frags.done
	} else {
		done = s.learner.Done()
	}
	for {
		select {
		case <-done:
			return
		case <-timeout:
			return
		case <-ticker.C:
			if s.cfg.MetricsEvery > 0 && s.cfg.MetricsWriter != nil &&
				time.Since(lastMetrics) >= s.cfg.MetricsEvery {
				lastMetrics = time.Now()
				fmt.Fprintf(s.cfg.MetricsWriter, "channel: %s\n", s.ChannelHealth().Summary())
			}
			if s.cfg.TargetReturn > 0 {
				_, mean := s.aggregateEpisodes()
				if mean >= s.cfg.TargetReturn {
					return
				}
			}
		}
	}
}

func (s *Session) aggregateEpisodes() (int64, float64) {
	var episodes int64
	var weighted float64
	for _, sl := range s.slots {
		sl.mu.Lock()
		n, mean := sl.ex.EpisodeStats()
		episodes += n + sl.priorEpisodes
		weighted += mean*float64(n) + sl.priorReturnSum
		sl.mu.Unlock()
	}
	if episodes == 0 {
		return 0, 0
	}
	return episodes, weighted / float64(episodes)
}

// supervisionStats snapshots restart accounting across slots.
func (s *Session) supervisionStats() (restarts, exhausted int64, lastErr string) {
	for _, sl := range s.slots {
		sl.mu.Lock()
		restarts += sl.restarts
		if sl.budgetExhausted {
			exhausted++
		}
		if sl.lastErr != nil {
			lastErr = sl.lastErr.Error()
		}
		sl.mu.Unlock()
	}
	return restarts, exhausted, lastErr
}

// Stop shuts the deployment down: a shutdown command is broadcast to every
// process (the center controller's role in the paper), then brokers close
// and all threads are joined. Stop is idempotent — every call returns the
// same *Report, measured when the first call ran.
func (s *Session) Stop() *Report {
	s.stopOnce.Do(func() { s.report = s.doStop() })
	return s.report
}

func (s *Session) doStop() *Report {
	duration := time.Since(s.start)

	// End supervision first so the explorer set is stable: supervisors
	// finish any in-flight teardown and stop replacing incarnations.
	close(s.shutdown)
	s.superWG.Wait()

	// Broadcast shutdown like the center controller.
	dst := make([]string, 0, len(s.slots)+4)
	for _, sl := range s.slots {
		dst = append(dst, ExplorerName(sl.id))
	}
	if s.frags != nil {
		dst = append(dst, SampleName)
		for i := range s.frags.slots {
			dst = append(dst, LearnName(i))
		}
		dst = append(dst, BroadcastName)
	} else {
		dst = append(dst, LearnerName)
	}
	_ = s.ctrlPort.Send(message.New(message.TypeControl, ControllerName, dst,
		&message.ControlPayload{Kind: message.ControlShutdown}))

	if s.frags != nil {
		s.frags.stop()
	} else {
		s.learner.Stop()
	}
	for _, sl := range s.slots {
		sl.current().Stop()
	}
	s.transport.Stop() // closes ID queues, unblocking receiver threads
	if s.frags != nil {
		s.frags.join()
	} else {
		s.learner.Join()
	}
	for _, sl := range s.slots {
		sl.current().Join()
	}
	s.wg.Wait() // the controller's collector thread

	// Sweep failures supervision never got to handle (error raced Stop).
	for _, sl := range s.slots {
		ex := sl.current()
		if err := ex.Err(); err != nil {
			sl.mu.Lock()
			if sl.lastErr == nil {
				sl.lastErr = err
			}
			sl.mu.Unlock()
		}
	}

	episodes, meanReturn := s.aggregateEpisodes()
	var generated int64
	for _, sl := range s.slots {
		sl.mu.Lock()
		generated += sl.ex.StepsGenerated() + sl.priorSteps
		sl.mu.Unlock()
	}
	restarts, exhausted, lastErr := s.supervisionStats()
	channel := s.transport.Health()
	channel.Supervision = broker.SupervisionStats{
		ExplorerRestarts: restarts,
		BudgetExhausted:  exhausted,
		LastRestartError: lastErr,
	}
	var steps, iters int64
	var series []float64
	var meanWait, meanTrans time.Duration
	var waitCDF []stats.CDFPoint
	var fragRep *FragmentReport
	if s.frags != nil {
		steps = s.frags.stepsConsumed()
		iters = s.frags.trainIters()
		series = s.frags.mergedSeries()
		learns := s.frags.learns()
		waitHists := make([]*stats.Histogram, 0, len(learns))
		transHists := make([]*stats.Histogram, 0, len(learns))
		for _, l := range learns {
			waitHists = append(waitHists, l.WaitHist)
			transHists = append(transHists, l.TransHist)
		}
		meanWait = meanOver(waitHists)
		waitCDF = busiest(waitHists).CDF()
		meanTrans = meanOver(transHists)
		fragRep = s.frags.report()
		if s.mfTransport != nil {
			fragRep.LeaseRenewals, fragRep.MachineVerdicts = s.mfTransport.MembershipStats()
			s.statsMu.Lock()
			if len(s.takeoverByFrag) > 0 {
				fragRep.TakeoverByFragment = make(map[string]int64, len(s.takeoverByFrag))
				for k, v := range s.takeoverByFrag {
					fragRep.TakeoverByFragment[k] = v
				}
			}
			s.statsMu.Unlock()
		}
	} else {
		steps = s.learner.StepsConsumed()
		iters = s.learner.TrainIters()
		series = s.learner.Series.PerSecond()
		meanWait = s.learner.WaitHist.Mean()
		waitCDF = s.learner.WaitHist.CDF()
		meanTrans = s.learner.TransHist.Mean()
	}
	rep := &Report{
		StepsConsumed:          steps,
		TrainIters:             iters,
		Duration:               duration,
		Throughput:             float64(steps) / duration.Seconds(),
		ThroughputSeries:       series,
		MeanWait:               meanWait,
		WaitCDF:                waitCDF,
		MeanTransmission:       meanTrans,
		Episodes:               episodes,
		MeanReturn:             meanReturn,
		StepsGenerated:         generated,
		ExplorerRestarts:       restarts,
		RestartBudgetExhausted: exhausted,
		RestartLastError:       lastErr,
		Channel:                channel,
		Fragments:              fragRep,
	}
	return rep
}

// ChannelHealth snapshots live channel metrics for every broker plus
// supervision counters (usable while the session runs; Report.Channel holds
// the final snapshot).
func (s *Session) ChannelHealth() broker.ClusterHealth {
	h := s.transport.Health()
	restarts, exhausted, lastErr := s.supervisionStats()
	h.Supervision = broker.SupervisionStats{
		ExplorerRestarts: restarts,
		BudgetExhausted:  exhausted,
		LastRestartError: lastErr,
	}
	return h
}

// Learner exposes the learner for inspection in tests and experiments. It
// is nil under a fragmented topology — use Fragments instead.
func (s *Session) Learner() *Learner { return s.learner }

// Fragments exposes the fragment runtime's pieces for inspection in tests
// and experiments (sampler, learn replicas, broadcaster). All nil for a
// fused topology.
func (s *Session) Fragments() (*SampleFragment, []*LearnFragment, *BroadcastFragment) {
	if s.frags == nil {
		return nil, nil, nil
	}
	return s.frags.sampler, s.frags.learns(), s.frags.caster
}

// Err returns the first process error observed, if any. A learner error
// always surfaces. Explorer errors surface directly when supervision is
// off (MaxExplorerRestarts == 0, the historical fail-fast semantics); with
// supervision on, only terminal failures — an exhausted restart budget or a
// failed rebuild — surface, since handled errors were restarted away.
func (s *Session) Err() error {
	if s.frags != nil {
		if err := s.frags.err(); err != nil {
			return err
		}
	} else if err := s.learner.Err(); err != nil {
		return err
	}
	for _, sl := range s.slots {
		// Machine failover implies explorer supervision by the engine even
		// with a zero restart budget: a dead machine's explorer error is
		// handled by re-placement, not surfaced.
		if s.cfg.MaxExplorerRestarts > 0 || s.mfTransport != nil {
			sl.mu.Lock()
			err := sl.terminalErr
			sl.mu.Unlock()
			if err != nil {
				return err
			}
			continue
		}
		if err := sl.current().Err(); err != nil {
			return err
		}
	}
	return nil
}

// Run executes a full session: build, start, wait, stop.
func Run(cfg Config, algF AlgorithmFactory, agF AgentFactory, seed int64) (*Report, error) {
	s, err := NewSession(cfg, algF, agF, seed)
	if err != nil {
		return nil, err
	}
	s.Start()
	s.Wait()
	rep := s.Stop()
	if err := s.Err(); err != nil {
		return rep, err
	}
	return rep, nil
}
