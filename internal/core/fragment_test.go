package core_test

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"xingtian/internal/algorithm"
	"xingtian/internal/checkpoint"
	"xingtian/internal/core"
	"xingtian/internal/env"
	"xingtian/internal/fabric"
	"xingtian/internal/faultinject"
	"xingtian/internal/message"
	"xingtian/internal/netsim"
	"xingtian/internal/rollout"
)

func quickDDPGFactories(t *testing.T) (core.AlgorithmFactory, core.AgentFactory) {
	t.Helper()
	e := env.NewPendulum(0)
	spec := algorithm.ContinuousSpecFor(e)
	algF := func(seed int64) (core.Algorithm, error) {
		cfg := algorithm.DefaultDDPGConfig()
		cfg.TrainStart = 100
		cfg.TrainEvery = 2
		cfg.BatchSize = 16
		return algorithm.NewDDPG(spec, cfg, seed), nil
	}
	agF := func(id int32, seed int64) (core.Agent, error) {
		runner := algorithm.NewContinuousEnvRunner(env.NewPendulum(seed))
		return algorithm.NewDDPGAgent(spec, runner, seed), nil
	}
	return algF, agF
}

// TestFragmentFusedCompatTopology: the zero-value and FusedTopology configs
// must keep the legacy single-Learner loop — same code path as the seed, so
// compatibility is bit-for-bit by construction.
func TestFragmentFusedCompatTopology(t *testing.T) {
	for _, tc := range []struct {
		name string
		topo core.Topology
	}{
		{"zero-value", core.Topology{}},
		{"explicit-fused", core.FusedTopology()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			algF, agF := quickDQNFactories(t)
			s, err := core.NewSession(core.Config{
				NumExplorers: 2,
				RolloutLen:   50,
				MaxSteps:     1000,
				MaxDuration:  30 * time.Second,
				Topology:     tc.topo,
			}, algF, agF, 1)
			if err != nil {
				t.Fatalf("NewSession: %v", err)
			}
			if s.Learner() == nil {
				t.Fatal("fused topology must run the legacy Learner")
			}
			if sampler, _, _ := s.Fragments(); sampler != nil {
				t.Fatal("fused topology must not build the fragment runtime")
			}
			s.Start()
			s.Wait()
			rep := s.Stop()
			if err := s.Err(); err != nil {
				t.Fatalf("session error: %v", err)
			}
			if rep.StepsConsumed < 1000 {
				t.Fatalf("StepsConsumed = %d, want >= 1000", rep.StepsConsumed)
			}
			if rep.Fragments != nil {
				t.Fatal("fused run must not report fragment measurements")
			}
		})
	}
}

// TestFragmentRuntimeAllAlgorithms: all four zoo algorithms must run
// unchanged on the fragment runtime (single learn replica), reach their step
// goal, and leave the channel refcount-clean.
func TestFragmentRuntimeAllAlgorithms(t *testing.T) {
	cases := []struct {
		name      string
		factories func() (core.AlgorithmFactory, core.AgentFactory)
		explorers int
		rollout   int
		maxSteps  int64
	}{
		{"DQN", func() (core.AlgorithmFactory, core.AgentFactory) { return quickDQNFactories(t) }, 2, 50, 1000},
		{"IMPALA", func() (core.AlgorithmFactory, core.AgentFactory) { return quickIMPALAFactories(t) }, 2, 40, 1200},
		{"PPO", func() (core.AlgorithmFactory, core.AgentFactory) { return quickPPOFactories(t, 2) }, 2, 64, 1280},
		{"DDPG", func() (core.AlgorithmFactory, core.AgentFactory) { return quickDDPGFactories(t) }, 2, 50, 800},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			algF, agF := tc.factories()
			s, err := core.NewSession(core.Config{
				NumExplorers: tc.explorers,
				RolloutLen:   tc.rollout,
				MaxSteps:     tc.maxSteps,
				MaxDuration:  60 * time.Second,
				Topology:     core.Topology{Learners: 1, MaxStaleness: core.StalenessUnbounded},
			}, algF, agF, 11)
			if err != nil {
				t.Fatalf("NewSession: %v", err)
			}
			if s.Learner() != nil {
				t.Fatal("fragmented topology must not build the legacy Learner")
			}
			s.Start()
			s.Wait()
			// An algorithm that trains many times per rollout (e.g. DQN off
			// its replay buffer) can hit MaxSteps before the broadcast
			// fragment is ever scheduled; its queued weight pushes are still
			// in flight. Wait for the first aggregation so the assertion
			// checks wiring, not goroutine scheduling.
			_, _, caster := s.Fragments()
			waitUntil(t, 10*time.Second, "first aggregation", func() bool {
				return caster.Aggregations() > 0
			})
			rep := s.Stop()
			if err := s.Err(); err != nil {
				t.Fatalf("session error: %v", err)
			}
			if rep.StepsConsumed < tc.maxSteps {
				t.Fatalf("StepsConsumed = %d, want >= %d", rep.StepsConsumed, tc.maxSteps)
			}
			if rep.Fragments == nil {
				t.Fatal("fragmented run must report fragment measurements")
			}
			if rep.Fragments.Dispatched == 0 {
				t.Fatal("sampler dispatched nothing")
			}
			if rep.Fragments.Aggregations == 0 {
				t.Fatal("broadcast fragment never aggregated")
			}
			if leaked := rep.Channel.TotalLeaked(); leaked != 0 {
				t.Fatalf("TotalLeaked = %d, want 0; health:\n%s", leaked, rep.Channel.String())
			}
		})
	}
}

// TestFragmentTwoLearnerIMPALA: a replicated topology must spread training
// across both learn replicas and aggregate their weights.
func TestFragmentTwoLearnerIMPALA(t *testing.T) {
	algF, agF := quickIMPALAFactories(t)
	s, err := core.NewSession(core.Config{
		NumExplorers: 4,
		RolloutLen:   40,
		MaxSteps:     4000,
		MaxDuration:  60 * time.Second,
		Topology:     core.ReplicatedTopology(2),
	}, algF, agF, 12)
	if err != nil {
		t.Fatalf("NewSession: %v", err)
	}
	s.Start()
	s.Wait()
	rep := s.Stop()
	if err := s.Err(); err != nil {
		t.Fatalf("session error: %v", err)
	}
	if rep.StepsConsumed < 4000 {
		t.Fatalf("StepsConsumed = %d, want >= 4000", rep.StepsConsumed)
	}
	fr := rep.Fragments
	if fr == nil || len(fr.LearnSteps) != 2 {
		t.Fatalf("Fragments = %+v, want 2 learn replicas", fr)
	}
	for i, steps := range fr.LearnSteps {
		if steps == 0 {
			t.Fatalf("learn replica %d consumed no steps (dispatch must round-robin)", i)
		}
	}
	if fr.Aggregations < 2 {
		t.Fatalf("Aggregations = %d, want >= 2", fr.Aggregations)
	}
	if fr.CommittedVersion == 0 {
		t.Fatal("committed version never advanced")
	}
	if leaked := rep.Channel.TotalLeaked(); leaked != 0 {
		t.Fatalf("TotalLeaked = %d, want 0", leaked)
	}
}

// TestFragmentStalenessBound is the bounded-staleness property test: for
// every K, no learn replica may ever observe a rollout more than K weight
// versions behind the committed version stamped at dispatch; K=0 must
// reproduce strict assignment order (every trained rollout carries the
// committed weights version or newer).
func TestFragmentStalenessBound(t *testing.T) {
	for _, k := range []int{0, 1, 3} {
		t.Run(fmt.Sprintf("K=%d", k), func(t *testing.T) {
			algF, agF := quickIMPALAFactories(t)
			s, err := core.NewSession(core.Config{
				NumExplorers: 4,
				RolloutLen:   40,
				MaxSteps:     3000,
				MaxDuration:  60 * time.Second,
				Topology:     core.Topology{Learners: 2, MaxStaleness: k},
			}, algF, agF, int64(20+k))
			if err != nil {
				t.Fatalf("NewSession: %v", err)
			}
			var observed atomic.Int64
			var mu sync.Mutex
			var violations []string
			_, learns, _ := s.Fragments()
			for i, l := range learns {
				i := i
				l.SetStalenessObserver(func(rolloutVer, dispatchVer int64) {
					observed.Add(1)
					if dispatchVer-rolloutVer > int64(k) {
						mu.Lock()
						if len(violations) < 8 {
							violations = append(violations, fmt.Sprintf(
								"replica %d: rollout version %d is %d behind committed %d (bound %d)",
								i, rolloutVer, dispatchVer-rolloutVer, dispatchVer, k))
						}
						mu.Unlock()
					}
				})
			}
			s.Start()
			s.Wait()
			rep := s.Stop()
			if err := s.Err(); err != nil {
				t.Fatalf("session error: %v", err)
			}
			mu.Lock()
			defer mu.Unlock()
			if len(violations) > 0 {
				t.Fatalf("staleness bound violated:\n%v", violations)
			}
			if observed.Load() == 0 {
				t.Fatal("no rollouts observed")
			}
			if rep.Fragments.MaxStaleness != k {
				t.Fatalf("report MaxStaleness = %d, want %d", rep.Fragments.MaxStaleness, k)
			}
		})
	}
}

// TestFragmentStrictOrderOnPolicy: under strict assignment order (K=0) the
// sampler routes by version — every rollout of one weights version reaches
// the same replica — so an on-policy algorithm that trains on one batch per
// explorer at the current policy (PPO) still assembles its complete
// synchronous set under replication. Per-rollout round-robin would split the
// set and livelock PPO: no replica could ever collect all four explorers'
// batches before the version moved (regression caught live; this pins it).
func TestFragmentStrictOrderOnPolicy(t *testing.T) {
	algF, agF := quickPPOFactories(t, 4)
	s, err := core.NewSession(core.Config{
		NumExplorers: 4,
		RolloutLen:   40,
		MaxSteps:     1600,
		MaxDuration:  60 * time.Second,
		Topology:     core.Topology{Learners: 2, MaxStaleness: 0},
	}, algF, agF, 31)
	if err != nil {
		t.Fatalf("NewSession: %v", err)
	}
	s.Start()
	s.Wait()
	rep := s.Stop()
	if err := s.Err(); err != nil {
		t.Fatalf("session error: %v", err)
	}
	if rep.TrainIters == 0 {
		t.Fatal("PPO never trained under strict assignment order with 2 replicas")
	}
	if rep.StepsConsumed < 1600 {
		t.Fatalf("steps consumed = %d, want >= 1600", rep.StepsConsumed)
	}
	if leaked := rep.Channel.TotalLeaked(); leaked != 0 {
		t.Fatalf("%d object(s) leaked", leaked)
	}
}

// fragTopologyCase is one CI matrix entry of the fragment-topology job.
type fragTopologyCase struct {
	name      string
	machines  int
	grid      bool // real-TCP fabric.Grid instead of netsim
	explorers int
	maxSteps  int64
	topo      core.Topology
	// Failover legs: failover arms LearnerFailover with restarts as the
	// respawn budget and heartbeat as the liveness cadence; killAfter > 0
	// makes learn replica 0's first incarnation error after that many trains.
	failover  bool
	restarts  int
	heartbeat time.Duration
	killAfter int
	// Machine-failover legs (§5j): machineFailover arms Config.MachineFailover
	// with leaseEvery as the renewal period; killMachine > 0 arms a seeded
	// whole-machine kill (faultinject.NewMachineKill → Grid.Kill) after
	// killAfterWrites frame writes across the deployment. A machine kill
	// makes mid-run drops unavoidable (in-flight traffic toward the dead
	// machine, swap windows during re-placement), so these legs skip the
	// strict pre-Stop drop taxonomy and assert survival, takeover counts,
	// and leak-freedom instead.
	machineFailover bool
	leaseEvery      time.Duration
	killMachine     int
	killAfterWrites int
	// check runs extra per-leg assertions on the fragment report.
	check func(t *testing.T, fr *core.FragmentReport)
}

var fragTopologyCases = []fragTopologyCase{
	{name: "fused-1m", machines: 1, explorers: 2, maxSteps: 1500, topo: core.FusedTopology()},
	{name: "impala-2l", machines: 1, explorers: 4, maxSteps: 3000, topo: core.ReplicatedTopology(2)},
	{name: "grid-4m", machines: 4, grid: true, explorers: 4, maxSteps: 2000, topo: core.Topology{
		Learners:         2,
		SampleMachine:    0,
		BroadcastMachine: 3,
		LearnMachines:    []int{1, 2},
		MaxStaleness:     core.StalenessUnbounded,
	}},
	// Degraded-mode leg: one replica dies with a zero respawn budget, the
	// run must finish N-1 — still with zero privileged drops and a drained
	// store. The generous heartbeat keeps loaded CI workers from tripping
	// the deadline on scheduling noise (the kill is detected via the error
	// channel, not the heartbeat plane).
	{name: "degraded-2l-kill1", machines: 1, explorers: 4, maxSteps: 3000,
		topo: core.ReplicatedTopology(2), failover: true, restarts: 0,
		heartbeat: 500 * time.Millisecond, killAfter: 3,
		check: func(t *testing.T, fr *core.FragmentReport) {
			if fr.Quarantines < 1 {
				t.Errorf("Quarantines = %d, want >= 1 (a replica was killed)", fr.Quarantines)
			}
			if fr.Respawns != 0 {
				t.Errorf("Respawns = %d, want 0 (the budget is zero)", fr.Respawns)
			}
			if fr.Degraded != 1 {
				t.Errorf("Degraded = %d, want 1", fr.Degraded)
			}
		}},
	// Whole-machine kill legs (§5j): a 4-machine TCP grid hosting a
	// 2-learner IMPALA loses one entire non-coordinator machine mid-run to
	// a seeded write-count trigger. The run must still reach the step
	// target with exactly one membership verdict and exactly one takeover
	// per fragment the dead machine hosted. machine-kill-4m kills the
	// sampler-hosting machine (sampler + explorer-1); machine-kill-learn-4m
	// kills a learn-hosting machine (learn replica 0 + explorer-2).
	{name: "machine-kill-4m", machines: 4, grid: true, explorers: 4, maxSteps: 8000,
		topo: core.Topology{
			Learners:         2,
			SampleMachine:    1,
			BroadcastMachine: 3,
			LearnMachines:    []int{2, 3},
			MaxStaleness:     core.StalenessUnbounded,
		},
		machineFailover: true, leaseEvery: 10 * time.Millisecond,
		restarts: 3, heartbeat: 500 * time.Millisecond,
		killMachine: 1, killAfterWrites: 80,
		check: func(t *testing.T, fr *core.FragmentReport) {
			if fr.MachineVerdicts != 1 {
				t.Errorf("MachineVerdicts = %d, want 1", fr.MachineVerdicts)
			}
			if fr.LeaseRenewals == 0 {
				t.Errorf("LeaseRenewals = 0, want > 0")
			}
			wantTakeovers := map[string]int64{
				core.SampleName:      1,
				core.ExplorerName(1): 1,
			}
			for name, want := range wantTakeovers {
				if got := fr.TakeoverByFragment[name]; got != want {
					t.Errorf("TakeoverByFragment[%s] = %d, want %d (full map: %v)",
						name, got, want, fr.TakeoverByFragment)
				}
			}
			if len(fr.TakeoverByFragment) != len(wantTakeovers) {
				t.Errorf("unexpected extra takeovers: %v", fr.TakeoverByFragment)
			}
		}},
	{name: "machine-kill-learn-4m", machines: 4, grid: true, explorers: 4, maxSteps: 8000,
		topo: core.Topology{
			Learners:         2,
			SampleMachine:    1,
			BroadcastMachine: 3,
			LearnMachines:    []int{2, 3},
			MaxStaleness:     core.StalenessUnbounded,
		},
		machineFailover: true, leaseEvery: 10 * time.Millisecond,
		restarts: 3, heartbeat: 500 * time.Millisecond,
		killMachine: 2, killAfterWrites: 80,
		check: func(t *testing.T, fr *core.FragmentReport) {
			if fr.MachineVerdicts != 1 {
				t.Errorf("MachineVerdicts = %d, want 1", fr.MachineVerdicts)
			}
			if fr.Respawns < 1 {
				t.Errorf("Respawns = %d, want >= 1 (learn replica re-placed)", fr.Respawns)
			}
			wantTakeovers := map[string]int64{
				core.LearnName(0):    1,
				core.ExplorerName(2): 1,
			}
			for name, want := range wantTakeovers {
				if got := fr.TakeoverByFragment[name]; got != want {
					t.Errorf("TakeoverByFragment[%s] = %d, want %d (full map: %v)",
						name, got, want, fr.TakeoverByFragment)
				}
			}
			if len(fr.TakeoverByFragment) != len(wantTakeovers) {
				t.Errorf("unexpected extra takeovers: %v", fr.TakeoverByFragment)
			}
		}},
}

// killerAlgorithm wraps a real algorithm and errors out of TryTrain after a
// fixed number of successful trains — the crash vector of the failover legs.
// It forwards weight restoration so the wrapped replica keeps resyncing from
// aggregate echoes until the kill.
type killerAlgorithm struct {
	inner  core.Algorithm
	after  int
	trains int
}

var errReplicaKilled = errors.New("injected replica kill")

func (k *killerAlgorithm) Name() string                     { return k.inner.Name() }
func (k *killerAlgorithm) PrepareData(b *rollout.Batch)     { k.inner.PrepareData(b) }
func (k *killerAlgorithm) Weights() *message.WeightsPayload { return k.inner.Weights() }

func (k *killerAlgorithm) RestoreWeights(version int64, data []float32) error {
	if r, ok := k.inner.(core.WeightsRestorer); ok {
		return r.RestoreWeights(version, data)
	}
	return nil
}

func (k *killerAlgorithm) TryTrain() (core.TrainResult, bool, error) {
	res, ok, err := k.inner.TryTrain()
	if err == nil && ok {
		k.trains++
		if k.trains > k.after {
			return core.TrainResult{}, false, errReplicaKilled
		}
	}
	return res, ok, err
}

// fragTopologyReport is the JSON artifact one matrix run writes.
type fragTopologyReport struct {
	Topology        string               `json:"topology"`
	Machines        int                  `json:"machines"`
	Grid            bool                 `json:"grid"`
	StepsConsumed   int64                `json:"steps_consumed"`
	TrainIters      int64                `json:"train_iters"`
	Throughput      float64              `json:"throughput_steps_per_s"`
	DurationMS      int64                `json:"duration_ms"`
	PrivilegedDrops int64                `json:"privileged_drops"`
	Leaked          int64                `json:"leaked"`
	Fragments       *core.FragmentReport `json:"fragments,omitempty"`
}

// TestFragmentTopologyCI is the fragment-topology matrix driver the CI
// `fragments` job runs: XT_FRAG_TOPOLOGY selects the case (all run without
// it), each asserting a clean store drain and zero privileged drops, and
// XT_FRAG_REPORT names the per-topology JSON report artifact.
func TestFragmentTopologyCI(t *testing.T) {
	want := os.Getenv("XT_FRAG_TOPOLOGY")
	ran := false
	for _, tc := range fragTopologyCases {
		if want != "" && tc.name != want {
			continue
		}
		ran = true
		t.Run(tc.name, func(t *testing.T) {
			runFragTopologyCase(t, tc)
		})
	}
	if !ran {
		t.Fatalf("unknown XT_FRAG_TOPOLOGY %q", want)
	}
}

func runFragTopologyCase(t *testing.T, tc fragTopologyCase) {
	algF, agF := quickIMPALAFactories(t)
	if tc.killAfter > 0 {
		// The first factory call is learn replica 0's first incarnation; it
		// gets the kill wrapper, everything later runs clean.
		base := algF
		var calls atomic.Int32
		algF = func(seed int64) (core.Algorithm, error) {
			alg, err := base(seed)
			if err != nil {
				return nil, err
			}
			if calls.Add(1) == 1 {
				return &killerAlgorithm{inner: alg, after: tc.killAfter}, nil
			}
			return alg, nil
		}
	}
	cfg := core.Config{
		NumExplorers:       tc.explorers,
		RolloutLen:         40,
		MaxSteps:           tc.maxSteps,
		MaxDuration:        90 * time.Second,
		Machines:           tc.machines,
		Topology:           tc.topo,
		LearnerFailover:    tc.failover,
		MaxLearnerRestarts: tc.restarts,
		HeartbeatEvery:     tc.heartbeat,
		RestartBackoff:     2 * time.Millisecond,
		MachineFailover:    tc.machineFailover,
		LeaseEvery:         tc.leaseEvery,
	}
	if tc.grid {
		opts := fabric.GridOptions{}
		var inj *faultinject.Injector
		if tc.killMachine > 0 {
			inj = faultinject.New(faultinject.Config{Seed: 7})
			opts.ConnWrapperFor = inj.WrapConnFor
		}
		g, err := fabric.NewGrid(tc.machines, opts)
		if err != nil {
			t.Fatalf("NewGrid: %v", err)
		}
		if tc.killMachine > 0 {
			kill := inj.NewMachineKill(tc.killAfterWrites, func() { g.Kill(tc.killMachine) })
			defer func() {
				if !kill.Fired() {
					t.Errorf("machine kill never fired (run finished under %d writes?)", tc.killAfterWrites)
				}
			}()
		}
		cfg.Transport = g
	} else if tc.machines > 1 {
		cfg.Net = netsim.Config{Bandwidth: 1 << 30, TimeScale: 1}
	}
	s, err := core.NewSession(cfg, algF, agF, 33)
	if err != nil {
		t.Fatalf("NewSession: %v", err)
	}
	s.Start()
	s.Wait()

	// Drop taxonomy before Stop: anything but backpressure shedding on a
	// healthy run is a routing or refcount bug, and a privileged message
	// (weights/control) must never have been dropped at all. A whole-machine
	// kill makes other drop classes unavoidable (traffic in flight toward
	// the dead machine, unknown-destination windows while fragments swap
	// homes), so kill legs skip this and lean on the survival, takeover,
	// and leak assertions below.
	var privileged int64
	if tc.killMachine == 0 {
		live := s.ChannelHealth()
		for _, bm := range live.Brokers {
			d := bm.Drops
			if other := d.Total() - d.ShedOldest - d.StoreBudget; other != 0 {
				t.Errorf("machine %d dropped %d messages outside backpressure shedding: %+v",
					bm.MachineID, other, d)
				privileged += other
			}
		}
	}

	rep := s.Stop()
	if err := s.Err(); err != nil {
		t.Fatalf("session error: %v", err)
	}
	if rep.StepsConsumed < tc.maxSteps {
		t.Fatalf("StepsConsumed = %d, want >= %d", rep.StepsConsumed, tc.maxSteps)
	}
	leaked := rep.Channel.TotalLeaked()
	if leaked != 0 {
		t.Fatalf("store not drained: TotalLeaked = %d\n%s", leaked, rep.Channel.String())
	}
	for _, bm := range rep.Channel.Brokers {
		if bm.ReleaseErrors != 0 {
			t.Fatalf("machine %d ReleaseErrors = %d, want 0", bm.MachineID, bm.ReleaseErrors)
		}
	}
	if tc.check != nil {
		tc.check(t, rep.Fragments)
	}

	if path := os.Getenv("XT_FRAG_REPORT"); path != "" {
		out := fragTopologyReport{
			Topology:        tc.name,
			Machines:        tc.machines,
			Grid:            tc.grid,
			StepsConsumed:   rep.StepsConsumed,
			TrainIters:      rep.TrainIters,
			Throughput:      rep.Throughput,
			DurationMS:      rep.Duration.Milliseconds(),
			PrivilegedDrops: privileged,
			Leaked:          leaked,
			Fragments:       rep.Fragments,
		}
		data, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			t.Fatalf("marshal report: %v", err)
		}
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatalf("write report: %v", err)
		}
	}
}

// TestFragmentCheckpointResume: a fragmented run saves per-fragment state
// (committed aggregate plus each replica's last push), and a resumed
// session continues from the saved committed version instead of restarting
// the version sequence.
func TestFragmentCheckpointResume(t *testing.T) {
	path := filepath.Join(t.TempDir(), "frag.ckpt")
	algF, agF := quickIMPALAFactories(t)
	cfg := core.Config{
		NumExplorers:    2,
		RolloutLen:      40,
		MaxSteps:        2000,
		MaxDuration:     60 * time.Second,
		Topology:        core.ReplicatedTopology(2),
		CheckpointPath:  path,
		CheckpointEvery: 2,
	}
	rep, err := core.Run(cfg, algF, agF, 14)
	if err != nil {
		t.Fatalf("first run: %v", err)
	}
	states, err := checkpoint.LoadLatestFragments(path)
	if err != nil {
		t.Fatalf("LoadLatestFragments: %v", err)
	}
	byName := map[string]checkpoint.State{}
	for _, fs := range states {
		byName[fs.Name] = fs.State
	}
	saved, ok := byName[core.BroadcastName]
	if !ok {
		t.Fatalf("checkpoint set %v missing the broadcast fragment", states)
	}
	if saved.Version <= 0 || len(saved.Weights) == 0 {
		t.Fatalf("broadcast state = v%d with %d weights", saved.Version, len(saved.Weights))
	}
	if _, ok := byName[core.LearnName(0)]; !ok {
		t.Fatalf("checkpoint set %v missing learn-0", states)
	}
	_ = rep

	cfg.Resume = true
	s, err := core.NewSession(cfg, algF, agF, 15)
	if err != nil {
		t.Fatalf("resumed NewSession: %v", err)
	}
	_, _, caster := s.Fragments()
	if got := caster.Version(); got != saved.Version {
		t.Fatalf("resumed committed version = %d, want %d", got, saved.Version)
	}
	s.Start()
	s.Wait()
	s.Stop()
	if err := s.Err(); err != nil {
		t.Fatalf("resumed session error: %v", err)
	}
}

// TestStopDuringRestartBackoffReturnsPromptly: Session.Stop issued while a
// supervisor sleeps out a restart backoff must interrupt the sleep instead
// of waiting the timer out.
func TestStopDuringRestartBackoffReturnsPromptly(t *testing.T) {
	algF := func(seed int64) (core.Algorithm, error) { return &countingAlgorithm{}, nil }
	agF := func(id int32, seed int64) (core.Agent, error) {
		return &faultyAgent{failAfter: 1}, nil
	}
	backoff := 30 * time.Second
	s, err := core.NewSession(core.Config{
		NumExplorers:        1,
		RolloutLen:          10,
		MaxSteps:            1 << 40,
		MaxDuration:         5 * time.Minute,
		MaxExplorerRestarts: 10,
		RestartBackoff:      backoff,
	}, algF, agF, 13)
	if err != nil {
		t.Fatalf("NewSession: %v", err)
	}
	s.Start()

	// Wait until supervision has observed the failure (LastRestartError is
	// recorded after teardown, right before the backoff sleep starts).
	waitUntil(t, 10*time.Second, "supervision to observe the explorer failure", func() bool {
		return s.ChannelHealth().Supervision.LastRestartError != ""
	})

	stopStart := time.Now()
	rep := s.Stop()
	if elapsed := time.Since(stopStart); elapsed > 5*time.Second {
		t.Fatalf("Stop took %v with a %v restart backoff pending — the backoff sleep must be interrupted",
			elapsed, backoff)
	}
	if leaked := rep.Channel.TotalLeaked(); leaked != 0 {
		t.Fatalf("TotalLeaked = %d", leaked)
	}
}
