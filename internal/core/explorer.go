package core

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"xingtian/internal/broker"
	"xingtian/internal/buffer"
	"xingtian/internal/message"
	"xingtian/internal/queue"
)

// Explorer is the explorer process of Fig. 2(a): a rollout worker thread
// produces rollout fragments into the send buffer; the sender thread pushes
// them into the shared-memory communicator immediately; the receiver thread
// pulls weights broadcasts into the receive buffer, where the worker applies
// them between fragments.
type Explorer struct {
	id          int32
	agent       Agent
	port        *broker.Port
	sendBuf     *buffer.Buffer
	recvBuf     *buffer.Buffer
	rolloutLen  int
	maxInflight int
	learner     string

	wg      sync.WaitGroup
	stopped chan struct{}
	stopOne sync.Once
	failed  chan struct{}
	failOne sync.Once

	mu             sync.Mutex
	stepsGenerated int64
	lastErr        error

	fragmentsSinceWeights int
}

// ExplorerName formats the canonical client name for an explorer ID.
func ExplorerName(id int32) string { return fmt.Sprintf("explorer-%d", id) }

// LearnerName is the canonical client name of the learner process.
const LearnerName = "learner"

// ControllerName is the canonical client name of the center controller.
const ControllerName = "controller"

// DefaultMaxInflight bounds un-acknowledged rollout fragments per explorer.
// Weight broadcasts act as credits: the paper's channel pushes aggressively
// but its shared-memory store is finite, which imposes exactly this kind of
// flow control. Without it a fast explorer would burn CPU and memory
// producing rollouts a saturated learner must drop.
const DefaultMaxInflight = 4

// NewExplorer builds an explorer attached to the given broker port.
func NewExplorer(id int32, agent Agent, port *broker.Port, rolloutLen int) *Explorer {
	if rolloutLen <= 0 {
		rolloutLen = 200
	}
	return &Explorer{
		id:          id,
		agent:       agent,
		port:        port,
		sendBuf:     buffer.New(),
		recvBuf:     buffer.New(),
		rolloutLen:  rolloutLen,
		maxInflight: DefaultMaxInflight,
		learner:     LearnerName,
		stopped:     make(chan struct{}),
		failed:      make(chan struct{}),
	}
}

// SetMaxInflight overrides the flow-control window (<= 0 disables it).
// Call before Start.
func (e *Explorer) SetMaxInflight(n int) { e.maxInflight = n }

// SetRolloutDst overrides the destination rollout fragments are shipped to
// (default: the learner). The fragment runtime points explorers at the
// sample fragment, which applies the bounded-staleness filter and dispatches
// to learn replicas. Call before Start.
func (e *Explorer) SetRolloutDst(name string) { e.learner = name }

// Start launches the three explorer threads.
func (e *Explorer) Start() {
	e.wg.Add(3)
	go e.senderLoop()
	go e.receiverLoop()
	go e.workerLoop()
}

// senderLoop monitors the send buffer's header queue and pushes each staged
// message into the communicator the moment it appears.
func (e *Explorer) senderLoop() {
	defer e.wg.Done()
	for {
		m, err := e.sendBuf.Next()
		if err != nil {
			return
		}
		if err := e.port.Send(m); err != nil {
			if errors.Is(err, queue.ErrClosed) {
				return // channel torn down during shutdown
			}
			e.fail(fmt.Errorf("explorer %d send: %w", e.id, err))
			return
		}
	}
}

// receiverLoop monitors the explorer's ID queue and copies arriving
// messages into the local receive buffer immediately.
func (e *Explorer) receiverLoop() {
	defer e.wg.Done()
	for {
		m, err := e.port.Recv()
		if err != nil {
			e.recvBuf.Close()
			return
		}
		if err := e.recvBuf.Put(m); err != nil {
			return
		}
	}
}

// workerLoop is the rollout worker thread.
func (e *Explorer) workerLoop() {
	defer e.wg.Done()
	defer e.sendBuf.Close()
	for {
		select {
		case <-e.stopped:
			return
		default:
		}

		// Apply any weights waiting in the local receive buffer. Off-policy
		// agents drain opportunistically; on-policy agents block after
		// shipping a fragment so every fragment uses the latest parameters.
		// Note the asymmetry the paper exploits: the *transmission* of the
		// previous fragment already happened asynchronously on the sender
		// thread while this worker was still interacting with the
		// environment.
		e.mu.Lock()
		mustWait := e.agent.OnPolicy() && e.fragmentsSinceWeights > 0
		if e.maxInflight > 0 && e.fragmentsSinceWeights >= e.maxInflight {
			mustWait = true // credit exhausted: wait for a weights broadcast
		}
		e.mu.Unlock()
		if !e.drainReceived(mustWait) {
			return
		}

		batch, err := e.agent.Rollout(e.rolloutLen)
		if err != nil {
			e.fail(fmt.Errorf("explorer %d rollout: %w", e.id, err))
			return
		}
		batch.ExplorerID = e.id
		e.mu.Lock()
		e.stepsGenerated += int64(len(batch.Steps))
		e.mu.Unlock()

		m := message.New(message.TypeRollout, ExplorerName(e.id), []string{e.learner}, batch)
		// The header ack: brokers ledger this version per source so the
		// learner's weight plane knows which base each explorer holds.
		m.Header.WeightsVersion = batch.WeightsVersion
		if err := e.sendBuf.Put(m); err != nil {
			return
		}
		e.mu.Lock()
		e.fragmentsSinceWeights++
		generated := e.stepsGenerated
		e.mu.Unlock()

		// Periodic statistics to the center controller (§3.2.2): workhorse
		// threads put stats messages into the local send buffer and the
		// asynchronous channel does the rest.
		episodes, meanReturn := e.agent.EpisodeStats()
		stats := &message.StatsPayload{
			Node:           ExplorerName(e.id),
			Episodes:       episodes,
			MeanReturn:     meanReturn,
			StepsGenerated: generated,
			UnixNanos:      time.Now().UnixNano(),
		}
		if err := e.sendBuf.Put(message.New(message.TypeStats, ExplorerName(e.id),
			[]string{ControllerName}, stats)); err != nil {
			return
		}
	}
}

// drainReceived applies queued messages. When block is true it waits for at
// least one message (on-policy synchronization). It returns false when the
// explorer should shut down.
func (e *Explorer) drainReceived(block bool) bool {
	if block {
		for {
			m, err := e.recvBuf.Next()
			if err != nil {
				return false
			}
			if !e.apply(m) {
				return false
			}
			if m.Header.Type.WeightsClass() {
				break
			}
		}
	}
	for {
		m, err := e.recvBuf.TryNext()
		if errors.Is(err, queue.ErrEmpty) {
			return true
		}
		if err != nil {
			return false
		}
		if !e.apply(m) {
			return false
		}
	}
}

// apply processes one received message; it returns false on shutdown.
func (e *Explorer) apply(m *message.Message) bool {
	switch body := m.Body.(type) {
	case *message.WeightsPayload:
		if err := e.agent.SetWeights(body); err != nil {
			e.fail(fmt.Errorf("explorer %d set weights: %w", e.id, err))
			return false
		}
		e.mu.Lock()
		e.fragmentsSinceWeights = 0
		e.mu.Unlock()
	case *message.WeightsDeltaPayload:
		var err error
		if da, ok := e.agent.(DeltaAgent); ok {
			err = da.ApplyWeightsDelta(body)
		} else {
			err = fmt.Errorf("agent cannot apply weight deltas")
		}
		if err != nil {
			// NACK: ask the broadcast's producer for a dense resync and keep
			// sampling on the current weights. Failing hard here would turn
			// every restart-induced stale delta into a supervision cycle. The
			// NACK goes to the delta's Src — the learner in the fused loop,
			// the broadcast fragment in a fragment topology.
			nack := message.New(message.TypeControl, ExplorerName(e.id), []string{m.Header.Src},
				&message.ControlPayload{Kind: message.ControlWeightsResync})
			if perr := e.sendBuf.Put(nack); perr != nil {
				return false
			}
		}
		// Any weights-class message is a flow-control credit, even one that
		// failed to apply — the NACK guarantees a dense follow-up, and
		// withholding the credit could deadlock an out-of-credit explorer
		// whose silence stops the learner from ever broadcasting again.
		e.mu.Lock()
		e.fragmentsSinceWeights = 0
		e.mu.Unlock()
	case *message.ControlPayload:
		if body.Kind == message.ControlShutdown {
			e.stopOne.Do(func() { close(e.stopped) })
			return false
		}
	}
	return true
}

func (e *Explorer) fail(err error) {
	e.mu.Lock()
	if e.lastErr == nil {
		e.lastErr = err
	}
	e.mu.Unlock()
	e.failOne.Do(func() { close(e.failed) })
}

// Failed is closed when the explorer records its first error — the signal
// the session's supervisor selects on to restart the slot. A clean shutdown
// never closes it.
func (e *Explorer) Failed() <-chan struct{} { return e.failed }

// Err returns the first error the explorer hit, if any.
func (e *Explorer) Err() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.lastErr
}

// StepsGenerated reports the number of rollout steps produced so far.
func (e *Explorer) StepsGenerated() int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.stepsGenerated
}

// EpisodeStats proxies the agent's episode statistics.
func (e *Explorer) EpisodeStats() (int64, float64) { return e.agent.EpisodeStats() }

// Stop signals all explorer threads to finish: the worker observes the
// stopped channel (and the closed receive buffer if it is blocked waiting
// for weights). The receiver thread unblocks when the broker closes this
// client's ID queue, so callers must stop the broker before Join.
func (e *Explorer) Stop() {
	e.stopOne.Do(func() { close(e.stopped) })
	e.recvBuf.Close()
}

// Join waits for all three explorer threads to exit. Call after Stop and
// after the owning broker has been stopped (which closes the ID queue the
// receiver thread blocks on).
func (e *Explorer) Join() {
	e.wg.Wait()
}
