package bench

import (
	"path/filepath"
	"testing"
)

func report(results ...Result) Report {
	return Report{Schema: Schema, Date: "2026-01-01", Benchmarks: results}
}

func TestCompareHigherIsWorse(t *testing.T) {
	base := report(Result{Name: "a", Track: TrackNsPerOp, NsPerOp: 100})
	// 20% slower: within a 25% threshold.
	if regs := Compare(base, report(Result{Name: "a", Track: TrackNsPerOp, NsPerOp: 120}), 0.25); len(regs) != 0 {
		t.Fatalf("20%% slowdown flagged at 25%% threshold: %v", regs)
	}
	// 30% slower: over threshold.
	if regs := Compare(base, report(Result{Name: "a", Track: TrackNsPerOp, NsPerOp: 130}), 0.25); len(regs) != 1 {
		t.Fatalf("30%% slowdown not flagged: %v", regs)
	}
	// Faster is never a regression.
	if regs := Compare(base, report(Result{Name: "a", Track: TrackNsPerOp, NsPerOp: 10}), 0.25); len(regs) != 0 {
		t.Fatalf("speedup flagged: %v", regs)
	}
}

func TestCompareLowerIsWorse(t *testing.T) {
	base := report(Result{Name: "s", Track: TrackSpeedup, Extra: map[string]float64{"speedup": 4}})
	if regs := Compare(base, report(Result{Name: "s", Track: TrackSpeedup, Extra: map[string]float64{"speedup": 3.5}}), 0.25); len(regs) != 0 {
		t.Fatalf("in-threshold speedup drop flagged: %v", regs)
	}
	if regs := Compare(base, report(Result{Name: "s", Track: TrackSpeedup, Extra: map[string]float64{"speedup": 2}}), 0.25); len(regs) != 1 {
		t.Fatalf("halved speedup not flagged: %v", regs)
	}
	mb := report(Result{Name: "m", Track: TrackMBPerS, MBPerS: 100})
	if regs := Compare(mb, report(Result{Name: "m", Track: TrackMBPerS, MBPerS: 50}), 0.25); len(regs) != 1 {
		t.Fatalf("halved throughput not flagged: %v", regs)
	}
}

func TestCompareZeroAllocBaselineSlack(t *testing.T) {
	base := report(Result{Name: "z", Track: TrackAllocsPerOp, AllocsPerOp: 0})
	// A couple of allocations of noise is tolerated against a zero baseline.
	if regs := Compare(base, report(Result{Name: "z", Track: TrackAllocsPerOp, AllocsPerOp: 2}), 0.25); len(regs) != 0 {
		t.Fatalf("zero-baseline slack not applied: %v", regs)
	}
	if regs := Compare(base, report(Result{Name: "z", Track: TrackAllocsPerOp, AllocsPerOp: 5}), 0.25); len(regs) != 1 {
		t.Fatalf("real alloc growth not flagged: %v", regs)
	}
}

func TestCompareMissingBenchmark(t *testing.T) {
	base := report(Result{Name: "gone", Track: TrackNsPerOp, NsPerOp: 10})
	regs := Compare(base, report(), 0.25)
	if len(regs) != 1 || !regs[0].Missing {
		t.Fatalf("missing benchmark not flagged: %v", regs)
	}
}

func TestWithSpeedups(t *testing.T) {
	results := WithSpeedups([]Result{
		{Name: "store/global/p8", Track: TrackAllocsPerOp, NsPerOp: 1000},
		{Name: "store/sharded/p8", Track: TrackAllocsPerOp, NsPerOp: 250},
	})
	var found bool
	for _, r := range results {
		if r.Name == "store/speedup/p8" {
			found = true
			if got := r.Extra["speedup"]; got != 4 {
				t.Fatalf("speedup = %v, want 4", got)
			}
			if r.Track != TrackSpeedup {
				t.Fatalf("track = %q, want %q", r.Track, TrackSpeedup)
			}
		}
	}
	if !found {
		t.Fatal("store/speedup/p8 not derived")
	}
}

func TestReportRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_test.json")
	in := report(Result{Name: "a", Track: TrackNsPerOp, NsPerOp: 42, Iterations: 7})
	in.GoVersion = "go1.22"
	if err := WriteReport(path, in); err != nil {
		t.Fatal(err)
	}
	out, err := LoadReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if out.Schema != Schema || len(out.Benchmarks) != 1 || out.Benchmarks[0].NsPerOp != 42 {
		t.Fatalf("round trip mismatch: %+v", out)
	}
}

func TestLoadReportRejectsWrongSchema(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	in := Report{Schema: "other/v9"}
	if err := WriteReport(path, in); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadReport(path); err == nil {
		t.Fatal("wrong schema accepted")
	}
}
