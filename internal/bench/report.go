package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"testing"
)

// Schema identifies the report layout; bump it when fields change meaning.
const Schema = "xt-bench/v1"

// Result is one benchmark's measurements.
type Result struct {
	// Name is the stable benchmark name (Def.Name, or a derived
	// pseudo-benchmark such as store/speedup/p8).
	Name string `json:"name"`
	// Track is the metric CI compares for this benchmark (see Track*).
	Track string `json:"track"`
	// Iterations is the b.N the harness settled on.
	Iterations int `json:"iterations"`
	// NsPerOp, BytesPerOp, and AllocsPerOp are the standard testing.B
	// measurements; MBPerS is derived from SetBytes when present.
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	MBPerS      float64 `json:"mb_per_s,omitempty"`
	// Extra holds derived metrics (e.g. "speedup" for within-run ratios).
	Extra map[string]float64 `json:"extra,omitempty"`
}

// Report is the schema'd output of one xt-bench run.
type Report struct {
	Schema     string   `json:"schema"`
	Date       string   `json:"date"`
	Preset     string   `json:"preset"`
	GoVersion  string   `json:"go_version"`
	GOOS       string   `json:"goos"`
	GOARCH     string   `json:"goarch"`
	NumCPU     int      `json:"num_cpu"`
	Benchmarks []Result `json:"benchmarks"`
}

// FromBenchmarkResult converts a testing.Benchmark measurement into a
// Result.
func FromBenchmarkResult(name, track string, r testing.BenchmarkResult) Result {
	res := Result{
		Name:        name,
		Track:       track,
		Iterations:  r.N,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(max(r.N, 1)),
		BytesPerOp:  r.AllocedBytesPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
	}
	if r.Bytes > 0 && r.T > 0 {
		res.MBPerS = float64(r.Bytes) * float64(r.N) / 1e6 / r.T.Seconds()
	}
	// Custom metrics reported via b.ReportMetric (e.g. a within-run
	// "speedup" ratio) ride along so speedup-tracked benchmarks can gate.
	if len(r.Extra) > 0 {
		res.Extra = make(map[string]float64, len(r.Extra))
		for k, v := range r.Extra {
			res.Extra[k] = v
		}
	}
	return res
}

// WithSpeedups appends the derived store/speedup/pN pseudo-benchmarks: the
// within-run ratio of the single-mutex baseline's ns/op to the sharded
// store's at each parallelism level. Being a ratio of two measurements from
// the same machine and run, it is comparable across hosts where raw ns/op
// is not.
func WithSpeedups(results []Result) []Result {
	byName := make(map[string]Result, len(results))
	for _, r := range results {
		byName[r.Name] = r
	}
	for _, p := range storeParallelism {
		global, okG := byName[fmt.Sprintf("store/global/p%d", p)]
		sharded, okS := byName[fmt.Sprintf("store/sharded/p%d", p)]
		if !okG || !okS || sharded.NsPerOp <= 0 {
			continue
		}
		results = append(results, Result{
			Name:  fmt.Sprintf("store/speedup/p%d", p),
			Track: TrackSpeedup,
			Extra: map[string]float64{"speedup": global.NsPerOp / sharded.NsPerOp},
		})
	}
	return results
}

// Regression is one gated metric that got worse than the allowed threshold,
// or a baseline benchmark missing from the current run.
type Regression struct {
	Name    string
	Metric  string
	Base    float64
	Current float64
	Missing bool
}

func (r Regression) String() string {
	if r.Missing {
		return fmt.Sprintf("%s: present in baseline but missing from this run", r.Name)
	}
	return fmt.Sprintf("%s: %s regressed %.4g -> %.4g (%+.1f%%)",
		r.Name, r.Metric, r.Base, r.Current, 100*(r.Current-r.Base)/r.Base)
}

// trackedValue extracts the gated metric for a result per its Track.
// The second return is false when the result carries no such metric.
func trackedValue(r Result) (float64, bool) {
	switch r.Track {
	case TrackNsPerOp:
		return r.NsPerOp, r.NsPerOp > 0
	case TrackAllocsPerOp:
		return float64(r.AllocsPerOp), true
	case TrackMBPerS:
		return r.MBPerS, r.MBPerS > 0
	case TrackSpeedup:
		v, ok := r.Extra["speedup"]
		return v, ok
	}
	return 0, false
}

// higherIsWorse reports the regression direction for a track.
func higherIsWorse(track string) bool {
	switch track {
	case TrackMBPerS, TrackSpeedup:
		return false
	}
	return true
}

// Compare gates current against baseline: for every baseline benchmark, the
// tracked metric may move at most threshold (fractional, e.g. 0.25) in the
// worse direction. A zero baseline for a higher-is-worse count gets an
// absolute slack of 2 ops instead of a meaningless ratio.
func Compare(baseline, current Report, threshold float64) []Regression {
	cur := make(map[string]Result, len(current.Benchmarks))
	for _, r := range current.Benchmarks {
		cur[r.Name] = r
	}
	var regs []Regression
	for _, base := range baseline.Benchmarks {
		b, okB := trackedValue(base)
		if !okB {
			continue
		}
		c, ok := cur[base.Name]
		if !ok {
			regs = append(regs, Regression{Name: base.Name, Missing: true})
			continue
		}
		v, okC := trackedValue(c)
		if !okC {
			regs = append(regs, Regression{Name: base.Name, Missing: true})
			continue
		}
		if higherIsWorse(base.Track) {
			limit := b * (1 + threshold)
			if b == 0 {
				limit = 2 // absolute slack for zero-alloc baselines
			}
			if v > limit {
				regs = append(regs, Regression{Name: base.Name, Metric: base.Track, Base: b, Current: v})
			}
		} else {
			if b > 0 && v < b*(1-threshold) {
				regs = append(regs, Regression{Name: base.Name, Metric: base.Track, Base: b, Current: v})
			}
		}
	}
	sort.Slice(regs, func(i, j int) bool { return regs[i].Name < regs[j].Name })
	return regs
}

// LoadReport reads and validates a report JSON file.
func LoadReport(path string) (Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Report{}, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return Report{}, fmt.Errorf("parse %s: %w", path, err)
	}
	if r.Schema != Schema {
		return Report{}, fmt.Errorf("%s: schema %q, want %q", path, r.Schema, Schema)
	}
	return r, nil
}

// WriteReport writes the report as indented JSON.
func WriteReport(path string, r Report) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
