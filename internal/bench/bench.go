// Package bench defines the repository's microbenchmark suite as data, so
// cmd/xt-bench can run it outside `go test`, emit a schema'd JSON report,
// and let CI compare runs against a committed baseline.
//
// The suite covers the communication hot paths the paper optimizes: object
// store put/get/release under contention (sharded store vs the frozen
// single-mutex baseline it replaced), message serialization (heap vs pooled
// buffers), queue hand-off, broker end-to-end round trips, and the quick
// presets of the paper's Table 1 / Fig. 4 experiments.
package bench

import (
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"xingtian/internal/broker"
	"xingtian/internal/env"
	"xingtian/internal/experiments"
	"xingtian/internal/message"
	"xingtian/internal/objectstore"
	"xingtian/internal/queue"
	"xingtian/internal/rollout"
	"xingtian/internal/serialize"
	"xingtian/internal/weightplane"
)

// Track names the metric CI compares for a benchmark. Allocation counts are
// deterministic across machines, so micro benchmarks track allocs_per_op;
// the virtual-time experiment benchmarks track ns_per_op (they are
// sleep-dominated, so wall time is stable); derived within-run ratios track
// "speedup" and are machine-independent by construction.
const (
	TrackNsPerOp     = "ns_per_op"
	TrackAllocsPerOp = "allocs_per_op"
	TrackMBPerS      = "mb_per_s"
	TrackSpeedup     = "speedup"
)

// Def is one benchmark: a stable slash-separated name, the metric CI gates
// on, and a standard testing.B body. Heavy marks experiment-scale
// benchmarks that always run one iteration regardless of preset.
type Def struct {
	Name  string
	Track string
	Heavy bool
	Run   func(b *testing.B)
}

// refStore is the put/get/pin/release surface shared by the production
// sharded store and the frozen single-mutex baseline.
type refStore interface {
	Put(data []byte, refs int) objectstore.ID
	Get(id objectstore.ID) ([]byte, error)
	Pin(id objectstore.ID) error
	Release(id objectstore.ID) error
}

// storeParallelism is the goroutine sweep for the contention benchmarks.
var storeParallelism = []int{1, 2, 4, 8}

// Suite returns every benchmark definition in report order.
func Suite() []Def {
	var defs []Def
	for _, p := range storeParallelism {
		p := p
		defs = append(defs,
			Def{
				Name:  fmt.Sprintf("store/global/p%d", p),
				Track: TrackAllocsPerOp,
				Run:   func(b *testing.B) { benchStoreOps(b, newMutexStore(), p) },
			},
			Def{
				Name:  fmt.Sprintf("store/sharded/p%d", p),
				Track: TrackAllocsPerOp,
				Run:   func(b *testing.B) { benchStoreOps(b, objectstore.New(), p) },
			},
		)
	}
	defs = append(defs,
		Def{Name: "serialize/marshal/rollout_heap", Track: TrackAllocsPerOp, Run: benchMarshalRolloutHeap},
		Def{Name: "serialize/marshal/rollout", Track: TrackAllocsPerOp, Run: benchMarshalRolloutPooled},
		Def{Name: "serialize/unmarshal/rollout", Track: TrackAllocsPerOp, Run: benchUnmarshalRollout},
		Def{Name: "serialize/marshal/weights", Track: TrackAllocsPerOp, Run: benchMarshalWeightsPooled},
		Def{Name: "queue/putget", Track: TrackAllocsPerOp, Run: benchQueuePutGet},
		Def{Name: "queue/pipeline", Track: TrackAllocsPerOp, Run: benchQueuePipeline},
		Def{Name: "broker/roundtrip/64KB", Track: TrackAllocsPerOp, Run: benchBrokerRoundTrip},
		Def{Name: "broker/broadcast/fanout8", Track: TrackAllocsPerOp, Run: benchBrokerBroadcast},
		Def{Name: "broker/backpressure/shed", Track: TrackAllocsPerOp, Run: benchBrokerBackpressureShed},
		Def{Name: "weights/broadcast", Track: TrackSpeedup, Run: benchWeightsBroadcast},
		Def{Name: "fragments/checkpoint/roundtrip", Track: TrackAllocsPerOp, Run: benchFragmentsCheckpoint},
		Def{Name: "fragments/impala/2v1", Track: TrackSpeedup, Heavy: true, Run: benchFragmentsIMPALA2v1},
		Def{Name: "exp/table1", Track: TrackNsPerOp, Heavy: true, Run: benchExperiment("table1")},
		Def{Name: "exp/fig4", Track: TrackNsPerOp, Heavy: true, Run: benchExperiment("fig4")},
	)
	return defs
}

// benchStoreOps drives the broadcast life cycle (put with two references,
// read, pin, three releases) from `workers` goroutines. GOMAXPROCS is
// raised to the worker count so mutex contention is real on multi-core
// hosts even when workers exceed NumCPU. Note that on a single-core host no
// sweep can exhibit contention at all — a lock holder is almost never
// preempted inside its ~100ns critical section, so waiters never park and
// the global mutex stays on its uncontended fast path; there the sharded
// store only shows its constant per-op overhead, and the speedup ratios
// dip below 1. The derived store/speedup/pN results are therefore only
// meaningful relative to the same host's committed baseline (the CI gate
// compares them lower-is-worse), not as absolute contention claims.
func benchStoreOps(b *testing.B, store refStore, workers int) {
	prev := runtime.GOMAXPROCS(workers)
	defer runtime.GOMAXPROCS(prev)
	payload := make([]byte, 4096)
	b.ReportAllocs()
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		n := b.N / workers
		if w < b.N%workers {
			n++
		}
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			for i := 0; i < n; i++ {
				id := store.Put(payload, 2)
				if _, err := store.Get(id); err != nil {
					panic(err)
				}
				if err := store.Pin(id); err != nil {
					panic(err)
				}
				for r := 0; r < 3; r++ {
					if err := store.Release(id); err != nil {
						panic(err)
					}
				}
			}
		}(n)
	}
	wg.Wait()
}

// benchBatch builds a deterministic frame rollout batch close to the
// paper's Table 1 sizes (~900 KB of stacked Atari frames).
func benchBatch() *rollout.Batch {
	batch := &rollout.Batch{ExplorerID: 1, WeightsVersion: 7}
	for i := 0; i < 64; i++ {
		frame := make([]byte, 84*84*2)
		for j := range frame {
			frame[j] = byte(i + j)
		}
		batch.Steps = append(batch.Steps, rollout.Step{
			Obs:     env.Obs{Frame: frame, FrameH: 84, FrameW: 84, FrameN: 2},
			Action:  int32(i % 4),
			Reward:  float32(i),
			Value:   0.5,
			LogProb: -0.7,
			Logits:  []float32{0.1, 0.2, 0.3, 0.4},
		})
	}
	batch.BootstrapObs = env.Obs{Vec: []float32{1, 2, 3, 4}}
	return batch
}

func benchMarshalRolloutHeap(b *testing.B) {
	batch := benchBatch()
	b.SetBytes(int64(batch.SizeBytes()))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		data, err := serialize.Marshal(batch)
		if err != nil {
			b.Fatal(err)
		}
		_ = data
	}
}

func benchMarshalRolloutPooled(b *testing.B) {
	batch := benchBatch()
	b.SetBytes(int64(batch.SizeBytes()))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		data, err := serialize.MarshalPooled(batch)
		if err != nil {
			b.Fatal(err)
		}
		serialize.FreeBuf(data)
	}
}

func benchUnmarshalRollout(b *testing.B) {
	data, err := serialize.Marshal(benchBatch())
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := serialize.Unmarshal(data); err != nil {
			b.Fatal(err)
		}
	}
}

func benchMarshalWeightsPooled(b *testing.B) {
	weights := &message.WeightsPayload{Version: 1, Data: make([]float32, 100_000)}
	b.SetBytes(int64(4 * len(weights.Data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		data, err := serialize.MarshalPooled(weights)
		if err != nil {
			b.Fatal(err)
		}
		serialize.FreeBuf(data)
	}
}

func benchQueuePutGet(b *testing.B) {
	q := queue.New[objectstore.ID]()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := q.Put(objectstore.ID(i)); err != nil {
			b.Fatal(err)
		}
		if _, err := q.Get(); err != nil {
			b.Fatal(err)
		}
	}
}

// benchQueuePipeline measures the blocking producer/consumer hand-off the
// broker's router and forwarder threads perform.
func benchQueuePipeline(b *testing.B) {
	q := queue.New[objectstore.ID]()
	b.ReportAllocs()
	b.ResetTimer()
	done := make(chan error, 1)
	go func() {
		for i := 0; i < b.N; i++ {
			if _, err := q.Get(); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	for i := 0; i < b.N; i++ {
		if err := q.Put(objectstore.ID(i)); err != nil {
			b.Fatal(err)
		}
	}
	if err := <-done; err != nil {
		b.Fatal(err)
	}
}

func benchBrokerRoundTrip(b *testing.B) {
	br := broker.New(broker.Config{MachineID: 0})
	defer br.Stop()
	s, err := br.Register("s")
	if err != nil {
		b.Fatal(err)
	}
	r, err := br.Register("r")
	if err != nil {
		b.Fatal(err)
	}
	payload := make([]byte, 64<<10)
	b.SetBytes(int64(len(payload)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := message.New(message.TypeDummy, "s", []string{"r"},
			&message.DummyPayload{Data: payload})
		if err := s.Send(m); err != nil {
			b.Fatal(err)
		}
		if _, err := r.Recv(); err != nil {
			b.Fatal(err)
		}
	}
}

// benchBrokerBackpressureShed measures the overload path of DESIGN.md §5f:
// a bounded broker whose receiver never drains. After a short warmup the
// destination queue sits at ShedQueueDepth and the store hovers at its high
// watermark, so every droppable send exercises the shed machinery — a
// drop-oldest PopIf that releases the evicted reference, or a store-budget
// refusal at admission — rather than the regular admit path. The gate tracks
// allocs_per_op so CI catches the shed path growing an allocation.
func benchBrokerBackpressureShed(b *testing.B) {
	br := broker.New(broker.Config{MachineID: 0, StoreBudget: 64 << 10, ShedQueueDepth: 8})
	defer br.Stop()
	s, err := br.Register("s")
	if err != nil {
		b.Fatal(err)
	}
	if _, err := br.Register("r"); err != nil {
		b.Fatal(err)
	}
	payload := make([]byte, 8<<10)
	b.SetBytes(int64(len(payload)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := message.New(message.TypeDummy, "s", []string{"r"},
			&message.DummyPayload{Data: payload})
		if err := s.Send(m); err != nil {
			b.Fatal(err)
		}
	}
}

func benchBrokerBroadcast(b *testing.B) {
	br := broker.New(broker.Config{MachineID: 0, Compressor: serialize.NewCompressor()})
	defer br.Stop()
	learner, err := br.Register("learner")
	if err != nil {
		b.Fatal(err)
	}
	const fanout = 8
	ports := make([]*broker.Port, fanout)
	dst := make([]string, fanout)
	for i := range ports {
		dst[i] = fmt.Sprintf("explorer-%d", i)
		p, err := br.Register(dst[i])
		if err != nil {
			b.Fatal(err)
		}
		ports[i] = p
	}
	weights := &message.WeightsPayload{Version: 1, Data: make([]float32, 100_000)}
	b.SetBytes(int64(4 * len(weights.Data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := message.New(message.TypeWeights, "learner", dst, weights)
		if err := learner.Send(m); err != nil {
			b.Fatal(err)
		}
		for _, p := range ports {
			if _, err := p.Recv(); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// benchWeightsBroadcast measures the wire-byte reduction of the delta
// weight plane: a learner broadcasting to 8 explorers over a simulated
// training sequence where ~1% of parameters move per version (SGD-like
// sparsity at broadcast granularity). The reported "speedup" is the ratio
// of dense-star bytes to delta-plane bytes — a within-run ratio of two
// serialized sizes, so it is deterministic and machine-independent, and the
// CI gate catches the delta encoder losing its compactness.
func benchWeightsBroadcast(b *testing.B) {
	const (
		numParams = 100_000
		numDst    = 8
		rounds    = 20
		perRound  = numParams / 100
	)
	dsts := make([]string, numDst)
	for i := range dsts {
		dsts[i] = fmt.Sprintf("explorer-%d", i)
	}
	var ratio float64
	for iter := 0; iter < b.N; iter++ {
		rng := rand.New(rand.NewSource(42))
		cur := make([]float32, numParams)
		for i := range cur {
			cur[i] = rng.Float32()*2 - 1
		}
		plane := weightplane.New(weightplane.Config{Enabled: true, QuantBits: 8})
		acked := make(map[string]int64)
		var denseBytes, deltaBytes int64
		for v := int64(1); v <= rounds; v++ {
			if v > 1 {
				for k := 0; k < perRound; k++ {
					cur[rng.Intn(numParams)] += (rng.Float32()*2 - 1) * 0.01
				}
			}
			dense, err := serialize.Marshal(&message.WeightsPayload{Version: v, Data: cur})
			if err != nil {
				b.Fatal(err)
			}
			denseBytes += int64(len(dense)) * numDst
			for _, o := range plane.Plan(cur, v, dsts, acked) {
				data, err := serialize.Marshal(o.Body)
				if err != nil {
					b.Fatal(err)
				}
				deltaBytes += int64(len(data)) * int64(len(o.Dsts))
			}
			for _, d := range dsts {
				acked[d] = v // every explorer acks before the next broadcast
			}
		}
		ratio = float64(denseBytes) / float64(deltaBytes)
	}
	b.ReportMetric(ratio, "speedup")
}

// benchExperiment adapts a registered experiment (quick preset) to a
// benchmark body.
func benchExperiment(name string) func(b *testing.B) {
	return func(b *testing.B) {
		run := experiments.Registry()[name]
		if run == nil {
			b.Fatalf("experiment %q not registered", name)
		}
		settings := experiments.DefaultSettings()
		settings.Quick = true
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := run(settings, io.Discard); err != nil {
				b.Fatalf("%s: %v", name, err)
			}
		}
	}
}
