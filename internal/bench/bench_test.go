package bench

import (
	"flag"
	"strings"
	"testing"
)

// TestSuiteNamesUniqueAndTracked: every definition has a unique name and a
// known tracked metric.
func TestSuiteNamesUniqueAndTracked(t *testing.T) {
	seen := make(map[string]bool)
	for _, d := range Suite() {
		if seen[d.Name] {
			t.Errorf("duplicate benchmark name %q", d.Name)
		}
		seen[d.Name] = true
		switch d.Track {
		case TrackNsPerOp, TrackAllocsPerOp, TrackMBPerS, TrackSpeedup:
		default:
			t.Errorf("%s: unknown track %q", d.Name, d.Track)
		}
		if d.Run == nil {
			t.Errorf("%s: nil Run", d.Name)
		}
	}
	for _, want := range []string{"store/global/p8", "store/sharded/p8", "serialize/marshal/rollout", "queue/putget", "broker/roundtrip/64KB", "exp/table1"} {
		if !seen[want] {
			t.Errorf("suite is missing %q", want)
		}
	}
}

// TestSuiteSmoke runs every non-heavy benchmark body for one iteration so a
// broken benchmark fails tests, not the nightly bench job.
func TestSuiteSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping benchmark smoke in -short")
	}
	if err := flag.Set("test.benchtime", "1x"); err != nil {
		t.Fatal(err)
	}
	for _, d := range Suite() {
		if d.Heavy {
			continue // exp/* run the full quick experiments; covered elsewhere
		}
		d := d
		t.Run(strings.ReplaceAll(d.Name, "/", "_"), func(t *testing.T) {
			r := testing.Benchmark(d.Run)
			if r.N < 1 {
				t.Fatalf("%s did not run", d.Name)
			}
		})
	}
}
