package bench

import (
	"path/filepath"
	"testing"
	"time"

	"xingtian/internal/algorithm"
	"xingtian/internal/checkpoint"
	"xingtian/internal/core"
	"xingtian/internal/env"
)

// deviceAlg wraps a zoo algorithm and charges a fixed emulated device time
// per training session. The paper trains on a V100 where one session costs
// ~32 ms of accelerator time; the Go networks are CPU toys, so without the
// emulated charge the learn fragment is never the bottleneck and replicating
// it measures nothing (see the expSpecLight rationale in
// internal/experiments). Sleeping the trainer goroutine yields the core, so
// two learn replicas genuinely overlap their device time even on a 1-core
// host — the speedup below is pipeline parallelism, not SMP luck.
type deviceAlg struct {
	core.Algorithm
	trainTime time.Duration
}

func (d *deviceAlg) TryTrain() (core.TrainResult, bool, error) {
	res, ok, err := d.Algorithm.TryTrain()
	if ok && err == nil {
		time.Sleep(d.trainTime)
	}
	return res, ok, err
}

// RestoreWeights forwards the broadcast fragment's aggregate echo so the
// wrapped replica tracks the committed version like an unwrapped one.
func (d *deviceAlg) RestoreWeights(version int64, data []float32) error {
	if r, ok := d.Algorithm.(core.WeightsRestorer); ok {
		return r.RestoreWeights(version, data)
	}
	return nil
}

// runFragmentsIMPALA runs one IMPALA deployment under the given topology
// and returns its wall duration.
func runFragmentsIMPALA(b *testing.B, topo core.Topology) time.Duration {
	spec := algorithm.SpecFor(env.NewCartPole(0))
	spec.Hidden = []int{16}
	const trainTime = 4 * time.Millisecond
	algF := func(seed int64) (core.Algorithm, error) {
		alg := algorithm.NewIMPALA(spec, algorithm.DefaultIMPALAConfig(), seed)
		return &deviceAlg{Algorithm: alg, trainTime: trainTime}, nil
	}
	agF := func(id int32, seed int64) (core.Agent, error) {
		runner := algorithm.NewEnvRunner(env.NewCartPole(seed), spec)
		return algorithm.NewIMPALAAgent(spec, runner, seed), nil
	}
	cfg := core.Config{
		NumExplorers: 8,
		RolloutLen:   48,
		MaxSteps:     4800,
		MaxDuration:  2 * time.Minute,
		Topology:     topo,
	}
	start := time.Now()
	if _, err := core.Run(cfg, algF, agF, 1); err != nil {
		b.Fatal(err)
	}
	return time.Since(start)
}

// benchFragmentsIMPALA2v1 measures the learn-fragment replication win: the
// same device-time-bound IMPALA deployment run fused (the seed's single
// learner) and as a 2-replica fragment topology, reporting the duration
// ratio as "speedup". With training the bottleneck, two learn fragments
// drain the rollout stream in roughly half the device time, so the ratio
// must stay above 1 — the CI gate catches the fragment runtime losing its
// overlap (e.g. the sampler serializing dispatch behind a slow replica).
func benchFragmentsIMPALA2v1(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		fused := runFragmentsIMPALA(b, core.Topology{})
		frag := runFragmentsIMPALA(b, core.ReplicatedTopology(2))
		ratio = float64(fused) / float64(frag)
	}
	b.ReportMetric(ratio, "speedup")
}

// benchFragmentsCheckpoint measures one fragment-set checkpoint round trip
// (broadcaster aggregate plus two replicas, 100k parameters each) — the
// periodic save the broadcast fragment performs while training, plus the
// restore a resumed session performs once.
func benchFragmentsCheckpoint(b *testing.B) {
	weights := make([]float32, 100_000)
	for i := range weights {
		weights[i] = float32(i) * 0.25
	}
	states := []checkpoint.FragmentState{
		{Name: core.BroadcastName, State: checkpoint.State{Version: 7, Weights: weights}},
		{Name: core.LearnName(0), State: checkpoint.State{Version: 7, Weights: weights}},
		{Name: core.LearnName(1), State: checkpoint.State{Version: 6, Weights: weights}},
	}
	path := filepath.Join(b.TempDir(), "frag.ckpt")
	b.SetBytes(int64(3 * 4 * len(weights)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := checkpoint.SaveFragments(path, states); err != nil {
			b.Fatal(err)
		}
		if _, err := checkpoint.LoadFragments(path); err != nil {
			b.Fatal(err)
		}
	}
}
