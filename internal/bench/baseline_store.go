package bench

import (
	"fmt"
	"sync"
	"time"

	"xingtian/internal/objectstore"
)

// mutexStore is the pre-sharding object store frozen as a benchmark
// baseline: one global mutex guarding the ID counter, the object map, and
// the stats, and a time.Now() call on every Put, exactly as the store
// looked before the sharded rewrite. It exists only so the store contention
// sweep can report the sharded store's speedup against the design it
// replaced; production code must use objectstore.Store.
type mutexStore struct {
	mu      sync.Mutex
	next    objectstore.ID
	objects map[objectstore.ID]*mutexEntry
}

type mutexEntry struct {
	data    []byte
	refs    int
	created time.Time
}

func newMutexStore() *mutexStore {
	return &mutexStore{objects: make(map[objectstore.ID]*mutexEntry)}
}

func (s *mutexStore) Put(data []byte, refs int) objectstore.ID {
	if refs < 1 {
		refs = 1
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.next++
	id := s.next
	s.objects[id] = &mutexEntry{data: data, refs: refs, created: time.Now()}
	return id
}

func (s *mutexStore) Get(id objectstore.ID) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.objects[id]
	if !ok {
		return nil, fmt.Errorf("get %d: %w", id, objectstore.ErrNotFound)
	}
	return e.data, nil
}

func (s *mutexStore) Pin(id objectstore.ID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.objects[id]
	if !ok {
		return fmt.Errorf("pin %d: %w", id, objectstore.ErrNotFound)
	}
	e.refs++
	return nil
}

func (s *mutexStore) Release(id objectstore.ID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.objects[id]
	if !ok {
		return fmt.Errorf("release %d: %w", id, objectstore.ErrNotFound)
	}
	e.refs--
	if e.refs <= 0 {
		delete(s.objects, id)
	}
	return nil
}
