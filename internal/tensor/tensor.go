// Package tensor provides a small dense float32 tensor library used by the
// neural-network substrate.
//
// It supports the operations needed to implement and train the policy/value
// networks of DQN, PPO, and IMPALA: elementwise arithmetic, matrix products,
// row reductions, softmax, and deterministic random initialization. All
// randomness flows through an explicit *rand.Rand so training runs are
// reproducible.
package tensor

import (
	"fmt"
	"math"
	"math/rand"
)

// Tensor is a dense row-major float32 matrix or vector. A Tensor with
// Rows==1 behaves as a vector of length Cols.
type Tensor struct {
	// Rows and Cols describe the 2-D shape. Data has length Rows*Cols.
	Rows, Cols int
	// Data is the row-major backing storage.
	Data []float32
}

// New returns a zero tensor of the given shape.
func New(rows, cols int) *Tensor {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: negative shape %dx%d", rows, cols))
	}
	return &Tensor{Rows: rows, Cols: cols, Data: make([]float32, rows*cols)}
}

// FromSlice wraps data (taking ownership) as a rows×cols tensor.
func FromSlice(rows, cols int, data []float32) *Tensor {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("tensor: data length %d does not match %dx%d", len(data), rows, cols))
	}
	return &Tensor{Rows: rows, Cols: cols, Data: data}
}

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	out := New(t.Rows, t.Cols)
	copy(out.Data, t.Data)
	return out
}

// At returns element (r, c).
func (t *Tensor) At(r, c int) float32 { return t.Data[r*t.Cols+c] }

// Set assigns element (r, c).
func (t *Tensor) Set(r, c int, v float32) { t.Data[r*t.Cols+c] = v }

// Row returns a view (shared storage) of row r as a 1×Cols tensor.
func (t *Tensor) Row(r int) *Tensor {
	return &Tensor{Rows: 1, Cols: t.Cols, Data: t.Data[r*t.Cols : (r+1)*t.Cols]}
}

// Zero sets all elements to 0 in place.
func (t *Tensor) Zero() {
	for i := range t.Data {
		t.Data[i] = 0
	}
}

// Fill sets all elements to v in place.
func (t *Tensor) Fill(v float32) {
	for i := range t.Data {
		t.Data[i] = v
	}
}

// Randn fills the tensor with N(0, std²) samples from rng.
func (t *Tensor) Randn(rng *rand.Rand, std float64) {
	for i := range t.Data {
		t.Data[i] = float32(rng.NormFloat64() * std)
	}
}

// XavierInit fills the tensor with the Glorot-uniform distribution for a
// layer with the given fan-in and fan-out.
func (t *Tensor) XavierInit(rng *rand.Rand, fanIn, fanOut int) {
	limit := math.Sqrt(6.0 / float64(fanIn+fanOut))
	for i := range t.Data {
		t.Data[i] = float32((rng.Float64()*2 - 1) * limit)
	}
}

func sameShape(a, b *Tensor) {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: shape mismatch %dx%d vs %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
}

// AddInPlace adds b elementwise into t.
func (t *Tensor) AddInPlace(b *Tensor) {
	sameShape(t, b)
	for i, v := range b.Data {
		t.Data[i] += v
	}
}

// SubInPlace subtracts b elementwise from t.
func (t *Tensor) SubInPlace(b *Tensor) {
	sameShape(t, b)
	for i, v := range b.Data {
		t.Data[i] -= v
	}
}

// MulInPlace multiplies t elementwise by b.
func (t *Tensor) MulInPlace(b *Tensor) {
	sameShape(t, b)
	for i, v := range b.Data {
		t.Data[i] *= v
	}
}

// ScaleInPlace multiplies every element by s.
func (t *Tensor) ScaleInPlace(s float32) {
	for i := range t.Data {
		t.Data[i] *= s
	}
}

// AddScaled adds s*b into t (axpy).
func (t *Tensor) AddScaled(b *Tensor, s float32) {
	sameShape(t, b)
	for i, v := range b.Data {
		t.Data[i] += s * v
	}
}

// AddRowVector adds the 1×Cols vector v to every row of t (bias add).
func (t *Tensor) AddRowVector(v *Tensor) {
	if v.Cols != t.Cols {
		panic(fmt.Sprintf("tensor: row vector length %d != cols %d", v.Cols, t.Cols))
	}
	for r := 0; r < t.Rows; r++ {
		row := t.Data[r*t.Cols : (r+1)*t.Cols]
		for c, b := range v.Data[:t.Cols] {
			row[c] += b
		}
	}
}

// MatMul computes a@b into a new (a.Rows × b.Cols) tensor.
func MatMul(a, b *Tensor) *Tensor {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: matmul %dx%d @ %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := New(a.Rows, b.Cols)
	matMulInto(out, a, b)
	return out
}

// matMulInto computes out = a@b with an ikj loop order for cache locality.
func matMulInto(out, a, b *Tensor) {
	n, k, m := a.Rows, a.Cols, b.Cols
	for i := 0; i < n; i++ {
		arow := a.Data[i*k : (i+1)*k]
		orow := out.Data[i*m : (i+1)*m]
		for p := 0; p < k; p++ {
			av := arow[p]
			if av == 0 {
				continue
			}
			brow := b.Data[p*m : (p+1)*m]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
}

// MatMulTransposeB computes a@bᵀ into a new (a.Rows × b.Rows) tensor.
func MatMulTransposeB(a, b *Tensor) *Tensor {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: matmul-T %dx%d @ (%dx%d)T", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := New(a.Rows, b.Rows)
	for i := 0; i < a.Rows; i++ {
		arow := a.Data[i*a.Cols : (i+1)*a.Cols]
		for j := 0; j < b.Rows; j++ {
			brow := b.Data[j*b.Cols : (j+1)*b.Cols]
			var sum float32
			for p, av := range arow {
				sum += av * brow[p]
			}
			out.Data[i*b.Rows+j] = sum
		}
	}
	return out
}

// MatMulTransposeA computes aᵀ@b into a new (a.Cols × b.Cols) tensor.
func MatMulTransposeA(a, b *Tensor) *Tensor {
	if a.Rows != b.Rows {
		panic(fmt.Sprintf("tensor: T-matmul (%dx%d)T @ %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := New(a.Cols, b.Cols)
	for r := 0; r < a.Rows; r++ {
		arow := a.Data[r*a.Cols : (r+1)*a.Cols]
		brow := b.Data[r*b.Cols : (r+1)*b.Cols]
		for i, av := range arow {
			if av == 0 {
				continue
			}
			orow := out.Data[i*b.Cols : (i+1)*b.Cols]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return out
}

// Transpose returns a new transposed tensor.
func (t *Tensor) Transpose() *Tensor {
	out := New(t.Cols, t.Rows)
	for r := 0; r < t.Rows; r++ {
		for c := 0; c < t.Cols; c++ {
			out.Data[c*t.Rows+r] = t.Data[r*t.Cols+c]
		}
	}
	return out
}

// Sum returns the sum of all elements.
func (t *Tensor) Sum() float32 {
	var s float32
	for _, v := range t.Data {
		s += v
	}
	return s
}

// Mean returns the arithmetic mean of all elements (0 for empty tensors).
func (t *Tensor) Mean() float32 {
	if len(t.Data) == 0 {
		return 0
	}
	return t.Sum() / float32(len(t.Data))
}

// ArgMaxRow returns the column index of the maximum element in row r.
func (t *Tensor) ArgMaxRow(r int) int {
	row := t.Data[r*t.Cols : (r+1)*t.Cols]
	best := 0
	for c, v := range row {
		if v > row[best] {
			best = c
		}
	}
	return best
}

// MaxRow returns the maximum element in row r.
func (t *Tensor) MaxRow(r int) float32 {
	return t.Data[r*t.Cols+t.ArgMaxRow(r)]
}

// SoftmaxRows applies a numerically stable softmax to each row in place.
func (t *Tensor) SoftmaxRows() {
	for r := 0; r < t.Rows; r++ {
		row := t.Data[r*t.Cols : (r+1)*t.Cols]
		maxV := row[0]
		for _, v := range row[1:] {
			if v > maxV {
				maxV = v
			}
		}
		var sum float32
		for c, v := range row {
			e := float32(math.Exp(float64(v - maxV)))
			row[c] = e
			sum += e
		}
		inv := 1 / sum
		for c := range row {
			row[c] *= inv
		}
	}
}

// LogSoftmaxRows applies a numerically stable log-softmax to each row in
// place.
func (t *Tensor) LogSoftmaxRows() {
	for r := 0; r < t.Rows; r++ {
		row := t.Data[r*t.Cols : (r+1)*t.Cols]
		maxV := row[0]
		for _, v := range row[1:] {
			if v > maxV {
				maxV = v
			}
		}
		var sum float64
		for _, v := range row {
			sum += math.Exp(float64(v - maxV))
		}
		lse := maxV + float32(math.Log(sum))
		for c := range row {
			row[c] -= lse
		}
	}
}

// ClipInPlace clamps every element into [lo, hi].
func (t *Tensor) ClipInPlace(lo, hi float32) {
	for i, v := range t.Data {
		if v < lo {
			t.Data[i] = lo
		} else if v > hi {
			t.Data[i] = hi
		}
	}
}

// Apply replaces every element x with f(x).
func (t *Tensor) Apply(f func(float32) float32) {
	for i, v := range t.Data {
		t.Data[i] = f(v)
	}
}

// Norm returns the L2 norm of all elements.
func (t *Tensor) Norm() float32 {
	var s float64
	for _, v := range t.Data {
		s += float64(v) * float64(v)
	}
	return float32(math.Sqrt(s))
}

// GatherRows returns a new tensor whose rows are t's rows at the given
// indices.
func (t *Tensor) GatherRows(indices []int) *Tensor {
	out := New(len(indices), t.Cols)
	for i, idx := range indices {
		copy(out.Data[i*t.Cols:(i+1)*t.Cols], t.Data[idx*t.Cols:(idx+1)*t.Cols])
	}
	return out
}

// OneHot returns an n×classes tensor with row i set at labels[i].
func OneHot(labels []int, classes int) *Tensor {
	out := New(len(labels), classes)
	for i, l := range labels {
		out.Data[i*classes+l] = 1
	}
	return out
}

// Stack concatenates equal-width row vectors into one matrix.
func Stack(rows []*Tensor) *Tensor {
	if len(rows) == 0 {
		return New(0, 0)
	}
	cols := rows[0].Cols
	out := New(len(rows), cols)
	for i, r := range rows {
		if r.Rows != 1 || r.Cols != cols {
			panic(fmt.Sprintf("tensor: stack row %d has shape %dx%d, want 1x%d", i, r.Rows, r.Cols, cols))
		}
		copy(out.Data[i*cols:(i+1)*cols], r.Data)
	}
	return out
}
