package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float32) bool {
	return float32(math.Abs(float64(a-b))) <= eps
}

func TestNewShapeAndZero(t *testing.T) {
	m := New(3, 4)
	if m.Rows != 3 || m.Cols != 4 || len(m.Data) != 12 {
		t.Fatalf("New(3,4) = %dx%d len %d", m.Rows, m.Cols, len(m.Data))
	}
	for _, v := range m.Data {
		if v != 0 {
			t.Fatal("New tensor not zeroed")
		}
	}
}

func TestFromSlicePanicsOnBadLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("FromSlice with wrong length did not panic")
		}
	}()
	FromSlice(2, 3, make([]float32, 5))
}

func TestAtSetRow(t *testing.T) {
	m := New(2, 3)
	m.Set(1, 2, 7)
	if m.At(1, 2) != 7 {
		t.Fatalf("At(1,2) = %v, want 7", m.At(1, 2))
	}
	row := m.Row(1)
	if row.Cols != 3 || row.Data[2] != 7 {
		t.Fatalf("Row(1) = %+v", row)
	}
	row.Data[0] = 9 // view shares storage
	if m.At(1, 0) != 9 {
		t.Fatal("Row is not a view")
	}
}

func TestCloneIndependent(t *testing.T) {
	m := FromSlice(1, 3, []float32{1, 2, 3})
	c := m.Clone()
	c.Data[0] = 100
	if m.Data[0] != 1 {
		t.Fatal("Clone shares storage")
	}
}

func TestElementwiseOps(t *testing.T) {
	a := FromSlice(1, 3, []float32{1, 2, 3})
	b := FromSlice(1, 3, []float32{10, 20, 30})
	a.AddInPlace(b)
	if a.Data[2] != 33 {
		t.Fatalf("AddInPlace: %v", a.Data)
	}
	a.SubInPlace(b)
	if a.Data[0] != 1 {
		t.Fatalf("SubInPlace: %v", a.Data)
	}
	a.MulInPlace(b)
	if a.Data[1] != 40 {
		t.Fatalf("MulInPlace: %v", a.Data)
	}
	a.ScaleInPlace(0.5)
	if a.Data[1] != 20 {
		t.Fatalf("ScaleInPlace: %v", a.Data)
	}
	a.AddScaled(b, 2)
	if a.Data[0] != 25 {
		t.Fatalf("AddScaled: %v", a.Data)
	}
}

func TestShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("AddInPlace with mismatched shapes did not panic")
		}
	}()
	New(1, 3).AddInPlace(New(2, 3))
}

func TestAddRowVector(t *testing.T) {
	m := FromSlice(2, 3, []float32{1, 2, 3, 4, 5, 6})
	bias := FromSlice(1, 3, []float32{10, 20, 30})
	m.AddRowVector(bias)
	want := []float32{11, 22, 33, 14, 25, 36}
	for i, w := range want {
		if m.Data[i] != w {
			t.Fatalf("AddRowVector[%d] = %v, want %v", i, m.Data[i], w)
		}
	}
}

func TestMatMul(t *testing.T) {
	a := FromSlice(2, 3, []float32{1, 2, 3, 4, 5, 6})
	b := FromSlice(3, 2, []float32{7, 8, 9, 10, 11, 12})
	c := MatMul(a, b)
	want := []float32{58, 64, 139, 154}
	for i, w := range want {
		if c.Data[i] != w {
			t.Fatalf("MatMul[%d] = %v, want %v", i, c.Data[i], w)
		}
	}
}

func TestMatMulTransposeBMatchesExplicit(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := New(4, 6)
	b := New(5, 6)
	a.Randn(rng, 1)
	b.Randn(rng, 1)
	got := MatMulTransposeB(a, b)
	want := MatMul(a, b.Transpose())
	for i := range want.Data {
		if !almostEqual(got.Data[i], want.Data[i], 1e-4) {
			t.Fatalf("MatMulTransposeB[%d] = %v, want %v", i, got.Data[i], want.Data[i])
		}
	}
}

func TestMatMulTransposeAMatchesExplicit(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := New(5, 4)
	b := New(5, 3)
	a.Randn(rng, 1)
	b.Randn(rng, 1)
	got := MatMulTransposeA(a, b)
	want := MatMul(a.Transpose(), b)
	for i := range want.Data {
		if !almostEqual(got.Data[i], want.Data[i], 1e-4) {
			t.Fatalf("MatMulTransposeA[%d] = %v, want %v", i, got.Data[i], want.Data[i])
		}
	}
}

func TestTransposeInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := New(3, 7)
	m.Randn(rng, 1)
	tt := m.Transpose().Transpose()
	for i := range m.Data {
		if m.Data[i] != tt.Data[i] {
			t.Fatal("Transpose twice != identity")
		}
	}
}

func TestSumMeanNorm(t *testing.T) {
	m := FromSlice(1, 4, []float32{3, 4, 0, 0})
	if m.Sum() != 7 {
		t.Fatalf("Sum = %v", m.Sum())
	}
	if m.Mean() != 1.75 {
		t.Fatalf("Mean = %v", m.Mean())
	}
	if !almostEqual(m.Norm(), 5, 1e-6) {
		t.Fatalf("Norm = %v, want 5", m.Norm())
	}
	empty := New(0, 0)
	if empty.Mean() != 0 {
		t.Fatal("Mean of empty != 0")
	}
}

func TestArgMaxMaxRow(t *testing.T) {
	m := FromSlice(2, 3, []float32{1, 5, 2, 9, 0, 3})
	if m.ArgMaxRow(0) != 1 || m.ArgMaxRow(1) != 0 {
		t.Fatalf("ArgMaxRow = %d,%d", m.ArgMaxRow(0), m.ArgMaxRow(1))
	}
	if m.MaxRow(1) != 9 {
		t.Fatalf("MaxRow(1) = %v", m.MaxRow(1))
	}
}

func TestSoftmaxRows(t *testing.T) {
	m := FromSlice(2, 3, []float32{1, 2, 3, 1000, 1000, 1000})
	m.SoftmaxRows()
	var sum float32
	for c := 0; c < 3; c++ {
		sum += m.At(0, c)
	}
	if !almostEqual(sum, 1, 1e-5) {
		t.Fatalf("softmax row 0 sums to %v", sum)
	}
	if m.At(0, 2) <= m.At(0, 1) || m.At(0, 1) <= m.At(0, 0) {
		t.Fatal("softmax not monotone")
	}
	// Large equal logits must not produce NaN and must be uniform.
	for c := 0; c < 3; c++ {
		if !almostEqual(m.At(1, c), 1.0/3, 1e-5) {
			t.Fatalf("softmax of equal large logits = %v", m.At(1, c))
		}
	}
}

func TestLogSoftmaxConsistentWithSoftmax(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := New(3, 5)
	a.Randn(rng, 2)
	b := a.Clone()
	a.SoftmaxRows()
	b.LogSoftmaxRows()
	for i := range a.Data {
		if !almostEqual(float32(math.Log(float64(a.Data[i]))), b.Data[i], 1e-4) {
			t.Fatalf("log(softmax) != logsoftmax at %d: %v vs %v", i, math.Log(float64(a.Data[i])), b.Data[i])
		}
	}
}

func TestClipApply(t *testing.T) {
	m := FromSlice(1, 4, []float32{-5, 0.5, 2, 100})
	m.ClipInPlace(0, 1)
	want := []float32{0, 0.5, 1, 1}
	for i, w := range want {
		if m.Data[i] != w {
			t.Fatalf("Clip[%d] = %v, want %v", i, m.Data[i], w)
		}
	}
	m.Apply(func(x float32) float32 { return x * 2 })
	if m.Data[1] != 1 {
		t.Fatalf("Apply: %v", m.Data)
	}
}

func TestGatherRows(t *testing.T) {
	m := FromSlice(3, 2, []float32{1, 2, 3, 4, 5, 6})
	g := m.GatherRows([]int{2, 0, 2})
	want := []float32{5, 6, 1, 2, 5, 6}
	for i, w := range want {
		if g.Data[i] != w {
			t.Fatalf("GatherRows[%d] = %v, want %v", i, g.Data[i], w)
		}
	}
}

func TestOneHot(t *testing.T) {
	oh := OneHot([]int{1, 0, 2}, 3)
	want := []float32{0, 1, 0, 1, 0, 0, 0, 0, 1}
	for i, w := range want {
		if oh.Data[i] != w {
			t.Fatalf("OneHot[%d] = %v, want %v", i, oh.Data[i], w)
		}
	}
}

func TestStack(t *testing.T) {
	rows := []*Tensor{
		FromSlice(1, 2, []float32{1, 2}),
		FromSlice(1, 2, []float32{3, 4}),
	}
	s := Stack(rows)
	if s.Rows != 2 || s.Cols != 2 || s.At(1, 0) != 3 {
		t.Fatalf("Stack = %+v", s)
	}
	if empty := Stack(nil); empty.Rows != 0 {
		t.Fatalf("Stack(nil).Rows = %d", empty.Rows)
	}
}

func TestXavierInitBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := New(64, 64)
	m.XavierInit(rng, 64, 64)
	limit := float32(math.Sqrt(6.0 / 128.0))
	for _, v := range m.Data {
		if v < -limit || v > limit {
			t.Fatalf("Xavier sample %v outside ±%v", v, limit)
		}
	}
	if m.Norm() == 0 {
		t.Fatal("Xavier init produced all zeros")
	}
}

// TestPropertyMatMulDistributes: A@(B+C) == A@B + A@C within tolerance.
func TestPropertyMatMulDistributes(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b, c := New(3, 4), New(4, 2), New(4, 2)
		a.Randn(rng, 1)
		b.Randn(rng, 1)
		c.Randn(rng, 1)
		bc := b.Clone()
		bc.AddInPlace(c)
		left := MatMul(a, bc)
		right := MatMul(a, b)
		right.AddInPlace(MatMul(a, c))
		for i := range left.Data {
			if !almostEqual(left.Data[i], right.Data[i], 1e-3) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertySoftmaxRowsSumToOne for arbitrary logits.
func TestPropertySoftmaxRowsSumToOne(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := New(4, 6)
		m.Randn(rng, 10)
		m.SoftmaxRows()
		for r := 0; r < m.Rows; r++ {
			var sum float32
			for c := 0; c < m.Cols; c++ {
				v := m.At(r, c)
				if v < 0 || math.IsNaN(float64(v)) {
					return false
				}
				sum += v
			}
			if !almostEqual(sum, 1, 1e-4) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMatMul128(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	x := New(128, 128)
	y := New(128, 128)
	x.Randn(rng, 1)
	y.Randn(rng, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = MatMul(x, y)
	}
}
