package broker

import (
	"fmt"
	"testing"

	"xingtian/internal/message"
	"xingtian/internal/netsim"
	"xingtian/internal/serialize"
)

// treeCluster builds a learner machine plus n explorer machines with the
// given relay fanout, returning the learner port and the explorer ports.
func treeCluster(t *testing.T, n, fanout int) (*Cluster, *Port, []*Port) {
	t.Helper()
	net := netsim.New(netsim.Config{Bandwidth: 1 << 30, Latency: 0, TimeScale: 1})
	c := NewCluster(net)
	t.Cleanup(c.Stop)
	if _, err := c.AddBrokerCfg(0, Config{RelayFanout: fanout}); err != nil {
		t.Fatalf("AddBrokerCfg: %v", err)
	}
	learner, err := c.Register(0, "learner")
	if err != nil {
		t.Fatalf("Register learner: %v", err)
	}
	explorers := make([]*Port, n)
	for i := 0; i < n; i++ {
		if _, err := c.AddBrokerCfg(i+1, Config{RelayFanout: fanout}); err != nil {
			t.Fatalf("AddBrokerCfg %d: %v", i+1, err)
		}
		p, err := c.Register(i+1, fmt.Sprintf("explorer-%d", i))
		if err != nil {
			t.Fatalf("Register explorer-%d: %v", i, err)
		}
		explorers[i] = p
	}
	return c, learner, explorers
}

// TestRelayTreeDeliversToAllLeaves: a weights broadcast wider than the relay
// fanout reaches every explorer exactly once, with root egress cut to the
// number of relay groups and the refcount ledger balanced everywhere.
func TestRelayTreeDeliversToAllLeaves(t *testing.T) {
	const n = 9
	c, learner, explorers := treeCluster(t, n, 2)
	dst := make([]string, n)
	for i := range dst {
		dst[i] = fmt.Sprintf("explorer-%d", i)
	}
	w := &message.WeightsPayload{Version: 5, Data: make([]float32, 256)}
	m := message.New(message.TypeWeights, "learner", dst, w)
	m.Header.WeightsVersion = 5
	if err := learner.Send(m); err != nil {
		t.Fatalf("Send: %v", err)
	}
	for i, p := range explorers {
		got, err := p.Recv()
		if err != nil {
			t.Fatalf("explorer-%d Recv: %v", i, err)
		}
		if got.Body.(*message.WeightsPayload).Version != 5 {
			t.Fatalf("explorer-%d got wrong version", i)
		}
		if got.Header.WeightsVersion != 5 {
			t.Fatalf("explorer-%d header version = %d", i, got.Header.WeightsVersion)
		}
	}
	// Root sent ⌈√9⌉ = 3 frames instead of 9.
	root := c.Broker(0).Metrics()
	if root.BodiesForwarded != 3 {
		t.Fatalf("root forwarded %d frames, want 3 relay groups", root.BodiesForwarded)
	}
	// Some interior machine re-forwarded the frame onward.
	var relayed, relayExpired, privDrops int64
	for i := 0; i <= n; i++ {
		snap := c.Broker(i).Metrics()
		relayed += snap.BodiesRelayed
		relayExpired += snap.Drops.RelayExpired
		privDrops += snap.Drops.Total() - snap.Drops.ShedOldest - snap.Drops.StoreBudget
	}
	if relayed != n-3 {
		t.Fatalf("relayed bodies = %d, want %d (leaves minus relays)", relayed, n-3)
	}
	if relayExpired != 0 || privDrops != 0 {
		t.Fatalf("relayExpired=%d privileged drops=%d; tree must lose nothing", relayExpired, privDrops)
	}
	for i := 0; i <= n; i++ {
		if err := c.Broker(i).VerifyDrained(); err != nil {
			t.Fatalf("machine %d refcount leak: %v", i, err)
		}
	}
}

// TestRelayStarBelowFanout: broadcasts at or under the fanout threshold keep
// plain star routing (no relayed bodies anywhere).
func TestRelayStarBelowFanout(t *testing.T) {
	const n = 3
	c, learner, explorers := treeCluster(t, n, 4)
	dst := []string{"explorer-0", "explorer-1", "explorer-2"}
	w := &message.WeightsPayload{Version: 1, Data: make([]float32, 16)}
	if err := learner.Send(message.New(message.TypeWeights, "learner", dst, w)); err != nil {
		t.Fatalf("Send: %v", err)
	}
	for i, p := range explorers {
		if _, err := p.Recv(); err != nil {
			t.Fatalf("explorer-%d Recv: %v", i, err)
		}
	}
	root := c.Broker(0).Metrics()
	if root.BodiesForwarded != n {
		t.Fatalf("root forwarded %d, want %d (star)", root.BodiesForwarded, n)
	}
	for i := 0; i <= n; i++ {
		if r := c.Broker(i).Metrics().BodiesRelayed; r != 0 {
			t.Fatalf("machine %d relayed %d bodies below fanout", i, r)
		}
	}
}

// TestRelayIgnoresDroppableTraffic: rollout-class fan-out is never
// tree-routed even when wider than the fanout.
func TestRelayIgnoresDroppableTraffic(t *testing.T) {
	const n = 5
	c, learner, explorers := treeCluster(t, n, 2)
	dst := make([]string, n)
	for i := range dst {
		dst[i] = fmt.Sprintf("explorer-%d", i)
	}
	if err := learner.Send(message.New(message.TypeStats, "learner", dst,
		&message.StatsPayload{Node: "learner"})); err != nil {
		t.Fatalf("Send: %v", err)
	}
	for i, p := range explorers {
		if _, err := p.Recv(); err != nil {
			t.Fatalf("explorer-%d Recv: %v", i, err)
		}
	}
	if fwd := c.Broker(0).Metrics().BodiesForwarded; fwd != n {
		t.Fatalf("droppable broadcast forwarded %d frames, want star %d", fwd, n)
	}
}

// TestRelayTreeWeightsDelta: the delta payload type rides the tree too, and
// the BaseVersion/RelayHops header fields survive the hop.
func TestRelayTreeWeightsDelta(t *testing.T) {
	const n = 6
	_, learner, explorers := treeCluster(t, n, 2)
	dst := make([]string, n)
	for i := range dst {
		dst[i] = fmt.Sprintf("explorer-%d", i)
	}
	d := &message.WeightsDeltaPayload{Version: 8, BaseVersion: 7, NumParams: 4,
		Indices: []uint32{1}, Values: []float32{0.5}}
	m := message.New(message.TypeWeightsDelta, "learner", dst, d)
	m.Header.WeightsVersion = 8
	m.Header.BaseVersion = 7
	if err := learner.Send(m); err != nil {
		t.Fatalf("Send: %v", err)
	}
	for i, p := range explorers {
		got, err := p.Recv()
		if err != nil {
			t.Fatalf("explorer-%d Recv: %v", i, err)
		}
		body := got.Body.(*message.WeightsDeltaPayload)
		if body.Version != 8 || body.BaseVersion != 7 || body.Entries() != 1 {
			t.Fatalf("explorer-%d delta = %+v", i, body)
		}
		if got.Header.BaseVersion != 7 {
			t.Fatalf("explorer-%d header base = %d", i, got.Header.BaseVersion)
		}
		if got.Header.RelayHops != 0 {
			t.Fatalf("explorer-%d header leaked relay budget %d", i, got.Header.RelayHops)
		}
	}
}

// TestAckedWeightsTracking: rollout headers carry the explorer's weights
// version; the learner-side broker ledger records the latest, both for
// local sends and cross-machine injections, and keeps the last value (not
// the max) so restarts are visible.
func TestAckedWeightsTracking(t *testing.T) {
	c := fastCluster(t)
	if _, err := c.AddBroker(0, serialize.Compressor{}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddBroker(1, serialize.Compressor{}); err != nil {
		t.Fatal(err)
	}
	learner, err := c.Register(0, "learner")
	if err != nil {
		t.Fatal(err)
	}
	local, err := c.Register(0, "explorer-local")
	if err != nil {
		t.Fatal(err)
	}
	remote, err := c.Register(1, "explorer-remote")
	if err != nil {
		t.Fatal(err)
	}
	send := func(p *Port, src string, version int64) {
		t.Helper()
		b := &message.RolloutBody{ExplorerID: 0, WeightsVersion: version}
		m := message.New(message.TypeRollout, src, []string{"learner"}, b)
		m.Header.WeightsVersion = version
		if err := p.Send(m); err != nil {
			t.Fatalf("Send: %v", err)
		}
		if _, err := learner.Recv(); err != nil {
			t.Fatalf("Recv: %v", err)
		}
	}
	send(local, "explorer-local", 3)
	send(remote, "explorer-remote", 4)
	acked := learner.AckedWeights()
	if acked["explorer-local"] != 3 || acked["explorer-remote"] != 4 {
		t.Fatalf("acked = %v, want local=3 remote=4", acked)
	}
	// Regression (restart) is preserved, not masked by a max.
	send(remote, "explorer-remote", 0)
	if got := learner.AckedWeights()["explorer-remote"]; got != 0 {
		t.Fatalf("acked after regression = %d, want 0", got)
	}
}
