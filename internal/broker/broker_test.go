package broker

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"xingtian/internal/message"
	"xingtian/internal/netsim"
	"xingtian/internal/queue"
	"xingtian/internal/serialize"
)

func singleMachine(t *testing.T) *Broker {
	t.Helper()
	b := New(Config{MachineID: 0})
	t.Cleanup(b.Stop)
	return b
}

func dummyMsg(src string, dst []string, payload []byte) *message.Message {
	return message.New(message.TypeDummy, src, dst, &message.DummyPayload{Data: payload})
}

func TestSendRecvSingleDestination(t *testing.T) {
	b := singleMachine(t)
	sender, err := b.Register("explorer-0")
	if err != nil {
		t.Fatalf("Register: %v", err)
	}
	receiver, err := b.Register("learner")
	if err != nil {
		t.Fatalf("Register: %v", err)
	}
	payload := []byte("rollout bytes")
	if err := sender.Send(dummyMsg("explorer-0", []string{"learner"}, payload)); err != nil {
		t.Fatalf("Send: %v", err)
	}
	got, err := receiver.Recv()
	if err != nil {
		t.Fatalf("Recv: %v", err)
	}
	body, ok := got.Body.(*message.DummyPayload)
	if !ok {
		t.Fatalf("body type %T", got.Body)
	}
	if !bytes.Equal(body.Data, payload) {
		t.Fatal("payload mismatch")
	}
	if got.Header.Src != "explorer-0" {
		t.Fatalf("Src = %q", got.Header.Src)
	}
}

func TestBodyReleasedAfterDelivery(t *testing.T) {
	b := singleMachine(t)
	s, _ := b.Register("s")
	r, _ := b.Register("r")
	if err := s.Send(dummyMsg("s", []string{"r"}, make([]byte, 512))); err != nil {
		t.Fatalf("Send: %v", err)
	}
	if _, err := r.Recv(); err != nil {
		t.Fatalf("Recv: %v", err)
	}
	deadline := time.Now().Add(time.Second)
	for b.Store().Len() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("object store holds %d objects after delivery", b.Store().Len())
		}
		time.Sleep(time.Millisecond)
	}
}

func TestBroadcastToMultipleDestinations(t *testing.T) {
	b := singleMachine(t)
	learner, _ := b.Register("learner")
	var explorers []*Port
	for i := 0; i < 4; i++ {
		p, err := b.Register(fmt.Sprintf("explorer-%d", i))
		if err != nil {
			t.Fatalf("Register: %v", err)
		}
		explorers = append(explorers, p)
	}
	dst := []string{"explorer-0", "explorer-1", "explorer-2", "explorer-3"}
	w := &message.WeightsPayload{Version: 3, Data: []float32{1, 2, 3}}
	if err := learner.Send(message.New(message.TypeWeights, "learner", dst, w)); err != nil {
		t.Fatalf("Send: %v", err)
	}
	for i, p := range explorers {
		got, err := p.Recv()
		if err != nil {
			t.Fatalf("explorer %d Recv: %v", i, err)
		}
		wp := got.Body.(*message.WeightsPayload)
		if wp.Version != 3 || len(wp.Data) != 3 {
			t.Fatalf("explorer %d got %+v", i, wp)
		}
	}
	// All references released exactly once.
	deadline := time.Now().Add(time.Second)
	for b.Store().Len() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("store still holds %d objects after broadcast consumed", b.Store().Len())
		}
		time.Sleep(time.Millisecond)
	}
}

func TestUnknownDestinationDoesNotLeak(t *testing.T) {
	b := singleMachine(t)
	s, _ := b.Register("s")
	if err := s.Send(dummyMsg("s", []string{"ghost"}, make([]byte, 100))); err != nil {
		t.Fatalf("Send: %v", err)
	}
	deadline := time.Now().Add(time.Second)
	for b.Store().Len() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("message to unknown destination leaked in store")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestRegisterDuplicate(t *testing.T) {
	b := singleMachine(t)
	if _, err := b.Register("x"); err != nil {
		t.Fatalf("Register: %v", err)
	}
	if _, err := b.Register("x"); err == nil {
		t.Fatal("duplicate Register did not error")
	}
}

func TestSendUnsupportedBody(t *testing.T) {
	b := singleMachine(t)
	s, _ := b.Register("s")
	if _, err := b.Register("r"); err != nil {
		t.Fatalf("Register: %v", err)
	}
	m := message.New(message.TypeDummy, "s", []string{"r"}, 42)
	if err := s.Send(m); err == nil {
		t.Fatal("Send with unsupported body did not error")
	}
}

func TestStopUnblocksReceivers(t *testing.T) {
	b := New(Config{MachineID: 0})
	r, _ := b.Register("r")
	done := make(chan error, 1)
	go func() {
		_, err := r.Recv()
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	b.Stop()
	timer := time.NewTimer(time.Second)
	defer timer.Stop()
	select {
	case err := <-done:
		if !errors.Is(err, queue.ErrClosed) {
			t.Fatalf("Recv after Stop = %v, want ErrClosed", err)
		}
	case <-timer.C:
		t.Fatal("Recv did not unblock after Stop")
	}
	b.Stop() // idempotent
}

func TestCompressionAppliedAboveThreshold(t *testing.T) {
	b := New(Config{MachineID: 0, Compressor: serialize.Compressor{Threshold: 1024}})
	defer b.Stop()
	s, _ := b.Register("s")
	r, _ := b.Register("r")
	payload := bytes.Repeat([]byte("abcd"), 4096) // compressible 16 KB
	if err := s.Send(dummyMsg("s", []string{"r"}, payload)); err != nil {
		t.Fatalf("Send: %v", err)
	}
	got, err := r.Recv()
	if err != nil {
		t.Fatalf("Recv: %v", err)
	}
	if !got.Header.Compressed {
		t.Fatal("16 KB compressible body not compressed with 1 KB threshold")
	}
	if got.Header.BodySize >= len(payload) {
		t.Fatalf("BodySize = %d, want < %d", got.Header.BodySize, len(payload))
	}
	if !bytes.Equal(got.Body.(*message.DummyPayload).Data, payload) {
		t.Fatal("payload corrupted by compression")
	}
}

func TestConcurrentSendersOneReceiver(t *testing.T) {
	b := singleMachine(t)
	const senders = 8
	const perSender = 50
	receiver, _ := b.Register("learner")
	var wg sync.WaitGroup
	for i := 0; i < senders; i++ {
		name := fmt.Sprintf("explorer-%d", i)
		p, err := b.Register(name)
		if err != nil {
			t.Fatalf("Register: %v", err)
		}
		wg.Add(1)
		go func(p *Port, name string) {
			defer wg.Done()
			for j := 0; j < perSender; j++ {
				if err := p.Send(dummyMsg(name, []string{"learner"}, []byte(name))); err != nil {
					t.Errorf("Send: %v", err)
					return
				}
			}
		}(p, name)
	}
	counts := make(map[string]int)
	for i := 0; i < senders*perSender; i++ {
		got, err := receiver.Recv()
		if err != nil {
			t.Fatalf("Recv %d: %v", i, err)
		}
		counts[got.Header.Src]++
	}
	wg.Wait()
	for name, c := range counts {
		if c != perSender {
			t.Fatalf("received %d from %s, want %d", c, name, perSender)
		}
	}
}

// Cluster (multi-machine) tests ----------------------------------------------

func fastCluster(t *testing.T) *Cluster {
	t.Helper()
	net := netsim.New(netsim.Config{Bandwidth: 1 << 30, Latency: 0, TimeScale: 1})
	c := NewCluster(net)
	t.Cleanup(c.Stop)
	return c
}

func TestClusterCrossMachineDelivery(t *testing.T) {
	c := fastCluster(t)
	if _, err := c.AddBroker(0, serialize.Compressor{}); err != nil {
		t.Fatalf("AddBroker: %v", err)
	}
	if _, err := c.AddBroker(1, serialize.Compressor{}); err != nil {
		t.Fatalf("AddBroker: %v", err)
	}
	s, err := c.Register(0, "explorer-0")
	if err != nil {
		t.Fatalf("Register: %v", err)
	}
	r, err := c.Register(1, "learner")
	if err != nil {
		t.Fatalf("Register: %v", err)
	}
	payload := bytes.Repeat([]byte{7}, 10_000)
	if err := s.Send(dummyMsg("explorer-0", []string{"learner"}, payload)); err != nil {
		t.Fatalf("Send: %v", err)
	}
	got, err := r.Recv()
	if err != nil {
		t.Fatalf("Recv: %v", err)
	}
	if !bytes.Equal(got.Body.(*message.DummyPayload).Data, payload) {
		t.Fatal("cross-machine payload mismatch")
	}
	if c.Network().BytesSent(0) == 0 {
		t.Fatal("cross-machine transfer did not use the NIC")
	}
}

func TestClusterMixedLocalRemoteBroadcast(t *testing.T) {
	c := fastCluster(t)
	if _, err := c.AddBroker(0, serialize.Compressor{}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddBroker(1, serialize.Compressor{}); err != nil {
		t.Fatal(err)
	}
	learner, err := c.Register(0, "learner")
	if err != nil {
		t.Fatal(err)
	}
	local, err := c.Register(0, "explorer-0")
	if err != nil {
		t.Fatal(err)
	}
	remote, err := c.Register(1, "explorer-1")
	if err != nil {
		t.Fatal(err)
	}
	w := &message.WeightsPayload{Version: 9, Data: make([]float32, 100)}
	if err := learner.Send(message.New(message.TypeWeights, "learner",
		[]string{"explorer-0", "explorer-1"}, w)); err != nil {
		t.Fatalf("Send: %v", err)
	}
	for _, p := range []*Port{local, remote} {
		got, err := p.Recv()
		if err != nil {
			t.Fatalf("%s Recv: %v", p.Name(), err)
		}
		if got.Body.(*message.WeightsPayload).Version != 9 {
			t.Fatalf("%s got wrong weights", p.Name())
		}
	}
	// Remote copy should have crossed machine 0 -> 1 exactly once.
	if sent := c.Network().BytesSent(0); sent < 400 {
		t.Fatalf("BytesSent(0) = %d; expected one weights transfer", sent)
	}
}

func TestClusterIntraMachineBypassesNIC(t *testing.T) {
	c := fastCluster(t)
	if _, err := c.AddBroker(0, serialize.Compressor{}); err != nil {
		t.Fatal(err)
	}
	s, err := c.Register(0, "a")
	if err != nil {
		t.Fatal(err)
	}
	r, err := c.Register(0, "b")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Send(dummyMsg("a", []string{"b"}, make([]byte, 100_000))); err != nil {
		t.Fatalf("Send: %v", err)
	}
	if _, err := r.Recv(); err != nil {
		t.Fatalf("Recv: %v", err)
	}
	if c.Network().BytesSent(0) != 0 {
		t.Fatal("intra-machine message used the NIC")
	}
}

func TestClusterDuplicateNameRejected(t *testing.T) {
	c := fastCluster(t)
	if _, err := c.AddBroker(0, serialize.Compressor{}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddBroker(1, serialize.Compressor{}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Register(0, "learner"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Register(1, "learner"); err == nil {
		t.Fatal("cluster accepted duplicate client name on another machine")
	}
}

func TestClusterUnknownMachine(t *testing.T) {
	c := fastCluster(t)
	if _, err := c.Register(5, "x"); err == nil {
		t.Fatal("Register on unknown machine did not error")
	}
	if _, err := c.AddBroker(0, serialize.Compressor{}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddBroker(0, serialize.Compressor{}); err == nil {
		t.Fatal("duplicate AddBroker did not error")
	}
}

func BenchmarkSendRecvLocal64KB(b *testing.B) {
	br := New(Config{MachineID: 0})
	defer br.Stop()
	s, err := br.Register("s")
	if err != nil {
		b.Fatal(err)
	}
	r, err := br.Register("r")
	if err != nil {
		b.Fatal(err)
	}
	payload := make([]byte, 64<<10)
	b.SetBytes(int64(len(payload)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Send(dummyMsg("s", []string{"r"}, payload)); err != nil {
			b.Fatal(err)
		}
		if _, err := r.Recv(); err != nil {
			b.Fatal(err)
		}
	}
}

func TestTryRecvEmptyAndAfterSend(t *testing.T) {
	b := singleMachine(t)
	s, _ := b.Register("s")
	r, _ := b.Register("r")
	if _, err := r.TryRecv(); !errors.Is(err, queue.ErrEmpty) {
		t.Fatalf("TryRecv on empty = %v, want ErrEmpty", err)
	}
	if err := s.Send(dummyMsg("s", []string{"r"}, []byte("x"))); err != nil {
		t.Fatalf("Send: %v", err)
	}
	deadline := time.Now().Add(time.Second)
	for {
		m, err := r.TryRecv()
		if err == nil {
			if string(m.Body.(*message.DummyPayload).Data) != "x" {
				t.Fatal("wrong payload")
			}
			return
		}
		if !errors.Is(err, queue.ErrEmpty) {
			t.Fatalf("TryRecv: %v", err)
		}
		if time.Now().After(deadline) {
			t.Fatal("message never routed")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestUnregisterClosesQueue(t *testing.T) {
	b := singleMachine(t)
	r, _ := b.Register("r")
	done := make(chan error, 1)
	go func() {
		_, err := r.Recv()
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	b.Unregister("r")
	timer := time.NewTimer(time.Second)
	defer timer.Stop()
	select {
	case err := <-done:
		if !errors.Is(err, queue.ErrClosed) {
			t.Fatalf("Recv after Unregister = %v, want ErrClosed", err)
		}
	case <-timer.C:
		t.Fatal("Recv did not unblock after Unregister")
	}
	// The name is reusable afterwards.
	if _, err := b.Register("r"); err != nil {
		t.Fatalf("re-Register after Unregister: %v", err)
	}
}

func TestPortName(t *testing.T) {
	b := singleMachine(t)
	p, _ := b.Register("some-client")
	if p.Name() != "some-client" {
		t.Fatalf("Name = %q", p.Name())
	}
	if p.Pending() != 0 {
		t.Fatalf("Pending = %d", p.Pending())
	}
}
