package broker

import (
	"fmt"
	"sort"
	"sync"

	"xingtian/internal/message"
	"xingtian/internal/netsim"
	"xingtian/internal/serialize"
)

// Cluster wires brokers on several simulated machines into one deployment:
// it owns the global name→machine registry (the paper's "global fabrics")
// and forwards cross-machine traffic over a simulated network.
type Cluster struct {
	net *netsim.Network

	mu        sync.Mutex
	brokers   map[int]*Broker
	locations map[string]int
}

var (
	_ Remote  = (*Cluster)(nil)
	_ Locator = (*Cluster)(nil)
)

// NewCluster returns an empty cluster over the given simulated network
// (nil uses the paper's default 1 GbE parameters).
func NewCluster(net *netsim.Network) *Cluster {
	if net == nil {
		net = netsim.New(netsim.DefaultConfig())
	}
	return &Cluster{
		net:       net,
		brokers:   make(map[int]*Broker),
		locations: make(map[string]int),
	}
}

// AddBroker creates the broker for a machine. Compressor semantics follow
// broker.Config.
func (c *Cluster) AddBroker(machineID int, comp serialize.Compressor) (*Broker, error) {
	return c.AddBrokerCfg(machineID, Config{Compressor: comp})
}

// AddBrokerCfg creates the broker for a machine from a full Config (byte
// budget, shed depth, compressor). The cluster supplies MachineID, Remote,
// and Locator itself, overwriting whatever the caller set there.
func (c *Cluster) AddBrokerCfg(machineID int, cfg Config) (*Broker, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, exists := c.brokers[machineID]; exists {
		return nil, fmt.Errorf("broker: machine %d already has a broker", machineID)
	}
	cfg.MachineID = machineID
	cfg.Remote = c
	cfg.Locator = c
	b := New(cfg)
	c.brokers[machineID] = b
	return b, nil
}

// Register attaches a named client to the machine's broker and records its
// location in the global registry.
func (c *Cluster) Register(machineID int, name string) (*Port, error) {
	c.mu.Lock()
	b, ok := c.brokers[machineID]
	if !ok {
		c.mu.Unlock()
		return nil, fmt.Errorf("broker: no broker on machine %d", machineID)
	}
	if prev, dup := c.locations[name]; dup {
		c.mu.Unlock()
		return nil, fmt.Errorf("broker: client %q already registered on machine %d", name, prev)
	}
	c.locations[name] = machineID
	c.mu.Unlock()
	port, err := b.Register(name)
	if err != nil {
		c.mu.Lock()
		delete(c.locations, name)
		c.mu.Unlock()
		return nil, err
	}
	return port, nil
}

// Unregister detaches a named client from its machine's broker and removes
// it from the global registry, so the name can be registered again (explorer
// supervision re-creates a crashed explorer under its original name). It is
// a no-op for unknown names.
func (c *Cluster) Unregister(machineID int, name string) {
	c.mu.Lock()
	b := c.brokers[machineID]
	if m, ok := c.locations[name]; ok && m == machineID {
		delete(c.locations, name)
	}
	c.mu.Unlock()
	if b != nil {
		b.Unregister(name)
	}
}

// Locate implements Locator.
func (c *Cluster) Locate(name string) (int, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	m, ok := c.locations[name]
	return m, ok
}

// Forward implements Remote: it charges the simulated wire time for the
// framed body plus header overhead, then injects the message into the
// destination broker.
func (c *Cluster) Forward(srcMachine, dstMachine int, h *message.Header, framed []byte) error {
	c.mu.Lock()
	dst, ok := c.brokers[dstMachine]
	c.mu.Unlock()
	if !ok {
		return fmt.Errorf("broker: forward to unknown machine %d", dstMachine)
	}
	const headerOverhead = 64
	c.net.Transfer(srcMachine, dstMachine, len(framed)+headerOverhead)
	return dst.InjectRemote(h, framed)
}

// Network exposes the simulated network for byte accounting in experiments.
func (c *Cluster) Network() *netsim.Network { return c.net }

// Broker returns the broker serving a machine, or nil.
func (c *Cluster) Broker(machineID int) *Broker {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.brokers[machineID]
}

// Health snapshots channel-health metrics for every broker in the cluster,
// ordered by machine ID.
func (c *Cluster) Health() ClusterHealth {
	c.mu.Lock()
	ids := make([]int, 0, len(c.brokers))
	for id := range c.brokers {
		ids = append(ids, id)
	}
	byID := make(map[int]*Broker, len(c.brokers))
	for id, b := range c.brokers {
		byID[id] = b
	}
	c.mu.Unlock()
	sort.Ints(ids)
	var h ClusterHealth
	for _, id := range ids {
		h.Brokers = append(h.Brokers, byID[id].Metrics())
	}
	return h
}

// Stop shuts down every broker in the cluster.
func (c *Cluster) Stop() {
	c.mu.Lock()
	brokers := make([]*Broker, 0, len(c.brokers))
	for _, b := range c.brokers {
		brokers = append(brokers, b)
	}
	c.mu.Unlock()
	for _, b := range brokers {
		b.Stop()
	}
}
