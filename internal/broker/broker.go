// Package broker implements XingTian's broker process: the shared-memory
// communicator (object store + header queue), the per-client ID queues, and
// the algorithm-agnostic router that pushes every message toward its
// destinations the moment it is produced.
//
// The broker is deliberately ignorant of DRL semantics — it never inspects
// bodies, only header metadata — which is what makes the channel reusable
// across PPO, DQN, IMPALA, the dummy benchmark algorithm, and PBT broker
// sets. Cross-machine forwarding is delegated to a Remote implementation
// (an in-process simulated network or a real TCP fabric).
//
// # Refcount ownership
//
// Object-store references follow the contract documented in package
// objectstore: Port.Send pins one reference per resolved destination, the
// router hands each reference to an ID queue or forwarder, and whoever pops
// a header owns (and must release) its reference on every path, including
// decode errors and shutdown. Headers are never shared between
// destinations: the router and InjectRemote hand each receiver its own
// Header copy with Dst narrowed to that receiver, so concurrent workhorse
// threads never alias mutable header state.
//
// # Channel health
//
// Every broker keeps an always-on health ledger — traffic counters, drop
// accounting by reason, queue-depth gauges, object-store occupancy, and a
// send→recv latency reservoir — exposed via Broker.Metrics. Stop drains
// undelivered headers, releases their references, and records any object
// still live in LeakedAtStop; tests use VerifyDrained to turn refcount
// discipline into an assertion.
package broker

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"xingtian/internal/message"
	"xingtian/internal/objectstore"
	"xingtian/internal/queue"
	"xingtian/internal/serialize"
)

// ErrForwardRetrying marks a Remote.Forward failure as transient: the
// transport has taken its own copy of the frame and will retry it after
// reconnecting, so the broker records the transfer as retried rather than
// dropped. Transports wrap this sentinel (errors.Is) when they queue a frame
// for post-reconnect redelivery.
var ErrForwardRetrying = errors.New("broker: forward queued for retry after reconnect")

// Remote forwards a framed message toward a broker on another machine.
// Implementations model or implement the inter-machine data fabric.
type Remote interface {
	// Forward delivers the header and framed body to dstMachine's broker.
	// An error wrapping ErrForwardRetrying means the frame was accepted for
	// retry after a reconnect (transient); any other error is a permanent
	// drop of this transfer.
	Forward(srcMachine, dstMachine int, h *message.Header, framed []byte) error
}

// Broker is one machine's communication hub.
type Broker struct {
	machineID   int
	store       *objectstore.Store
	headerQ     *queue.Queue[*message.Header]
	compressor  serialize.Compressor
	remote      Remote
	locator     Locator
	health      *health
	shedDepth   int
	relayFanout int

	ackMu sync.Mutex
	acked map[string]int64 // last weights version seen on each source's rollouts
	// consumed is the consumption-side ack ledger: the highest dispatched
	// rollout header ID each learn replica has reported ingesting (via
	// fragment heartbeats). The sample fragment prunes its in-flight
	// retention ledger against it; everything at or below the acked ID is
	// safely trained-or-dropped and never needs re-dispatch.
	consumed map[string]uint64

	mu         sync.Mutex
	idQueues   map[string]*queue.Queue[*message.Header]
	forwarders map[int]*queue.Queue[forwardItem]

	wg         sync.WaitGroup
	routerDone chan struct{}
	stopped    bool
}

// forwardItem is one cross-machine transfer awaiting its ordered turn on
// the per-destination forwarder.
type forwardItem struct {
	header *message.Header
	framed []byte
	objID  objectstore.ID
}

// Locator resolves a client name to the machine hosting it.
type Locator interface {
	// Locate returns the machine ID for the named client and whether the
	// name is known.
	Locate(name string) (int, bool)
}

// Config parameterizes a broker.
type Config struct {
	// MachineID identifies the machine this broker serves.
	MachineID int
	// Compressor frames bodies entering the object store. The zero value
	// disables compression; use serialize.NewCompressor for the 1 MB
	// default.
	Compressor serialize.Compressor
	// Remote forwards cross-machine traffic; nil restricts the broker to
	// one machine.
	Remote Remote
	// Locator resolves destination names to machines; nil treats all names
	// as local.
	Locator Locator
	// StoreBudget bounds the object store to roughly this many live bytes
	// (see objectstore.WithBudget); 0 keeps the store unbounded. Under
	// backpressure droppable traffic is refused admission (TryPut) and
	// queued droppable headers are shed oldest-first, while weights/control
	// messages always get through.
	StoreBudget int64
	// ShedQueueDepth additionally sheds the oldest droppable header whenever
	// a destination queue reaches this depth, independent of the byte
	// budget; 0 disables depth-based shedding.
	ShedQueueDepth int
	// RelayFanout enables depth-2 tree routing for weight-class broadcasts:
	// when a weights/weights-delta message targets more than RelayFanout
	// remote machines, the router partitions them into √n relay groups and
	// sends each group's frame once, to its relay machine, which forwards it
	// onward (one hop, bounded by Header.RelayHops). 0 keeps star fan-out.
	RelayFanout int
}

// New starts a broker and its router goroutine.
func New(cfg Config) *Broker {
	b := &Broker{
		machineID:   cfg.MachineID,
		store:       objectstore.New(objectstore.WithBudget(cfg.StoreBudget)),
		headerQ:     queue.New[*message.Header](),
		shedDepth:   cfg.ShedQueueDepth,
		relayFanout: cfg.RelayFanout,
		compressor:  cfg.Compressor,
		remote:      cfg.Remote,
		locator:     cfg.Locator,
		health:      newHealth(),
		acked:       make(map[string]int64),
		consumed:    make(map[string]uint64),
		idQueues:    make(map[string]*queue.Queue[*message.Header]),
		forwarders:  make(map[int]*queue.Queue[forwardItem]),
		routerDone:  make(chan struct{}),
	}
	b.wg.Add(1)
	go func() {
		defer close(b.routerDone)
		b.route()
	}()
	return b
}

// MachineID returns the broker's machine.
func (b *Broker) MachineID() int { return b.machineID }

// Store exposes the shared-memory object store (for tests and stats).
func (b *Broker) Store() *objectstore.Store { return b.store }

// release drops one object-store reference, recording a failed release
// (double release / unknown ID) in the health ledger.
func (b *Broker) release(id objectstore.ID) {
	if err := b.store.Release(id); err != nil {
		b.health.releaseErrors.Add(1)
	}
}

// Register attaches a named client process and returns its Port. The name
// must be unique per broker.
func (b *Broker) Register(name string) (*Port, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.stopped {
		return nil, fmt.Errorf("broker: register %q on stopped broker", name)
	}
	if _, exists := b.idQueues[name]; exists {
		return nil, fmt.Errorf("broker: client %q already registered", name)
	}
	q := queue.New[*message.Header]()
	b.idQueues[name] = q
	return &Port{broker: b, name: name, idQueue: q}, nil
}

// Unregister detaches a client, closing its ID queue and reclaiming the
// references of any headers still undelivered in it.
func (b *Broker) Unregister(name string) {
	b.mu.Lock()
	q := b.idQueues[name]
	delete(b.idQueues, name)
	b.mu.Unlock()
	if q != nil {
		q.Close()
		b.drainIDQueue(q)
	}
}

func (b *Broker) idQueue(name string) *queue.Queue[*message.Header] {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.idQueues[name]
}

// localRemoteSplit partitions destinations into local names and the set of
// remote machines involved.
func (b *Broker) localRemoteSplit(dst []string) (local []string, remoteMachines map[int][]string) {
	for _, d := range dst {
		machine := b.machineID
		if b.locator != nil {
			if m, ok := b.locator.Locate(d); ok {
				machine = m
			}
		}
		if machine == b.machineID {
			local = append(local, d)
			continue
		}
		if remoteMachines == nil {
			remoteMachines = make(map[int][]string)
		}
		remoteMachines[machine] = append(remoteMachines[machine], d)
	}
	return local, remoteMachines
}

// route is the algorithm-agnostic router: it monitors the shared-memory
// communicator's header queue and dispatches each header to the ID queues
// of all destination processes (and to peer brokers for remote
// destinations). Each destination receives its own Header copy with Dst
// narrowed to that destination, so receivers never share mutable state.
func (b *Broker) route() {
	defer b.wg.Done()
	for {
		h, err := b.headerQ.Get()
		if err != nil {
			return // broker stopped
		}
		b.health.headersRouted.Add(1)
		local, remotes := b.localRemoteSplit(h.Dst)
		// The sender pinned exactly one reference; the authoritative
		// destination split happens here, once. Splitting in both Send and
		// route lets a registration move between the two calls (fragment
		// re-placement swaps names across machines mid-flight) and skews
		// the refcount ledger — consolidated destinations leak, dispersed
		// ones over-release. Pin up to the route-time count before any
		// consumer can release.
		need := len(local) + len(remotes)
		if need == 0 {
			// Every destination vanished since Send: drop silently, as
			// Send itself does for unreachable names.
			b.release(h.ObjectID)
			continue
		}
		for i := 1; i < need; i++ {
			// Cannot fail: this goroutine still holds the sender's pin.
			//lint:ignore refbalance each pinned reference is released by its consumer — the local Recv/drop paths or the remote forward ledger below
			_ = b.store.Pin(h.ObjectID)
		}

		for _, name := range local {
			q := b.idQueue(name)
			if q == nil {
				// Unknown local client: drop this destination's reference
				// so the body is not leaked.
				b.health.dropUnknownDst.Add(1)
				b.release(h.ObjectID)
				continue
			}
			if h.Type.Droppable() {
				// Under backpressure a new trajectory supersedes queued
				// ones: shed the oldest droppable headers first so the
				// receiver always sees the freshest data the budget allows.
				b.shedOldest(q)
			}
			hc := *h // per-destination copy: receivers must not alias
			hc.Dst = []string{name}
			if err := q.Put(&hc); err != nil {
				b.health.dropQueueClosed.Add(1)
				b.release(h.ObjectID)
			}
		}

		groups := b.relayGroups(h, remotes)
		for _, g := range groups {
			framed, err := b.store.Get(h.ObjectID)
			if err != nil {
				b.health.dropStoreMiss.Add(1)
				continue
			}
			if b.remote == nil {
				b.health.dropNoRemote.Add(1)
				b.release(h.ObjectID)
				continue
			}
			fh := *h // shallow copy; Dst narrowed to the target group
			fh.Dst = g.names
			fh.RelayHops = g.hops
			// Hand the transfer to the per-destination forwarder: transfers
			// to one machine stay ordered (so newer weights never lose to
			// older ones), while transfers to different machines — and all
			// local routing — overlap, the paper's aggressive push.
			fq := b.forwarder(g.machine)
			if fq == nil {
				b.health.dropQueueClosed.Add(1)
				b.release(h.ObjectID)
				continue
			}
			if h.Type.Droppable() {
				b.shedOldestForward(fq)
			}
			if fq.Put(forwardItem{header: &fh, framed: framed, objID: h.ObjectID}) != nil {
				b.health.dropQueueClosed.Add(1)
				b.release(h.ObjectID)
			}
		}
		// route pinned one reference per remote machine; tree routing
		// consumes one per relay group, so the folded-away machines' pins
		// must be returned here to keep the refcount ledger balanced.
		for i := len(groups); i < len(remotes); i++ {
			b.release(h.ObjectID)
		}
	}
}

// relayGroup is one cross-machine transfer unit: the frame goes to machine,
// addressed to names, with hops relay forwards remaining.
type relayGroup struct {
	machine int
	names   []string
	hops    uint8
}

// relayGroups maps the per-machine destination split to transfer units.
// Star routing (the default) yields one group per machine with no relay
// budget. For weight-class broadcasts wider than RelayFanout, machines are
// partitioned into ⌈√n⌉ groups: the first machine of each group relays the
// frame to the rest, cutting root egress from n frames to √n at the cost of
// one extra hop of latency for relayed leaves.
func (b *Broker) relayGroups(h *message.Header, remotes map[int][]string) []relayGroup {
	if len(remotes) == 0 {
		return nil
	}
	if b.relayFanout <= 0 || len(remotes) <= b.relayFanout || !h.Type.WeightsClass() {
		out := make([]relayGroup, 0, len(remotes))
		for machine, names := range remotes {
			out = append(out, relayGroup{machine: machine, names: names})
		}
		return out
	}
	machines := make([]int, 0, len(remotes))
	for m := range remotes {
		machines = append(machines, m)
	}
	sort.Ints(machines) // deterministic grouping keeps per-leaf paths stable
	n := len(machines)
	numGroups := int(math.Ceil(math.Sqrt(float64(n))))
	per := (n + numGroups - 1) / numGroups
	out := make([]relayGroup, 0, numGroups)
	for start := 0; start < n; start += per {
		end := start + per
		if end > n {
			end = n
		}
		g := relayGroup{machine: machines[start]}
		for _, m := range machines[start:end] {
			g.names = append(g.names, remotes[m]...)
		}
		if end-start > 1 {
			g.hops = 1
		}
		out = append(out, g)
	}
	return out
}

// shouldShed reports whether drop-oldest shedding should run against a
// queue currently at depth items: either the store is in backpressure mode
// or the queue crossed the configured depth limit.
func (b *Broker) shouldShed(depth int) bool {
	return b.store.Pressured() || (b.shedDepth > 0 && depth >= b.shedDepth)
}

// shedOldest pops droppable headers off the front of an ID queue while the
// channel is overloaded, releasing their references and counting each shed
// in the drop taxonomy. It stops at the first privileged head — weights and
// control messages are never shed.
func (b *Broker) shedOldest(q *queue.Queue[*message.Header]) {
	for b.shouldShed(q.Len()) {
		h, ok := q.PopIf(func(h *message.Header) bool { return h.Type.Droppable() })
		if !ok {
			return
		}
		b.health.dropShedOldest.Add(1)
		b.health.shedBytes.Add(int64(h.BodySize))
		b.release(h.ObjectID)
	}
}

// shedOldestForward is shedOldest for a per-machine forwarder queue.
func (b *Broker) shedOldestForward(fq *queue.Queue[forwardItem]) {
	for b.shouldShed(fq.Len()) {
		item, ok := fq.PopIf(func(it forwardItem) bool { return it.header.Type.Droppable() })
		if !ok {
			return
		}
		b.health.dropShedOldest.Add(1)
		b.health.shedBytes.Add(int64(len(item.framed)))
		b.release(item.objID)
	}
}

// admit inserts a framed body into the object store with priority-aware
// admission: privileged bodies (weights, control, stats) always enter via
// Put, droppable ones (rollouts, dummy traffic) go through TryPut and are
// refused once the store's byte budget is exhausted. A refusal returns
// ErrBudget with no reference created; callers count the shed and move on.
func (b *Broker) admit(t message.Type, framed []byte, refs int) (objectstore.ID, error) {
	if t.Droppable() {
		return b.store.TryPut(framed, refs)
	}
	return b.store.Put(framed, refs), nil
}

// forwarder returns (creating on first use) the ordered transfer queue for
// a destination machine.
func (b *Broker) forwarder(machine int) *queue.Queue[forwardItem] {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.stopped {
		return nil
	}
	fq, ok := b.forwarders[machine]
	if !ok {
		fq = queue.New[forwardItem]()
		b.forwarders[machine] = fq
		b.wg.Add(1)
		go func() {
			defer b.wg.Done()
			for {
				item, err := fq.Get()
				if err != nil {
					return
				}
				if err := b.remote.Forward(b.machineID, machine, item.header, item.framed); err != nil {
					// Transient failures (frame queued for retry behind a
					// reconnect) are not drops: the transport owns a copy
					// and redelivers it. Everything else is permanent.
					if errors.Is(err, ErrForwardRetrying) {
						b.health.forwardRetried.Add(1)
					} else {
						b.health.dropForwardError.Add(1)
					}
				} else {
					b.health.bodiesForwarded.Add(1)
					b.health.bytesForwarded.Add(int64(len(item.framed)))
				}
				b.release(item.objID)
			}
		}()
	}
	return fq
}

// InjectRemote accepts a message forwarded from another machine's broker:
// the framed body enters this machine's object store and the header is
// dispatched to local ID queues, one private Header copy per receiver. When
// the header still names destinations on other machines and carries relay
// budget (tree-routed broadcasts), this broker forwards the frame onward,
// acting as an interior node of the broadcast tree. It implements the
// receiving half of Remote.Forward.
func (b *Broker) InjectRemote(h *message.Header, framed []byte) error {
	if h.Type == message.TypeRollout {
		b.noteAck(h.Src, h.WeightsVersion)
	}
	local, remotes := b.localRemoteSplit(h.Dst)
	var relay map[int][]string
	if len(remotes) > 0 {
		if h.RelayHops > 0 && b.remote != nil {
			relay = remotes
		} else {
			// No relay budget left (or no transport): these names are
			// unreachable from here. A correctly built depth-2 tree never
			// produces this, so count it loudly rather than lose it silently.
			for _, names := range remotes {
				b.health.dropRelayExpired.Add(int64(len(names)))
			}
		}
	}
	refs := len(local) + len(relay)
	if refs == 0 {
		return nil
	}
	body := append([]byte(nil), framed...) // own the bytes on this machine
	id, err := b.admit(h.Type, body, refs)
	if err != nil {
		// Budget refusal: the trajectory is shed at this machine's door, one
		// declined destination reference per local receiver. No store
		// reference was created, so there is nothing to release.
		b.health.dropStoreBudget.Add(int64(refs))
		b.health.shedBytes.Add(int64(len(body)))
		return nil
	}
	b.health.bodiesInjected.Add(1)
	b.health.bytesInjected.Add(int64(len(body)))
	for _, name := range local {
		q := b.idQueue(name)
		if q == nil {
			b.health.dropUnknownDst.Add(1)
			b.release(id)
			continue
		}
		if h.Type.Droppable() {
			b.shedOldest(q)
		}
		nh := *h // per-receiver copy: receivers must not alias
		nh.ObjectID = id
		nh.Dst = []string{name}
		nh.RelayHops = 0
		if err := q.Put(&nh); err != nil {
			b.health.dropQueueClosed.Add(1)
			b.release(id)
		}
	}
	for machine, names := range relay {
		nh := *h // per-hop copy with the remaining leaf set and budget
		nh.ObjectID = id
		nh.Dst = names
		nh.RelayHops = h.RelayHops - 1
		fq := b.forwarder(machine)
		if fq == nil {
			b.health.dropQueueClosed.Add(1)
			b.release(id)
			continue
		}
		if h.Type.Droppable() {
			b.shedOldestForward(fq)
		}
		if fq.Put(forwardItem{header: &nh, framed: body, objID: id}) != nil {
			b.health.dropQueueClosed.Add(1)
			b.release(id)
			continue
		}
		b.health.bodiesRelayed.Add(1)
		b.health.bytesRelayed.Add(int64(len(body)))
	}
	return nil
}

// noteAck records the weights version carried on a rollout header — the
// implicit acknowledgement the weight plane's planner uses to judge how far
// behind each explorer is. The last observed value is kept (not the max) so
// a restarted explorer's version regression is visible upstream.
func (b *Broker) noteAck(src string, version int64) {
	if src == "" {
		return
	}
	b.ackMu.Lock()
	b.acked[src] = version
	b.ackMu.Unlock()
}

// MergeAcked folds a forwarded ack-ledger snapshot into this broker's
// ledger. The fragment runtime uses it when the sample fragment (which sees
// every rollout) and the broadcast fragment (whose weight plane needs the
// ledger) sit behind different brokers: the sampler ships periodic
// ControlAckSnapshot messages and the broadcaster merges them here. Entries
// overwrite last-value-wins, matching noteAck — a restarted source's version
// regression must stay visible.
func (b *Broker) MergeAcked(snap map[string]int64) {
	if len(snap) == 0 {
		return
	}
	b.ackMu.Lock()
	for k, v := range snap {
		b.acked[k] = v
	}
	b.ackMu.Unlock()
}

// AckedWeights returns a copy of the last weights version observed on each
// source's rollout traffic through this broker.
func (b *Broker) AckedWeights() map[string]int64 {
	b.ackMu.Lock()
	defer b.ackMu.Unlock()
	out := make(map[string]int64, len(b.acked))
	for k, v := range b.acked {
		out[k] = v
	}
	return out
}

// MergeConsumed folds consumption acks into the broker's ledger: consumer
// reports the highest dispatched rollout header ID it has ingested. Unlike
// the weights ledger this one keeps the maximum, never the last value — IDs
// are monotonic within the dispatching process and per-destination delivery
// is ordered, so the high-water mark covers every earlier dispatch, while a
// late beat from a retired incarnation must not re-open the window.
func (b *Broker) MergeConsumed(consumer string, lastID uint64) {
	if consumer == "" {
		return
	}
	b.ackMu.Lock()
	if lastID > b.consumed[consumer] {
		b.consumed[consumer] = lastID
	}
	b.ackMu.Unlock()
}

// ConsumedAcks returns a copy of the consumption-ack ledger: the highest
// ingested dispatch ID per consumer name.
func (b *Broker) ConsumedAcks() map[string]uint64 {
	b.ackMu.Lock()
	defer b.ackMu.Unlock()
	out := make(map[string]uint64, len(b.consumed))
	for k, v := range b.consumed {
		out[k] = v
	}
	return out
}

// drainIDQueue reclaims the object-store references of headers left
// undelivered in a closed ID queue.
func (b *Broker) drainIDQueue(q *queue.Queue[*message.Header]) {
	for {
		h, err := q.TryGet()
		if err != nil {
			return
		}
		b.health.dropShutdown.Add(1)
		b.release(h.ObjectID)
	}
}

// Stop shuts the router down, closes all client queues, reclaims the
// references of undelivered headers, and records any remaining live object
// (a refcount leak) in the health ledger. It is idempotent and waits for
// in-flight forwards to finish.
func (b *Broker) Stop() {
	b.mu.Lock()
	if b.stopped {
		b.mu.Unlock()
		return
	}
	b.stopped = true
	queues := make([]*queue.Queue[*message.Header], 0, len(b.idQueues))
	for _, q := range b.idQueues {
		queues = append(queues, q)
	}
	b.mu.Unlock()

	b.headerQ.Close()
	<-b.routerDone // router drains the header queue before forwarders close
	b.mu.Lock()
	forwarders := make([]*queue.Queue[forwardItem], 0, len(b.forwarders))
	for _, fq := range b.forwarders {
		forwarders = append(forwarders, fq)
	}
	b.mu.Unlock()
	for _, fq := range forwarders {
		fq.Close() // forwarders drain queued transfers, then exit
	}
	b.wg.Wait()
	for _, q := range queues {
		q.Close()
		b.drainIDQueue(q)
	}
	b.health.leakedAtStop.Store(int64(b.store.Len()))
}

// Port is a client's attachment to the broker: Send serializes and pushes a
// message into the shared-memory communicator; Recv blocks on the client's
// ID queue and materializes the next message. Send runs on the client's
// sender thread and Recv on its receiver thread, keeping all communication
// work off the workhorse threads.
type Port struct {
	broker  *Broker
	name    string
	idQueue *queue.Queue[*message.Header]
}

// Name returns the client name this port was registered under.
func (p *Port) Name() string { return p.name }

// Send serializes, optionally compresses, and stores the message body, then
// publishes the header to the router. It returns once the message has been
// handed to the asynchronous channel — not once it is delivered.
//
// The marshal buffer is pooled: Pack copies the raw encoding into the framed
// body that the object store owns, so the pooled buffer is freed as soon as
// framing is done and the steady-state send path allocates only the framed
// body.
func (p *Port) Send(m *message.Message) error {
	raw, err := serialize.MarshalPooled(m.Body)
	if err != nil {
		return fmt.Errorf("broker send from %s: %w", p.name, err)
	}
	framed, compressed := p.broker.compressor.Pack(raw)
	serialize.FreeBuf(raw)

	// The split here is advisory — a reachability check and drop-accounting
	// weight only. The router recomputes it and owns the refcount ledger
	// (see route): the sender pins exactly one reference, so a registration
	// that moves between this call and routing cannot skew the ledger.
	local, remotes := p.broker.localRemoteSplit(m.Header.Dst)
	refs := len(local) + len(remotes)
	if refs == 0 {
		return nil // no reachable destination; drop silently like a router
	}
	h := m.Header
	id, err := p.broker.admit(h.Type, framed, 1)
	if err != nil {
		// Budget refusal: the trajectory is shed at the source. Sends are
		// fire-and-forget for droppable traffic, so the producer keeps
		// running at whatever rate the channel can absorb — the shed is
		// visible in the drop taxonomy, not as a sender error.
		p.broker.health.dropStoreBudget.Add(int64(refs))
		p.broker.health.shedBytes.Add(int64(len(framed)))
		return nil
	}
	h.ObjectID = id
	h.BodySize = len(framed)
	h.Compressed = compressed
	if err := p.broker.headerQ.Put(h); err != nil {
		// Router is gone; reclaim the pinned reference.
		p.broker.health.dropQueueClosed.Add(int64(refs))
		p.broker.release(h.ObjectID)
		return fmt.Errorf("broker send from %s: %w", p.name, err)
	}
	p.broker.health.sends.Add(1)
	p.broker.health.bytesIn.Add(int64(len(framed)))
	if h.Type == message.TypeRollout {
		p.broker.noteAck(h.Src, h.WeightsVersion)
	}
	return nil
}

// AckedWeights exposes the broker's rollout-carried weights-version ledger
// (see Broker.AckedWeights); the learner's planner polls it per broadcast.
func (p *Port) AckedWeights() map[string]int64 { return p.broker.AckedWeights() }

// MergeAcked folds a forwarded ack-ledger snapshot into the broker's ledger
// (see Broker.MergeAcked).
func (p *Port) MergeAcked(snap map[string]int64) { p.broker.MergeAcked(snap) }

// MergeConsumed records a consumer's consumption ack in the broker's ledger
// (see Broker.MergeConsumed); the sample fragment feeds it from replica
// heartbeats.
func (p *Port) MergeConsumed(consumer string, lastID uint64) {
	p.broker.MergeConsumed(consumer, lastID)
}

// ConsumedAcks exposes the broker's consumption-ack ledger (see
// Broker.ConsumedAcks); the sample fragment prunes in-flight rollout
// retention against it.
func (p *Port) ConsumedAcks() map[string]uint64 { return p.broker.ConsumedAcks() }

// Recv blocks until a message addressed to this client arrives, fetches the
// body from the object store (releasing the reference), and decodes it.
func (p *Port) Recv() (*message.Message, error) {
	h, err := p.idQueue.Get()
	if err != nil {
		return nil, err
	}
	return p.materialize(h)
}

// TryRecv is the non-blocking variant of Recv.
func (p *Port) TryRecv() (*message.Message, error) {
	h, err := p.idQueue.TryGet()
	if err != nil {
		return nil, err
	}
	return p.materialize(h)
}

// materialize fetches, decompresses, and decodes a delivered header's body.
// Once the header has been popped from the ID queue this receiver owns the
// object-store reference, so it is released on every path — including
// corrupt bodies that fail to unpack or unmarshal.
func (p *Port) materialize(h *message.Header) (*message.Message, error) {
	framed, err := p.broker.store.Get(h.ObjectID)
	if err != nil {
		p.broker.health.dropStoreMiss.Add(1)
		return nil, fmt.Errorf("broker recv at %s: %w", p.name, err)
	}
	defer p.broker.release(h.ObjectID)
	raw, err := p.broker.compressor.Unpack(framed)
	if err != nil {
		p.broker.health.dropRecvError.Add(1)
		return nil, fmt.Errorf("broker recv at %s: %w", p.name, err)
	}
	body, err := serialize.Unmarshal(raw)
	if err != nil {
		p.broker.health.dropRecvError.Add(1)
		return nil, fmt.Errorf("broker recv at %s: %w", p.name, err)
	}
	p.broker.health.receives.Add(1)
	if h.CreatedNanos > 0 {
		p.broker.health.delivery.Observe(time.Duration(time.Now().UnixNano() - h.CreatedNanos))
	}
	return &message.Message{Header: h, Body: body}, nil
}

// Pending reports how many undelivered headers wait in this client's ID
// queue.
func (p *Port) Pending() int { return p.idQueue.Len() }
