package broker

import (
	"testing"
	"time"

	"xingtian/internal/message"
	"xingtian/internal/serialize"
)

// waitRouted blocks until the broker's router has dispatched n headers.
func waitRouted(t *testing.T, b *Broker, n int64) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for b.health.headersRouted.Load() < n {
		if time.Now().After(deadline) {
			t.Fatalf("routed %d of %d headers", b.health.headersRouted.Load(), n)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestShedQueueDepthFloodDrains floods a depth-limited destination queue
// with droppable traffic that is never received: the router must shed
// oldest-first, keep the queue bounded, account every shed in the drop
// taxonomy, and release every shed reference (VerifyDrained clean).
func TestShedQueueDepthFloodDrains(t *testing.T) {
	const depth, sends = 4, 50
	b := New(Config{MachineID: 0, ShedQueueDepth: depth})
	t.Cleanup(b.Stop)
	s, _ := b.Register("s")
	r, _ := b.Register("r")

	for i := 0; i < sends; i++ {
		if err := s.Send(dummyMsg("s", []string{"r"}, make([]byte, 256))); err != nil {
			t.Fatalf("Send %d: %v", i, err)
		}
	}
	waitRouted(t, b, sends)

	if p := r.Pending(); p > depth {
		t.Fatalf("Pending = %d, want <= shed depth %d", p, depth)
	}
	m := b.Metrics()
	if m.Drops.ShedOldest == 0 {
		t.Fatal("no oldest-first sheds recorded under a flooded depth limit")
	}
	if m.ShedBytes == 0 {
		t.Fatal("ShedBytes = 0 with sheds recorded")
	}
	if got := m.Drops.ShedOldest + int64(r.Pending()); got != sends {
		t.Fatalf("sheds(%d) + pending(%d) = %d, want %d", m.Drops.ShedOldest, r.Pending(), got, sends)
	}

	// A privileged weights message rides through untouched even though the
	// queue sits at its depth limit.
	w := &message.WeightsPayload{Version: 7, Data: []float32{1}}
	if err := s.Send(message.New(message.TypeWeights, "s", []string{"r"}, w)); err != nil {
		t.Fatalf("Send weights: %v", err)
	}
	waitRouted(t, b, sends+1)

	// Drain everything still queued; the weights message must arrive.
	var gotWeights bool
	for r.Pending() > 0 {
		msg, err := r.Recv()
		if err != nil {
			t.Fatalf("Recv: %v", err)
		}
		if msg.Header.Type == message.TypeWeights {
			gotWeights = true
		}
	}
	if !gotWeights {
		t.Fatal("privileged weights message was shed")
	}
	if err := b.VerifyDrained(); err != nil {
		t.Fatalf("refs leaked after flood + sheds: %v", err)
	}
	if m := b.Metrics(); m.ReleaseErrors != 0 {
		t.Fatalf("ReleaseErrors = %d, want 0", m.ReleaseErrors)
	}
}

// TestStoreBudgetBoundsBytesUnderFlood floods a bounded broker with
// droppable traffic that is never received: admission refusals (TryPut) and
// oldest-first sheds must keep the store's exact live-byte peak within the
// budget, with every declined or shed body accounted for.
func TestStoreBudgetBoundsBytesUnderFlood(t *testing.T) {
	const budget = 32 * 1024
	b := New(Config{MachineID: 0, StoreBudget: budget})
	t.Cleanup(b.Stop)
	s, _ := b.Register("s")
	r, _ := b.Register("r")

	const sends = 200
	for i := 0; i < sends; i++ {
		// 2 KB bodies: ~16 admissions hit the high watermark (85% of 32 KB).
		if err := s.Send(dummyMsg("s", []string{"r"}, make([]byte, 2048))); err != nil {
			t.Fatalf("Send %d: %v", i, err)
		}
	}
	m := b.Metrics()
	if m.Store.PeakLiveBytes > budget {
		t.Fatalf("PeakLiveBytes = %d, exceeds budget %d", m.Store.PeakLiveBytes, budget)
	}
	if m.Drops.StoreBudget == 0 && m.Drops.ShedOldest == 0 {
		t.Fatal("flood past the budget recorded neither admission refusals nor sheds")
	}
	if m.Store.BackpressureEnters == 0 {
		t.Fatal("store never entered backpressure mode")
	}

	// Drain whatever survived, then prove nothing leaked.
	waitRouted(t, b, m.Sends)
	for r.Pending() > 0 {
		if _, err := r.Recv(); err != nil {
			t.Fatalf("Recv: %v", err)
		}
	}
	if err := b.VerifyDrained(); err != nil {
		t.Fatalf("refs leaked: %v", err)
	}
}

// packBody marshals and frames a payload the way a sending machine's Port
// would before forwarding it across the wire.
func packBody(t *testing.T, body any) []byte {
	t.Helper()
	raw, err := serialize.Marshal(body)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	framed, _ := serialize.Compressor{}.Pack(raw)
	return framed
}

// TestInjectRemoteBudgetRefusal drives the cross-machine inject path into a
// bounded store: refused trajectory injections are counted (one declined
// reference per local receiver) and create no store reference, while a
// privileged injection is always admitted.
func TestInjectRemoteBudgetRefusal(t *testing.T) {
	const budget = 8 * 1024
	b := New(Config{MachineID: 0, StoreBudget: budget})
	t.Cleanup(b.Stop)
	r, _ := b.Register("r")

	// Privileged occupancy fills the store to its budget: Put is unbounded,
	// and the store is now past its high watermark.
	filler := b.store.Put(make([]byte, budget), 1)
	if !b.store.Pressured() {
		t.Fatal("store not pressured after privileged fill")
	}

	before := b.Metrics()
	h := &message.Header{ID: 1, Type: message.TypeRollout, Src: "peer", Dst: []string{"r"}}
	if err := b.InjectRemote(h, packBody(t, &message.DummyPayload{Data: make([]byte, 1024)})); err != nil {
		t.Fatalf("InjectRemote: %v", err)
	}
	after := b.Metrics()
	if got := after.Drops.StoreBudget - before.Drops.StoreBudget; got != 1 {
		t.Fatalf("StoreBudget drops = %d, want 1 (one declined receiver)", got)
	}
	if after.BodiesInjected != before.BodiesInjected {
		t.Fatal("refused injection still counted as injected")
	}

	// A privileged injection gets through even under pressure.
	wh := &message.Header{ID: 2, Type: message.TypeWeights, Src: "peer", Dst: []string{"r"}}
	if err := b.InjectRemote(wh, packBody(t, &message.WeightsPayload{Version: 9, Data: []float32{1}})); err != nil {
		t.Fatalf("InjectRemote weights: %v", err)
	}
	got, err := r.Recv()
	if err != nil {
		t.Fatalf("Recv: %v", err)
	}
	if got.Header.Type != message.TypeWeights || got.Body.(*message.WeightsPayload).Version != 9 {
		t.Fatalf("received %v body %+v, want weights v9", got.Header.Type, got.Body)
	}
	if err := b.store.Release(filler); err != nil {
		t.Fatalf("Release filler: %v", err)
	}
	if err := b.VerifyDrained(); err != nil {
		t.Fatal(err)
	}
}
