package broker

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"xingtian/internal/objectstore"
	"xingtian/internal/stats"
)

// latencySampleCap bounds the send→recv latency reservoir per broker.
const latencySampleCap = 4096

// health is the broker's channel-health counter set. All counters are
// atomic so the router, forwarders, and client sender/receiver threads
// update them without touching the broker lock.
type health struct {
	headersRouted   atomic.Int64
	sends           atomic.Int64
	receives        atomic.Int64
	bodiesForwarded atomic.Int64
	bodiesInjected  atomic.Int64
	bodiesRelayed   atomic.Int64
	bytesIn         atomic.Int64
	bytesForwarded  atomic.Int64
	bytesInjected   atomic.Int64
	bytesRelayed    atomic.Int64

	dropUnknownDst   atomic.Int64
	dropQueueClosed  atomic.Int64
	dropNoRemote     atomic.Int64
	dropForwardError atomic.Int64
	dropRecvError    atomic.Int64
	dropStoreMiss    atomic.Int64
	dropShutdown     atomic.Int64
	dropShedOldest   atomic.Int64
	dropStoreBudget  atomic.Int64
	dropRelayExpired atomic.Int64

	shedBytes atomic.Int64

	forwardRetried atomic.Int64

	releaseErrors atomic.Int64
	leakedAtStop  atomic.Int64

	delivery *stats.Histogram // send→recv (header creation → materialize)
}

func newHealth() *health {
	return &health{delivery: stats.NewBoundedHistogram(latencySampleCap)}
}

// DropCounts breaks down dropped destination references by reason. Every
// drop corresponds to exactly one released object-store reference, so the
// channel accounts for every body it declines to deliver.
type DropCounts struct {
	// UnknownDestination counts references dropped because no client with
	// the destination name is registered on this machine.
	UnknownDestination int64
	// QueueClosed counts references dropped because the destination's ID
	// queue (or a forwarder/header queue) was closed mid-flight.
	QueueClosed int64
	// NoRemote counts cross-machine references dropped because the broker
	// has no Remote configured.
	NoRemote int64
	// ForwardError counts transfers whose Remote.Forward failed.
	ForwardError int64
	// RecvError counts deliveries whose body failed to decompress or
	// decode at the receiver (corrupt or truncated bodies).
	RecvError int64
	// StoreMiss counts headers whose body was already gone from the
	// object store — a refcount-discipline violation upstream.
	StoreMiss int64
	// ShutdownDrained counts undelivered headers reclaimed by Broker.Stop.
	ShutdownDrained int64
	// ShedOldest counts droppable headers shed oldest-first from queues
	// under backpressure; each shed released exactly one store reference.
	ShedOldest int64
	// StoreBudget counts destination references declined admission because
	// the object store's byte budget was exhausted. Unlike every other drop
	// reason these never created a store reference, so there was nothing to
	// release — the body was refused at the door.
	StoreBudget int64
	// RelayExpired counts remote destination names that arrived at a broker
	// with no relay budget left (Header.RelayHops == 0) or no transport —
	// unreachable leaves of a malformed broadcast tree. Like StoreBudget,
	// no reference was ever created for these.
	RelayExpired int64
}

// Total sums all drop reasons.
func (d DropCounts) Total() int64 {
	return d.UnknownDestination + d.QueueClosed + d.NoRemote +
		d.ForwardError + d.RecvError + d.StoreMiss + d.ShutdownDrained +
		d.ShedOldest + d.StoreBudget + d.RelayExpired
}

// LatencySummary condenses the send→recv latency histogram.
type LatencySummary struct {
	// Count is the number of delivered messages observed.
	Count int
	// Mean, P50, and P99 summarize creation→materialize latency.
	Mean time.Duration
	P50  time.Duration
	P99  time.Duration
}

// MetricsSnapshot is a point-in-time view of one broker's channel health:
// cumulative traffic counters, drop accounting, live queue-depth gauges,
// object-store occupancy, and delivery latency.
type MetricsSnapshot struct {
	// MachineID identifies the broker.
	MachineID int

	// HeadersRouted counts headers the router dispatched.
	HeadersRouted int64
	// Sends counts successful Port.Send calls into this broker.
	Sends int64
	// Receives counts successful Port.Recv/TryRecv materializations.
	Receives int64
	// BodiesForwarded / BodiesInjected count cross-machine transfers out
	// of and into this broker.
	BodiesForwarded int64
	BodiesInjected  int64
	// BodiesRelayed counts injected bodies this broker forwarded onward as
	// an interior node of a broadcast tree.
	BodiesRelayed int64
	// BytesIn is body bytes entering the store via local sends;
	// BytesForwarded / BytesInjected are cross-machine body bytes;
	// BytesRelayed are injected bytes re-forwarded by the broadcast tree.
	BytesIn        int64
	BytesForwarded int64
	BytesInjected  int64
	BytesRelayed   int64

	// ForwardRetried counts transfers whose Remote.Forward reported a
	// transient failure (ErrForwardRetrying): the transport queued its own
	// copy of the frame for redelivery after a reconnect. These are neither
	// successful forwards nor drops.
	ForwardRetried int64

	// Drops breaks down dropped destination references by reason.
	Drops DropCounts
	// ShedBytes is the cumulative body bytes shed under backpressure
	// (oldest-first queue sheds plus budget-refused admissions).
	ShedBytes int64
	// ReleaseErrors counts failed object-store releases (double releases).
	ReleaseErrors int64
	// LeakedAtStop is the number of objects still live when Stop finished
	// draining — nonzero means the refcount contract was violated.
	LeakedAtStop int64

	// HeaderQueueDepth, IDQueueDepths, and ForwarderDepths are live
	// queue-occupancy gauges at snapshot time.
	HeaderQueueDepth int
	IDQueueDepths    map[string]int
	ForwarderDepths  map[int]int

	// Store is the object store's occupancy snapshot.
	Store objectstore.Stats

	// Delivery summarizes send→recv latency.
	Delivery LatencySummary
}

// Metrics snapshots the broker's channel health. Each snapshot also
// records an object-store watermark (objectstore.Store.Checkpoint), so the
// periodic health tick doubles as the age baseline for the leak detector.
func (b *Broker) Metrics() MetricsSnapshot {
	b.store.Checkpoint()
	h := b.health
	snap := MetricsSnapshot{
		MachineID:       b.machineID,
		HeadersRouted:   h.headersRouted.Load(),
		Sends:           h.sends.Load(),
		Receives:        h.receives.Load(),
		BodiesForwarded: h.bodiesForwarded.Load(),
		BodiesInjected:  h.bodiesInjected.Load(),
		BodiesRelayed:   h.bodiesRelayed.Load(),
		BytesIn:         h.bytesIn.Load(),
		BytesForwarded:  h.bytesForwarded.Load(),
		BytesInjected:   h.bytesInjected.Load(),
		BytesRelayed:    h.bytesRelayed.Load(),
		ForwardRetried:  h.forwardRetried.Load(),
		Drops: DropCounts{
			UnknownDestination: h.dropUnknownDst.Load(),
			QueueClosed:        h.dropQueueClosed.Load(),
			NoRemote:           h.dropNoRemote.Load(),
			ForwardError:       h.dropForwardError.Load(),
			RecvError:          h.dropRecvError.Load(),
			StoreMiss:          h.dropStoreMiss.Load(),
			ShutdownDrained:    h.dropShutdown.Load(),
			ShedOldest:         h.dropShedOldest.Load(),
			StoreBudget:        h.dropStoreBudget.Load(),
			RelayExpired:       h.dropRelayExpired.Load(),
		},
		ShedBytes:        h.shedBytes.Load(),
		ReleaseErrors:    h.releaseErrors.Load(),
		LeakedAtStop:     h.leakedAtStop.Load(),
		HeaderQueueDepth: b.headerQ.Len(),
		Store:            b.store.Stats(),
		Delivery: LatencySummary{
			Count: h.delivery.Count(),
			Mean:  h.delivery.Mean(),
			P50:   h.delivery.Percentile(50),
			P99:   h.delivery.Percentile(99),
		},
	}
	b.mu.Lock()
	snap.IDQueueDepths = make(map[string]int, len(b.idQueues))
	for name, q := range b.idQueues {
		snap.IDQueueDepths[name] = q.Len()
	}
	snap.ForwarderDepths = make(map[int]int, len(b.forwarders))
	for machine, fq := range b.forwarders {
		snap.ForwarderDepths[machine] = fq.Len()
	}
	b.mu.Unlock()
	return snap
}

// Leaked reports object-store entries older than olderThan (see
// objectstore.Store.Leaked) — the broker-level leak detector.
func (b *Broker) Leaked(olderThan time.Duration) []objectstore.LeakRecord {
	return b.store.Leaked(olderThan)
}

// VerifyDrained asserts every object-store refcount returned to zero.
func (b *Broker) VerifyDrained() error {
	return b.store.VerifyDrained()
}

// String renders the snapshot human-readably, one logical line per area.
func (m MetricsSnapshot) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "broker[m%d] routed=%d sent=%d recv=%d fwd=%d inj=%d relayed=%d\n",
		m.MachineID, m.HeadersRouted, m.Sends, m.Receives, m.BodiesForwarded, m.BodiesInjected, m.BodiesRelayed)
	fmt.Fprintf(&sb, "  bytes: in=%s fwd=%s inj=%s relay=%s store=%s (peak %s, %d live)\n",
		stats.FormatBytes(float64(m.BytesIn)), stats.FormatBytes(float64(m.BytesForwarded)),
		stats.FormatBytes(float64(m.BytesInjected)), stats.FormatBytes(float64(m.BytesRelayed)),
		stats.FormatBytes(float64(m.Store.Bytes)),
		stats.FormatBytes(float64(m.Store.PeakBytes)), m.Store.Objects)
	fmt.Fprintf(&sb, "  drops: total=%d unknownDst=%d queueClosed=%d noRemote=%d fwdErr=%d fwdRetried=%d recvErr=%d storeMiss=%d shutdown=%d shedOldest=%d storeBudget=%d relayExpired=%d releaseErr=%d leakedAtStop=%d\n",
		m.Drops.Total(), m.Drops.UnknownDestination, m.Drops.QueueClosed, m.Drops.NoRemote,
		m.Drops.ForwardError, m.ForwardRetried, m.Drops.RecvError, m.Drops.StoreMiss, m.Drops.ShutdownDrained,
		m.Drops.ShedOldest, m.Drops.StoreBudget, m.Drops.RelayExpired, m.ReleaseErrors, m.LeakedAtStop)
	if m.Store.Budget > 0 || m.ShedBytes > 0 {
		fmt.Fprintf(&sb, "  backpressure: budget=%s peakLive=%s pressured=%v enters=%d rejects=%d shedBytes=%s\n",
			stats.FormatBytes(float64(m.Store.Budget)), stats.FormatBytes(float64(m.Store.PeakLiveBytes)),
			m.Store.Backpressure, m.Store.BackpressureEnters, m.Store.BudgetRejects,
			stats.FormatBytes(float64(m.ShedBytes)))
	}
	fmt.Fprintf(&sb, "  queues: header=%d ids=%s forwarders=%s\n",
		m.HeaderQueueDepth, formatDepths(m.IDQueueDepths), formatIntDepths(m.ForwarderDepths))
	fmt.Fprintf(&sb, "  delivery: n=%d mean=%v p50=%v p99=%v",
		m.Delivery.Count, m.Delivery.Mean.Round(time.Microsecond),
		m.Delivery.P50.Round(time.Microsecond), m.Delivery.P99.Round(time.Microsecond))
	return sb.String()
}

// Summary is a one-line condensation for periodic logging.
func (m MetricsSnapshot) Summary() string {
	s := fmt.Sprintf("m%d routed=%d recv=%d drops=%d live=%d hdrQ=%d lat(p50)=%v",
		m.MachineID, m.HeadersRouted, m.Receives, m.Drops.Total(),
		m.Store.Objects, m.HeaderQueueDepth, m.Delivery.P50.Round(time.Microsecond))
	if shed := m.Drops.ShedOldest + m.Drops.StoreBudget; shed > 0 || m.Store.Backpressure {
		s += fmt.Sprintf(" shed=%d pressured=%v", shed, m.Store.Backpressure)
	}
	return s
}

func formatDepths(d map[string]int) string {
	if len(d) == 0 {
		return "{}"
	}
	names := make([]string, 0, len(d))
	for n := range d {
		names = append(names, n)
	}
	sort.Strings(names)
	parts := make([]string, 0, len(names))
	for _, n := range names {
		parts = append(parts, fmt.Sprintf("%s:%d", n, d[n]))
	}
	return "{" + strings.Join(parts, " ") + "}"
}

func formatIntDepths(d map[int]int) string {
	if len(d) == 0 {
		return "{}"
	}
	keys := make([]int, 0, len(d))
	for k := range d {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("m%d:%d", k, d[k]))
	}
	return "{" + strings.Join(parts, " ") + "}"
}

// WireMetrics is a transport-level health snapshot for one machine's fabric
// endpoint: frame/byte counters plus the reconnect state machine's fault
// counters. The broker package defines the shape so ClusterHealth can carry
// wire health without depending on a concrete transport; the TCP fabric
// fills it in (netsim clusters have no wire and leave it empty).
type WireMetrics struct {
	// MachineID identifies the endpoint.
	MachineID int
	// FramesSent / FramesReceived count complete frames on the wire.
	FramesSent     int64
	FramesReceived int64
	// BytesSent / BytesReceived count frame bytes on the wire.
	BytesSent     int64
	BytesReceived int64
	// CorruptStreams counts connections torn down on malformed frames.
	CorruptStreams int64
	// CorruptFrames counts connections torn down on a frame-checksum
	// mismatch: the payload bytes were damaged in flight and were discarded
	// before deserialization.
	CorruptFrames int64
	// Reconnects counts successful redials of a lost peer connection.
	Reconnects int64
	// RedialFailures counts failed redial attempts while backing off.
	RedialFailures int64
	// RetriedFrames counts frames delivered from the per-peer retry queue
	// after a reconnect.
	RetriedFrames int64
	// DroppedRetry counts retry-queued frames abandoned when a peer's
	// redial budget ran out (the link went down permanently).
	DroppedRetry int64
	// CreditStalls counts sends that had to wait for the receiver to
	// replenish the peer link's credit window (slow-receiver pressure).
	CreditStalls int64
	// StallTimeouts counts peer connections torn down because a credit
	// stall outlasted the stall timeout (a stuck receiver).
	StallTimeouts int64
	// AcksSent / AcksReceived count credit-replenishing ack frames.
	AcksSent     int64
	AcksReceived int64
	// DroppedInject counts frames discarded by fault injection (test rigs
	// only; always zero in production).
	DroppedInject int64
	// StalledPeers is a gauge: peers currently blocked on credit.
	StalledPeers int
}

// SupervisionStats summarizes the session's explorer supervision layer:
// how many explorer processes were torn down and restarted after agent
// errors, and the most recent restart-causing error. Filled in by
// core.Session when it snapshots cluster health.
type SupervisionStats struct {
	// ExplorerRestarts counts successful explorer restarts.
	ExplorerRestarts int64
	// BudgetExhausted counts explorer slots that died permanently after
	// exhausting their restart budget.
	BudgetExhausted int64
	// LastRestartError is the message of the most recent error that caused
	// a restart (empty when no restart happened).
	LastRestartError string
}

// ClusterHealth aggregates per-broker snapshots for a whole deployment.
type ClusterHealth struct {
	// Brokers holds one snapshot per machine, ordered by machine ID.
	Brokers []MetricsSnapshot
	// Wire holds one transport snapshot per machine for deployments running
	// over a real fabric (empty for in-process/netsim clusters).
	Wire []WireMetrics
	// Supervision summarizes explorer restarts (zero value when the session
	// runs without a restart budget).
	Supervision SupervisionStats
}

// TotalDrops sums drops across all brokers.
func (c ClusterHealth) TotalDrops() int64 {
	var n int64
	for _, b := range c.Brokers {
		n += b.Drops.Total()
	}
	return n
}

// TotalLeaked sums objects still live at stop across all brokers.
func (c ClusterHealth) TotalLeaked() int64 {
	var n int64
	for _, b := range c.Brokers {
		n += b.LeakedAtStop
	}
	return n
}

// String renders the wire snapshot human-readably.
func (w WireMetrics) String() string {
	s := fmt.Sprintf("wire[m%d] frames: sent=%d recv=%d bytes: sent=%d recv=%d corrupt=%d corruptFrames=%d reconnects=%d redialFail=%d retried=%d droppedRetry=%d",
		w.MachineID, w.FramesSent, w.FramesReceived, w.BytesSent, w.BytesReceived,
		w.CorruptStreams, w.CorruptFrames, w.Reconnects, w.RedialFailures, w.RetriedFrames, w.DroppedRetry)
	if w.DroppedInject > 0 {
		s += fmt.Sprintf(" droppedInject=%d", w.DroppedInject)
	}
	if w.AcksSent > 0 || w.AcksReceived > 0 || w.CreditStalls > 0 || w.StallTimeouts > 0 {
		s += fmt.Sprintf(" credits: stalls=%d stallTimeouts=%d acksSent=%d acksRecv=%d stalledPeers=%d",
			w.CreditStalls, w.StallTimeouts, w.AcksSent, w.AcksReceived, w.StalledPeers)
	}
	return s
}

// String renders every broker's snapshot, plus wire and supervision state
// when present.
func (c ClusterHealth) String() string {
	parts := make([]string, 0, len(c.Brokers)+len(c.Wire)+1)
	for _, b := range c.Brokers {
		parts = append(parts, b.String())
	}
	for _, w := range c.Wire {
		parts = append(parts, w.String())
	}
	if s := c.Supervision; s.ExplorerRestarts > 0 || s.BudgetExhausted > 0 {
		parts = append(parts, fmt.Sprintf("supervision: restarts=%d budgetExhausted=%d lastErr=%q",
			s.ExplorerRestarts, s.BudgetExhausted, s.LastRestartError))
	}
	return strings.Join(parts, "\n")
}

// Summary renders one line per broker, with wire reconnect counters and
// supervision restarts appended when the deployment has them.
func (c ClusterHealth) Summary() string {
	parts := make([]string, 0, len(c.Brokers)+2)
	for _, b := range c.Brokers {
		parts = append(parts, b.Summary())
	}
	var reconnects, redialFailures, retried, corrupt, corruptFrames int64
	for _, w := range c.Wire {
		reconnects += w.Reconnects
		redialFailures += w.RedialFailures
		retried += w.RetriedFrames
		corrupt += w.CorruptStreams
		corruptFrames += w.CorruptFrames
	}
	if len(c.Wire) > 0 {
		parts = append(parts, fmt.Sprintf("wire reconnects=%d redialFail=%d retried=%d corrupt=%d corruptFrames=%d",
			reconnects, redialFailures, retried, corrupt, corruptFrames))
	}
	if s := c.Supervision; s.ExplorerRestarts > 0 || s.BudgetExhausted > 0 {
		parts = append(parts, fmt.Sprintf("restarts=%d budgetExhausted=%d",
			s.ExplorerRestarts, s.BudgetExhausted))
	}
	return strings.Join(parts, " | ")
}
