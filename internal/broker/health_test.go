package broker

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"xingtian/internal/message"
	"xingtian/internal/objectstore"
	"xingtian/internal/serialize"
)

// corruptFrame is a framed body with an unknown frame flag: Unpack fails.
var corruptFrame = []byte{0x7f, 0x01, 0x02}

// badPayloadFrame unpacks fine (raw frame) but carries an unknown payload
// tag: Unmarshal fails.
var badPayloadFrame = []byte{0x00, 0xff, 0xff}

func waitDrained(t *testing.T, b *Broker) {
	t.Helper()
	deadline := time.Now().Add(time.Second)
	for b.Store().Len() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("store not drained: %v", b.Store().VerifyDrained())
		}
		time.Sleep(time.Millisecond)
	}
	if err := b.VerifyDrained(); err != nil {
		t.Fatalf("VerifyDrained: %v", err)
	}
}

// TestCorruptBodyReleasesReference is the materialize-leak regression test:
// a body that fails to unpack or unmarshal must still release its
// object-store reference.
func TestCorruptBodyReleasesReference(t *testing.T) {
	for _, tc := range []struct {
		name string
		body []byte
	}{
		{"unpack-error", corruptFrame},
		{"unmarshal-error", badPayloadFrame},
	} {
		t.Run(tc.name, func(t *testing.T) {
			b := singleMachine(t)
			r, err := b.Register("r")
			if err != nil {
				t.Fatalf("Register: %v", err)
			}
			h := &message.Header{ID: 1, Type: message.TypeDummy, Src: "peer",
				Dst: []string{"r"}, CreatedNanos: time.Now().UnixNano()}
			if err := b.InjectRemote(h, tc.body); err != nil {
				t.Fatalf("InjectRemote: %v", err)
			}
			if _, err := r.Recv(); err == nil {
				t.Fatal("Recv of corrupt body did not error")
			}
			if n := b.Store().Len(); n != 0 {
				t.Fatalf("corrupt body leaked: store holds %d object(s)", n)
			}
			m := b.Metrics()
			if m.Drops.RecvError != 1 {
				t.Fatalf("Drops.RecvError = %d, want 1", m.Drops.RecvError)
			}
			if m.ReleaseErrors != 0 {
				t.Fatalf("ReleaseErrors = %d, want 0", m.ReleaseErrors)
			}
		})
	}
}

// TestBroadcastHeadersNotAliased: every receiver of a broadcast must get a
// private Header copy, Dst narrowed to itself. Receivers mutate their
// headers concurrently; run under -race to catch aliasing.
func TestBroadcastHeadersNotAliased(t *testing.T) {
	b := singleMachine(t)
	sender, err := b.Register("learner")
	if err != nil {
		t.Fatalf("Register: %v", err)
	}
	const n = 4
	ports := make([]*Port, n)
	dst := make([]string, n)
	for i := range ports {
		name := fmt.Sprintf("explorer-%d", i)
		dst[i] = name
		p, err := b.Register(name)
		if err != nil {
			t.Fatalf("Register: %v", err)
		}
		ports[i] = p
	}
	w := &message.WeightsPayload{Version: 5, Data: []float32{1, 2}}
	if err := sender.Send(message.New(message.TypeWeights, "learner", dst, w)); err != nil {
		t.Fatalf("Send: %v", err)
	}
	var wg sync.WaitGroup
	for i, p := range ports {
		wg.Add(1)
		go func(i int, p *Port) {
			defer wg.Done()
			m, err := p.Recv()
			if err != nil {
				t.Errorf("%s Recv: %v", p.Name(), err)
				return
			}
			// Concurrent writes: racy if headers were shared.
			m.Header.Round = int32(i)
			m.Header.WeightsVersion = int64(i)
			if len(m.Header.Dst) != 1 || m.Header.Dst[0] != p.Name() {
				t.Errorf("%s got Dst = %v, want [%s]", p.Name(), m.Header.Dst, p.Name())
			}
		}(i, p)
	}
	wg.Wait()
	waitDrained(t, b)
}

// TestInjectRemoteHeadersNotAliased covers the receiving half: remote
// injections fan out to per-receiver header copies too.
func TestInjectRemoteHeadersNotAliased(t *testing.T) {
	b := singleMachine(t)
	const n = 3
	ports := make([]*Port, n)
	dst := make([]string, n)
	for i := range ports {
		name := fmt.Sprintf("recv-%d", i)
		dst[i] = name
		p, err := b.Register(name)
		if err != nil {
			t.Fatalf("Register: %v", err)
		}
		ports[i] = p
	}
	raw, err := serialize.Marshal(&message.DummyPayload{Data: []byte("remote body")})
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	framed, _ := serialize.Compressor{}.Pack(raw)
	h := &message.Header{ID: 9, Type: message.TypeDummy, Src: "peer", Dst: dst,
		CreatedNanos: time.Now().UnixNano()}
	if err := b.InjectRemote(h, framed); err != nil {
		t.Fatalf("InjectRemote: %v", err)
	}
	var wg sync.WaitGroup
	for i, p := range ports {
		wg.Add(1)
		go func(i int, p *Port) {
			defer wg.Done()
			m, err := p.Recv()
			if err != nil {
				t.Errorf("%s Recv: %v", p.Name(), err)
				return
			}
			m.Header.Round = int32(i) // racy if shared
			if len(m.Header.Dst) != 1 || m.Header.Dst[0] != p.Name() {
				t.Errorf("%s got Dst = %v", p.Name(), m.Header.Dst)
			}
		}(i, p)
	}
	wg.Wait()
	waitDrained(t, b)
}

// TestChannelDrainsAfterMixedTraffic is the acceptance drain test: a
// multi-receiver broadcast run that includes a corrupt-body receive and an
// unregistered destination must leave the store at zero live objects with
// every drop accounted for.
func TestChannelDrainsAfterMixedTraffic(t *testing.T) {
	b := singleMachine(t)
	sender, err := b.Register("learner")
	if err != nil {
		t.Fatalf("Register: %v", err)
	}
	const n = 4
	ports := make([]*Port, n)
	names := make([]string, n)
	for i := range ports {
		names[i] = fmt.Sprintf("recv-%d", i)
		p, err := b.Register(names[i])
		if err != nil {
			t.Fatalf("Register: %v", err)
		}
		ports[i] = p
	}

	// Broadcast to all receivers plus an unregistered destination.
	dst := append(append([]string(nil), names...), "ghost")
	w := &message.WeightsPayload{Version: 1, Data: make([]float32, 256)}
	if err := sender.Send(message.New(message.TypeWeights, "learner", dst, w)); err != nil {
		t.Fatalf("Send: %v", err)
	}
	var wg sync.WaitGroup
	for _, p := range ports {
		wg.Add(1)
		go func(p *Port) {
			defer wg.Done()
			if _, err := p.Recv(); err != nil {
				t.Errorf("%s Recv: %v", p.Name(), err)
			}
		}(p)
	}
	wg.Wait()

	// One corrupt body delivered to the first receiver.
	hc := &message.Header{ID: 2, Type: message.TypeDummy, Src: "peer",
		Dst: []string{names[0]}, CreatedNanos: time.Now().UnixNano()}
	if err := b.InjectRemote(hc, corruptFrame); err != nil {
		t.Fatalf("InjectRemote: %v", err)
	}
	if _, err := ports[0].Recv(); err == nil {
		t.Fatal("corrupt body Recv did not error")
	}

	waitDrained(t, b)
	if leaks := b.Leaked(0); len(leaks) != 0 {
		t.Fatalf("leak detector reports %d record(s): %+v", len(leaks), leaks)
	}
	m := b.Metrics()
	if m.Drops.UnknownDestination != 1 {
		t.Fatalf("Drops.UnknownDestination = %d, want 1 (ghost)", m.Drops.UnknownDestination)
	}
	if m.Drops.RecvError != 1 {
		t.Fatalf("Drops.RecvError = %d, want 1 (corrupt body)", m.Drops.RecvError)
	}
	if m.ReleaseErrors != 0 {
		t.Fatalf("ReleaseErrors = %d, want 0", m.ReleaseErrors)
	}
	if m.Receives != n {
		t.Fatalf("Receives = %d, want %d", m.Receives, n)
	}
}

// TestStopReclaimsUndelivered: headers sitting in ID queues at shutdown
// must have their references reclaimed, leaving zero leaked objects.
func TestStopReclaimsUndelivered(t *testing.T) {
	b := New(Config{MachineID: 0})
	s, err := b.Register("s")
	if err != nil {
		t.Fatalf("Register: %v", err)
	}
	if _, err := b.Register("idle"); err != nil {
		t.Fatalf("Register: %v", err)
	}
	for i := 0; i < 3; i++ {
		if err := s.Send(dummyMsg("s", []string{"idle"}, make([]byte, 128))); err != nil {
			t.Fatalf("Send: %v", err)
		}
	}
	// Let the router move the headers into the idle client's queue.
	deadline := time.Now().Add(time.Second)
	for b.Metrics().HeadersRouted < 3 {
		if time.Now().After(deadline) {
			t.Fatal("router never dispatched the messages")
		}
		time.Sleep(time.Millisecond)
	}
	b.Stop()
	m := b.Metrics()
	if m.LeakedAtStop != 0 {
		t.Fatalf("LeakedAtStop = %d, want 0; %v", m.LeakedAtStop, b.VerifyDrained())
	}
	if m.Drops.ShutdownDrained != 3 {
		t.Fatalf("Drops.ShutdownDrained = %d, want 3", m.Drops.ShutdownDrained)
	}
	if err := b.VerifyDrained(); err != nil {
		t.Fatalf("VerifyDrained after Stop: %v", err)
	}
}

// TestUnregisterReclaimsUndelivered: Unregister of a client with queued
// messages must not leak their bodies.
func TestUnregisterReclaimsUndelivered(t *testing.T) {
	b := singleMachine(t)
	s, _ := b.Register("s")
	if _, err := b.Register("leaver"); err != nil {
		t.Fatalf("Register: %v", err)
	}
	if err := s.Send(dummyMsg("s", []string{"leaver"}, make([]byte, 64))); err != nil {
		t.Fatalf("Send: %v", err)
	}
	deadline := time.Now().Add(time.Second)
	for b.Metrics().HeadersRouted < 1 {
		if time.Now().After(deadline) {
			t.Fatal("router never dispatched")
		}
		time.Sleep(time.Millisecond)
	}
	b.Unregister("leaver")
	waitDrained(t, b)
}

// TestMetricsSnapshotCounters sanity-checks the counter set over a small
// local exchange.
func TestMetricsSnapshotCounters(t *testing.T) {
	b := singleMachine(t)
	s, _ := b.Register("s")
	r, _ := b.Register("r")
	const rounds = 5
	for i := 0; i < rounds; i++ {
		if err := s.Send(dummyMsg("s", []string{"r"}, make([]byte, 256))); err != nil {
			t.Fatalf("Send: %v", err)
		}
		if _, err := r.Recv(); err != nil {
			t.Fatalf("Recv: %v", err)
		}
	}
	m := b.Metrics()
	if m.Sends != rounds || m.Receives != rounds || m.HeadersRouted != rounds {
		t.Fatalf("sends/recvs/routed = %d/%d/%d, want %d each", m.Sends, m.Receives, m.HeadersRouted, rounds)
	}
	if m.BytesIn < rounds*256 {
		t.Fatalf("BytesIn = %d, want >= %d", m.BytesIn, rounds*256)
	}
	if m.Delivery.Count != rounds || m.Delivery.Mean <= 0 {
		t.Fatalf("Delivery = %+v, want %d samples with positive mean", m.Delivery, rounds)
	}
	if m.Drops.Total() != 0 {
		t.Fatalf("Drops.Total = %d, want 0", m.Drops.Total())
	}
	if got := m.IDQueueDepths["r"]; got != 0 {
		t.Fatalf("IDQueueDepths[r] = %d, want 0", got)
	}
	for _, render := range []string{m.String(), m.Summary()} {
		if !strings.Contains(render, "m0") {
			t.Fatalf("formatter output missing machine tag: %q", render)
		}
	}
}

// TestClusterHealthCrossMachine: cross-machine traffic shows up in the
// forwarding broker's forwarded counters and the receiving broker's
// injected counters, and both stores drain.
func TestClusterHealthCrossMachine(t *testing.T) {
	c := fastCluster(t)
	if _, err := c.AddBroker(0, serialize.Compressor{}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddBroker(1, serialize.Compressor{}); err != nil {
		t.Fatal(err)
	}
	s, err := c.Register(0, "src")
	if err != nil {
		t.Fatal(err)
	}
	r, err := c.Register(1, "dst")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Send(dummyMsg("src", []string{"dst"}, make([]byte, 2048))); err != nil {
		t.Fatalf("Send: %v", err)
	}
	if _, err := r.Recv(); err != nil {
		t.Fatalf("Recv: %v", err)
	}
	deadline := time.Now().Add(time.Second)
	for {
		h := c.Health()
		if len(h.Brokers) == 2 &&
			h.Brokers[0].BodiesForwarded == 1 && h.Brokers[1].BodiesInjected == 1 &&
			h.Brokers[0].Store.Objects == 0 && h.Brokers[1].Store.Objects == 0 {
			if h.Brokers[0].BytesForwarded < 2048 || h.Brokers[1].BytesInjected < 2048 {
				t.Fatalf("forwarded/injected bytes = %d/%d, want >= 2048",
					h.Brokers[0].BytesForwarded, h.Brokers[1].BytesInjected)
			}
			if !strings.Contains(h.Summary(), "m1") {
				t.Fatalf("cluster summary missing machine 1: %q", h.Summary())
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("cross-machine counters never settled: %s", h.String())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestDropsUnknownDestinationMetric covers the router's unknown-destination
// release path with accounting.
func TestDropsUnknownDestinationMetric(t *testing.T) {
	b := singleMachine(t)
	s, _ := b.Register("s")
	if err := s.Send(dummyMsg("s", []string{"ghost"}, make([]byte, 64))); err != nil {
		t.Fatalf("Send: %v", err)
	}
	deadline := time.Now().Add(time.Second)
	for b.Metrics().Drops.UnknownDestination != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("Drops.UnknownDestination = %d, want 1", b.Metrics().Drops.UnknownDestination)
		}
		time.Sleep(time.Millisecond)
	}
	waitDrained(t, b)
}

// TestRecvStoreMissSurfacesNotFound: a header pointing at a missing body
// reports the store miss instead of double-releasing.
func TestRecvStoreMissSurfacesNotFound(t *testing.T) {
	b := singleMachine(t)
	p, _ := b.Register("r")
	h := &message.Header{ID: 3, Type: message.TypeDummy, Src: "x",
		Dst: []string{"r"}, ObjectID: objectstore.ID(999)}
	if err := p.idQueue.Put(h); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if _, err := p.Recv(); !errors.Is(err, objectstore.ErrNotFound) {
		t.Fatalf("Recv = %v, want ErrNotFound", err)
	}
	if got := b.Metrics().Drops.StoreMiss; got != 1 {
		t.Fatalf("Drops.StoreMiss = %d, want 1", got)
	}
	if got := b.Metrics().ReleaseErrors; got != 0 {
		t.Fatalf("ReleaseErrors = %d, want 0 (no release attempted on miss)", got)
	}
}
