// Package stats provides the measurement utilities behind the paper's
// evaluation figures: throughput meters (rollout steps consumed per second),
// latency histograms and CDFs (Fig. 8(c)), and time-bucketed series
// (the throughput timelines of Figs. 8–10).
package stats

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"
)

// Meter counts events and bytes over wall time.
type Meter struct {
	mu      sync.Mutex
	start   time.Time
	events  int64
	bytes   int64
	started bool
}

// NewMeter returns an idle meter; the clock starts at the first Add.
func NewMeter() *Meter { return &Meter{} }

// Add records n events carrying the given total bytes.
func (m *Meter) Add(n int, bytes int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.started {
		m.start = time.Now()
		m.started = true
	}
	m.events += int64(n)
	m.bytes += bytes
}

// Snapshot returns totals and rates since the first Add.
func (m *Meter) Snapshot() (events, bytes int64, perSec, bytesPerSec float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.started {
		return 0, 0, 0, 0
	}
	elapsed := time.Since(m.start).Seconds()
	if elapsed <= 0 {
		elapsed = 1e-9
	}
	return m.events, m.bytes, float64(m.events) / elapsed, float64(m.bytes) / elapsed
}

// Histogram collects duration samples for percentile and CDF reporting.
// An unbounded histogram (NewHistogram) keeps every sample; a bounded one
// (NewBoundedHistogram) keeps a uniform reservoir, so it can sit on an
// always-on hot path (e.g. the broker's send→recv latency tracking) without
// growing with traffic. Count and Mean are exact in both modes; percentiles
// and CDFs are computed over the reservoir.
type Histogram struct {
	mu      sync.Mutex
	samples []time.Duration
	max     int   // 0 = unbounded
	count   int64 // total observations (exact)
	sum     time.Duration
	rng     uint64 // xorshift state for reservoir replacement
}

// NewHistogram returns an empty histogram that keeps every sample.
func NewHistogram() *Histogram { return &Histogram{} }

// NewBoundedHistogram returns a histogram that retains at most max samples
// via reservoir sampling (max < 1 falls back to 1024).
func NewBoundedHistogram(max int) *Histogram {
	if max < 1 {
		max = 1024
	}
	return &Histogram{max: max, rng: 0x9e3779b97f4a7c15}
}

// Observe records one duration sample.
func (h *Histogram) Observe(d time.Duration) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.count++
	h.sum += d
	if h.max == 0 || len(h.samples) < h.max {
		h.samples = append(h.samples, d)
		return
	}
	// Algorithm R: keep each observation with probability max/count.
	h.rng ^= h.rng << 13
	h.rng ^= h.rng >> 7
	h.rng ^= h.rng << 17
	if idx := h.rng % uint64(h.count); idx < uint64(h.max) {
		h.samples[idx] = d
	}
}

// Count returns the number of observations (not the retained sample size).
func (h *Histogram) Count() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return int(h.count)
}

// Mean returns the arithmetic mean of all observations (0 when empty).
func (h *Histogram) Mean() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.sum / time.Duration(h.count)
}

// Percentile returns the p-th percentile (0 <= p <= 100) by nearest-rank.
func (h *Histogram) Percentile(p float64) time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.samples) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), h.samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	rank := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

// FractionBelow returns the fraction of samples strictly below d — the CDF
// evaluated at d, e.g. Fig. 8(c)'s "96.61% of waits are under 20 ms".
func (h *Histogram) FractionBelow(d time.Duration) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.samples) == 0 {
		return 0
	}
	n := 0
	for _, s := range h.samples {
		if s < d {
			n++
		}
	}
	return float64(n) / float64(len(h.samples))
}

// CDF returns (value, cumulative fraction) points for plotting.
func (h *Histogram) CDF() []CDFPoint {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.samples) == 0 {
		return nil
	}
	sorted := append([]time.Duration(nil), h.samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	out := make([]CDFPoint, len(sorted))
	for i, s := range sorted {
		out[i] = CDFPoint{Value: s, Fraction: float64(i+1) / float64(len(sorted))}
	}
	return out
}

// CDFPoint is one point of an empirical CDF.
type CDFPoint struct {
	Value    time.Duration
	Fraction float64
}

// Series buckets event counts into fixed wall-time windows, producing the
// throughput-over-time curves of Figs. 8(a), 9(a), and 10(a).
type Series struct {
	mu      sync.Mutex
	start   time.Time
	bucket  time.Duration
	counts  []float64
	started bool
}

// NewSeries returns a series with the given bucket width.
func NewSeries(bucket time.Duration) *Series {
	if bucket <= 0 {
		bucket = time.Second
	}
	return &Series{bucket: bucket}
}

// Add records value at the current time.
func (s *Series) Add(value float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.started {
		s.start = time.Now()
		s.started = true
	}
	idx := int(time.Since(s.start) / s.bucket)
	for len(s.counts) <= idx {
		s.counts = append(s.counts, 0)
	}
	s.counts[idx] += value
}

// PerSecond returns the bucketed series normalized to events per second.
func (s *Series) PerSecond() []float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]float64, len(s.counts))
	sec := s.bucket.Seconds()
	for i, c := range s.counts {
		out[i] = c / sec
	}
	return out
}

// Mean returns the average per-second rate across all complete buckets.
// The bucket currently being filled is excluded — averaging it as if the
// full bucket width had elapsed would understate the rate — unless it is
// the only bucket, in which case it is used as a best-effort estimate.
func (s *Series) Mean() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.started || len(s.counts) == 0 {
		return 0
	}
	// Buckets strictly before the current wall-time bucket are complete.
	complete := int(time.Since(s.start) / s.bucket)
	n := len(s.counts)
	if complete < n {
		n = complete
	}
	if n <= 0 {
		n = len(s.counts) // only the open bucket exists: fall back to it
	}
	var sum float64
	for _, c := range s.counts[:n] {
		sum += c
	}
	return sum / s.bucket.Seconds() / float64(n)
}

// FormatBytes renders a byte count human-readably for experiment output.
func FormatBytes(b float64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.2f GB", b/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.2f MB", b/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.2f KB", b/(1<<10))
	default:
		return fmt.Sprintf("%.0f B", b)
	}
}
