// Package stats provides the measurement utilities behind the paper's
// evaluation figures: throughput meters (rollout steps consumed per second),
// latency histograms and CDFs (Fig. 8(c)), and time-bucketed series
// (the throughput timelines of Figs. 8–10).
package stats

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"
)

// Meter counts events and bytes over wall time.
type Meter struct {
	mu      sync.Mutex
	start   time.Time
	events  int64
	bytes   int64
	started bool
}

// NewMeter returns an idle meter; the clock starts at the first Add.
func NewMeter() *Meter { return &Meter{} }

// Add records n events carrying the given total bytes.
func (m *Meter) Add(n int, bytes int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.started {
		m.start = time.Now()
		m.started = true
	}
	m.events += int64(n)
	m.bytes += bytes
}

// Snapshot returns totals and rates since the first Add.
func (m *Meter) Snapshot() (events, bytes int64, perSec, bytesPerSec float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.started {
		return 0, 0, 0, 0
	}
	elapsed := time.Since(m.start).Seconds()
	if elapsed <= 0 {
		elapsed = 1e-9
	}
	return m.events, m.bytes, float64(m.events) / elapsed, float64(m.bytes) / elapsed
}

// Histogram collects duration samples for percentile and CDF reporting.
type Histogram struct {
	mu      sync.Mutex
	samples []time.Duration
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram { return &Histogram{} }

// Observe records one duration sample.
func (h *Histogram) Observe(d time.Duration) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.samples = append(h.samples, d)
}

// Count returns the number of samples.
func (h *Histogram) Count() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.samples)
}

// Mean returns the arithmetic mean of all samples (0 when empty).
func (h *Histogram) Mean() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.samples) == 0 {
		return 0
	}
	var total time.Duration
	for _, s := range h.samples {
		total += s
	}
	return total / time.Duration(len(h.samples))
}

// Percentile returns the p-th percentile (0 <= p <= 100) by nearest-rank.
func (h *Histogram) Percentile(p float64) time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.samples) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), h.samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	rank := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

// FractionBelow returns the fraction of samples strictly below d — the CDF
// evaluated at d, e.g. Fig. 8(c)'s "96.61% of waits are under 20 ms".
func (h *Histogram) FractionBelow(d time.Duration) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.samples) == 0 {
		return 0
	}
	n := 0
	for _, s := range h.samples {
		if s < d {
			n++
		}
	}
	return float64(n) / float64(len(h.samples))
}

// CDF returns (value, cumulative fraction) points for plotting.
func (h *Histogram) CDF() []CDFPoint {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.samples) == 0 {
		return nil
	}
	sorted := append([]time.Duration(nil), h.samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	out := make([]CDFPoint, len(sorted))
	for i, s := range sorted {
		out[i] = CDFPoint{Value: s, Fraction: float64(i+1) / float64(len(sorted))}
	}
	return out
}

// CDFPoint is one point of an empirical CDF.
type CDFPoint struct {
	Value    time.Duration
	Fraction float64
}

// Series buckets event counts into fixed wall-time windows, producing the
// throughput-over-time curves of Figs. 8(a), 9(a), and 10(a).
type Series struct {
	mu      sync.Mutex
	start   time.Time
	bucket  time.Duration
	counts  []float64
	started bool
}

// NewSeries returns a series with the given bucket width.
func NewSeries(bucket time.Duration) *Series {
	if bucket <= 0 {
		bucket = time.Second
	}
	return &Series{bucket: bucket}
}

// Add records value at the current time.
func (s *Series) Add(value float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.started {
		s.start = time.Now()
		s.started = true
	}
	idx := int(time.Since(s.start) / s.bucket)
	for len(s.counts) <= idx {
		s.counts = append(s.counts, 0)
	}
	s.counts[idx] += value
}

// PerSecond returns the bucketed series normalized to events per second.
func (s *Series) PerSecond() []float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]float64, len(s.counts))
	sec := s.bucket.Seconds()
	for i, c := range s.counts {
		out[i] = c / sec
	}
	return out
}

// Mean returns the average per-second rate across all complete buckets.
func (s *Series) Mean() float64 {
	rates := s.PerSecond()
	if len(rates) == 0 {
		return 0
	}
	var sum float64
	for _, r := range rates {
		sum += r
	}
	return sum / float64(len(rates))
}

// FormatBytes renders a byte count human-readably for experiment output.
func FormatBytes(b float64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.2f GB", b/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.2f MB", b/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.2f KB", b/(1<<10))
	default:
		return fmt.Sprintf("%.0f B", b)
	}
}
