package stats

import (
	"testing"
	"testing/quick"
	"time"
)

func TestMeterTotals(t *testing.T) {
	m := NewMeter()
	m.Add(10, 1000)
	m.Add(5, 500)
	events, bytes, perSec, bps := m.Snapshot()
	if events != 15 || bytes != 1500 {
		t.Fatalf("Snapshot = %d events %d bytes", events, bytes)
	}
	if perSec <= 0 || bps <= 0 {
		t.Fatalf("rates = %v %v, want positive", perSec, bps)
	}
}

func TestMeterIdle(t *testing.T) {
	m := NewMeter()
	events, bytes, perSec, bps := m.Snapshot()
	if events != 0 || bytes != 0 || perSec != 0 || bps != 0 {
		t.Fatal("idle meter not all-zero")
	}
}

func TestHistogramMeanPercentile(t *testing.T) {
	h := NewHistogram()
	for i := 1; i <= 100; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	if h.Count() != 100 {
		t.Fatalf("Count = %d", h.Count())
	}
	if mean := h.Mean(); mean != 50500*time.Microsecond {
		t.Fatalf("Mean = %v, want 50.5ms", mean)
	}
	if p50 := h.Percentile(50); p50 != 50*time.Millisecond {
		t.Fatalf("P50 = %v, want 50ms", p50)
	}
	if p100 := h.Percentile(100); p100 != 100*time.Millisecond {
		t.Fatalf("P100 = %v", p100)
	}
	if p0 := h.Percentile(0); p0 != 1*time.Millisecond {
		t.Fatalf("P0 = %v", p0)
	}
}

func TestHistogramFractionBelow(t *testing.T) {
	h := NewHistogram()
	for i := 1; i <= 10; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	if f := h.FractionBelow(5 * time.Millisecond); f != 0.4 {
		t.Fatalf("FractionBelow(5ms) = %v, want 0.4", f)
	}
	if f := h.FractionBelow(time.Hour); f != 1 {
		t.Fatalf("FractionBelow(1h) = %v, want 1", f)
	}
}

func TestHistogramCDFMonotone(t *testing.T) {
	h := NewHistogram()
	for _, d := range []time.Duration{5, 1, 3, 2, 4} {
		h.Observe(d * time.Millisecond)
	}
	cdf := h.CDF()
	if len(cdf) != 5 {
		t.Fatalf("CDF has %d points", len(cdf))
	}
	for i := 1; i < len(cdf); i++ {
		if cdf[i].Value < cdf[i-1].Value || cdf[i].Fraction <= cdf[i-1].Fraction {
			t.Fatalf("CDF not monotone at %d", i)
		}
	}
	if cdf[len(cdf)-1].Fraction != 1 {
		t.Fatalf("CDF does not end at 1: %v", cdf[len(cdf)-1].Fraction)
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram()
	if h.Mean() != 0 || h.Percentile(50) != 0 || h.FractionBelow(time.Second) != 0 || h.CDF() != nil {
		t.Fatal("empty histogram should return zero values")
	}
}

func TestSeriesBuckets(t *testing.T) {
	s := NewSeries(20 * time.Millisecond)
	s.Add(5)
	time.Sleep(25 * time.Millisecond)
	s.Add(3)
	rates := s.PerSecond()
	if len(rates) < 2 {
		t.Fatalf("series has %d buckets, want >= 2", len(rates))
	}
	if rates[0] != 5/0.02 {
		t.Fatalf("bucket0 rate = %v, want 250", rates[0])
	}
	if s.Mean() <= 0 {
		t.Fatalf("Mean = %v", s.Mean())
	}
}

func TestSeriesDefaults(t *testing.T) {
	s := NewSeries(0)
	if s.bucket != time.Second {
		t.Fatalf("default bucket = %v", s.bucket)
	}
	if s.Mean() != 0 {
		t.Fatal("empty series Mean != 0")
	}
}

func TestFormatBytes(t *testing.T) {
	cases := map[float64]string{
		512:             "512 B",
		2048:            "2.00 KB",
		3 << 20:         "3.00 MB",
		1.5 * (1 << 30): "1.50 GB",
	}
	for in, want := range cases {
		if got := FormatBytes(in); got != want {
			t.Fatalf("FormatBytes(%v) = %q, want %q", in, got, want)
		}
	}
}

// TestPropertyPercentileWithinRange: any percentile of any sample set is
// between min and max.
func TestPropertyPercentileWithinRange(t *testing.T) {
	f := func(raw []uint16, p uint8) bool {
		if len(raw) == 0 {
			return true
		}
		h := NewHistogram()
		min, max := time.Duration(raw[0]), time.Duration(raw[0])
		for _, r := range raw {
			d := time.Duration(r)
			h.Observe(d)
			if d < min {
				min = d
			}
			if d > max {
				max = d
			}
		}
		got := h.Percentile(float64(p % 101))
		return got >= min && got <= max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestSeriesMeanExcludesOpenBucket: the bucket still being filled must not
// drag the mean down as if its full width had elapsed.
func TestSeriesMeanExcludesOpenBucket(t *testing.T) {
	s := NewSeries(time.Second)
	s.mu.Lock()
	s.started = true
	// 2.5 bucket-widths elapsed: buckets 0 and 1 complete, bucket 2 open.
	s.start = time.Now().Add(-2500 * time.Millisecond)
	s.counts = []float64{10, 20, 5}
	s.mu.Unlock()
	got := s.Mean()
	want := (10.0 + 20.0) / 2
	if got < want-0.01 || got > want+0.01 {
		t.Fatalf("Mean = %v, want %v (open bucket excluded)", got, want)
	}
}

func TestSeriesMeanFallsBackToOnlyBucket(t *testing.T) {
	s := NewSeries(time.Hour)
	s.Add(3600) // the single, still-open bucket
	got := s.Mean()
	want := 3600.0 / 3600.0
	if got < want-0.01 || got > want+0.01 {
		t.Fatalf("Mean = %v, want %v (single open bucket fallback)", got, want)
	}
}

func TestSeriesMeanEmpty(t *testing.T) {
	if got := NewSeries(time.Second).Mean(); got != 0 {
		t.Fatalf("Mean on empty series = %v, want 0", got)
	}
}

// TestBoundedHistogram: the reservoir caps retained samples while Count and
// Mean stay exact and percentiles stay within the observed range.
func TestBoundedHistogram(t *testing.T) {
	h := NewBoundedHistogram(64)
	const n = 10_000
	var sum time.Duration
	for i := 1; i <= n; i++ {
		d := time.Duration(i) * time.Microsecond
		h.Observe(d)
		sum += d
	}
	if h.Count() != n {
		t.Fatalf("Count = %d, want %d", h.Count(), n)
	}
	if got, want := h.Mean(), sum/n; got != want {
		t.Fatalf("Mean = %v, want %v", got, want)
	}
	h.mu.Lock()
	retained := len(h.samples)
	h.mu.Unlock()
	if retained > 64 {
		t.Fatalf("retained %d samples, want <= 64", retained)
	}
	p50 := h.Percentile(50)
	if p50 < time.Microsecond || p50 > n*time.Microsecond {
		t.Fatalf("P50 = %v outside observed range", p50)
	}
}
