// Package objectstore implements the shared-memory object store at the heart
// of XingTian's broker process.
//
// Message bodies are inserted once and referenced by ID from message headers
// travelling through the header and ID queues; receivers fetch bodies by ID
// without copies (Get returns the stored slice). Reference counting lets the
// router pin a body once per destination so that a broadcast (e.g. updated
// DNN parameters to N explorers) is freed exactly after the last receiver
// has copied it out.
//
// # Sharding
//
// The store is sharded: objects are distributed across a power-of-two number
// of shards by the low bits of their ID, each shard guarded by its own
// RWMutex. IDs come from one atomic counter, so consecutive Puts land on
// consecutive shards and a broadcast's Pin/Release traffic for different
// objects never contends on a shared lock. Reference counts are atomics:
// Pin and non-final Release touch only a read lock plus one atomic add, so
// the concurrent fan-out lifecycle of a weights broadcast (N receivers
// releasing the same object while M explorers put rollouts) scales with
// cores instead of serializing behind one global mutex.
//
// # Reference-count ownership contract
//
// The channel observes a strict pin/release discipline; every object's
// reference count must return to zero on every path, including errors:
//
//   - The sender (Port.Send) calls Put with one reference per resolved
//     destination (local names plus remote machines). From that moment each
//     reference is owned by whichever stage currently holds the header for
//     that destination.
//   - The router (Broker.route) transfers one reference per local
//     destination into that client's ID queue, and one per remote machine
//     into the forwarder queue. If a destination is unknown, its queue is
//     closed, or no Remote is configured, the router releases that
//     destination's reference immediately — the drop is counted, never
//     leaked.
//   - The receiver (Port.Recv → materialize) owns the reference once the
//     header is popped from its ID queue and must release it whether or not
//     decompression/decoding succeeds.
//   - The forwarder goroutine owns the remote reference and releases it
//     after Remote.Forward returns, success or failure.
//   - Broker.Stop drains undelivered headers from closed ID queues and
//     releases their references, then asserts the store is drained
//     (VerifyDrained) and records any leak in the broker metrics.
//
// # The Get / final-Release race rule
//
// Get returns the stored slice without copying and without touching the
// reference count. The returned bytes are only valid while the caller holds
// a reference of its own: calling Get on an ID whose references are all
// owned by other goroutines races with the final Release of that object
// (the lookup may fail, or the slice may be read while another goroutine
// frees the object's accounting). Every holder in the channel observes the
// rule implicitly — a stage calls Get only on headers it popped, and the
// popped header carries the stage's own reference. Pin first if you need
// bytes to outlive your current reference.
//
// # Leak detection
//
// The leak detector (Leaked, VerifyDrained) makes violations of the
// contract observable. The hot path never reads the wall clock: each entry
// records a monotonic shard-local creation sequence number, and observers
// (Checkpoint, Leaked) record watermarks — (time, per-shard sequence)
// snapshots. An object's reported Age is the provable lower bound derived
// from the oldest watermark that already covered its sequence number, so an
// object reported older than the channel's in-flight window is a certain
// leak, never a false positive.
//
// # Byte budget and backpressure
//
// A store built with WithBudget is bounded: live bytes are tracked globally
// (one atomic, off the shard locks) against a byte budget with high/low
// watermarks. Crossing the high watermark flips the store into backpressure
// mode (Pressured, Stats.Backpressure); falling back to the low watermark
// clears it. Put always succeeds — privileged traffic (model updates,
// control) must never be refused — but TryPut, the admission path for
// droppable traffic (trajectories), rejects with ErrBudget once the bytes a
// new body would add cross the high watermark. The band between the high
// watermark and the budget is therefore reserved headroom for privileged
// bodies: as long as privileged in-flight bytes stay inside it, the global
// peak (Stats.PeakLiveBytes) never exceeds the budget.
package objectstore

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// ErrNotFound is returned when an object ID is absent from the store.
var ErrNotFound = errors.New("objectstore: object not found")

// ErrNotDrained is returned by VerifyDrained when live objects remain.
var ErrNotDrained = errors.New("objectstore: store not drained")

// ErrBudget is returned by TryPut when admitting the body would push live
// bytes past the bounded store's high watermark.
var ErrBudget = errors.New("objectstore: byte budget exhausted")

// ID identifies an object in a store. IDs are unique per store for its
// lifetime (monotonic, never reused); the low bits select the shard.
type ID uint64

// Stats is a snapshot of store occupancy counters. Store.Stats aggregates
// the per-shard counters; ShardStats exposes them individually.
type Stats struct {
	// Objects is the number of live objects.
	Objects int
	// Bytes is the total size of live objects.
	Bytes int64
	// PeakBytes is the high-water mark of Bytes. For the aggregate
	// snapshot this is the sum of per-shard high-water marks, which is an
	// upper bound on (and for serial workloads equal to) the instantaneous
	// global peak.
	PeakBytes int64
	// TotalPut is the cumulative number of Put calls.
	TotalPut int64
	// TotalReleased is the cumulative number of objects fully released.
	TotalReleased int64
	// ReleaseErrors is the cumulative number of Release calls on unknown
	// IDs — each one is a double release or a release of a never-stored
	// object, i.e. a refcount-discipline violation.
	ReleaseErrors int64

	// The remaining fields describe the store-wide byte budget. They are
	// filled only by the aggregate Stats() snapshot (ShardStats leaves them
	// zero — budgets are global, not per shard).

	// Budget is the configured byte budget (0 = unbounded).
	Budget int64
	// PeakLiveBytes is the true instantaneous high-water mark of global
	// live bytes, tracked atomically across shards. Unlike PeakBytes (the
	// sum of per-shard peaks, an upper bound) this is exact, so a bounded
	// store proves PeakLiveBytes <= Budget.
	PeakLiveBytes int64
	// Backpressure reports whether the store is currently above its high
	// watermark (always false for unbounded stores).
	Backpressure bool
	// BackpressureEnters counts transitions into backpressure mode.
	BackpressureEnters int64
	// BudgetRejects counts TryPut calls refused with ErrBudget.
	BudgetRejects int64
}

// add accumulates the per-shard fields of o into s field-wise (the budget
// fields are store-global and not touched here).
func (s *Stats) add(o Stats) {
	s.Objects += o.Objects
	s.Bytes += o.Bytes
	s.PeakBytes += o.PeakBytes
	s.TotalPut += o.TotalPut
	s.TotalReleased += o.TotalReleased
	s.ReleaseErrors += o.ReleaseErrors
}

// entry is one stored object. refs is atomic so Pin and non-final Release
// need no shard write lock; data and seq are immutable after insertion.
type entry struct {
	data []byte
	seq  uint64 // shard-local creation sequence, assigned under shard.mu
	refs atomic.Int64
}

// shard is one lock domain of the store. The plain fields (objects map,
// seq, stats) are guarded by mu; releaseErrors is atomic because the
// unknown-ID path holds no lock. Padding keeps adjacent shards off one
// cache line so refcount traffic on shard i never dirties shard i+1.
type shard struct {
	mu      sync.RWMutex
	objects map[ID]*entry
	seq     uint64
	stats   Stats // ReleaseErrors field unused here; see releaseErrors

	releaseErrors atomic.Int64

	_ [24]byte // pad to a multiple of the cache line size
}

// watermark is one observer snapshot: every entry whose shard sequence is
// <= seqs[shard] provably existed at time t.
type watermark struct {
	t    time.Time
	seqs []uint64
}

// Store is an in-memory object store with reference counting. It models the
// plasma/Arrow shared-memory store of the paper: zero-copy reads, explicit
// pin/release life cycle. The zero value is not usable; use New.
type Store struct {
	nextID atomic.Uint64
	mask   uint64
	shards []shard

	// Byte-budget accounting, global across shards. budget/highMark/lowMark
	// are immutable after New; liveBytes and peakLive are maintained off the
	// shard locks so the budget check never serializes Puts.
	budget   int64
	highMark int64
	lowMark  int64

	liveBytes     atomic.Int64
	peakLive      atomic.Int64
	pressured     atomic.Bool
	bpEnters      atomic.Int64
	budgetRejects atomic.Int64

	markMu sync.Mutex
	marks  []watermark
}

// Option configures a store at construction.
type Option func(*Store)

// Default watermark fractions of the budget: backpressure engages at the
// high watermark and clears at the low one (hysteresis, so a store hovering
// at the boundary doesn't flap).
const (
	DefaultHighWatermark = 0.85
	DefaultLowWatermark  = 0.60
)

// WithBudget bounds the store to roughly budget live bytes: TryPut rejects
// droppable admissions at the high watermark, and Pressured/Stats surface
// backpressure to callers. budget <= 0 keeps the store unbounded.
func WithBudget(budget int64) Option {
	return func(s *Store) {
		if budget <= 0 {
			return
		}
		s.budget = budget
		s.highMark = int64(float64(budget) * DefaultHighWatermark)
		s.lowMark = int64(float64(budget) * DefaultLowWatermark)
	}
}

// WithWatermarks overrides the backpressure watermarks as fractions of the
// budget (0 < low <= high <= 1). It only has an effect combined with
// WithBudget; out-of-range values keep the defaults.
func WithWatermarks(high, low float64) Option {
	return func(s *Store) {
		if s.budget <= 0 || high <= 0 || high > 1 || low <= 0 || low > high {
			return
		}
		s.highMark = int64(float64(s.budget) * high)
		s.lowMark = int64(float64(s.budget) * low)
	}
}

// DefaultShards is the shard count used by New: the smallest power of two
// covering the machine's CPUs, clamped to [8, 128] so that small hosts
// still spread broadcast traffic and huge hosts don't pay for hundreds of
// near-empty maps.
func DefaultShards() int {
	n := ceilPow2(runtime.NumCPU())
	if n < 8 {
		n = 8
	}
	if n > 128 {
		n = 128
	}
	return n
}

// ceilPow2 returns the smallest power of two >= n (n <= 0 yields 1).
func ceilPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// New returns an empty store with DefaultShards shards. Options (WithBudget,
// WithWatermarks — budget first) bound the store; none keeps it unbounded.
func New(opts ...Option) *Store {
	return NewSharded(DefaultShards(), opts...)
}

// NewSharded returns an empty store with the given shard count, rounded up
// to a power of two. nshards <= 1 yields a single-shard store (useful for
// contention baselines in benchmarks).
func NewSharded(nshards int, opts ...Option) *Store {
	n := ceilPow2(nshards)
	s := &Store{
		mask:   uint64(n - 1),
		shards: make([]shard, n),
	}
	for i := range s.shards {
		s.shards[i].objects = make(map[ID]*entry)
	}
	for _, opt := range opts {
		opt(s)
	}
	return s
}

// Budget reports the configured byte budget (0 = unbounded).
func (s *Store) Budget() int64 { return s.budget }

// Pressured reports whether the store is in backpressure mode: live bytes
// crossed the high watermark and have not yet fallen back to the low one.
// Always false for unbounded stores.
func (s *Store) Pressured() bool { return s.pressured.Load() }

// NumShards reports the store's shard count.
func (s *Store) NumShards() int { return len(s.shards) }

// shardFor selects the shard owning id.
func (s *Store) shardFor(id ID) *shard {
	return &s.shards[uint64(id)&s.mask]
}

// Put inserts data with an initial reference count of refs (refs < 1 is
// treated as 1) and returns its ID. The store takes ownership of data; the
// caller must not mutate it afterwards — this is the zero-copy contract.
//
// Put never fails, even on a bounded store past its budget: it is the
// privileged admission path (model updates, control traffic). Droppable
// traffic must go through TryPut so the high-watermark band stays reserved
// for privileged bodies.
func (s *Store) Put(data []byte, refs int) ID {
	s.noteLiveAdd(s.liveBytes.Add(int64(len(data))))
	return s.insert(data, refs)
}

// TryPut inserts data like Put but respects the byte budget: on a bounded
// store it rejects with ErrBudget when admitting the body would push live
// bytes past the high watermark (also flipping the store into backpressure
// mode so callers can start shedding). On an unbounded store it never fails.
// This is the admission path for droppable traffic (trajectories).
func (s *Store) TryPut(data []byte, refs int) (ID, error) {
	n := int64(len(data))
	if s.budget <= 0 {
		s.noteLiveAdd(s.liveBytes.Add(n))
		return s.insert(data, refs), nil
	}
	// Reserve the bytes with a CAS loop so concurrent TryPuts cannot
	// collectively overshoot the high watermark.
	for {
		cur := s.liveBytes.Load()
		if cur+n > s.highMark {
			s.budgetRejects.Add(1)
			s.enterPressure()
			return 0, fmt.Errorf("tryput %dB at %dB live: %w", n, cur, ErrBudget)
		}
		if s.liveBytes.CompareAndSwap(cur, cur+n) {
			s.noteLiveAdd(cur + n)
			return s.insert(data, refs), nil
		}
	}
}

// insert performs the shard insertion shared by Put and TryPut. Live-byte
// accounting has already happened.
func (s *Store) insert(data []byte, refs int) ID {
	if refs < 1 {
		refs = 1
	}
	id := ID(s.nextID.Add(1))
	e := &entry{data: data}
	e.refs.Store(int64(refs))
	sh := s.shardFor(id)
	sh.mu.Lock()
	sh.seq++
	e.seq = sh.seq
	sh.objects[id] = e
	sh.stats.Objects++
	sh.stats.Bytes += int64(len(data))
	sh.stats.TotalPut++
	if sh.stats.Bytes > sh.stats.PeakBytes {
		sh.stats.PeakBytes = sh.stats.Bytes
	}
	sh.mu.Unlock()
	return id
}

// noteLiveAdd maintains the global live-byte peak and the backpressure flag
// after live bytes rose to nb.
func (s *Store) noteLiveAdd(nb int64) {
	for {
		p := s.peakLive.Load()
		if nb <= p || s.peakLive.CompareAndSwap(p, nb) {
			break
		}
	}
	if s.budget > 0 && nb >= s.highMark {
		s.enterPressure()
	}
}

// enterPressure flips the store into backpressure mode, counting the
// transition exactly once per episode.
func (s *Store) enterPressure() {
	if s.pressured.CompareAndSwap(false, true) {
		s.bpEnters.Add(1)
	}
}

// Get returns the object's bytes without copying. The returned slice is
// shared: callers must treat it as read-only, must hold a reference of
// their own while using it, and must not use it after that reference's
// Release — see the Get / final-Release race rule in the package comment.
func (s *Store) Get(id ID) ([]byte, error) {
	sh := s.shardFor(id)
	sh.mu.RLock()
	e, ok := sh.objects[id]
	sh.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("get %d: %w", id, ErrNotFound)
	}
	return e.data, nil
}

// Pin increments the object's reference count, e.g. when the router adds an
// additional destination after insertion. The caller must already hold a
// reference (pinning a fully released object is a contract violation).
func (s *Store) Pin(id ID) error {
	sh := s.shardFor(id)
	sh.mu.RLock()
	e, ok := sh.objects[id]
	sh.mu.RUnlock()
	if !ok {
		return fmt.Errorf("pin %d: %w", id, ErrNotFound)
	}
	e.refs.Add(1)
	return nil
}

// Release decrements the object's reference count and frees it when the
// count reaches zero. Releasing an unknown ID returns ErrNotFound and is
// counted in Stats.ReleaseErrors. Only the decrement that lands exactly on
// zero frees the object, so concurrent receivers of a broadcast can release
// without coordination.
func (s *Store) Release(id ID) error {
	sh := s.shardFor(id)
	sh.mu.RLock()
	e, ok := sh.objects[id]
	sh.mu.RUnlock()
	if !ok {
		sh.releaseErrors.Add(1)
		return fmt.Errorf("release %d: %w", id, ErrNotFound)
	}
	n := e.refs.Add(-1)
	if n > 0 {
		return nil
	}
	if n < 0 {
		// A racing over-release of the object the zero-decrementer is
		// currently freeing: a discipline violation, counted like a
		// release of an unknown ID.
		sh.releaseErrors.Add(1)
		return fmt.Errorf("release %d: %w", id, ErrNotFound)
	}
	sh.mu.Lock()
	delete(sh.objects, id)
	sh.stats.Objects--
	sh.stats.Bytes -= int64(len(e.data))
	sh.stats.TotalReleased++
	sh.mu.Unlock()
	nb := s.liveBytes.Add(-int64(len(e.data)))
	if s.budget > 0 && nb <= s.lowMark {
		s.pressured.CompareAndSwap(true, false)
	}
	return nil
}

// Refs reports the current reference count of id, or 0 when absent.
func (s *Store) Refs(id ID) int {
	sh := s.shardFor(id)
	sh.mu.RLock()
	e, ok := sh.objects[id]
	sh.mu.RUnlock()
	if !ok {
		return 0
	}
	return int(e.refs.Load())
}

// Stats returns a snapshot of occupancy counters aggregated across shards,
// plus the store-global budget fields.
func (s *Store) Stats() Stats {
	var out Stats
	for i := range s.shards {
		out.add(s.shards[i].snapshot())
	}
	out.Budget = s.budget
	out.PeakLiveBytes = s.peakLive.Load()
	out.Backpressure = s.pressured.Load()
	out.BackpressureEnters = s.bpEnters.Load()
	out.BudgetRejects = s.budgetRejects.Load()
	return out
}

// ShardStats returns one Stats snapshot per shard, indexed by shard number.
// Summing them field-wise yields Stats().
func (s *Store) ShardStats() []Stats {
	out := make([]Stats, len(s.shards))
	for i := range s.shards {
		out[i] = s.shards[i].snapshot()
	}
	return out
}

// snapshot reads one shard's counters consistently.
func (sh *shard) snapshot() Stats {
	sh.mu.RLock()
	st := sh.stats
	sh.mu.RUnlock()
	st.ReleaseErrors = sh.releaseErrors.Load()
	return st
}

// Len reports the number of live objects.
func (s *Store) Len() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		n += len(sh.objects)
		sh.mu.RUnlock()
	}
	return n
}

// LeakRecord describes one live object in a leak report.
type LeakRecord struct {
	// ID is the object's store ID.
	ID ID
	// Refs is the object's current reference count.
	Refs int
	// Size is the object's byte length.
	Size int
	// Age is the provable lower bound on how long the object has been
	// live: the time since the oldest watermark that already covered its
	// creation sequence. Zero when no watermark predates the object (call
	// Checkpoint periodically to establish baselines).
	Age time.Duration
}

// Checkpoint records a watermark: a (time, per-shard sequence) snapshot
// against which later Leaked calls prove object ages. Brokers call it from
// their periodic health snapshot; it costs one read lock per shard and
// never touches the Put/Get/Pin/Release hot path.
func (s *Store) Checkpoint() {
	s.recordMark(time.Now(), s.snapshotSeqs())
}

// snapshotSeqs reads every shard's creation sequence.
func (s *Store) snapshotSeqs() []uint64 {
	seqs := make([]uint64, len(s.shards))
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		seqs[i] = sh.seq
		sh.mu.RUnlock()
	}
	return seqs
}

// markGap is the minimum spacing between recorded watermarks; calls inside
// the gap are coalesced into the previous mark.
const markGap = time.Millisecond

// maxMarks bounds the watermark history; when full the history is thinned
// by dropping every other mark (ages stay provable, just coarser).
const maxMarks = 256

func (s *Store) recordMark(now time.Time, seqs []uint64) {
	s.markMu.Lock()
	defer s.markMu.Unlock()
	if n := len(s.marks); n > 0 && now.Sub(s.marks[n-1].t) < markGap {
		return
	}
	if len(s.marks) >= maxMarks {
		kept := s.marks[:0]
		for i := 0; i < len(s.marks); i += 2 {
			kept = append(kept, s.marks[i])
		}
		s.marks = kept
	}
	s.marks = append(s.marks, watermark{t: now, seqs: seqs})
}

// provableSince returns the time of the oldest watermark covering sequence
// seq on shard si, and whether any does.
func (s *Store) provableSince(si int, seq uint64) (time.Time, bool) {
	s.markMu.Lock()
	defer s.markMu.Unlock()
	// marks are time-ascending with monotonic seqs: binary-search the
	// first mark whose snapshot had already counted seq.
	lo, hi := 0, len(s.marks)
	for lo < hi {
		mid := (lo + hi) / 2
		if s.marks[mid].seqs[si] >= seq {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	if lo == len(s.marks) {
		return time.Time{}, false
	}
	return s.marks[lo].t, true
}

// Leaked reports every live object whose provable age is at least
// olderThan, oldest first (by creation order). With olderThan <= 0 it
// reports all live objects. It records a watermark itself, so repeated
// calls build the age baseline automatically. Under the ownership contract
// above, any object that outlives the in-flight window of the channel is a
// leak: either a reference was never released or a header was lost.
func (s *Store) Leaked(olderThan time.Duration) []LeakRecord {
	now := time.Now()
	s.recordMark(now, s.snapshotSeqs())

	type liveObj struct {
		id   ID
		seq  uint64
		si   int
		refs int
		size int
	}
	var live []liveObj
	for si := range s.shards {
		sh := &s.shards[si]
		sh.mu.RLock()
		for id, e := range sh.objects {
			live = append(live, liveObj{
				id: id, seq: e.seq, si: si,
				refs: int(e.refs.Load()), size: len(e.data),
			})
		}
		sh.mu.RUnlock()
	}

	var out []LeakRecord
	for _, o := range live {
		var age time.Duration
		if t, ok := s.provableSince(o.si, o.seq); ok {
			age = now.Sub(t)
		}
		if olderThan > 0 && age < olderThan {
			continue
		}
		out = append(out, LeakRecord{ID: o.id, Refs: o.refs, Size: o.size, Age: age})
	}
	// IDs are allocated from one monotonic counter, so ascending ID order
	// is creation order: oldest first.
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// VerifyDrained returns nil when the store holds no live objects, and
// otherwise an ErrNotDrained describing every live entry. Tests and
// Broker.Stop use it to assert that all reference counts returned to zero.
func (s *Store) VerifyDrained() error {
	leaks := s.Leaked(0)
	if len(leaks) == 0 {
		return nil
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%d live object(s):", len(leaks))
	for i, l := range leaks {
		if i == 8 {
			fmt.Fprintf(&b, " …(+%d more)", len(leaks)-i)
			break
		}
		fmt.Fprintf(&b, " [id=%d refs=%d size=%dB age=%v]", l.ID, l.Refs, l.Size, l.Age.Round(time.Millisecond))
	}
	return fmt.Errorf("%w: %s", ErrNotDrained, b.String())
}
