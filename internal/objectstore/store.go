// Package objectstore implements the shared-memory object store at the heart
// of XingTian's broker process.
//
// Message bodies are inserted once and referenced by ID from message headers
// travelling through the header and ID queues; receivers fetch bodies by ID
// without copies (Get returns the stored slice). Reference counting lets the
// router pin a body once per destination so that a broadcast (e.g. updated
// DNN parameters to N explorers) is freed exactly after the last receiver
// has copied it out.
package objectstore

import (
	"errors"
	"fmt"
	"sync"
)

// ErrNotFound is returned when an object ID is absent from the store.
var ErrNotFound = errors.New("objectstore: object not found")

// ID identifies an object in a store. IDs are unique per store for its
// lifetime (monotonic, never reused).
type ID uint64

// Stats is a snapshot of store occupancy counters.
type Stats struct {
	// Objects is the number of live objects.
	Objects int
	// Bytes is the total size of live objects.
	Bytes int64
	// PeakBytes is the high-water mark of Bytes.
	PeakBytes int64
	// TotalPut is the cumulative number of Put calls.
	TotalPut int64
	// TotalReleased is the cumulative number of objects fully released.
	TotalReleased int64
}

type entry struct {
	data []byte
	refs int
}

// Store is an in-memory object store with reference counting. It models the
// plasma/Arrow shared-memory store of the paper: zero-copy reads, explicit
// pin/release life cycle. The zero value is not usable; use New.
type Store struct {
	mu      sync.Mutex
	next    ID
	objects map[ID]*entry
	stats   Stats
}

// New returns an empty store.
func New() *Store {
	return &Store{objects: make(map[ID]*entry)}
}

// Put inserts data with an initial reference count of refs (refs < 1 is
// treated as 1) and returns its ID. The store takes ownership of data; the
// caller must not mutate it afterwards — this is the zero-copy contract.
func (s *Store) Put(data []byte, refs int) ID {
	if refs < 1 {
		refs = 1
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.next++
	id := s.next
	s.objects[id] = &entry{data: data, refs: refs}
	s.stats.Objects++
	s.stats.Bytes += int64(len(data))
	s.stats.TotalPut++
	if s.stats.Bytes > s.stats.PeakBytes {
		s.stats.PeakBytes = s.stats.Bytes
	}
	return id
}

// Get returns the object's bytes without copying. The returned slice is
// shared: callers must treat it as read-only and must not use it after the
// object's final Release.
func (s *Store) Get(id ID) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.objects[id]
	if !ok {
		return nil, fmt.Errorf("get %d: %w", id, ErrNotFound)
	}
	return e.data, nil
}

// Pin increments the object's reference count, e.g. when the router adds an
// additional destination after insertion.
func (s *Store) Pin(id ID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.objects[id]
	if !ok {
		return fmt.Errorf("pin %d: %w", id, ErrNotFound)
	}
	e.refs++
	return nil
}

// Release decrements the object's reference count and frees it when the
// count reaches zero. Releasing an unknown ID returns ErrNotFound.
func (s *Store) Release(id ID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.objects[id]
	if !ok {
		return fmt.Errorf("release %d: %w", id, ErrNotFound)
	}
	e.refs--
	if e.refs <= 0 {
		s.stats.Objects--
		s.stats.Bytes -= int64(len(e.data))
		s.stats.TotalReleased++
		delete(s.objects, id)
	}
	return nil
}

// Refs reports the current reference count of id, or 0 when absent.
func (s *Store) Refs(id ID) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.objects[id]; ok {
		return e.refs
	}
	return 0
}

// Stats returns a snapshot of occupancy counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Len reports the number of live objects.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.objects)
}
