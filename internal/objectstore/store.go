// Package objectstore implements the shared-memory object store at the heart
// of XingTian's broker process.
//
// Message bodies are inserted once and referenced by ID from message headers
// travelling through the header and ID queues; receivers fetch bodies by ID
// without copies (Get returns the stored slice). Reference counting lets the
// router pin a body once per destination so that a broadcast (e.g. updated
// DNN parameters to N explorers) is freed exactly after the last receiver
// has copied it out.
//
// # Reference-count ownership contract
//
// The channel observes a strict pin/release discipline; every object's
// reference count must return to zero on every path, including errors:
//
//   - The sender (Port.Send) calls Put with one reference per resolved
//     destination (local names plus remote machines). From that moment each
//     reference is owned by whichever stage currently holds the header for
//     that destination.
//   - The router (Broker.route) transfers one reference per local
//     destination into that client's ID queue, and one per remote machine
//     into the forwarder queue. If a destination is unknown, its queue is
//     closed, or no Remote is configured, the router releases that
//     destination's reference immediately — the drop is counted, never
//     leaked.
//   - The receiver (Port.Recv → materialize) owns the reference once the
//     header is popped from its ID queue and must release it whether or not
//     decompression/decoding succeeds.
//   - The forwarder goroutine owns the remote reference and releases it
//     after Remote.Forward returns, success or failure.
//   - Broker.Stop drains undelivered headers from closed ID queues and
//     releases their references, then asserts the store is drained
//     (VerifyDrained) and records any leak in the broker metrics.
//
// The leak detector (Leaked, VerifyDrained) makes violations of this
// contract observable: every entry records its insertion time, so objects
// that outlive any plausible in-flight window can be reported with their ID,
// size, refcount, and age.
package objectstore

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// ErrNotFound is returned when an object ID is absent from the store.
var ErrNotFound = errors.New("objectstore: object not found")

// ErrNotDrained is returned by VerifyDrained when live objects remain.
var ErrNotDrained = errors.New("objectstore: store not drained")

// ID identifies an object in a store. IDs are unique per store for its
// lifetime (monotonic, never reused).
type ID uint64

// Stats is a snapshot of store occupancy counters.
type Stats struct {
	// Objects is the number of live objects.
	Objects int
	// Bytes is the total size of live objects.
	Bytes int64
	// PeakBytes is the high-water mark of Bytes.
	PeakBytes int64
	// TotalPut is the cumulative number of Put calls.
	TotalPut int64
	// TotalReleased is the cumulative number of objects fully released.
	TotalReleased int64
	// ReleaseErrors is the cumulative number of Release calls on unknown
	// IDs — each one is a double release or a release of a never-stored
	// object, i.e. a refcount-discipline violation.
	ReleaseErrors int64
}

type entry struct {
	data    []byte
	refs    int
	created time.Time
}

// Store is an in-memory object store with reference counting. It models the
// plasma/Arrow shared-memory store of the paper: zero-copy reads, explicit
// pin/release life cycle. The zero value is not usable; use New.
type Store struct {
	mu      sync.Mutex
	next    ID
	objects map[ID]*entry
	stats   Stats
}

// New returns an empty store.
func New() *Store {
	return &Store{objects: make(map[ID]*entry)}
}

// Put inserts data with an initial reference count of refs (refs < 1 is
// treated as 1) and returns its ID. The store takes ownership of data; the
// caller must not mutate it afterwards — this is the zero-copy contract.
func (s *Store) Put(data []byte, refs int) ID {
	if refs < 1 {
		refs = 1
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.next++
	id := s.next
	s.objects[id] = &entry{data: data, refs: refs, created: time.Now()}
	s.stats.Objects++
	s.stats.Bytes += int64(len(data))
	s.stats.TotalPut++
	if s.stats.Bytes > s.stats.PeakBytes {
		s.stats.PeakBytes = s.stats.Bytes
	}
	return id
}

// Get returns the object's bytes without copying. The returned slice is
// shared: callers must treat it as read-only and must not use it after the
// object's final Release.
func (s *Store) Get(id ID) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.objects[id]
	if !ok {
		return nil, fmt.Errorf("get %d: %w", id, ErrNotFound)
	}
	return e.data, nil
}

// Pin increments the object's reference count, e.g. when the router adds an
// additional destination after insertion.
func (s *Store) Pin(id ID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.objects[id]
	if !ok {
		return fmt.Errorf("pin %d: %w", id, ErrNotFound)
	}
	e.refs++
	return nil
}

// Release decrements the object's reference count and frees it when the
// count reaches zero. Releasing an unknown ID returns ErrNotFound and is
// counted in Stats.ReleaseErrors.
func (s *Store) Release(id ID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.objects[id]
	if !ok {
		s.stats.ReleaseErrors++
		return fmt.Errorf("release %d: %w", id, ErrNotFound)
	}
	e.refs--
	if e.refs <= 0 {
		s.stats.Objects--
		s.stats.Bytes -= int64(len(e.data))
		s.stats.TotalReleased++
		delete(s.objects, id)
	}
	return nil
}

// Refs reports the current reference count of id, or 0 when absent.
func (s *Store) Refs(id ID) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.objects[id]; ok {
		return e.refs
	}
	return 0
}

// Stats returns a snapshot of occupancy counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Len reports the number of live objects.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.objects)
}

// LeakRecord describes one live object in a leak report.
type LeakRecord struct {
	// ID is the object's store ID.
	ID ID
	// Refs is the object's current reference count.
	Refs int
	// Size is the object's byte length.
	Size int
	// Age is how long the object has been live.
	Age time.Duration
}

// Leaked reports every live object older than olderThan, oldest first. With
// olderThan <= 0 it reports all live objects. Under the ownership contract
// above, any object that outlives the in-flight window of the channel is a
// leak: either a reference was never released or a header was lost.
func (s *Store) Leaked(olderThan time.Duration) []LeakRecord {
	now := time.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []LeakRecord
	for id, e := range s.objects {
		age := now.Sub(e.created)
		if age >= olderThan {
			out = append(out, LeakRecord{ID: id, Refs: e.refs, Size: len(e.data), Age: age})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Age > out[j].Age })
	return out
}

// VerifyDrained returns nil when the store holds no live objects, and
// otherwise an ErrNotDrained describing every live entry. Tests and
// Broker.Stop use it to assert that all reference counts returned to zero.
func (s *Store) VerifyDrained() error {
	leaks := s.Leaked(0)
	if len(leaks) == 0 {
		return nil
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%d live object(s):", len(leaks))
	for i, l := range leaks {
		if i == 8 {
			fmt.Fprintf(&b, " …(+%d more)", len(leaks)-i)
			break
		}
		fmt.Fprintf(&b, " [id=%d refs=%d size=%dB age=%v]", l.ID, l.Refs, l.Size, l.Age.Round(time.Millisecond))
	}
	return fmt.Errorf("%w: %s", ErrNotDrained, b.String())
}
