package objectstore

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestPutGet(t *testing.T) {
	s := New()
	data := []byte("rollout payload")
	id := s.Put(data, 1)
	got, err := s.Get(id)
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("Get = %q, want %q", got, data)
	}
}

func TestGetIsZeroCopy(t *testing.T) {
	s := New()
	data := []byte{1, 2, 3}
	id := s.Put(data, 1)
	got, err := s.Get(id)
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if &got[0] != &data[0] {
		t.Fatal("Get copied the data; want shared backing array")
	}
}

func TestGetUnknown(t *testing.T) {
	s := New()
	if _, err := s.Get(42); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get unknown = %v, want ErrNotFound", err)
	}
}

func TestReleaseFreesAtZero(t *testing.T) {
	s := New()
	id := s.Put([]byte("x"), 2)
	if err := s.Release(id); err != nil {
		t.Fatalf("Release: %v", err)
	}
	if _, err := s.Get(id); err != nil {
		t.Fatalf("Get after first Release: %v (object should survive)", err)
	}
	if err := s.Release(id); err != nil {
		t.Fatalf("Release: %v", err)
	}
	if _, err := s.Get(id); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get after final Release = %v, want ErrNotFound", err)
	}
}

func TestPinExtendsLifetime(t *testing.T) {
	s := New()
	id := s.Put([]byte("broadcast"), 1)
	if err := s.Pin(id); err != nil {
		t.Fatalf("Pin: %v", err)
	}
	if err := s.Release(id); err != nil {
		t.Fatalf("Release: %v", err)
	}
	if s.Refs(id) != 1 {
		t.Fatalf("Refs = %d, want 1", s.Refs(id))
	}
	if err := s.Release(id); err != nil {
		t.Fatalf("Release: %v", err)
	}
	if s.Refs(id) != 0 {
		t.Fatalf("Refs after final release = %d, want 0", s.Refs(id))
	}
}

func TestReleaseUnknown(t *testing.T) {
	s := New()
	if err := s.Release(7); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Release unknown = %v, want ErrNotFound", err)
	}
}

func TestIDsNeverReused(t *testing.T) {
	s := New()
	seen := make(map[ID]bool)
	for i := 0; i < 1000; i++ {
		id := s.Put([]byte{byte(i)}, 1)
		if seen[id] {
			t.Fatalf("ID %d reused", id)
		}
		seen[id] = true
		if err := s.Release(id); err != nil {
			t.Fatalf("Release: %v", err)
		}
	}
}

func TestStatsAccounting(t *testing.T) {
	s := New()
	a := s.Put(make([]byte, 100), 1)
	b := s.Put(make([]byte, 50), 1)
	st := s.Stats()
	if st.Objects != 2 || st.Bytes != 150 {
		t.Fatalf("Stats = %+v, want Objects=2 Bytes=150", st)
	}
	if st.PeakBytes != 150 {
		t.Fatalf("PeakBytes = %d, want 150", st.PeakBytes)
	}
	if err := s.Release(a); err != nil {
		t.Fatalf("Release: %v", err)
	}
	st = s.Stats()
	if st.Objects != 1 || st.Bytes != 50 {
		t.Fatalf("Stats after release = %+v, want Objects=1 Bytes=50", st)
	}
	if st.PeakBytes != 150 {
		t.Fatalf("PeakBytes after release = %d, want 150 (high-water mark)", st.PeakBytes)
	}
	if err := s.Release(b); err != nil {
		t.Fatalf("Release: %v", err)
	}
	st = s.Stats()
	if st.TotalPut != 2 || st.TotalReleased != 2 {
		t.Fatalf("TotalPut/TotalReleased = %d/%d, want 2/2", st.TotalPut, st.TotalReleased)
	}
}

func TestPutZeroRefsTreatedAsOne(t *testing.T) {
	s := New()
	id := s.Put([]byte("x"), 0)
	if got := s.Refs(id); got != 1 {
		t.Fatalf("Refs = %d, want 1", got)
	}
}

func TestConcurrentBroadcastLifecycle(t *testing.T) {
	const receivers = 16
	s := New()
	id := s.Put(make([]byte, 1024), receivers)
	var wg sync.WaitGroup
	for i := 0; i < receivers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := s.Get(id); err != nil {
				t.Errorf("Get: %v", err)
			}
			if err := s.Release(id); err != nil {
				t.Errorf("Release: %v", err)
			}
		}()
	}
	wg.Wait()
	if s.Len() != 0 {
		t.Fatalf("Len = %d after all receivers released, want 0", s.Len())
	}
}

// TestPropertyByteAccounting: for any sequence of payload sizes, the store's
// byte accounting equals the sum of live payload sizes at every step.
func TestPropertyByteAccounting(t *testing.T) {
	f := func(sizes []uint16) bool {
		s := New()
		var live int64
		ids := make([]ID, 0, len(sizes))
		for _, sz := range sizes {
			n := int(sz % 4096)
			ids = append(ids, s.Put(make([]byte, n), 1))
			live += int64(n)
			if s.Stats().Bytes != live {
				return false
			}
		}
		for i, id := range ids {
			if err := s.Release(id); err != nil {
				return false
			}
			live -= int64(sizes[i] % 4096)
			if s.Stats().Bytes != live {
				return false
			}
		}
		return s.Len() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkPutGetRelease(b *testing.B) {
	s := New()
	payload := make([]byte, 4096)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		id := s.Put(payload, 1)
		if _, err := s.Get(id); err != nil {
			b.Fatal(err)
		}
		if err := s.Release(id); err != nil {
			b.Fatal(err)
		}
	}
}

func TestReleaseUnknownCountsError(t *testing.T) {
	s := New()
	id := s.Put([]byte("x"), 1)
	if err := s.Release(id); err != nil {
		t.Fatalf("Release: %v", err)
	}
	if err := s.Release(id); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double Release = %v, want ErrNotFound", err)
	}
	if got := s.Stats().ReleaseErrors; got != 1 {
		t.Fatalf("ReleaseErrors = %d, want 1", got)
	}
}

func TestLeakedReportsAgedEntries(t *testing.T) {
	s := New()
	old := s.Put(make([]byte, 64), 2)
	// Backdate a watermark covering the first entry so an age threshold
	// separates the two (the hot path records no timestamps; observers do).
	seqs := s.snapshotSeqs()
	s.markMu.Lock()
	s.marks = append(s.marks, watermark{t: time.Now().Add(-time.Minute), seqs: seqs})
	s.markMu.Unlock()
	fresh := s.Put(make([]byte, 32), 1)

	all := s.Leaked(0)
	if len(all) != 2 {
		t.Fatalf("Leaked(0) = %d records, want 2", len(all))
	}
	if all[0].ID != old {
		t.Fatalf("Leaked not ordered oldest-first: got id %d", all[0].ID)
	}

	aged := s.Leaked(10 * time.Second)
	if len(aged) != 1 {
		t.Fatalf("Leaked(10s) = %d records, want 1", len(aged))
	}
	r := aged[0]
	if r.ID != old || r.Refs != 2 || r.Size != 64 || r.Age < 50*time.Second {
		t.Fatalf("leak record = %+v", r)
	}
	_ = fresh
}

func TestCheckpointEstablishesAges(t *testing.T) {
	s := New()
	id := s.Put([]byte("pinned"), 1)
	if leaks := s.Leaked(time.Millisecond); len(leaks) != 0 {
		t.Fatalf("Leaked(1ms) before any baseline = %d records, want 0 (age unprovable)", len(leaks))
	}
	s.Checkpoint()
	time.Sleep(5 * time.Millisecond)
	leaks := s.Leaked(time.Millisecond)
	if len(leaks) != 1 || leaks[0].ID != id {
		t.Fatalf("Leaked(1ms) after checkpoint = %+v, want the live object", leaks)
	}
	if leaks[0].Age < time.Millisecond {
		t.Fatalf("Age = %v, want >= 1ms", leaks[0].Age)
	}
	if err := s.Release(id); err != nil {
		t.Fatalf("Release: %v", err)
	}
}

func TestNewShardedRoundsUpToPowerOfTwo(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{0, 1}, {1, 1}, {2, 2}, {3, 4}, {5, 8}, {8, 8}, {9, 16},
	} {
		if got := NewSharded(tc.in).NumShards(); got != tc.want {
			t.Errorf("NewSharded(%d).NumShards() = %d, want %d", tc.in, got, tc.want)
		}
	}
	n := New().NumShards()
	if n < 8 || n > 128 || n&(n-1) != 0 {
		t.Fatalf("New().NumShards() = %d, want a power of two in [8, 128]", n)
	}
}

// TestGetWhileConcurrentFinalRelease exercises the documented race rule:
// Get is safe concurrently with another holder's Release as long as the
// getter holds a reference of its own. Run with -race.
func TestGetWhileConcurrentFinalRelease(t *testing.T) {
	s := New()
	for i := 0; i < 200; i++ {
		id := s.Put([]byte{1, 2, 3, 4}, 2)
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			// This goroutine owns one reference: Get is valid until its
			// own Release, regardless of the other holder's timing.
			data, err := s.Get(id)
			if err != nil {
				t.Errorf("Get: %v", err)
			} else if len(data) != 4 {
				t.Errorf("len(data) = %d, want 4", len(data))
			}
			if err := s.Release(id); err != nil {
				t.Errorf("Release: %v", err)
			}
		}()
		go func() {
			defer wg.Done()
			if err := s.Release(id); err != nil {
				t.Errorf("Release: %v", err)
			}
		}()
		wg.Wait()
	}
	if err := s.VerifyDrained(); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentBroadcastAcrossShards is the sharded store's stress test:
// many producers broadcast objects to many consumers; every consumer gets
// and releases its own reference concurrently. Run with -race.
func TestConcurrentBroadcastAcrossShards(t *testing.T) {
	const (
		producers = 8
		objects   = 50
		receivers = 8
	)
	s := NewSharded(8)
	ids := make(chan ID, producers*objects)
	var prod sync.WaitGroup
	for p := 0; p < producers; p++ {
		prod.Add(1)
		go func() {
			defer prod.Done()
			for i := 0; i < objects; i++ {
				ids <- s.Put(make([]byte, 256), receivers)
			}
		}()
	}
	var cons sync.WaitGroup
	for r := 0; r < receivers; r++ {
		cons.Add(1)
		go func() {
			defer cons.Done()
			// Objects carry `receivers` references, so refs stay positive
			// throughout this phase: Get here never races a final Release.
			for id := range ids {
				if _, err := s.Get(id); err != nil {
					t.Errorf("Get: %v", err)
				}
				if err := s.Release(id); err != nil {
					t.Errorf("Release: %v", err)
				}
			}
		}()
	}
	prod.Wait()
	close(ids)
	cons.Wait()
	// Each object was released once by whichever consumer popped it;
	// release the remaining receivers-1 references concurrently.
	var rel sync.WaitGroup
	for id := ID(1); id <= producers*objects; id++ {
		rel.Add(1)
		go func(id ID) {
			defer rel.Done()
			for k := 0; k < receivers-1; k++ {
				if err := s.Release(id); err != nil {
					t.Errorf("Release %d: %v", id, err)
				}
			}
		}(id)
	}
	rel.Wait()
	if err := s.VerifyDrained(); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.TotalPut != producers*objects || st.TotalReleased != producers*objects {
		t.Fatalf("TotalPut/TotalReleased = %d/%d, want %d/%d",
			st.TotalPut, st.TotalReleased, producers*objects, producers*objects)
	}
	if st.ReleaseErrors != 0 {
		t.Fatalf("ReleaseErrors = %d, want 0", st.ReleaseErrors)
	}
}

// TestPropertyShardStatsSumToGlobal checks the aggregation invariant: for
// any operation sequence, Stats() equals the field-wise sum of ShardStats()
// and matches a model of the old single-mutex store's counters (PeakBytes
// is an upper bound on the model's global high-water mark).
func TestPropertyShardStatsSumToGlobal(t *testing.T) {
	f := func(ops []uint16) bool {
		s := NewSharded(8)
		var model Stats
		var modelBytes int64
		live := make(map[ID]int64)
		var liveIDs []ID
		for _, op := range ops {
			switch op % 3 {
			case 0, 1: // put
				n := int64(op % 512)
				id := s.Put(make([]byte, n), 1)
				live[id] = n
				liveIDs = append(liveIDs, id)
				model.Objects++
				model.TotalPut++
				modelBytes += n
				if modelBytes > model.PeakBytes {
					model.PeakBytes = modelBytes
				}
			case 2: // release oldest live, or a bogus id
				if len(liveIDs) == 0 {
					_ = s.Release(ID(1 << 40))
					model.ReleaseErrors++
					continue
				}
				id := liveIDs[0]
				liveIDs = liveIDs[1:]
				if err := s.Release(id); err != nil {
					return false
				}
				model.Objects--
				model.TotalReleased++
				modelBytes -= live[id]
				delete(live, id)
			}
		}
		model.Bytes = modelBytes
		got := s.Stats()
		var sum Stats
		for _, st := range s.ShardStats() {
			sum.add(st)
		}
		// The budget fields are store-global: ShardStats leaves them zero,
		// so clear them on a copy before the field-wise comparison. The
		// serial workload makes the exact global peak equal the model's.
		perShard := got
		perShard.Budget, perShard.PeakLiveBytes = 0, 0
		perShard.Backpressure = false
		perShard.BackpressureEnters, perShard.BudgetRejects = 0, 0
		if perShard != sum {
			return false
		}
		if got.PeakLiveBytes != model.PeakBytes {
			return false
		}
		return got.Objects == model.Objects &&
			got.Bytes == model.Bytes &&
			got.TotalPut == model.TotalPut &&
			got.TotalReleased == model.TotalReleased &&
			got.ReleaseErrors == model.ReleaseErrors &&
			got.PeakBytes >= model.PeakBytes
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// BenchmarkPutGetReleaseParallel is the contended lifecycle: every
// goroutine runs the broadcast hot path (put, get, pin, release, release)
// against one shared store. cmd/xt-bench sweeps this against the frozen
// single-mutex baseline at 1..8 goroutines.
func BenchmarkPutGetReleaseParallel(b *testing.B) {
	s := New()
	payload := make([]byte, 4096)
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			id := s.Put(payload, 1)
			if _, err := s.Get(id); err != nil {
				b.Error(err)
				return
			}
			if err := s.Pin(id); err != nil {
				b.Error(err)
				return
			}
			if err := s.Release(id); err != nil {
				b.Error(err)
				return
			}
			if err := s.Release(id); err != nil {
				b.Error(err)
				return
			}
		}
	})
}

func TestBudgetTryPutRejectsAtHighWatermark(t *testing.T) {
	// Budget 1000, default watermarks: high 850, low 600.
	s := New(WithBudget(1000))
	if s.Budget() != 1000 {
		t.Fatalf("Budget = %d, want 1000", s.Budget())
	}
	a, err := s.TryPut(make([]byte, 800), 1)
	if err != nil {
		t.Fatalf("TryPut under watermark: %v", err)
	}
	if s.Pressured() {
		t.Fatal("pressured at 800 live with high watermark 850")
	}
	// Crossing the high watermark via Put flips pressure on even without a
	// reject: privileged admissions are counted too.
	b := s.Put(make([]byte, 100), 1)
	if !s.Pressured() {
		t.Fatal("not pressured at 900 live with high watermark 850")
	}
	for _, id := range []ID{a, b} {
		if err := s.Release(id); err != nil {
			t.Fatalf("Release: %v", err)
		}
	}
}

func TestBudgetBackpressureLifecycle(t *testing.T) {
	s := New(WithBudget(1000)) // high 850, low 600
	a, err := s.TryPut(make([]byte, 500), 1)
	if err != nil {
		t.Fatalf("TryPut 500: %v", err)
	}
	if s.Pressured() {
		t.Fatal("pressured at 500/850")
	}
	b, err := s.TryPut(make([]byte, 300), 1)
	if err != nil {
		t.Fatalf("TryPut 300: %v", err)
	}
	if s.Pressured() {
		t.Fatal("pressured at 800/850")
	}
	// 800 + 100 > 850: rejected, and the reject flips backpressure on.
	if _, err := s.TryPut(make([]byte, 100), 1); !errors.Is(err, ErrBudget) {
		t.Fatalf("TryPut over watermark = %v, want ErrBudget", err)
	}
	if !s.Pressured() {
		t.Fatal("not pressured after a budget reject")
	}
	// Privileged Put still succeeds past the watermark, inside the reserved
	// headroom band.
	c := s.Put(make([]byte, 150), 1)
	st := s.Stats()
	if st.PeakLiveBytes != 950 {
		t.Fatalf("PeakLiveBytes = %d, want 950", st.PeakLiveBytes)
	}
	if st.PeakLiveBytes > st.Budget {
		t.Fatalf("PeakLiveBytes %d exceeds budget %d", st.PeakLiveBytes, st.Budget)
	}
	if st.BudgetRejects != 1 || st.BackpressureEnters != 1 || !st.Backpressure {
		t.Fatalf("budget stats = rejects %d enters %d backpressure %v, want 1/1/true",
			st.BudgetRejects, st.BackpressureEnters, st.Backpressure)
	}
	// Dropping to 450 live (<= low watermark 600) clears backpressure.
	if err := s.Release(a); err != nil {
		t.Fatalf("Release: %v", err)
	}
	if s.Pressured() {
		t.Fatal("still pressured at 450 live, below the 600 low watermark")
	}
	// TryPut admits again once pressure clears.
	d, err := s.TryPut(make([]byte, 100), 1)
	if err != nil {
		t.Fatalf("TryPut after recovery: %v", err)
	}
	for _, id := range []ID{b, c, d} {
		if err := s.Release(id); err != nil {
			t.Fatalf("Release: %v", err)
		}
	}
	if err := s.VerifyDrained(); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.BackpressureEnters != 1 {
		t.Fatalf("BackpressureEnters = %d, want exactly 1 episode", st.BackpressureEnters)
	}
}

func TestBudgetWatermarkOverride(t *testing.T) {
	s := New(WithBudget(1000), WithWatermarks(0.5, 0.2))
	if _, err := s.TryPut(make([]byte, 600), 1); !errors.Is(err, ErrBudget) {
		t.Fatalf("TryPut 600 with high=500 = %v, want ErrBudget", err)
	}
	// Invalid fractions keep the defaults.
	s2 := New(WithBudget(1000), WithWatermarks(2.0, -1))
	if _, err := s2.TryPut(make([]byte, 600), 1); err != nil {
		t.Fatalf("TryPut 600 with default high=850: %v", err)
	}
}

func TestUnboundedTryPutNeverFails(t *testing.T) {
	s := New()
	id, err := s.TryPut(make([]byte, 1<<20), 1)
	if err != nil {
		t.Fatalf("TryPut on unbounded store: %v", err)
	}
	if s.Pressured() {
		t.Fatal("unbounded store reports backpressure")
	}
	st := s.Stats()
	if st.Budget != 0 || st.PeakLiveBytes != 1<<20 {
		t.Fatalf("Stats = Budget %d PeakLiveBytes %d, want 0 / %d", st.Budget, st.PeakLiveBytes, 1<<20)
	}
	if err := s.Release(id); err != nil {
		t.Fatalf("Release: %v", err)
	}
}

// TestBudgetConcurrentTryPutNeverOvershoots drives many concurrent TryPuts
// against a tight budget and proves the CAS-reserve admission keeps the
// exact global peak within budget. Run with -race.
func TestBudgetConcurrentTryPutNeverOvershoots(t *testing.T) {
	const budget = 64 * 1024
	s := New(WithBudget(budget))
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				id, err := s.TryPut(make([]byte, 1024), 1)
				if err != nil {
					continue // shed; nothing to release
				}
				if err := s.Release(id); err != nil {
					t.Errorf("Release: %v", err)
				}
			}
		}(g)
	}
	wg.Wait()
	st := s.Stats()
	if st.PeakLiveBytes > budget {
		t.Fatalf("PeakLiveBytes = %d, exceeds budget %d", st.PeakLiveBytes, budget)
	}
	if err := s.VerifyDrained(); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyDrained(t *testing.T) {
	s := New()
	if err := s.VerifyDrained(); err != nil {
		t.Fatalf("VerifyDrained on empty store: %v", err)
	}
	id := s.Put([]byte("pinned"), 1)
	err := s.VerifyDrained()
	if !errors.Is(err, ErrNotDrained) {
		t.Fatalf("VerifyDrained with live object = %v, want ErrNotDrained", err)
	}
	if err := s.Release(id); err != nil {
		t.Fatalf("Release: %v", err)
	}
	if err := s.VerifyDrained(); err != nil {
		t.Fatalf("VerifyDrained after release: %v", err)
	}
}
