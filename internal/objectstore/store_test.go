package objectstore

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestPutGet(t *testing.T) {
	s := New()
	data := []byte("rollout payload")
	id := s.Put(data, 1)
	got, err := s.Get(id)
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("Get = %q, want %q", got, data)
	}
}

func TestGetIsZeroCopy(t *testing.T) {
	s := New()
	data := []byte{1, 2, 3}
	id := s.Put(data, 1)
	got, err := s.Get(id)
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if &got[0] != &data[0] {
		t.Fatal("Get copied the data; want shared backing array")
	}
}

func TestGetUnknown(t *testing.T) {
	s := New()
	if _, err := s.Get(42); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get unknown = %v, want ErrNotFound", err)
	}
}

func TestReleaseFreesAtZero(t *testing.T) {
	s := New()
	id := s.Put([]byte("x"), 2)
	if err := s.Release(id); err != nil {
		t.Fatalf("Release: %v", err)
	}
	if _, err := s.Get(id); err != nil {
		t.Fatalf("Get after first Release: %v (object should survive)", err)
	}
	if err := s.Release(id); err != nil {
		t.Fatalf("Release: %v", err)
	}
	if _, err := s.Get(id); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get after final Release = %v, want ErrNotFound", err)
	}
}

func TestPinExtendsLifetime(t *testing.T) {
	s := New()
	id := s.Put([]byte("broadcast"), 1)
	if err := s.Pin(id); err != nil {
		t.Fatalf("Pin: %v", err)
	}
	if err := s.Release(id); err != nil {
		t.Fatalf("Release: %v", err)
	}
	if s.Refs(id) != 1 {
		t.Fatalf("Refs = %d, want 1", s.Refs(id))
	}
	if err := s.Release(id); err != nil {
		t.Fatalf("Release: %v", err)
	}
	if s.Refs(id) != 0 {
		t.Fatalf("Refs after final release = %d, want 0", s.Refs(id))
	}
}

func TestReleaseUnknown(t *testing.T) {
	s := New()
	if err := s.Release(7); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Release unknown = %v, want ErrNotFound", err)
	}
}

func TestIDsNeverReused(t *testing.T) {
	s := New()
	seen := make(map[ID]bool)
	for i := 0; i < 1000; i++ {
		id := s.Put([]byte{byte(i)}, 1)
		if seen[id] {
			t.Fatalf("ID %d reused", id)
		}
		seen[id] = true
		if err := s.Release(id); err != nil {
			t.Fatalf("Release: %v", err)
		}
	}
}

func TestStatsAccounting(t *testing.T) {
	s := New()
	a := s.Put(make([]byte, 100), 1)
	b := s.Put(make([]byte, 50), 1)
	st := s.Stats()
	if st.Objects != 2 || st.Bytes != 150 {
		t.Fatalf("Stats = %+v, want Objects=2 Bytes=150", st)
	}
	if st.PeakBytes != 150 {
		t.Fatalf("PeakBytes = %d, want 150", st.PeakBytes)
	}
	if err := s.Release(a); err != nil {
		t.Fatalf("Release: %v", err)
	}
	st = s.Stats()
	if st.Objects != 1 || st.Bytes != 50 {
		t.Fatalf("Stats after release = %+v, want Objects=1 Bytes=50", st)
	}
	if st.PeakBytes != 150 {
		t.Fatalf("PeakBytes after release = %d, want 150 (high-water mark)", st.PeakBytes)
	}
	if err := s.Release(b); err != nil {
		t.Fatalf("Release: %v", err)
	}
	st = s.Stats()
	if st.TotalPut != 2 || st.TotalReleased != 2 {
		t.Fatalf("TotalPut/TotalReleased = %d/%d, want 2/2", st.TotalPut, st.TotalReleased)
	}
}

func TestPutZeroRefsTreatedAsOne(t *testing.T) {
	s := New()
	id := s.Put([]byte("x"), 0)
	if got := s.Refs(id); got != 1 {
		t.Fatalf("Refs = %d, want 1", got)
	}
}

func TestConcurrentBroadcastLifecycle(t *testing.T) {
	const receivers = 16
	s := New()
	id := s.Put(make([]byte, 1024), receivers)
	var wg sync.WaitGroup
	for i := 0; i < receivers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := s.Get(id); err != nil {
				t.Errorf("Get: %v", err)
			}
			if err := s.Release(id); err != nil {
				t.Errorf("Release: %v", err)
			}
		}()
	}
	wg.Wait()
	if s.Len() != 0 {
		t.Fatalf("Len = %d after all receivers released, want 0", s.Len())
	}
}

// TestPropertyByteAccounting: for any sequence of payload sizes, the store's
// byte accounting equals the sum of live payload sizes at every step.
func TestPropertyByteAccounting(t *testing.T) {
	f := func(sizes []uint16) bool {
		s := New()
		var live int64
		ids := make([]ID, 0, len(sizes))
		for _, sz := range sizes {
			n := int(sz % 4096)
			ids = append(ids, s.Put(make([]byte, n), 1))
			live += int64(n)
			if s.Stats().Bytes != live {
				return false
			}
		}
		for i, id := range ids {
			if err := s.Release(id); err != nil {
				return false
			}
			live -= int64(sizes[i] % 4096)
			if s.Stats().Bytes != live {
				return false
			}
		}
		return s.Len() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkPutGetRelease(b *testing.B) {
	s := New()
	payload := make([]byte, 4096)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		id := s.Put(payload, 1)
		if _, err := s.Get(id); err != nil {
			b.Fatal(err)
		}
		if err := s.Release(id); err != nil {
			b.Fatal(err)
		}
	}
}

func TestReleaseUnknownCountsError(t *testing.T) {
	s := New()
	id := s.Put([]byte("x"), 1)
	if err := s.Release(id); err != nil {
		t.Fatalf("Release: %v", err)
	}
	if err := s.Release(id); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double Release = %v, want ErrNotFound", err)
	}
	if got := s.Stats().ReleaseErrors; got != 1 {
		t.Fatalf("ReleaseErrors = %d, want 1", got)
	}
}

func TestLeakedReportsAgedEntries(t *testing.T) {
	s := New()
	old := s.Put(make([]byte, 64), 2)
	// Backdate the first entry so an age threshold separates the two.
	s.mu.Lock()
	s.objects[old].created = time.Now().Add(-time.Minute)
	s.mu.Unlock()
	fresh := s.Put(make([]byte, 32), 1)

	all := s.Leaked(0)
	if len(all) != 2 {
		t.Fatalf("Leaked(0) = %d records, want 2", len(all))
	}
	if all[0].ID != old {
		t.Fatalf("Leaked not ordered oldest-first: got id %d", all[0].ID)
	}

	aged := s.Leaked(10 * time.Second)
	if len(aged) != 1 {
		t.Fatalf("Leaked(10s) = %d records, want 1", len(aged))
	}
	r := aged[0]
	if r.ID != old || r.Refs != 2 || r.Size != 64 || r.Age < 50*time.Second {
		t.Fatalf("leak record = %+v", r)
	}
	_ = fresh
}

func TestVerifyDrained(t *testing.T) {
	s := New()
	if err := s.VerifyDrained(); err != nil {
		t.Fatalf("VerifyDrained on empty store: %v", err)
	}
	id := s.Put([]byte("pinned"), 1)
	err := s.VerifyDrained()
	if !errors.Is(err, ErrNotDrained) {
		t.Fatalf("VerifyDrained with live object = %v, want ErrNotDrained", err)
	}
	if err := s.Release(id); err != nil {
		t.Fatalf("Release: %v", err)
	}
	if err := s.VerifyDrained(); err != nil {
		t.Fatalf("VerifyDrained after release: %v", err)
	}
}
