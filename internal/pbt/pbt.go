// Package pbt implements population-based training (Jaderberg et al., 2017)
// on top of XingTian, following §4.3 of the paper: each population is an
// isolated broker set (a rank) running its own learner and explorers with
// its own hyperparameter combination; the center controller acts as the PBT
// scheduler, periodically killing the worst population and respawning it
// with mutated hyperparameters and the best population's weights.
package pbt

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"xingtian/internal/core"
)

// Hyperparams is one population's hyperparameter combination.
type Hyperparams map[string]float64

// clone deep-copies the map.
func (h Hyperparams) clone() Hyperparams {
	out := make(Hyperparams, len(h))
	for k, v := range h {
		out[k] = v
	}
	return out
}

// SessionFactory builds a ready-to-start session for one population given
// its hyperparameters and initial weights (nil on the first generation).
// The factory owns translating Hyperparams into algorithm configs.
type SessionFactory func(rank int, hp Hyperparams, initialWeights []float32) (*core.Session, error)

// Config parameterizes a PBT search.
type Config struct {
	// Populations is the number of concurrent populations (broker sets).
	Populations int
	// Generations is the number of exploit/explore cycles.
	Generations int
	// Interval is how long each generation trains before evaluation.
	Interval time.Duration
	// Mutators generate candidate values per hyperparameter given the
	// parent value (e.g. perturb by ×0.8 / ×1.2).
	Mutators map[string]func(rng *rand.Rand, parent float64) float64
	// Initial is the starting hyperparameter combination; each population
	// gets an independently mutated copy.
	Initial Hyperparams
	// Seed drives mutation and population seeding.
	Seed int64
}

// PopulationResult records one population's outcome in one generation.
type PopulationResult struct {
	Rank        int
	Hyperparams Hyperparams
	MeanReturn  float64
	Steps       int64
}

// GenerationResult records a full generation.
type GenerationResult struct {
	Generation  int
	Populations []PopulationResult
	// Best and Worst index into Populations.
	Best, Worst int
}

// Result is the outcome of a PBT run.
type Result struct {
	Generations []GenerationResult
	// BestHyperparams is the best population's combination at the end.
	BestHyperparams Hyperparams
	// BestReturn is its mean episode return.
	BestReturn float64
}

// Run executes the PBT loop: for each generation, run all populations for
// Interval, rank them by mean episode return, replace the worst with a
// mutation of the best (inheriting its weights), and continue.
func Run(cfg Config, factory SessionFactory, weightsOf func(s *core.Session) []float32) (*Result, error) {
	if cfg.Populations < 2 {
		return nil, fmt.Errorf("pbt: need at least 2 populations, got %d", cfg.Populations)
	}
	if cfg.Generations < 1 {
		cfg.Generations = 1
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	hps := make([]Hyperparams, cfg.Populations)
	weights := make([][]float32, cfg.Populations)
	for i := range hps {
		hps[i] = mutate(rng, cfg.Mutators, cfg.Initial)
	}

	result := &Result{}
	for gen := 0; gen < cfg.Generations; gen++ {
		genRes := GenerationResult{Generation: gen}

		// Run every population for one interval. Populations are isolated
		// broker sets; they run concurrently like the paper's ranked
		// brokers.
		type popOutcome struct {
			res PopulationResult
			w   []float32
			err error
		}
		outcomes := make([]popOutcome, cfg.Populations)
		done := make(chan int, cfg.Populations)
		for i := 0; i < cfg.Populations; i++ {
			go func(i int) {
				defer func() { done <- i }()
				s, err := factory(i, hps[i], weights[i])
				if err != nil {
					outcomes[i].err = fmt.Errorf("pbt: population %d: %w", i, err)
					return
				}
				s.Start()
				s.Wait()
				rep := s.Stop()
				if err := s.Err(); err != nil {
					outcomes[i].err = fmt.Errorf("pbt: population %d: %w", i, err)
					return
				}
				outcomes[i].res = PopulationResult{
					Rank:        i,
					Hyperparams: hps[i].clone(),
					MeanReturn:  rep.MeanReturn,
					Steps:       rep.StepsConsumed,
				}
				if weightsOf != nil {
					outcomes[i].w = weightsOf(s)
				}
			}(i)
		}
		for range outcomes {
			<-done
		}
		for i := range outcomes {
			if outcomes[i].err != nil {
				return nil, outcomes[i].err
			}
			genRes.Populations = append(genRes.Populations, outcomes[i].res)
			weights[i] = outcomes[i].w
		}

		// Rank: exploit the best, eliminate the worst.
		order := make([]int, cfg.Populations)
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(a, b int) bool {
			return genRes.Populations[order[a]].MeanReturn > genRes.Populations[order[b]].MeanReturn
		})
		genRes.Best = order[0]
		genRes.Worst = order[len(order)-1]
		result.Generations = append(result.Generations, genRes)

		if gen < cfg.Generations-1 {
			best, worst := genRes.Best, genRes.Worst
			// The eliminated population restarts with the best population's
			// weights (so it catches up) and a mutated combination.
			hps[worst] = mutate(rng, cfg.Mutators, hps[best])
			weights[worst] = append([]float32(nil), weights[best]...)
		}
	}

	last := result.Generations[len(result.Generations)-1]
	result.BestHyperparams = last.Populations[last.Best].Hyperparams
	result.BestReturn = last.Populations[last.Best].MeanReturn
	return result, nil
}

// mutate applies every configured mutator to a copy of parent.
func mutate(rng *rand.Rand, mutators map[string]func(*rand.Rand, float64) float64, parent Hyperparams) Hyperparams {
	out := parent.clone()
	// Iterate in sorted key order for deterministic mutation under a seed.
	keys := make([]string, 0, len(mutators))
	for k := range mutators {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if v, ok := out[k]; ok {
			out[k] = mutators[k](rng, v)
		}
	}
	return out
}

// PerturbMutator returns the standard PBT perturbation: multiply by lo or
// hi with equal probability.
func PerturbMutator(lo, hi float64) func(*rand.Rand, float64) float64 {
	return func(rng *rand.Rand, parent float64) float64 {
		if rng.Intn(2) == 0 {
			return parent * lo
		}
		return parent * hi
	}
}
