package pbt

import (
	"math/rand"
	"testing"
	"time"

	"xingtian/internal/algorithm"
	"xingtian/internal/core"
	"xingtian/internal/env"
)

// cartpoleFactory builds small DQN populations whose learning rate comes
// from the hyperparameter combination.
func cartpoleFactory(t *testing.T) SessionFactory {
	t.Helper()
	spec := algorithm.SpecFor(env.NewCartPole(0))
	spec.Hidden = []int{16}
	return func(rank int, hp Hyperparams, initial []float32) (*core.Session, error) {
		algF := func(seed int64) (core.Algorithm, error) {
			cfg := algorithm.DefaultDQNConfig()
			cfg.TrainStart = 100
			cfg.TrainEvery = 4
			cfg.BatchSize = 16
			cfg.LR = float32(hp["lr"])
			d := algorithm.NewDQN(spec, cfg, seed)
			if initial != nil {
				if err := d.LoadWeights(initial); err != nil {
					return nil, err
				}
			}
			return d, nil
		}
		agF := func(id int32, seed int64) (core.Agent, error) {
			return algorithm.NewDQNAgent(spec, algorithm.NewEnvRunner(env.NewCartPole(seed), spec), seed), nil
		}
		return core.NewSession(core.Config{
			NumExplorers: 1,
			RolloutLen:   50,
			MaxSteps:     400,
			MaxDuration:  10 * time.Second,
		}, algF, agF, int64(rank)*100+1)
	}
}

func weightsOf(s *core.Session) []float32 {
	return s.Learner().Algorithm().Weights().Data
}

func TestRunRequiresTwoPopulations(t *testing.T) {
	_, err := Run(Config{Populations: 1}, nil, nil)
	if err == nil {
		t.Fatal("Run with 1 population did not error")
	}
}

func TestPBTRunsGenerations(t *testing.T) {
	cfg := Config{
		Populations: 3,
		Generations: 2,
		Initial:     Hyperparams{"lr": 1e-3},
		Mutators: map[string]func(*rand.Rand, float64) float64{
			"lr": PerturbMutator(0.8, 1.25),
		},
		Seed: 1,
	}
	res, err := Run(cfg, cartpoleFactory(t), weightsOf)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(res.Generations) != 2 {
		t.Fatalf("Generations = %d, want 2", len(res.Generations))
	}
	for _, gen := range res.Generations {
		if len(gen.Populations) != 3 {
			t.Fatalf("gen %d has %d populations", gen.Generation, len(gen.Populations))
		}
		best := gen.Populations[gen.Best].MeanReturn
		worst := gen.Populations[gen.Worst].MeanReturn
		if best < worst {
			t.Fatalf("gen %d: best %.1f < worst %.1f", gen.Generation, best, worst)
		}
		for _, p := range gen.Populations {
			if p.Steps == 0 {
				t.Fatalf("population %d consumed no steps", p.Rank)
			}
			if p.Hyperparams["lr"] <= 0 {
				t.Fatalf("population %d has bad lr %v", p.Rank, p.Hyperparams["lr"])
			}
		}
	}
	if res.BestHyperparams["lr"] <= 0 {
		t.Fatalf("BestHyperparams = %v", res.BestHyperparams)
	}
}

func TestMutateChangesOnlyConfiguredKeys(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	parent := Hyperparams{"lr": 1.0, "gamma": 0.99}
	mutators := map[string]func(*rand.Rand, float64) float64{
		"lr": PerturbMutator(0.5, 2.0),
	}
	child := mutate(rng, mutators, parent)
	if child["gamma"] != 0.99 {
		t.Fatalf("gamma mutated: %v", child["gamma"])
	}
	if child["lr"] != 0.5 && child["lr"] != 2.0 {
		t.Fatalf("lr = %v, want 0.5 or 2.0", child["lr"])
	}
	if parent["lr"] != 1.0 {
		t.Fatal("mutate modified the parent map")
	}
}

func TestMutateDeterministicUnderSeed(t *testing.T) {
	mutators := map[string]func(*rand.Rand, float64) float64{
		"a": PerturbMutator(0.8, 1.2),
		"b": PerturbMutator(0.8, 1.2),
		"c": PerturbMutator(0.8, 1.2),
	}
	parent := Hyperparams{"a": 1, "b": 2, "c": 3}
	m1 := mutate(rand.New(rand.NewSource(7)), mutators, parent)
	m2 := mutate(rand.New(rand.NewSource(7)), mutators, parent)
	for k := range parent {
		if m1[k] != m2[k] {
			t.Fatalf("mutation of %q not deterministic: %v vs %v", k, m1[k], m2[k])
		}
	}
}

func TestPerturbMutator(t *testing.T) {
	m := PerturbMutator(0.8, 1.25)
	rng := rand.New(rand.NewSource(3))
	sawLo, sawHi := false, false
	for i := 0; i < 100; i++ {
		v := m(rng, 10)
		switch v {
		case 8:
			sawLo = true
		case 12.5:
			sawHi = true
		default:
			t.Fatalf("PerturbMutator produced %v", v)
		}
	}
	if !sawLo || !sawHi {
		t.Fatal("PerturbMutator never produced one of its branches")
	}
}
