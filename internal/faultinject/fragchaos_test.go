package faultinject_test

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"xingtian/internal/core"
	"xingtian/internal/fabric"
	"xingtian/internal/faultinject"
	"xingtian/internal/message"
	"xingtian/internal/rollout"
)

// replicaAlgorithm is the learn-replica algorithm of the fragment chaos run:
// it trains on every batch, bumps a version, rebroadcasts, and crashes where
// its injected schedule dictates. It restores checkpointed/echoed state so a
// respawned incarnation rejoins the committed version sequence.
type replicaAlgorithm struct {
	crash *faultinject.AgentFault

	mu      sync.Mutex
	pending []*rollout.Batch
	version int64
	weights []float32
}

var (
	_ core.Algorithm       = (*replicaAlgorithm)(nil)
	_ core.WeightsRestorer = (*replicaAlgorithm)(nil)
)

func (r *replicaAlgorithm) Name() string { return "chaos-replica" }

func (r *replicaAlgorithm) PrepareData(b *rollout.Batch) {
	r.mu.Lock()
	r.pending = append(r.pending, b)
	r.mu.Unlock()
}

func (r *replicaAlgorithm) Weights() *message.WeightsPayload {
	r.mu.Lock()
	defer r.mu.Unlock()
	return &message.WeightsPayload{Version: r.version, Data: append([]float32(nil), r.weights...)}
}

func (r *replicaAlgorithm) RestoreWeights(version int64, data []float32) error {
	r.mu.Lock()
	r.version = version
	r.weights = append(r.weights[:0], data...)
	r.mu.Unlock()
	return nil
}

func (r *replicaAlgorithm) TryTrain() (core.TrainResult, bool, error) {
	if r.crash.ShouldFail() {
		return core.TrainResult{}, false, errInjectedCrash
	}
	r.mu.Lock()
	if len(r.pending) == 0 {
		r.mu.Unlock()
		return core.TrainResult{}, false, nil
	}
	b := r.pending[0]
	r.pending = r.pending[1:]
	r.version++
	r.mu.Unlock()
	return core.TrainResult{StepsConsumed: len(b.Steps), Broadcast: true}, true, nil
}

// TestChaosFragmentTopology runs a 2-learner IMPALA-style fragment topology
// over a real three-machine TCP fabric while the injector resets links every
// K writes and kills learn replica 0 mid-training. Failover must quarantine
// the dead replica, re-dispatch its in-flight batches, respawn it, and still
// reach the step target with every store drained and zero drops beyond
// backpressure shedding and injected link failures.
func TestChaosFragmentTopology(t *testing.T) {
	const maxSteps = 2000

	inj := faultinject.New(faultinject.Config{
		Seed:                  17,
		ConnResetEveryKWrites: 40,
	})
	grid, err := fabric.NewGrid(3, fabric.GridOptions{
		ConnWrapper:    inj.WrapConn,
		RedialAttempts: 500,
		RedialBackoff:  time.Millisecond,
	})
	if err != nil {
		t.Fatalf("NewGrid: %v", err)
	}

	// The first factory call is learn replica 0's first incarnation — it gets
	// the kill schedule. Replica 1 and every respawn run clean.
	var algCalls atomic.Int32
	algF := func(seed int64) (core.Algorithm, error) {
		a := &replicaAlgorithm{crash: inj.NewCrash(0), weights: []float32{1}}
		if algCalls.Add(1) == 1 {
			a.crash = inj.NewCrash(5)
		}
		return a, nil
	}
	agF := func(id int32, seed int64) (core.Agent, error) {
		return &chaosAgent{fault: inj.NewCrash(0)}, nil // explorers never fail
	}

	s, err := core.NewSession(core.Config{
		NumExplorers: 4,
		Machines:     3,
		Transport:    grid,
		RolloutLen:   20,
		MaxSteps:     maxSteps,
		MaxDuration:  60 * time.Second,
		Topology: core.Topology{
			Learners:         2,
			SampleMachine:    0,
			BroadcastMachine: 0,
			LearnMachines:    []int{1, 2},
			MaxStaleness:     core.StalenessUnbounded,
		},
		LearnerFailover:    true,
		MaxLearnerRestarts: 3,
		RestartBackoff:     2 * time.Millisecond,
		// Generous cadence: a dead replica is detected through its error
		// channel, so heartbeats only need to catch true hangs — and a loaded
		// -race CI worker must not trip the deadline on scheduling noise.
		HeartbeatEvery: 200 * time.Millisecond,
	}, algF, agF, 2)
	if err != nil {
		t.Fatalf("NewSession: %v", err)
	}
	s.Start()
	s.Wait()

	// Drop taxonomy before Stop: beyond backpressure shedding, only forward
	// errors from the injected link resets are legitimate on this run — a
	// privileged weights/control message must never have been dropped.
	live := s.ChannelHealth()
	for _, bm := range live.Brokers {
		d := bm.Drops
		if other := d.Total() - d.ShedOldest - d.StoreBudget - d.ForwardError; other != 0 {
			t.Errorf("machine %d dropped %d messages outside backpressure and injected link faults: %+v",
				bm.MachineID, other, d)
		}
	}

	rep := s.Stop()
	if err := s.Err(); err != nil {
		t.Fatalf("session error after fragment chaos run: %v", err)
	}
	if rep.StepsConsumed < maxSteps {
		t.Fatalf("StepsConsumed = %d, want >= %d (training did not survive the replica kill)",
			rep.StepsConsumed, maxSteps)
	}
	fr := rep.Fragments
	if fr == nil {
		t.Fatal("fragmented chaos run must report fragment measurements")
	}
	if fr.Quarantines < 1 {
		t.Fatalf("Quarantines = %d, want >= 1 (replica 0 was killed)", fr.Quarantines)
	}
	if fr.Respawns < 1 {
		t.Fatalf("Respawns = %d, want >= 1 (the budget allows a respawn)", fr.Respawns)
	}
	stats := inj.Stats()
	if stats.ConnResets < 1 {
		t.Fatalf("injector never reset a connection: %+v", stats)
	}
	if stats.AgentFaults != 1 {
		t.Fatalf("AgentFaults = %d, want 1 (the single replica kill)", stats.AgentFaults)
	}
	t.Logf("fragment chaos run: %d steps, %d quarantines, %d redispatches, %d respawns, %d resets",
		rep.StepsConsumed, fr.Quarantines, fr.Redispatches, fr.Respawns, stats.ConnResets)

	// Refcount hygiene survived the failover: every store drained.
	for m := 0; m < 3; m++ {
		if err := grid.Broker(m).VerifyDrained(); err != nil {
			t.Fatalf("machine %d store not drained after fragment chaos: %v", m, err)
		}
	}
	if leaked := rep.Channel.TotalLeaked(); leaked != 0 {
		t.Fatalf("TotalLeaked = %d after fragment chaos run", leaked)
	}

	// Stop stays idempotent after a chaotic failover run.
	if again := s.Stop(); again != rep {
		t.Fatal("second Stop returned a different report")
	}
}
