package faultinject_test

import (
	"errors"
	"sync"
	"testing"
	"time"

	"xingtian/internal/core"
	"xingtian/internal/fabric"
	"xingtian/internal/faultinject"
	"xingtian/internal/message"
	"xingtian/internal/rollout"
)

// chaosAgent produces fixed-size rollouts and crashes exactly once per
// explorer slot, at the point its shared fault handle dictates. The restarted
// incarnation shares the handle, so it runs clean.
type chaosAgent struct {
	fault *faultinject.AgentFault
}

var _ core.Agent = (*chaosAgent)(nil)

var errInjectedCrash = errors.New("injected agent crash")

func (a *chaosAgent) Rollout(n int) (*rollout.Batch, error) {
	if a.fault.ShouldFail() {
		return nil, errInjectedCrash
	}
	return &rollout.Batch{Steps: make([]rollout.Step, n)}, nil
}

func (a *chaosAgent) SetWeights(*message.WeightsPayload) error { return nil }
func (a *chaosAgent) WeightsVersion() int64                    { return 0 }
func (a *chaosAgent) OnPolicy() bool                           { return false }
func (a *chaosAgent) EpisodeStats() (int64, float64)           { return 0, 0 }

// rebroadcastAlgorithm trains on every batch and rebroadcasts weights to all
// explorers each iteration, so a weight frame lost to a link kill is
// re-issued on the next training session (the credit-based flow control
// self-heals).
type rebroadcastAlgorithm struct {
	pending []*rollout.Batch
}

var _ core.Algorithm = (*rebroadcastAlgorithm)(nil)

func (c *rebroadcastAlgorithm) Name() string                 { return "chaos-counting" }
func (c *rebroadcastAlgorithm) PrepareData(b *rollout.Batch) { c.pending = append(c.pending, b) }
func (c *rebroadcastAlgorithm) Weights() *message.WeightsPayload {
	return &message.WeightsPayload{Data: []float32{1}}
}

func (c *rebroadcastAlgorithm) TryTrain() (core.TrainResult, bool, error) {
	if len(c.pending) == 0 {
		return core.TrainResult{}, false, nil
	}
	b := c.pending[0]
	c.pending = c.pending[1:]
	return core.TrainResult{StepsConsumed: len(b.Steps), Broadcast: true}, true, nil
}

// TestChaosTwoMachineTraining runs a real two-machine TCP deployment to a
// step target while the injector kills links every K writes and crashes each
// explorer once mid-training. Supervision must restart the explorers, the
// fabric must redial and retry, the target must be reached, and both object
// stores must drain clean.
func TestChaosTwoMachineTraining(t *testing.T) {
	const maxSteps = 2000

	inj := faultinject.New(faultinject.Config{
		Seed:                   11,
		ConnResetEveryKWrites:  40,
		AgentFailAfterRollouts: 3,
	})
	grid, err := fabric.NewGrid(2, fabric.GridOptions{
		ConnWrapper:    inj.WrapConn,
		RedialAttempts: 500,
		RedialBackoff:  time.Millisecond,
	})
	if err != nil {
		t.Fatalf("NewGrid: %v", err)
	}

	// One fault handle per explorer slot, shared across restarts: the slot
	// crashes once, its replacement runs clean.
	var mu sync.Mutex
	faults := map[int32]*faultinject.AgentFault{}
	agF := func(id int32, seed int64) (core.Agent, error) {
		mu.Lock()
		defer mu.Unlock()
		f, ok := faults[id]
		if !ok {
			f = inj.NewAgentFault()
			faults[id] = f
		}
		return &chaosAgent{fault: f}, nil
	}
	algF := func(seed int64) (core.Algorithm, error) { return &rebroadcastAlgorithm{}, nil }

	s, err := core.NewSession(core.Config{
		NumExplorers:        2, // explorer-0 local to the learner, explorer-1 remote
		Machines:            2,
		Transport:           grid,
		RolloutLen:          20,
		MaxSteps:            maxSteps,
		MaxDuration:         30 * time.Second,
		MaxExplorerRestarts: 3,
		RestartBackoff:      2 * time.Millisecond,
	}, algF, agF, 1)
	if err != nil {
		t.Fatalf("NewSession: %v", err)
	}
	s.Start()
	s.Wait()
	rep := s.Stop()
	if err := s.Err(); err != nil {
		t.Fatalf("session error after chaos run: %v", err)
	}

	if rep.StepsConsumed < maxSteps {
		t.Fatalf("StepsConsumed = %d, want >= %d (training did not survive the faults)",
			rep.StepsConsumed, maxSteps)
	}
	if rep.ExplorerRestarts < 1 {
		t.Fatalf("ExplorerRestarts = %d, want >= 1 (agent faults were injected)", rep.ExplorerRestarts)
	}
	if rep.RestartLastError == "" {
		t.Fatal("RestartLastError empty after restarts")
	}
	if rep.Channel.Supervision.ExplorerRestarts != rep.ExplorerRestarts {
		t.Fatalf("ClusterHealth supervision restarts = %d, report says %d",
			rep.Channel.Supervision.ExplorerRestarts, rep.ExplorerRestarts)
	}

	stats := inj.Stats()
	if stats.ConnResets < 1 {
		t.Fatalf("injector never reset a connection: %+v", stats)
	}
	if stats.AgentFaults != 2 {
		t.Fatalf("AgentFaults = %d, want 2 (one per slot)", stats.AgentFaults)
	}
	var reconnects, retried int64
	for _, w := range rep.Channel.Wire {
		reconnects += w.Reconnects
		retried += w.RetriedFrames
	}
	if reconnects < 1 {
		t.Fatalf("no reconnects recorded despite %d conn resets; wire: %+v",
			stats.ConnResets, rep.Channel.Wire)
	}
	t.Logf("chaos run: %d steps, %d restarts, %d resets, %d reconnects, %d retried frames",
		rep.StepsConsumed, rep.ExplorerRestarts, stats.ConnResets, reconnects, retried)

	// Refcount hygiene survived the chaos: every store drained.
	for m := 0; m < 2; m++ {
		if err := grid.Broker(m).VerifyDrained(); err != nil {
			t.Fatalf("machine %d store not drained after chaos: %v", m, err)
		}
	}
	if leaked := rep.Channel.TotalLeaked(); leaked != 0 {
		t.Fatalf("TotalLeaked = %d after chaos run", leaked)
	}

	// Stop stays idempotent after a chaotic run.
	if again := s.Stop(); again != rep {
		t.Fatal("second Stop returned a different report")
	}
}
