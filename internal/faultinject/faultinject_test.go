package faultinject

import (
	"net"
	"testing"
	"time"
)

// pipeConns returns a connected in-memory pair.
func pipeConns(t *testing.T) (net.Conn, net.Conn) {
	t.Helper()
	c1, c2 := net.Pipe()
	t.Cleanup(func() {
		_ = c1.Close()
		_ = c2.Close()
	})
	return c1, c2
}

func TestConnResetFiresOnKthWrite(t *testing.T) {
	inj := New(Config{Seed: 1, ConnResetEveryKWrites: 3})
	a, b := pipeConns(t)
	wrapped := inj.WrapConn(a)

	done := make(chan struct{})
	go func() {
		defer close(done)
		buf := make([]byte, 8)
		for {
			if _, err := b.Read(buf); err != nil {
				return
			}
		}
	}()

	var failures int
	for i := 0; i < 3; i++ {
		if _, err := wrapped.Write([]byte("xingtian")); err != nil {
			failures++
		}
	}
	if failures != 1 {
		t.Fatalf("failures = %d, want exactly 1 (reset on 3rd write)", failures)
	}
	if got := inj.Stats().ConnResets; got != 1 {
		t.Fatalf("ConnResets = %d, want 1", got)
	}
	_ = a.Close()
	<-done
}

func TestCorruptionFlipsExactlyOneByte(t *testing.T) {
	inj := New(Config{Seed: 42, CorruptEveryNWrites: 2})
	a, b := pipeConns(t)
	wrapped := inj.WrapConn(a)

	payload := []byte("hello-fabric-frame")
	got := make([]byte, len(payload))
	readBack := func() []byte {
		buf := make([]byte, len(payload))
		if _, err := b.Read(buf); err != nil {
			t.Fatalf("Read: %v", err)
		}
		return buf
	}

	errCh := make(chan error, 2)
	go func() {
		_, err := wrapped.Write(payload)
		errCh <- err
		_, err = wrapped.Write(payload)
		errCh <- err
	}()
	first := readBack()
	copy(got, first)
	second := readBack()
	for i := 0; i < 2; i++ {
		if err := <-errCh; err != nil {
			t.Fatalf("Write: %v", err)
		}
	}

	if string(first) != string(payload) {
		t.Fatalf("first write corrupted: %q", first)
	}
	diff := 0
	for i := range second {
		if second[i] != payload[i] {
			diff++
		}
	}
	if diff != 1 {
		t.Fatalf("second write differs in %d bytes, want 1", diff)
	}
	// The caller's buffer must never be mutated (it may be pooled).
	if string(payload) != "hello-fabric-frame" {
		t.Fatal("injector mutated the caller's write buffer")
	}
	if got := inj.Stats().Corruptions; got != 1 {
		t.Fatalf("Corruptions = %d, want 1", got)
	}
}

func TestAgentFaultFiresOncePerHandle(t *testing.T) {
	inj := New(Config{Seed: 7, AgentFailAfterRollouts: 2})
	f := inj.NewAgentFault()
	var fired []int
	for i := 1; i <= 6; i++ {
		if f.ShouldFail() {
			fired = append(fired, i)
		}
	}
	if len(fired) != 1 || fired[0] != 3 {
		t.Fatalf("fired at %v, want exactly [3]", fired)
	}
	if got := inj.Stats().AgentFaults; got != 1 {
		t.Fatalf("AgentFaults = %d, want 1", got)
	}
	// A second handle (another slot) gets its own schedule.
	if g := inj.NewAgentFault(); g.ShouldFail() {
		t.Fatal("fresh handle fired on first rollout")
	}
}

func TestTransferDelaySpikesDeterministically(t *testing.T) {
	mk := func() []time.Duration {
		inj := New(Config{Seed: 3, LatencySpikeEveryN: 4, LatencySpike: 7 * time.Millisecond})
		out := make([]time.Duration, 8)
		for i := range out {
			out[i] = inj.TransferDelay(0, 1, 1024)
		}
		return out
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schedule diverged at transfer %d: %v vs %v", i, a[i], b[i])
		}
	}
	spikes := 0
	for _, d := range a {
		if d == 7*time.Millisecond {
			spikes++
		} else if d != 0 {
			t.Fatalf("unexpected delay %v", d)
		}
	}
	if spikes != 2 {
		t.Fatalf("spikes = %d, want 2 of 8 transfers", spikes)
	}
}

func TestDisabledInjectorIsTransparent(t *testing.T) {
	inj := New(Config{})
	if inj.TransferDelay(0, 1, 10) != 0 {
		t.Fatal("zero config injected a delay")
	}
	if inj.NewAgentFault().ShouldFail() {
		t.Fatal("zero config fired an agent fault")
	}
	a, b := pipeConns(t)
	wrapped := inj.WrapConn(a)
	go func() {
		buf := make([]byte, 2)
		_, _ = b.Read(buf)
	}()
	if _, err := wrapped.Write([]byte("ok")); err != nil {
		t.Fatalf("passthrough write failed: %v", err)
	}
}
