// Package faultinject provides deterministic fault injection for chaos
// testing the channel's fault-tolerance layer: agent crashes after a fixed
// number of rollouts, connection resets on the Kth frame write, frame
// corruption, and latency spikes — all driven by one seeded schedule so a
// failing chaos run replays bit-for-bit.
//
// The injector plugs into the system at three seams:
//
//   - fabric: Injector.WrapConn wraps each dialed/accepted net.Conn
//     (fabric.Node.SetConnWrapper / fabric.GridOptions.ConnWrapper), counting
//     frame writes and injecting resets and corruption on the wire.
//   - netsim: Injector satisfies netsim.FaultHook, adding latency spikes to
//     simulated transfers.
//   - core: Injector.NewAgentFault hands each explorer incarnation a
//     deterministic crash schedule for its Rollout loop; NewCrash and
//     NewStall/NewStallAfter do the same for learn replicas (one-shot
//     errors and silent hangs inside a training step).
//
// All counters are process-global within one Injector, so a schedule like
// "reset every 40th write" interleaves deterministically across connections
// as long as the calling goroutine structure is deterministic; under real
// concurrency the injector still guarantees the same *number* of faults per
// write count, which is what the chaos tests assert.
package faultinject

import (
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Config is one deterministic fault schedule. Zero values disable the
// corresponding fault class.
type Config struct {
	// Seed drives every pseudo-random choice (corruption offsets). Runs
	// with equal Config produce identical fault schedules.
	Seed int64
	// AgentFailAfterRollouts makes the *first* incarnation of each agent
	// fault handle fail once after this many Rollout calls; restarted
	// incarnations run clean (the crash-then-recover shape supervision is
	// built for).
	AgentFailAfterRollouts int
	// ConnResetEveryKWrites closes the underlying connection on every Kth
	// Write across all wrapped connections, making the write fail — a
	// mid-stream TCP reset.
	ConnResetEveryKWrites int
	// CorruptEveryNWrites flips one byte (at a seeded offset) in every Nth
	// Write. The receiver's framing detects this as a corrupt stream.
	CorruptEveryNWrites int
	// LatencySpikeEveryN adds LatencySpike to every Nth netsim transfer.
	LatencySpikeEveryN int
	// LatencySpike is the injected delay per spike (default 5ms when
	// LatencySpikeEveryN is set).
	LatencySpike time.Duration
	// StallAfterCalls arms each Stall handle built by NewStall: the handle's
	// first incarnation hangs once, for StallDuration, after this many
	// guarded calls. A stall is the silent failure mode — the caller blocks
	// instead of erroring, which is what heartbeat deadline detectors exist
	// to catch.
	StallAfterCalls int
	// StallDuration is the injected hang per stall (default 250ms when
	// StallAfterCalls is set).
	StallDuration time.Duration
}

// Injector is a seeded fault source. It is safe for concurrent use.
type Injector struct {
	cfg Config

	mu  sync.Mutex
	rng *rand.Rand

	writes    atomic.Int64
	transfers atomic.Int64

	resets      atomic.Int64
	corruptions atomic.Int64
	spikes      atomic.Int64
	agentFaults atomic.Int64
	stalls      atomic.Int64
}

// New builds an injector for the given schedule.
func New(cfg Config) *Injector {
	if cfg.LatencySpikeEveryN > 0 && cfg.LatencySpike <= 0 {
		cfg.LatencySpike = 5 * time.Millisecond
	}
	if cfg.StallAfterCalls > 0 && cfg.StallDuration <= 0 {
		cfg.StallDuration = 250 * time.Millisecond
	}
	return &Injector{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// Stats reports how many faults of each class the injector has fired.
type Stats struct {
	// ConnResets, Corruptions, LatencySpikes, AgentFaults, and Stalls count
	// fired faults per class.
	ConnResets    int64
	Corruptions   int64
	LatencySpikes int64
	AgentFaults   int64
	Stalls        int64
	// Writes and Transfers count the observed events the schedules key on.
	Writes    int64
	Transfers int64
}

// Stats snapshots the fired-fault counters.
func (i *Injector) Stats() Stats {
	return Stats{
		ConnResets:    i.resets.Load(),
		Corruptions:   i.corruptions.Load(),
		LatencySpikes: i.spikes.Load(),
		AgentFaults:   i.agentFaults.Load(),
		Stalls:        i.stalls.Load(),
		Writes:        i.writes.Load(),
		Transfers:     i.transfers.Load(),
	}
}

// String renders the snapshot human-readably.
func (s Stats) String() string {
	return fmt.Sprintf("faults: resets=%d corruptions=%d spikes=%d agent=%d stalls=%d (writes=%d transfers=%d)",
		s.ConnResets, s.Corruptions, s.LatencySpikes, s.AgentFaults, s.Stalls, s.Writes, s.Transfers)
}

// TransferDelay implements netsim.FaultHook: every Nth simulated transfer
// gets the configured latency spike added to its wire time.
func (i *Injector) TransferDelay(src, dst, size int) time.Duration {
	if i == nil || i.cfg.LatencySpikeEveryN <= 0 {
		return 0
	}
	n := i.transfers.Add(1)
	if n%int64(i.cfg.LatencySpikeEveryN) == 0 {
		i.spikes.Add(1)
		return i.cfg.LatencySpike
	}
	return 0
}

// WrapConn wraps a fabric connection with the injector's write-side fault
// schedule. It is shaped for fabric.Node.SetConnWrapper.
func (i *Injector) WrapConn(conn net.Conn) net.Conn {
	return &faultConn{Conn: conn, inj: i}
}

// corruptOffset picks a seeded byte offset within a frame of length n.
func (i *Injector) corruptOffset(n int) int {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.rng.Intn(n)
}

// faultConn injects resets, corruption, and latency on the write path. The
// read path passes through untouched: a reset injected on one end surfaces
// as an EOF/ECONNRESET read error on the other, exactly like a real link
// failure.
type faultConn struct {
	net.Conn
	inj *Injector
}

func (c *faultConn) Write(p []byte) (int, error) {
	inj := c.inj
	n := inj.writes.Add(1)
	if k := inj.cfg.ConnResetEveryKWrites; k > 0 && n%int64(k) == 0 {
		inj.resets.Add(1)
		_ = c.Conn.Close()
		return 0, fmt.Errorf("faultinject: connection reset on write %d", n)
	}
	if k := inj.cfg.CorruptEveryNWrites; k > 0 && n%int64(k) == 0 && len(p) > 0 {
		// Corrupt a copy: the caller's buffer may be pooled and must not be
		// mutated behind its back.
		dup := make([]byte, len(p))
		copy(dup, p)
		dup[inj.corruptOffset(len(dup))] ^= 0xFF
		inj.corruptions.Add(1)
		return c.Conn.Write(dup)
	}
	return c.Conn.Write(p)
}

// AgentFault is one agent incarnation's crash schedule, handed out by
// NewAgentFault. The first incarnation per fault handle fails once after the
// configured rollout count; later incarnations (restarts) run clean.
type AgentFault struct {
	inj       *Injector
	failAfter int

	mu       sync.Mutex
	rollouts int
	fired    bool
}

// NewAgentFault returns a crash schedule for one explorer slot. Call once
// per slot; pass the handle to every incarnation's agent via the factory so
// a restarted agent shares the slot's (already fired) schedule.
func (i *Injector) NewAgentFault() *AgentFault {
	return &AgentFault{inj: i, failAfter: i.cfg.AgentFailAfterRollouts}
}

// NewCrash returns a one-shot crash schedule firing after n guarded calls,
// independent of the config-driven agent schedule. Chaos tests use it to
// kill one specific learn replica after a fixed number of trains while the
// explorer schedules run their own counts.
func (i *Injector) NewCrash(n int) *AgentFault {
	return &AgentFault{inj: i, failAfter: n}
}

// ShouldFail reports whether this Rollout call must return an error. It
// fires exactly once, after the configured number of clean rollouts, and
// never again for the same handle.
func (f *AgentFault) ShouldFail() bool {
	if f == nil || f.failAfter <= 0 {
		return false
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.fired {
		return false
	}
	f.rollouts++
	if f.rollouts > f.failAfter {
		f.fired = true
		f.inj.agentFaults.Add(1)
		return true
	}
	return false
}

// Stall is a one-shot hang schedule: the guarded call after the configured
// count blocks for the seeded duration instead of proceeding, and the handle
// never fires again. Unlike AgentFault the caller does not error — the hang
// is silent, which is exactly the failure mode a heartbeat deadline detector
// must catch (a replica wedged inside a training step, a remote call that
// never returns).
type Stall struct {
	inj       *Injector
	after     int
	dur       time.Duration
	onStalled func() // test hook, observed just before the hang begins

	mu    sync.Mutex
	calls int
	fired bool
}

// NewStall returns a hang schedule armed from Config.StallAfterCalls and
// Config.StallDuration. Call once per guarded site; pass the handle across
// incarnations so a restarted replica runs clean.
func (i *Injector) NewStall() *Stall {
	return &Stall{inj: i, after: i.cfg.StallAfterCalls, dur: i.cfg.StallDuration}
}

// NewStallAfter returns a hang schedule with an explicit call count and
// duration, independent of the config-driven schedule.
func (i *Injector) NewStallAfter(n int, d time.Duration) *Stall {
	if d <= 0 {
		d = 250 * time.Millisecond
	}
	return &Stall{inj: i, after: n, dur: d}
}

// OnStalled installs a hook invoked right before the injected hang starts
// (for tests that need to observe the exact stall window). Call before the
// handle is shared.
func (st *Stall) OnStalled(fn func()) { st.onStalled = fn }

// MaybeStall blocks the calling goroutine for the seeded duration when the
// schedule says this call is the one that hangs; it reports whether the
// stall fired on this call.
func (st *Stall) MaybeStall() bool {
	if st == nil || st.after <= 0 {
		return false
	}
	st.mu.Lock()
	if st.fired {
		st.mu.Unlock()
		return false
	}
	st.calls++
	due := st.calls > st.after
	if due {
		st.fired = true
	}
	st.mu.Unlock()
	if !due {
		return false
	}
	st.inj.stalls.Add(1)
	if st.onStalled != nil {
		st.onStalled()
	}
	time.Sleep(st.dur)
	return true
}
