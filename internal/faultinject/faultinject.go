// Package faultinject provides deterministic fault injection for chaos
// testing the channel's fault-tolerance layer: agent crashes after a fixed
// number of rollouts, connection resets on the Kth frame write, frame
// corruption, and latency spikes — all driven by one seeded schedule so a
// failing chaos run replays bit-for-bit.
//
// The injector plugs into the system at three seams:
//
//   - fabric: Injector.WrapConn wraps each dialed/accepted net.Conn
//     (fabric.Node.SetConnWrapper / fabric.GridOptions.ConnWrapper), counting
//     frame writes and injecting resets and corruption on the wire.
//   - netsim: Injector satisfies netsim.FaultHook, adding latency spikes to
//     simulated transfers.
//   - core: Injector.NewAgentFault hands each explorer incarnation a
//     deterministic crash schedule for its Rollout loop.
//
// All counters are process-global within one Injector, so a schedule like
// "reset every 40th write" interleaves deterministically across connections
// as long as the calling goroutine structure is deterministic; under real
// concurrency the injector still guarantees the same *number* of faults per
// write count, which is what the chaos tests assert.
package faultinject

import (
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Config is one deterministic fault schedule. Zero values disable the
// corresponding fault class.
type Config struct {
	// Seed drives every pseudo-random choice (corruption offsets). Runs
	// with equal Config produce identical fault schedules.
	Seed int64
	// AgentFailAfterRollouts makes the *first* incarnation of each agent
	// fault handle fail once after this many Rollout calls; restarted
	// incarnations run clean (the crash-then-recover shape supervision is
	// built for).
	AgentFailAfterRollouts int
	// ConnResetEveryKWrites closes the underlying connection on every Kth
	// Write across all wrapped connections, making the write fail — a
	// mid-stream TCP reset.
	ConnResetEveryKWrites int
	// CorruptEveryNWrites flips one byte (at a seeded offset) in every Nth
	// Write. The receiver's framing detects this as a corrupt stream.
	CorruptEveryNWrites int
	// LatencySpikeEveryN adds LatencySpike to every Nth netsim transfer.
	LatencySpikeEveryN int
	// LatencySpike is the injected delay per spike (default 5ms when
	// LatencySpikeEveryN is set).
	LatencySpike time.Duration
}

// Injector is a seeded fault source. It is safe for concurrent use.
type Injector struct {
	cfg Config

	mu  sync.Mutex
	rng *rand.Rand

	writes    atomic.Int64
	transfers atomic.Int64

	resets      atomic.Int64
	corruptions atomic.Int64
	spikes      atomic.Int64
	agentFaults atomic.Int64
}

// New builds an injector for the given schedule.
func New(cfg Config) *Injector {
	if cfg.LatencySpikeEveryN > 0 && cfg.LatencySpike <= 0 {
		cfg.LatencySpike = 5 * time.Millisecond
	}
	return &Injector{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// Stats reports how many faults of each class the injector has fired.
type Stats struct {
	// ConnResets, Corruptions, LatencySpikes, and AgentFaults count fired
	// faults per class.
	ConnResets    int64
	Corruptions   int64
	LatencySpikes int64
	AgentFaults   int64
	// Writes and Transfers count the observed events the schedules key on.
	Writes    int64
	Transfers int64
}

// Stats snapshots the fired-fault counters.
func (i *Injector) Stats() Stats {
	return Stats{
		ConnResets:    i.resets.Load(),
		Corruptions:   i.corruptions.Load(),
		LatencySpikes: i.spikes.Load(),
		AgentFaults:   i.agentFaults.Load(),
		Writes:        i.writes.Load(),
		Transfers:     i.transfers.Load(),
	}
}

// String renders the snapshot human-readably.
func (s Stats) String() string {
	return fmt.Sprintf("faults: resets=%d corruptions=%d spikes=%d agent=%d (writes=%d transfers=%d)",
		s.ConnResets, s.Corruptions, s.LatencySpikes, s.AgentFaults, s.Writes, s.Transfers)
}

// TransferDelay implements netsim.FaultHook: every Nth simulated transfer
// gets the configured latency spike added to its wire time.
func (i *Injector) TransferDelay(src, dst, size int) time.Duration {
	if i == nil || i.cfg.LatencySpikeEveryN <= 0 {
		return 0
	}
	n := i.transfers.Add(1)
	if n%int64(i.cfg.LatencySpikeEveryN) == 0 {
		i.spikes.Add(1)
		return i.cfg.LatencySpike
	}
	return 0
}

// WrapConn wraps a fabric connection with the injector's write-side fault
// schedule. It is shaped for fabric.Node.SetConnWrapper.
func (i *Injector) WrapConn(conn net.Conn) net.Conn {
	return &faultConn{Conn: conn, inj: i}
}

// corruptOffset picks a seeded byte offset within a frame of length n.
func (i *Injector) corruptOffset(n int) int {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.rng.Intn(n)
}

// faultConn injects resets, corruption, and latency on the write path. The
// read path passes through untouched: a reset injected on one end surfaces
// as an EOF/ECONNRESET read error on the other, exactly like a real link
// failure.
type faultConn struct {
	net.Conn
	inj *Injector
}

func (c *faultConn) Write(p []byte) (int, error) {
	inj := c.inj
	n := inj.writes.Add(1)
	if k := inj.cfg.ConnResetEveryKWrites; k > 0 && n%int64(k) == 0 {
		inj.resets.Add(1)
		_ = c.Conn.Close()
		return 0, fmt.Errorf("faultinject: connection reset on write %d", n)
	}
	if k := inj.cfg.CorruptEveryNWrites; k > 0 && n%int64(k) == 0 && len(p) > 0 {
		// Corrupt a copy: the caller's buffer may be pooled and must not be
		// mutated behind its back.
		dup := make([]byte, len(p))
		copy(dup, p)
		dup[inj.corruptOffset(len(dup))] ^= 0xFF
		inj.corruptions.Add(1)
		return c.Conn.Write(dup)
	}
	return c.Conn.Write(p)
}

// AgentFault is one agent incarnation's crash schedule, handed out by
// NewAgentFault. The first incarnation per fault handle fails once after the
// configured rollout count; later incarnations (restarts) run clean.
type AgentFault struct {
	inj       *Injector
	failAfter int

	mu       sync.Mutex
	rollouts int
	fired    bool
}

// NewAgentFault returns a crash schedule for one explorer slot. Call once
// per slot; pass the handle to every incarnation's agent via the factory so
// a restarted agent shares the slot's (already fired) schedule.
func (i *Injector) NewAgentFault() *AgentFault {
	return &AgentFault{inj: i, failAfter: i.cfg.AgentFailAfterRollouts}
}

// ShouldFail reports whether this Rollout call must return an error. It
// fires exactly once, after the configured number of clean rollouts, and
// never again for the same handle.
func (f *AgentFault) ShouldFail() bool {
	if f == nil || f.failAfter <= 0 {
		return false
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.fired {
		return false
	}
	f.rollouts++
	if f.rollouts > f.failAfter {
		f.fired = true
		f.inj.agentFaults.Add(1)
		return true
	}
	return false
}
