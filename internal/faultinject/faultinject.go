// Package faultinject provides deterministic fault injection for chaos
// testing the channel's fault-tolerance layer: agent crashes after a fixed
// number of rollouts, connection resets on the Kth frame write, frame
// corruption, and latency spikes — all driven by one seeded schedule so a
// failing chaos run replays bit-for-bit.
//
// The injector plugs into the system at three seams:
//
//   - fabric: Injector.WrapConn wraps each dialed/accepted net.Conn
//     (fabric.Node.SetConnWrapper / fabric.GridOptions.ConnWrapper), counting
//     frame writes and injecting resets and corruption on the wire.
//     WrapConnFor additionally tags each wrapped conn with its machine so
//     direction-aware faults can match one side of a link: NewMachineKill
//     severs a whole grid machine (every conn plus its broker) after a
//     scheduled write count, and NewPartition blackholes one A→B direction
//     while the reverse path keeps flowing — the asymmetric-partition case
//     the membership plane's corroboration logic exists for.
//   - netsim: Injector satisfies netsim.FaultHook, adding latency spikes to
//     simulated transfers.
//   - core: Injector.NewAgentFault hands each explorer incarnation a
//     deterministic crash schedule for its Rollout loop; NewCrash and
//     NewStall/NewStallAfter do the same for learn replicas (one-shot
//     errors and silent hangs inside a training step).
//
// All counters are process-global within one Injector, so a schedule like
// "reset every 40th write" interleaves deterministically across connections
// as long as the calling goroutine structure is deterministic; under real
// concurrency the injector still guarantees the same *number* of faults per
// write count, which is what the chaos tests assert.
package faultinject

import (
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Config is one deterministic fault schedule. Zero values disable the
// corresponding fault class.
type Config struct {
	// Seed drives every pseudo-random choice (corruption offsets). Runs
	// with equal Config produce identical fault schedules.
	Seed int64
	// AgentFailAfterRollouts makes the *first* incarnation of each agent
	// fault handle fail once after this many Rollout calls; restarted
	// incarnations run clean (the crash-then-recover shape supervision is
	// built for).
	AgentFailAfterRollouts int
	// ConnResetEveryKWrites closes the underlying connection on every Kth
	// Write across all wrapped connections, making the write fail — a
	// mid-stream TCP reset.
	ConnResetEveryKWrites int
	// CorruptEveryNWrites flips one byte (at a seeded offset) in every Nth
	// Write. The receiver's framing detects this as a corrupt stream.
	CorruptEveryNWrites int
	// LatencySpikeEveryN adds LatencySpike to every Nth netsim transfer.
	LatencySpikeEveryN int
	// LatencySpike is the injected delay per spike (default 5ms when
	// LatencySpikeEveryN is set).
	LatencySpike time.Duration
	// StallAfterCalls arms each Stall handle built by NewStall: the handle's
	// first incarnation hangs once, for StallDuration, after this many
	// guarded calls. A stall is the silent failure mode — the caller blocks
	// instead of erroring, which is what heartbeat deadline detectors exist
	// to catch.
	StallAfterCalls int
	// StallDuration is the injected hang per stall (default 250ms when
	// StallAfterCalls is set).
	StallDuration time.Duration
}

// Injector is a seeded fault source. It is safe for concurrent use.
type Injector struct {
	cfg Config

	mu  sync.Mutex
	rng *rand.Rand

	writes    atomic.Int64
	transfers atomic.Int64

	resets         atomic.Int64
	corruptions    atomic.Int64
	spikes         atomic.Int64
	agentFaults    atomic.Int64
	stalls         atomic.Int64
	machineKills   atomic.Int64
	partitionDrops atomic.Int64

	// kills and partitions are armed before traffic flows and read on every
	// write; the pointers swap atomically so the hot path takes no lock.
	kills      atomic.Pointer[[]*MachineKill]
	partitions atomic.Pointer[[]*Partition]
}

// New builds an injector for the given schedule.
func New(cfg Config) *Injector {
	if cfg.LatencySpikeEveryN > 0 && cfg.LatencySpike <= 0 {
		cfg.LatencySpike = 5 * time.Millisecond
	}
	if cfg.StallAfterCalls > 0 && cfg.StallDuration <= 0 {
		cfg.StallDuration = 250 * time.Millisecond
	}
	return &Injector{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// Stats reports how many faults of each class the injector has fired.
type Stats struct {
	// ConnResets, Corruptions, LatencySpikes, AgentFaults, and Stalls count
	// fired faults per class.
	ConnResets    int64
	Corruptions   int64
	LatencySpikes int64
	AgentFaults   int64
	Stalls        int64
	// MachineKills counts fired whole-machine kill faults; PartitionDrops
	// counts frames blackholed by armed asymmetric partitions.
	MachineKills   int64
	PartitionDrops int64
	// Writes and Transfers count the observed events the schedules key on.
	Writes    int64
	Transfers int64
}

// Stats snapshots the fired-fault counters.
func (i *Injector) Stats() Stats {
	return Stats{
		ConnResets:     i.resets.Load(),
		Corruptions:    i.corruptions.Load(),
		LatencySpikes:  i.spikes.Load(),
		AgentFaults:    i.agentFaults.Load(),
		Stalls:         i.stalls.Load(),
		MachineKills:   i.machineKills.Load(),
		PartitionDrops: i.partitionDrops.Load(),
		Writes:         i.writes.Load(),
		Transfers:      i.transfers.Load(),
	}
}

// String renders the snapshot human-readably.
func (s Stats) String() string {
	return fmt.Sprintf("faults: resets=%d corruptions=%d spikes=%d agent=%d stalls=%d kills=%d partitionDrops=%d (writes=%d transfers=%d)",
		s.ConnResets, s.Corruptions, s.LatencySpikes, s.AgentFaults, s.Stalls, s.MachineKills, s.PartitionDrops, s.Writes, s.Transfers)
}

// TransferDelay implements netsim.FaultHook: every Nth simulated transfer
// gets the configured latency spike added to its wire time.
func (i *Injector) TransferDelay(src, dst, size int) time.Duration {
	if i == nil || i.cfg.LatencySpikeEveryN <= 0 {
		return 0
	}
	n := i.transfers.Add(1)
	if n%int64(i.cfg.LatencySpikeEveryN) == 0 {
		i.spikes.Add(1)
		return i.cfg.LatencySpike
	}
	return 0
}

// WrapConn wraps a fabric connection with the injector's write-side fault
// schedule. It is shaped for fabric.Node.SetConnWrapper. Conns wrapped this
// way carry no machine tag (src -1): partitions armed for a specific source
// machine never match them.
func (i *Injector) WrapConn(conn net.Conn) net.Conn {
	return &faultConn{Conn: conn, inj: i, src: -1}
}

// WrapConnFor returns a conn wrapper that tags every wrapped connection
// with the wrapping machine's ID, so direction-aware faults can match the
// (from, to) orientation of a link. Shaped for
// fabric.GridOptions.ConnWrapperFor.
func (i *Injector) WrapConnFor(machine int) func(net.Conn) net.Conn {
	return func(conn net.Conn) net.Conn {
		return &faultConn{Conn: conn, inj: i, src: machine}
	}
}

// MachineKill is a one-shot whole-machine death schedule: once the
// deployment-wide write count crosses the threshold, the kill callback
// (typically fabric.Grid.Kill) fires exactly once. The callback runs on its
// own goroutine — never inline under the triggering connection's write lock,
// where stopping the machine's broker and severing its conns would deadlock
// against the write path that tripped the schedule.
type MachineKill struct {
	inj   *Injector
	after int64
	kill  func()
	fired atomic.Bool
}

// NewMachineKill arms a whole-machine kill after the given number of frame
// writes across the deployment. The schedule is deterministic for a fixed
// write interleaving (and the fired-fault *count* is deterministic
// regardless); the kill callback severs the victim's conns and stops its
// broker. Arm before traffic flows.
func (i *Injector) NewMachineKill(afterWrites int, kill func()) *MachineKill {
	mk := &MachineKill{inj: i, after: int64(afterWrites), kill: kill}
	for {
		old := i.kills.Load()
		var next []*MachineKill
		if old != nil {
			next = append(next, *old...)
		}
		next = append(next, mk)
		if i.kills.CompareAndSwap(old, &next) {
			return mk
		}
	}
}

// Fired reports whether the kill has been triggered.
func (mk *MachineKill) Fired() bool { return mk.fired.Load() }

// Partition is an armed asymmetric link fault: once the deployment-wide
// write count passes the trigger, frames written by machine `from` to the
// peer listening at `toAddr` are silently blackholed — reported to the
// writer as delivered, never received. The reverse direction keeps flowing,
// which is exactly the half-open failure the membership plane's doubled
// grace window exists for.
type Partition struct {
	inj    *Injector
	from   int
	toAddr string
	after  int64
	healed atomic.Bool
	drops  atomic.Int64
}

// NewPartition arms an A→B drop: writes from machine `from` (-1 matches any
// untagged or tagged source) toward toAddr are blackholed after the given
// deployment-wide write count. Requires conns wrapped via WrapConnFor for a
// specific `from` to tag the direction. Arm before traffic flows.
func (i *Injector) NewPartition(from int, toAddr string, afterWrites int) *Partition {
	p := &Partition{inj: i, from: from, toAddr: toAddr, after: int64(afterWrites)}
	for {
		old := i.partitions.Load()
		var next []*Partition
		if old != nil {
			next = append(next, *old...)
		}
		next = append(next, p)
		if i.partitions.CompareAndSwap(old, &next) {
			return p
		}
	}
}

// Heal lifts the partition: subsequent writes flow again.
func (p *Partition) Heal() { p.healed.Store(true) }

// Drops reports how many writes this partition has blackholed.
func (p *Partition) Drops() int64 { return p.drops.Load() }

// corruptOffset picks a seeded byte offset within a frame of length n.
func (i *Injector) corruptOffset(n int) int {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.rng.Intn(n)
}

// faultConn injects resets, corruption, and latency on the write path. The
// read path passes through untouched: a reset injected on one end surfaces
// as an EOF/ECONNRESET read error on the other, exactly like a real link
// failure.
type faultConn struct {
	net.Conn
	inj *Injector
	src int // wrapping machine ID, -1 when untagged (WrapConn)
}

func (c *faultConn) Write(p []byte) (int, error) {
	inj := c.inj
	n := inj.writes.Add(1)
	if kills := inj.kills.Load(); kills != nil {
		for _, mk := range *kills {
			if n >= mk.after && mk.fired.CompareAndSwap(false, true) {
				inj.machineKills.Add(1)
				go mk.kill()
			}
		}
	}
	if parts := inj.partitions.Load(); parts != nil {
		for _, pt := range *parts {
			if n >= pt.after && !pt.healed.Load() &&
				(pt.from == -1 || pt.from == c.src) &&
				c.Conn.RemoteAddr().String() == pt.toAddr {
				pt.drops.Add(1)
				inj.partitionDrops.Add(1)
				return len(p), nil // blackholed: the writer believes it was sent
			}
		}
	}
	if k := inj.cfg.ConnResetEveryKWrites; k > 0 && n%int64(k) == 0 {
		inj.resets.Add(1)
		_ = c.Conn.Close()
		return 0, fmt.Errorf("faultinject: connection reset on write %d", n)
	}
	if k := inj.cfg.CorruptEveryNWrites; k > 0 && n%int64(k) == 0 && len(p) > 0 {
		// Corrupt a copy: the caller's buffer may be pooled and must not be
		// mutated behind its back.
		dup := make([]byte, len(p))
		copy(dup, p)
		dup[inj.corruptOffset(len(dup))] ^= 0xFF
		inj.corruptions.Add(1)
		return c.Conn.Write(dup)
	}
	return c.Conn.Write(p)
}

// AgentFault is one agent incarnation's crash schedule, handed out by
// NewAgentFault. The first incarnation per fault handle fails once after the
// configured rollout count; later incarnations (restarts) run clean.
type AgentFault struct {
	inj       *Injector
	failAfter int

	mu       sync.Mutex
	rollouts int
	fired    bool
}

// NewAgentFault returns a crash schedule for one explorer slot. Call once
// per slot; pass the handle to every incarnation's agent via the factory so
// a restarted agent shares the slot's (already fired) schedule.
func (i *Injector) NewAgentFault() *AgentFault {
	return &AgentFault{inj: i, failAfter: i.cfg.AgentFailAfterRollouts}
}

// NewCrash returns a one-shot crash schedule firing after n guarded calls,
// independent of the config-driven agent schedule. Chaos tests use it to
// kill one specific learn replica after a fixed number of trains while the
// explorer schedules run their own counts.
func (i *Injector) NewCrash(n int) *AgentFault {
	return &AgentFault{inj: i, failAfter: n}
}

// ShouldFail reports whether this Rollout call must return an error. It
// fires exactly once, after the configured number of clean rollouts, and
// never again for the same handle.
func (f *AgentFault) ShouldFail() bool {
	if f == nil || f.failAfter <= 0 {
		return false
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.fired {
		return false
	}
	f.rollouts++
	if f.rollouts > f.failAfter {
		f.fired = true
		f.inj.agentFaults.Add(1)
		return true
	}
	return false
}

// Stall is a one-shot hang schedule: the guarded call after the configured
// count blocks for the seeded duration instead of proceeding, and the handle
// never fires again. Unlike AgentFault the caller does not error — the hang
// is silent, which is exactly the failure mode a heartbeat deadline detector
// must catch (a replica wedged inside a training step, a remote call that
// never returns).
type Stall struct {
	inj       *Injector
	after     int
	dur       time.Duration
	onStalled func() // test hook, observed just before the hang begins

	mu    sync.Mutex
	calls int
	fired bool
}

// NewStall returns a hang schedule armed from Config.StallAfterCalls and
// Config.StallDuration. Call once per guarded site; pass the handle across
// incarnations so a restarted replica runs clean.
func (i *Injector) NewStall() *Stall {
	return &Stall{inj: i, after: i.cfg.StallAfterCalls, dur: i.cfg.StallDuration}
}

// NewStallAfter returns a hang schedule with an explicit call count and
// duration, independent of the config-driven schedule.
func (i *Injector) NewStallAfter(n int, d time.Duration) *Stall {
	if d <= 0 {
		d = 250 * time.Millisecond
	}
	return &Stall{inj: i, after: n, dur: d}
}

// OnStalled installs a hook invoked right before the injected hang starts
// (for tests that need to observe the exact stall window). Call before the
// handle is shared.
func (st *Stall) OnStalled(fn func()) { st.onStalled = fn }

// MaybeStall blocks the calling goroutine for the seeded duration when the
// schedule says this call is the one that hangs; it reports whether the
// stall fired on this call.
func (st *Stall) MaybeStall() bool {
	if st == nil || st.after <= 0 {
		return false
	}
	st.mu.Lock()
	if st.fired {
		st.mu.Unlock()
		return false
	}
	st.calls++
	due := st.calls > st.after
	if due {
		st.fired = true
	}
	st.mu.Unlock()
	if !due {
		return false
	}
	st.inj.stalls.Add(1)
	if st.onStalled != nil {
		st.onStalled()
	}
	time.Sleep(st.dur)
	return true
}
