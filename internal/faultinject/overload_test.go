package faultinject_test

import (
	"sync"
	"testing"
	"time"

	"xingtian/internal/broker"
	"xingtian/internal/core"
	"xingtian/internal/env"
	"xingtian/internal/faultinject"
	"xingtian/internal/message"
	"xingtian/internal/netsim"
	"xingtian/internal/rollout"
)

// slowLearner is a deliberately slow trainer: each session sleeps before
// consuming one batch and rebroadcasting, so explorers outrun it and the
// channel must absorb the difference — the overload scenario the bounded
// store and shed policy exist for.
type slowLearner struct {
	delay   time.Duration
	mu      sync.Mutex
	pending []*rollout.Batch
	version int64
}

var _ core.Algorithm = (*slowLearner)(nil)

func (l *slowLearner) Name() string { return "slow-learner" }

func (l *slowLearner) PrepareData(b *rollout.Batch) {
	l.mu.Lock()
	l.pending = append(l.pending, b)
	l.mu.Unlock()
}

func (l *slowLearner) TryTrain() (core.TrainResult, bool, error) {
	l.mu.Lock()
	if len(l.pending) == 0 {
		l.mu.Unlock()
		return core.TrainResult{}, false, nil
	}
	b := l.pending[0]
	l.pending = l.pending[1:]
	l.version++
	l.mu.Unlock()
	time.Sleep(l.delay)
	return core.TrainResult{StepsConsumed: len(b.Steps), Broadcast: true}, true, nil
}

func (l *slowLearner) Weights() *message.WeightsPayload {
	l.mu.Lock()
	defer l.mu.Unlock()
	return &message.WeightsPayload{Version: l.version, Data: []float32{float32(l.version)}}
}

// floodAgent produces bulky rollouts as fast as the scheduler allows and
// records every weights version it is handed, in arrival order.
type floodAgent struct {
	mu       sync.Mutex
	versions []int64
}

var _ core.Agent = (*floodAgent)(nil)

func (a *floodAgent) Rollout(n int) (*rollout.Batch, error) {
	steps := make([]rollout.Step, n)
	for i := range steps {
		steps[i].Obs = env.Obs{Frame: make([]byte, 128)}
	}
	return &rollout.Batch{Steps: steps}, nil
}

func (a *floodAgent) SetWeights(w *message.WeightsPayload) error {
	a.mu.Lock()
	a.versions = append(a.versions, w.Version)
	a.mu.Unlock()
	return nil
}

func (a *floodAgent) WeightsVersion() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	if len(a.versions) == 0 {
		return 0
	}
	return a.versions[len(a.versions)-1]
}

func (a *floodAgent) OnPolicy() bool                 { return false }
func (a *floodAgent) EpisodeStats() (int64, float64) { return 0, 0 }

// orderedVersions asserts an agent's received weights versions never went
// backwards — in-order, loss-free model-update delivery.
func orderedVersions(t *testing.T, id int32, versions []int64) {
	t.Helper()
	for i := 1; i < len(versions); i++ {
		if versions[i] < versions[i-1] {
			t.Fatalf("explorer %d saw weights version %d after %d (out of order)",
				id, versions[i], versions[i-1])
		}
	}
}

// overloadCluster builds a two-machine netsim deployment with bounded
// stores, shed depth, and the injector's latency spikes on every cross-
// machine transfer.
func overloadCluster(t *testing.T, inj *faultinject.Injector, budget int64, shedDepth int) *broker.Cluster {
	t.Helper()
	net := netsim.New(netsim.Config{TimeScale: 100, Fault: inj})
	cluster := broker.NewCluster(net)
	for m := 0; m < 2; m++ {
		if _, err := cluster.AddBrokerCfg(m, broker.Config{
			StoreBudget:    budget,
			ShedQueueDepth: shedDepth,
		}); err != nil {
			t.Fatalf("AddBrokerCfg %d: %v", m, err)
		}
	}
	return cluster
}

// TestOverloadSlowLearnerBoundedStore pins a slow learner behind latency
// spikes while uncredited explorers flood it, and proves the overload
// protections hold end to end: training still reaches its step target, the
// exact live-byte peak of every store stays within the budget, trajectory
// sheds are the ONLY drops (model updates all get through), and every shed
// released its reference.
func TestOverloadSlowLearnerBoundedStore(t *testing.T) {
	const (
		budget    = 128 * 1024
		shedDepth = 8
		maxSteps  = 3000
	)
	inj := faultinject.New(faultinject.Config{
		Seed:               7,
		LatencySpikeEveryN: 3,
		LatencySpike:       25 * time.Millisecond,
	})
	cluster := overloadCluster(t, inj, budget, shedDepth)

	agents := map[int32]*floodAgent{}
	var mu sync.Mutex
	agF := func(id int32, seed int64) (core.Agent, error) {
		mu.Lock()
		defer mu.Unlock()
		a := &floodAgent{}
		agents[id] = a
		return a, nil
	}
	algF := func(seed int64) (core.Algorithm, error) {
		return &slowLearner{delay: 500 * time.Microsecond}, nil
	}

	s, err := core.NewSession(core.Config{
		NumExplorers: 2, // explorer-0 shares the learner's machine, explorer-1 is remote
		Machines:     2,
		Transport:    cluster,
		RolloutLen:   50,
		MaxSteps:     maxSteps,
		MaxDuration:  30 * time.Second,
		MaxInflight:  -1, // no explorer credit: nothing upstream slows the flood
	}, algF, agF, 1)
	if err != nil {
		t.Fatalf("NewSession: %v", err)
	}
	s.Start()
	s.Wait()

	// Snapshot the taxonomy before Stop: shutdown reclamation legitimately
	// drops in-flight messages later, but during overload itself every drop
	// must be a droppable-class shed.
	live := s.ChannelHealth()
	var sheds int64
	for _, bm := range live.Brokers {
		d := bm.Drops
		if other := d.Total() - d.ShedOldest - d.StoreBudget; other != 0 {
			t.Fatalf("machine %d dropped %d non-trajectory messages under overload: %+v",
				bm.MachineID, other, d)
		}
		sheds += d.ShedOldest + d.StoreBudget
	}
	if sheds == 0 {
		t.Fatal("overload run shed nothing: the flood never hit the protections")
	}

	rep := s.Stop()
	if err := s.Err(); err != nil {
		t.Fatalf("session error after overload run: %v", err)
	}
	if rep.StepsConsumed < maxSteps {
		t.Fatalf("StepsConsumed = %d, want >= %d (training starved under overload)",
			rep.StepsConsumed, maxSteps)
	}
	for _, bm := range rep.Channel.Brokers {
		if bm.Store.PeakLiveBytes > budget {
			t.Fatalf("machine %d PeakLiveBytes = %d, exceeds budget %d",
				bm.MachineID, bm.Store.PeakLiveBytes, budget)
		}
		if bm.ReleaseErrors != 0 {
			t.Fatalf("machine %d ReleaseErrors = %d (a shed double-released)",
				bm.MachineID, bm.ReleaseErrors)
		}
	}
	if inj.Stats().LatencySpikes == 0 {
		t.Fatal("injector fired no latency spikes")
	}

	// Model updates arrived in order at every explorer.
	mu.Lock()
	defer mu.Unlock()
	for id, a := range agents {
		a.mu.Lock()
		versions := append([]int64(nil), a.versions...)
		a.mu.Unlock()
		if len(versions) == 0 {
			t.Fatalf("explorer %d received no weights at all", id)
		}
		orderedVersions(t, id, versions)
	}

	// Refcount hygiene survived the flood.
	for m := 0; m < 2; m++ {
		if err := cluster.Broker(m).VerifyDrained(); err != nil {
			t.Fatalf("machine %d store not drained after overload: %v", m, err)
		}
	}
	if leaked := rep.Channel.TotalLeaked(); leaked != 0 {
		t.Fatalf("TotalLeaked = %d after overload run", leaked)
	}
	t.Logf("overload run: %d steps, %d sheds, %d spikes, peaks %d/%d of %d budget",
		rep.StepsConsumed, sheds, inj.Stats().LatencySpikes,
		rep.Channel.Brokers[0].Store.PeakLiveBytes,
		rep.Channel.Brokers[1].Store.PeakLiveBytes, budget)
}

// TestOverloadSoakCleanDrain is the longer soak: sustained flood against a
// slower learner and a tighter budget, stopped by wall clock rather than a
// step target, then proves the deployment drains clean — bounded peaks the
// whole way, in-order weights delivery, stores empty, and an idempotent
// Stop.
func TestOverloadSoakCleanDrain(t *testing.T) {
	const (
		budget    = 64 * 1024
		shedDepth = 4
	)
	inj := faultinject.New(faultinject.Config{
		Seed:               23,
		LatencySpikeEveryN: 2,
		LatencySpike:       50 * time.Millisecond,
	})
	cluster := overloadCluster(t, inj, budget, shedDepth)

	agents := map[int32]*floodAgent{}
	var mu sync.Mutex
	agF := func(id int32, seed int64) (core.Agent, error) {
		mu.Lock()
		defer mu.Unlock()
		a := &floodAgent{}
		agents[id] = a
		return a, nil
	}
	algF := func(seed int64) (core.Algorithm, error) {
		return &slowLearner{delay: 2 * time.Millisecond}, nil
	}

	s, err := core.NewSession(core.Config{
		NumExplorers: 3,
		Machines:     2,
		Transport:    cluster,
		RolloutLen:   50,
		MaxSteps:     1 << 40, // never reached: the soak runs on wall clock
		MaxDuration:  2 * time.Second,
		MaxInflight:  -1,
	}, algF, agF, 2)
	if err != nil {
		t.Fatalf("NewSession: %v", err)
	}
	s.Start()
	s.Wait()
	rep := s.Stop()
	if err := s.Err(); err != nil {
		t.Fatalf("session error after soak: %v", err)
	}

	if rep.StepsConsumed == 0 {
		t.Fatal("learner consumed nothing during the soak")
	}
	var sheds int64
	for _, bm := range rep.Channel.Brokers {
		if bm.Store.PeakLiveBytes > budget {
			t.Fatalf("machine %d PeakLiveBytes = %d, exceeds budget %d",
				bm.MachineID, bm.Store.PeakLiveBytes, budget)
		}
		sheds += bm.Drops.ShedOldest + bm.Drops.StoreBudget
	}
	if sheds == 0 {
		t.Fatal("soak shed nothing: the flood never pressured the channel")
	}

	mu.Lock()
	for id, a := range agents {
		a.mu.Lock()
		orderedVersions(t, id, a.versions)
		a.mu.Unlock()
	}
	mu.Unlock()

	// Clean drain on Stop: stores empty, nothing leaked, Stop idempotent.
	for m := 0; m < 2; m++ {
		if err := cluster.Broker(m).VerifyDrained(); err != nil {
			t.Fatalf("machine %d store not drained after soak: %v", m, err)
		}
	}
	if leaked := rep.Channel.TotalLeaked(); leaked != 0 {
		t.Fatalf("TotalLeaked = %d after soak", leaked)
	}
	if again := s.Stop(); again != rep {
		t.Fatal("second Stop returned a different report")
	}
	t.Logf("soak: %d steps consumed, %d sheds, %d spikes",
		rep.StepsConsumed, sheds, inj.Stats().LatencySpikes)
}
