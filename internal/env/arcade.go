package env

import (
	"fmt"
	"math/rand"
)

// Arcade is a synthetic stand-in for the ALE Atari games used in the
// paper's evaluation (BeamRider, Breakout, Qbert, SpaceInvaders).
//
// Each game is a parameterization of one engine: objects descend through a
// 21×21 logical grid toward the player on the bottom row; the player moves
// left/right and, in shooter games, fires bullets. Catching or shooting
// objects scores game-specific points; a miss or collision costs a life.
// Observations are stacked 84×84 grayscale byte frames (84·84·4 = 28,224
// bytes), matching the per-step rollout payload of real Atari — which is
// what the paper's communication measurements depend on. The underlying
// MDP is genuinely learnable from the frames, so convergence comparisons
// between frameworks remain meaningful.
type Arcade struct {
	cfg       arcadeConfig
	rng       *rand.Rand
	playerX   int
	objects   []arcadeObject
	bullets   []arcadeObject
	lives     int
	steps     int
	fallClock int
	done      bool
	frames    [][]byte // rolling stack of the last frameStack rendered frames
}

var _ Env = (*Arcade)(nil)

type arcadeObject struct {
	x, y int
}

type arcadeConfig struct {
	name         string
	shooter      bool    // true: shoot objects; false: catch them
	pointsPerHit float64 // score per object destroyed/caught
	spawnProb    float64 // per-step spawn probability
	fallEvery    int     // steps between one-cell descents
	lives        int
	maxSteps     int
}

// Arcade geometry.
const (
	gridW      = 21
	gridH      = 21
	cellPx     = 4
	framePx    = gridW * cellPx // 84
	frameStack = 4
)

// arcadeConfigs mirrors the relative score scales of the four Atari games
// the paper evaluates (BeamRider and Qbert score in large increments,
// Breakout in single points, SpaceInvaders in tens).
var arcadeConfigs = map[string]arcadeConfig{
	"BeamRider":     {name: "BeamRider", shooter: true, pointsPerHit: 44, spawnProb: 0.10, fallEvery: 3, lives: 3, maxSteps: 10000},
	"Breakout":      {name: "Breakout", shooter: false, pointsPerHit: 1, spawnProb: 0.12, fallEvery: 2, lives: 5, maxSteps: 10000},
	"Qbert":         {name: "Qbert", shooter: false, pointsPerHit: 25, spawnProb: 0.10, fallEvery: 3, lives: 4, maxSteps: 10000},
	"SpaceInvaders": {name: "SpaceInvaders", shooter: true, pointsPerHit: 10, spawnProb: 0.14, fallEvery: 3, lives: 3, maxSteps: 10000},
}

// NewArcade returns the named synthetic arcade game.
func NewArcade(name string, seed int64) (*Arcade, error) {
	cfg, ok := arcadeConfigs[name]
	if !ok {
		return nil, fmt.Errorf("env: unknown arcade game %q", name)
	}
	return &Arcade{cfg: cfg, rng: rand.New(rand.NewSource(seed)), done: true}, nil
}

// Name implements Env.
func (a *Arcade) Name() string { return a.cfg.name }

// NumActions implements Env: 0 noop, 1 fire, 2 left, 3 right.
func (a *Arcade) NumActions() int { return 4 }

// FeatureDim implements Env: the compact state feature width.
func (a *Arcade) FeatureDim() int { return compactDim }

// DefaultPool is the pooling factor for frame-only observations; arcade
// observations carry compact features, so it applies only when pooling the
// raw frame stack explicitly.
const DefaultPool = 4

// Reset implements Env.
func (a *Arcade) Reset() (Obs, error) {
	a.playerX = gridW / 2
	a.objects = a.objects[:0]
	a.bullets = a.bullets[:0]
	a.lives = a.cfg.lives
	a.steps = 0
	a.fallClock = 0
	a.done = false
	a.frames = a.frames[:0]
	f := a.render()
	for i := 0; i < frameStack; i++ {
		a.frames = append(a.frames, f)
	}
	return a.obs(), nil
}

// Step implements Env.
func (a *Arcade) Step(action int) (Obs, float64, bool, error) {
	if a.done {
		return Obs{}, 0, true, ErrDone
	}
	a.steps++
	switch action {
	case 1: // fire
		if a.cfg.shooter && len(a.bullets) < 3 {
			a.bullets = append(a.bullets, arcadeObject{x: a.playerX, y: gridH - 2})
		}
	case 2: // left
		if a.playerX > 0 {
			a.playerX--
		}
	case 3: // right
		if a.playerX < gridW-1 {
			a.playerX++
		}
	}

	var reward float64

	// Bullets travel up three cells per step and destroy objects they meet.
	if a.cfg.shooter {
		kept := a.bullets[:0]
		for _, b := range a.bullets {
			hit := false
			for step := 0; step < 3 && !hit; step++ {
				b.y--
				if b.y < 0 {
					break
				}
				for i, o := range a.objects {
					if o.x == b.x && o.y == b.y {
						reward += a.cfg.pointsPerHit
						a.objects = append(a.objects[:i], a.objects[i+1:]...)
						hit = true
						break
					}
				}
			}
			if !hit && b.y >= 0 {
				kept = append(kept, b)
			}
		}
		a.bullets = kept
	}

	// Objects descend one cell every fallEvery steps.
	a.fallClock++
	if a.fallClock >= a.cfg.fallEvery {
		a.fallClock = 0
		kept := a.objects[:0]
		for _, o := range a.objects {
			o.y++
			if o.y >= gridH-1 {
				// Reached the player's row.
				if o.x == a.playerX {
					if a.cfg.shooter {
						a.lives-- // collision with the ship
					} else {
						reward += a.cfg.pointsPerHit // caught
					}
				} else if !a.cfg.shooter {
					a.lives-- // missed a falling object
				}
				continue
			}
			kept = append(kept, o)
		}
		a.objects = kept
	}

	// Spawn new objects at the top in a random column.
	if a.rng.Float64() < a.cfg.spawnProb && len(a.objects) < 8 {
		a.objects = append(a.objects, arcadeObject{x: a.rng.Intn(gridW), y: 0})
	}

	a.done = a.lives <= 0 || a.steps >= a.cfg.maxSteps
	a.pushFrame(a.render())
	return a.obs(), reward, a.done, nil
}

// render draws the grid into an 84×84 grayscale frame.
func (a *Arcade) render() []byte {
	f := make([]byte, framePx*framePx)
	drawCell := func(x, y int, v byte) {
		for dy := 0; dy < cellPx; dy++ {
			row := (y*cellPx + dy) * framePx
			for dx := 0; dx < cellPx; dx++ {
				f[row+x*cellPx+dx] = v
			}
		}
	}
	for _, o := range a.objects {
		drawCell(o.x, o.y, 170)
	}
	for _, b := range a.bullets {
		if b.y >= 0 {
			drawCell(b.x, b.y, 90)
		}
	}
	drawCell(a.playerX, gridH-1, 255)
	return f
}

func (a *Arcade) pushFrame(f []byte) {
	a.frames = append(a.frames, f)
	if len(a.frames) > frameStack {
		a.frames = a.frames[len(a.frames)-frameStack:]
	}
}

// compactDim is the length of the arcade games' compact state features:
// player position, 8 object slots, 3 bullet slots (x, y, present each).
const compactDim = 1 + 8*3 + 3*3

func (a *Arcade) compactFeatures() []float32 {
	out := make([]float32, compactDim)
	out[0] = float32(a.playerX) / float32(gridW-1)
	for i := 0; i < 8; i++ {
		base := 1 + i*3
		if i < len(a.objects) {
			o := a.objects[i]
			out[base] = float32(o.x) / float32(gridW-1)
			out[base+1] = float32(o.y) / float32(gridH-1)
			out[base+2] = 1
		}
	}
	for i := 0; i < 3; i++ {
		base := 1 + 8*3 + i*3
		if i < len(a.bullets) && a.bullets[i].y >= 0 {
			b := a.bullets[i]
			out[base] = float32(b.x) / float32(gridW-1)
			out[base+1] = float32(b.y) / float32(gridH-1)
			out[base+2] = 1
		}
	}
	return out
}

func (a *Arcade) obs() Obs {
	frame := make([]byte, 0, frameStack*framePx*framePx)
	for _, f := range a.frames {
		frame = append(frame, f...)
	}
	// The frame stack is the transmission payload (real Atari size); the
	// compact vector is the model input, derived from the same state the
	// frame renders — so agents avoid re-deriving features from pixels on
	// every step, which this 1-core host could not afford (the paper's
	// testbed runs its pixel pipeline on dozens of cores).
	return Obs{
		Frame: frame, FrameH: framePx, FrameW: framePx, FrameN: frameStack,
		Vec: a.compactFeatures(),
	}
}
