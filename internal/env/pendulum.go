package env

import (
	"math"
	"math/rand"
)

// ContinuousEnv is the gym-style interface for continuous-action
// environments (the DDPG family). Actions are vectors in
// [−ActionBound, +ActionBound]^ActionDim.
type ContinuousEnv interface {
	// Name identifies the environment.
	Name() string
	// Reset starts a new episode.
	Reset() (Obs, error)
	// StepContinuous applies a continuous action vector.
	StepContinuous(action []float32) (Obs, float64, bool, error)
	// ActionDim is the action vector length.
	ActionDim() int
	// ActionBound is the symmetric action magnitude limit.
	ActionBound() float32
	// FeatureDim is the observation feature width.
	FeatureDim() int
}

// Pendulum implements the classic Pendulum-v1 swing-up problem with Gym
// physics: apply torque to swing a pendulum upright and hold it there.
// Reward is −(θ² + 0.1·θ̇² + 0.001·u²); episodes run 200 steps.
type Pendulum struct {
	rng      *rand.Rand
	theta    float64
	thetaDot float64
	steps    int
	done     bool
}

var _ ContinuousEnv = (*Pendulum)(nil)

// Pendulum constants (Gym Pendulum-v1).
const (
	pdMaxSpeed  = 8.0
	pdMaxTorque = 2.0
	pdDT        = 0.05
	pdGravity   = 10.0
	pdMass      = 1.0
	pdLength    = 1.0
	pdMaxSteps  = 200
)

// NewPendulum returns a Pendulum environment.
func NewPendulum(seed int64) *Pendulum {
	return &Pendulum{rng: rand.New(rand.NewSource(seed)), done: true}
}

// Name implements ContinuousEnv.
func (p *Pendulum) Name() string { return "Pendulum" }

// ActionDim implements ContinuousEnv.
func (p *Pendulum) ActionDim() int { return 1 }

// ActionBound implements ContinuousEnv.
func (p *Pendulum) ActionBound() float32 { return pdMaxTorque }

// FeatureDim implements ContinuousEnv: cos θ, sin θ, θ̇.
func (p *Pendulum) FeatureDim() int { return 3 }

// Reset implements ContinuousEnv.
func (p *Pendulum) Reset() (Obs, error) {
	p.theta = p.rng.Float64()*2*math.Pi - math.Pi
	p.thetaDot = p.rng.Float64()*2 - 1
	p.steps = 0
	p.done = false
	return p.obs(), nil
}

// StepContinuous implements ContinuousEnv.
func (p *Pendulum) StepContinuous(action []float32) (Obs, float64, bool, error) {
	if p.done {
		return Obs{}, 0, true, ErrDone
	}
	u := 0.0
	if len(action) > 0 {
		u = clamp(float64(action[0]), -pdMaxTorque, pdMaxTorque)
	}
	cost := angleNorm(p.theta)*angleNorm(p.theta) +
		0.1*p.thetaDot*p.thetaDot + 0.001*u*u

	// θ̈ = 3g/(2l)·sin θ + 3/(m l²)·u
	acc := 3*pdGravity/(2*pdLength)*math.Sin(p.theta) +
		3/(pdMass*pdLength*pdLength)*u
	p.thetaDot = clamp(p.thetaDot+acc*pdDT, -pdMaxSpeed, pdMaxSpeed)
	p.theta += p.thetaDot * pdDT
	p.steps++
	p.done = p.steps >= pdMaxSteps
	return p.obs(), -cost, p.done, nil
}

func (p *Pendulum) obs() Obs {
	return Obs{Vec: []float32{
		float32(math.Cos(p.theta)),
		float32(math.Sin(p.theta)),
		float32(p.thetaDot),
	}}
}

// angleNorm wraps an angle into [−π, π].
func angleNorm(a float64) float64 { return wrapAngle(a) }
