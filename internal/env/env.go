// Package env provides gym-style environments for the DRL algorithm zoo.
//
// Two families are included: CartPole with faithful classic-control physics,
// and a synthetic arcade family (BeamRider, Breakout, Qbert, SpaceInvaders
// analogues) that substitutes for ALE Atari. The arcade games expose
// full-size 84×84×4 byte frame stacks — matching the rollout payload sizes
// the paper measures — while agents may train on pooled features
// (see Obs.PooledFeatures).
package env

import (
	"errors"
	"fmt"
)

// ErrDone is returned by Step after an episode has terminated and before
// Reset is called.
var ErrDone = errors.New("env: episode done; call Reset")

// Obs is an environment observation. Vector environments fill Vec only;
// frame-based arcade games fill Frame (a stacked 84×84×N byte image, the
// transmission payload) and additionally Vec with compact state features
// (the model input).
type Obs struct {
	// Frame is a raw byte frame stack for arcade environments, nil otherwise.
	Frame []byte
	// FrameH, FrameW, FrameN describe Frame's geometry when it is set.
	FrameH, FrameW, FrameN int
	// Vec is a low-dimensional feature observation.
	Vec []float32
}

// SizeBytes returns the wire size of the observation payload.
func (o Obs) SizeBytes() int {
	return len(o.Frame) + 4*len(o.Vec)
}

// PooledFeatures converts the observation into a flat float32 feature vector
// suitable for a dense network: Vec is returned as-is; Frame is average-
// pooled by pool×pool blocks per stacked frame and scaled to [0,1].
func (o Obs) PooledFeatures(pool int) []float32 {
	if o.Vec != nil {
		return o.Vec
	}
	if pool < 1 {
		pool = 1
	}
	ph := o.FrameH / pool
	pw := o.FrameW / pool
	out := make([]float32, o.FrameN*ph*pw)
	area := float32(pool * pool * 255)
	for n := 0; n < o.FrameN; n++ {
		frame := o.Frame[n*o.FrameH*o.FrameW : (n+1)*o.FrameH*o.FrameW]
		for py := 0; py < ph; py++ {
			for px := 0; px < pw; px++ {
				var sum float32
				for dy := 0; dy < pool; dy++ {
					row := (py*pool + dy) * o.FrameW
					for dx := 0; dx < pool; dx++ {
						sum += float32(frame[row+px*pool+dx])
					}
				}
				out[n*ph*pw+py*pw+px] = sum / area
			}
		}
	}
	return out
}

// Clone returns a deep copy of the observation.
func (o Obs) Clone() Obs {
	c := o
	if o.Frame != nil {
		c.Frame = append([]byte(nil), o.Frame...)
	}
	if o.Vec != nil {
		c.Vec = append([]float32(nil), o.Vec...)
	}
	return c
}

// Env is the gym-style environment interface of XingTian's Environment
// class: Reset starts an episode, Step advances it.
type Env interface {
	// Name identifies the environment (e.g. "CartPole", "BeamRider").
	Name() string
	// Reset starts a new episode and returns the first observation.
	Reset() (Obs, error)
	// Step applies an action; it returns the next observation, the reward,
	// and whether the episode terminated.
	Step(action int) (Obs, float64, bool, error)
	// NumActions returns the size of the discrete action space.
	NumActions() int
	// FeatureDim returns the length of PooledFeatures for this environment's
	// observations (the model input width).
	FeatureDim() int
}

// Make constructs a named environment with the given seed. Supported names:
// CartPole, MountainCar, Acrobot, Pendulum (continuous), and the arcade
// games BeamRider, Breakout, Qbert, SpaceInvaders.
func Make(name string, seed int64) (Env, error) {
	switch name {
	case "CartPole":
		return NewCartPole(seed), nil
	case "MountainCar":
		return NewMountainCar(seed), nil
	case "Acrobot":
		return NewAcrobot(seed), nil
	case "BeamRider", "Breakout", "Qbert", "SpaceInvaders":
		return NewArcade(name, seed)
	default:
		return nil, fmt.Errorf("env: unknown environment %q", name)
	}
}
