package env

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestMountainCarEpisodeShape(t *testing.T) {
	m := NewMountainCar(1)
	obs, err := m.Reset()
	if err != nil {
		t.Fatalf("Reset: %v", err)
	}
	if len(obs.Vec) != 2 {
		t.Fatalf("obs dim = %d", len(obs.Vec))
	}
	if obs.Vec[0] < -0.6 || obs.Vec[0] > -0.4 {
		t.Fatalf("initial position %v outside [-0.6, -0.4]", obs.Vec[0])
	}
	steps := 0
	var total float64
	for {
		_, r, done, err := m.Step(steps % 3)
		if err != nil {
			t.Fatalf("Step: %v", err)
		}
		total += r
		steps++
		if done {
			break
		}
		if steps > mcMaxSteps+1 {
			t.Fatal("episode exceeded the step cap")
		}
	}
	if total != -float64(steps) {
		t.Fatalf("return %v, want -steps %d", total, steps)
	}
}

func TestMountainCarRockingReachesGoal(t *testing.T) {
	// The energy-pumping policy (push in the direction of motion) must
	// solve MountainCar well before the cap.
	m := NewMountainCar(2)
	obs, err := m.Reset()
	if err != nil {
		t.Fatal(err)
	}
	for steps := 0; steps < mcMaxSteps; steps++ {
		action := 0
		if obs.Vec[1] >= 0 {
			action = 2
		}
		next, _, done, err := m.Step(action)
		if err != nil {
			t.Fatalf("Step: %v", err)
		}
		if done {
			if next.Vec[0] < float32(mcGoalPos) {
				t.Fatalf("episode ended at position %v without reaching the goal", next.Vec[0])
			}
			return
		}
		obs = next
	}
	t.Fatal("energy-pumping policy did not reach the goal")
}

func TestMountainCarStepAfterDone(t *testing.T) {
	m := NewMountainCar(1)
	if _, _, _, err := m.Step(0); !errors.Is(err, ErrDone) {
		t.Fatalf("Step before Reset = %v, want ErrDone", err)
	}
}

func TestAcrobotEpisodeShape(t *testing.T) {
	a := NewAcrobot(1)
	obs, err := a.Reset()
	if err != nil {
		t.Fatal(err)
	}
	if len(obs.Vec) != 6 {
		t.Fatalf("obs dim = %d", len(obs.Vec))
	}
	// cos²+sin² = 1 for both links.
	for _, pair := range [][2]int{{0, 1}, {2, 3}} {
		s := obs.Vec[pair[0]]*obs.Vec[pair[0]] + obs.Vec[pair[1]]*obs.Vec[pair[1]]
		if math.Abs(float64(s)-1) > 1e-5 {
			t.Fatalf("cos²+sin² = %v", s)
		}
	}
	steps := 0
	for {
		_, r, done, err := a.Step(steps % 3)
		if err != nil {
			t.Fatalf("Step: %v", err)
		}
		if !done && r != -1 {
			t.Fatalf("non-terminal reward = %v, want -1", r)
		}
		steps++
		if done {
			break
		}
		if steps > abMaxSteps+1 {
			t.Fatal("episode exceeded the step cap")
		}
	}
}

func TestAcrobotVelocitiesBounded(t *testing.T) {
	a := NewAcrobot(3)
	if _, err := a.Reset(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		obs, _, done, err := a.Step(2) // constant torque
		if err != nil {
			t.Fatalf("Step: %v", err)
		}
		if done {
			break
		}
		if v := float64(obs.Vec[4]); v < -abMaxVel1-1e-6 || v > abMaxVel1+1e-6 {
			t.Fatalf("dtheta1 = %v outside ±%v", v, abMaxVel1)
		}
		if v := float64(obs.Vec[5]); v < -abMaxVel2-1e-6 || v > abMaxVel2+1e-6 {
			t.Fatalf("dtheta2 = %v outside ±%v", v, abMaxVel2)
		}
	}
}

func TestPendulumEpisodeShape(t *testing.T) {
	p := NewPendulum(1)
	obs, err := p.Reset()
	if err != nil {
		t.Fatal(err)
	}
	if len(obs.Vec) != 3 {
		t.Fatalf("obs dim = %d", len(obs.Vec))
	}
	steps := 0
	for {
		_, r, done, err := p.StepContinuous([]float32{1.0})
		if err != nil {
			t.Fatalf("Step: %v", err)
		}
		if r > 0 {
			t.Fatalf("reward %v > 0; Pendulum rewards are costs", r)
		}
		steps++
		if done {
			break
		}
	}
	if steps != pdMaxSteps {
		t.Fatalf("episode length %d, want %d", steps, pdMaxSteps)
	}
}

func TestPendulumTorqueClamped(t *testing.T) {
	p := NewPendulum(2)
	if _, err := p.Reset(); err != nil {
		t.Fatal(err)
	}
	// A huge torque must behave like the clamped maximum: run two
	// identically seeded envs with torque 100 and torque 2.
	q := NewPendulum(2)
	if _, err := q.Reset(); err != nil {
		t.Fatal(err)
	}
	o1, r1, _, err := p.StepContinuous([]float32{100})
	if err != nil {
		t.Fatal(err)
	}
	o2, r2, _, err := q.StepContinuous([]float32{pdMaxTorque})
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 || o1.Vec[2] != o2.Vec[2] {
		t.Fatalf("torque 100 (%v, %v) != clamped torque 2 (%v, %v)", r1, o1.Vec, r2, o2.Vec)
	}
}

func TestPendulumStepAfterDone(t *testing.T) {
	p := NewPendulum(1)
	if _, _, _, err := p.StepContinuous([]float32{0}); !errors.Is(err, ErrDone) {
		t.Fatalf("Step before Reset = %v, want ErrDone", err)
	}
}

// TestPropertyPendulumRewardBounded: the cost function is bounded by its
// analytic maximum (π² + 0.1·8² + 0.001·2² ≈ 16.27).
func TestPropertyPendulumRewardBounded(t *testing.T) {
	f := func(seed int64, torques []float32) bool {
		p := NewPendulum(seed)
		if _, err := p.Reset(); err != nil {
			return false
		}
		for _, u := range torques {
			_, r, done, err := p.StepContinuous([]float32{u})
			if err != nil {
				return false
			}
			if r > 0 || r < -16.5 {
				return false
			}
			if done {
				if _, err := p.Reset(); err != nil {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestMakeClassicEnvs(t *testing.T) {
	for _, name := range []string{"MountainCar", "Acrobot"} {
		e, err := Make(name, 1)
		if err != nil {
			t.Fatalf("Make(%q): %v", name, err)
		}
		if e.Name() != name {
			t.Fatalf("Name = %q", e.Name())
		}
		if _, err := e.Reset(); err != nil {
			t.Fatalf("%s Reset: %v", name, err)
		}
	}
}
