package env

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestMakeKnownEnvs(t *testing.T) {
	for _, name := range []string{"CartPole", "BeamRider", "Breakout", "Qbert", "SpaceInvaders"} {
		e, err := Make(name, 1)
		if err != nil {
			t.Fatalf("Make(%q): %v", name, err)
		}
		if e.Name() != name {
			t.Fatalf("Name = %q, want %q", e.Name(), name)
		}
	}
	if _, err := Make("Pong", 1); err == nil {
		t.Fatal("Make(unknown) did not error")
	}
}

func TestCartPoleEpisodeShape(t *testing.T) {
	e := NewCartPole(7)
	obs, err := e.Reset()
	if err != nil {
		t.Fatalf("Reset: %v", err)
	}
	if len(obs.Vec) != 4 || obs.Frame != nil {
		t.Fatalf("obs = %+v, want 4-dim Vec", obs)
	}
	for i := range obs.Vec {
		if obs.Vec[i] < -0.05 || obs.Vec[i] > 0.05 {
			t.Fatalf("initial state[%d] = %v outside ±0.05", i, obs.Vec[i])
		}
	}
	steps := 0
	var total float64
	for {
		_, r, done, err := e.Step(steps % 2)
		if err != nil {
			t.Fatalf("Step: %v", err)
		}
		total += r
		steps++
		if done {
			break
		}
		if steps > 600 {
			t.Fatal("episode did not terminate within 600 steps")
		}
	}
	if total != float64(steps) {
		t.Fatalf("return %v != steps %d (reward must be 1/step)", total, steps)
	}
}

func TestCartPoleStepAfterDone(t *testing.T) {
	e := NewCartPole(1)
	if _, _, _, err := e.Step(0); !errors.Is(err, ErrDone) {
		t.Fatalf("Step before Reset = %v, want ErrDone", err)
	}
}

func TestCartPoleMaxSteps(t *testing.T) {
	// A policy that balances by construction cannot exist trivially; instead
	// verify the step cap using physics reset each time the pole drifts:
	// alternate actions tends to keep the pole up long enough only rarely,
	// so we instead verify that done is forced at 500 by stubbing drift with
	// a tiny-angle trick: repeatedly reset until an episode reaches the cap
	// is flaky; so assert only that no episode exceeds 500 steps.
	e := NewCartPole(3)
	for ep := 0; ep < 5; ep++ {
		if _, err := e.Reset(); err != nil {
			t.Fatalf("Reset: %v", err)
		}
		for steps := 0; ; steps++ {
			_, _, done, err := e.Step(steps % 2)
			if err != nil {
				t.Fatalf("Step: %v", err)
			}
			if done {
				if steps+1 > cpMaxSteps {
					t.Fatalf("episode ran %d steps, cap is %d", steps+1, cpMaxSteps)
				}
				break
			}
		}
	}
}

func TestCartPoleDeterministicUnderSeed(t *testing.T) {
	run := func() []float32 {
		e := NewCartPole(42)
		obs, _ := e.Reset()
		var trace []float32
		trace = append(trace, obs.Vec...)
		for i := 0; i < 50; i++ {
			o, _, done, err := e.Step(i % 2)
			if err != nil || done {
				break
			}
			trace = append(trace, o.Vec...)
		}
		return trace
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different trajectories")
		}
	}
}

func TestArcadeObservationGeometry(t *testing.T) {
	a, err := NewArcade("Breakout", 1)
	if err != nil {
		t.Fatalf("NewArcade: %v", err)
	}
	obs, err := a.Reset()
	if err != nil {
		t.Fatalf("Reset: %v", err)
	}
	if obs.Vec == nil {
		t.Fatal("arcade obs missing compact features")
	}
	if len(obs.Vec) != a.FeatureDim() {
		t.Fatalf("compact features = %d, FeatureDim = %d", len(obs.Vec), a.FeatureDim())
	}
	wantBytes := 84 * 84 * 4
	if len(obs.Frame) != wantBytes {
		t.Fatalf("frame stack = %d bytes, want %d (84*84*4, the Atari payload size)", len(obs.Frame), wantBytes)
	}
	if obs.SizeBytes() < wantBytes {
		t.Fatalf("SizeBytes = %d, want >= %d (frames dominate the payload)", obs.SizeBytes(), wantBytes)
	}
}

func TestArcadePlayerVisibleInFrame(t *testing.T) {
	a, _ := NewArcade("Qbert", 2)
	obs, _ := a.Reset()
	// The player renders at value 255 somewhere in the bottom cell row of
	// the newest frame.
	last := obs.Frame[3*84*84 : 4*84*84]
	found := false
	for _, v := range last[(84-cellPx)*84:] {
		if v == 255 {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("player sprite not found in bottom rows")
	}
}

func TestArcadeEpisodeTerminates(t *testing.T) {
	a, _ := NewArcade("SpaceInvaders", 3)
	if _, err := a.Reset(); err != nil {
		t.Fatalf("Reset: %v", err)
	}
	for steps := 0; ; steps++ {
		_, _, done, err := a.Step(0) // noop forever: must eventually lose lives
		if err != nil {
			t.Fatalf("Step: %v", err)
		}
		if done {
			return
		}
		if steps > 20000 {
			t.Fatal("noop episode never terminated")
		}
	}
}

func TestArcadeMovementBounds(t *testing.T) {
	a, _ := NewArcade("Breakout", 4)
	if _, err := a.Reset(); err != nil {
		t.Fatalf("Reset: %v", err)
	}
	for i := 0; i < 100; i++ {
		if _, _, done, err := a.Step(2); err != nil || done { // hold left
			if done {
				if _, err := a.Reset(); err != nil {
					t.Fatalf("Reset: %v", err)
				}
				continue
			}
			t.Fatalf("Step: %v", err)
		}
	}
	if a.playerX != 0 {
		t.Fatalf("playerX = %d after holding left, want 0", a.playerX)
	}
	for i := 0; i < 100; i++ {
		if _, _, done, err := a.Step(3); err != nil || done { // hold right
			if done {
				if _, err := a.Reset(); err != nil {
					t.Fatalf("Reset: %v", err)
				}
				continue
			}
			t.Fatalf("Step: %v", err)
		}
	}
	if a.playerX != gridW-1 {
		t.Fatalf("playerX = %d after holding right, want %d", a.playerX, gridW-1)
	}
}

func TestArcadeShooterScores(t *testing.T) {
	// With enough random fire, a shooter game must score at least once.
	a, _ := NewArcade("BeamRider", 5)
	if _, err := a.Reset(); err != nil {
		t.Fatalf("Reset: %v", err)
	}
	var total float64
	for ep := 0; ep < 20; ep++ {
		for {
			_, r, done, err := a.Step([]int{1, 2, 1, 3}[a.steps%4])
			if err != nil {
				t.Fatalf("Step: %v", err)
			}
			total += r
			if done {
				if _, err := a.Reset(); err != nil {
					t.Fatalf("Reset: %v", err)
				}
				break
			}
		}
	}
	if total <= 0 {
		t.Fatal("spray-and-move policy never scored in 20 episodes")
	}
	if math.Mod(total, 44) != 0 {
		t.Fatalf("BeamRider rewards must be multiples of 44, got total %v", total)
	}
}

func TestCompactFeaturesGeometry(t *testing.T) {
	a, _ := NewArcade("Breakout", 6)
	obs, _ := a.Reset()
	feats := obs.PooledFeatures(DefaultPool) // Vec takes precedence
	if len(feats) != a.FeatureDim() {
		t.Fatalf("features = %d, FeatureDim = %d", len(feats), a.FeatureDim())
	}
	for _, f := range feats {
		if f < 0 || f > 1 {
			t.Fatalf("feature %v outside [0,1]", f)
		}
	}
	// The player starts centered: feature 0 is its normalized position.
	if feats[0] != 0.5 {
		t.Fatalf("player position feature = %v, want 0.5", feats[0])
	}
}

func TestFramePoolingStillWorks(t *testing.T) {
	// Pooling the raw frame stack (without the compact vector) remains
	// available for pixel-input models.
	a, _ := NewArcade("Breakout", 6)
	obs, _ := a.Reset()
	frameOnly := Obs{Frame: obs.Frame, FrameH: obs.FrameH, FrameW: obs.FrameW, FrameN: obs.FrameN}
	feats := frameOnly.PooledFeatures(DefaultPool)
	want := obs.FrameN * (obs.FrameH / DefaultPool) * (obs.FrameW / DefaultPool)
	if len(feats) != want {
		t.Fatalf("pooled features = %d, want %d", len(feats), want)
	}
	max := float32(0)
	for _, f := range feats {
		if f > max {
			max = f
		}
	}
	if max < 0.9 {
		t.Fatalf("max pooled feature %v; expected the player cell ≈ 1.0", max)
	}
}

func TestPooledFeaturesVectorPassthrough(t *testing.T) {
	o := Obs{Vec: []float32{1, 2, 3}}
	got := o.PooledFeatures(4)
	if len(got) != 3 || got[2] != 3 {
		t.Fatalf("vector passthrough = %v", got)
	}
}

func TestObsClone(t *testing.T) {
	a, _ := NewArcade("Qbert", 7)
	obs, _ := a.Reset()
	c := obs.Clone()
	c.Frame[0] = 99
	if obs.Frame[0] == 99 {
		t.Fatal("Clone shares frame storage")
	}
}

func TestEpisodeTracker(t *testing.T) {
	tr := NewEpisodeTracker(NewCartPole(8))
	for ep := 0; ep < 3; ep++ {
		if _, err := tr.Reset(); err != nil {
			t.Fatalf("Reset: %v", err)
		}
		for i := 0; ; i++ {
			_, _, done, err := tr.Step(i % 2)
			if err != nil {
				t.Fatalf("Step: %v", err)
			}
			if done {
				break
			}
		}
	}
	if tr.Episodes() != 3 {
		t.Fatalf("Episodes = %d, want 3", tr.Episodes())
	}
	if tr.MeanReturn(0) <= 0 {
		t.Fatalf("MeanReturn = %v, want positive", tr.MeanReturn(0))
	}
	if got := tr.MeanReturn(1); got != tr.Returns()[2] {
		t.Fatalf("MeanReturn(1) = %v, want last episode %v", got, tr.Returns()[2])
	}
}

// TestPropertyArcadeRewardNonNegativeMultiples: any action sequence yields
// rewards that are non-negative multiples of the game's pointsPerHit.
func TestPropertyArcadeRewardNonNegativeMultiples(t *testing.T) {
	f := func(seed int64, actions []byte) bool {
		a, err := NewArcade("Qbert", seed)
		if err != nil {
			return false
		}
		if _, err := a.Reset(); err != nil {
			return false
		}
		for _, act := range actions {
			_, r, done, err := a.Step(int(act) % 4)
			if err != nil {
				return false
			}
			if r < 0 || math.Mod(r, 25) != 0 {
				return false
			}
			if done {
				if _, err := a.Reset(); err != nil {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyCartPoleStateBounded: until done, the reported state respects
// the termination thresholds.
func TestPropertyCartPoleStateBounded(t *testing.T) {
	f := func(seed int64, actions []bool) bool {
		e := NewCartPole(seed)
		if _, err := e.Reset(); err != nil {
			return false
		}
		for _, right := range actions {
			act := 0
			if right {
				act = 1
			}
			obs, _, done, err := e.Step(act)
			if err != nil {
				return false
			}
			if done {
				return true
			}
			if obs.Vec[0] < -float32(cpXLimit) || obs.Vec[0] > float32(cpXLimit) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkArcadeStep(b *testing.B) {
	a, _ := NewArcade("BeamRider", 1)
	if _, err := a.Reset(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, _, done, err := a.Step(i % 4)
		if err != nil {
			b.Fatal(err)
		}
		if done {
			if _, err := a.Reset(); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkCartPoleStep(b *testing.B) {
	e := NewCartPole(1)
	if _, err := e.Reset(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, _, done, err := e.Step(i % 2)
		if err != nil {
			b.Fatal(err)
		}
		if done {
			if _, err := e.Reset(); err != nil {
				b.Fatal(err)
			}
		}
	}
}
