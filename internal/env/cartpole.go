package env

import (
	"math"
	"math/rand"
)

// CartPole implements the classic CartPole-v1 control problem with the
// standard OpenAI Gym physics: a pole hinged on a cart that the agent pushes
// left or right; reward is +1 per step until the pole falls or the cart
// leaves the track, capped at 500 steps.
type CartPole struct {
	rng   *rand.Rand
	state [4]float64 // x, xDot, theta, thetaDot
	steps int
	done  bool
}

var _ Env = (*CartPole)(nil)

// CartPole physics constants (Gym CartPole-v1).
const (
	cpGravity     = 9.8
	cpMassCart    = 1.0
	cpMassPole    = 0.1
	cpTotalMass   = cpMassCart + cpMassPole
	cpLength      = 0.5 // half pole length
	cpPoleMassLen = cpMassPole * cpLength
	cpForceMag    = 10.0
	cpTau         = 0.02 // seconds per step
	cpThetaLimit  = 12 * 2 * math.Pi / 360
	cpXLimit      = 2.4
	cpMaxSteps    = 500
)

// NewCartPole returns a CartPole environment with its own deterministic RNG.
func NewCartPole(seed int64) *CartPole {
	return &CartPole{rng: rand.New(rand.NewSource(seed)), done: true}
}

// Name implements Env.
func (c *CartPole) Name() string { return "CartPole" }

// NumActions implements Env: push left (0) or right (1).
func (c *CartPole) NumActions() int { return 2 }

// FeatureDim implements Env.
func (c *CartPole) FeatureDim() int { return 4 }

// Reset implements Env.
func (c *CartPole) Reset() (Obs, error) {
	for i := range c.state {
		c.state[i] = c.rng.Float64()*0.1 - 0.05
	}
	c.steps = 0
	c.done = false
	return c.obs(), nil
}

// Step implements Env.
func (c *CartPole) Step(action int) (Obs, float64, bool, error) {
	if c.done {
		return Obs{}, 0, true, ErrDone
	}
	force := cpForceMag
	if action == 0 {
		force = -cpForceMag
	}
	x, xDot, theta, thetaDot := c.state[0], c.state[1], c.state[2], c.state[3]
	cosT := math.Cos(theta)
	sinT := math.Sin(theta)
	temp := (force + cpPoleMassLen*thetaDot*thetaDot*sinT) / cpTotalMass
	thetaAcc := (cpGravity*sinT - cosT*temp) /
		(cpLength * (4.0/3.0 - cpMassPole*cosT*cosT/cpTotalMass))
	xAcc := temp - cpPoleMassLen*thetaAcc*cosT/cpTotalMass

	// Euler integration, matching Gym.
	x += cpTau * xDot
	xDot += cpTau * xAcc
	theta += cpTau * thetaDot
	thetaDot += cpTau * thetaAcc
	c.state = [4]float64{x, xDot, theta, thetaDot}
	c.steps++

	failed := x < -cpXLimit || x > cpXLimit || theta < -cpThetaLimit || theta > cpThetaLimit
	c.done = failed || c.steps >= cpMaxSteps
	return c.obs(), 1.0, c.done, nil
}

func (c *CartPole) obs() Obs {
	return Obs{Vec: []float32{
		float32(c.state[0]), float32(c.state[1]),
		float32(c.state[2]), float32(c.state[3]),
	}}
}
