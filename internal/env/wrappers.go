package env

// EpisodeTracker wraps an Env and records per-episode returns and lengths,
// which is how the evaluation measures convergence (average episode return).
type EpisodeTracker struct {
	inner Env

	curReturn float64
	curLen    int

	// Completed episode history.
	returns []float64
	lengths []int
}

var _ Env = (*EpisodeTracker)(nil)

// NewEpisodeTracker wraps inner.
func NewEpisodeTracker(inner Env) *EpisodeTracker {
	return &EpisodeTracker{inner: inner}
}

// Name implements Env.
func (e *EpisodeTracker) Name() string { return e.inner.Name() }

// NumActions implements Env.
func (e *EpisodeTracker) NumActions() int { return e.inner.NumActions() }

// FeatureDim implements Env.
func (e *EpisodeTracker) FeatureDim() int { return e.inner.FeatureDim() }

// Reset implements Env.
func (e *EpisodeTracker) Reset() (Obs, error) {
	e.curReturn = 0
	e.curLen = 0
	return e.inner.Reset()
}

// Step implements Env, accumulating the running episode return.
func (e *EpisodeTracker) Step(action int) (Obs, float64, bool, error) {
	obs, r, done, err := e.inner.Step(action)
	if err != nil {
		return obs, r, done, err
	}
	e.curReturn += r
	e.curLen++
	if done {
		e.returns = append(e.returns, e.curReturn)
		e.lengths = append(e.lengths, e.curLen)
	}
	return obs, r, done, nil
}

// Episodes returns the number of completed episodes.
func (e *EpisodeTracker) Episodes() int { return len(e.returns) }

// MeanReturn returns the mean return over the last n completed episodes
// (all of them when n <= 0 or fewer exist). It returns 0 with no episodes.
func (e *EpisodeTracker) MeanReturn(n int) float64 {
	if len(e.returns) == 0 {
		return 0
	}
	start := 0
	if n > 0 && len(e.returns) > n {
		start = len(e.returns) - n
	}
	var sum float64
	for _, r := range e.returns[start:] {
		sum += r
	}
	return sum / float64(len(e.returns)-start)
}

// Returns exposes a copy of all completed episode returns.
func (e *EpisodeTracker) Returns() []float64 {
	return append([]float64(nil), e.returns...)
}
