package env

import (
	"math"
	"math/rand"
)

// MountainCar implements the classic MountainCar-v0 problem with Gym
// physics: an under-powered car must rock back and forth to reach the flag
// on the right hill. Reward is −1 per step; episodes cap at 200 steps.
type MountainCar struct {
	rng      *rand.Rand
	position float64
	velocity float64
	steps    int
	done     bool
}

var _ Env = (*MountainCar)(nil)

// MountainCar constants (Gym MountainCar-v0).
const (
	mcMinPos   = -1.2
	mcMaxPos   = 0.6
	mcMaxSpeed = 0.07
	mcGoalPos  = 0.5
	mcForce    = 0.001
	mcGravity  = 0.0025
	mcMaxSteps = 200
)

// NewMountainCar returns a MountainCar environment.
func NewMountainCar(seed int64) *MountainCar {
	return &MountainCar{rng: rand.New(rand.NewSource(seed)), done: true}
}

// Name implements Env.
func (m *MountainCar) Name() string { return "MountainCar" }

// NumActions implements Env: push left, no push, push right.
func (m *MountainCar) NumActions() int { return 3 }

// FeatureDim implements Env.
func (m *MountainCar) FeatureDim() int { return 2 }

// Reset implements Env.
func (m *MountainCar) Reset() (Obs, error) {
	m.position = m.rng.Float64()*0.2 - 0.6 // U[-0.6, -0.4]
	m.velocity = 0
	m.steps = 0
	m.done = false
	return m.obs(), nil
}

// Step implements Env.
func (m *MountainCar) Step(action int) (Obs, float64, bool, error) {
	if m.done {
		return Obs{}, 0, true, ErrDone
	}
	m.velocity += float64(action-1)*mcForce - mcGravity*math.Cos(3*m.position)
	m.velocity = clamp(m.velocity, -mcMaxSpeed, mcMaxSpeed)
	m.position += m.velocity
	m.position = clamp(m.position, mcMinPos, mcMaxPos)
	if m.position == mcMinPos && m.velocity < 0 {
		m.velocity = 0
	}
	m.steps++
	reached := m.position >= mcGoalPos
	m.done = reached || m.steps >= mcMaxSteps
	return m.obs(), -1, m.done, nil
}

func (m *MountainCar) obs() Obs {
	return Obs{Vec: []float32{float32(m.position), float32(m.velocity)}}
}

// Acrobot implements the classic Acrobot-v1 problem: a two-link pendulum
// must swing its free end above the bar by applying torque to the middle
// joint. Reward is −1 per step until the goal height, capped at 500 steps.
type Acrobot struct {
	rng   *rand.Rand
	state [4]float64 // theta1, theta2, dtheta1, dtheta2
	steps int
	done  bool
}

var _ Env = (*Acrobot)(nil)

// Acrobot constants (Gym Acrobot-v1, book parameterization).
const (
	abDT        = 0.2
	abLinkLen1  = 1.0
	abLinkMass1 = 1.0
	abLinkMass2 = 1.0
	abLinkCom1  = 0.5
	abLinkCom2  = 0.5
	abLinkMOI   = 1.0
	abMaxVel1   = 4 * math.Pi
	abMaxVel2   = 9 * math.Pi
	abGrav      = 9.8
	abMaxSteps  = 500
)

// NewAcrobot returns an Acrobot environment.
func NewAcrobot(seed int64) *Acrobot {
	return &Acrobot{rng: rand.New(rand.NewSource(seed)), done: true}
}

// Name implements Env.
func (a *Acrobot) Name() string { return "Acrobot" }

// NumActions implements Env: torque −1, 0, +1.
func (a *Acrobot) NumActions() int { return 3 }

// FeatureDim implements Env: cos/sin of both angles plus both velocities.
func (a *Acrobot) FeatureDim() int { return 6 }

// Reset implements Env.
func (a *Acrobot) Reset() (Obs, error) {
	for i := range a.state {
		a.state[i] = a.rng.Float64()*0.2 - 0.1
	}
	a.steps = 0
	a.done = false
	return a.obs(), nil
}

// Step implements Env, integrating the dynamics with RK4 as Gym does.
func (a *Acrobot) Step(action int) (Obs, float64, bool, error) {
	if a.done {
		return Obs{}, 0, true, ErrDone
	}
	torque := float64(action - 1)
	a.state = rk4(a.state, torque, abDT)
	a.state[0] = wrapAngle(a.state[0])
	a.state[1] = wrapAngle(a.state[1])
	a.state[2] = clamp(a.state[2], -abMaxVel1, abMaxVel1)
	a.state[3] = clamp(a.state[3], -abMaxVel2, abMaxVel2)
	a.steps++
	goal := -math.Cos(a.state[0])-math.Cos(a.state[1]+a.state[0]) > 1.0
	a.done = goal || a.steps >= abMaxSteps
	reward := -1.0
	if goal {
		reward = 0
	}
	return a.obs(), reward, a.done, nil
}

func (a *Acrobot) obs() Obs {
	return Obs{Vec: []float32{
		float32(math.Cos(a.state[0])), float32(math.Sin(a.state[0])),
		float32(math.Cos(a.state[1])), float32(math.Sin(a.state[1])),
		float32(a.state[2]), float32(a.state[3]),
	}}
}

// acrobotDerivs computes the state derivatives for the two-link dynamics.
func acrobotDerivs(s [4]float64, torque float64) [4]float64 {
	m1, m2 := abLinkMass1, abLinkMass2
	l1 := abLinkLen1
	lc1, lc2 := abLinkCom1, abLinkCom2
	i1, i2 := abLinkMOI, abLinkMOI
	g := abGrav
	theta1, theta2, dtheta1, dtheta2 := s[0], s[1], s[2], s[3]

	d1 := m1*lc1*lc1 + m2*(l1*l1+lc2*lc2+2*l1*lc2*math.Cos(theta2)) + i1 + i2
	d2 := m2*(lc2*lc2+l1*lc2*math.Cos(theta2)) + i2
	phi2 := m2 * lc2 * g * math.Cos(theta1+theta2-math.Pi/2)
	phi1 := -m2*l1*lc2*dtheta2*dtheta2*math.Sin(theta2) -
		2*m2*l1*lc2*dtheta2*dtheta1*math.Sin(theta2) +
		(m1*lc1+m2*l1)*g*math.Cos(theta1-math.Pi/2) + phi2
	ddtheta2 := (torque + d2/d1*phi1 - m2*l1*lc2*dtheta1*dtheta1*math.Sin(theta2) - phi2) /
		(m2*lc2*lc2 + i2 - d2*d2/d1)
	ddtheta1 := -(d2*ddtheta2 + phi1) / d1
	return [4]float64{dtheta1, dtheta2, ddtheta1, ddtheta2}
}

// rk4 integrates the acrobot dynamics one step.
func rk4(s [4]float64, torque, dt float64) [4]float64 {
	add := func(a [4]float64, b [4]float64, scale float64) [4]float64 {
		var out [4]float64
		for i := range out {
			out[i] = a[i] + b[i]*scale
		}
		return out
	}
	k1 := acrobotDerivs(s, torque)
	k2 := acrobotDerivs(add(s, k1, dt/2), torque)
	k3 := acrobotDerivs(add(s, k2, dt/2), torque)
	k4 := acrobotDerivs(add(s, k3, dt), torque)
	var out [4]float64
	for i := range out {
		out[i] = s[i] + dt/6*(k1[i]+2*k2[i]+2*k3[i]+k4[i])
	}
	return out
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func wrapAngle(a float64) float64 {
	for a > math.Pi {
		a -= 2 * math.Pi
	}
	for a < -math.Pi {
		a += 2 * math.Pi
	}
	return a
}
