// Package dummy implements the paper's §5.1 data-transmission benchmark:
// a dummy DRL algorithm that keeps DRL's communication mode but strips the
// computation. Explorers send a fixed number of equal-size messages as fast
// as they can; the learner receives them asynchronously in rounds (one
// message per explorer per round, sender identity ignored) and reports the
// end-to-end latency and throughput.
//
// This package hosts the XingTian implementation and the shared Result
// type; the RLLib- and Launchpad-style implementations live in
// internal/baselines and run over the identical substrate so only the
// communication architecture differs.
package dummy

import (
	"fmt"
	"time"

	"xingtian/internal/broker"
	"xingtian/internal/message"
	"xingtian/internal/netsim"
	"xingtian/internal/serialize"
)

// Config parameterizes a transmission benchmark run.
type Config struct {
	// Explorers is the number of dummy explorers.
	Explorers int
	// MessageBytes is the payload size per message.
	MessageBytes int
	// Rounds is how many messages each explorer sends (paper: 20).
	Rounds int
	// Machines spreads explorers round-robin; the learner is on machine 0.
	// Values < 1 mean one machine.
	Machines int
	// LearnerAlone places the learner on machine 0 and all explorers on
	// other machines (the paper's "16 remote explorers" configuration).
	LearnerAlone bool
	// Net configures the simulated network.
	Net netsim.Config
	// Compress enables the 1 MB LZ4 threshold.
	Compress bool
	// PlaneNsPerKB emulates a slower serialization plane (see
	// serialize.Compressor.PackNsPerKB); 0 uses the raw Go codec.
	PlaneNsPerKB int
}

// Result reports a transmission benchmark outcome.
type Result struct {
	// TotalBytes is the payload volume the learner received.
	TotalBytes int64
	// Duration is the end-to-end latency: first send to last receive.
	Duration time.Duration
	// ThroughputMBps is TotalBytes per second in MB/s.
	ThroughputMBps float64
}

func (r Result) String() string {
	return fmt.Sprintf("%.2f MB/s over %v", r.ThroughputMBps, r.Duration)
}

func (c Config) normalize() Config {
	if c.Explorers < 1 {
		c.Explorers = 1
	}
	if c.Rounds < 1 {
		c.Rounds = 1
	}
	if c.Machines < 1 {
		c.Machines = 1
	}
	return c
}

func (c Config) explorerMachine(i int) int {
	if c.LearnerAlone {
		// All explorers off machine 0, spread over machines 1..Machines-1.
		if c.Machines <= 1 {
			return 1
		}
		return 1 + i%(c.Machines-1)
	}
	return i % c.Machines
}

// RunXingTian executes the benchmark over the XingTian channel: every
// explorer pushes its messages immediately; the learner's receive loop just
// drains its ID queue. Transmission of message k+1 overlaps the learner's
// deserialization of message k — the overlap the paper exploits.
func RunXingTian(cfg Config) (Result, error) {
	cfg = cfg.normalize()
	comp := serialize.Compressor{}
	if cfg.Compress {
		comp = serialize.NewCompressor()
	}
	comp.PackNsPerKB = cfg.PlaneNsPerKB
	cluster := broker.NewCluster(netsim.New(cfg.Net))
	defer cluster.Stop()

	machines := cfg.Machines
	if cfg.LearnerAlone && machines < 2 {
		machines = 2
	}
	for m := 0; m < machines; m++ {
		if _, err := cluster.AddBroker(m, comp); err != nil {
			return Result{}, err
		}
	}
	learnerPort, err := cluster.Register(0, "learner")
	if err != nil {
		return Result{}, err
	}
	type exp struct {
		port *broker.Port
		name string
	}
	explorers := make([]exp, cfg.Explorers)
	for i := range explorers {
		name := fmt.Sprintf("explorer-%d", i)
		port, err := cluster.Register(cfg.explorerMachine(i), name)
		if err != nil {
			return Result{}, err
		}
		explorers[i] = exp{port: port, name: name}
	}

	payload := MakePayload(cfg.MessageBytes)

	start := time.Now()
	errs := make(chan error, cfg.Explorers)
	for _, ex := range explorers {
		go func(ex exp) {
			for r := 0; r < cfg.Rounds; r++ {
				m := message.New(message.TypeDummy, ex.name, []string{"learner"},
					&message.DummyPayload{Data: payload})
				m.Header.Round = int32(r)
				if err := ex.port.Send(m); err != nil {
					errs <- fmt.Errorf("dummy explorer %s: %w", ex.name, err)
					return
				}
			}
			errs <- nil
		}(ex)
	}

	var total int64
	for r := 0; r < cfg.Rounds; r++ {
		for i := 0; i < cfg.Explorers; i++ {
			m, err := learnerPort.Recv()
			if err != nil {
				return Result{}, fmt.Errorf("dummy learner: %w", err)
			}
			body, ok := m.Body.(*message.DummyPayload)
			if !ok {
				return Result{}, fmt.Errorf("dummy learner: unexpected body %T", m.Body)
			}
			total += int64(len(body.Data))
		}
	}
	duration := time.Since(start)

	for range explorers {
		if err := <-errs; err != nil {
			return Result{}, err
		}
	}
	return NewResult(total, duration), nil
}

// MakePayload builds the benchmark message body: pseudo-random bytes over a
// limited alphabet, mimicking serialized float tensors — mildly compressible
// (LZ4 gets ~20-30%), so compression does real work on both ends without
// collapsing the payload. All three framework implementations use this same
// generator so their workloads are identical.
func MakePayload(n int) []byte {
	payload := make([]byte, n)
	state := uint64(0x2545F4914F6CDD1D)
	for i := range payload {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		payload[i] = byte(state & 0x3F)
	}
	return payload
}

// NewResult computes derived fields.
func NewResult(totalBytes int64, d time.Duration) Result {
	secs := d.Seconds()
	if secs <= 0 {
		secs = 1e-9
	}
	return Result{
		TotalBytes:     totalBytes,
		Duration:       d,
		ThroughputMBps: float64(totalBytes) / (1 << 20) / secs,
	}
}
