package dummy

import (
	"testing"
	"time"

	"xingtian/internal/netsim"
)

func fastNet() netsim.Config {
	return netsim.Config{Bandwidth: 1 << 30, Latency: 0, TimeScale: 1}
}

func TestRunXingTianSingleExplorer(t *testing.T) {
	res, err := RunXingTian(Config{
		Explorers:    1,
		MessageBytes: 64 << 10,
		Rounds:       5,
		Net:          fastNet(),
	})
	if err != nil {
		t.Fatalf("RunXingTian: %v", err)
	}
	want := int64(5 * (64 << 10))
	if res.TotalBytes != want {
		t.Fatalf("TotalBytes = %d, want %d", res.TotalBytes, want)
	}
	if res.ThroughputMBps <= 0 {
		t.Fatalf("Throughput = %v", res.ThroughputMBps)
	}
}

func TestRunXingTianManyExplorers(t *testing.T) {
	res, err := RunXingTian(Config{
		Explorers:    8,
		MessageBytes: 16 << 10,
		Rounds:       4,
		Net:          fastNet(),
	})
	if err != nil {
		t.Fatalf("RunXingTian: %v", err)
	}
	if want := int64(8 * 4 * (16 << 10)); res.TotalBytes != want {
		t.Fatalf("TotalBytes = %d, want %d", res.TotalBytes, want)
	}
}

func TestRunXingTianTwoMachines(t *testing.T) {
	res, err := RunXingTian(Config{
		Explorers:    4,
		MessageBytes: 32 << 10,
		Rounds:       3,
		Machines:     2,
		Net:          netsim.Config{Bandwidth: 100 << 20, Latency: 0, TimeScale: 1},
	})
	if err != nil {
		t.Fatalf("RunXingTian 2 machines: %v", err)
	}
	if res.TotalBytes != int64(4*3*(32<<10)) {
		t.Fatalf("TotalBytes = %d", res.TotalBytes)
	}
}

func TestRunXingTianLearnerAlone(t *testing.T) {
	res, err := RunXingTian(Config{
		Explorers:    2,
		MessageBytes: 8 << 10,
		Rounds:       3,
		Machines:     2,
		LearnerAlone: true,
		Net:          netsim.Config{Bandwidth: 100 << 20, Latency: 0, TimeScale: 1},
	})
	if err != nil {
		t.Fatalf("RunXingTian learner alone: %v", err)
	}
	if res.TotalBytes != int64(2*3*(8<<10)) {
		t.Fatalf("TotalBytes = %d", res.TotalBytes)
	}
}

func TestRunXingTianCompression(t *testing.T) {
	// 2 MB highly structured payload crosses the 1 MB threshold.
	res, err := RunXingTian(Config{
		Explorers:    1,
		MessageBytes: 2 << 20,
		Rounds:       2,
		Compress:     true,
		Net:          fastNet(),
	})
	if err != nil {
		t.Fatalf("RunXingTian compressed: %v", err)
	}
	if res.TotalBytes != int64(2*(2<<20)) {
		t.Fatalf("TotalBytes = %d (payload must survive compression)", res.TotalBytes)
	}
}

func TestResultDerivation(t *testing.T) {
	r := NewResult(10<<20, 2*time.Second)
	if r.ThroughputMBps < 4.9 || r.ThroughputMBps > 5.1 {
		t.Fatalf("ThroughputMBps = %v, want 5", r.ThroughputMBps)
	}
	if r.String() == "" {
		t.Fatal("String empty")
	}
	if z := NewResult(100, 0); z.ThroughputMBps <= 0 {
		t.Fatalf("zero-duration result = %v", z.ThroughputMBps)
	}
}

func TestExplorerMachinePlacement(t *testing.T) {
	cfg := Config{Machines: 3}
	if m := cfg.explorerMachine(4); m != 1 {
		t.Fatalf("round robin machine = %d, want 1", m)
	}
	cfg = Config{Machines: 3, LearnerAlone: true}
	for i := 0; i < 6; i++ {
		if m := cfg.explorerMachine(i); m == 0 {
			t.Fatalf("LearnerAlone placed explorer %d on machine 0", i)
		}
	}
	cfg = Config{Machines: 1, LearnerAlone: true}
	if m := cfg.explorerMachine(0); m != 1 {
		t.Fatalf("LearnerAlone with 1 machine = %d, want 1", m)
	}
}
