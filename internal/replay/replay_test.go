package replay

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func tr(v float32) Transition {
	return Transition{Obs: []float32{v}, NextObs: []float32{v + 1}, Action: int(v), Reward: v}
}

func TestBufferAddLen(t *testing.T) {
	b := NewBuffer(3)
	if b.Len() != 0 {
		t.Fatalf("Len = %d, want 0", b.Len())
	}
	for i := 0; i < 5; i++ {
		b.Add(tr(float32(i)))
	}
	if b.Len() != 3 {
		t.Fatalf("Len = %d after overflow, want capacity 3", b.Len())
	}
}

func TestBufferEvictsOldest(t *testing.T) {
	b := NewBuffer(3)
	for i := 0; i < 5; i++ {
		b.Add(tr(float32(i)))
	}
	// 0 and 1 must be evicted.
	rng := rand.New(rand.NewSource(1))
	seen := map[float32]bool{}
	for i := 0; i < 200; i++ {
		s, err := b.Sample(rng, 1)
		if err != nil {
			t.Fatalf("Sample: %v", err)
		}
		seen[s[0].Reward] = true
	}
	if seen[0] || seen[1] {
		t.Fatal("evicted transitions were sampled")
	}
	if !seen[2] || !seen[3] || !seen[4] {
		t.Fatalf("recent transitions missing from samples: %v", seen)
	}
}

func TestBufferSampleEmpty(t *testing.T) {
	b := NewBuffer(3)
	if _, err := b.Sample(rand.New(rand.NewSource(1)), 1); err == nil {
		t.Fatal("Sample from empty buffer did not error")
	}
}

func TestBufferSampleSize(t *testing.T) {
	b := NewBuffer(10)
	b.Add(tr(1))
	s, err := b.Sample(rand.New(rand.NewSource(1)), 32)
	if err != nil {
		t.Fatalf("Sample: %v", err)
	}
	if len(s) != 32 {
		t.Fatalf("Sample returned %d, want 32 (with replacement)", len(s))
	}
}

func TestPrioritizedAddSample(t *testing.T) {
	p := NewPrioritizedBuffer(8, 0.6)
	for i := 0; i < 8; i++ {
		p.Add(tr(float32(i)))
	}
	if p.Len() != 8 {
		t.Fatalf("Len = %d, want 8", p.Len())
	}
	rng := rand.New(rand.NewSource(2))
	s, idx, w, err := p.Sample(rng, 4, 0.4)
	if err != nil {
		t.Fatalf("Sample: %v", err)
	}
	if len(s) != 4 || len(idx) != 4 || len(w) != 4 {
		t.Fatalf("Sample sizes = %d/%d/%d", len(s), len(idx), len(w))
	}
	for _, wi := range w {
		if wi <= 0 || wi > 1.0001 {
			t.Fatalf("IS weight %v outside (0,1]", wi)
		}
	}
}

func TestPrioritizedBiasTowardHighPriority(t *testing.T) {
	p := NewPrioritizedBuffer(16, 1.0)
	for i := 0; i < 16; i++ {
		p.Add(tr(float32(i)))
	}
	// Give index 5 overwhelming priority.
	prios := make([]float64, 16)
	idxs := make([]int, 16)
	for i := range prios {
		idxs[i] = i
		prios[i] = 0.001
	}
	prios[5] = 1000
	if err := p.UpdatePriorities(idxs, prios); err != nil {
		t.Fatalf("UpdatePriorities: %v", err)
	}
	rng := rand.New(rand.NewSource(3))
	hits := 0
	const draws = 500
	for i := 0; i < draws; i++ {
		_, idx, _, err := p.Sample(rng, 1, 0)
		if err != nil {
			t.Fatalf("Sample: %v", err)
		}
		if idx[0] == 5 {
			hits++
		}
	}
	if hits < draws*9/10 {
		t.Fatalf("high-priority item drawn %d/%d times; want > 90%%", hits, draws)
	}
}

func TestPrioritizedAlphaZeroIsUniform(t *testing.T) {
	p := NewPrioritizedBuffer(4, 0)
	for i := 0; i < 4; i++ {
		p.Add(tr(float32(i)))
	}
	// With alpha=0 every item has weighted priority 1 regardless of updates.
	if err := p.UpdatePriorities([]int{0}, []float64{1e6}); err != nil {
		t.Fatalf("UpdatePriorities: %v", err)
	}
	rng := rand.New(rand.NewSource(4))
	counts := make([]int, 4)
	for i := 0; i < 4000; i++ {
		_, idx, _, err := p.Sample(rng, 1, 0)
		if err != nil {
			t.Fatalf("Sample: %v", err)
		}
		counts[idx[0]]++
	}
	for i, c := range counts {
		if c < 800 || c > 1200 {
			t.Fatalf("alpha=0 sampling not uniform: counts[%d] = %d / 4000", i, c)
		}
	}
}

func TestPrioritizedUpdateErrors(t *testing.T) {
	p := NewPrioritizedBuffer(4, 0.5)
	p.Add(tr(0))
	if err := p.UpdatePriorities([]int{0, 1}, []float64{1}); err == nil {
		t.Fatal("mismatched lengths did not error")
	}
	if err := p.UpdatePriorities([]int{99}, []float64{1}); err == nil {
		t.Fatal("out-of-range index did not error")
	}
}

// TestPrioritizedCapacityBound: a non-power-of-two capacity must bound the
// live ring at the requested size, not at the pow-2-rounded tree size.
func TestPrioritizedCapacityBound(t *testing.T) {
	p := NewPrioritizedBuffer(1000, 0.6)
	for i := 0; i < 2500; i++ {
		p.Add(tr(float32(i)))
	}
	if p.Len() != 1000 {
		t.Fatalf("Len = %d after overflow, want requested capacity 1000", p.Len())
	}
	if len(p.data) != 1000 {
		t.Fatalf("data ring holds %d slots, want 1000", len(p.data))
	}
	// Everything sampled must come from the most recent 1000 adds.
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		s, _, _, err := p.Sample(rng, 1, 0.4)
		if err != nil {
			t.Fatalf("Sample: %v", err)
		}
		if s[0].Reward < 1500 {
			t.Fatalf("sampled evicted transition with reward %v", s[0].Reward)
		}
	}
}

// TestPrioritizedStaleIndexRejected: indices pointing at never-filled slots
// (>= live size) must be rejected, not give zero-value transitions priority.
func TestPrioritizedStaleIndexRejected(t *testing.T) {
	p := NewPrioritizedBuffer(8, 0.6)
	p.Add(tr(1))
	p.Add(tr(2))
	if err := p.UpdatePriorities([]int{2}, []float64{5}); err == nil {
		t.Fatal("index beyond live size did not error")
	}
	if err := p.UpdatePriorities([]int{-1}, []float64{5}); err == nil {
		t.Fatal("negative index did not error")
	}
	if err := p.UpdatePriorities([]int{1}, []float64{5}); err != nil {
		t.Fatalf("valid index errored: %v", err)
	}
}

// TestPrioritizedMaxPrioDoesNotRatchet: after a priority spike is revised
// back down, new adds must not keep inheriting the stale spike value.
func TestPrioritizedMaxPrioDoesNotRatchet(t *testing.T) {
	p := NewPrioritizedBuffer(4, 1.0)
	for i := 0; i < 4; i++ {
		p.Add(tr(float32(i)))
	}
	if err := p.UpdatePriorities([]int{0}, []float64{1000}); err != nil {
		t.Fatalf("UpdatePriorities: %v", err)
	}
	if got := p.maxPriority(); got != 1000 {
		t.Fatalf("maxPriority after spike = %v, want 1000", got)
	}
	if err := p.UpdatePriorities([]int{0}, []float64{2}); err != nil {
		t.Fatalf("UpdatePriorities: %v", err)
	}
	if got := p.maxPriority(); got > 2.0001 {
		t.Fatalf("maxPriority ratcheted: %v, want <= 2 after downward revision", got)
	}
	// A fresh add now inherits the live maximum, not the stale spike.
	p.Add(tr(9))
	_, idxs, _, err := p.Sample(rand.New(rand.NewSource(8)), 64, 0)
	if err != nil {
		t.Fatalf("Sample: %v", err)
	}
	seen := map[int]bool{}
	for _, ix := range idxs {
		seen[ix] = true
	}
	if len(seen) < 2 {
		t.Fatalf("sampling collapsed onto %v; stale maxPrio suspected", seen)
	}
}

func TestPrioritizedSampleEmpty(t *testing.T) {
	p := NewPrioritizedBuffer(4, 0.5)
	if _, _, _, err := p.Sample(rand.New(rand.NewSource(1)), 1, 0.4); err == nil {
		t.Fatal("Sample from empty prioritized buffer did not error")
	}
}

func TestPrioritizedOverwrite(t *testing.T) {
	p := NewPrioritizedBuffer(4, 0.5)
	for i := 0; i < 9; i++ { // wraps twice
		p.Add(tr(float32(i)))
	}
	if p.Len() != 4 {
		t.Fatalf("Len = %d, want 4", p.Len())
	}
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 100; i++ {
		s, _, _, err := p.Sample(rng, 1, 0.4)
		if err != nil {
			t.Fatalf("Sample: %v", err)
		}
		if s[0].Reward < 5 {
			t.Fatalf("sampled evicted transition with reward %v", s[0].Reward)
		}
	}
}

// TestPropertySumTreeConsistent: after arbitrary add/update sequences the
// root of the sum tree equals the sum of all leaf priorities.
func TestPropertySumTreeConsistent(t *testing.T) {
	f := func(ops []uint8) bool {
		p := NewPrioritizedBuffer(16, 1.0)
		for _, op := range ops {
			if op%2 == 0 {
				p.Add(tr(float32(op)))
			} else if p.Len() > 0 {
				idx := int(op) % p.Len()
				if err := p.UpdatePriorities([]int{idx}, []float64{float64(op%7) + 0.5}); err != nil {
					return false
				}
			}
		}
		var leafSum float64
		for i := 0; i < p.treeCap; i++ {
			leafSum += p.tree[p.treeCap+i]
		}
		return math.Abs(leafSum-p.total()) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkPrioritizedSample(b *testing.B) {
	p := NewPrioritizedBuffer(1<<16, 0.6)
	for i := 0; i < 1<<16; i++ {
		p.Add(tr(float32(i)))
	}
	rng := rand.New(rand.NewSource(6))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, _, err := p.Sample(rng, 32, 0.4); err != nil {
			b.Fatal(err)
		}
	}
}
