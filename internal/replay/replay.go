// Package replay implements experience-replay buffers for off-policy DRL.
//
// In XingTian the replay buffer lives inside the learner's trainer thread,
// so sampling is a local operation (the paper's Fig. 9 analysis: ~8 ms local
// sample vs ~62 ms remote sample-and-transmit in RLLib). The buffers here
// are deliberately not goroutine-safe for that reason: a single trainer owns
// them. Uniform and prioritized (sum-tree) variants are provided.
package replay

import (
	"fmt"
	"math"
	"math/rand"
)

// Transition is one (s, a, r, s', done) tuple with preprocessed feature
// observations.
type Transition struct {
	Obs     []float32
	NextObs []float32
	Action  int
	// ActionVec is the continuous action for DDPG-family algorithms.
	ActionVec []float32
	Reward    float32
	Done      bool
}

// Buffer is a uniform-sampling ring replay buffer.
type Buffer struct {
	data     []Transition
	capacity int
	next     int
}

// NewBuffer returns a buffer holding at most capacity transitions.
func NewBuffer(capacity int) *Buffer {
	if capacity <= 0 {
		capacity = 1
	}
	return &Buffer{data: make([]Transition, 0, capacity), capacity: capacity}
}

// Add appends a transition, evicting the oldest when full.
func (b *Buffer) Add(t Transition) {
	if len(b.data) < b.capacity {
		b.data = append(b.data, t)
		return
	}
	b.data[b.next] = t
	b.next = (b.next + 1) % b.capacity
}

// Len returns the number of stored transitions.
func (b *Buffer) Len() int { return len(b.data) }

// Sample draws n transitions uniformly at random (with replacement).
func (b *Buffer) Sample(rng *rand.Rand, n int) ([]Transition, error) {
	if len(b.data) == 0 {
		return nil, fmt.Errorf("replay: sample from empty buffer")
	}
	out := make([]Transition, n)
	for i := 0; i < n; i++ {
		out[i] = b.data[rng.Intn(len(b.data))]
	}
	return out, nil
}

// PrioritizedBuffer is a proportional prioritized replay buffer
// (Schaul et al., 2016) backed by a sum tree. The tree is sized to the next
// power of two for clean indexing, but the live ring is bounded by the
// requested capacity so the configured memory budget is respected exactly.
type PrioritizedBuffer struct {
	capacity int // requested capacity: bound on the live ring
	treeCap  int // capacity rounded up to a power of two: tree leaf count
	alpha    float64
	tree     []float64 // binary sum tree of alpha-weighted priorities, size 2*treeCap
	maxTree  []float64 // binary max tree of raw priorities, size 2*treeCap
	data     []Transition
	next     int
	size     int
}

// NewPrioritizedBuffer returns a prioritized buffer. alpha controls how
// strongly priorities bias sampling (0 = uniform).
func NewPrioritizedBuffer(capacity int, alpha float64) *PrioritizedBuffer {
	if capacity <= 0 {
		capacity = 1
	}
	capPow := 1
	for capPow < capacity {
		capPow *= 2
	}
	return &PrioritizedBuffer{
		capacity: capacity,
		treeCap:  capPow,
		alpha:    alpha,
		tree:     make([]float64, 2*capPow),
		maxTree:  make([]float64, 2*capPow),
		data:     make([]Transition, capacity),
	}
}

// Len returns the number of stored transitions.
func (p *PrioritizedBuffer) Len() int { return p.size }

// maxPriority returns the largest raw priority currently stored, defaulting
// to 1 for an empty buffer. Because it reads the max tree rather than a
// ratcheting high-water mark, it tracks evictions and downward updates.
func (p *PrioritizedBuffer) maxPriority() float64 {
	if m := p.maxTree[1]; m > 0 {
		return m
	}
	return 1.0
}

// Add inserts a transition with the current maximum priority so new
// experience is sampled at least once.
func (p *PrioritizedBuffer) Add(t Transition) {
	idx := p.next
	p.data[idx] = t
	p.setPriority(idx, p.maxPriority())
	p.next = (p.next + 1) % p.capacity
	if p.size < p.capacity {
		p.size++
	}
}

func (p *PrioritizedBuffer) setPriority(idx int, prio float64) {
	weighted := math.Pow(prio, p.alpha)
	node := idx + p.treeCap
	delta := weighted - p.tree[node]
	p.maxTree[node] = prio
	for node >= 1 {
		p.tree[node] += delta
		if node < p.treeCap {
			p.maxTree[node] = math.Max(p.maxTree[2*node], p.maxTree[2*node+1])
		}
		node /= 2
	}
}

// total returns the sum of all priorities.
func (p *PrioritizedBuffer) total() float64 { return p.tree[1] }

// Sample draws n transitions proportional to priority. It returns the
// transitions, their buffer indices (for UpdatePriorities), and normalized
// importance-sampling weights computed with exponent beta.
func (p *PrioritizedBuffer) Sample(rng *rand.Rand, n int, beta float64) ([]Transition, []int, []float32, error) {
	if p.size == 0 {
		return nil, nil, nil, fmt.Errorf("replay: sample from empty prioritized buffer")
	}
	out := make([]Transition, n)
	indices := make([]int, n)
	weights := make([]float32, n)
	total := p.total()
	maxW := 0.0
	for i := 0; i < n; i++ {
		target := rng.Float64() * total
		node := 1
		for node < p.treeCap {
			left := 2 * node
			if target <= p.tree[left] || p.tree[2*node+1] == 0 {
				node = left
			} else {
				target -= p.tree[left]
				node = 2*node + 1
			}
		}
		idx := node - p.treeCap
		if idx >= p.size { // numerical edge: clamp into the live region
			idx = p.size - 1
			node = idx + p.treeCap
		}
		indices[i] = idx
		out[i] = p.data[idx]
		prob := p.tree[node] / total
		w := math.Pow(float64(p.size)*prob, -beta)
		weights[i] = float32(w)
		if w > maxW {
			maxW = w
		}
	}
	if maxW > 0 {
		for i := range weights {
			weights[i] /= float32(maxW)
		}
	}
	return out, indices, weights, nil
}

// UpdatePriorities assigns new priorities (e.g. TD errors) to the sampled
// indices.
func (p *PrioritizedBuffer) UpdatePriorities(indices []int, priorities []float64) error {
	if len(indices) != len(priorities) {
		return fmt.Errorf("replay: %d indices but %d priorities", len(indices), len(priorities))
	}
	for i, idx := range indices {
		if idx < 0 || idx >= p.size {
			return fmt.Errorf("replay: index %d out of range (live size %d)", idx, p.size)
		}
		prio := priorities[i]
		if prio <= 0 {
			prio = 1e-6
		}
		p.setPriority(idx, prio)
	}
	return nil
}
