package fabric

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"xingtian/internal/faultinject"
	"xingtian/internal/message"
)

// verdictRecorder collects membership verdicts for assertion.
type verdictRecorder struct {
	mu       sync.Mutex
	verdicts []int // machine per verdict, in arrival order
}

func (r *verdictRecorder) record(machine, epoch int) {
	r.mu.Lock()
	r.verdicts = append(r.verdicts, machine)
	r.mu.Unlock()
}

func (r *verdictRecorder) snapshot() []int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]int(nil), r.verdicts...)
}

// TestMembershipVerdictOnKill: a killed machine stops renewing its lease and
// its link to the coordinator drops, so the detector condemns it — exactly
// once, and only it.
func TestMembershipVerdictOnKill(t *testing.T) {
	g, err := NewGrid(3, GridOptions{})
	if err != nil {
		t.Fatalf("NewGrid: %v", err)
	}
	defer g.Stop()

	rec := &verdictRecorder{}
	if err := g.StartMembership(0, 5*time.Millisecond, 3, rec.record); err != nil {
		t.Fatalf("StartMembership: %v", err)
	}
	// A second arm must be rejected — the plane is per-grid singleton state.
	if err := g.StartMembership(0, 5*time.Millisecond, 3, rec.record); err == nil {
		t.Fatal("second StartMembership should fail")
	}

	waitFor(t, 5*time.Second, "lease renewals to flow", func() bool {
		renewals, _ := g.MembershipStats()
		return renewals >= 3
	})

	g.Kill(1)
	if !g.Killed(1) {
		t.Fatal("Killed(1) = false after Kill")
	}
	waitFor(t, 5*time.Second, "death verdict for machine 1", func() bool {
		_, verdicts := g.MembershipStats()
		return verdicts >= 1
	})

	// The verdict fires once, names the killed machine, and never spreads
	// to the survivors: hold the plane open for several more windows.
	time.Sleep(100 * time.Millisecond)
	if got := rec.snapshot(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("verdicts = %v, want exactly [1]", got)
	}
	if _, verdicts := g.MembershipStats(); verdicts != 1 {
		t.Fatalf("MembershipStats verdicts = %d, want 1", verdicts)
	}

	// Survivor traffic still flows after the kill and the verdict.
	a, err := g.Register(0, "alive-0")
	if err != nil {
		t.Fatalf("Register: %v", err)
	}
	b, err := g.Register(2, "alive-2")
	if err != nil {
		t.Fatalf("Register: %v", err)
	}
	if err := a.Send(message.New(message.TypeDummy, "alive-0", []string{"alive-2"},
		&message.DummyPayload{Data: []byte("post-kill")})); err != nil {
		t.Fatalf("Send: %v", err)
	}
	if m, err := b.Recv(); err != nil || string(m.Body.(*message.DummyPayload).Data) != "post-kill" {
		t.Fatalf("Recv = %v, %v", m, err)
	}
}

// TestMembershipAsymmetricPartition: renewals from machine 1 to the
// coordinator are blackholed while the link itself stays connected (write
// succeeds, frame vanishes). The link-state corroboration cannot fire, so
// the verdict comes from the extended pure-silence window instead.
func TestMembershipAsymmetricPartition(t *testing.T) {
	inj := faultinject.New(faultinject.Config{Seed: 21})
	g, err := NewGrid(2, GridOptions{ConnWrapperFor: inj.WrapConnFor})
	if err != nil {
		t.Fatalf("NewGrid: %v", err)
	}
	defer g.Stop()

	rec := &verdictRecorder{}
	if err := g.StartMembership(0, 5*time.Millisecond, 3, rec.record); err != nil {
		t.Fatalf("StartMembership: %v", err)
	}
	waitFor(t, 5*time.Second, "lease renewals to flow", func() bool {
		renewals, _ := g.MembershipStats()
		return renewals >= 3
	})

	// Drop every frame machine 1 writes toward the coordinator's address
	// from now on; the reverse direction is untouched.
	part := inj.NewPartition(1, g.Node(0).Addr(), 0)

	waitFor(t, 10*time.Second, "pure-silence verdict for machine 1", func() bool {
		_, verdicts := g.MembershipStats()
		return verdicts >= 1
	})
	if got := rec.snapshot(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("verdicts = %v, want exactly [1]", got)
	}
	if part.Drops() == 0 {
		t.Fatal("partition blackholed nothing — the verdict did not come from lease silence")
	}
	part.Heal()
}

// TestCorruptFrameCountedAndRecovered: a frame corrupted on the wire fails
// the CRC on read, is counted in CorruptFrames, tears the connection into
// the redial path — and traffic keeps flowing afterwards.
func TestCorruptFrameCountedAndRecovered(t *testing.T) {
	inj := faultinject.New(faultinject.Config{Seed: 5, CorruptEveryNWrites: 50})
	g, err := NewGrid(2, GridOptions{ConnWrapper: inj.WrapConn})
	if err != nil {
		t.Fatalf("NewGrid: %v", err)
	}
	defer g.Stop()

	src, err := g.Register(0, "src")
	if err != nil {
		t.Fatalf("Register src: %v", err)
	}
	sink, err := g.Register(1, "sink")
	if err != nil {
		t.Fatalf("Register sink: %v", err)
	}
	done := make(chan struct{})
	var delivered atomic.Int64
	go func() {
		defer close(done)
		for {
			if _, err := sink.Recv(); err != nil {
				return
			}
			delivered.Add(1)
		}
	}()

	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if err := src.Send(message.New(message.TypeDummy, "src", []string{"sink"},
			&message.DummyPayload{Data: make([]byte, 256)})); err != nil {
			t.Fatalf("Send: %v", err)
		}
		if g.Node(1).Metrics().CorruptFrames > 0 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	m := g.Node(1).Metrics()
	if m.CorruptFrames == 0 {
		t.Fatal("no corrupt frame was ever detected")
	}

	// The torn conn redials and the stream recovers: further sends land.
	before := delivered.Load()
	waitFor(t, 10*time.Second, "post-corruption delivery", func() bool {
		if err := src.Send(message.New(message.TypeDummy, "src", []string{"sink"},
			&message.DummyPayload{Data: make([]byte, 256)})); err != nil {
			t.Fatalf("Send after corruption: %v", err)
		}
		return delivered.Load() > before
	})

	g.Stop()
	<-done
}
