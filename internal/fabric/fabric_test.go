package fabric

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"xingtian/internal/broker"
	"xingtian/internal/message"
	"xingtian/internal/serialize"
)

// twoMachines wires two brokers over a loopback TCP fabric:
// machine 0 hosts "learner", machine 1 hosts "explorer-0".
func twoMachines(t *testing.T) (learner, explorer *broker.Port, cleanup func()) {
	t.Helper()
	locator := StaticLocator{"learner": 0, "explorer-0": 1}

	node0, err := Listen(0, "127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen 0: %v", err)
	}
	node1, err := Listen(1, "127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen 1: %v", err)
	}
	b0 := broker.New(broker.Config{MachineID: 0, Remote: node0, Locator: locator})
	b1 := broker.New(broker.Config{MachineID: 1, Remote: node1, Locator: locator})
	node0.AttachBroker(b0)
	node1.AttachBroker(b1)
	if err := node0.Connect(1, node1.Addr()); err != nil {
		t.Fatalf("Connect 0->1: %v", err)
	}
	if err := node1.Connect(0, node0.Addr()); err != nil {
		t.Fatalf("Connect 1->0: %v", err)
	}

	learner, err = b0.Register("learner")
	if err != nil {
		t.Fatalf("Register learner: %v", err)
	}
	explorer, err = b1.Register("explorer-0")
	if err != nil {
		t.Fatalf("Register explorer: %v", err)
	}
	return learner, explorer, func() {
		b0.Stop()
		b1.Stop()
		node0.Stop()
		node1.Stop()
	}
}

func TestCrossMachineOverTCP(t *testing.T) {
	learner, explorer, cleanup := twoMachines(t)
	defer cleanup()

	payload := bytes.Repeat([]byte{42}, 100_000)
	m := message.New(message.TypeDummy, "explorer-0", []string{"learner"},
		&message.DummyPayload{Data: payload})
	if err := explorer.Send(m); err != nil {
		t.Fatalf("Send: %v", err)
	}
	got, err := learner.Recv()
	if err != nil {
		t.Fatalf("Recv: %v", err)
	}
	if !bytes.Equal(got.Body.(*message.DummyPayload).Data, payload) {
		t.Fatal("payload corrupted over TCP fabric")
	}
	if got.Header.Src != "explorer-0" {
		t.Fatalf("Src = %q", got.Header.Src)
	}
}

func TestBidirectionalTraffic(t *testing.T) {
	learner, explorer, cleanup := twoMachines(t)
	defer cleanup()

	// Rollout direction.
	if err := explorer.Send(message.New(message.TypeDummy, "explorer-0",
		[]string{"learner"}, &message.DummyPayload{Data: []byte("up")})); err != nil {
		t.Fatalf("Send up: %v", err)
	}
	if _, err := learner.Recv(); err != nil {
		t.Fatalf("Recv up: %v", err)
	}
	// Weights direction.
	w := &message.WeightsPayload{Version: 5, Data: []float32{1, 2, 3}}
	if err := learner.Send(message.New(message.TypeWeights, "learner",
		[]string{"explorer-0"}, w)); err != nil {
		t.Fatalf("Send down: %v", err)
	}
	got, err := explorer.Recv()
	if err != nil {
		t.Fatalf("Recv down: %v", err)
	}
	if got.Body.(*message.WeightsPayload).Version != 5 {
		t.Fatal("weights corrupted over fabric")
	}
}

func TestManyMessagesOrderedPerSender(t *testing.T) {
	learner, explorer, cleanup := twoMachines(t)
	defer cleanup()

	const n = 200
	go func() {
		for i := 0; i < n; i++ {
			m := message.New(message.TypeDummy, "explorer-0", []string{"learner"},
				&message.DummyPayload{Data: []byte{byte(i)}})
			m.Header.Round = int32(i)
			if err := explorer.Send(m); err != nil {
				return
			}
		}
	}()
	for i := 0; i < n; i++ {
		got, err := learner.Recv()
		if err != nil {
			t.Fatalf("Recv %d: %v", i, err)
		}
		if got.Header.Round != int32(i) {
			t.Fatalf("message %d arrived out of order (round %d)", i, got.Header.Round)
		}
	}
}

func TestCompressedBodiesCrossFabric(t *testing.T) {
	locator := StaticLocator{"a": 0, "b": 1}
	node0, err := Listen(0, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	node1, err := Listen(1, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	comp := serialize.Compressor{Threshold: 1024}
	b0 := broker.New(broker.Config{MachineID: 0, Remote: node0, Locator: locator, Compressor: comp})
	b1 := broker.New(broker.Config{MachineID: 1, Remote: node1, Locator: locator, Compressor: comp})
	node0.AttachBroker(b0)
	node1.AttachBroker(b1)
	if err := node0.Connect(1, node1.Addr()); err != nil {
		t.Fatal(err)
	}
	defer func() {
		b0.Stop()
		b1.Stop()
		node0.Stop()
		node1.Stop()
	}()
	a, err := b0.Register("a")
	if err != nil {
		t.Fatal(err)
	}
	bPort, err := b1.Register("b")
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("xingtian"), 10_000)
	if err := a.Send(message.New(message.TypeDummy, "a", []string{"b"},
		&message.DummyPayload{Data: payload})); err != nil {
		t.Fatalf("Send: %v", err)
	}
	got, err := bPort.Recv()
	if err != nil {
		t.Fatalf("Recv: %v", err)
	}
	if !got.Header.Compressed {
		t.Fatal("body not compressed")
	}
	if !bytes.Equal(got.Body.(*message.DummyPayload).Data, payload) {
		t.Fatal("compressed payload corrupted over fabric")
	}
}

func TestForwardNoRoute(t *testing.T) {
	node, err := Listen(0, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer node.Stop()
	h := &message.Header{ID: 1, Dst: []string{"x"}}
	if err := node.Forward(0, 7, h, []byte("data")); !errors.Is(err, ErrNoRoute) {
		t.Fatalf("Forward without route = %v, want ErrNoRoute", err)
	}
}

func TestStopIdempotentAndUnblocks(t *testing.T) {
	node, err := Listen(0, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		node.Stop()
		node.Stop()
		close(done)
	}()
	timer := time.NewTimer(2 * time.Second)
	defer timer.Stop()
	select {
	case <-done:
	case <-timer.C:
		t.Fatal("Stop hung")
	}
}

func TestLocator(t *testing.T) {
	l := StaticLocator{"learner": 0, "explorer-3": 2}
	if m, ok := l.Locate("explorer-3"); !ok || m != 2 {
		t.Fatalf("Locate = %d,%v", m, ok)
	}
	if _, ok := l.Locate("ghost"); ok {
		t.Fatal("Locate(ghost) = ok")
	}
}

func TestConcurrentSendersOverFabric(t *testing.T) {
	locator := StaticLocator{"learner": 0}
	for i := 0; i < 4; i++ {
		locator[fmt.Sprintf("explorer-%d", i)] = 1
	}
	node0, err := Listen(0, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	node1, err := Listen(1, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	b0 := broker.New(broker.Config{MachineID: 0, Remote: node0, Locator: locator})
	b1 := broker.New(broker.Config{MachineID: 1, Remote: node1, Locator: locator})
	node0.AttachBroker(b0)
	node1.AttachBroker(b1)
	if err := node1.Connect(0, node0.Addr()); err != nil {
		t.Fatal(err)
	}
	defer func() {
		b0.Stop()
		b1.Stop()
		node0.Stop()
		node1.Stop()
	}()
	learner, err := b0.Register("learner")
	if err != nil {
		t.Fatal(err)
	}
	const perSender = 25
	for i := 0; i < 4; i++ {
		name := fmt.Sprintf("explorer-%d", i)
		port, err := b1.Register(name)
		if err != nil {
			t.Fatal(err)
		}
		go func(port *broker.Port, name string) {
			for j := 0; j < perSender; j++ {
				_ = port.Send(message.New(message.TypeDummy, name, []string{"learner"},
					&message.DummyPayload{Data: []byte(name)}))
			}
		}(port, name)
	}
	counts := map[string]int{}
	for i := 0; i < 4*perSender; i++ {
		got, err := learner.Recv()
		if err != nil {
			t.Fatalf("Recv: %v", err)
		}
		counts[got.Header.Src]++
	}
	for name, c := range counts {
		if c != perSender {
			t.Fatalf("%s delivered %d, want %d", name, c, perSender)
		}
	}
}

// TestConcurrentForwardFrameIntegrity: Forward writes each frame as a single
// vectored write under the peer mutex, so frames from concurrent senders can
// never interleave on the shared connection. Interleaving would corrupt the
// receiver's length-prefixed stream (CorruptStreams > 0 and the read loop
// would stop short of the expected frame count).
func TestConcurrentForwardFrameIntegrity(t *testing.T) {
	node0, err := Listen(0, "127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen 0: %v", err)
	}
	node1, err := Listen(1, "127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen 1: %v", err)
	}
	defer func() {
		node0.Stop()
		node1.Stop()
	}()
	if err := node0.Connect(1, node1.Addr()); err != nil {
		t.Fatalf("Connect: %v", err)
	}

	// No broker attached on node1: every decoded frame counts as a dropped
	// inject, which doubles as a per-frame integrity check.
	const senders = 8
	const perSender = 50
	var wg sync.WaitGroup
	for i := 0; i < senders; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < perSender; j++ {
				h := &message.Header{
					ID:   uint64(i*perSender + j),
					Type: message.TypeDummy,
					Src:  fmt.Sprintf("sender-%d", i),
					Dst:  []string{"sink"},
				}
				// Vary body sizes (empty included) to stress the writev path.
				body := bytes.Repeat([]byte{byte(i)}, (j%3)*(i+1)*512)
				if err := node0.Forward(0, 1, h, body); err != nil {
					t.Errorf("Forward(%d,%d): %v", i, j, err)
					return
				}
			}
		}(i)
	}
	wg.Wait()

	const total = senders * perSender
	deadline := time.Now().Add(2 * time.Second)
	for {
		sent, recv := node0.Metrics(), node1.Metrics()
		if recv.FramesReceived == total && recv.DroppedInject == total {
			if sent.FramesSent != total {
				t.Fatalf("FramesSent = %d, want %d", sent.FramesSent, total)
			}
			if recv.CorruptStreams != 0 {
				t.Fatalf("CorruptStreams = %d after concurrent Forwards", recv.CorruptStreams)
			}
			if recv.BytesReceived != sent.BytesSent {
				t.Fatalf("BytesReceived = %d, BytesSent = %d", recv.BytesReceived, sent.BytesSent)
			}
			return
		}
		if recv.CorruptStreams != 0 {
			t.Fatalf("stream corrupted: %+v", recv)
		}
		if time.Now().After(deadline) {
			t.Fatalf("frames never arrived: sent=%+v recv=%+v", sent, recv)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestNodeMetrics: a round trip shows up in both nodes' frame and byte
// counters, with no corruption recorded.
func TestNodeMetrics(t *testing.T) {
	locator := StaticLocator{"a": 0, "b": 1}
	node0, err := Listen(0, "127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen 0: %v", err)
	}
	node1, err := Listen(1, "127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen 1: %v", err)
	}
	b0 := broker.New(broker.Config{MachineID: 0, Remote: node0, Locator: locator})
	b1 := broker.New(broker.Config{MachineID: 1, Remote: node1, Locator: locator})
	node0.AttachBroker(b0)
	node1.AttachBroker(b1)
	if err := node0.Connect(1, node1.Addr()); err != nil {
		t.Fatalf("Connect: %v", err)
	}
	defer func() {
		b0.Stop()
		b1.Stop()
		node0.Stop()
		node1.Stop()
	}()

	a, err := b0.Register("a")
	if err != nil {
		t.Fatalf("Register: %v", err)
	}
	bp, err := b1.Register("b")
	if err != nil {
		t.Fatalf("Register: %v", err)
	}
	payload := bytes.Repeat([]byte{9}, 5000)
	if err := a.Send(message.New(message.TypeDummy, "a", []string{"b"}, &message.DummyPayload{Data: payload})); err != nil {
		t.Fatalf("Send: %v", err)
	}
	if _, err := bp.Recv(); err != nil {
		t.Fatalf("Recv: %v", err)
	}

	deadline := time.Now().Add(time.Second)
	for {
		sent, recv := node0.Metrics(), node1.Metrics()
		if sent.FramesSent == 1 && recv.FramesReceived == 1 {
			if sent.BytesSent < int64(len(payload)) || recv.BytesReceived != sent.BytesSent {
				t.Fatalf("bytes sent/recv = %d/%d", sent.BytesSent, recv.BytesReceived)
			}
			if recv.CorruptStreams != 0 || recv.DroppedInject != 0 {
				t.Fatalf("unexpected corruption/drops: %+v", recv)
			}
			if recv.String() == "" {
				t.Fatal("empty Metrics.String()")
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("metrics never settled: sent=%+v recv=%+v", sent, recv)
		}
		time.Sleep(time.Millisecond)
	}
}
