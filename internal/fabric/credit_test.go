package fabric

import (
	"errors"
	"net"
	"testing"
	"time"

	"xingtian/internal/broker"
	"xingtian/internal/message"
)

// creditPair wires two nodes with flow control on node0's dialed link and a
// broker only on the sending side; the receiving side's broker is attached
// (or not) by the test.
func creditPair(t *testing.T, window int64, stallTimeout time.Duration) (n0, n1 *Node) {
	t.Helper()
	var err error
	n0, err = Listen(0, "127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen 0: %v", err)
	}
	n1, err = Listen(1, "127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen 1: %v", err)
	}
	t.Cleanup(n0.Stop)
	t.Cleanup(n1.Stop)
	n0.SetCreditPolicy(window, stallTimeout)
	if err := n0.Connect(1, n1.Addr()); err != nil {
		t.Fatalf("Connect: %v", err)
	}
	return n0, n1
}

func forwardDummy(t *testing.T, n *Node, size int) error {
	t.Helper()
	h := &message.Header{ID: 1, Type: message.TypeDummy, Src: "s", Dst: []string{"r"}}
	return n.Forward(0, 1, h, make([]byte, size))
}

// TestCreditAcksReplenishWindow sends more wire bytes than the window holds
// against a live receiver: acks must replenish credit so every frame lands,
// and both sides count the ack traffic.
func TestCreditAcksReplenishWindow(t *testing.T) {
	n0, n1 := creditPair(t, 4*1024, DefaultStallTimeout)
	locator := StaticLocator{"r": 1}
	b1 := broker.New(broker.Config{MachineID: 1, Locator: locator})
	t.Cleanup(b1.Stop)
	n1.AttachBroker(b1)
	r, err := b1.Register("r")
	if err != nil {
		t.Fatalf("Register: %v", err)
	}

	const frames = 20
	for i := 0; i < frames; i++ {
		// ~1.5 KB wire frames against a 4 KB window: the sender must wait
		// for acks at least once across 20 frames.
		if err := forwardDummy(t, n0, 1500); err != nil {
			t.Fatalf("Forward %d: %v", i, err)
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for r.Pending() < frames {
		if time.Now().After(deadline) {
			t.Fatalf("delivered %d of %d frames", r.Pending(), frames)
		}
		time.Sleep(time.Millisecond)
	}
	m0, m1 := n0.Metrics(), n1.Metrics()
	if m0.FramesSent != frames {
		t.Fatalf("FramesSent = %d, want %d", m0.FramesSent, frames)
	}
	if m1.AcksSent != frames {
		t.Fatalf("receiver AcksSent = %d, want %d", m1.AcksSent, frames)
	}
	deadline = time.Now().Add(2 * time.Second)
	for n0.Metrics().AcksReceived < frames {
		if time.Now().After(deadline) {
			t.Fatalf("sender AcksReceived = %d, want %d", n0.Metrics().AcksReceived, frames)
		}
		time.Sleep(time.Millisecond)
	}
	if n0.PeerStalled(1) {
		t.Fatal("peer still stalled after all acks arrived")
	}
}

// TestCreditOversizedFrameAdmittedAlone proves a frame larger than the whole
// window does not deadlock: with zero inflight it is admitted regardless.
func TestCreditOversizedFrameAdmittedAlone(t *testing.T) {
	n0, n1 := creditPair(t, 1024, DefaultStallTimeout)
	b1 := broker.New(broker.Config{MachineID: 1, Locator: StaticLocator{"r": 1}})
	t.Cleanup(b1.Stop)
	n1.AttachBroker(b1)
	r, err := b1.Register("r")
	if err != nil {
		t.Fatalf("Register: %v", err)
	}
	if err := forwardDummy(t, n0, 64*1024); err != nil {
		t.Fatalf("Forward oversized: %v", err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for r.Pending() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("oversized frame never delivered")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestCreditStallTimeoutTearsDownLink pins a receiver that accepts the
// connection but never reads (so never acks) and proves slow-receiver
// detection: the second Forward stalls on credit, times out, tears the link
// into the reconnect state machine, and the frame is accepted for retry
// rather than lost or blocked forever.
func TestCreditStallTimeoutTearsDownLink(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen sink: %v", err)
	}
	done := make(chan struct{})
	t.Cleanup(func() { close(done); _ = ln.Close() })
	go func() {
		// Hold every accepted conn open without reading a byte: frames sit
		// in socket buffers and no ack ever comes back.
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				<-done
				_ = conn.Close()
			}()
		}
	}()

	n0, err := Listen(0, "127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen 0: %v", err)
	}
	t.Cleanup(n0.Stop)
	n0.SetCreditPolicy(2048, 150*time.Millisecond)
	if err := n0.Connect(1, ln.Addr().String()); err != nil {
		t.Fatalf("Connect: %v", err)
	}
	// First frame fills the window (admitted alone); the second must stall,
	// time out, and come back as a transient retry acceptance.
	if err := forwardDummy(t, n0, 4096); err != nil {
		t.Fatalf("Forward 1: %v", err)
	}
	start := time.Now()
	err = forwardDummy(t, n0, 4096)
	if elapsed := time.Since(start); elapsed < 100*time.Millisecond {
		t.Fatalf("second Forward returned in %v, want a stall of ~150ms", elapsed)
	}
	if err == nil || !errors.Is(err, broker.ErrForwardRetrying) {
		t.Fatalf("stalled Forward = %v, want ErrForwardRetrying", err)
	}
	m := n0.Metrics()
	if m.CreditStalls == 0 || m.StallTimeouts == 0 {
		t.Fatalf("stalls=%d stallTimeouts=%d, want both > 0", m.CreditStalls, m.StallTimeouts)
	}
	// The link is in the redial loop's hands now; any state but "none" is
	// legitimate depending on redial timing.
	if state := n0.PeerState(1); state == "none" {
		t.Fatalf("PeerState = %q after stall teardown", state)
	}
}
