package fabric

import (
	"fmt"
	"net"
	"sync"
	"time"

	"xingtian/internal/broker"
	"xingtian/internal/serialize"
)

// GridOptions tunes a Grid before its mesh is dialed.
type GridOptions struct {
	// Compressor is handed to every broker (nil disables compression).
	Compressor serialize.Compressor
	// ConnWrapper is installed on every node before the mesh connects —
	// the fault-injection seam (faultinject.Injector.WrapConn).
	ConnWrapper func(net.Conn) net.Conn
	// ConnWrapperFor, when set, supplies a per-machine conn wrapper and
	// takes precedence over ConnWrapper — the seam direction-aware faults
	// (faultinject.Injector.WrapConnFor) use to tag each side of a link so
	// an asymmetric A→B partition can match only frames flowing A→B.
	ConnWrapperFor func(machine int) func(net.Conn) net.Conn
	// RedialAttempts / RedialBackoff override every node's redial policy
	// (zero keeps the defaults).
	RedialAttempts int
	RedialBackoff  time.Duration
	// StoreBudget bounds every machine's object store (bytes; zero means
	// unbounded). ShedQueueDepth caps destination queues by shedding the
	// oldest droppable messages. Both follow broker.Config semantics.
	StoreBudget    int64
	ShedQueueDepth int
	// RelayFanout enables depth-2 broadcast-tree routing for weight-class
	// traffic on every broker (see broker.Config.RelayFanout); zero keeps
	// star fan-out.
	RelayFanout int
	// CreditWindow enables credit-based flow control on every mesh link
	// (bytes in flight per peer; zero disables). StallTimeout bounds how
	// long a Forward waits on credit before the link is torn down (zero
	// keeps DefaultStallTimeout).
	CreditWindow int64
	StallTimeout time.Duration
}

// Grid is a real-TCP deployment of N machines on loopback: one fabric Node
// plus one broker per machine, fully meshed. It serves the same transport
// surface as broker.Cluster (Register/Unregister/Broker/Health/Stop), so a
// core.Session can run over real sockets instead of netsim — the substrate
// the chaos tests kill links under.
type Grid struct {
	nodes   []*Node
	brokers []*broker.Broker

	mu        sync.Mutex
	locations map[string]int
	killed    map[int]bool
	member    *membership
	stopped   bool
}

var _ broker.Locator = (*Grid)(nil)

// NewGrid builds and meshes an n-machine loopback deployment. Machines are
// numbered 0..n-1.
func NewGrid(n int, opts GridOptions) (*Grid, error) {
	if n < 1 {
		return nil, fmt.Errorf("fabric: grid needs at least 1 machine, got %d", n)
	}
	g := &Grid{locations: make(map[string]int), killed: make(map[int]bool)}
	fail := func(err error) (*Grid, error) {
		g.Stop()
		return nil, err
	}
	for i := 0; i < n; i++ {
		node, err := Listen(i, "127.0.0.1:0")
		if err != nil {
			return fail(fmt.Errorf("fabric grid: %w", err))
		}
		if opts.ConnWrapperFor != nil {
			node.SetConnWrapper(opts.ConnWrapperFor(i))
		} else if opts.ConnWrapper != nil {
			node.SetConnWrapper(opts.ConnWrapper)
		}
		node.SetRedialPolicy(opts.RedialAttempts, opts.RedialBackoff)
		if opts.CreditWindow > 0 {
			node.SetCreditPolicy(opts.CreditWindow, opts.StallTimeout)
		}
		b := broker.New(broker.Config{
			MachineID:      i,
			Compressor:     opts.Compressor,
			Remote:         node,
			Locator:        g,
			StoreBudget:    opts.StoreBudget,
			ShedQueueDepth: opts.ShedQueueDepth,
			RelayFanout:    opts.RelayFanout,
		})
		node.AttachBroker(b)
		g.nodes = append(g.nodes, node)
		g.brokers = append(g.brokers, b)
	}
	for i, src := range g.nodes {
		for j, dst := range g.nodes {
			if i == j {
				continue
			}
			if err := src.Connect(j, dst.Addr()); err != nil {
				return fail(fmt.Errorf("fabric grid mesh %d→%d: %w", i, j, err))
			}
		}
	}
	return g, nil
}

// Machines reports the grid size.
func (g *Grid) Machines() int { return len(g.nodes) }

// Node exposes a machine's fabric endpoint (for tests that kill links).
func (g *Grid) Node(machineID int) *Node {
	if machineID < 0 || machineID >= len(g.nodes) {
		return nil
	}
	return g.nodes[machineID]
}

// Broker returns the broker serving a machine, or nil.
func (g *Grid) Broker(machineID int) *broker.Broker {
	if machineID < 0 || machineID >= len(g.brokers) {
		return nil
	}
	return g.brokers[machineID]
}

// Register attaches a named client to a machine's broker and records its
// location for cross-machine routing.
func (g *Grid) Register(machineID int, name string) (*broker.Port, error) {
	if machineID < 0 || machineID >= len(g.brokers) {
		return nil, fmt.Errorf("fabric grid: no machine %d", machineID)
	}
	g.mu.Lock()
	if prev, dup := g.locations[name]; dup {
		g.mu.Unlock()
		return nil, fmt.Errorf("fabric grid: client %q already registered on machine %d", name, prev)
	}
	g.locations[name] = machineID
	g.mu.Unlock()
	port, err := g.brokers[machineID].Register(name)
	if err != nil {
		g.mu.Lock()
		delete(g.locations, name)
		g.mu.Unlock()
		return nil, err
	}
	return port, nil
}

// Unregister detaches a named client so its name can be registered again
// (explorer supervision re-creates crashed explorers under their original
// names). No-op for unknown names.
func (g *Grid) Unregister(machineID int, name string) {
	if machineID < 0 || machineID >= len(g.brokers) {
		return
	}
	g.mu.Lock()
	if m, ok := g.locations[name]; ok && m == machineID {
		delete(g.locations, name)
	}
	g.mu.Unlock()
	g.brokers[machineID].Unregister(name)
}

// Locate implements broker.Locator.
func (g *Grid) Locate(name string) (int, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	m, ok := g.locations[name]
	return m, ok
}

// Health snapshots every broker's channel health plus every node's wire
// counters.
func (g *Grid) Health() broker.ClusterHealth {
	var h broker.ClusterHealth
	for _, b := range g.brokers {
		h.Brokers = append(h.Brokers, b.Metrics())
	}
	for i, n := range g.nodes {
		h.Wire = append(h.Wire, n.Metrics().Wire(i))
	}
	return h
}

// Kill severs every connection of one machine and stops its broker — the
// whole-machine death primitive used by fault injection and by the core
// re-placement engine to fence a condemned machine out of the session (a
// partitioned-but-alive incarnation physically cannot drive its old
// fragments once its broker and links are gone). Idempotent. Kill renders
// no verdict itself: the coordinator's membership plane (when running)
// observes the missed leases and the downed link and declares MachineDead.
func (g *Grid) Kill(machineID int) {
	if machineID < 0 || machineID >= len(g.nodes) {
		return
	}
	g.mu.Lock()
	if g.killed[machineID] || g.stopped {
		g.mu.Unlock()
		return
	}
	g.killed[machineID] = true
	g.mu.Unlock()
	g.brokers[machineID].Stop()
	g.nodes[machineID].Stop()
}

// Killed reports whether a machine has been expelled via Kill.
func (g *Grid) Killed(machineID int) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.killed[machineID]
}

// Stop shuts down the membership plane, then brokers (draining forwarders
// onto still-open links), then the fabric nodes. Idempotent.
func (g *Grid) Stop() {
	g.mu.Lock()
	if g.stopped {
		g.mu.Unlock()
		return
	}
	g.stopped = true
	member := g.member
	g.mu.Unlock()
	if member != nil {
		member.stop()
	}
	for _, b := range g.brokers {
		b.Stop()
	}
	for _, n := range g.nodes {
		n.Stop()
	}
}
