package fabric

import (
	"fmt"
	"testing"

	"xingtian/internal/message"
)

// TestGridRelayTreeOverTCP: a weights broadcast wider than the relay fanout
// crosses the real-TCP mesh through interior relays, reaching every leaf
// with the root forwarding only ⌈√n⌉ frames.
func TestGridRelayTreeOverTCP(t *testing.T) {
	const n = 5 // machines 1..4 host explorers, machine 0 the learner
	g, err := NewGrid(n, GridOptions{RelayFanout: 2})
	if err != nil {
		t.Fatalf("NewGrid: %v", err)
	}
	defer g.Stop()

	learner, err := g.Register(0, "learner")
	if err != nil {
		t.Fatalf("Register learner: %v", err)
	}
	ports := make([]*portRecv, 0, n-1)
	dst := make([]string, 0, n-1)
	for i := 1; i < n; i++ {
		name := fmt.Sprintf("explorer-%d", i)
		p, err := g.Register(i, name)
		if err != nil {
			t.Fatalf("Register %s: %v", name, err)
		}
		ports = append(ports, &portRecv{name: name, recv: p.Recv})
		dst = append(dst, name)
	}

	w := &message.WeightsPayload{Version: 3, Data: make([]float32, 1024)}
	m := message.New(message.TypeWeights, "learner", dst, w)
	m.Header.WeightsVersion = 3
	if err := learner.Send(m); err != nil {
		t.Fatalf("Send: %v", err)
	}
	for _, p := range ports {
		got, err := p.recv()
		if err != nil {
			t.Fatalf("%s Recv: %v", p.name, err)
		}
		if got.Body.(*message.WeightsPayload).Version != 3 {
			t.Fatalf("%s got wrong weights version", p.name)
		}
		if got.Header.RelayHops != 0 {
			t.Fatalf("%s header leaked relay budget %d", p.name, got.Header.RelayHops)
		}
	}

	// 4 remote machines, fanout 2 → 2 relay groups at the root; at least one
	// spans two machines, so some interior broker relayed onward.
	root := g.Broker(0).Metrics()
	if root.BodiesForwarded != 2 {
		t.Fatalf("root forwarded %d frames, want 2 relay groups", root.BodiesForwarded)
	}
	var relayed, expired int64
	for i := 0; i < n; i++ {
		snap := g.Broker(i).Metrics()
		relayed += snap.BodiesRelayed
		expired += snap.Drops.RelayExpired
	}
	if relayed != 2 {
		t.Fatalf("relayed bodies = %d, want 2 (4 leaves via 2 relays)", relayed)
	}
	if expired != 0 {
		t.Fatalf("relayExpired = %d, want 0", expired)
	}
}

// portRecv pairs a registered name with its blocking receive.
type portRecv struct {
	name string
	recv func() (*message.Message, error)
}
