package fabric

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"xingtian/internal/broker"
	"xingtian/internal/message"
)

// Machine-level membership plane (DESIGN.md §5j).
//
// Each non-coordinator machine runs a memberd sender that renews a lease
// with the session coordinator every LeaseEvery by sending a
// ControlLeaseRenew message from its broker to the coordinator's lease sink
// — the renewals ride the ordinary broker+fabric data path, so a lease that
// keeps arriving proves the whole stack (broker, forwarder, link, remote
// broker) is alive, not just the TCP connection. The coordinator's detector
// declares a machine dead when its lease is overdue by the miss budget AND
// the fabric's per-peer connection state corroborates the loss; a machine
// whose coordinator-facing link still looks connected (an asymmetric
// partition: renewals blackholed, reverse direction healthy) is given
// partitionGraceWindows times the miss budget before the verdict fires on
// lease silence alone — silence without link corroboration is weak evidence
// (a scheduler stall or GC pause looks identical), so it needs a much
// longer budget than a confirmed link loss. Verdicts are
// epoch-fenced and fire exactly once per machine — machines never rejoin a
// session (a rejoining process gets a fresh machine slot in a future
// session), so the verdict epoch is always 1.

// DefaultLeaseEvery is the lease renewal period when the caller passes zero.
const DefaultLeaseEvery = 25 * time.Millisecond

// DefaultLeaseMisses is the consecutive-miss budget when the caller passes
// zero: a lease overdue by misses*every (with a downed link) or
// partitionGraceWindows*misses*every (link still connected) produces the
// MachineDead verdict.
const DefaultLeaseMisses = 4

// partitionGraceWindows scales the miss budget for a peer whose
// coordinator-facing link still reads connected: the verdict then fires on
// lease silence alone (the asymmetric-partition case), and pure silence
// must be sustained far longer than a corroborated link loss before it
// counts as death.
const partitionGraceWindows = 8

// memberdCoordName is the coordinator's lease-sink port name.
const memberdCoordName = "memberd-coord"

// memberdName names machine m's lease-renewal port.
func memberdName(m int) string { return fmt.Sprintf("memberd-%d", m) }

// membership is the grid's lease plane: renewal senders on every
// non-coordinator machine, plus the receiver and detector on the
// coordinator.
type membership struct {
	grid        *Grid
	coordinator int
	every       time.Duration
	misses      int
	onDead      func(machine, epoch int)

	coordPort *broker.Port
	stopCh    chan struct{}
	stopOne   sync.Once
	wg        sync.WaitGroup

	renewals atomic.Int64
	verdicts atomic.Int64

	mu       sync.Mutex
	lastSeen map[int]time.Time
	dead     map[int]int // machine → verdict epoch (fired once)
}

// StartMembership arms the lease-based membership plane: machine
// `coordinator` hosts the lease sink and the death detector, every other
// machine renews a lease each `every` (zero: DefaultLeaseEvery), and a
// machine missing `misses` consecutive renewals (zero: DefaultLeaseMisses)
// with a corroborating downed link — or partitionGraceWindows times that
// budget regardless of link state, covering asymmetric partitions — is
// declared dead: onDead
// fires exactly once per machine, on the detector goroutine, with the
// verdict epoch. Call once, before traffic that must be survivable.
func (g *Grid) StartMembership(coordinator int, every time.Duration, misses int, onDead func(machine, epoch int)) error {
	if len(g.nodes) < 2 {
		return fmt.Errorf("fabric: membership needs at least 2 machines, got %d", len(g.nodes))
	}
	if coordinator < 0 || coordinator >= len(g.nodes) {
		return fmt.Errorf("fabric: membership coordinator %d out of range", coordinator)
	}
	if every <= 0 {
		every = DefaultLeaseEvery
	}
	if misses <= 0 {
		misses = DefaultLeaseMisses
	}
	g.mu.Lock()
	if g.stopped {
		g.mu.Unlock()
		return fmt.Errorf("fabric: grid stopped")
	}
	if g.member != nil {
		g.mu.Unlock()
		return fmt.Errorf("fabric: membership already started")
	}
	g.mu.Unlock()

	m := &membership{
		grid:        g,
		coordinator: coordinator,
		every:       every,
		misses:      misses,
		onDead:      onDead,
		stopCh:      make(chan struct{}),
		lastSeen:    make(map[int]time.Time),
		dead:        make(map[int]int),
	}
	coordPort, err := g.Register(coordinator, memberdCoordName)
	if err != nil {
		return fmt.Errorf("fabric: membership sink: %w", err)
	}
	m.coordPort = coordPort
	// Every machine starts with a fresh implicit lease so the detector's
	// first checks measure real silence, not startup skew.
	now := time.Now()
	for i := range g.nodes {
		if i != coordinator {
			m.lastSeen[i] = now
		}
	}
	for i := range g.nodes {
		if i == coordinator {
			continue
		}
		port, rerr := g.Register(i, memberdName(i))
		if rerr != nil {
			m.stop()
			return fmt.Errorf("fabric: membership renewer %d: %w", i, rerr)
		}
		m.wg.Add(1)
		go m.renewLoop(i, port)
	}
	m.wg.Add(2)
	go m.recvLoop()
	go m.detectLoop()
	g.mu.Lock()
	g.member = m
	g.mu.Unlock()
	return nil
}

// StopMembership tears the lease plane down (renewers, sink, detector).
// Safe to call when membership was never started; Grid.Stop calls it too.
func (g *Grid) StopMembership() {
	g.mu.Lock()
	m := g.member
	g.mu.Unlock()
	if m != nil {
		m.stop()
	}
}

// MembershipStats reports the lease plane's counters: renewals received by
// the coordinator and machine-death verdicts fired. Zero when membership
// was never started.
func (g *Grid) MembershipStats() (renewals, verdicts int64) {
	g.mu.Lock()
	m := g.member
	g.mu.Unlock()
	if m == nil {
		return 0, 0
	}
	return m.renewals.Load(), m.verdicts.Load()
}

// renewLoop sends one lease renewal per period until the grid stops or the
// machine's broker dies (a killed machine stops renewing by construction).
func (m *membership) renewLoop(machine int, port *broker.Port) {
	defer m.wg.Done()
	tick := time.NewTicker(m.every)
	defer tick.Stop()
	for {
		select {
		case <-m.stopCh:
			return
		case <-tick.C:
		}
		msg := message.New(message.TypeControl, memberdName(machine), []string{memberdCoordName},
			&message.ControlPayload{Kind: message.ControlLeaseRenew, Machine: machine})
		if err := port.Send(msg); err != nil {
			return // broker stopped: the machine is dead or the grid is going down
		}
	}
}

// recvLoop stamps lastSeen for every renewal reaching the coordinator.
func (m *membership) recvLoop() {
	defer m.wg.Done()
	for {
		msg, err := m.coordPort.Recv()
		if err != nil {
			return // sink unregistered (stop) or coordinator broker gone
		}
		cp, ok := msg.Body.(*message.ControlPayload)
		if !ok || cp.Kind != message.ControlLeaseRenew {
			continue
		}
		m.renewals.Add(1)
		m.mu.Lock()
		m.lastSeen[cp.Machine] = time.Now()
		m.mu.Unlock()
	}
}

// detectLoop checks every lease each period and fires MachineDead verdicts.
func (m *membership) detectLoop() {
	defer m.wg.Done()
	tick := time.NewTicker(m.every)
	defer tick.Stop()
	coordNode := m.grid.nodes[m.coordinator]
	window := time.Duration(m.misses) * m.every
	for {
		select {
		case <-m.stopCh:
			return
		case <-tick.C:
		}
		now := time.Now()
		var condemned []int
		m.mu.Lock()
		for machine, last := range m.lastSeen {
			if _, gone := m.dead[machine]; gone {
				continue
			}
			silence := now.Sub(last)
			if silence <= window {
				continue
			}
			// Overdue. Corroborate with the coordinator's link state; an
			// asymmetric partition (renewals lost, reverse link healthy)
			// gets partitionGraceWindows miss budgets before the verdict
			// fires on lease silence alone.
			if coordNode.PeerState(machine) == "connected" && silence <= partitionGraceWindows*window {
				continue
			}
			m.dead[machine] = 1
			condemned = append(condemned, machine)
		}
		m.mu.Unlock()
		for _, machine := range condemned {
			m.verdicts.Add(1)
			if m.onDead != nil {
				m.onDead(machine, 1)
			}
		}
	}
}

// stop tears the plane down: loops exit via stopCh, and unregistering the
// coordinator sink unblocks the receiver.
func (m *membership) stop() {
	m.stopOne.Do(func() {
		close(m.stopCh)
		m.grid.Unregister(m.coordinator, memberdCoordName)
	})
	m.wg.Wait()
}
