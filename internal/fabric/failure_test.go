package fabric

import (
	"bytes"
	"errors"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"xingtian/internal/broker"
	"xingtian/internal/message"
)

// killNthWrite wraps connections so that one single write — the nth across
// all wrapped conns — fails and kills its connection, simulating a link
// reset at a deterministic point.
type killNthWrite struct {
	n      int64
	writes atomic.Int64
}

type killConn struct {
	net.Conn
	k *killNthWrite
}

func (k *killNthWrite) wrap(c net.Conn) net.Conn { return &killConn{Conn: c, k: k} }

func (c *killConn) Write(p []byte) (int, error) {
	if c.k.writes.Add(1) == c.k.n {
		_ = c.Conn.Close()
		return 0, errors.New("injected write failure")
	}
	return c.Conn.Write(p)
}

func waitFor(t *testing.T, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestConnectReplacesExistingPeer: re-dialing an already-connected machine
// must close and replace the old link. Before the fix the old socket and its
// read loop leaked, and Stop hung on the orphaned loop.
func TestConnectReplacesExistingPeer(t *testing.T) {
	node0, err := Listen(0, "127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen 0: %v", err)
	}
	node1, err := Listen(1, "127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen 1: %v", err)
	}
	defer node1.Stop()

	if err := node0.Connect(1, node1.Addr()); err != nil {
		t.Fatalf("Connect: %v", err)
	}
	if err := node0.Connect(1, node1.Addr()); err != nil {
		t.Fatalf("re-Connect: %v", err)
	}
	if got := node0.PeerState(1); got != "connected" {
		t.Fatalf("PeerState = %q after re-Connect", got)
	}
	h := &message.Header{ID: 1, Type: message.TypeDummy, Src: "a", Dst: []string{"b"}}
	if err := node0.Forward(0, 1, h, []byte("after-replace")); err != nil {
		t.Fatalf("Forward on replacement conn: %v", err)
	}
	waitFor(t, 2*time.Second, "frame on replacement conn", func() bool {
		return node1.Metrics().FramesReceived == 1
	})

	// With the orphaned read loop gone, Stop must return promptly even
	// while the peer node is still up.
	done := make(chan struct{})
	go func() {
		node0.Stop()
		close(done)
	}()
	timer := time.NewTimer(2 * time.Second)
	defer timer.Stop()
	select {
	case <-done:
	case <-timer.C:
		t.Fatal("Stop hung on the replaced connection's read loop")
	}
}

// TestWriteFailureRetriesAfterReconnect: a frame whose write fails is queued,
// the peer redials, and the frame is delivered from the retry queue — the
// Forward call reports the transient with broker.ErrForwardRetrying.
func TestWriteFailureRetriesAfterReconnect(t *testing.T) {
	node0, err := Listen(0, "127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen 0: %v", err)
	}
	node1, err := Listen(1, "127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen 1: %v", err)
	}
	defer func() {
		node0.Stop()
		node1.Stop()
	}()

	// Frame 1 = writes 1-3 (header, body, CRC). Write 4 — frame 2's header —
	// dies.
	killer := &killNthWrite{n: 4}
	node0.SetConnWrapper(killer.wrap)
	node0.SetRedialPolicy(20, time.Millisecond)
	if err := node0.Connect(1, node1.Addr()); err != nil {
		t.Fatalf("Connect: %v", err)
	}

	h := &message.Header{ID: 1, Type: message.TypeDummy, Src: "a", Dst: []string{"b"}}
	if err := node0.Forward(0, 1, h, []byte("frame-1")); err != nil {
		t.Fatalf("Forward 1: %v", err)
	}
	h2 := &message.Header{ID: 2, Type: message.TypeDummy, Src: "a", Dst: []string{"b"}}
	err = node0.Forward(0, 1, h2, []byte("frame-2"))
	if !errors.Is(err, broker.ErrForwardRetrying) {
		t.Fatalf("Forward 2 = %v, want ErrForwardRetrying", err)
	}

	waitFor(t, 5*time.Second, "retried frame to arrive", func() bool {
		return node1.Metrics().FramesReceived == 2
	})
	m := node0.Metrics()
	if m.Reconnects != 1 {
		t.Fatalf("Reconnects = %d, want 1", m.Reconnects)
	}
	if m.RetriedFrames != 1 {
		t.Fatalf("RetriedFrames = %d, want 1", m.RetriedFrames)
	}
	if m.DroppedRetry != 0 {
		t.Fatalf("DroppedRetry = %d, want 0", m.DroppedRetry)
	}
	if got := node0.PeerState(1); got != "connected" {
		t.Fatalf("PeerState = %q after reconnect", got)
	}
}

// TestPeerDownDropTaxonomy: severing the fabric link mid-run lands broker
// drops in ForwardError (transient retries are counted separately and never
// as StoreMiss) with zero leaked store refs — the drop path still releases
// every reference it owns.
func TestPeerDownDropTaxonomy(t *testing.T) {
	locator := StaticLocator{"a": 0, "b": 1}
	node0, err := Listen(0, "127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen 0: %v", err)
	}
	node1, err := Listen(1, "127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen 1: %v", err)
	}
	node0.SetRedialPolicy(2, time.Millisecond)
	b0 := broker.New(broker.Config{MachineID: 0, Remote: node0, Locator: locator})
	b1 := broker.New(broker.Config{MachineID: 1, Remote: node1, Locator: locator})
	node0.AttachBroker(b0)
	node1.AttachBroker(b1)
	if err := node0.Connect(1, node1.Addr()); err != nil {
		t.Fatalf("Connect: %v", err)
	}
	defer func() {
		b0.Stop()
		b1.Stop()
		node0.Stop()
		node1.Stop()
	}()

	a, err := b0.Register("a")
	if err != nil {
		t.Fatalf("Register a: %v", err)
	}
	bp, err := b1.Register("b")
	if err != nil {
		t.Fatalf("Register b: %v", err)
	}

	// Prove the link works, then sever it: node1 goes away entirely, so the
	// redial budget burns out and the peer goes down.
	if err := a.Send(message.New(message.TypeDummy, "a", []string{"b"},
		&message.DummyPayload{Data: []byte("pre-failure")})); err != nil {
		t.Fatalf("Send: %v", err)
	}
	if _, err := bp.Recv(); err != nil {
		t.Fatalf("Recv: %v", err)
	}
	node1.Stop()

	// Keep sending until the broker records a permanent forward drop. Early
	// sends may land in kernel buffers or the retry queue; once the peer is
	// down every transfer is a ForwardError drop.
	payload := bytes.Repeat([]byte{7}, 2048)
	waitFor(t, 10*time.Second, "a ForwardError drop", func() bool {
		_ = a.Send(message.New(message.TypeDummy, "a", []string{"b"},
			&message.DummyPayload{Data: payload}))
		return b0.Metrics().Drops.ForwardError >= 1
	})

	m := b0.Metrics()
	if m.Drops.StoreMiss != 0 {
		t.Fatalf("StoreMiss = %d, want 0 (drops must not misclassify)", m.Drops.StoreMiss)
	}
	if got := node0.PeerState(1); got != "down" {
		t.Fatalf("PeerState = %q, want down", got)
	}
	if node0.Metrics().RedialFailures == 0 {
		t.Fatal("RedialFailures = 0, want > 0 after severing the link")
	}

	// Every dropped transfer released its ref: the store must drain clean.
	b0.Stop()
	if err := b0.VerifyDrained(); err != nil {
		t.Fatalf("VerifyDrained after forward drops: %v", err)
	}
}

// TestGridSessionSurface: the Grid serves the full transport surface —
// register, cross-machine delivery, unregister-then-reregister, health with
// wire metrics — and stops idempotently.
func TestGridSessionSurface(t *testing.T) {
	g, err := NewGrid(2, GridOptions{})
	if err != nil {
		t.Fatalf("NewGrid: %v", err)
	}
	defer g.Stop()

	a, err := g.Register(0, "a")
	if err != nil {
		t.Fatalf("Register a: %v", err)
	}
	bp, err := g.Register(1, "b")
	if err != nil {
		t.Fatalf("Register b: %v", err)
	}
	if err := a.Send(message.New(message.TypeDummy, "a", []string{"b"},
		&message.DummyPayload{Data: []byte("cross")})); err != nil {
		t.Fatalf("Send: %v", err)
	}
	if m, err := bp.Recv(); err != nil || string(m.Body.(*message.DummyPayload).Data) != "cross" {
		t.Fatalf("Recv = %v, %v", m, err)
	}

	// A name can be re-registered after Unregister (supervision relies on it).
	g.Unregister(1, "b")
	if _, err := g.Register(1, "b"); err != nil {
		t.Fatalf("re-Register after Unregister: %v", err)
	}

	h := g.Health()
	if len(h.Brokers) != 2 || len(h.Wire) != 2 {
		t.Fatalf("Health: %d brokers, %d wire entries, want 2/2", len(h.Brokers), len(h.Wire))
	}
	if h.Wire[0].FramesSent == 0 {
		t.Fatalf("wire metrics empty: %+v", h.Wire[0])
	}

	g.Stop()
	g.Stop() // idempotent
	for m := 0; m < 2; m++ {
		if err := g.Broker(m).VerifyDrained(); err != nil {
			t.Fatalf("machine %d not drained: %v", m, err)
		}
	}
}
