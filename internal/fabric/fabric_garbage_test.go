package fabric

import (
	"encoding/binary"
	"net"
	"testing"
	"time"

	"xingtian/internal/broker"
)

// TestGarbageStreamDoesNotPanic feeds a fabric listener corrupt frames:
// the connection must be dropped cleanly without panicking or wedging the
// node.
func TestGarbageStreamDoesNotPanic(t *testing.T) {
	node, err := Listen(0, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer node.Stop()
	b := broker.New(broker.Config{MachineID: 0})
	defer b.Stop()
	node.AttachBroker(b)

	cases := [][]byte{
		{0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0, 0},              // frame length > MaxFrameSize
		{0, 0, 0, 8, 0, 0, 0, 16},                         // header length > frame length
		{0, 0, 0, 12, 0, 0, 0, 4, 1, 2, 3, 4, 9, 9, 9, 9}, // undecodable gob header
	}
	for i, payload := range cases {
		conn, err := net.Dial("tcp", node.Addr())
		if err != nil {
			t.Fatalf("case %d dial: %v", i, err)
		}
		if _, err := conn.Write(payload); err != nil {
			t.Fatalf("case %d write: %v", i, err)
		}
		// The node should close the connection; reads will hit EOF.
		_ = conn.SetReadDeadline(time.Now().Add(2 * time.Second))
		buf := make([]byte, 1)
		if _, err := conn.Read(buf); err == nil {
			t.Fatalf("case %d: node did not close corrupt connection", i)
		}
		_ = conn.Close()
	}
	// The node must still accept healthy traffic afterwards.
	conn, err := net.Dial("tcp", node.Addr())
	if err != nil {
		t.Fatalf("post-garbage dial: %v", err)
	}
	defer func() { _ = conn.Close() }()
	// A zero-destination valid frame: harmless but parseable is hard to
	// hand-craft with gob; instead just confirm the listener still accepts.
	if err := conn.SetWriteDeadline(time.Now().Add(time.Second)); err != nil {
		t.Fatal(err)
	}
	hdr := make([]byte, 8)
	binary.BigEndian.PutUint32(hdr[0:], 4)
	binary.BigEndian.PutUint32(hdr[4:], 0)
	if _, err := conn.Write(hdr); err != nil {
		t.Fatalf("post-garbage write: %v", err)
	}
}

// TestOversizeFrameRejected checks the MaxFrameSize guard.
func TestOversizeFrameRejected(t *testing.T) {
	node, err := Listen(0, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer node.Stop()
	conn, err := net.Dial("tcp", node.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = conn.Close() }()
	frame := make([]byte, 8)
	binary.BigEndian.PutUint32(frame[0:], uint32(MaxFrameSize)+1)
	binary.BigEndian.PutUint32(frame[4:], 16)
	if _, err := conn.Write(frame); err != nil {
		t.Fatal(err)
	}
	_ = conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("oversize frame did not close the connection")
	}
}
