// Package fabric implements the real inter-machine data fabric of Fig. 2(b)
// over TCP: brokers on different machines exchange framed messages through
// persistent connections. netsim models this fabric for experiments; this
// package is the production code path, exercised over loopback in the
// integration tests and by examples/distributed.
//
// Wire format per message: a 4-byte big-endian frame length, a 4-byte
// big-endian header length, the gob-encoded header, the framed body bytes,
// and a 4-byte big-endian CRC32C trailer over header+body. The receiver
// verifies the checksum before the header is decoded: a corrupt frame never
// reaches serialize — the connection is torn down into the redial path and
// the event is counted as Metrics.CorruptFrames.
//
// # Credit-based flow control
//
// With SetCreditPolicy each dialed link carries a window of un-acked wire
// bytes: the receiving side answers every data frame with an 8-byte ack
// frame (bit 31 of the length word set, low bits carrying the acked bytes),
// and a Forward that would overrun the window waits for acks. A sender can
// therefore never push more bytes in flight than the receiver has granted —
// a slow receiver backpressures the sender's forwarder queue instead of
// filling kernel socket buffers without bound. A wait that outlasts the
// stall timeout declares the receiver stuck, tears the link down into the
// reconnect state machine (slow-receiver detection, visible as
// Metrics.StallTimeouts and the per-peer PeerStalled state), and lets the
// frame retry after the redial.
//
// # Fault tolerance
//
// Each dialed peer runs a small connection state machine: connected →
// backing-off → down. A write or read failure moves the peer to backing-off
// and starts a redial loop with exponential backoff; frames that fail
// mid-flight (and frames forwarded while backing off) are copied into a
// small bounded per-peer retry queue and written once after the reconnect,
// so a transient link loss retries rather than silently drops. When the
// redial budget is exhausted the peer goes down permanently: queued frames
// are dropped, and further Forwards fail fast. Transient accepts are
// reported to the broker as ErrForwardRetrying so its drop taxonomy
// distinguishes retried transfers from permanent drops.
//
// Delivery semantics across a reconnect are at-most-once: a frame accepted
// for retry is written exactly once after the redial succeeds, but frames
// already on the wire when the link died may be lost, and the receiver never
// sees duplicates.
package fabric

import (
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"xingtian/internal/broker"
	"xingtian/internal/message"
	"xingtian/internal/serialize"
)

// MaxFrameSize bounds a single fabric frame (1 GiB) to reject corrupt
// length prefixes before allocating.
const MaxFrameSize = 1 << 30

// ackFlag marks an 8-byte credit-ack frame: data frames are bounded by
// MaxFrameSize (1 GiB), so bit 31 of the length word is never set by a
// legitimate data frame and distinguishes the two on the wire. The low 31
// bits of an ack's first word carry the acknowledged wire bytes; the second
// word is zero (acks have no header or body).
const ackFlag = 1 << 31

// crcLen is the size of the CRC32C frame trailer covering header+body.
const crcLen = 4

// castagnoliTable is the CRC32C polynomial table (hardware-accelerated on
// amd64/arm64) used for the frame-integrity trailer.
var castagnoliTable = crc32.MakeTable(crc32.Castagnoli)

// DefaultStallTimeout bounds how long a Forward waits for the receiver to
// replenish the credit window before the link is declared stalled and torn
// down into the reconnect state machine.
const DefaultStallTimeout = 2 * time.Second

// ErrNoRoute is returned when forwarding to a machine with no connection.
var ErrNoRoute = errors.New("fabric: no route to machine")

// ErrPeerDown is returned when forwarding to a peer whose redial budget ran
// out: the link is permanently down until Connect is called again.
var ErrPeerDown = errors.New("fabric: peer down")

// DefaultRedialAttempts bounds the redial loop per outage.
const DefaultRedialAttempts = 8

// DefaultRedialBackoff is the first redial delay; it doubles per attempt.
const DefaultRedialBackoff = 25 * time.Millisecond

// retryQueueCap bounds the per-peer retry queue. The queue only covers
// frames caught mid-outage, not general buffering — flow control upstream
// (explorer credits) keeps in-flight counts small, so a short queue is
// enough and a full one degrades to a counted drop instead of unbounded
// memory growth.
const retryQueueCap = 32

// wireHeader is the gob-encoded subset of message.Header that crosses the
// wire (object IDs are machine-local and re-assigned on arrival).
type wireHeader struct {
	ID             uint64
	Type           uint8
	Src            string
	Dst            []string
	BodySize       int
	Compressed     bool
	CreatedNanos   int64
	WeightsVersion int64
	BaseVersion    int64
	RelayHops      uint8
	Round          int32
	SrcMachine     int
}

// Node is one machine's endpoint in the fabric.
type Node struct {
	machineID int
	ln        net.Listener
	done      chan struct{}

	connWrap       func(net.Conn) net.Conn
	redialAttempts int
	redialBackoff  time.Duration
	creditWindow   int64
	stallTimeout   time.Duration

	mu       sync.Mutex
	peers    map[int]*peerConn
	accepted map[net.Conn]struct{}
	broker   *broker.Broker
	closed   bool

	framesSent     atomic.Int64
	framesReceived atomic.Int64
	bytesSent      atomic.Int64
	bytesReceived  atomic.Int64
	corruptStreams atomic.Int64
	corruptFrames  atomic.Int64
	droppedInject  atomic.Int64
	reconnects     atomic.Int64
	redialFailures atomic.Int64
	retriedFrames  atomic.Int64
	droppedRetry   atomic.Int64
	creditStalls   atomic.Int64
	stallTimeouts  atomic.Int64
	acksSent       atomic.Int64
	acksReceived   atomic.Int64

	wg sync.WaitGroup
}

// Metrics is a snapshot of one fabric node's wire-level health counters.
type Metrics struct {
	// FramesSent / FramesReceived count complete frames written to and
	// decoded from peer connections.
	FramesSent     int64
	FramesReceived int64
	// BytesSent / BytesReceived count frame bytes on the wire (prefix +
	// header + body).
	BytesSent     int64
	BytesReceived int64
	// CorruptStreams counts connections torn down on malformed frames
	// (bad length prefix or undecodable header).
	CorruptStreams int64
	// CorruptFrames counts connections torn down on a CRC32C trailer
	// mismatch: structurally plausible frames whose header+body bytes were
	// damaged in flight, caught before the payload reached serialize.
	CorruptFrames int64
	// DroppedInject counts frames received before a broker was attached.
	DroppedInject int64
	// Reconnects counts successful redials of a lost peer connection.
	Reconnects int64
	// RedialFailures counts failed redial attempts while backing off.
	RedialFailures int64
	// RetriedFrames counts frames delivered from the retry queue after a
	// reconnect.
	RetriedFrames int64
	// DroppedRetry counts retry-queued frames abandoned when a peer's
	// redial budget ran out.
	DroppedRetry int64
	// CreditStalls counts Forwards that had to wait for the receiver to
	// replenish the peer link's credit window.
	CreditStalls int64
	// StallTimeouts counts peer connections torn down because a credit
	// stall outlasted the stall timeout (slow-receiver detection).
	StallTimeouts int64
	// AcksSent / AcksReceived count 8-byte credit-ack frames written for
	// received data frames and decoded from peers.
	AcksSent     int64
	AcksReceived int64
	// StalledPeers is a gauge: peers currently waiting on credit.
	StalledPeers int
}

// Metrics snapshots the node's wire counters.
func (n *Node) Metrics() Metrics {
	m := Metrics{
		FramesSent:     n.framesSent.Load(),
		FramesReceived: n.framesReceived.Load(),
		BytesSent:      n.bytesSent.Load(),
		BytesReceived:  n.bytesReceived.Load(),
		CorruptStreams: n.corruptStreams.Load(),
		CorruptFrames:  n.corruptFrames.Load(),
		DroppedInject:  n.droppedInject.Load(),
		Reconnects:     n.reconnects.Load(),
		RedialFailures: n.redialFailures.Load(),
		RetriedFrames:  n.retriedFrames.Load(),
		DroppedRetry:   n.droppedRetry.Load(),
		CreditStalls:   n.creditStalls.Load(),
		StallTimeouts:  n.stallTimeouts.Load(),
		AcksSent:       n.acksSent.Load(),
		AcksReceived:   n.acksReceived.Load(),
	}
	n.mu.Lock()
	peers := make([]*peerConn, 0, len(n.peers))
	for _, p := range n.peers {
		peers = append(peers, p)
	}
	n.mu.Unlock()
	for _, p := range peers {
		p.mu.Lock()
		if p.stalled {
			m.StalledPeers++
		}
		p.mu.Unlock()
	}
	return m
}

// Wire converts the snapshot into the transport-neutral shape ClusterHealth
// carries.
func (m Metrics) Wire(machineID int) broker.WireMetrics {
	return broker.WireMetrics{
		MachineID:      machineID,
		FramesSent:     m.FramesSent,
		FramesReceived: m.FramesReceived,
		BytesSent:      m.BytesSent,
		BytesReceived:  m.BytesReceived,
		CorruptStreams: m.CorruptStreams,
		CorruptFrames:  m.CorruptFrames,
		Reconnects:     m.Reconnects,
		RedialFailures: m.RedialFailures,
		RetriedFrames:  m.RetriedFrames,
		DroppedRetry:   m.DroppedRetry,
		CreditStalls:   m.CreditStalls,
		StallTimeouts:  m.StallTimeouts,
		AcksSent:       m.AcksSent,
		AcksReceived:   m.AcksReceived,
		DroppedInject:  m.DroppedInject,
		StalledPeers:   m.StalledPeers,
	}
}

// String renders the snapshot human-readably.
func (m Metrics) String() string {
	s := fmt.Sprintf("fabric frames: sent=%d recv=%d bytes: sent=%d recv=%d corrupt=%d corruptFrames=%d droppedInject=%d reconnects=%d redialFail=%d retried=%d droppedRetry=%d",
		m.FramesSent, m.FramesReceived, m.BytesSent, m.BytesReceived, m.CorruptStreams,
		m.CorruptFrames, m.DroppedInject, m.Reconnects, m.RedialFailures, m.RetriedFrames, m.DroppedRetry)
	if m.AcksSent > 0 || m.AcksReceived > 0 || m.CreditStalls > 0 {
		s += fmt.Sprintf(" credits: stalls=%d stallTimeouts=%d acksSent=%d acksRecv=%d stalledPeers=%d",
			m.CreditStalls, m.StallTimeouts, m.AcksSent, m.AcksReceived, m.StalledPeers)
	}
	return s
}

var _ broker.Remote = (*Node)(nil)

// connState is one peer link's lifecycle position.
type connState int

const (
	// stateConnected: the peer conn is live; Forward writes directly.
	stateConnected connState = iota
	// stateBackingOff: the conn was lost; a redial loop is (or is about to
	// be) running and Forwards queue into the bounded retry queue.
	stateBackingOff
	// stateDown: the redial budget ran out; Forwards fail fast until a new
	// Connect replaces the peer.
	stateDown
)

// peerConn is one dialed peer link and its reconnect state. All fields are
// guarded by mu; conn is nil except in stateConnected. creditCh is a
// capacity-1 wakeup channel: grantCredit sends into it without blocking and
// a stalled Forward re-checks the window after each wakeup, so a stale
// token costs one spurious loop iteration, never a lost grant.
type peerConn struct {
	machine int
	addr    string

	mu        sync.Mutex
	conn      net.Conn
	state     connState
	retry     [][]byte // complete wire frames awaiting reconnect
	redialing bool

	window   int64 // credit window in wire bytes; 0 disables flow control
	inflight int64 // bytes written but not yet acked by the receiver
	stalled  bool  // a Forward is currently waiting on credit
	creditCh chan struct{}
}

// Listen starts a fabric node accepting peer connections on addr
// (e.g. "127.0.0.1:0").
func Listen(machineID int, addr string) (*Node, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("fabric listen: %w", err)
	}
	n := &Node{
		machineID:      machineID,
		ln:             ln,
		done:           make(chan struct{}),
		redialAttempts: DefaultRedialAttempts,
		redialBackoff:  DefaultRedialBackoff,
		stallTimeout:   DefaultStallTimeout,
		peers:          make(map[int]*peerConn),
		accepted:       make(map[net.Conn]struct{}),
	}
	n.wg.Add(1)
	go n.acceptLoop()
	return n, nil
}

// Addr returns the node's listening address.
func (n *Node) Addr() string { return n.ln.Addr().String() }

// SetConnWrapper installs a wrapper applied to every dialed and accepted
// connection — the fault-injection seam (faultinject.Injector.WrapConn).
// Call before Connect and before peers dial in.
func (n *Node) SetConnWrapper(w func(net.Conn) net.Conn) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.connWrap = w
}

// SetRedialPolicy overrides the per-outage redial budget and initial
// backoff (the backoff doubles per attempt). Call before Connect.
func (n *Node) SetRedialPolicy(attempts int, backoff time.Duration) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if attempts > 0 {
		n.redialAttempts = attempts
	}
	if backoff > 0 {
		n.redialBackoff = backoff
	}
}

// SetCreditPolicy enables credit-based flow control on links dialed after
// the call: each peer link may carry at most window un-acked wire bytes;
// the receiver replenishes the window with an 8-byte ack frame per received
// data frame. A Forward that cannot reserve credit waits; if the wait
// outlasts stallTimeout the link is declared stalled and torn down into the
// reconnect state machine (the frame retries after the redial). window 0
// (the default) disables flow control; stallTimeout <= 0 keeps the current
// timeout. Call before Connect.
func (n *Node) SetCreditPolicy(window int64, stallTimeout time.Duration) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if window >= 0 {
		n.creditWindow = window
	}
	if stallTimeout > 0 {
		n.stallTimeout = stallTimeout
	}
}

// AttachBroker sets the broker that receives injected remote messages.
// It must be called before traffic arrives.
func (n *Node) AttachBroker(b *broker.Broker) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.broker = b
}

// wrap applies the configured conn wrapper, if any.
func (n *Node) wrap(conn net.Conn) net.Conn {
	n.mu.Lock()
	w := n.connWrap
	n.mu.Unlock()
	if w != nil {
		return w(conn)
	}
	return conn
}

func (n *Node) acceptLoop() {
	defer n.wg.Done()
	for {
		conn, err := n.ln.Accept()
		if err != nil {
			return // listener closed
		}
		conn = n.wrap(conn)
		n.mu.Lock()
		if n.closed {
			n.mu.Unlock()
			_ = conn.Close()
			return
		}
		n.accepted[conn] = struct{}{}
		n.mu.Unlock()
		n.wg.Add(1)
		go func() {
			defer n.wg.Done()
			n.readLoop(conn, nil)
			n.mu.Lock()
			delete(n.accepted, conn)
			n.mu.Unlock()
		}()
	}
}

// Connect dials a peer machine's fabric node. The connection is used for
// outbound forwarding; the peer learns our machine ID from message headers.
// Re-connecting an already-connected machine ID closes and replaces the old
// link (and clears any down state), so Connect doubles as a manual repair.
func (n *Node) Connect(peerMachine int, addr string) error {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return fmt.Errorf("fabric connect to machine %d: %w", peerMachine, err)
	}
	conn = n.wrap(conn)
	p := &peerConn{
		machine: peerMachine, addr: addr, conn: conn, state: stateConnected,
		creditCh: make(chan struct{}, 1),
	}
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		_ = conn.Close()
		return errors.New("fabric: node closed")
	}
	p.window = n.creditWindow
	old := n.peers[peerMachine]
	n.peers[peerMachine] = p
	n.mu.Unlock()
	if old != nil {
		// Close-and-replace: dropping the old peerConn on the floor would
		// leak its socket and leave its readLoop blocked forever.
		old.mu.Lock()
		if old.conn != nil {
			_ = old.conn.Close()
			old.conn = nil
		}
		dropped := len(old.retry)
		old.retry = nil
		old.state = stateDown
		old.mu.Unlock()
		n.droppedRetry.Add(int64(dropped))
	}
	// The dialed connection is bidirectional: read replies too.
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		n.readLoop(conn, p)
	}()
	return nil
}

// Forward implements broker.Remote: it frames the header and body and
// writes them to the peer connection. On a live peer the frame goes out as
// one vectored write; on a backing-off peer the frame is copied into the
// bounded retry queue and the call reports broker.ErrForwardRetrying
// (transient); on a down peer it fails fast (permanent).
func (n *Node) Forward(srcMachine, dstMachine int, h *message.Header, framed []byte) error {
	n.mu.Lock()
	peer := n.peers[dstMachine]
	n.mu.Unlock()
	if peer == nil {
		return fmt.Errorf("%w %d", ErrNoRoute, dstMachine)
	}
	wh := wireHeader{
		ID:             h.ID,
		Type:           uint8(h.Type),
		Src:            h.Src,
		Dst:            h.Dst,
		BodySize:       h.BodySize,
		Compressed:     h.Compressed,
		CreatedNanos:   h.CreatedNanos,
		WeightsVersion: h.WeightsVersion,
		BaseVersion:    h.BaseVersion,
		RelayHops:      h.RelayHops,
		Round:          h.Round,
		SrcMachine:     srcMachine,
	}
	// Pooled frame-prefix+header buffer: the first 8 bytes are the length
	// prefix, the gob header is appended behind it, and the whole thing is
	// returned to the serialize pool once the frame is on the wire.
	hdr := serialize.GetBuf(128)
	hdr = hdr[:8]
	w := bytesBuffer{b: hdr}
	if err := gob.NewEncoder(&w).Encode(&wh); err != nil {
		serialize.FreeBuf(hdr)
		return fmt.Errorf("fabric encode header: %w", err)
	}
	hdr = w.b
	hdrLen := len(hdr) - 8
	// CRC32C trailer over header+body: the receiver verifies it before the
	// gob decode, so a damaged frame tears the connection down instead of
	// feeding garbage to serialize.
	crc := crc32.Update(0, castagnoliTable, hdr[8:])
	crc = crc32.Update(crc, castagnoliTable, framed)
	var trailer [crcLen]byte
	binary.BigEndian.PutUint32(trailer[:], crc)
	frameLen := 4 + hdrLen + len(framed) + crcLen
	binary.BigEndian.PutUint32(hdr[0:], uint32(frameLen))
	binary.BigEndian.PutUint32(hdr[4:], uint32(hdrLen))

	// One vectored write per frame: prefix, header, body, and checksum go
	// out in a single writev, so a frame is never interleaved with another
	// sender's bytes and the connection mutex is held for one syscall.
	total := int64(len(hdr) + len(framed) + crcLen)
	if err := n.waitCredit(peer, total); err != nil {
		serialize.FreeBuf(hdr)
		return err
	}
	bufs := net.Buffers{hdr, framed, trailer[:]}
	peer.mu.Lock()
	switch peer.state {
	case stateConnected:
		//lint:ignore lockhold frame writes must serialize per connection; peer.mu exists to guard exactly this write
		_, werr := bufs.WriteTo(peer.conn)
		if werr == nil {
			peer.mu.Unlock()
			serialize.FreeBuf(hdr)
			n.framesSent.Add(1)
			n.bytesSent.Add(total)
			return nil
		}
		// The write failed mid-flight: the link is gone. Queue this frame
		// for post-reconnect retry (it may have been partially written; the
		// receiver's framing discards a truncated tail when the conn dies),
		// tear the conn down, and start the redial loop.
		queued := peer.enqueueRetryLocked(hdr, framed, trailer[:])
		_ = peer.conn.Close()
		peer.conn = nil
		peer.state = stateBackingOff
		spawn := !peer.redialing
		peer.redialing = true
		peer.mu.Unlock()
		serialize.FreeBuf(hdr)
		if spawn {
			n.spawnRedial(peer)
		}
		if queued {
			return fmt.Errorf("fabric write to machine %d failed (%v): %w",
				dstMachine, werr, broker.ErrForwardRetrying)
		}
		n.droppedRetry.Add(1)
		return fmt.Errorf("fabric write (retry queue full): %w", werr)
	case stateBackingOff:
		queued := peer.enqueueRetryLocked(hdr, framed, trailer[:])
		peer.mu.Unlock()
		serialize.FreeBuf(hdr)
		if queued {
			return fmt.Errorf("fabric: machine %d reconnecting: %w",
				dstMachine, broker.ErrForwardRetrying)
		}
		n.droppedRetry.Add(1)
		return fmt.Errorf("fabric: machine %d reconnecting, retry queue full", dstMachine)
	default: // stateDown
		peer.mu.Unlock()
		serialize.FreeBuf(hdr)
		return fmt.Errorf("%w: machine %d", ErrPeerDown, dstMachine)
	}
}

// waitCredit reserves need wire bytes of the peer's credit window before a
// Forward write, blocking while the window is exhausted. The wait happens
// with no lock held (the queue.GetTimeout pattern): check-and-reserve under
// p.mu, then sleep on the capacity-1 credit channel. A frame larger than
// the whole window is admitted alone (inflight == 0) so oversized weights
// broadcasts cannot deadlock the link. When the wait outlasts the stall
// timeout the link is torn down into the reconnect state machine and the
// caller proceeds — its state switch then queues the frame for retry.
func (n *Node) waitCredit(p *peerConn, need int64) error {
	for {
		p.mu.Lock()
		if p.window <= 0 || p.state != stateConnected {
			// Flow control disabled, or the state switch below handles the
			// non-connected path (retry queue / fail fast).
			p.mu.Unlock()
			return nil
		}
		if p.inflight == 0 || p.inflight+need <= p.window {
			p.inflight += need
			p.stalled = false
			p.mu.Unlock()
			return nil
		}
		p.stalled = true
		p.mu.Unlock()
		n.creditStalls.Add(1)
		timer := time.NewTimer(n.stallTimeout)
		select {
		case <-p.creditCh:
			timer.Stop()
		case <-timer.C:
			// Slow-receiver detection: the peer sat on our frames past the
			// stall timeout. Tear the link down; the redial loop owns
			// recovery and the caller's frame goes to the retry queue.
			n.stallTimeouts.Add(1)
			n.tearDownStalled(p)
			return nil
		case <-n.done:
			timer.Stop()
			p.mu.Lock()
			p.stalled = false
			p.mu.Unlock()
			return errors.New("fabric: node closed")
		}
	}
}

// grantCredit returns acked wire bytes to the peer's window (ack received)
// and wakes a stalled Forward. The clamp at zero absorbs acks for frames
// whose reservation was wiped by a reconnect.
func (n *Node) grantCredit(p *peerConn, acked int64) {
	p.mu.Lock()
	p.inflight -= acked
	if p.inflight < 0 {
		p.inflight = 0
	}
	p.mu.Unlock()
	select {
	case p.creditCh <- struct{}{}:
	default:
	}
}

// tearDownStalled closes a peer link whose receiver stopped acking and
// hands it to the reconnect state machine. The credit reservation is wiped:
// whatever was on the wire died with the connection.
func (n *Node) tearDownStalled(p *peerConn) {
	p.mu.Lock()
	if p.state != stateConnected {
		p.mu.Unlock()
		return // a write failure or Stop got here first
	}
	if p.conn != nil {
		_ = p.conn.Close()
		p.conn = nil
	}
	p.state = stateBackingOff
	p.inflight = 0
	p.stalled = false
	spawn := !p.redialing
	p.redialing = true
	p.mu.Unlock()
	if spawn {
		n.spawnRedial(p)
	}
}

// PeerStalled reports whether a Forward to the machine is currently waiting
// on credit (slow-receiver pressure on that link).
func (n *Node) PeerStalled(machine int) bool {
	n.mu.Lock()
	p := n.peers[machine]
	n.mu.Unlock()
	if p == nil {
		return false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stalled
}

// enqueueRetryLocked copies one wire frame (prefix+header+body+checksum)
// into the bounded retry queue. The copy is required: hdr is pooled and
// framed belongs to the object store; both outlive this call only through
// the copy. Caller holds p.mu. Reports whether the frame fit.
func (p *peerConn) enqueueRetryLocked(hdr, framed, trailer []byte) bool {
	if len(p.retry) >= retryQueueCap {
		return false
	}
	frame := make([]byte, 0, len(hdr)+len(framed)+len(trailer))
	frame = append(frame, hdr...)
	frame = append(frame, framed...)
	frame = append(frame, trailer...)
	p.retry = append(p.retry, frame)
	return true
}

// connLost moves a peer whose read loop died to backing-off and ensures a
// redial loop is running. Stale notifications (the conn was already
// replaced) are ignored.
func (n *Node) connLost(p *peerConn, conn net.Conn) {
	p.mu.Lock()
	if p.conn != conn {
		p.mu.Unlock()
		return // already handled (write failure, replace, or shutdown)
	}
	_ = p.conn.Close()
	p.conn = nil
	p.state = stateBackingOff
	spawn := !p.redialing
	p.redialing = true
	p.mu.Unlock()
	if spawn {
		n.spawnRedial(p)
	}
}

// spawnRedial starts the redial loop for a backing-off peer unless the node
// is shutting down.
func (n *Node) spawnRedial(p *peerConn) {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		p.mu.Lock()
		p.redialing = false
		p.mu.Unlock()
		return
	}
	n.wg.Add(1)
	n.mu.Unlock()
	go n.redialLoop(p)
}

// redialLoop re-dials a lost peer with exponential backoff. On success it
// flushes the retry queue on the fresh connection before reopening the peer
// for regular Forwards, so retried frames keep their order relative to new
// traffic. When the attempt budget runs out the peer goes down and queued
// frames are dropped (counted in DroppedRetry).
func (n *Node) redialLoop(p *peerConn) {
	defer n.wg.Done()
	backoff := n.redialBackoff
	for attempt := 0; attempt < n.redialAttempts; attempt++ {
		timer := time.NewTimer(backoff)
		select {
		case <-n.done:
			timer.Stop()
			p.mu.Lock()
			p.redialing = false
			p.mu.Unlock()
			return
		case <-timer.C:
		}
		backoff *= 2
		conn, err := net.Dial("tcp", p.addr)
		if err != nil {
			n.redialFailures.Add(1)
			continue
		}
		conn = n.wrap(conn)
		if n.installReconnected(p, conn) {
			return
		}
		// Flush failed on the fresh conn; count it and keep trying.
		n.redialFailures.Add(1)
	}
	p.mu.Lock()
	p.state = stateDown
	p.redialing = false
	dropped := len(p.retry)
	p.retry = nil
	p.mu.Unlock()
	n.droppedRetry.Add(int64(dropped))
}

// installReconnected flushes the retry queue over the fresh conn and, on
// success, installs it as the peer's live connection and restarts the read
// loop. The flush happens under p.mu so no new Forward write interleaves
// with (or overtakes) a retried frame.
func (n *Node) installReconnected(p *peerConn, conn net.Conn) bool {
	p.mu.Lock()
	pending := p.retry
	p.retry = nil
	flushed := 0
	for _, frame := range pending {
		//lint:ignore lockhold retry flush must complete before the peer reopens for Forward writes; p.mu serializes exactly this
		if _, err := conn.Write(frame); err != nil {
			// Put the unflushed tail back and let the caller retry the dial.
			p.retry = pending[flushed:]
			p.mu.Unlock()
			_ = conn.Close()
			return false
		}
		flushed++
		n.retriedFrames.Add(1)
		n.framesSent.Add(1)
		n.bytesSent.Add(int64(len(frame)))
	}
	p.conn = conn
	p.state = stateConnected
	p.redialing = false
	// Fresh connection, fresh window: reservations for frames that died
	// with the old conn must not strangle the new one.
	p.inflight = 0
	p.stalled = false
	p.mu.Unlock()
	n.reconnects.Add(1)
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		_ = conn.Close()
		return true
	}
	n.wg.Add(1)
	n.mu.Unlock()
	go func() {
		defer n.wg.Done()
		n.readLoop(conn, p)
	}()
	return true
}

// readLoop decodes inbound frames and injects them into the local broker.
// The frame payload lives in a pooled buffer: InjectRemote copies the body
// into this machine's object store and gob decoding copies the header
// fields, so the buffer goes back to the pool at the end of each iteration.
// For dialed connections (p != nil) a read failure reports the lost conn to
// the reconnect state machine.
func (n *Node) readLoop(conn net.Conn, p *peerConn) {
	defer func() {
		_ = conn.Close()
		if p != nil {
			n.connLost(p, conn)
		}
	}()
	prefix := make([]byte, 8)
	for {
		if _, err := io.ReadFull(conn, prefix); err != nil {
			return
		}
		frameLen := binary.BigEndian.Uint32(prefix[0:])
		hdrLen := binary.BigEndian.Uint32(prefix[4:])
		if frameLen&ackFlag != 0 {
			// 8-byte credit ack: no header, no body. Acks arrive on dialed
			// connections (the receiver replies on the conn the data came in
			// on) and replenish that peer's window.
			if hdrLen != 0 {
				n.corruptStreams.Add(1)
				return
			}
			n.acksReceived.Add(1)
			if p != nil {
				n.grantCredit(p, int64(frameLen&^ackFlag))
			}
			continue
		}
		if frameLen > MaxFrameSize || hdrLen+4+crcLen > frameLen {
			n.corruptStreams.Add(1)
			return // corrupt stream
		}
		payload := serialize.GetBuf(int(frameLen - 4))
		payload = payload[:frameLen-4]
		if _, err := io.ReadFull(conn, payload); err != nil {
			serialize.FreeBuf(payload)
			return
		}
		// Verify the CRC32C trailer over header+body before anything is
		// decoded: a damaged frame resets the connection into the redial
		// path instead of handing garbage to gob or serialize.
		covered := payload[:len(payload)-crcLen]
		want := binary.BigEndian.Uint32(payload[len(payload)-crcLen:])
		if crc32.Checksum(covered, castagnoliTable) != want {
			serialize.FreeBuf(payload)
			n.corruptFrames.Add(1)
			return
		}
		var wh wireHeader
		if err := gob.NewDecoder(&sliceReader{b: payload[:hdrLen]}).Decode(&wh); err != nil {
			serialize.FreeBuf(payload)
			n.corruptStreams.Add(1)
			return
		}
		body := covered[hdrLen:]
		h := &message.Header{
			ID:             wh.ID,
			Type:           message.Type(wh.Type),
			Src:            wh.Src,
			Dst:            wh.Dst,
			BodySize:       wh.BodySize,
			Compressed:     wh.Compressed,
			CreatedNanos:   wh.CreatedNanos,
			WeightsVersion: wh.WeightsVersion,
			BaseVersion:    wh.BaseVersion,
			RelayHops:      wh.RelayHops,
			Round:          wh.Round,
		}
		n.framesReceived.Add(1)
		n.bytesReceived.Add(int64(len(prefix) + len(payload)))
		n.mu.Lock()
		b := n.broker
		n.mu.Unlock()
		if b != nil {
			// InjectRemote owns nothing: it copies the body before returning,
			// so the pooled payload can be freed right after.
			_ = b.InjectRemote(h, body)
		} else {
			n.droppedInject.Add(1)
		}
		serialize.FreeBuf(payload)
		if p == nil {
			// Replenish the sender's credit window for the full wire size of
			// this frame (prefix + payload). Only the accepted side acks:
			// this readLoop goroutine is the sole writer on an accepted
			// conn, so the 8-byte ack never interleaves with another write.
			// Ack even after a broker-side refusal — the wire bytes were
			// consumed either way, which is what the window meters. A write
			// error needs no handling here: the next read fails too, and
			// teardown runs through the normal lost-conn path.
			var ack [8]byte
			binary.BigEndian.PutUint32(ack[0:], uint32(int64(len(prefix)+len(payload)))|ackFlag)
			if _, err := conn.Write(ack[:]); err == nil {
				n.acksSent.Add(1)
			}
		}
	}
}

// Stop closes the listener and all peer connections and waits for loops.
func (n *Node) Stop() {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.closed = true
	close(n.done)
	peers := n.peers
	n.peers = map[int]*peerConn{}
	accepted := make([]net.Conn, 0, len(n.accepted))
	for c := range n.accepted {
		accepted = append(accepted, c)
	}
	n.mu.Unlock()

	_ = n.ln.Close()
	for _, p := range peers {
		p.mu.Lock()
		if p.conn != nil {
			_ = p.conn.Close()
			p.conn = nil
		}
		p.state = stateDown
		p.retry = nil
		p.mu.Unlock()
	}
	for _, c := range accepted {
		_ = c.Close()
	}
	n.wg.Wait()
}

// PeerState reports the reconnect state machine's position for a peer
// machine: "connected", "backing-off", "down", or "none" when the machine
// was never connected.
func (n *Node) PeerState(machine int) string {
	n.mu.Lock()
	p := n.peers[machine]
	n.mu.Unlock()
	if p == nil {
		return "none"
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	switch p.state {
	case stateConnected:
		return "connected"
	case stateBackingOff:
		return "backing-off"
	default:
		return "down"
	}
}

// StaticLocator is a fixed name→machine table implementing broker.Locator
// for fabric deployments where process placement is known from the
// configuration file (as in the paper).
type StaticLocator map[string]int

var _ broker.Locator = (StaticLocator)(nil)

// Locate implements broker.Locator.
func (l StaticLocator) Locate(name string) (int, bool) {
	m, ok := l[name]
	return m, ok
}

// Small io helpers (avoid bytes dependency churn) -----------------------------

type bytesBuffer struct{ b []byte }

func (w *bytesBuffer) Write(p []byte) (int, error) {
	w.b = append(w.b, p...)
	return len(p), nil
}

type sliceReader struct {
	b   []byte
	pos int
}

func (r *sliceReader) Read(p []byte) (int, error) {
	if r.pos >= len(r.b) {
		return 0, io.EOF
	}
	n := copy(p, r.b[r.pos:])
	r.pos += n
	return n, nil
}
