// Package fabric implements the real inter-machine data fabric of Fig. 2(b)
// over TCP: brokers on different machines exchange framed messages through
// persistent connections. netsim models this fabric for experiments; this
// package is the production code path, exercised over loopback in the
// integration tests and by examples/distributed.
//
// Wire format per message: a 4-byte big-endian frame length, then a
// gob-encoded header, then the framed body bytes.
package fabric

import (
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"

	"xingtian/internal/broker"
	"xingtian/internal/message"
	"xingtian/internal/serialize"
)

// MaxFrameSize bounds a single fabric frame (1 GiB) to reject corrupt
// length prefixes before allocating.
const MaxFrameSize = 1 << 30

// ErrNoRoute is returned when forwarding to a machine with no connection.
var ErrNoRoute = errors.New("fabric: no route to machine")

// wireHeader is the gob-encoded subset of message.Header that crosses the
// wire (object IDs are machine-local and re-assigned on arrival).
type wireHeader struct {
	ID             uint64
	Type           uint8
	Src            string
	Dst            []string
	BodySize       int
	Compressed     bool
	CreatedNanos   int64
	WeightsVersion int64
	Round          int32
	SrcMachine     int
}

// Node is one machine's endpoint in the fabric.
type Node struct {
	machineID int
	ln        net.Listener

	mu       sync.Mutex
	peers    map[int]*peerConn
	accepted map[net.Conn]struct{}
	broker   *broker.Broker
	closed   bool

	framesSent     atomic.Int64
	framesReceived atomic.Int64
	bytesSent      atomic.Int64
	bytesReceived  atomic.Int64
	corruptStreams atomic.Int64
	droppedInject  atomic.Int64

	wg sync.WaitGroup
}

// Metrics is a snapshot of one fabric node's wire-level health counters.
type Metrics struct {
	// FramesSent / FramesReceived count complete frames written to and
	// decoded from peer connections.
	FramesSent     int64
	FramesReceived int64
	// BytesSent / BytesReceived count frame bytes on the wire (prefix +
	// header + body).
	BytesSent     int64
	BytesReceived int64
	// CorruptStreams counts connections torn down on malformed frames
	// (bad length prefix or undecodable header).
	CorruptStreams int64
	// DroppedInject counts frames received before a broker was attached.
	DroppedInject int64
}

// Metrics snapshots the node's wire counters.
func (n *Node) Metrics() Metrics {
	return Metrics{
		FramesSent:     n.framesSent.Load(),
		FramesReceived: n.framesReceived.Load(),
		BytesSent:      n.bytesSent.Load(),
		BytesReceived:  n.bytesReceived.Load(),
		CorruptStreams: n.corruptStreams.Load(),
		DroppedInject:  n.droppedInject.Load(),
	}
}

// String renders the snapshot human-readably.
func (m Metrics) String() string {
	return fmt.Sprintf("fabric frames: sent=%d recv=%d bytes: sent=%d recv=%d corrupt=%d droppedInject=%d",
		m.FramesSent, m.FramesReceived, m.BytesSent, m.BytesReceived, m.CorruptStreams, m.DroppedInject)
}

var _ broker.Remote = (*Node)(nil)

type peerConn struct {
	conn net.Conn
	mu   sync.Mutex // serializes frame writes
}

// Listen starts a fabric node accepting peer connections on addr
// (e.g. "127.0.0.1:0").
func Listen(machineID int, addr string) (*Node, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("fabric listen: %w", err)
	}
	n := &Node{
		machineID: machineID,
		ln:        ln,
		peers:     make(map[int]*peerConn),
		accepted:  make(map[net.Conn]struct{}),
	}
	n.wg.Add(1)
	go n.acceptLoop()
	return n, nil
}

// Addr returns the node's listening address.
func (n *Node) Addr() string { return n.ln.Addr().String() }

// AttachBroker sets the broker that receives injected remote messages.
// It must be called before traffic arrives.
func (n *Node) AttachBroker(b *broker.Broker) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.broker = b
}

func (n *Node) acceptLoop() {
	defer n.wg.Done()
	for {
		conn, err := n.ln.Accept()
		if err != nil {
			return // listener closed
		}
		n.mu.Lock()
		if n.closed {
			n.mu.Unlock()
			_ = conn.Close()
			return
		}
		n.accepted[conn] = struct{}{}
		n.mu.Unlock()
		n.wg.Add(1)
		go func() {
			defer n.wg.Done()
			n.readLoop(conn)
			n.mu.Lock()
			delete(n.accepted, conn)
			n.mu.Unlock()
		}()
	}
}

// Connect dials a peer machine's fabric node. The connection is used for
// outbound forwarding; the peer learns our machine ID from message headers.
func (n *Node) Connect(peerMachine int, addr string) error {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return fmt.Errorf("fabric connect to machine %d: %w", peerMachine, err)
	}
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		_ = conn.Close()
		return errors.New("fabric: node closed")
	}
	n.peers[peerMachine] = &peerConn{conn: conn}
	n.mu.Unlock()
	// The dialed connection is bidirectional: read replies too.
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		n.readLoop(conn)
	}()
	return nil
}

// Forward implements broker.Remote: it frames the header and body and
// writes them to the peer connection.
func (n *Node) Forward(srcMachine, dstMachine int, h *message.Header, framed []byte) error {
	n.mu.Lock()
	peer := n.peers[dstMachine]
	n.mu.Unlock()
	if peer == nil {
		return fmt.Errorf("%w %d", ErrNoRoute, dstMachine)
	}
	wh := wireHeader{
		ID:             h.ID,
		Type:           uint8(h.Type),
		Src:            h.Src,
		Dst:            h.Dst,
		BodySize:       h.BodySize,
		Compressed:     h.Compressed,
		CreatedNanos:   h.CreatedNanos,
		WeightsVersion: h.WeightsVersion,
		Round:          h.Round,
		SrcMachine:     srcMachine,
	}
	// Pooled frame-prefix+header buffer: the first 8 bytes are the length
	// prefix, the gob header is appended behind it, and the whole thing is
	// returned to the serialize pool once the frame is on the wire.
	hdr := serialize.GetBuf(128)
	hdr = hdr[:8]
	w := bytesBuffer{b: hdr}
	if err := gob.NewEncoder(&w).Encode(&wh); err != nil {
		serialize.FreeBuf(hdr)
		return fmt.Errorf("fabric encode header: %w", err)
	}
	hdr = w.b
	hdrLen := len(hdr) - 8
	frameLen := 4 + hdrLen + len(framed)
	binary.BigEndian.PutUint32(hdr[0:], uint32(frameLen))
	binary.BigEndian.PutUint32(hdr[4:], uint32(hdrLen))

	// One vectored write per frame: prefix, header, and body go out in a
	// single writev, so a frame is never interleaved with another sender's
	// bytes and the connection mutex is held for one syscall, not three.
	total := int64(len(hdr) + len(framed))
	bufs := net.Buffers{hdr, framed}
	peer.mu.Lock()
	//lint:ignore lockhold frame writes must serialize per connection; peer.mu exists to guard exactly this write
	_, werr := bufs.WriteTo(peer.conn)
	peer.mu.Unlock()
	serialize.FreeBuf(hdr)
	if werr != nil {
		return fmt.Errorf("fabric write: %w", werr)
	}
	n.framesSent.Add(1)
	n.bytesSent.Add(total)
	return nil
}

// readLoop decodes inbound frames and injects them into the local broker.
// The frame payload lives in a pooled buffer: InjectRemote copies the body
// into this machine's object store and gob decoding copies the header
// fields, so the buffer goes back to the pool at the end of each iteration.
func (n *Node) readLoop(conn net.Conn) {
	defer func() { _ = conn.Close() }()
	prefix := make([]byte, 8)
	for {
		if _, err := io.ReadFull(conn, prefix); err != nil {
			return
		}
		frameLen := binary.BigEndian.Uint32(prefix[0:])
		hdrLen := binary.BigEndian.Uint32(prefix[4:])
		if frameLen > MaxFrameSize || hdrLen+4 > frameLen {
			n.corruptStreams.Add(1)
			return // corrupt stream
		}
		payload := serialize.GetBuf(int(frameLen - 4))
		payload = payload[:frameLen-4]
		if _, err := io.ReadFull(conn, payload); err != nil {
			serialize.FreeBuf(payload)
			return
		}
		var wh wireHeader
		if err := gob.NewDecoder(&sliceReader{b: payload[:hdrLen]}).Decode(&wh); err != nil {
			serialize.FreeBuf(payload)
			n.corruptStreams.Add(1)
			return
		}
		body := payload[hdrLen:]
		h := &message.Header{
			ID:             wh.ID,
			Type:           message.Type(wh.Type),
			Src:            wh.Src,
			Dst:            wh.Dst,
			BodySize:       wh.BodySize,
			Compressed:     wh.Compressed,
			CreatedNanos:   wh.CreatedNanos,
			WeightsVersion: wh.WeightsVersion,
			Round:          wh.Round,
		}
		n.framesReceived.Add(1)
		n.bytesReceived.Add(int64(len(prefix) + len(payload)))
		n.mu.Lock()
		b := n.broker
		n.mu.Unlock()
		if b != nil {
			// InjectRemote owns nothing: it copies the body before returning,
			// so the pooled payload can be freed right after.
			_ = b.InjectRemote(h, body)
		} else {
			n.droppedInject.Add(1)
		}
		serialize.FreeBuf(payload)
	}
}

// Stop closes the listener and all peer connections and waits for loops.
func (n *Node) Stop() {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.closed = true
	peers := n.peers
	n.peers = map[int]*peerConn{}
	accepted := make([]net.Conn, 0, len(n.accepted))
	for c := range n.accepted {
		accepted = append(accepted, c)
	}
	n.mu.Unlock()

	_ = n.ln.Close()
	for _, p := range peers {
		_ = p.conn.Close()
	}
	for _, c := range accepted {
		_ = c.Close()
	}
	n.wg.Wait()
}

// StaticLocator is a fixed name→machine table implementing broker.Locator
// for fabric deployments where process placement is known from the
// configuration file (as in the paper).
type StaticLocator map[string]int

var _ broker.Locator = (StaticLocator)(nil)

// Locate implements broker.Locator.
func (l StaticLocator) Locate(name string) (int, bool) {
	m, ok := l[name]
	return m, ok
}

// Small io helpers (avoid bytes dependency churn) -----------------------------

type bytesBuffer struct{ b []byte }

func (w *bytesBuffer) Write(p []byte) (int, error) {
	w.b = append(w.b, p...)
	return len(p), nil
}

type sliceReader struct {
	b   []byte
	pos int
}

func (r *sliceReader) Read(p []byte) (int, error) {
	if r.pos >= len(r.b) {
		return 0, io.EOF
	}
	n := copy(p, r.b[r.pos:])
	r.pos += n
	return n, nil
}
