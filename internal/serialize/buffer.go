// Buffer pooling for the serialization plane.
//
// Marshal is on the per-message hot path of every explorer and learner
// thread; allocating a fresh buffer per message makes the garbage collector
// a hidden serialization stage. The pool below recycles grown buffers so a
// steady-state sender marshals with zero allocations.
//
// # Ownership rules (checked by xt-lint refbalance)
//
// A buffer obtained from GetBuf or MarshalPooled is OWNED by the caller and
// must be returned with FreeBuf on every path once the caller is done with
// its contents, exactly like an object-store reference must be Released.
// Hand-offs to a new owner are declared with `//lint:owns <reason>`. After
// FreeBuf the buffer may be reused by any other goroutine: never retain or
// read a slice that was freed. APIs that keep bytes beyond the call (e.g.
// objectstore.Put) must be given their own copy, never a pooled buffer.
package serialize

import "sync"

// minBufCap is the starting capacity handed out for fresh pool buffers.
const minBufCap = 4 << 10

// maxPooledCap bounds what FreeBuf keeps: buffers grown beyond this are
// dropped so one giant message doesn't pin megabytes in the pool forever.
const maxPooledCap = 8 << 20

// bufPool recycles marshal/framing buffers. Stored as *[]byte so Put/Get
// avoid re-boxing the slice header on every cycle.
var bufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, minBufCap)
		return &b
	},
}

// GetBuf returns an empty (length-zero) buffer with capacity at least
// capHint. The caller owns it and must pass it to FreeBuf when done.
func GetBuf(capHint int) []byte {
	bp := bufPool.Get().(*[]byte)
	b := (*bp)[:0]
	if cap(b) >= capHint {
		return b
	}
	// Too small for this message: recycle the pooled one untouched and
	// allocate at the requested size so the eventual FreeBuf keeps the
	// grown buffer instead.
	bufPool.Put(bp)
	return make([]byte, 0, capHint)
}

// FreeBuf returns a buffer obtained from GetBuf or MarshalPooled to the
// pool. The buffer must not be used after the call. Freeing nil or a
// buffer that out-grew the pooling bound is a no-op.
func FreeBuf(b []byte) {
	if cap(b) == 0 || cap(b) > maxPooledCap {
		return
	}
	b = b[:0]
	bufPool.Put(&b)
}
