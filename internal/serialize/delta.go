// Weight-delta codec: sparse/quantized parameter updates for the
// communication-efficient weight plane (PAPERS.md: Chen et al.,
// "Communication-Efficient Policy Gradient Methods"). The learner encodes a
// delta against the reconstruction a destination already holds; both sides
// apply the identical float32 arithmetic, so chained deltas never drift.
package serialize

import (
	"encoding/binary"
	"fmt"
	"math"

	"xingtian/internal/lz4"
	"xingtian/internal/message"
)

// QuantBits values supported by EncodeDelta.
const (
	QuantNone = 0 // exact float32 deltas
	QuantInt8 = 8 // int8 steps with a shared scale
)

// deltaLZ4MinBytes is the smallest entry block worth running through the
// LZ4 block codec: below this the token overhead dominates.
const deltaLZ4MinBytes = 128

// EncodeDelta builds a delta payload that transforms base (at baseVersion)
// into an approximation of cur (at version). With quantBits == QuantInt8 the
// per-parameter change is quantized to int8 steps of a shared scale;
// parameters whose change rounds to zero are dropped, which is where the
// sparsity comes from. The encoder picks sparse or dense layout by encoded
// size. base and cur must have equal length.
func EncodeDelta(base, cur []float32, baseVersion, version int64, quantBits int) (*message.WeightsDeltaPayload, error) {
	if len(base) != len(cur) {
		return nil, fmt.Errorf("serialize: delta over mismatched vectors (%d vs %d): %w", len(base), len(cur), ErrBadPayload)
	}
	d := &message.WeightsDeltaPayload{
		Version:     version,
		BaseVersion: baseVersion,
		NumParams:   int32(len(cur)),
	}
	switch quantBits {
	case QuantInt8:
		maxAbs := float32(0)
		for i := range cur {
			if a := abs32(cur[i] - base[i]); a > maxAbs {
				maxAbs = a
			}
		}
		if maxAbs == 0 {
			return d, nil // nothing changed: pure version bump
		}
		scale := maxAbs / 127
		d.Scale = scale
		idx := make([]uint32, 0, len(cur)/8)
		q := make([]int8, 0, len(cur)/8)
		for i := range cur {
			step := int32(math.RoundToEven(float64((cur[i] - base[i]) / scale)))
			if step == 0 {
				continue
			}
			if step > 127 {
				step = 127
			} else if step < -127 {
				step = -127
			}
			idx = append(idx, uint32(i))
			q = append(q, int8(step))
		}
		if len(q) == 0 {
			d.Scale = 0
			return d, nil
		}
		// Dense layout wins once more than half the entries are non-zero
		// (sparse pays ≥1 varint byte per 1-byte entry).
		if len(q) > len(cur)/2 {
			dq := make([]int8, len(cur))
			for j, i := range idx {
				dq[i] = q[j]
			}
			d.Q = dq
		} else {
			d.Indices = idx
			d.Q = q
		}
		return d, nil
	case QuantNone:
		idx := make([]uint32, 0, len(cur)/8)
		vals := make([]float32, 0, len(cur)/8)
		for i := range cur {
			if cur[i] != base[i] {
				idx = append(idx, uint32(i))
				vals = append(vals, cur[i]-base[i])
			}
		}
		if len(vals) == 0 {
			return d, nil
		}
		// Sparse entries cost ~5 bytes vs 4 dense; dense wins above 4/5.
		if len(vals) > len(cur)*4/5 {
			dv := make([]float32, len(cur))
			for j, i := range idx {
				dv[i] = vals[j]
			}
			d.Values = dv
		} else {
			d.Indices = idx
			d.Values = vals
		}
		return d, nil
	default:
		return nil, fmt.Errorf("serialize: unsupported quantBits %d: %w", quantBits, ErrBadPayload)
	}
}

// ApplyDelta returns base advanced by d. It never mutates base; callers that
// chain deltas keep the returned slice as the next base. Version bookkeeping
// (d.BaseVersion matching the caller's current version) is the caller's
// responsibility — this function validates shape only.
func ApplyDelta(base []float32, d *message.WeightsDeltaPayload) ([]float32, error) {
	if int(d.NumParams) != len(base) {
		return nil, fmt.Errorf("serialize: delta for %d params applied to %d: %w", d.NumParams, len(base), ErrBadPayload)
	}
	out := append([]float32(nil), base...)
	switch {
	case d.Entries() == 0:
		// Pure version bump.
	case d.Indices != nil:
		if len(d.Indices) != d.Entries() {
			return nil, fmt.Errorf("serialize: %d indices for %d entries: %w", len(d.Indices), d.Entries(), ErrBadPayload)
		}
		if d.Scale > 0 {
			for j, i := range d.Indices {
				if int(i) >= len(out) {
					return nil, fmt.Errorf("serialize: delta index %d out of range: %w", i, ErrBadPayload)
				}
				out[i] += d.Scale * float32(d.Q[j])
			}
		} else {
			for j, i := range d.Indices {
				if int(i) >= len(out) {
					return nil, fmt.Errorf("serialize: delta index %d out of range: %w", i, ErrBadPayload)
				}
				out[i] += d.Values[j]
			}
		}
	default: // dense
		if d.Entries() != len(out) {
			return nil, fmt.Errorf("serialize: dense delta has %d entries for %d params: %w", d.Entries(), len(out), ErrBadPayload)
		}
		if d.Scale > 0 {
			for i, q := range d.Q {
				out[i] += d.Scale * float32(q)
			}
		} else {
			for i, v := range d.Values {
				out[i] += v
			}
		}
	}
	return out, nil
}

// RelDeltaNorm returns ‖cur−base‖₂ / max(‖base‖₂, ε): the relative movement
// of the parameter vector, used by the planner's adaptive skip threshold.
func RelDeltaNorm(base, cur []float32) float64 {
	if len(base) != len(cur) {
		return math.Inf(1)
	}
	var num, den float64
	for i := range cur {
		dv := float64(cur[i]) - float64(base[i])
		num += dv * dv
		den += float64(base[i]) * float64(base[i])
	}
	if den < 1e-12 {
		den = 1e-12
	}
	return math.Sqrt(num / den)
}

func abs32(v float32) float32 {
	if v < 0 {
		return -v
	}
	return v
}

// Wire encoding -----------------------------------------------------------------

// Delta flag bits.
const (
	deltaFlagSparse byte = 1 << 0
	deltaFlagLZ4    byte = 1 << 1
	deltaFlagQuant  byte = 1 << 2
)

func appendWeightsDelta(out []byte, d *message.WeightsDeltaPayload) []byte {
	out = append(out, tagWeightsDelta)
	out = putU64(out, uint64(d.Version))
	out = putU64(out, uint64(d.BaseVersion))
	out = putU32(out, uint32(d.NumParams))
	out = putF32(out, d.Scale)

	var flags byte
	if d.Indices != nil {
		flags |= deltaFlagSparse
	}
	if d.Scale > 0 {
		flags |= deltaFlagQuant
	}

	// Entry block: count, varint index gaps (sparse), then entry bytes.
	block := make([]byte, 0, 4+5*d.Entries())
	block = putU32(block, uint32(d.Entries()))
	if d.Indices != nil {
		prev := uint64(0)
		for j, i := range d.Indices {
			v := uint64(i)
			if j == 0 {
				block = binary.AppendUvarint(block, v)
			} else {
				block = binary.AppendUvarint(block, v-prev)
			}
			prev = v
		}
	}
	if d.Scale > 0 {
		for _, q := range d.Q {
			block = append(block, byte(q))
		}
	} else {
		for _, v := range d.Values {
			block = putF32(block, v)
		}
	}

	// LZ4 the block when it shrinks — the fixed block codec, applied inside
	// the payload because deltas rarely reach the outer compressor threshold.
	if len(block) >= deltaLZ4MinBytes {
		comp := make([]byte, 0, lz4.CompressBound(len(block)))
		comp = lz4.Compress(comp, block)
		if len(comp) < len(block) {
			out = append(out, flags|deltaFlagLZ4)
			out = putU32(out, uint32(len(block)))
			return putBytes(out, comp)
		}
	}
	out = append(out, flags)
	return putBytes(out, block)
}

func unmarshalWeightsDelta(data []byte) (*message.WeightsDeltaPayload, error) {
	r := &reader{data: data}
	d := &message.WeightsDeltaPayload{
		Version:     int64(r.u64()),
		BaseVersion: int64(r.u64()),
		NumParams:   int32(r.u32()),
		Scale:       r.f32(),
	}
	flags := r.byte()
	var block []byte
	if flags&deltaFlagLZ4 != 0 {
		rawLen := int(r.u32())
		comp := r.bytes()
		if r.err != nil {
			return nil, r.err
		}
		if rawLen < 0 || rawLen > 4+9*int(uint32(d.NumParams)) {
			return nil, fmt.Errorf("implausible delta block size %d: %w", rawLen, ErrBadPayload)
		}
		block = make([]byte, rawLen)
		if _, err := lz4.Decompress(block, comp); err != nil {
			return nil, fmt.Errorf("delta block: %w", err)
		}
	} else {
		block = r.bytes()
		if r.err != nil {
			return nil, r.err
		}
	}

	br := &reader{data: block}
	entries := int(br.u32())
	if br.err != nil {
		return nil, br.err
	}
	if entries < 0 || entries > int(uint32(d.NumParams)) || d.NumParams < 0 {
		return nil, fmt.Errorf("delta entry count %d for %d params: %w", entries, d.NumParams, ErrBadPayload)
	}
	if flags&deltaFlagSparse != 0 {
		d.Indices = make([]uint32, entries)
		pos := uint64(0)
		for j := 0; j < entries; j++ {
			gap, n := binary.Uvarint(block[br.pos:])
			if n <= 0 {
				return nil, fmt.Errorf("truncated delta index stream: %w", ErrBadPayload)
			}
			br.pos += n
			pos += gap
			if pos >= uint64(uint32(d.NumParams)) {
				return nil, fmt.Errorf("delta index %d out of range: %w", pos, ErrBadPayload)
			}
			if j > 0 && gap == 0 {
				return nil, fmt.Errorf("non-increasing delta index stream: %w", ErrBadPayload)
			}
			d.Indices[j] = uint32(pos)
		}
	} else if entries != 0 && entries != int(d.NumParams) {
		return nil, fmt.Errorf("dense delta has %d entries for %d params: %w", entries, d.NumParams, ErrBadPayload)
	}
	if flags&deltaFlagQuant != 0 {
		if d.Scale <= 0 || math.IsNaN(float64(d.Scale)) || math.IsInf(float64(d.Scale), 0) {
			return nil, fmt.Errorf("quantized delta with scale %v: %w", d.Scale, ErrBadPayload)
		}
		if br.pos+entries > len(block) {
			return nil, fmt.Errorf("truncated delta entries: %w", ErrBadPayload)
		}
		d.Q = make([]int8, entries)
		for j := 0; j < entries; j++ {
			d.Q[j] = int8(block[br.pos+j])
		}
		br.pos += entries
	} else {
		d.Scale = 0
		if br.pos+4*entries > len(block) {
			return nil, fmt.Errorf("truncated delta entries: %w", ErrBadPayload)
		}
		if entries > 0 {
			d.Values = make([]float32, entries)
			for j := range d.Values {
				d.Values[j] = math.Float32frombits(binary.LittleEndian.Uint32(block[br.pos:]))
				br.pos += 4
			}
		}
	}
	if br.pos != len(block) {
		return nil, fmt.Errorf("delta block has %d trailing bytes: %w", len(block)-br.pos, ErrBadPayload)
	}
	// An empty sparse layout is canonicalized to the empty payload.
	if entries == 0 {
		d.Indices = nil
		d.Q = nil
		d.Values = nil
	}
	return d, nil
}
