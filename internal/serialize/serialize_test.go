package serialize

import (
	"bytes"
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"xingtian/internal/env"
	"xingtian/internal/message"
	"xingtian/internal/rollout"
)

func sampleBatch(rng *rand.Rand, steps int, frames bool) *rollout.Batch {
	b := &rollout.Batch{ExplorerID: 3, WeightsVersion: 42}
	for i := 0; i < steps; i++ {
		s := rollout.Step{
			Action:  int32(rng.Intn(4)),
			Reward:  rng.Float32() * 10,
			Done:    rng.Intn(5) == 0,
			Value:   rng.Float32(),
			LogProb: -rng.Float32(),
			Logits:  []float32{rng.Float32(), rng.Float32(), rng.Float32(), rng.Float32()},
		}
		if frames {
			f := make([]byte, 84*84*2)
			rng.Read(f)
			s.Obs = env.Obs{Frame: f, FrameH: 84, FrameW: 84, FrameN: 2}
		} else {
			s.Obs = env.Obs{Vec: []float32{rng.Float32(), rng.Float32(), rng.Float32(), rng.Float32()}}
		}
		b.Steps = append(b.Steps, s)
	}
	b.BootstrapObs = env.Obs{Vec: []float32{1, 2, 3, 4}}
	return b
}

func TestRolloutRoundTripVec(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	in := sampleBatch(rng, 20, false)
	data, err := Marshal(in)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	got, err := Unmarshal(data)
	if err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	out, ok := got.(*rollout.Batch)
	if !ok {
		t.Fatalf("Unmarshal returned %T", got)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatal("rollout batch round trip mismatch")
	}
}

func TestRolloutRoundTripFrames(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	in := sampleBatch(rng, 5, true)
	data, err := Marshal(in)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	got, err := Unmarshal(data)
	if err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	out := got.(*rollout.Batch)
	if !reflect.DeepEqual(in, out) {
		t.Fatal("frame batch round trip mismatch")
	}
	if len(data) < 5*84*84*2 {
		t.Fatalf("serialized size %d smaller than raw frames; frames must dominate", len(data))
	}
}

func TestWeightsRoundTrip(t *testing.T) {
	in := &message.WeightsPayload{Version: 7, Data: []float32{1.5, -2.25, 0, 3e8}}
	data, err := Marshal(in)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	got, err := Unmarshal(data)
	if err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if !reflect.DeepEqual(in, got) {
		t.Fatalf("weights round trip = %+v", got)
	}
}

func TestStatsRoundTrip(t *testing.T) {
	in := &message.StatsPayload{
		Node: "explorer-5", Episodes: 12, MeanReturn: 123.5,
		StepsGenerated: 99, StepsConsumed: 98, TrainIters: 10, UnixNanos: 12345,
	}
	data, err := Marshal(in)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	got, err := Unmarshal(data)
	if err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if !reflect.DeepEqual(in, got) {
		t.Fatalf("stats round trip = %+v", got)
	}
}

func TestControlRoundTrip(t *testing.T) {
	in := &message.ControlPayload{
		Kind:        message.ControlSetHyperparams,
		Hyperparams: map[string]float64{"lr": 0.001, "gamma": 0.99},
	}
	data, err := Marshal(in)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	got, err := Unmarshal(data)
	if err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if !reflect.DeepEqual(in, got) {
		t.Fatalf("control round trip = %+v", got)
	}
	// Empty hyperparams.
	in2 := &message.ControlPayload{Kind: message.ControlShutdown}
	data, _ = Marshal(in2)
	got, err = Unmarshal(data)
	if err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if !reflect.DeepEqual(in2, got) {
		t.Fatalf("shutdown round trip = %+v", got)
	}
	// Membership traffic: the Machine field must survive the wire — a lease
	// renewal that decodes as machine 0 reads as the coordinator renewing.
	in3 := &message.ControlPayload{
		Kind:    message.ControlLeaseRenew,
		Machine: 3,
		Peer:    "memberd-3",
	}
	data, _ = Marshal(in3)
	got, err = Unmarshal(data)
	if err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if !reflect.DeepEqual(in3, got) {
		t.Fatalf("lease renew round trip = %+v", got)
	}
}

func TestDummyRoundTrip(t *testing.T) {
	in := &message.DummyPayload{Data: bytes.Repeat([]byte{0xAB}, 1000)}
	data, err := Marshal(in)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	got, err := Unmarshal(data)
	if err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if !reflect.DeepEqual(in, got) {
		t.Fatal("dummy round trip mismatch")
	}
}

func TestMarshalUnsupported(t *testing.T) {
	if _, err := Marshal(42); !errors.Is(err, ErrBadPayload) {
		t.Fatalf("Marshal(int) = %v, want ErrBadPayload", err)
	}
}

func TestUnmarshalMalformed(t *testing.T) {
	cases := [][]byte{
		nil,
		{},
		{99},         // unknown tag
		{tagRollout}, // truncated
		{tagWeights, 1, 2},
		{tagStats, 0xFF},
		{tagControl},
	}
	for i, c := range cases {
		if _, err := Unmarshal(c); err == nil {
			t.Fatalf("case %d: Unmarshal(%v) succeeded on malformed input", i, c)
		}
	}
}

func TestPackBelowThresholdRaw(t *testing.T) {
	c := NewCompressor()
	raw := make([]byte, 1000)
	framed, compressed := c.Pack(raw)
	if compressed {
		t.Fatal("1 KB body compressed despite 1 MB threshold")
	}
	out, err := Unpack(framed)
	if err != nil {
		t.Fatalf("Unpack: %v", err)
	}
	if !bytes.Equal(out, raw) {
		t.Fatal("raw frame round trip mismatch")
	}
}

func TestPackAboveThresholdCompresses(t *testing.T) {
	c := NewCompressor()
	raw := bytes.Repeat([]byte("rollout"), 200_000) // 1.4 MB, compressible
	framed, compressed := c.Pack(raw)
	if !compressed {
		t.Fatal("compressible 1.4 MB body not compressed")
	}
	if len(framed) >= len(raw)/2 {
		t.Fatalf("framed %d bytes of %d raw; want strong compression", len(framed), len(raw))
	}
	out, err := Unpack(framed)
	if err != nil {
		t.Fatalf("Unpack: %v", err)
	}
	if !bytes.Equal(out, raw) {
		t.Fatal("lz4 frame round trip mismatch")
	}
}

func TestPackIncompressibleFallsBack(t *testing.T) {
	c := Compressor{Threshold: 1024}
	rng := rand.New(rand.NewSource(3))
	raw := make([]byte, 64*1024)
	rng.Read(raw)
	framed, compressed := c.Pack(raw)
	out, err := Unpack(framed)
	if err != nil {
		t.Fatalf("Unpack: %v", err)
	}
	if !bytes.Equal(out, raw) {
		t.Fatal("incompressible round trip mismatch")
	}
	if compressed && len(framed) > len(raw)+9 {
		t.Fatal("kept a compression that grew the payload")
	}
}

func TestCompressionDisabled(t *testing.T) {
	c := Compressor{Threshold: 0}
	raw := bytes.Repeat([]byte{1}, 4<<20)
	framed, compressed := c.Pack(raw)
	if compressed {
		t.Fatal("disabled compressor compressed")
	}
	if len(framed) != len(raw)+1 {
		t.Fatalf("framed size %d, want raw+1", len(framed))
	}
}

func TestUnpackMalformed(t *testing.T) {
	if _, err := Unpack(nil); err == nil {
		t.Fatal("Unpack(nil) succeeded")
	}
	if _, err := Unpack([]byte{frameLZ4, 1, 2}); err == nil {
		t.Fatal("Unpack(truncated lz4) succeeded")
	}
	if _, err := Unpack([]byte{7}); err == nil {
		t.Fatal("Unpack(unknown flag) succeeded")
	}
}

// TestPropertyRolloutRoundTrip: random batches survive marshal/unmarshal.
func TestPropertyRolloutRoundTrip(t *testing.T) {
	f := func(seed int64, steps uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		in := sampleBatch(rng, int(steps%50), seed%2 == 0)
		data, err := Marshal(in)
		if err != nil {
			return false
		}
		got, err := Unmarshal(data)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(in, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyUnmarshalNeverPanics on arbitrary garbage.
func TestPropertyUnmarshalNeverPanics(t *testing.T) {
	f := func(garbage []byte) bool {
		_, _ = Unmarshal(garbage)
		_, _ = Unpack(garbage)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMarshalRollout500Frames(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	batch := sampleBatch(rng, 100, true)
	b.SetBytes(int64(batch.SizeBytes()))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Marshal(batch); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkUnmarshalRollout(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	data, err := Marshal(sampleBatch(rng, 100, true))
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Unmarshal(data); err != nil {
			b.Fatal(err)
		}
	}
}

// Buffer pool --------------------------------------------------------------------

// TestMarshalPooledMatchesMarshal: the pooled encoder must be byte-for-byte
// identical to the allocating one for every payload kind.
func TestMarshalPooledMatchesMarshal(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	bodies := []any{
		sampleBatch(rng, 20, true),
		&message.WeightsPayload{Version: 7, Data: []float32{1, 2, 3}},
		&message.StatsPayload{Node: "m0", Episodes: 3, MeanReturn: 1.5},
		&message.ControlPayload{Kind: 1, Hyperparams: map[string]float64{"lr": 0.01}},
		&message.DummyPayload{Data: []byte("payload")},
	}
	for _, body := range bodies {
		want, err := Marshal(body)
		if err != nil {
			t.Fatalf("Marshal(%T): %v", body, err)
		}
		got, err := MarshalPooled(body)
		if err != nil {
			t.Fatalf("MarshalPooled(%T): %v", body, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("MarshalPooled(%T) differs from Marshal", body)
		}
		FreeBuf(got)
	}
}

// TestMarshalPooledNoAliasingWhileLive: two live pooled buffers must never
// share backing memory — consecutive MarshalPooled calls without an
// intervening FreeBuf yield independent buffers.
func TestMarshalPooledNoAliasingWhileLive(t *testing.T) {
	a, err := MarshalPooled(&message.DummyPayload{Data: []byte("aaaaaaaa")})
	if err != nil {
		t.Fatal(err)
	}
	snapshot := append([]byte(nil), a...)
	b, err := MarshalPooled(&message.DummyPayload{Data: []byte("bbbbbbbb")})
	if err != nil {
		t.Fatal(err)
	}
	if &a[0] == &b[0] {
		t.Fatal("consecutive MarshalPooled calls alias the same backing array while both are live")
	}
	if !bytes.Equal(a, snapshot) {
		t.Fatalf("first buffer mutated by second marshal: %q -> %q", snapshot, a)
	}
	FreeBuf(a)
	FreeBuf(b)
}

// TestFreeBufRecycles: after FreeBuf, the next GetBuf of a fitting size
// reuses the grown backing array instead of allocating. sync.Pool may drop
// entries under GC pressure, so the test pins one cycle without GC in
// between and tolerates (skips on) an empty pool rather than flaking.
func TestFreeBufRecycles(t *testing.T) {
	buf := GetBuf(1 << 16)
	buf = append(buf, 1, 2, 3)
	first := &buf[:1][0]
	FreeBuf(buf)
	again := GetBuf(1 << 16)
	if cap(again) < 1<<16 {
		t.Skipf("pool did not retain the buffer (cap=%d); GC emptied it", cap(again))
	}
	if &again[:1][0] != first {
		t.Skip("pool handed back a different buffer (per-P caches); reuse not observable here")
	}
	if len(again) != 0 {
		t.Fatalf("GetBuf returned non-empty buffer, len=%d", len(again))
	}
	FreeBuf(again)
}

// TestFreeBufDropsOversized: buffers beyond the pooling bound must not be
// retained (they would pin memory for the process lifetime).
func TestFreeBufDropsOversized(t *testing.T) {
	FreeBuf(make([]byte, 0, maxPooledCap+1)) // must not panic or retain
	FreeBuf(nil)                             // no-op
}

// TestMarshalPooledErrorReturnsNothing: a failed pooled marshal must not
// hand the caller a buffer (the acquire-on-success rule refbalance checks).
func TestMarshalPooledErrorReturnsNothing(t *testing.T) {
	out, err := MarshalPooled(struct{}{})
	if !errors.Is(err, ErrBadPayload) {
		t.Fatalf("err = %v, want ErrBadPayload", err)
	}
	if out != nil {
		t.Fatalf("out = %v, want nil on error", out)
	}
}

// BenchmarkMarshalRolloutPooled is BenchmarkMarshalRollout500Frames on the
// pooled path: steady-state allocs/op should be ~0 versus one buffer per
// message for the heap path.
func BenchmarkMarshalRolloutPooled(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	batch := sampleBatch(rng, 100, true)
	b.SetBytes(int64(batch.SizeBytes()))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := MarshalPooled(batch)
		if err != nil {
			b.Fatal(err)
		}
		FreeBuf(out)
	}
}

func BenchmarkMarshalWeightsPooled(b *testing.B) {
	w := &message.WeightsPayload{Version: 1, Data: make([]float32, 100_000)}
	b.SetBytes(int64(4 * len(w.Data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := MarshalPooled(w)
		if err != nil {
			b.Fatal(err)
		}
		FreeBuf(out)
	}
}
