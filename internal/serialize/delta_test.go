package serialize

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"xingtian/internal/message"
)

func randVec(rng *rand.Rand, n int) []float32 {
	v := make([]float32, n)
	for i := range v {
		v[i] = float32(rng.NormFloat64())
	}
	return v
}

// perturb returns base with a fraction of entries nudged, mimicking one
// optimizer step's worth of parameter movement.
func perturb(rng *rand.Rand, base []float32, frac, mag float64) []float32 {
	out := append([]float32(nil), base...)
	for i := range out {
		if rng.Float64() < frac {
			out[i] += float32(rng.NormFloat64() * mag)
		}
	}
	return out
}

func TestDeltaExactRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	base := randVec(rng, 500)
	cur := perturb(rng, base, 0.1, 0.01)
	d, err := EncodeDelta(base, cur, 3, 4, QuantNone)
	if err != nil {
		t.Fatalf("EncodeDelta: %v", err)
	}
	if d.Version != 4 || d.BaseVersion != 3 || int(d.NumParams) != len(base) {
		t.Fatalf("delta header = %+v", d)
	}
	got, err := ApplyDelta(base, d)
	if err != nil {
		t.Fatalf("ApplyDelta: %v", err)
	}
	for i := range cur {
		// base + (cur-base) in float32: reconstruction must match what the
		// same arithmetic produces, and for exact deltas that is cur itself
		// up to one rounding of the subtraction/addition pair.
		if math.Abs(float64(got[i]-cur[i])) > 1e-6 {
			t.Fatalf("exact delta mismatch at %d: %v vs %v", i, got[i], cur[i])
		}
	}
}

func TestDeltaQuantizedBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	base := randVec(rng, 1000)
	cur := perturb(rng, base, 0.3, 0.05)
	d, err := EncodeDelta(base, cur, 7, 8, QuantInt8)
	if err != nil {
		t.Fatalf("EncodeDelta: %v", err)
	}
	got, err := ApplyDelta(base, d)
	if err != nil {
		t.Fatalf("ApplyDelta: %v", err)
	}
	// Quantization error is bounded by one step (scale) per parameter.
	maxErr := float64(d.Scale) * 1.01
	if d.Scale == 0 {
		t.Fatal("expected a non-empty quantized delta")
	}
	for i := range cur {
		if math.Abs(float64(got[i]-cur[i])) > maxErr {
			t.Fatalf("quantized delta error %v at %d exceeds scale %v", got[i]-cur[i], i, d.Scale)
		}
	}
}

func TestDeltaEmptyVersionBump(t *testing.T) {
	base := []float32{1, 2, 3}
	d, err := EncodeDelta(base, base, 5, 6, QuantInt8)
	if err != nil {
		t.Fatalf("EncodeDelta: %v", err)
	}
	if d.Entries() != 0 {
		t.Fatalf("identical vectors produced %d entries", d.Entries())
	}
	got, err := ApplyDelta(base, d)
	if err != nil {
		t.Fatalf("ApplyDelta: %v", err)
	}
	for i := range base {
		if got[i] != base[i] {
			t.Fatal("empty delta mutated weights")
		}
	}
}

func TestDeltaShapeMismatchRejected(t *testing.T) {
	if _, err := EncodeDelta([]float32{1}, []float32{1, 2}, 0, 1, QuantInt8); err == nil {
		t.Fatal("mismatched encode did not error")
	}
	d := &message.WeightsDeltaPayload{NumParams: 4}
	if _, err := ApplyDelta([]float32{1, 2}, d); err == nil {
		t.Fatal("mismatched apply did not error")
	}
	if _, err := EncodeDelta([]float32{1}, []float32{2}, 0, 1, 16); err == nil {
		t.Fatal("unsupported quantBits did not error")
	}
}

func TestDeltaWireRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, tc := range []struct {
		name  string
		frac  float64
		n     int
		quant int
	}{
		{"sparse-int8", 0.05, 2000, QuantInt8},
		{"dense-int8", 0.95, 300, QuantInt8},
		{"sparse-exact", 0.05, 2000, QuantNone},
		{"dense-exact", 0.95, 300, QuantNone},
		{"empty", 0, 64, QuantInt8},
	} {
		base := randVec(rng, tc.n)
		cur := perturb(rng, base, tc.frac, 0.02)
		d, err := EncodeDelta(base, cur, 1, 2, tc.quant)
		if err != nil {
			t.Fatalf("%s: EncodeDelta: %v", tc.name, err)
		}
		raw, err := Marshal(d)
		if err != nil {
			t.Fatalf("%s: Marshal: %v", tc.name, err)
		}
		back, err := Unmarshal(raw)
		if err != nil {
			t.Fatalf("%s: Unmarshal: %v", tc.name, err)
		}
		d2, ok := back.(*message.WeightsDeltaPayload)
		if !ok {
			t.Fatalf("%s: Unmarshal returned %T", tc.name, back)
		}
		// The wire form must reconstruct the identical vector.
		want, err := ApplyDelta(base, d)
		if err != nil {
			t.Fatalf("%s: ApplyDelta(sent): %v", tc.name, err)
		}
		got, err := ApplyDelta(base, d2)
		if err != nil {
			t.Fatalf("%s: ApplyDelta(received): %v", tc.name, err)
		}
		if d2.Version != d.Version || d2.BaseVersion != d.BaseVersion || d2.NumParams != d.NumParams {
			t.Fatalf("%s: header mismatch: %+v vs %+v", tc.name, d2, d)
		}
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("%s: reconstruction diverges at %d: %v vs %v", tc.name, i, want[i], got[i])
			}
		}
	}
}

func TestDeltaWireCompactSparse(t *testing.T) {
	// A 1%-changed int8 delta must encode far smaller than the dense payload.
	rng := rand.New(rand.NewSource(4))
	base := randVec(rng, 100_000)
	cur := perturb(rng, base, 0.01, 0.02)
	d, err := EncodeDelta(base, cur, 1, 2, QuantInt8)
	if err != nil {
		t.Fatalf("EncodeDelta: %v", err)
	}
	raw, err := Marshal(d)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	dense, err := Marshal(&message.WeightsPayload{Version: 2, Data: cur})
	if err != nil {
		t.Fatalf("Marshal dense: %v", err)
	}
	if len(raw)*10 > len(dense) {
		t.Fatalf("sparse delta %d bytes vs dense %d: want >10x smaller", len(raw), len(dense))
	}
}

// TestPropertyDeltaRoundTrip: for arbitrary base/update pairs, encode→
// marshal→unmarshal→apply equals encode→apply — the wire never changes what
// a delta does.
func TestPropertyDeltaRoundTrip(t *testing.T) {
	f := func(seed int64, n uint16, fracN uint8, quant bool) bool {
		rng := rand.New(rand.NewSource(seed))
		size := int(n)%3000 + 1
		base := randVec(rng, size)
		cur := perturb(rng, base, float64(fracN%101)/100, 0.05)
		qb := QuantNone
		if quant {
			qb = QuantInt8
		}
		d, err := EncodeDelta(base, cur, 10, 11, qb)
		if err != nil {
			return false
		}
		raw, err := Marshal(d)
		if err != nil {
			return false
		}
		back, err := Unmarshal(raw)
		if err != nil {
			return false
		}
		d2 := back.(*message.WeightsDeltaPayload)
		want, err1 := ApplyDelta(base, d)
		got, err2 := ApplyDelta(base, d2)
		if err1 != nil || err2 != nil {
			return false
		}
		for i := range want {
			if want[i] != got[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestRelDeltaNorm(t *testing.T) {
	base := []float32{3, 4}
	if got := RelDeltaNorm(base, base); got != 0 {
		t.Fatalf("norm of identical vectors = %v", got)
	}
	cur := []float32{3, 4.5}
	got := RelDeltaNorm(base, cur)
	if math.Abs(got-0.1) > 1e-9 {
		t.Fatalf("RelDeltaNorm = %v, want 0.1", got)
	}
	if !math.IsInf(RelDeltaNorm(base, []float32{1}), 1) {
		t.Fatal("mismatched lengths should give +Inf")
	}
}

// FuzzDeltaApply: arbitrary bytes through the delta unmarshaller either fail
// cleanly or produce a payload that applies within bounds — never a panic or
// an out-of-range write.
func FuzzDeltaApply(f *testing.F) {
	rng := rand.New(rand.NewSource(5))
	base := randVec(rng, 64)
	cur := perturb(rng, base, 0.3, 0.1)
	if d, err := EncodeDelta(base, cur, 1, 2, QuantInt8); err == nil {
		if raw, err := Marshal(d); err == nil {
			f.Add(raw[1:]) // strip the tag; the fuzz body re-adds it
		}
	}
	if d, err := EncodeDelta(base, cur, 1, 2, QuantNone); err == nil {
		if raw, err := Marshal(d); err == nil {
			f.Add(raw[1:])
		}
	}
	f.Add([]byte{6})
	f.Add(bytes.Repeat([]byte{6, 0xFF}, 20))
	f.Fuzz(func(t *testing.T, raw []byte) {
		body, err := Unmarshal(append([]byte{6}, raw...))
		if err != nil {
			return
		}
		d, ok := body.(*message.WeightsDeltaPayload)
		if !ok {
			return
		}
		vec := make([]float32, int(uint32(d.NumParams))%4096)
		_, _ = ApplyDelta(vec, d)
	})
}
