// Package serialize converts message bodies to and from bytes at the
// process boundary, with optional LZ4 compression above a size threshold —
// the "serialization & deserialization, compression & decompression" costs
// that XingTian moves off the critical path and prior frameworks pay
// serially.
//
// Encodings are hand-rolled over encoding/binary (no reflection): message
// bodies dominate the data plane, so the codec must be cheap and
// allocation-conscious.
package serialize

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"time"

	"xingtian/internal/env"
	"xingtian/internal/lz4"
	"xingtian/internal/message"
	"xingtian/internal/rollout"
)

// ErrBadPayload is returned when decoding malformed or unknown payloads.
var ErrBadPayload = errors.New("serialize: bad payload")

// Payload type tags on the wire.
const (
	tagRollout byte = iota + 1
	tagWeights
	tagStats
	tagControl
	tagDummy
	tagWeightsDelta
)

// Marshal encodes a message body into a freshly allocated byte slice.
// Supported bodies are *rollout.Batch, *message.WeightsPayload,
// *message.StatsPayload, *message.ControlPayload, and *message.DummyPayload.
// Hot paths should prefer MarshalPooled, which reuses grown buffers.
func Marshal(body any) ([]byte, error) {
	return MarshalAppend(make([]byte, 0, SizeHint(body)), body)
}

// MarshalAppend appends body's encoding to dst and returns the extended
// slice. It is the allocation-free core of Marshal/MarshalPooled.
func MarshalAppend(dst []byte, body any) ([]byte, error) {
	switch b := body.(type) {
	case *rollout.Batch:
		return appendRollout(dst, b), nil
	case *message.WeightsPayload:
		return appendWeights(dst, b), nil
	case *message.WeightsDeltaPayload:
		return appendWeightsDelta(dst, b), nil
	case *message.StatsPayload:
		return appendStats(dst, b), nil
	case *message.ControlPayload:
		return appendControl(dst, b), nil
	case *message.DummyPayload:
		dst = append(dst, tagDummy)
		return append(dst, b.Data...), nil
	default:
		return nil, fmt.Errorf("serialize: unsupported body type %T: %w", body, ErrBadPayload)
	}
}

// MarshalPooled encodes a message body into a pooled buffer. The caller
// owns the returned slice and must hand it back with FreeBuf once its
// contents are no longer needed (see the ownership rules in buffer.go).
// On error no buffer is retained.
func MarshalPooled(body any) ([]byte, error) {
	out, err := MarshalAppend(GetBuf(SizeHint(body)), body)
	if err != nil {
		FreeBuf(out)
		return nil, err
	}
	return out, nil
}

// SizeHint estimates body's encoded size (an upper bound for fixed-layout
// payloads, the documented estimate for rollouts) so marshal buffers start
// close to their final capacity.
func SizeHint(body any) int {
	switch b := body.(type) {
	case *rollout.Batch:
		return 64 + b.SizeBytes()
	case *message.WeightsPayload:
		return 16 + 4*len(b.Data)
	case *message.WeightsDeltaPayload:
		n := 40
		if b.Scale > 0 {
			n += 6 * len(b.Q)
		} else {
			n += 9 * len(b.Values)
		}
		return n
	case *message.StatsPayload:
		return 96 + len(b.Node)
	case *message.ControlPayload:
		n := 48 + len(b.Peer)
		for k := range b.Hyperparams {
			n += 12 + len(k)
		}
		for k := range b.Acked {
			n += 12 + len(k)
		}
		return n
	case *message.DummyPayload:
		return 1 + len(b.Data)
	default:
		return minBufCap
	}
}

// Unmarshal decodes bytes produced by Marshal back into a typed body.
func Unmarshal(data []byte) (any, error) {
	if len(data) == 0 {
		return nil, fmt.Errorf("empty payload: %w", ErrBadPayload)
	}
	switch data[0] {
	case tagRollout:
		return unmarshalRollout(data[1:])
	case tagWeights:
		return unmarshalWeights(data[1:])
	case tagWeightsDelta:
		return unmarshalWeightsDelta(data[1:])
	case tagStats:
		return unmarshalStats(data[1:])
	case tagControl:
		return unmarshalControl(data[1:])
	case tagDummy:
		// One copy: the receiver thread "copies the message body to the
		// local buffer immediately" (paper §3.2.1); the object-store read
		// itself is zero-copy, this is the copy-out into the receive buffer.
		return &message.DummyPayload{Data: append([]byte(nil), data[1:]...)}, nil
	default:
		return nil, fmt.Errorf("unknown payload tag %d: %w", data[0], ErrBadPayload)
	}
}

// Low-level append helpers ----------------------------------------------------

func putU32(dst []byte, v uint32) []byte {
	return binary.LittleEndian.AppendUint32(dst, v)
}

func putU64(dst []byte, v uint64) []byte {
	return binary.LittleEndian.AppendUint64(dst, v)
}

func putF32(dst []byte, v float32) []byte {
	return putU32(dst, math.Float32bits(v))
}

func putF64(dst []byte, v float64) []byte {
	return putU64(dst, math.Float64bits(v))
}

func putF32s(dst []byte, vs []float32) []byte {
	dst = putU32(dst, uint32(len(vs)))
	for _, v := range vs {
		dst = putF32(dst, v)
	}
	return dst
}

func putBytes(dst, b []byte) []byte {
	dst = putU32(dst, uint32(len(b)))
	return append(dst, b...)
}

func putString(dst []byte, s string) []byte {
	dst = putU32(dst, uint32(len(s)))
	return append(dst, s...)
}

// reader is a bounds-checked cursor over a payload.
type reader struct {
	data []byte
	pos  int
	err  error
}

func (r *reader) u32() uint32 {
	if r.err != nil || r.pos+4 > len(r.data) {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint32(r.data[r.pos:])
	r.pos += 4
	return v
}

func (r *reader) u64() uint64 {
	if r.err != nil || r.pos+8 > len(r.data) {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(r.data[r.pos:])
	r.pos += 8
	return v
}

func (r *reader) f32() float32 { return math.Float32frombits(r.u32()) }
func (r *reader) f64() float64 { return math.Float64frombits(r.u64()) }

func (r *reader) byte() byte {
	if r.err != nil || r.pos >= len(r.data) {
		r.fail()
		return 0
	}
	b := r.data[r.pos]
	r.pos++
	return b
}

func (r *reader) bytes() []byte {
	n := int(r.u32())
	if r.err != nil || n < 0 || r.pos+n > len(r.data) {
		r.fail()
		return nil
	}
	out := append([]byte(nil), r.data[r.pos:r.pos+n]...)
	r.pos += n
	return out
}

func (r *reader) str() string { return string(r.bytes()) }

func (r *reader) f32s() []float32 {
	n := int(r.u32())
	if r.err != nil || n < 0 || r.pos+4*n > len(r.data) {
		r.fail()
		return nil
	}
	if n == 0 {
		return nil
	}
	out := make([]float32, n)
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(r.data[r.pos:]))
		r.pos += 4
	}
	return out
}

func (r *reader) fail() {
	if r.err == nil {
		r.err = fmt.Errorf("truncated payload at offset %d: %w", r.pos, ErrBadPayload)
	}
}

// Observation encoding ---------------------------------------------------------

const (
	obsNone  byte = 0
	obsVec   byte = 1
	obsFrame byte = 2
	obsBoth  byte = 3
)

func putObs(dst []byte, o env.Obs) []byte {
	switch {
	case o.Frame != nil && o.Vec != nil:
		dst = append(dst, obsBoth)
		dst = putU32(dst, uint32(o.FrameH))
		dst = putU32(dst, uint32(o.FrameW))
		dst = putU32(dst, uint32(o.FrameN))
		dst = putBytes(dst, o.Frame)
		dst = putF32s(dst, o.Vec)
	case o.Frame != nil:
		dst = append(dst, obsFrame)
		dst = putU32(dst, uint32(o.FrameH))
		dst = putU32(dst, uint32(o.FrameW))
		dst = putU32(dst, uint32(o.FrameN))
		dst = putBytes(dst, o.Frame)
	case o.Vec != nil:
		dst = append(dst, obsVec)
		dst = putF32s(dst, o.Vec)
	default:
		dst = append(dst, obsNone)
	}
	return dst
}

func (r *reader) obs() env.Obs {
	switch r.byte() {
	case obsBoth:
		o := env.Obs{}
		o.FrameH = int(r.u32())
		o.FrameW = int(r.u32())
		o.FrameN = int(r.u32())
		o.Frame = r.bytes()
		o.Vec = r.f32s()
		return o
	case obsFrame:
		o := env.Obs{}
		o.FrameH = int(r.u32())
		o.FrameW = int(r.u32())
		o.FrameN = int(r.u32())
		o.Frame = r.bytes()
		return o
	case obsVec:
		return env.Obs{Vec: r.f32s()}
	default:
		return env.Obs{}
	}
}

// Rollout batch ----------------------------------------------------------------

func appendRollout(out []byte, b *rollout.Batch) []byte {
	out = append(out, tagRollout)
	out = putU32(out, uint32(b.ExplorerID))
	out = putU64(out, uint64(b.WeightsVersion))
	out = putU32(out, uint32(len(b.Steps)))
	for i := range b.Steps {
		s := &b.Steps[i]
		out = putObs(out, s.Obs)
		out = putU32(out, uint32(s.Action))
		out = putF32s(out, s.ActionVec)
		out = putF32(out, s.Reward)
		if s.Done {
			out = append(out, 1)
		} else {
			out = append(out, 0)
		}
		out = putF32(out, s.Value)
		out = putF32(out, s.LogProb)
		out = putF32s(out, s.Logits)
	}
	out = putObs(out, b.BootstrapObs)
	return out
}

func unmarshalRollout(data []byte) (*rollout.Batch, error) {
	r := &reader{data: data}
	b := &rollout.Batch{
		ExplorerID:     int32(r.u32()),
		WeightsVersion: int64(r.u64()),
	}
	n := int(r.u32())
	if r.err != nil {
		return nil, r.err
	}
	if n < 0 || n > len(data) { // each step takes >1 byte; cheap sanity bound
		return nil, fmt.Errorf("rollout step count %d: %w", n, ErrBadPayload)
	}
	if n > 0 {
		b.Steps = make([]rollout.Step, n)
	}
	for i := 0; i < n; i++ {
		s := &b.Steps[i]
		s.Obs = r.obs()
		s.Action = int32(r.u32())
		s.ActionVec = r.f32s()
		s.Reward = r.f32()
		s.Done = r.byte() == 1
		s.Value = r.f32()
		s.LogProb = r.f32()
		s.Logits = r.f32s()
	}
	b.BootstrapObs = r.obs()
	if r.err != nil {
		return nil, r.err
	}
	return b, nil
}

// Weights ------------------------------------------------------------------------

func appendWeights(out []byte, w *message.WeightsPayload) []byte {
	out = append(out, tagWeights)
	out = putU64(out, uint64(w.Version))
	out = putF32s(out, w.Data)
	return out
}

func unmarshalWeights(data []byte) (*message.WeightsPayload, error) {
	r := &reader{data: data}
	w := &message.WeightsPayload{Version: int64(r.u64()), Data: r.f32s()}
	if r.err != nil {
		return nil, r.err
	}
	return w, nil
}

// Stats --------------------------------------------------------------------------

func appendStats(out []byte, s *message.StatsPayload) []byte {
	out = append(out, tagStats)
	out = putString(out, s.Node)
	out = putU64(out, uint64(s.Episodes))
	out = putF64(out, s.MeanReturn)
	out = putU64(out, uint64(s.StepsGenerated))
	out = putU64(out, uint64(s.StepsConsumed))
	out = putU64(out, uint64(s.TrainIters))
	out = putU64(out, uint64(s.UnixNanos))
	return out
}

func unmarshalStats(data []byte) (*message.StatsPayload, error) {
	r := &reader{data: data}
	s := &message.StatsPayload{
		Node:           r.str(),
		Episodes:       int64(r.u64()),
		MeanReturn:     r.f64(),
		StepsGenerated: int64(r.u64()),
		StepsConsumed:  int64(r.u64()),
		TrainIters:     int64(r.u64()),
		UnixNanos:      int64(r.u64()),
	}
	if r.err != nil {
		return nil, r.err
	}
	return s, nil
}

// Control ------------------------------------------------------------------------

func appendControl(out []byte, c *message.ControlPayload) []byte {
	out = append(out, tagControl, byte(c.Kind))
	out = putU32(out, uint32(len(c.Hyperparams)))
	for k, v := range c.Hyperparams {
		out = putString(out, k)
		out = putF64(out, v)
	}
	out = putU32(out, uint32(len(c.Acked)))
	for k, v := range c.Acked {
		out = putString(out, k)
		out = putU64(out, uint64(v))
	}
	out = putString(out, c.Peer)
	out = putU64(out, c.LastRolloutID)
	out = putU64(out, uint64(int64(c.Machine)))
	return out
}

func unmarshalControl(data []byte) (*message.ControlPayload, error) {
	r := &reader{data: data}
	c := &message.ControlPayload{Kind: message.ControlKind(r.byte())}
	n := int(r.u32())
	if r.err != nil {
		return nil, r.err
	}
	if n > 0 {
		if n > len(data) {
			return nil, fmt.Errorf("control hyperparam count %d: %w", n, ErrBadPayload)
		}
		c.Hyperparams = make(map[string]float64, n)
		for i := 0; i < n; i++ {
			k := r.str()
			v := r.f64()
			if r.err != nil {
				return nil, r.err
			}
			c.Hyperparams[k] = v
		}
	}
	na := int(r.u32())
	if r.err != nil {
		return nil, r.err
	}
	if na > 0 {
		if na > len(data) {
			return nil, fmt.Errorf("control ack count %d: %w", na, ErrBadPayload)
		}
		c.Acked = make(map[string]int64, na)
		for i := 0; i < na; i++ {
			k := r.str()
			v := int64(r.u64())
			if r.err != nil {
				return nil, r.err
			}
			c.Acked[k] = v
		}
	}
	c.Peer = r.str()
	c.LastRolloutID = r.u64()
	c.Machine = int(int64(r.u64()))
	if r.err != nil {
		return nil, r.err
	}
	return c, nil
}

// Compression ----------------------------------------------------------------------

// DefaultCompressionThreshold matches the paper: bodies larger than 1 MB are
// LZ4-compressed by default.
const DefaultCompressionThreshold = 1 << 20

// Compressor applies threshold-gated LZ4 framing to serialized bodies.
// A zero Compressor never compresses; use NewCompressor for the default.
type Compressor struct {
	// Threshold is the minimum body size to compress; <= 0 disables
	// compression entirely.
	Threshold int
	// PackNsPerKB emulates the send-side serialization plane: the paper's
	// artifact pays Python pickle + LZ4 costs of ~70-140 MB/s per stage,
	// while this Go codec runs >1 GB/s, which would hide the architectural
	// differences the paper measures. The cost is charged as *virtual time*
	// (sleep) rather than CPU spin so that concurrent senders overlap the
	// way they do on the paper's 72-core testbed even when this host has
	// fewer cores — see DESIGN.md, substitution table. The receive side
	// (shared-memory copy + LZ4 decompress) charges 1/8 of it. 0 disables.
	PackNsPerKB int
}

// PlaneDelay blocks for size×nsPerKB/1024 nanoseconds of emulated
// data-plane occupancy. Baseline frameworks call it directly to charge
// additional stages (e.g. Ray's object-store marshalling) that XingTian's
// zero-copy path does not have.
func PlaneDelay(size, nsPerKB int) {
	if nsPerKB <= 0 || size <= 0 {
		return
	}
	time.Sleep(time.Duration(int64(size) * int64(nsPerKB) / 1024))
}

// unpackNsPerKB is the receive-side emulation rate.
func (c Compressor) unpackNsPerKB() int { return c.PackNsPerKB / 8 }

// NewCompressor returns a compressor with the paper's 1 MB default.
func NewCompressor() Compressor {
	return Compressor{Threshold: DefaultCompressionThreshold}
}

// Frame flags.
const (
	frameRaw byte = 0
	frameLZ4 byte = 1
)

// Pack frames raw bytes for the object store, compressing when raw meets the
// threshold and compression actually shrinks it. It returns the framed body
// and whether compression was applied.
func (c Compressor) Pack(raw []byte) ([]byte, bool) {
	PlaneDelay(len(raw), c.PackNsPerKB)
	if c.Threshold > 0 && len(raw) >= c.Threshold {
		comp := make([]byte, 0, lz4.CompressBound(len(raw))+9)
		comp = append(comp, frameLZ4)
		comp = binary.LittleEndian.AppendUint64(comp, uint64(len(raw)))
		comp = lz4.Compress(comp, raw)
		if len(comp) < len(raw)+9 {
			return comp, true
		}
	}
	out := make([]byte, 0, len(raw)+1)
	out = append(out, frameRaw)
	return append(out, raw...), false
}

// Unpack reverses Pack on behalf of a compressor, charging the same
// emulation work as Pack did.
func (c Compressor) Unpack(framed []byte) ([]byte, error) {
	raw, err := Unpack(framed)
	if err != nil {
		return nil, err
	}
	PlaneDelay(len(raw), c.unpackNsPerKB())
	return raw, nil
}

// Unpack reverses Pack, returning the original serialized body.
func Unpack(framed []byte) ([]byte, error) {
	if len(framed) == 0 {
		return nil, fmt.Errorf("empty frame: %w", ErrBadPayload)
	}
	switch framed[0] {
	case frameRaw:
		return framed[1:], nil
	case frameLZ4:
		if len(framed) < 9 {
			return nil, fmt.Errorf("truncated lz4 frame: %w", ErrBadPayload)
		}
		rawLen := binary.LittleEndian.Uint64(framed[1:9])
		if rawLen > 1<<32 {
			return nil, fmt.Errorf("implausible frame size %d: %w", rawLen, ErrBadPayload)
		}
		out := make([]byte, rawLen)
		n, err := lz4.Decompress(out, framed[9:])
		if err != nil {
			return nil, fmt.Errorf("lz4 frame: %w", err)
		}
		if uint64(n) != rawLen {
			return nil, fmt.Errorf("lz4 frame decoded %d of %d bytes: %w", n, rawLen, ErrBadPayload)
		}
		return out, nil
	default:
		return nil, fmt.Errorf("unknown frame flag %d: %w", framed[0], ErrBadPayload)
	}
}
