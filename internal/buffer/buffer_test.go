package buffer

import (
	"errors"
	"sync"
	"testing"

	"xingtian/internal/message"
	"xingtian/internal/queue"
)

func msg(body any) *message.Message {
	return message.New(message.TypeDummy, "src", []string{"dst"}, body)
}

func TestPutNext(t *testing.T) {
	b := New()
	in := msg("payload")
	if err := b.Put(in); err != nil {
		t.Fatalf("Put: %v", err)
	}
	out, err := b.Next()
	if err != nil {
		t.Fatalf("Next: %v", err)
	}
	if out.Header.ID != in.Header.ID || out.Body != "payload" {
		t.Fatalf("Next = %+v", out)
	}
	if b.Len() != 0 {
		t.Fatalf("Len = %d after drain", b.Len())
	}
}

func TestBodyRemovedAfterTake(t *testing.T) {
	b := New()
	in := msg("x")
	if err := b.Put(in); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if body := b.TakeBody(in.Header.ID); body != "x" {
		t.Fatalf("TakeBody = %v", body)
	}
	if body := b.TakeBody(in.Header.ID); body != nil {
		t.Fatalf("second TakeBody = %v, want nil", body)
	}
}

func TestTryNextEmpty(t *testing.T) {
	b := New()
	if _, err := b.TryNext(); !errors.Is(err, queue.ErrEmpty) {
		t.Fatalf("TryNext on empty = %v, want ErrEmpty", err)
	}
}

func TestCloseUnblocksAndRejects(t *testing.T) {
	b := New()
	done := make(chan error, 1)
	go func() {
		_, err := b.Next()
		done <- err
	}()
	b.Close()
	if err := <-done; !errors.Is(err, queue.ErrClosed) {
		t.Fatalf("Next after Close = %v, want ErrClosed", err)
	}
	if err := b.Put(msg("y")); !errors.Is(err, queue.ErrClosed) {
		t.Fatalf("Put after Close = %v, want ErrClosed", err)
	}
}

func TestFIFOAcrossManyMessages(t *testing.T) {
	b := New()
	const n = 100
	var ids []uint64
	for i := 0; i < n; i++ {
		m := msg(i)
		ids = append(ids, m.Header.ID)
		if err := b.Put(m); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	for i := 0; i < n; i++ {
		out, err := b.Next()
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		if out.Header.ID != ids[i] {
			t.Fatalf("message %d out of order", i)
		}
		if out.Body != i {
			t.Fatalf("body = %v, want %d", out.Body, i)
		}
	}
}

func TestConcurrentProducerConsumer(t *testing.T) {
	b := New()
	const n = 1000
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < n; i++ {
			if err := b.Put(msg(i)); err != nil {
				t.Errorf("Put: %v", err)
				return
			}
		}
	}()
	seen := 0
	for seen < n {
		m, err := b.Next()
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		if m.Body == nil {
			t.Fatal("nil body for staged message")
		}
		seen++
	}
	wg.Wait()
}
