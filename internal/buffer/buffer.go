// Package buffer implements the send and receive buffers that sit inside
// every explorer and learner process (Fig. 2(a) of the paper).
//
// A buffer pairs a header queue with a data list: workhorse threads only do
// "simple local buffer reads and writes", while the sender/receiver threads
// of the asynchronous communication channel move whole messages between the
// buffer and the shared-memory communicator. The header queue is blocking,
// so the monitoring thread wakes the moment a message is staged.
package buffer

import (
	"sync"

	"xingtian/internal/message"
	"xingtian/internal/queue"
)

// Buffer is a staging area for messages inside a process. Headers flow
// through the blocking header queue; bodies sit in the data list keyed by
// message ID until consumed.
type Buffer struct {
	headers *queue.Queue[*message.Header]

	mu     sync.Mutex
	bodies map[uint64]any
}

// New returns an empty buffer.
func New() *Buffer {
	return &Buffer{
		headers: queue.New[*message.Header](),
		bodies:  make(map[uint64]any),
	}
}

// Put stages a whole message: the body joins the data list and the header
// joins the header queue, waking any thread blocked in NextHeader.
func (b *Buffer) Put(m *message.Message) error {
	b.mu.Lock()
	b.bodies[m.Header.ID] = m.Body
	b.mu.Unlock()
	if err := b.headers.Put(m.Header); err != nil {
		// Roll back the orphaned body so Close doesn't leak it.
		b.mu.Lock()
		delete(b.bodies, m.Header.ID)
		b.mu.Unlock()
		return err
	}
	return nil
}

// NextHeader blocks until a staged header is available (or the buffer is
// closed, returning queue.ErrClosed).
func (b *Buffer) NextHeader() (*message.Header, error) {
	return b.headers.Get()
}

// TakeBody removes and returns the body staged for the given header,
// or nil when absent.
func (b *Buffer) TakeBody(id uint64) any {
	b.mu.Lock()
	defer b.mu.Unlock()
	body := b.bodies[id]
	delete(b.bodies, id)
	return body
}

// Next blocks for the next full message (header + body).
func (b *Buffer) Next() (*message.Message, error) {
	h, err := b.NextHeader()
	if err != nil {
		return nil, err
	}
	return &message.Message{Header: h, Body: b.TakeBody(h.ID)}, nil
}

// TryNext returns the next full message without blocking, or
// queue.ErrEmpty / queue.ErrClosed.
func (b *Buffer) TryNext() (*message.Message, error) {
	h, err := b.headers.TryGet()
	if err != nil {
		return nil, err
	}
	return &message.Message{Header: h, Body: b.TakeBody(h.ID)}, nil
}

// Len reports the number of staged headers.
func (b *Buffer) Len() int { return b.headers.Len() }

// Close closes the header queue; subsequent Puts fail and readers drain.
func (b *Buffer) Close() { b.headers.Close() }
