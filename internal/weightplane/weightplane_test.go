package weightplane

import (
	"math/rand"
	"testing"

	"xingtian/internal/message"
	"xingtian/internal/serialize"
)

// mirror mimics an explorer: dense sets, deltas chain.
type mirror struct {
	version int64
	flat    []float32
}

func (m *mirror) receive(t *testing.T, o Outbound) {
	t.Helper()
	switch b := o.Body.(type) {
	case *message.WeightsPayload:
		m.version = b.Version
		m.flat = append([]float32(nil), b.Data...)
	case *message.WeightsDeltaPayload:
		if b.BaseVersion != m.version {
			t.Fatalf("delta base %d does not match mirror version %d", b.BaseVersion, m.version)
		}
		out, err := serialize.ApplyDelta(m.flat, b)
		if err != nil {
			t.Fatalf("ApplyDelta: %v", err)
		}
		m.flat = out
		m.version = b.Version
	default:
		t.Fatalf("unexpected body %T", o.Body)
	}
}

func deliver(t *testing.T, mirrors map[string]*mirror, outs []Outbound) {
	t.Helper()
	covered := map[string]bool{}
	for _, o := range outs {
		for _, d := range o.Dsts {
			if covered[d] {
				t.Fatalf("destination %s covered twice", d)
			}
			covered[d] = true
			mirrors[d].receive(t, o)
		}
	}
}

func step(rng *rand.Rand, w []float32, mag float64) []float32 {
	out := append([]float32(nil), w...)
	for i := range out {
		if rng.Float64() < 0.2 {
			out[i] += float32(rng.NormFloat64() * mag)
		}
	}
	return out
}

// TestPlannerChainConvergence: across many broadcasts every mirror tracks
// the canonical reconstruction bit-exactly, and non-first broadcasts are
// deltas, not dense.
func TestPlannerChainConvergence(t *testing.T) {
	p := New(Config{Enabled: true, QuantBits: serialize.QuantInt8})
	dsts := []string{"explorer-0", "explorer-1", "explorer-2"}
	mirrors := map[string]*mirror{}
	for _, d := range dsts {
		mirrors[d] = &mirror{}
	}
	rng := rand.New(rand.NewSource(1))
	w := step(rng, make([]float32, 400), 1)

	for v := int64(1); v <= 20; v++ {
		outs := p.Plan(w, v, dsts, nil)
		deliver(t, mirrors, outs)
		if v > 1 {
			for _, o := range outs {
				if o.Type != message.TypeWeightsDelta {
					t.Fatalf("broadcast %d used %v, want delta", v, o.Type)
				}
			}
		}
		// All mirrors bit-identical, at the current version.
		ref := mirrors[dsts[0]]
		if ref.version != v {
			t.Fatalf("mirror at version %d after broadcast %d", ref.version, v)
		}
		for _, d := range dsts[1:] {
			m := mirrors[d]
			if m.version != ref.version || len(m.flat) != len(ref.flat) {
				t.Fatalf("mirror %s diverged in shape/version", d)
			}
			for i := range m.flat {
				if m.flat[i] != ref.flat[i] {
					t.Fatalf("mirror %s diverged at %d", d, i)
				}
			}
		}
		w = step(rng, w, 0.02)
	}
	s := p.Stats()
	if s.Delta == 0 || s.Dense != int64(len(dsts)) {
		t.Fatalf("stats = %+v; want exactly one dense round then deltas", s)
	}
}

// TestPlannerStragglerGetsExactDelta: a destination missing from some
// broadcasts still converges onto the canonical vector via an exact delta.
func TestPlannerStragglerGetsExactDelta(t *testing.T) {
	p := New(Config{Enabled: true, QuantBits: serialize.QuantInt8})
	all := []string{"a", "b"}
	mirrors := map[string]*mirror{"a": {}, "b": {}}
	rng := rand.New(rand.NewSource(2))
	w := step(rng, make([]float32, 200), 1)

	deliver(t, mirrors, p.Plan(w, 1, all, nil))
	// Broadcasts 2..4 target only "a".
	for v := int64(2); v <= 4; v++ {
		w = step(rng, w, 0.02)
		deliver(t, mirrors, p.Plan(w, v, []string{"a"}, nil))
	}
	// Broadcast 5 targets both; "b" is 4 versions behind.
	w = step(rng, w, 0.02)
	deliver(t, mirrors, p.Plan(w, 5, all, nil))
	ma, mb := mirrors["a"], mirrors["b"]
	if ma.version != 5 || mb.version != 5 {
		t.Fatalf("versions = %d/%d, want 5/5", ma.version, mb.version)
	}
	for i := range ma.flat {
		if ma.flat[i] != mb.flat[i] {
			t.Fatalf("straggler diverged at %d: %v vs %v", i, ma.flat[i], mb.flat[i])
		}
	}
}

// TestPlannerSkipEmitsEmptyDelta: negligible updates become version bumps,
// never silence (weights traffic doubles as credit).
func TestPlannerSkipEmitsEmptyDelta(t *testing.T) {
	p := New(Config{Enabled: true, QuantBits: serialize.QuantInt8, SkipFactor: 0.5})
	dsts := []string{"x"}
	mirrors := map[string]*mirror{"x": {}}
	rng := rand.New(rand.NewSource(3))
	w := step(rng, make([]float32, 300), 1)

	deliver(t, mirrors, p.Plan(w, 1, dsts, nil))
	// Big moves to establish the EMA.
	for v := int64(2); v <= 5; v++ {
		w = step(rng, w, 0.1)
		deliver(t, mirrors, p.Plan(w, v, dsts, nil))
	}
	// A tiny move must be skipped — but still produce a message.
	w2 := append([]float32(nil), w...)
	w2[0] += 1e-7
	outs := p.Plan(w2, 6, dsts, nil)
	if len(outs) != 1 {
		t.Fatalf("skip produced %d messages, want 1", len(outs))
	}
	d, ok := outs[0].Body.(*message.WeightsDeltaPayload)
	if !ok || d.Entries() != 0 {
		t.Fatalf("skip body = %#v, want empty delta", outs[0].Body)
	}
	deliver(t, mirrors, outs)
	if mirrors["x"].version != 6 {
		t.Fatalf("version after skip = %d, want 6", mirrors["x"].version)
	}
	if p.Stats().Empty == 0 {
		t.Fatal("Empty stat not incremented")
	}
}

// TestPlannerNACKForcesDense: MarkStale triggers a dense snapshot on the
// next broadcast, after which deltas resume.
func TestPlannerNACKForcesDense(t *testing.T) {
	p := New(Config{Enabled: true, QuantBits: serialize.QuantInt8})
	dsts := []string{"x", "y"}
	mirrors := map[string]*mirror{"x": {}, "y": {}}
	rng := rand.New(rand.NewSource(4))
	w := step(rng, make([]float32, 100), 1)
	deliver(t, mirrors, p.Plan(w, 1, dsts, nil))
	w = step(rng, w, 0.02)
	deliver(t, mirrors, p.Plan(w, 2, dsts, nil))

	// "y" restarts: mirror wiped, NACK raised.
	mirrors["y"] = &mirror{}
	p.MarkStale("y")
	w = step(rng, w, 0.02)
	outs := p.Plan(w, 3, dsts, nil)
	var yType, xType message.Type
	for _, o := range outs {
		for _, d := range o.Dsts {
			if d == "y" {
				yType = o.Type
			} else {
				xType = o.Type
			}
		}
	}
	if yType != message.TypeWeights {
		t.Fatalf("NACKed destination got %v, want dense weights", yType)
	}
	if xType != message.TypeWeightsDelta {
		t.Fatalf("healthy destination got %v, want delta", xType)
	}
	deliver(t, mirrors, outs)
	// Next round both take deltas again and agree.
	w = step(rng, w, 0.02)
	deliver(t, mirrors, p.Plan(w, 4, dsts, nil))
	for i := range mirrors["x"].flat {
		if mirrors["x"].flat[i] != mirrors["y"].flat[i] {
			t.Fatalf("post-resync divergence at %d", i)
		}
	}
	if p.Stats().Resyncs != 1 {
		t.Fatalf("Resyncs = %d, want 1", p.Stats().Resyncs)
	}
}

// TestPlannerAckRegressionForcesDense: a destination whose acked version
// moves backwards (silent restart) is re-seeded densely without a NACK.
func TestPlannerAckRegressionForcesDense(t *testing.T) {
	p := New(Config{Enabled: true, QuantBits: serialize.QuantInt8})
	dsts := []string{"x"}
	mirrors := map[string]*mirror{"x": {}}
	rng := rand.New(rand.NewSource(5))
	w := step(rng, make([]float32, 100), 1)
	deliver(t, mirrors, p.Plan(w, 1, dsts, map[string]int64{"x": 0}))
	w = step(rng, w, 0.02)
	deliver(t, mirrors, p.Plan(w, 2, dsts, map[string]int64{"x": 1}))
	// Ack regresses 1 → 0: restart suspected.
	mirrors["x"] = &mirror{}
	w = step(rng, w, 0.02)
	outs := p.Plan(w, 3, dsts, map[string]int64{"x": 0})
	if len(outs) != 1 || outs[0].Type != message.TypeWeights {
		t.Fatalf("ack regression produced %+v, want dense", outs)
	}
	deliver(t, mirrors, outs)
}

// TestPlannerStaleGapForcesDense: an ack trailing beyond StaleGap forces a
// dense snapshot.
func TestPlannerStaleGapForcesDense(t *testing.T) {
	p := New(Config{Enabled: true, QuantBits: serialize.QuantInt8, StaleGap: 2})
	dsts := []string{"x"}
	mirrors := map[string]*mirror{"x": {}}
	rng := rand.New(rand.NewSource(6))
	w := step(rng, make([]float32, 100), 1)
	deliver(t, mirrors, p.Plan(w, 1, dsts, nil))
	for v := int64(2); v <= 5; v++ {
		w = step(rng, w, 0.02)
		outs := p.Plan(w, v, dsts, map[string]int64{"x": 1})
		deliver(t, mirrors, outs)
		if v >= 4 { // gap v-1 > 2
			if outs[0].Type != message.TypeWeights {
				t.Fatalf("broadcast %d with stale ack got %v, want dense", v, outs[0].Type)
			}
		}
	}
}

// TestPlannerDisabledIsDenseStar: with the plane off, every broadcast is one
// dense message to all destinations.
func TestPlannerDisabledIsDenseStar(t *testing.T) {
	p := New(Config{})
	outs := p.Plan([]float32{1, 2}, 7, []string{"a", "b"}, nil)
	if len(outs) != 1 || outs[0].Type != message.TypeWeights || len(outs[0].Dsts) != 2 {
		t.Fatalf("disabled planner produced %+v", outs)
	}
}
