// Package weightplane plans the learner's weight broadcasts for the
// communication-efficient weight plane: sparse/quantized deltas against the
// version each destination already holds, an adaptive skip threshold that
// turns negligible updates into pure version bumps, and dense-snapshot
// fallback whenever a destination's state is unknown, stale, or NACKed.
//
// Drift control: the planner maintains one canonical reconstruction chain —
// recon_v = recon_prev + quantize(cur_v − recon_prev) — and aims every
// message at the canonical vector. Destinations on the previous broadcast
// version share the quantized chain delta; stragglers on older versions get
// an exact (unquantized) delta to the same canonical target; dense sends
// carry the canonical vector itself. Every destination therefore lands on
// bit-identical float32 weights, so chained deltas never diverge, and the
// quantization error never accumulates (each step quantizes the distance to
// the *true* current weights, absorbing the previous step's error).
package weightplane

import (
	"sync"

	"xingtian/internal/message"
	"xingtian/internal/serialize"
)

// Config tunes the planner. The zero value disables the delta plane
// entirely (every broadcast is a dense star send).
type Config struct {
	// Enabled turns on delta planning.
	Enabled bool
	// QuantBits selects delta quantization: 8 for int8 steps, 0 for exact
	// float32 deltas.
	QuantBits int
	// SkipFactor scales the adaptive skip threshold: a broadcast whose
	// relative delta norm falls below SkipFactor × EMA(recent norms) is
	// replaced by an empty version bump. 0 disables skipping.
	SkipFactor float64
	// StaleGap forces a dense snapshot when a destination's last-acked
	// version trails the current one by more than this many versions.
	// 0 means DefaultStaleGap.
	StaleGap int64
}

// DefaultStaleGap is the acked-version gap that forces dense fallback.
const DefaultStaleGap = 64

// emaAlpha is the smoothing factor of the adaptive-threshold EMA.
const emaAlpha = 0.1

// Outbound is one planned weight message covering a group of destinations
// that share a base version.
type Outbound struct {
	Type message.Type
	Body any
	// BaseVersion annotates delta messages (mirrored into the header).
	BaseVersion int64
	Dsts        []string
}

// Stats counts planner decisions.
type Stats struct {
	// Dense counts destinations sent a full snapshot.
	Dense int64
	// Delta counts destinations sent a non-empty delta.
	Delta int64
	// Empty counts destinations sent a pure version bump (skipped update).
	Empty int64
	// Resyncs counts NACK-forced dense fallbacks.
	Resyncs int64
	// Corrections counts failover-forced broadcasts: a learn replica was
	// quarantined, so the committed aggregate was recomputed over the
	// survivors and re-planned out of cadence.
	Corrections int64
	// EMANorm is the current adaptive-threshold EMA of relative delta norms.
	EMANorm float64
}

// Planner plans weight broadcasts. Safe for concurrent use.
type Planner struct {
	cfg Config

	mu        sync.Mutex
	ring      map[int64][]float32 // canonical reconstructions by version
	lastSent  map[string]int64    // per-destination version last planned
	prevAcked map[string]int64    // per-destination high-water acked version
	stale     map[string]bool     // NACKed or restart-suspected destinations
	lastVer   int64               // version of the newest ring entry
	prevChain int64               // base version the newest chain delta applies to
	emaNorm   float64
	stats     Stats
}

// New returns a planner for cfg.
func New(cfg Config) *Planner {
	if cfg.StaleGap <= 0 {
		cfg.StaleGap = DefaultStaleGap
	}
	return &Planner{
		cfg:       cfg,
		ring:      make(map[int64][]float32),
		lastSent:  make(map[string]int64),
		prevAcked: make(map[string]int64),
		stale:     make(map[string]bool),
	}
}

// Enabled reports whether delta planning is on.
func (p *Planner) Enabled() bool { return p.cfg.Enabled }

// MarkStale records an explorer NACK (ControlWeightsResync): its next
// broadcast will be a dense snapshot.
func (p *Planner) MarkStale(dst string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.stale[dst] = true
	p.stats.Resyncs++
}

// NoteCorrection records a failover-forced corrective broadcast (the
// aggregate recomputed over surviving replicas after a quarantine).
func (p *Planner) NoteCorrection() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.stats.Corrections++
}

// Stats returns a snapshot of planner counters.
func (p *Planner) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	s := p.stats
	s.EMANorm = p.emaNorm
	return s
}

// Plan maps a broadcast of cur@version to dsts into grouped messages.
// acked carries the last weights version observed on each destination's
// rollouts (may be nil). The returned groups cover every destination
// exactly once.
func (p *Planner) Plan(cur []float32, version int64, dsts []string, acked map[string]int64) []Outbound {
	if len(dsts) == 0 {
		return nil
	}
	if !p.cfg.Enabled {
		p.mu.Lock()
		p.stats.Dense += int64(len(dsts))
		p.mu.Unlock()
		return []Outbound{{
			Type: message.TypeWeights,
			Body: &message.WeightsPayload{Version: version, Data: append([]float32(nil), cur...)},
			Dsts: dsts,
		}}
	}

	p.mu.Lock()
	defer p.mu.Unlock()

	// Restart detection: an acked version moving backwards means the
	// destination was rebuilt and lost its mirror.
	for d, v := range acked {
		if prev, ok := p.prevAcked[d]; ok && v < prev {
			p.stale[d] = true
		}
		if v > p.prevAcked[d] {
			p.prevAcked[d] = v
		}
	}

	recon, chainDelta, _ := p.advanceChain(cur, version)

	var denseDsts []string
	deltaByBase := make(map[int64][]string)
	for _, d := range dsts {
		base, sentBefore := p.lastSent[d]
		_, haveBase := p.ring[base]
		ackedV, haveAck := acked[d]
		switch {
		case p.stale[d] || !sentBefore || !haveBase:
			denseDsts = append(denseDsts, d)
		case haveAck && version-ackedV > p.cfg.StaleGap:
			denseDsts = append(denseDsts, d)
		default:
			deltaByBase[base] = append(deltaByBase[base], d)
		}
	}

	var out []Outbound
	if len(denseDsts) > 0 {
		out = append(out, Outbound{
			Type: message.TypeWeights,
			Body: &message.WeightsPayload{Version: version, Data: append([]float32(nil), recon...)},
			Dsts: denseDsts,
		})
		p.stats.Dense += int64(len(denseDsts))
		for _, d := range denseDsts {
			delete(p.stale, d)
		}
	}
	for base, group := range deltaByBase {
		var body *message.WeightsDeltaPayload
		switch {
		case base == p.prevChainBase(version) && chainDelta != nil:
			body = chainDelta
		case base == version:
			// Warm-up re-broadcast of the current version: pure bump.
			body = &message.WeightsDeltaPayload{Version: version, BaseVersion: base, NumParams: int32(len(recon))}
		default:
			// Straggler base: exact delta onto the canonical target.
			exact, err := serialize.EncodeDelta(p.ring[base], recon, base, version, serialize.QuantNone)
			if err != nil {
				// Shape changed under us — dense is always safe.
				out = append(out, Outbound{
					Type: message.TypeWeights,
					Body: &message.WeightsPayload{Version: version, Data: append([]float32(nil), recon...)},
					Dsts: group,
				})
				p.stats.Dense += int64(len(group))
				continue
			}
			body = exact
		}
		if body.Entries() == 0 {
			p.stats.Empty += int64(len(group))
		} else {
			p.stats.Delta += int64(len(group))
		}
		out = append(out, Outbound{
			Type:        message.TypeWeightsDelta,
			Body:        body,
			BaseVersion: body.BaseVersion,
			Dsts:        group,
		})
	}

	for _, d := range dsts {
		p.lastSent[d] = version
	}
	p.prune(version)
	return out
}

// advanceChain extends the canonical reconstruction chain to version and
// returns the canonical vector, the chain delta from the previous broadcast
// version (nil when this is the first broadcast or shapes changed), and
// whether the adaptive threshold skipped the update.
func (p *Planner) advanceChain(cur []float32, version int64) (recon []float32, chainDelta *message.WeightsDeltaPayload, skipped bool) {
	if r, ok := p.ring[version]; ok && p.lastVer == version {
		// Re-broadcast of an already-planned version (learner warm-up).
		return r, nil, false
	}
	prev, havePrev := p.ring[p.lastVer]
	if !havePrev || len(prev) != len(cur) {
		recon = append([]float32(nil), cur...)
		p.ring[version] = recon
		p.lastVer = version
		return recon, nil, false
	}

	relNorm := serialize.RelDeltaNorm(prev, cur)
	if p.cfg.SkipFactor > 0 && p.emaNorm > 0 && relNorm < p.cfg.SkipFactor*p.emaNorm {
		// Below threshold: canonical weights stay put, version advances.
		recon = prev
		p.ring[version] = recon
		chainDelta = &message.WeightsDeltaPayload{
			Version: version, BaseVersion: p.lastVer, NumParams: int32(len(cur)),
		}
		p.prevChain = p.lastVer
		p.lastVer = version
		return recon, chainDelta, true
	}
	if relNorm > 0 {
		if p.emaNorm == 0 {
			p.emaNorm = relNorm
		} else {
			p.emaNorm = (1-emaAlpha)*p.emaNorm + emaAlpha*relNorm
		}
	}

	d, err := serialize.EncodeDelta(prev, cur, p.lastVer, version, p.cfg.QuantBits)
	if err != nil {
		recon = append([]float32(nil), cur...)
		p.ring[version] = recon
		p.prevChain = p.lastVer
		p.lastVer = version
		return recon, nil, false
	}
	recon, err = serialize.ApplyDelta(prev, d)
	if err != nil {
		recon = append([]float32(nil), cur...)
		d = nil
	}
	p.ring[version] = recon
	p.prevChain = p.lastVer
	p.lastVer = version
	return recon, d, false
}

// prevChainBase returns the base version the chain delta for version was
// encoded against.
func (p *Planner) prevChainBase(version int64) int64 {
	if p.lastVer == version {
		return p.prevChain
	}
	return -1
}

// prune drops ring entries no destination can still need.
func (p *Planner) prune(version int64) {
	needed := map[int64]bool{version: true, p.lastVer: true}
	for _, v := range p.lastSent {
		needed[v] = true
	}
	for v := range p.ring {
		if !needed[v] {
			delete(p.ring, v)
		}
	}
}
