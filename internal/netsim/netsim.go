// Package netsim simulates the multi-machine network of the paper's
// distributed deployments: each machine has one NIC with finite bandwidth
// (default 118.04 MB/s, the paper's measured iperf number for its 1 GbE
// fabric) and a propagation latency.
//
// Transfers carry real byte counts and block the caller for the simulated
// wire time, with contention: concurrent transfers queue on the sender's
// egress NIC and the receiver's ingress NIC exactly like frames on a single
// physical link. A TimeScale factor lets experiments compress wall-clock
// time while preserving relative shapes (all durations divide by the same
// constant).
package netsim

import (
	"fmt"
	"sync"
	"time"
)

// DefaultBandwidth is the paper's measured inter-machine NIC bandwidth.
const DefaultBandwidth = 118.04 * 1024 * 1024 // bytes/second

// DefaultLatency approximates LAN round-trip propagation.
const DefaultLatency = 200 * time.Microsecond

// FaultHook injects per-transfer faults into the simulated network. It is
// implemented by faultinject.Injector; netsim only sees the interface so the
// simulation layer stays dependency-free.
type FaultHook interface {
	// TransferDelay returns extra one-way delay to add to this transfer
	// (0 = no fault). It is called once per Transfer, before sleeping.
	TransferDelay(src, dst, size int) time.Duration
}

// Config parameterizes a simulated network.
type Config struct {
	// Bandwidth is the per-NIC bandwidth in bytes per second.
	Bandwidth float64
	// Latency is the one-way propagation delay.
	Latency time.Duration
	// TimeScale divides all simulated durations (1 = real time; 100 = run
	// 100× faster while preserving ratios). Values < 1 are treated as 1.
	TimeScale float64
	// Fault, when set, injects extra delay per transfer (latency spikes).
	// The injected delay is scaled by TimeScale like every other duration.
	Fault FaultHook
}

// DefaultConfig returns the paper's testbed parameters at real time scale.
func DefaultConfig() Config {
	return Config{Bandwidth: DefaultBandwidth, Latency: DefaultLatency, TimeScale: 1}
}

// nic serializes occupancy of one direction of a machine's network card.
type nic struct {
	mu       sync.Mutex
	nextFree time.Time
	bytes    int64
}

// reserve books dur of exclusive NIC time starting no earlier than now and
// returns the moment the reservation ends.
func (n *nic) reserve(dur time.Duration, size int) time.Time {
	n.mu.Lock()
	defer n.mu.Unlock()
	start := time.Now()
	if n.nextFree.After(start) {
		start = n.nextFree
	}
	end := start.Add(dur)
	n.nextFree = end
	n.bytes += int64(size)
	return end
}

type machine struct {
	egress  nic
	ingress nic
}

// Network is a set of machines joined by a full mesh of NIC-limited paths.
type Network struct {
	cfg Config

	mu       sync.Mutex
	machines map[int]*machine
}

// New returns a network with the given configuration.
func New(cfg Config) *Network {
	if cfg.Bandwidth <= 0 {
		cfg.Bandwidth = DefaultBandwidth
	}
	if cfg.TimeScale < 1 {
		cfg.TimeScale = 1
	}
	return &Network{cfg: cfg, machines: make(map[int]*machine)}
}

func (n *Network) machineFor(id int) *machine {
	n.mu.Lock()
	defer n.mu.Unlock()
	m, ok := n.machines[id]
	if !ok {
		m = &machine{}
		n.machines[id] = m
	}
	return m
}

// Transfer blocks the caller for the simulated time to move size bytes from
// machine src to machine dst. Transfers within one machine are free (they
// go through shared memory, not the NIC).
func (n *Network) Transfer(src, dst, size int) {
	if src == dst || size <= 0 {
		return
	}
	wire := time.Duration(float64(size) / n.cfg.Bandwidth * float64(time.Second) / n.cfg.TimeScale)
	latency := time.Duration(float64(n.cfg.Latency) / n.cfg.TimeScale)
	if n.cfg.Fault != nil {
		if spike := n.cfg.Fault.TransferDelay(src, dst, size); spike > 0 {
			latency += time.Duration(float64(spike) / n.cfg.TimeScale)
		}
	}

	egressEnd := n.machineFor(src).egress.reserve(wire, size)
	// Ingress occupancy starts when bytes begin arriving; approximating the
	// pipeline, book the same duration on the receiving NIC no earlier than
	// the egress reservation.
	ingress := &n.machineFor(dst).ingress
	ingress.mu.Lock()
	start := egressEnd.Add(-wire)
	if ingress.nextFree.After(start) {
		start = ingress.nextFree
	}
	end := start.Add(wire)
	ingress.nextFree = end
	ingress.bytes += int64(size)
	ingress.mu.Unlock()

	deadline := end.Add(latency)
	if d := time.Until(deadline); d > 0 {
		time.Sleep(d)
	}
}

// BytesSent reports total bytes that left machine id over its egress NIC.
func (n *Network) BytesSent(id int) int64 {
	m := n.machineFor(id)
	m.egress.mu.Lock()
	defer m.egress.mu.Unlock()
	return m.egress.bytes
}

// BytesReceived reports total bytes that entered machine id over its
// ingress NIC.
func (n *Network) BytesReceived(id int) int64 {
	m := n.machineFor(id)
	m.ingress.mu.Lock()
	defer m.ingress.mu.Unlock()
	return m.ingress.bytes
}

// String describes the network configuration.
func (n *Network) String() string {
	return fmt.Sprintf("netsim(bw=%.1fMB/s latency=%v scale=%.0fx)",
		n.cfg.Bandwidth/(1024*1024), n.cfg.Latency, n.cfg.TimeScale)
}
