package netsim

import (
	"sync"
	"testing"
	"time"
)

// testNet returns a fast network: 1 MB per 10ms (100 MB/s) scaled 1×,
// with negligible latency, so tests stay quick but measurable.
func testNet() *Network {
	return New(Config{Bandwidth: 100 * 1024 * 1024, Latency: 0, TimeScale: 1})
}

func TestIntraMachineFree(t *testing.T) {
	n := testNet()
	start := time.Now()
	n.Transfer(1, 1, 64<<20)
	if d := time.Since(start); d > 5*time.Millisecond {
		t.Fatalf("intra-machine transfer took %v, want ~0", d)
	}
	if n.BytesSent(1) != 0 {
		t.Fatal("intra-machine transfer counted NIC bytes")
	}
}

func TestTransferTakesWireTime(t *testing.T) {
	n := testNet()
	start := time.Now()
	n.Transfer(1, 2, 10<<20) // 10 MB at 100 MB/s = 100 ms
	d := time.Since(start)
	if d < 80*time.Millisecond || d > 400*time.Millisecond {
		t.Fatalf("10MB transfer took %v, want ≈100ms", d)
	}
}

func TestByteAccounting(t *testing.T) {
	n := testNet()
	n.Transfer(1, 2, 1000)
	n.Transfer(1, 3, 500)
	n.Transfer(3, 2, 200)
	if got := n.BytesSent(1); got != 1500 {
		t.Fatalf("BytesSent(1) = %d, want 1500", got)
	}
	if got := n.BytesReceived(2); got != 1200 {
		t.Fatalf("BytesReceived(2) = %d, want 1200", got)
	}
	if got := n.BytesSent(2); got != 0 {
		t.Fatalf("BytesSent(2) = %d, want 0", got)
	}
}

func TestContentionSerializesEgress(t *testing.T) {
	n := testNet()
	const transfers = 4
	const size = 2 << 20 // 2 MB each = 20 ms each at 100MB/s
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < transfers; i++ {
		wg.Add(1)
		go func(dst int) {
			defer wg.Done()
			n.Transfer(1, 2+dst, size)
		}(i)
	}
	wg.Wait()
	d := time.Since(start)
	// Four 20ms transfers sharing one egress NIC must take ≈80ms, not 20ms.
	if d < 60*time.Millisecond {
		t.Fatalf("4 concurrent transfers finished in %v; egress NIC not serializing", d)
	}
}

func TestIngressContention(t *testing.T) {
	n := testNet()
	const size = 2 << 20
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(src int) {
			defer wg.Done()
			n.Transfer(2+src, 1, size) // four distinct senders, one receiver
		}(i)
	}
	wg.Wait()
	d := time.Since(start)
	if d < 60*time.Millisecond {
		t.Fatalf("4 senders into one machine finished in %v; ingress NIC not serializing", d)
	}
}

func TestTimeScaleCompressesDurations(t *testing.T) {
	slow := New(Config{Bandwidth: 10 * 1024 * 1024, Latency: 0, TimeScale: 1})
	fast := New(Config{Bandwidth: 10 * 1024 * 1024, Latency: 0, TimeScale: 50})
	size := 2 << 20 // 200 ms at 10 MB/s

	start := time.Now()
	fast.Transfer(1, 2, size)
	fastD := time.Since(start)

	start = time.Now()
	slow.Transfer(1, 2, size)
	slowD := time.Since(start)

	if fastD*10 > slowD {
		t.Fatalf("timescale 50 took %v vs real %v; want ≥10x compression", fastD, slowD)
	}
}

func TestLatencyApplied(t *testing.T) {
	n := New(Config{Bandwidth: 1 << 40, Latency: 50 * time.Millisecond, TimeScale: 1})
	start := time.Now()
	n.Transfer(1, 2, 10)
	if d := time.Since(start); d < 40*time.Millisecond {
		t.Fatalf("transfer with 50ms latency took %v", d)
	}
}

func TestZeroSizeNoop(t *testing.T) {
	n := testNet()
	start := time.Now()
	n.Transfer(1, 2, 0)
	n.Transfer(1, 2, -5)
	if d := time.Since(start); d > 5*time.Millisecond {
		t.Fatalf("zero-size transfers took %v", d)
	}
}

func TestDefaultsApplied(t *testing.T) {
	n := New(Config{})
	if n.cfg.Bandwidth != DefaultBandwidth {
		t.Fatalf("default bandwidth = %v", n.cfg.Bandwidth)
	}
	if n.cfg.TimeScale != 1 {
		t.Fatalf("default timescale = %v", n.cfg.TimeScale)
	}
	if got := n.String(); got == "" {
		t.Fatal("String() empty")
	}
}
