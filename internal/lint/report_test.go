package lint

import (
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func bf(file string, line int, analyzer, message string) Finding {
	return Finding{
		Pos:      token.Position{Filename: file, Line: line},
		Analyzer: analyzer,
		Message:  message,
	}
}

// TestBaselineRoundTrip: a -json report written to disk works as a baseline
// file, matching by (file, analyzer, message) with multiset semantics and
// ignoring line numbers.
func TestBaselineRoundTrip(t *testing.T) {
	rep := &Report{
		Version: SuiteVersion,
		Findings: []Finding{
			bf("pkg/a.go", 10, "lockhold", "blocking time.Sleep while holding s.mu (locked at line 9)"),
			bf("pkg/b.go", 20, "refbalance", "objectstore Get(id) is not released on the path to the return (line 25); release it or mark the hand-off with //lint:owns"),
			bf("pkg/b.go", 30, "refbalance", "objectstore Get(id) is not released on the path to the return (line 25); release it or mark the hand-off with //lint:owns"),
		},
	}
	data, err := rep.MarshalIndentJSON()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	base, err := LoadBaseline(path)
	if err != nil {
		t.Fatalf("LoadBaseline: %v", err)
	}

	current := []Finding{
		// Same finding, shifted line: still baselined.
		bf("pkg/a.go", 14, "lockhold", "blocking time.Sleep while holding s.mu (locked at line 9)"),
		// Two baselined instances plus one NEW third instance: the multiset
		// absorbs two, the third survives.
		bf("pkg/b.go", 20, "refbalance", "objectstore Get(id) is not released on the path to the return (line 25); release it or mark the hand-off with //lint:owns"),
		bf("pkg/b.go", 30, "refbalance", "objectstore Get(id) is not released on the path to the return (line 25); release it or mark the hand-off with //lint:owns"),
		bf("pkg/b.go", 40, "refbalance", "objectstore Get(id) is not released on the path to the return (line 25); release it or mark the hand-off with //lint:owns"),
		// Different analyzer on a baselined line: new.
		bf("pkg/a.go", 10, "headershare", "header h escapes into a goroutine"),
	}
	left := ApplyBaseline(current, base)
	if len(left) != 2 {
		t.Fatalf("ApplyBaseline left %d findings, want 2: %v", len(left), left)
	}
	if left[0].Pos.Line != 40 || left[0].Analyzer != "refbalance" {
		t.Errorf("surviving finding 0 = %s, want the third refbalance instance", left[0])
	}
	if left[1].Analyzer != "headershare" {
		t.Errorf("surviving finding 1 = %s, want the headershare finding", left[1])
	}
}

// TestBaselineBareArray: a plain JSON findings array (no report wrapper) is
// accepted as a baseline.
func TestBaselineBareArray(t *testing.T) {
	path := filepath.Join(t.TempDir(), "base.json")
	content := `[{"pos":{"Filename":"x.go","Line":3},"analyzer":"goleak","message":"m"}]`
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	base, err := LoadBaseline(path)
	if err != nil {
		t.Fatalf("LoadBaseline: %v", err)
	}
	left := ApplyBaseline([]Finding{bf("x.go", 99, "goleak", "m")}, base)
	if len(left) != 0 {
		t.Errorf("bare-array baseline did not absorb the finding: %v", left)
	}
}

// TestRelativizeFindings rewrites in-module absolute paths and leaves
// foreign ones alone.
func TestRelativizeFindings(t *testing.T) {
	root := string(filepath.Separator) + filepath.Join("home", "dev", "mod")
	fs := []Finding{
		bf(filepath.Join(root, "pkg", "a.go"), 1, "lockhold", "m"),
		bf(string(filepath.Separator)+filepath.Join("usr", "lib", "other.go"), 2, "lockhold", "m"),
	}
	RelativizeFindings(fs, root)
	if want := filepath.Join("pkg", "a.go"); fs[0].Pos.Filename != want {
		t.Errorf("relativized path = %q, want %q", fs[0].Pos.Filename, want)
	}
	if want := string(filepath.Separator) + filepath.Join("usr", "lib", "other.go"); fs[1].Pos.Filename != want {
		t.Errorf("foreign path = %q, want %q (untouched)", fs[1].Pos.Filename, want)
	}
}

// TestReportJSONShape pins the field names CI's jq queries depend on.
func TestReportJSONShape(t *testing.T) {
	rep := &Report{Version: SuiteVersion, ElapsedMS: 42, Packages: 3, CacheHits: 2, CacheMisses: 1}
	data, err := rep.MarshalIndentJSON()
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"version"`, `"elapsed_ms"`, `"packages"`, `"cache_hits"`, `"cache_misses"`, `"findings": []`} {
		if !strings.Contains(string(data), key) {
			t.Errorf("report JSON missing %s:\n%s", key, data)
		}
	}
}
