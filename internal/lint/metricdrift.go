package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// metricdrift keeps the health counters honest. A counter that exists but
// is never incremented, or is incremented but never surfaced, lies to every
// dashboard reading it — and both failure modes have historically appeared
// exactly when a new drop reason or wire fault was added. Four rules:
//
//  1. taxonomy totals: every integer field of a struct with a Total()
//     method is summed inside Total() — a drop reason cannot be invisible
//     to the aggregate the tests assert on.
//  2. taxonomy feed: every such field is also written somewhere in the
//     module — a reason nothing ever increments is dead weight or a
//     forgotten wiring.
//  3. counter rot: every sync/atomic counter field of a struct in the
//     broker or fabric packages is both mutated (Add/Store/Swap/CAS) and
//     observed (Load) somewhere in the module.
//  4. snapshot parity: a conversion method on a *Metrics-named struct that
//     returns another struct as a single composite literal must consume
//     every integer field of its receiver — a counter silently dropped in
//     the conversion (fabric.Metrics → broker.WireMetrics) vanishes from
//     cluster health while still costing an atomic on the hot path.
//
// Rules 1 and 4 are per-package (the Total method and the conversion body
// live with the struct); rules 2 and 3 need the module-wide field-use index
// carried by PkgFacts, so they run as a module analyzer and work across the
// summary cache.

// TaxonomyField is one integer field of a Total()-bearing struct.
type TaxonomyField struct {
	// Struct is the owning type as pkg.Name.
	Struct string `json:"struct"`
	// Field is the field name.
	Field string `json:"field"`
	// Pos is the field declaration site.
	Pos token.Position `json:"pos"`
	// InTotal records whether Total() reads the field.
	InTotal bool `json:"in_total"`
}

// CounterField is one atomic (rule 3) or plain metric (reserved) counter
// field of a broker/fabric struct.
type CounterField struct {
	Struct string         `json:"struct"`
	Field  string         `json:"field"`
	Pos    token.Position `json:"pos"`
}

// FieldUse aggregates how one pkg.Struct.Field is touched in one package.
type FieldUse struct {
	// Field is the pkg.Struct.Field key.
	Field string `json:"field"`
	// Writes counts plain assignments, composite-literal bindings, and
	// atomic mutations (Add/Store/Swap/CompareAndSwap).
	Writes int `json:"writes,omitempty"`
	// Reads counts plain reads and atomic Loads.
	Reads int `json:"reads,omitempty"`
}

// metricPackages are the packages whose counter structs rules 2–4 govern.
// Identified by package name, structurally, like every other project-type
// match in the suite.
func isMetricPackage(name string) bool {
	return name == "broker" || name == "fabric"
}

// ---------------------------------------------------------------------------
// Collection (fresh passes).

// collectMetricFacts fills f with the package's taxonomy fields, atomic
// counter fields, and field-use index.
func collectMetricFacts(p *Pass, f *PkgFacts) {
	collectTaxonomies(p, f)
	collectCounters(p, f)
	collectFieldUses(p, f)
}

// collectTaxonomies finds structs with a Total() method and records every
// integer field, marking the ones Total() reads.
func collectTaxonomies(p *Pass, f *PkgFacts) {
	// First index the Total() methods by receiver type name.
	totals := make(map[string]*ast.FuncDecl)
	for _, file := range p.Files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Name.Name != "Total" || fd.Recv == nil || fd.Body == nil {
				continue
			}
			obj, ok := p.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			if named := derefNamed(recvOfMethod(obj)); named != nil {
				totals[named.Obj().Name()] = fd
			}
		}
	}
	if len(totals) == 0 {
		return
	}
	for _, file := range p.Files {
		for _, d := range file.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				td, ok := totals[ts.Name.Name]
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				read := fieldsReadIn(p, td.Body, ts.Name.Name)
				structKey := p.Pkg.Name() + "." + ts.Name.Name
				for _, fieldName := range intFieldNames(p, st) {
					f.Taxonomies = append(f.Taxonomies, TaxonomyField{
						Struct:  structKey,
						Field:   fieldName.Name,
						Pos:     p.position(fieldName.Pos()),
						InTotal: read[fieldName.Name],
					})
				}
			}
		}
	}
}

// collectCounters records every sync/atomic integer field of every struct
// declared in a metric package (broker, fabric).
func collectCounters(p *Pass, f *PkgFacts) {
	if !isMetricPackage(p.Pkg.Name()) {
		return
	}
	for _, file := range p.Files {
		for _, d := range file.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				structKey := p.Pkg.Name() + "." + ts.Name.Name
				for _, field := range st.Fields.List {
					tv, ok := p.Info.Types[field.Type]
					if !ok || !isAtomicCounterType(tv.Type) {
						continue
					}
					for _, name := range field.Names {
						f.Counters = append(f.Counters, CounterField{
							Struct: structKey,
							Field:  name.Name,
							Pos:    p.position(name.Pos()),
						})
					}
				}
			}
		}
	}
}

// isAtomicCounterType matches sync/atomic's integer counter types.
func isAtomicCounterType(t types.Type) bool {
	return isNamedType(t, "atomic", "Int64") || isNamedType(t, "atomic", "Uint64") ||
		isNamedType(t, "atomic", "Int32") || isNamedType(t, "atomic", "Uint32")
}

// intFieldNames returns the named integer-kind fields of a struct literal
// type (embedded and non-integer fields skipped).
func intFieldNames(p *Pass, st *ast.StructType) []*ast.Ident {
	var out []*ast.Ident
	for _, field := range st.Fields.List {
		tv, ok := p.Info.Types[field.Type]
		if !ok || !isIntegerKind(tv.Type) {
			continue
		}
		out = append(out, field.Names...)
	}
	return out
}

func isIntegerKind(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

// fieldsReadIn collects the field names of the named struct read anywhere
// in body (selector expressions resolving to its fields).
func fieldsReadIn(p *Pass, body *ast.BlockStmt, typeName string) map[string]bool {
	read := make(map[string]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		s, ok := p.Info.Selections[sel]
		if !ok || s.Kind() != types.FieldVal {
			return true
		}
		if named := derefNamed(s.Recv()); named != nil && named.Obj().Name() == typeName {
			read[sel.Sel.Name] = true
		}
		return true
	})
	return read
}

// collectFieldUses walks the whole package recording reads and writes of
// struct fields, keyed pkg.Struct.Field. Only fields of types the module
// rules could care about are worth indexing, but filtering here would
// couple collection to the rule set; the index stays small in practice.
func collectFieldUses(p *Pass, f *PkgFacts) {
	uses := make(map[string]*FieldUse)
	use := func(key string) *FieldUse {
		u, ok := uses[key]
		if !ok {
			u = &FieldUse{Field: key}
			uses[key] = u
		}
		return u
	}

	// fieldKeyOf resolves a selector to its pkg.Struct.Field key, or "".
	fieldKeyOf := func(sel *ast.SelectorExpr) string {
		s, ok := p.Info.Selections[sel]
		if !ok || s.Kind() != types.FieldVal {
			return ""
		}
		named := derefNamed(s.Recv())
		if named == nil || named.Obj().Pkg() == nil {
			return ""
		}
		return named.Obj().Pkg().Name() + "." + named.Obj().Name() + "." + sel.Sel.Name
	}

	for _, file := range p.Files {
		// Mark assignment targets so the generic selector walk below can
		// classify them as writes, and atomic-call receivers so it does not
		// double-count them as plain reads.
		writes := make(map[*ast.SelectorExpr]bool)
		atomicRecv := make(map[*ast.SelectorExpr]bool)
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					if sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr); ok {
						writes[sel] = true
					}
				}
			case *ast.IncDecStmt:
				if sel, ok := ast.Unparen(n.X).(*ast.SelectorExpr); ok {
					writes[sel] = true
				}
			case *ast.CompositeLit:
				tv, ok := p.Info.Types[n]
				if !ok {
					return true
				}
				named := derefNamed(tv.Type)
				if named == nil || named.Obj().Pkg() == nil {
					return true
				}
				if _, ok := named.Underlying().(*types.Struct); !ok {
					return true
				}
				structKey := named.Obj().Pkg().Name() + "." + named.Obj().Name()
				for _, elt := range n.Elts {
					if kv, ok := elt.(*ast.KeyValueExpr); ok {
						if id, ok := kv.Key.(*ast.Ident); ok {
							use(structKey+"."+id.Name).Writes++
						}
					}
				}
			case *ast.CallExpr:
				// Atomic mutations and loads: c.field.Add(1) etc.
				f := calleeFunc(p.Info, n)
				if f == nil || f.Pkg() == nil || f.Pkg().Name() != "atomic" {
					return true
				}
				sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr)
				if !ok {
					return true
				}
				recv, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
				if !ok {
					return true
				}
				key := fieldKeyOf(recv)
				if key == "" {
					return true
				}
				switch f.Name() {
				case "Add", "Store", "Swap", "CompareAndSwap":
					atomicRecv[recv] = true
					use(key).Writes++
				case "Load":
					atomicRecv[recv] = true
					use(key).Reads++
				}
			}
			return true
		})
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if atomicRecv[sel] {
				return true // already classified by the atomic-call handler
			}
			key := fieldKeyOf(sel)
			if key == "" {
				return true
			}
			if writes[sel] {
				use(key).Writes++
			} else {
				use(key).Reads++
			}
			return true
		})
	}

	keys := make([]string, 0, len(uses))
	for k := range uses {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		f.FieldUses = append(f.FieldUses, *uses[k])
	}
}

// ---------------------------------------------------------------------------
// Per-package rule: snapshot parity.

// runMetricdriftPkg checks rule 4 on one package: a method on a
// *Metrics-named struct whose body is `return T{...}` must read every
// integer field of its receiver inside the literal.
func runMetricdriftPkg(p *Pass) {
	for _, file := range p.Files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil || len(fd.Body.List) == 0 {
				continue
			}
			obj, ok := p.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			recv := derefNamed(recvOfMethod(obj))
			if recv == nil || !strings.Contains(recv.Obj().Name(), "Metrics") {
				continue
			}
			ret, ok := fd.Body.List[len(fd.Body.List)-1].(*ast.ReturnStmt)
			if !ok || len(ret.Results) != 1 {
				continue
			}
			lit, ok := ast.Unparen(ret.Results[0]).(*ast.CompositeLit)
			if !ok {
				continue
			}
			tv, ok := p.Info.Types[lit]
			if !ok {
				continue
			}
			target := derefNamed(tv.Type)
			if target == nil {
				continue
			}
			if _, ok := target.Underlying().(*types.Struct); !ok {
				continue
			}
			checkSnapshotParity(p, fd, lit, recv, target)
		}
	}
}

// checkSnapshotParity reports receiver counter fields the conversion
// literal never reads.
func checkSnapshotParity(p *Pass, fd *ast.FuncDecl, lit *ast.CompositeLit, recv, target *types.Named) {
	st, ok := recv.Underlying().(*types.Struct)
	if !ok {
		return
	}
	read := make(map[string]bool)
	ast.Inspect(lit, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		s, ok := p.Info.Selections[sel]
		if !ok || s.Kind() != types.FieldVal {
			return true
		}
		if named := derefNamed(s.Recv()); named != nil && named.Obj() == recv.Obj() {
			read[sel.Sel.Name] = true
		}
		return true
	})
	// Only flag conversions that clearly carry counters across: require
	// that most receiver fields are already consumed, so constructors that
	// merely mention a Metrics type stay out of scope.
	total, consumed := 0, 0
	var missing []string
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if f.Embedded() || !isIntegerKind(f.Type()) {
			continue
		}
		total++
		if read[f.Name()] {
			consumed++
		} else {
			missing = append(missing, f.Name())
		}
	}
	if total == 0 || consumed*2 <= total || len(missing) == 0 {
		return
	}
	p.Reportf(fd.Name.Pos(), "metrics conversion %s.%s → %s drops counter field(s) %s; carry them across or drop them from %s",
		recv.Obj().Name(), fd.Name.Name, target.Obj().Name(), strings.Join(missing, ", "), recv.Obj().Name())
}

// ---------------------------------------------------------------------------
// Module rules: taxonomy totals/feed and counter rot.

// runMetricdrift applies rules 1–3 over the merged facts of every package.
func runMetricdrift(m *Module) {
	reads := make(map[string]int)
	writes := make(map[string]int)
	var taxonomies []TaxonomyField
	var counters []CounterField
	collect := func(f *PkgFacts) {
		for _, u := range f.FieldUses {
			reads[u.Field] += u.Reads
			writes[u.Field] += u.Writes
		}
		taxonomies = append(taxonomies, f.Taxonomies...)
		counters = append(counters, f.Counters...)
	}
	for _, p := range m.Passes {
		collect(p.facts)
	}
	for _, f := range m.facts {
		collect(f)
	}

	sort.Slice(taxonomies, func(i, j int) bool { return posBefore(taxonomies[i].Pos, taxonomies[j].Pos) })
	sort.Slice(counters, func(i, j int) bool { return posBefore(counters[i].Pos, counters[j].Pos) })

	for _, t := range taxonomies {
		key := t.Struct + "." + t.Field
		if !t.InTotal {
			m.reportf(t.Pos, "taxonomy field %s is not summed in %s.Total(); every reason must be visible in the aggregate", key, t.Struct)
		}
		if writes[key] == 0 {
			m.reportf(t.Pos, "taxonomy field %s is never written anywhere in the module; wire it up or remove the reason", key)
		}
	}
	for _, c := range counters {
		key := c.Struct + "." + c.Field
		switch {
		case writes[key] == 0:
			m.reportf(c.Pos, "atomic counter %s is never incremented anywhere in the module; it reports a permanent zero", key)
		case reads[key] == 0:
			m.reportf(c.Pos, "atomic counter %s is incremented but never read anywhere in the module; surface it in a metrics snapshot or remove it", key)
		}
	}
}
