package lint

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestDriverEndToEnd exercises the go-list/export-data pipeline on a scratch
// module: Load must type-check against real stdlib export data and the suite
// must surface a seeded lockhold violation. Skipped when the go tool is
// unavailable (the golden tests above cover the analyzers hermetically).
func TestDriverEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping go-tool integration test in -short mode")
	}
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go tool not on PATH")
	}

	dir := t.TempDir()
	write := func(name, content string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module scratchlint\n\ngo 1.22\n")
	write("a.go", `package a

import (
	"sync"
	"time"
)

type S struct{ mu sync.Mutex }

func (s *S) Bad() {
	s.mu.Lock()
	time.Sleep(time.Millisecond)
	s.mu.Unlock()
}

func (s *S) Good() {
	s.mu.Lock()
	s.mu.Unlock()
	time.Sleep(time.Millisecond)
}
`)

	passes, err := Load(dir, []string{"./..."})
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(passes) != 1 {
		t.Fatalf("Load returned %d passes, want 1", len(passes))
	}
	findings := Run(passes)
	if len(findings) != 1 {
		t.Fatalf("Run returned %d findings, want 1: %v", len(findings), findings)
	}
	f := findings[0]
	if f.Analyzer != "lockhold" || f.Pos.Line != 12 || !strings.Contains(f.Message, "time.Sleep") {
		t.Errorf("unexpected finding: %s", f)
	}
}
