package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// runHeadershare enforces the per-destination header-copy rule: a
// *message.Header must never be shared across destinations. Two shapes are
// checked:
//
//  1. Inside a loop, a header pointer handed to a queue Put/TryPut or a
//     channel send must point at a variable declared inside that loop body
//     (a fresh per-destination copy). Pushing the loop-invariant header
//     gives every receiver the same mutable struct.
//  2. A `go func` literal must not capture a *message.Header variable
//     declared outside the literal — the goroutine would alias header state
//     with the spawning thread.
func runHeadershare(p *Pass) {
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ForStmt:
				hsCheckLoopBody(p, n.Body)
			case *ast.RangeStmt:
				hsCheckLoopBody(p, n.Body)
			case *ast.GoStmt:
				if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
					hsCheckGoCapture(p, lit)
				}
			}
			return true
		})
	}
}

// hsCheckLoopBody flags header pointers escaping into queue sends from
// inside a loop unless they point at loop-local storage. Nested loops are
// visited again by the outer Inspect; to attribute each send to its
// innermost loop, sends inside a nested loop are skipped here.
func hsCheckLoopBody(p *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ForStmt, *ast.RangeStmt, *ast.FuncLit:
			return false // handled on their own visit
		case *ast.CallExpr:
			f := calleeFunc(p.Info, n)
			if isMethodOn(f, "queue", "Queue", "Put", "TryPut") {
				for _, arg := range n.Args {
					hsCheckEscape(p, arg, body, "queue "+f.Name())
				}
			}
		case *ast.SendStmt:
			hsCheckEscape(p, n.Value, body, "channel send")
		}
		return true
	})
}

// hsCheckEscape walks arg for *message.Header-typed subexpressions used as
// values (composite-literal fields, call arguments, the sent value itself)
// and reports those not rooted in a variable declared inside body. Reading a
// field *through* a header (h.ObjectID) does not share the header, so bases
// of selector expressions are not considered escapes.
func hsCheckEscape(p *Pass, arg ast.Expr, body *ast.BlockStmt, sink string) {
	var visit func(e ast.Expr)
	visit = func(e ast.Expr) {
		e = ast.Unparen(e)
		if e == nil {
			return
		}
		if isHeaderPointer(p, e) {
			if !hsIsSafe(p, e, body.Pos(), body.End()) {
				p.Reportf(e.Pos(),
					"*message.Header %s is pushed to a %s inside a loop; give each destination its own copy (hc := *h)",
					exprString(e), sink)
			}
			return
		}
		switch e := e.(type) {
		case *ast.CompositeLit:
			for _, elt := range e.Elts {
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					visit(kv.Value)
				} else {
					visit(elt)
				}
			}
		case *ast.CallExpr:
			for _, a := range e.Args {
				visit(a)
			}
		case *ast.UnaryExpr:
			visit(e.X)
		case *ast.StarExpr:
			visit(e.X)
		case *ast.SelectorExpr:
			// Field read through a header: the header itself does not escape.
		}
	}
	visit(arg)
}

// isHeaderPointer reports whether e's type is *message.Header.
func isHeaderPointer(p *Pass, e ast.Expr) bool {
	tv, ok := p.Info.Types[e]
	if !ok {
		return false
	}
	ptr, ok := tv.Type.(*types.Pointer)
	if !ok {
		return false
	}
	return isNamedType(ptr.Elem(), "message", "Header")
}

// hsIsSafe reports whether header pointer e is a fresh per-destination
// value: the address of a variable or composite literal created inside the
// loop body [lo,hi], a pointer variable declared inside it, or the result of
// a call (a constructor returning a fresh header).
func hsIsSafe(p *Pass, e ast.Expr, lo, hi token.Pos) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.UnaryExpr:
		if e.Op != token.AND {
			return false
		}
		switch x := ast.Unparen(e.X).(type) {
		case *ast.Ident:
			return isLocalObj(p, x, lo, hi)
		case *ast.CompositeLit:
			return true // &message.Header{...}: fresh storage
		}
		return false
	case *ast.Ident:
		return isLocalObj(p, e, lo, hi)
	case *ast.CallExpr:
		return true // constructor result: fresh header per call
	}
	return false
}

func isLocalObj(p *Pass, id *ast.Ident, lo, hi token.Pos) bool {
	obj := p.Info.ObjectOf(id)
	return obj != nil && obj.Pos() >= lo && obj.Pos() <= hi
}

// hsCheckGoCapture flags free *message.Header variables referenced by a
// goroutine literal.
func hsCheckGoCapture(p *Pass, lit *ast.FuncLit) {
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if inner, ok := n.(*ast.FuncLit); ok && inner != lit {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := p.Info.Uses[id]
		if obj == nil {
			return true
		}
		v, ok := obj.(*types.Var)
		if !ok || v.IsField() {
			return true // a field selection reads through its base, not a capture
		}
		if v.Pos() >= lit.Pos() && v.Pos() <= lit.End() {
			return true // declared inside the literal (params included)
		}
		if ptr, ok := v.Type().(*types.Pointer); ok && isNamedType(ptr.Elem(), "message", "Header") {
			p.Reportf(id.Pos(),
				"goroutine captures *message.Header %s from the enclosing function; pass a copy instead",
				id.Name)
		}
		return true
	})
}
