package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strconv"
)

// FuncSummary is the interprocedural contract of one function, as observed
// by the summary collector. It captures exactly the facts the module
// analyzers consume:
//
//   - ReleasesParams / FreesParams: parameter indices whose object-store
//     reference (resp. pooled buffer) the function releases on every exit
//     path. refbalance uses these to see a Get in one function matched by a
//     Release inside a callee, possibly in another package.
//   - Acquires / LockEdges / Calls: the function's direct lock behaviour —
//     which lock classes it takes, which it takes while already holding
//     another (a direct ordering edge), and which functions it calls with
//     locks held. lockorder closes these over the call graph to find
//     module-wide ordering cycles.
//
// The whole struct is JSON-serializable (positions are token.Position) so
// the summary cache can persist it per package.
type FuncSummary struct {
	// Key is the module-unique function name (see funcKey).
	Key string `json:"key"`
	// ReleasesParams lists parameter indices released on all exit paths.
	ReleasesParams []int `json:"releases_params,omitempty"`
	// FreesParams lists []byte parameter indices freed (serialize.FreeBuf)
	// on all exit paths.
	FreesParams []int `json:"frees_params,omitempty"`
	// Acquires are the lock classes this function locks directly.
	Acquires []LockSite `json:"acquires,omitempty"`
	// LockEdges are direct nested acquisitions: To locked while From held.
	LockEdges []LockEdge `json:"lock_edges,omitempty"`
	// Calls are resolved call sites, with the lock classes held at each.
	Calls []LockCall `json:"calls,omitempty"`
}

// LockSite is one direct lock acquisition.
type LockSite struct {
	// Class identifies the lock (pkg.Type.field for mutex fields,
	// pkg.var for package-level mutexes, pkg.func.var for locals).
	Class string `json:"class"`
	// Pos is where the Lock call appears.
	Pos token.Position `json:"pos"`
}

// LockEdge is a direct ordering constraint: To was locked at Pos while From
// was already held in the same function.
type LockEdge struct {
	From string         `json:"from"`
	To   string         `json:"to"`
	Pos  token.Position `json:"pos"`
}

// LockCall is a resolved call site annotated with the lock classes held
// when it executes. Calls with no locks held still matter: they are the
// call-graph edges the transitive acquire closure walks through.
type LockCall struct {
	// Callee is the funcKey of the invoked function.
	Callee string `json:"callee"`
	// Held are the lock classes held at the call, sorted.
	Held []string `json:"held,omitempty"`
	// Pos is the call position.
	Pos token.Position `json:"pos"`
}

// releasesParam reports whether the summary releases (buf=false) or frees
// (buf=true) parameter index i on all paths.
func (s *FuncSummary) releasesParam(i int, buf bool) bool {
	if s == nil {
		return false
	}
	list := s.ReleasesParams
	if buf {
		list = s.FreesParams
	}
	for _, p := range list {
		if p == i {
			return true
		}
	}
	return false
}

// ---------------------------------------------------------------------------
// Summary collection.

// collectSummaries builds the summary skeleton for every named function in
// the package: the lock behaviour is final; ReleasesParams/FreesParams are
// filled in by fixpointReleases once every package's skeleton exists.
func collectSummaries(p *Pass) []*FuncSummary {
	var out []*FuncSummary
	for _, file := range p.Files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			key := declKey(p, fd)
			if key == "" {
				continue
			}
			s := &FuncSummary{Key: key}
			lw := &lockWalker{p: p, sum: s, owner: key}
			lw.walkStmts(fd.Body.List, map[string]token.Pos{})
			out = append(out, s)
			out = append(out, lw.anon...)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// fixpointReleases computes ReleasesParams/FreesParams for every fresh
// function until no summary changes. The relation is monotone — recognizing
// a callee as releasing can only make more callers balanced — so iteration
// terminates; the bound guards against pathology.
func fixpointReleases(m *Module) {
	for iter := 0; iter < 32; iter++ {
		changed := false
		for _, p := range m.Passes {
			for _, file := range p.Files {
				for _, d := range file.Decls {
					fd, ok := d.(*ast.FuncDecl)
					if !ok || fd.Body == nil {
						continue
					}
					key := declKey(p, fd)
					sum := m.sums[key]
					if sum == nil {
						continue
					}
					rel, frees := releasedParams(p, fd)
					if !equalInts(rel, sum.ReleasesParams) || !equalInts(frees, sum.FreesParams) {
						sum.ReleasesParams, sum.FreesParams = rel, frees
						changed = true
					}
				}
			}
		}
		if !changed {
			return
		}
	}
}

// releasedParams runs the refbalance path analysis with each named parameter
// treated as a pseudo-acquire held from the top of the body, and returns the
// indices that are released (resp. FreeBuf-freed) on every exit path.
// Variadic parameters are skipped: a caller's argument index does not map
// one-to-one onto them.
func releasedParams(p *Pass, fd *ast.FuncDecl) (rel, frees []int) {
	params := fd.Type.Params
	if params == nil || len(params.List) == 0 {
		return nil, nil
	}
	rb := &rbScope{p: p}
	rb.walkStmts(fd.Body.List, token.NoPos, false)
	if len(rb.releases) == 0 {
		return nil, nil
	}
	variadic := false
	if sig, ok := p.Info.Defs[fd.Name].(*types.Func); ok {
		if s, ok := sig.Type().(*types.Signature); ok {
			variadic = s.Variadic()
		}
	}
	total := params.NumFields()
	implicitEnd := rb.implicitExit(fd.Body)
	idx := 0
	for _, field := range params.List {
		if len(field.Names) == 0 {
			idx++ // unnamed parameter cannot be released
			continue
		}
		for _, name := range field.Names {
			i := idx
			idx++
			if name.Name == "_" || (variadic && i == total-1) {
				continue
			}
			for _, buf := range []bool{false, true} {
				a := rbAcquire{pos: fd.Body.Pos(), effPos: fd.Body.Pos(), id: name.Name, buf: buf}
				if rb.balanced(a, implicitEnd) {
					if buf {
						frees = append(frees, i)
					} else {
						rel = append(rel, i)
					}
				}
			}
		}
	}
	return rel, frees
}

// balanced reports whether acquire a is matched on every exit path — the
// non-reporting core of rbScope.check.
func (rb *rbScope) balanced(a rbAcquire, implicitEnd token.Pos) bool {
	if rb.deferredReleaseFor(a) {
		return true
	}
	exits := rb.exitsFor(a, implicitEnd)
	if len(exits) == 0 {
		// No reachable exit (infinite loop): nothing ever leaves with the
		// reference, but nothing provably releases it either.
		return false
	}
	released := false
	for _, exit := range exits {
		if !rb.releasedBetween(a, exit.pos) {
			return false
		}
		released = true
	}
	return released
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// ---------------------------------------------------------------------------
// Lock-behaviour walker.
//
// lockWalker mirrors lockhold's lexical, per-branch traversal, but instead
// of flagging blocking calls it records the function's locking facts into
// its FuncSummary: direct acquisitions (with their lock class), direct
// nested acquisitions (ordering edges), and every resolved call with the
// classes held at that moment. Goroutine and deferred function literals run
// in their own lock context, so they become separate anonymous summaries —
// their internal edges still count module-wide, but their acquisitions must
// not leak into the spawning function's transitive acquire set.

type lockWalker struct {
	p     *Pass
	sum   *FuncSummary
	owner string         // funcKey of the enclosing declaration, for local-lock classes
	anon  []*FuncSummary // summaries of goroutine/defer literals
}

func (lw *lockWalker) walkStmts(list []ast.Stmt, held map[string]token.Pos) {
	for _, s := range list {
		lw.walkStmt(s, held)
	}
}

func cloneHeld(h map[string]token.Pos) map[string]token.Pos {
	c := make(map[string]token.Pos, len(h))
	for k, v := range h {
		c[k] = v
	}
	return c
}

func (lw *lockWalker) walkStmt(s ast.Stmt, held map[string]token.Pos) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		lw.walkExpr(s.X, held)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			lw.walkExpr(e, held)
		}
		for _, e := range s.Lhs {
			lw.walkExpr(e, held)
		}
	case *ast.DeclStmt:
		lw.walkExpr(s, held)
	case *ast.DeferStmt:
		for _, a := range s.Call.Args {
			lw.walkExpr(a, held)
		}
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			lw.anonScope(lit)
			return
		}
		// defer x.Unlock() keeps the lock held for the rest of the body;
		// defer f() with locks held at return is out of lexical reach.
	case *ast.GoStmt:
		for _, a := range s.Call.Args {
			lw.walkExpr(a, held)
		}
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			lw.anonScope(lit)
			return
		}
		// go f(): f runs concurrently, not under the spawner's locks — it
		// is reached by lockorder through its own summary, with no held set.
	case *ast.SendStmt:
		lw.walkExpr(s.Chan, held)
		lw.walkExpr(s.Value, held)
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			lw.walkExpr(e, held)
		}
	case *ast.IfStmt:
		if s.Init != nil {
			lw.walkStmt(s.Init, held)
		}
		lw.walkExpr(s.Cond, held)
		lw.walkStmts(s.Body.List, cloneHeld(held))
		switch e := s.Else.(type) {
		case *ast.BlockStmt:
			lw.walkStmts(e.List, cloneHeld(held))
		case *ast.IfStmt:
			lw.walkStmt(e, cloneHeld(held))
		}
	case *ast.ForStmt:
		if s.Init != nil {
			lw.walkStmt(s.Init, held)
		}
		if s.Cond != nil {
			lw.walkExpr(s.Cond, held)
		}
		body := cloneHeld(held)
		lw.walkStmts(s.Body.List, body)
		if s.Post != nil {
			lw.walkStmt(s.Post, body)
		}
	case *ast.RangeStmt:
		lw.walkExpr(s.X, held)
		lw.walkStmts(s.Body.List, cloneHeld(held))
	case *ast.BlockStmt:
		lw.walkStmts(s.List, held)
	case *ast.LabeledStmt:
		lw.walkStmt(s.Stmt, held)
	case *ast.SwitchStmt:
		if s.Init != nil {
			lw.walkStmt(s.Init, held)
		}
		if s.Tag != nil {
			lw.walkExpr(s.Tag, held)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				lw.walkStmts(cc.Body, cloneHeld(held))
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				lw.walkStmts(cc.Body, cloneHeld(held))
			}
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				if cc.Comm != nil {
					lw.walkStmt(cc.Comm, cloneHeld(held))
				}
				lw.walkStmts(cc.Body, cloneHeld(held))
			}
		}
	case *ast.IncDecStmt:
		lw.walkExpr(s.X, held)
	}
}

// anonScope analyzes a goroutine/defer/callback literal as its own summary
// with no locks held at entry.
func (lw *lockWalker) anonScope(lit *ast.FuncLit) {
	pos := lw.p.position(lit.Pos())
	s := &FuncSummary{Key: lw.owner + "$" + strconv.Itoa(pos.Line) + "_" + strconv.Itoa(pos.Column)}
	nested := &lockWalker{p: lw.p, sum: s, owner: lw.owner}
	nested.walkStmts(lit.Body.List, map[string]token.Pos{})
	lw.anon = append(lw.anon, s)
	lw.anon = append(lw.anon, nested.anon...)
}

func (lw *lockWalker) walkExpr(n ast.Node, held map[string]token.Pos) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.FuncLit:
			lw.anonScope(m)
			return false
		case *ast.CallExpr:
			lw.call(m, held)
		}
		return true
	})
}

func (lw *lockWalker) call(call *ast.CallExpr, held map[string]token.Pos) {
	f := calleeFunc(lw.p.Info, call)
	if f == nil {
		return
	}
	if isMethodOn(f, "sync", "Mutex", "Lock", "TryLock") ||
		isMethodOn(f, "sync", "RWMutex", "Lock", "RLock", "TryLock", "TryRLock") {
		class := lw.lockClass(call)
		if class == "" {
			return
		}
		pos := lw.p.position(call.Pos())
		lw.sum.Acquires = append(lw.sum.Acquires, LockSite{Class: class, Pos: pos})
		for from := range held {
			if from == class {
				continue // reacquiring the same class is lockhold's problem, not an ordering edge
			}
			lw.sum.LockEdges = append(lw.sum.LockEdges, LockEdge{From: from, To: class, Pos: pos})
		}
		held[class] = call.Pos()
		return
	}
	if isMethodOn(f, "sync", "Mutex", "Unlock") ||
		isMethodOn(f, "sync", "RWMutex", "Unlock", "RUnlock") {
		if class := lw.lockClass(call); class != "" {
			delete(held, class)
		}
		return
	}
	key := funcKey(f)
	if key == "" || f.Pkg() == nil {
		return
	}
	lw.sum.Calls = append(lw.sum.Calls, LockCall{
		Callee: key,
		Held:   sortedClasses(held),
		Pos:    lw.p.position(call.Pos()),
	})
}

// lockClass names the mutex a Lock/Unlock call operates on, instance-blind:
//
//	s.mu.Lock()      → pkg.Type.mu     (field of a named struct)
//	pkg.mu.Lock()    → pkg.mu          (package-level mutex)
//	mu.Lock()        → pkg.func.mu     (function-local mutex)
//	q.Lock()         → pkg.Type.<embedded> (embedded sync.Mutex)
//
// Two mutexes of the same class on different instances collapse: the
// ordering discipline is declared per class, which is conservative in the
// right direction for deadlock detection (a cycle on one class across two
// instances is still a latent deadlock unless an instance hierarchy exists,
// and that hierarchy belongs in DESIGN.md, not in the analyzer).
func (lw *lockWalker) lockClass(call *ast.CallExpr) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	recv := ast.Unparen(sel.X)
	switch x := recv.(type) {
	case *ast.SelectorExpr:
		// Field selection s.mu (possibly chained: b.store.mu).
		if s, ok := lw.p.Info.Selections[x]; ok {
			if named := derefNamed(s.Recv()); named != nil && named.Obj().Pkg() != nil {
				return named.Obj().Pkg().Name() + "." + named.Obj().Name() + "." + x.Sel.Name
			}
			return ""
		}
		// Package-qualified variable pkg.Mu.
		if obj, ok := lw.p.Info.Uses[x.Sel]; ok && obj.Pkg() != nil {
			return obj.Pkg().Name() + "." + x.Sel.Name
		}
	case *ast.Ident:
		obj := lw.p.Info.Uses[x]
		if obj == nil || obj.Pkg() == nil {
			return ""
		}
		// Embedded mutex: the receiver is a named struct, the method is
		// promoted from sync.Mutex/RWMutex.
		if named := derefNamed(obj.Type()); named != nil && named.Obj().Pkg() != nil &&
			named.Obj().Pkg().Name() != "sync" {
			return named.Obj().Pkg().Name() + "." + named.Obj().Name() + ".<embedded>"
		}
		// Package-level mutex in the current package.
		if obj.Parent() == obj.Pkg().Scope() {
			return obj.Pkg().Name() + "." + x.Name
		}
		// Function-local mutex: class-per-declaration via the owner key.
		return shortKey(lw.owner) + "." + x.Name
	}
	return ""
}

// shortKey trims a funcKey's package path to its base name for human-facing
// lock classes ("xingtian/internal/broker.Broker.route" → "broker.Broker.route").
func shortKey(key string) string {
	slash := -1
	for i := 0; i < len(key); i++ {
		if key[i] == '/' {
			slash = i
		}
	}
	return key[slash+1:]
}

func sortedClasses(held map[string]token.Pos) []string {
	if len(held) == 0 {
		return nil
	}
	out := make([]string, 0, len(held))
	for k := range held {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
