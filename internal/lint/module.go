package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// This file is the whole-module layer of xt-lint. The original suite ran
// each analyzer over one package at a time; the invariants it guards have
// outgrown that scope — a store reference acquired in the broker may be
// released by a helper in another package, and a deadlock is by definition a
// property of the union of every function's locking behaviour. Module ties
// the per-package Passes together:
//
//   - it computes a serializable FuncSummary for every function in the
//     module (refs released per parameter, locks acquired, lock state at
//     each call site) and fixpoints the transitive parts, so refbalance can
//     see through documented hand-offs without //lint:owns escapes;
//   - it runs the module-scope analyzers (lockorder, metricdrift) over the
//     merged facts of all packages, fresh or cache-restored;
//   - it applies //lint:ignore suppression uniformly, including to module
//     findings that land in a package restored from the summary cache.
//
// Everything a module analyzer consumes is carried by PkgFacts, which is
// JSON-serializable by construction: that is what lets the summary cache
// (cache.go) skip parsing and type-checking entirely for unchanged packages
// while the module-wide analyses stay exact.

// Module aggregates the per-package passes and cached facts of one lint run.
type Module struct {
	// Passes are the freshly parsed and type-checked packages.
	Passes []*Pass
	// facts holds the PkgFacts of cache-restored packages (AddFacts) —
	// packages whose sources and dependency export data are unchanged since
	// a previous run.
	facts []*PkgFacts

	// sums indexes every known function summary by funcKey.
	sums map[string]*FuncSummary

	findings []Finding // module-analyzer findings, position-addressed
	current  string    // module analyzer currently running

	// cache and cacheKeys are set by LoadModule when a summary cache is in
	// use: after Run, each fresh pass's facts (with its surviving findings)
	// are stored back under its key.
	cache     *Cache
	cacheKeys map[*Pass]string
}

// NewModule wires passes into a module run. Facts for cache-restored
// packages are attached afterwards with AddFacts.
func NewModule(passes []*Pass) *Module {
	m := &Module{Passes: passes, sums: make(map[string]*FuncSummary)}
	for _, p := range passes {
		p.mod = m
	}
	return m
}

// AddFacts attaches the restored facts of a package that did not need
// re-analysis. Its per-package findings are replayed verbatim; its summaries
// and metric facts feed the module analyzers.
func (m *Module) AddFacts(f *PkgFacts) {
	m.facts = append(m.facts, f)
}

// reportf records a module-analyzer finding at an absolute position.
// Module analyzers work on serialized facts, which carry token.Position
// rather than token.Pos, so reporting bypasses the FileSet.
func (m *Module) reportf(pos token.Position, format string, args ...any) {
	m.findings = append(m.findings, Finding{
		Pos:      pos,
		Analyzer: m.current,
		Message:  fmt.Sprintf(format, args...),
	})
}

// summary returns the known summary for a function key, or nil.
func (m *Module) summary(key string) *FuncSummary {
	if m == nil {
		return nil
	}
	return m.sums[key]
}

// allSummaries returns every summary in deterministic key order.
func (m *Module) allSummaries() []*FuncSummary {
	keys := make([]string, 0, len(m.sums))
	for k := range m.sums {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]*FuncSummary, 0, len(keys))
	for _, k := range keys {
		out = append(out, m.sums[k])
	}
	return out
}

// Run executes the full suite — directive validation, fact collection, the
// per-package analyzers, and the module analyzers — and returns all
// surviving findings (fresh and cache-restored) in deterministic order.
func (m *Module) Run() []Finding {
	// Directives first: fact collection and suppression both read them.
	for _, p := range m.Passes {
		p.directives = parseDirectives(p.Fset, p.Files)
		validateDirectives(p)
	}

	// Collect per-package facts (lock behaviour, metric decls and uses,
	// directive records) and fixpoint the interprocedural summaries.
	for _, p := range m.Passes {
		p.facts = collectFacts(p)
	}
	m.indexSummaries()
	fixpointReleases(m)

	// Per-package analyzers, summary-aware where it matters (refbalance).
	for _, p := range m.Passes {
		for _, a := range Analyzers() {
			if a.Run != nil {
				p.current = a.Name
				a.Run(p)
			}
		}
		p.current = ""
	}

	// Module analyzers over the merged facts.
	for _, a := range Analyzers() {
		if a.RunModule != nil {
			m.current = a.Name
			a.RunModule(m)
		}
	}
	m.current = ""

	// Suppression. Per-package findings answer to their own directives;
	// module findings can land in any package, so they answer to the union
	// of fresh and cache-restored directives.
	var all []Finding
	for _, p := range m.Passes {
		p.final = suppress(p.findings, p.directives)
		all = append(all, p.final...)
	}
	if m.cache != nil {
		for _, p := range m.Passes {
			if key := m.cacheKeys[p]; key != "" {
				facts := *p.facts
				facts.Findings = p.final
				m.cache.store(key, &facts)
			}
		}
	}
	all = append(all, suppress(m.findings, m.allDirectives())...)
	for _, f := range m.facts {
		all = append(all, f.Findings...)
	}
	sortFindings(all)
	return all
}

// indexSummaries merges cache-restored and freshly collected summaries into
// the module index. Fresh facts win on key collision (a package both cached
// and re-analyzed should never happen, but the fresh view is the true one).
func (m *Module) indexSummaries() {
	for _, f := range m.facts {
		for _, s := range f.Summaries {
			m.sums[s.Key] = s
		}
	}
	for _, p := range m.Passes {
		for _, s := range p.facts.Summaries {
			m.sums[s.Key] = s
		}
	}
}

// allDirectives merges the parsed directives of fresh passes with the
// directive records restored from the cache.
func (m *Module) allDirectives() []directive {
	var out []directive
	for _, p := range m.Passes {
		out = append(out, p.directives...)
	}
	for _, f := range m.facts {
		for _, r := range f.Directives {
			out = append(out, directive{
				file:      r.File,
				line:      r.Line,
				verb:      r.Verb,
				analyzer:  r.Analyzer,
				reason:    r.Reason,
				malformed: r.Malformed,
			})
		}
	}
	return out
}

// sortFindings orders findings by file, line, analyzer — the report order
// CI output and the golden tests pin.
func sortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		if fs[i].Pos.Filename != fs[j].Pos.Filename {
			return fs[i].Pos.Filename < fs[j].Pos.Filename
		}
		if fs[i].Pos.Line != fs[j].Pos.Line {
			return fs[i].Pos.Line < fs[j].Pos.Line
		}
		if fs[i].Analyzer != fs[j].Analyzer {
			return fs[i].Analyzer < fs[j].Analyzer
		}
		return fs[i].Message < fs[j].Message
	})
}

// ---------------------------------------------------------------------------
// Per-package fact collection.

// PkgFacts is everything the module analyzers need to know about one
// package, decoupled from its AST and type information. The shape is
// JSON-serializable so the summary cache can restore it without re-parsing.
type PkgFacts struct {
	// ImportPath identifies the package.
	ImportPath string `json:"import_path"`
	// Summaries are the per-function interprocedural summaries.
	Summaries []*FuncSummary `json:"summaries,omitempty"`
	// Taxonomies describe integer fields of structs with a Total() method.
	Taxonomies []TaxonomyField `json:"taxonomies,omitempty"`
	// Counters describe atomic counter fields of broker/fabric structs.
	Counters []CounterField `json:"counters,omitempty"`
	// MetricInts describe plain integer fields of broker/fabric structs
	// whose name marks them as metrics snapshots.
	MetricInts []CounterField `json:"metric_ints,omitempty"`
	// FieldUses aggregate reads and writes of the fields above, keyed by
	// pkg.Struct.Field.
	FieldUses []FieldUse `json:"field_uses,omitempty"`
	// Directives are the package's //lint: comments, kept so module
	// findings in a cache-restored package can still be suppressed.
	Directives []DirectiveRec `json:"directives,omitempty"`
	// Findings are the package's surviving per-package findings (filled in
	// by the driver at cache-store time, replayed on restore).
	Findings []Finding `json:"findings,omitempty"`
}

// DirectiveRec is the serializable form of a parsed //lint: directive.
type DirectiveRec struct {
	File      string `json:"file"`
	Line      int    `json:"line"`
	Verb      string `json:"verb"`
	Analyzer  string `json:"analyzer,omitempty"`
	Reason    string `json:"reason,omitempty"`
	Malformed bool   `json:"malformed,omitempty"`
}

// collectFacts computes the serializable facts of one fresh pass: function
// summaries (lock behaviour filled in here, release behaviour fixpointed
// afterwards), metric declarations and field uses, and directive records.
func collectFacts(p *Pass) *PkgFacts {
	f := &PkgFacts{ImportPath: p.Pkg.Path()}
	f.Summaries = collectSummaries(p)
	collectMetricFacts(p, f)
	for _, d := range p.directives {
		f.Directives = append(f.Directives, DirectiveRec{
			File: d.file, Line: d.line, Verb: d.verb,
			Analyzer: d.analyzer, Reason: d.reason, Malformed: d.malformed,
		})
	}
	return f
}

// funcKey names a function module-uniquely: pkgpath.Func for package
// functions, pkgpath.Type.Method for methods (pointer and value receivers
// collapse — the contract is per method name).
func funcKey(f *types.Func) string {
	if f == nil || f.Pkg() == nil {
		return ""
	}
	sig, ok := f.Type().(*types.Signature)
	if !ok {
		return ""
	}
	if sig.Recv() != nil {
		named := derefNamed(sig.Recv().Type())
		if named == nil {
			return "" // interface or weird receiver: not summarizable
		}
		return f.Pkg().Path() + "." + named.Obj().Name() + "." + f.Name()
	}
	return f.Pkg().Path() + "." + f.Name()
}

// declKey names a function declaration in the package being analyzed.
func declKey(p *Pass, decl *ast.FuncDecl) string {
	obj, ok := p.Info.Defs[decl.Name].(*types.Func)
	if !ok {
		return ""
	}
	return funcKey(obj)
}

// position converts a token.Pos to its serializable form.
func (p *Pass) position(pos token.Pos) token.Position {
	return p.Fset.Position(pos)
}
