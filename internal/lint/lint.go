// Package lint implements xt-lint: a stdlib-only static analyzer that
// enforces the channel's concurrency and refcount invariants documented in
// DESIGN.md §5a/§5c. The Go compiler cannot check the discipline the
// zero-copy channel rests on — references released on every path, headers
// copied per destination, no blocking while a broker lock is held — so this
// package turns the contract into executable checks that run on every CI
// push.
//
// The driver (Load + Run, see driver.go) type-checks every package in the
// module with go/parser and go/types (no golang.org/x/tools dependency) and
// runs nine project-specific analyzers. Six are per-package:
//
//   - refbalance: every objectstore.Store.Get/Pin is matched by a Release on
//     all return paths of the enclosing function, unless the ownership
//     transfer is marked //lint:owns.
//   - lockhold: no blocking call (queue.Queue.Put/Get/GetTimeout, channel
//     send/recv, time.Sleep, net I/O, WaitGroup.Wait) while a sync.Mutex or
//     RWMutex acquired in the same function is held.
//   - headershare: no *message.Header escaping into a per-destination queue
//     send or goroutine capture — headers are copied per destination.
//   - atomicmix: structs bearing sync/atomic fields are never copied by
//     value, and no field mixes atomic.*Int64-style access with plain reads
//     or writes.
//   - goleak: every goroutine spawned in the broker, fabric, core, and
//     faultinject packages — literal or same-package named callee — observes
//     a stop signal (WaitGroup, done-channel, select, or a blocking call
//     that errors at shutdown).
//   - droptaxonomy: refused admissions and sheds stay visible — a TryPut
//     result is never discarded, and a function shedding via queue PopIf
//     increments a drop/shed counter.
//
// Three work module-wide over per-function summaries (module.go,
// summary.go), so they see through package boundaries and survive the
// summary cache (cache.go):
//
//   - refbalance (interprocedural part): a Get whose reference is released
//     by a callee — possibly in another package — is balanced without a
//     //lint:owns escape, and a //lint:owns on a provably balanced function
//     is itself a finding (stale escape).
//   - lockorder: the module-wide lock-acquisition graph (broker mutexes,
//     store shard locks, fabric peer locks, queue internals) is acyclic;
//     cycles are potential deadlocks. DESIGN.md §5c codifies the order.
//   - typeswitch: every switch over message.Type is exhaustive or carries a
//     deliberate default — adding a message class cannot silently bypass
//     Droppable()/weights-class routing.
//   - metricdrift: every Drops-taxonomy field is summed in Total() and
//     written somewhere; every broker/fabric atomic counter is incremented
//     and surfaced; metrics conversions don't silently drop counters.
//
// Findings are reported as `file:line: [analyzer] message` and can be
// suppressed with `//lint:ignore <analyzer> <reason>` on the finding's line
// or the line above it. A malformed suppression (unknown analyzer, missing
// reason) is itself a finding (analyzer "directive").
//
// The analyzers identify project types structurally — by package name and
// type/method name (e.g. a type Store with Get/Pin/Release methods in a
// package named "objectstore") — so the golden-file tests under testdata/src
// exercise them against small hermetic stub packages.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Finding is one analyzer report. The shape is JSON-stable: it appears in
// the -json report, in baseline files, and in cached PkgFacts.
type Finding struct {
	// Pos locates the finding.
	Pos token.Position `json:"pos"`
	// Analyzer is the name of the analyzer that produced the finding (or
	// "directive" for malformed //lint: comments).
	Analyzer string `json:"analyzer"`
	// Message describes the violation.
	Message string `json:"message"`
}

// String renders the finding in the canonical `file:line: [analyzer] message`
// form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Analyzer, f.Message)
}

// Analyzer is one executable invariant check. At least one of Run and
// RunModule is set; metricdrift sets both (its snapshot-parity rule is
// package-local, its counter-rot rules need the module view).
type Analyzer struct {
	// Name is the analyzer's identifier, used in reports and //lint:ignore
	// directives.
	Name string
	// Doc is a one-line description of the invariant checked.
	Doc string
	// Run reports findings for one type-checked package.
	Run func(*Pass)
	// RunModule reports findings over the merged facts of all packages,
	// fresh or cache-restored.
	RunModule func(*Module)
}

// DirectiveAnalyzer is the pseudo-analyzer name under which malformed
// //lint: directives are reported.
const DirectiveAnalyzer = "directive"

// Analyzers is the full analyzer suite in report order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		{Name: "refbalance", Doc: "objectstore Get/Pin matched by Release on all return paths", Run: runRefbalance},
		{Name: "lockhold", Doc: "no blocking call while a mutex acquired in the same function is held", Run: runLockhold},
		{Name: "headershare", Doc: "headers are copied per destination, never shared across queue sends or goroutines", Run: runHeadershare},
		{Name: "atomicmix", Doc: "atomic-bearing structs never copied by value; no mixed atomic/plain field access", Run: runAtomicmix},
		{Name: "goleak", Doc: "goroutines spawned in broker/fabric/core/faultinject observe a stop signal", Run: runGoleak},
		{Name: "droptaxonomy", Doc: "TryPut refusals and PopIf sheds are counted in the drop taxonomy", Run: runDroptaxonomy},
		{Name: "lockorder", Doc: "the module-wide lock-acquisition graph is acyclic (no potential deadlocks)", RunModule: runLockorder},
		{Name: "typeswitch", Doc: "every switch over message.Type is exhaustive or has a deliberate default", Run: runTypeswitch},
		{Name: "metricdrift", Doc: "taxonomy and metrics counters are fed, aggregated, and surfaced — nowhere rotten", Run: runMetricdriftPkg, RunModule: runMetricdrift},
	}
}

// KnownAnalyzers is the set of valid analyzer names for //lint:ignore.
func KnownAnalyzers() map[string]bool {
	known := make(map[string]bool)
	for _, a := range Analyzers() {
		known[a.Name] = true
	}
	known[DirectiveAnalyzer] = true
	return known
}

// Pass carries one type-checked package through the analyzers.
type Pass struct {
	// Fset positions every node in Files.
	Fset *token.FileSet
	// Files are the package's parsed source files (comments included).
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// Info holds the type-checker's fact tables for Files.
	Info *types.Info
	// directives are the parsed //lint: comments of Files.
	directives []directive

	// mod is the module run this pass belongs to; analyzers reach the
	// cross-package summaries through it.
	mod *Module
	// facts are the pass's collected serializable facts (summaries, metric
	// decls/uses) — the module analyzers' input and the cache's payload.
	facts *PkgFacts
	// final holds the pass's surviving per-package findings after
	// suppression, for cache write-back.
	final []Finding

	findings []Finding
	current  string // name of the analyzer currently running
}

// Reportf records a finding at pos for the running analyzer.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.reportAs(p.current, pos, format, args...)
}

func (p *Pass) reportAs(analyzer string, pos token.Pos, format string, args ...any) {
	p.findings = append(p.findings, Finding{
		Pos:      p.Fset.Position(pos),
		Analyzer: analyzer,
		Message:  fmt.Sprintf(format, args...),
	})
}

// RunAnalyzers executes the full suite plus directive validation on one
// package and returns the surviving (non-suppressed) findings sorted by
// position. It is the single-package convenience form of Module.Run: the
// module analyzers run too, seeing exactly this package.
func (p *Pass) RunAnalyzers() []Finding {
	return NewModule([]*Pass{p}).Run()
}

// ---------------------------------------------------------------------------
// Shared type-identification helpers.
//
// Project types are matched structurally by package name + type name so the
// same analyzers run against the real module ("xingtian/internal/objectstore")
// and the hermetic golden-file stubs ("objectstore").

// calleeFunc resolves the function or method a call expression invokes, or
// nil for calls through function values, conversions, and builtins.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if f, ok := sel.Obj().(*types.Func); ok {
				return f
			}
			return nil
		}
		// Package-qualified call (pkg.Func).
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// derefNamed strips pointers and returns the named type beneath t, or nil.
func derefNamed(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// isNamedType reports whether t (possibly behind a pointer) is the named
// type pkgName.typeName.
func isNamedType(t types.Type, pkgName, typeName string) bool {
	named := derefNamed(t)
	if named == nil {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Name() == pkgName && obj.Name() == typeName
}

// isMethodOn reports whether f is a method with one of the given names on
// the named type pkgName.typeName (value or pointer receiver).
func isMethodOn(f *types.Func, pkgName, typeName string, names ...string) bool {
	if f == nil {
		return false
	}
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	if !isNamedType(sig.Recv().Type(), pkgName, typeName) {
		// Interface methods: the receiver of a method selected from an
		// interface type is the interface itself; check it the same way.
		return false
	}
	return nameIn(f.Name(), names)
}

// isPkgFunc reports whether f is a package-level function with one of the
// given names in the package named pkgName.
func isPkgFunc(f *types.Func, pkgName string, names ...string) bool {
	if f == nil || f.Pkg() == nil {
		return false
	}
	if sig, ok := f.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return false
	}
	return f.Pkg().Name() == pkgName && nameIn(f.Name(), names)
}

// recvOfMethod returns the receiver type of method f, or nil.
func recvOfMethod(f *types.Func) types.Type {
	if f == nil {
		return nil
	}
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	return sig.Recv().Type()
}

// isMethodOnPkgType reports whether f is a method with one of the given
// names whose receiver is any named type (struct or interface) declared in a
// package named pkgName.
func isMethodOnPkgType(f *types.Func, pkgName string, names ...string) bool {
	recv := recvOfMethod(f)
	if recv == nil {
		return false
	}
	named := derefNamed(recv)
	if named == nil {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Name() == pkgName && nameIn(f.Name(), names)
}

func nameIn(name string, names []string) bool {
	for _, n := range names {
		if n == name {
			return true
		}
	}
	return false
}

// exprString renders an expression for matching and messages (e.g. the ID
// argument of a Get against the argument of a later Release).
func exprString(e ast.Expr) string {
	return types.ExprString(e)
}

// funcScopes yields every function body in the file exactly once: FuncDecl
// bodies, and FuncLits that are not nested inside another yielded body are
// reached by the visitor itself. Analyzers that need fresh per-function
// state use this instead of a bare ast.Inspect.
func funcScopes(file *ast.File, visit func(body *ast.BlockStmt, decl *ast.FuncDecl)) {
	ast.Inspect(file, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			if n.Body != nil {
				visit(n.Body, n)
			}
			return false
		case *ast.FuncLit:
			// Package-level FuncLit (var initializer): treat as its own scope.
			visit(n.Body, nil)
			return false
		}
		return true
	})
}
