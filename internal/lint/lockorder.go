package lint

import (
	"go/token"
	"sort"
	"strings"
)

// runLockorder builds the module-wide lock-acquisition graph and reports
// every cycle as a potential deadlock. Nodes are lock classes (see
// lockWalker.lockClass: broker.Broker.mu, objectstore.shard.mu,
// fabric.peerConn.mu, queue.Queue.mu, ...); there is an edge A → B when some
// function locks B while A is held — either directly in one body, or
// interprocedurally: a call made with A held reaches, through any chain of
// callees, a function that locks B. Two goroutines obeying different edges
// of a cycle can each hold one lock of the cycle while waiting for the
// next — the classic deadlock — so the module keeps the graph acyclic and
// DESIGN.md §5c codifies the resulting order.
//
// The analysis is instance-blind (classes, not objects) and call-graph
// conservative: calls through function values and interfaces are invisible,
// and goroutine/defer literals are separate roots (their acquisitions do
// not run under the spawner's locks, but their internal nesting still
// contributes edges).
func runLockorder(m *Module) {
	sums := m.allSummaries()

	// Transitive acquire closure over the call graph, by fixpoint: the set
	// of lock classes a call into fn may end up taking. Fixpoint (rather
	// than memoized recursion) keeps recursive call chains exact.
	acq := make(map[string]map[string]bool, len(sums))
	for _, s := range sums {
		set := make(map[string]bool)
		for _, a := range s.Acquires {
			set[a.Class] = true
		}
		acq[s.Key] = set
	}
	for changed := true; changed; {
		changed = false
		for _, s := range sums {
			set := acq[s.Key]
			for _, c := range s.Calls {
				for cls := range acq[c.Callee] {
					if !set[cls] {
						set[cls] = true
						changed = true
					}
				}
			}
		}
	}

	// Edge set: direct nested acquisitions plus held-across-call closure.
	// One representative position per (from, to) pair, earliest wins.
	type edge struct{ from, to string }
	edges := make(map[edge]LockEdge)
	record := func(e LockEdge) {
		k := edge{e.From, e.To}
		if prev, ok := edges[k]; ok && !posBefore(e.Pos, prev.Pos) {
			return
		}
		edges[k] = e
	}
	for _, s := range sums {
		for _, e := range s.LockEdges {
			record(e)
		}
		for _, c := range s.Calls {
			if len(c.Held) == 0 {
				continue
			}
			for to := range acq[c.Callee] {
				for _, from := range c.Held {
					if from == to {
						continue // same-class reentry: an instance-hierarchy question, not an order cycle
					}
					record(LockEdge{From: from, To: to, Pos: c.Pos})
				}
			}
		}
	}

	// Strongly connected components over the class graph; any edge inside a
	// cyclic component is part of a lock-order cycle.
	adj := make(map[string][]string)
	for k := range edges {
		adj[k.from] = append(adj[k.from], k.to)
	}
	for _, tos := range adj {
		sort.Strings(tos)
	}
	comp := sccs(adj)

	var keys []edge
	for k := range edges {
		if comp[k.from] != 0 && comp[k.from] == comp[k.to] {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].from != keys[j].from {
			return keys[i].from < keys[j].from
		}
		return keys[i].to < keys[j].to
	})
	for _, k := range keys {
		e := edges[k]
		cycle := cycleThrough(adj, comp, k.from, k.to)
		m.reportf(e.Pos, "lock-order cycle: %s acquired while %s is held (cycle: %s); acquire the classes in the DESIGN.md §5c order or release %s first",
			e.To, e.From, strings.Join(cycle, " → "), e.From)
	}
}

// posBefore orders two positions file-first for deterministic edge
// representatives.
func posBefore(a, b token.Position) bool {
	if a.Filename != b.Filename {
		return a.Filename < b.Filename
	}
	if a.Line != b.Line {
		return a.Line < b.Line
	}
	return a.Column < b.Column
}

// sccs assigns every node of a cyclic strongly connected component a
// nonzero component ID (Tarjan); nodes no cycle passes through get 0.
func sccs(adj map[string][]string) map[string]int {
	nodes := make([]string, 0, len(adj))
	seen := make(map[string]bool)
	addNode := func(n string) {
		if !seen[n] {
			seen[n] = true
			nodes = append(nodes, n)
		}
	}
	for from, tos := range adj {
		addNode(from)
		for _, to := range tos {
			addNode(to)
		}
	}
	sort.Strings(nodes)

	indexOf := make(map[string]int, len(nodes))
	low := make(map[string]int, len(nodes))
	onStack := make(map[string]bool)
	comp := make(map[string]int)
	var stack []string
	counter := 0
	compID := 0

	var strongconnect func(v string)
	strongconnect = func(v string) {
		counter++
		indexOf[v] = counter
		low[v] = counter
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range adj[v] {
			if _, ok := indexOf[w]; !ok {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && indexOf[w] < low[v] {
				low[v] = indexOf[w]
			}
		}
		if low[v] == indexOf[v] {
			var members []string
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				members = append(members, w)
				if w == v {
					break
				}
			}
			cyclic := len(members) > 1
			if !cyclic {
				for _, w := range adj[v] {
					if w == v {
						cyclic = true
					}
				}
			}
			if cyclic {
				compID++
				for _, w := range members {
					comp[w] = compID
				}
			}
		}
	}
	for _, v := range nodes {
		if _, ok := indexOf[v]; !ok {
			strongconnect(v)
		}
	}
	return comp
}

// cycleThrough renders one concrete cycle that uses the edge from → to, by
// finding the shortest directed return path to → ... → from inside the
// component (BFS over sorted adjacency, so the rendering is deterministic).
func cycleThrough(adj map[string][]string, comp map[string]int, from, to string) []string {
	id := comp[from]
	prev := map[string]string{to: ""}
	queue := []string{to}
	found := to == from
	for len(queue) > 0 && !found {
		v := queue[0]
		queue = queue[1:]
		for _, w := range adj[v] {
			if comp[w] != id {
				continue
			}
			if _, ok := prev[w]; ok {
				continue
			}
			prev[w] = v
			if w == from {
				found = true
				break
			}
			queue = append(queue, w)
		}
	}
	if !found {
		return []string{from, to, from} // defensive: SCC guarantees a return path
	}
	// Reconstruct from ← ... ← to, then render from → to → ... → from.
	rev := []string{from}
	for v := prev[from]; v != ""; v = prev[v] {
		rev = append(rev, v)
	}
	cycle := []string{from}
	for i := len(rev) - 1; i >= 0; i-- {
		cycle = append(cycle, rev[i])
	}
	return cycle
}
