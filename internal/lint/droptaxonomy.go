package lint

import (
	"go/ast"
	"strings"
)

// runDroptaxonomy enforces the overload-accounting contract of DESIGN.md
// §5f: every message the channel refuses or sheds must be visible in the
// drop taxonomy. Two shapes violate it:
//
//   - An ignored TryPut result. objectstore.Store.TryPut refuses admission
//     with ErrBudget and queue.Queue.TryPut refuses when full; a caller
//     that discards the error (expression statement, or binding it to the
//     blank identifier) sheds silently — nothing increments a drop counter
//     and, for the store, the caller cannot even know whether a reference
//     was created.
//   - A shed that is not counted. queue.Queue.PopIf is the shed-oldest
//     primitive: a function that pops messages with it must increment a
//     drop/shed counter (any .Add(...) call whose selector path mentions
//     "drop" or "shed") somewhere in the same function, or the shed
//     vanishes from the taxonomy.
//
// The checks are lexical, like the rest of the suite: binding the error to
// a named variable satisfies the first rule (refbalance-style path analysis
// of what happens to it is out of scope), and the counter increment may sit
// anywhere in the enclosing function body.
func runDroptaxonomy(p *Pass) {
	for _, file := range p.Files {
		funcScopes(file, func(body *ast.BlockStmt, decl *ast.FuncDecl) {
			counted := hasDropCounterAdd(p, body)
			ast.Inspect(body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.ExprStmt:
					if call, ok := n.X.(*ast.CallExpr); ok && isTryPutCall(p, call) {
						p.Reportf(call.Pos(), "TryPut result ignored: a refused message must be counted in the drop taxonomy")
					}
				case *ast.AssignStmt:
					for _, rhs := range n.Rhs {
						call, ok := rhs.(*ast.CallExpr)
						if !ok || !isTryPutCall(p, call) {
							continue
						}
						// The error is the last (or only) result; with one
						// call on the RHS the LHS binds results positionally.
						if len(n.Rhs) == 1 && isBlankIdent(n.Lhs[len(n.Lhs)-1]) {
							p.Reportf(call.Pos(), "TryPut error discarded with _: a refused message must be counted in the drop taxonomy")
						}
					}
				case *ast.CallExpr:
					if isPopIfCall(p, n) && !counted {
						p.Reportf(n.Pos(), "PopIf shed is not counted: increment a drop/shed counter in this function")
					}
				}
				return true
			})
		})
	}
}

// isTryPutCall matches objectstore.Store.TryPut and queue.Queue.TryPut.
func isTryPutCall(p *Pass, call *ast.CallExpr) bool {
	f := calleeFunc(p.Info, call)
	return isMethodOnPkgType(f, "objectstore", "TryPut") ||
		isMethodOnPkgType(f, "queue", "TryPut")
}

// isPopIfCall matches queue.Queue.PopIf, the shed-oldest primitive.
func isPopIfCall(p *Pass, call *ast.CallExpr) bool {
	return isMethodOnPkgType(calleeFunc(p.Info, call), "queue", "PopIf")
}

// hasDropCounterAdd reports whether the body contains an .Add(...) call on
// a selector chain naming a drop or shed counter.
func hasDropCounterAdd(p *Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || found {
			return !found
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Add" {
			return true
		}
		for x := ast.Expr(sel.X); ; {
			s, ok := x.(*ast.SelectorExpr)
			if !ok {
				if id, ok := x.(*ast.Ident); ok && isDropCounterName(id.Name) {
					found = true
				}
				return true
			}
			if isDropCounterName(s.Sel.Name) {
				found = true
				return true
			}
			x = s.X
		}
	})
	return found
}

// isDropCounterName matches identifiers that name drop-taxonomy counters.
func isDropCounterName(name string) bool {
	lower := strings.ToLower(name)
	return strings.Contains(lower, "drop") || strings.Contains(lower, "shed")
}

// isBlankIdent reports whether e is the blank identifier.
func isBlankIdent(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}
