package lint

import (
	"go/ast"
	"go/token"
)

// runRefbalance enforces DESIGN.md §5a: every objectstore.Store.Get/Pin in a
// function must be matched by a Release of the same ID expression on every
// path that leaves the region where the reference is held — each return
// after the acquire, the end of the enclosing loop body (the reference must
// not survive into the next iteration), and the fall-off end of the
// function. A deferred Release covers all paths. Functions that hand the
// reference to a new owner (another queue, a struct, a callee) declare it
// with `//lint:owns <reason>`.
//
// The analysis is lexical, not a full CFG: a Release anywhere between the
// acquire and an exit satisfies that exit. The store-miss exemption of the
// contract ("a failed Get holds nothing") is honoured by treating the
// idiomatic `x, err := store.Get(id); if err != nil { ... }` error check as
// part of the acquire.
//
// The same discipline covers pooled serialization buffers: a buffer bound by
// `buf := serialize.GetBuf(n)` or `buf, err := serialize.MarshalPooled(b)`
// must reach serialize.FreeBuf(buf) on every exit path (MarshalPooled's
// error check is exempt, like a failed Get: on error the caller holds
// nothing). Buffer ownership is only tracked through a named assignment — a
// pooled call nested inside a larger expression is an immediate hand-off to
// the enclosing call and out of lexical reach. Buffer acquires are matched
// only by FreeBuf, never by Release-shaped calls, and vice versa.
//
// The analysis is interprocedural through module summaries: a call to a
// function whose summary proves it releases (or FreeBufs) its i-th
// parameter on all paths counts as a release of that argument — including
// across package boundaries — so documented hand-offs to releasing helpers
// need no //lint:owns escape. Conversely, a //lint:owns on a function whose
// every acquire is now provably balanced is reported as stale: an escape
// hatch nobody needs anymore is a hole in the contract.
func runRefbalance(p *Pass) {
	for _, file := range p.Files {
		funcScopes(file, func(body *ast.BlockStmt, decl *ast.FuncDecl) {
			lo := body.Pos()
			if decl != nil {
				lo = decl.Pos()
				if decl.Doc != nil {
					lo = decl.Doc.Pos()
				}
			}
			rb := &rbScope{p: p}
			rb.walkStmts(body.List, token.NoPos, false)
			if d := ownsDirectiveIn(p, lo, body.End()); d != nil {
				if len(rb.acquires) > 0 && rb.allBalanced(body) {
					p.Reportf(d.pos, "stale //lint:owns: every reference acquired here is released on all paths (interprocedurally); remove the directive")
				}
				return
			}
			rb.check(body)
		})
	}
}

// allBalanced reports whether every acquire in the scope is matched on
// every exit path.
func (rb *rbScope) allBalanced(body *ast.BlockStmt) bool {
	implicitEnd := rb.implicitExit(body)
	for _, a := range rb.acquires {
		if !rb.balanced(a, implicitEnd) {
			return false
		}
	}
	return true
}

type rbAcquire struct {
	pos     token.Pos
	effPos  token.Pos // position after which the reference is held for sure
	kind    string    // "Get", "Pin", "GetBuf", or "MarshalPooled"
	id      string    // rendered ID argument, or the bound buffer variable
	loopEnd token.Pos // end of the innermost enclosing loop body, or NoPos
	buf     bool      // pooled serialize buffer, matched only by FreeBuf
}

type rbRelease struct {
	pos      token.Pos
	id       string
	deferred bool
	buf      bool // serialize.FreeBuf, matches only buffer acquires
}

type rbScope struct {
	p        *Pass
	acquires []rbAcquire
	releases []rbRelease
	returns  []token.Pos
}

// walkStmts processes a statement list in lexical order. loopEnd is the end
// of the innermost enclosing loop body; deferred marks statements inside a
// deferred call.
func (rb *rbScope) walkStmts(list []ast.Stmt, loopEnd token.Pos, deferred bool) {
	for i, s := range list {
		var next ast.Stmt
		if i+1 < len(list) {
			next = list[i+1]
		}
		rb.walkStmt(s, next, loopEnd, deferred)
	}
}

func (rb *rbScope) walkStmt(s ast.Stmt, next ast.Stmt, loopEnd token.Pos, deferred bool) {
	switch s := s.(type) {
	case *ast.AssignStmt:
		eff := rb.errCheckEnd(s, next)
		rb.bufAcquire(s, loopEnd, eff)
		rb.scanExpr(s, loopEnd, deferred, eff)
	case *ast.DeferStmt:
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			rb.walkStmts(lit.Body.List, token.NoPos, true)
			return
		}
		rb.classifyCall(s.Call, loopEnd, true, token.NoPos)
		for _, a := range s.Call.Args {
			rb.scanExpr(a, loopEnd, deferred, token.NoPos)
		}
	case *ast.GoStmt:
		// A goroutine body is its own ownership scope.
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			rb.analyzeNested(lit)
			for _, a := range s.Call.Args {
				rb.scanExpr(a, loopEnd, deferred, token.NoPos)
			}
			return
		}
		rb.scanExpr(s.Call, loopEnd, deferred, token.NoPos)
	case *ast.ReturnStmt:
		rb.scanExpr(s, loopEnd, deferred, token.NoPos)
		rb.returns = append(rb.returns, s.End())
	case *ast.IfStmt:
		if s.Init != nil {
			eff := rb.initErrCheckEnd(s)
			rb.scanExpr(s.Init, loopEnd, deferred, eff)
		}
		rb.scanExpr(s.Cond, loopEnd, deferred, token.NoPos)
		rb.walkStmts(s.Body.List, loopEnd, deferred)
		switch e := s.Else.(type) {
		case *ast.BlockStmt:
			rb.walkStmts(e.List, loopEnd, deferred)
		case *ast.IfStmt:
			rb.walkStmt(e, nil, loopEnd, deferred)
		}
	case *ast.ForStmt:
		if s.Init != nil {
			rb.scanExpr(s.Init, loopEnd, deferred, token.NoPos)
		}
		if s.Cond != nil {
			rb.scanExpr(s.Cond, loopEnd, deferred, token.NoPos)
		}
		if s.Post != nil {
			rb.scanExpr(s.Post, loopEnd, deferred, token.NoPos)
		}
		rb.walkStmts(s.Body.List, s.Body.End(), deferred)
	case *ast.RangeStmt:
		rb.scanExpr(s.X, loopEnd, deferred, token.NoPos)
		rb.walkStmts(s.Body.List, s.Body.End(), deferred)
	case *ast.BlockStmt:
		rb.walkStmts(s.List, loopEnd, deferred)
	case *ast.LabeledStmt:
		rb.walkStmt(s.Stmt, next, loopEnd, deferred)
	case *ast.SwitchStmt:
		if s.Init != nil {
			rb.scanExpr(s.Init, loopEnd, deferred, token.NoPos)
		}
		if s.Tag != nil {
			rb.scanExpr(s.Tag, loopEnd, deferred, token.NoPos)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				rb.walkStmts(cc.Body, loopEnd, deferred)
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				rb.walkStmts(cc.Body, loopEnd, deferred)
			}
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				if cc.Comm != nil {
					rb.walkStmt(cc.Comm, nil, loopEnd, deferred)
				}
				rb.walkStmts(cc.Body, loopEnd, deferred)
			}
		}
	case nil:
	default:
		rb.scanExpr(s, loopEnd, deferred, token.NoPos)
	}
}

// scanExpr finds acquire/release calls in an expression or simple statement.
// FuncLits are separate ownership scopes and analyzed independently.
func (rb *rbScope) scanExpr(n ast.Node, loopEnd token.Pos, deferred bool, effPos token.Pos) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.FuncLit:
			rb.analyzeNested(m)
			return false
		case *ast.CallExpr:
			rb.classifyCall(m, loopEnd, deferred, effPos)
		}
		return true
	})
}

// analyzeNested runs a full refbalance pass over a FuncLit that forms its
// own ownership scope (goroutine bodies, callbacks).
func (rb *rbScope) analyzeNested(lit *ast.FuncLit) {
	if ownsMarked(rb.p, lit.Pos(), lit.End()) {
		return
	}
	nested := &rbScope{p: rb.p}
	nested.walkStmts(lit.Body.List, token.NoPos, false)
	nested.check(lit.Body)
}

// classifyCall records Store.Get/Pin acquires and Release-shaped releases.
// Release shapes: objectstore.Store.Release, and any function or method
// named release/Release/mustRelease taking the ID as its first argument (the
// broker's counting wrapper).
func (rb *rbScope) classifyCall(call *ast.CallExpr, loopEnd token.Pos, deferred bool, effPos token.Pos) {
	f := calleeFunc(rb.p.Info, call)
	if f == nil || len(call.Args) == 0 {
		return
	}
	if isMethodOn(f, "objectstore", "Store", "Get", "Pin") {
		if effPos == token.NoPos {
			effPos = call.End()
		}
		rb.acquires = append(rb.acquires, rbAcquire{
			pos:     call.Pos(),
			effPos:  effPos,
			kind:    f.Name(),
			id:      exprString(call.Args[0]),
			loopEnd: loopEnd,
		})
		return
	}
	if isPkgFunc(f, "serialize", "FreeBuf") {
		rb.releases = append(rb.releases, rbRelease{
			pos:      call.Pos(),
			id:       exprString(call.Args[0]),
			deferred: deferred,
			buf:      true,
		})
		return
	}
	if isMethodOn(f, "objectstore", "Store", "Release") ||
		nameIn(f.Name(), []string{"release", "Release", "mustRelease"}) {
		rb.releases = append(rb.releases, rbRelease{
			pos:      call.Pos(),
			id:       exprString(call.Args[0]),
			deferred: deferred,
		})
		return
	}
	// Interprocedural releases: the callee's summary proves it releases
	// (or frees) specific parameters on all its paths, so passing a held
	// reference there is a release here. Summaries cover the whole module,
	// so this sees through package boundaries.
	if sum := rb.p.mod.summary(funcKey(f)); sum != nil {
		for i, arg := range call.Args {
			if sum.releasesParam(i, false) {
				rb.releases = append(rb.releases, rbRelease{
					pos: call.Pos(), id: exprString(arg), deferred: deferred,
				})
			}
			if sum.releasesParam(i, true) {
				rb.releases = append(rb.releases, rbRelease{
					pos: call.Pos(), id: exprString(arg), deferred: deferred, buf: true,
				})
			}
		}
	}
}

// bufAcquire records `buf := serialize.GetBuf(n)` and
// `buf, err := serialize.MarshalPooled(body)` buffer acquisitions. Only a
// direct named assignment creates a tracked owner; a pooled call nested in a
// larger expression hands its result straight to the enclosing call.
func (rb *rbScope) bufAcquire(s *ast.AssignStmt, loopEnd, effPos token.Pos) {
	if len(s.Rhs) != 1 {
		return
	}
	call, ok := s.Rhs[0].(*ast.CallExpr)
	if !ok {
		return
	}
	f := calleeFunc(rb.p.Info, call)
	if !isPkgFunc(f, "serialize", "GetBuf", "MarshalPooled") {
		return
	}
	id, ok := s.Lhs[0].(*ast.Ident)
	if !ok || id.Name == "_" {
		return
	}
	if effPos == token.NoPos {
		effPos = s.End()
	}
	rb.acquires = append(rb.acquires, rbAcquire{
		pos:     call.Pos(),
		effPos:  effPos,
		kind:    f.Name(),
		id:      id.Name,
		loopEnd: loopEnd,
		buf:     true,
	})
}

// errCheckEnd recognizes `x, err := store.Get(id)` followed by an
// `if err != nil { ... }` guard and returns the guard's end: the reference
// is only held once the error check passed (a failed Get holds nothing).
func (rb *rbScope) errCheckEnd(assign *ast.AssignStmt, next ast.Stmt) token.Pos {
	ifs, ok := next.(*ast.IfStmt)
	if !ok || ifs.Init != nil {
		return token.NoPos
	}
	if rb.condChecksAssignedErr(ifs.Cond, assign) {
		return ifs.End()
	}
	return token.NoPos
}

// initErrCheckEnd recognizes `if err := store.Pin(id); err != nil { ... }`.
func (rb *rbScope) initErrCheckEnd(ifs *ast.IfStmt) token.Pos {
	assign, ok := ifs.Init.(*ast.AssignStmt)
	if !ok {
		return token.NoPos
	}
	if rb.condChecksAssignedErr(ifs.Cond, assign) {
		return ifs.End()
	}
	return token.NoPos
}

func (rb *rbScope) condChecksAssignedErr(cond ast.Expr, assign *ast.AssignStmt) bool {
	bin, ok := cond.(*ast.BinaryExpr)
	if !ok || bin.Op != token.NEQ {
		return false
	}
	condIdent, ok := bin.X.(*ast.Ident)
	if !ok {
		return false
	}
	if nilIdent, ok := bin.Y.(*ast.Ident); !ok || nilIdent.Name != "nil" {
		return false
	}
	condObj := rb.p.Info.Uses[condIdent]
	if condObj == nil {
		return false
	}
	for _, lhs := range assign.Lhs {
		if id, ok := lhs.(*ast.Ident); ok {
			if rb.p.Info.Defs[id] == condObj || rb.p.Info.Uses[id] == condObj {
				return true
			}
		}
	}
	return false
}

// check matches every acquire against the releases on each exit path.
func (rb *rbScope) check(body *ast.BlockStmt) {
	implicitEnd := rb.implicitExit(body)
	for _, a := range rb.acquires {
		if rb.deferredReleaseFor(a) {
			continue
		}
		exits := rb.exitsFor(a, implicitEnd)
		for _, exit := range exits {
			if !rb.releasedBetween(a, exit.pos) {
				if a.buf {
					rb.p.Reportf(a.pos,
						"pooled buffer %s from serialize.%s is not freed on the path to %s (line %d); free it with serialize.FreeBuf or mark the hand-off with //lint:owns",
						a.id, a.kind, exit.kind, rb.p.Fset.Position(exit.pos).Line)
				} else {
					rb.p.Reportf(a.pos,
						"objectstore %s(%s) is not released on the path to %s (line %d); release it or mark the hand-off with //lint:owns",
						a.kind, a.id, exit.kind, rb.p.Fset.Position(exit.pos).Line)
				}
				break
			}
		}
	}
}

type rbExit struct {
	pos  token.Pos
	kind string
}

func (rb *rbScope) exitsFor(a rbAcquire, implicitEnd token.Pos) []rbExit {
	var exits []rbExit
	for _, r := range rb.returns {
		if r > a.effPos {
			exits = append(exits, rbExit{r, "the return"})
		}
	}
	if a.loopEnd != token.NoPos {
		exits = append(exits, rbExit{a.loopEnd, "the end of the loop body"})
	} else if implicitEnd != token.NoPos && implicitEnd > a.effPos {
		exits = append(exits, rbExit{implicitEnd, "the end of the function"})
	}
	return exits
}

func (rb *rbScope) deferredReleaseFor(a rbAcquire) bool {
	for _, r := range rb.releases {
		if r.deferred && r.buf == a.buf && r.id == a.id {
			return true
		}
	}
	return false
}

func (rb *rbScope) releasedBetween(a rbAcquire, exit token.Pos) bool {
	for _, r := range rb.releases {
		if r.buf == a.buf && r.id == a.id && r.pos > a.effPos && r.pos < exit {
			return true
		}
	}
	return false
}

// implicitExit returns the fall-off-the-end exit position of a function
// body, or NoPos when the body cannot fall off the end (final return,
// infinite for loop, or panic).
func (rb *rbScope) implicitExit(body *ast.BlockStmt) token.Pos {
	if len(body.List) == 0 {
		return body.End()
	}
	switch last := body.List[len(body.List)-1].(type) {
	case *ast.ReturnStmt:
		return token.NoPos
	case *ast.ForStmt:
		if last.Cond == nil {
			return token.NoPos // infinite loop: exits only via returns inside
		}
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return token.NoPos
			}
		}
	}
	return body.End()
}
