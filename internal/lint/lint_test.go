package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"
)

// The golden-file harness loads hermetic packages from testdata/src (stub
// sync/time/net/... packages included, so no go-tool or GOROOT dependence),
// runs the full analyzer suite, and compares the findings against `// want`
// annotations in the sources:
//
//	expr // want "regexp"
//	expr // want "re1" "re2"          (two findings on this line)
//	expr // want[-1] "regexp"         (finding expected on the previous line;
//	                                   needed when a //lint: directive is the
//	                                   finding, since it swallows its own line)
//
// Each want must match exactly one finding at its target line, and every
// finding must be claimed by a want.

// tdImporter resolves imports from testdata/src by directory, type-checking
// stub packages on demand.
type tdImporter struct {
	fset *token.FileSet
	root string
	pkgs map[string]*types.Package
}

func (i *tdImporter) Import(path string) (*types.Package, error) {
	if p, ok := i.pkgs[path]; ok {
		return p, nil
	}
	files, err := parseDir(i.fset, filepath.Join(i.root, path))
	if err != nil {
		return nil, err
	}
	conf := types.Config{Importer: i}
	pkg, err := conf.Check(path, i.fset, files, nil)
	if err != nil {
		return nil, fmt.Errorf("typecheck stub %s: %w", path, err)
	}
	i.pkgs[path] = pkg
	return pkg, nil
}

func parseDir(fset *token.FileSet, dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	return files, nil
}

// loadTestPackage type-checks testdata/src/<name> hermetically and returns a
// ready Pass.
func loadTestPackage(t *testing.T, name string) *Pass {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	imp := &tdImporter{fset: fset, root: root, pkgs: make(map[string]*types.Package)}
	files, err := parseDir(fset, filepath.Join(root, name))
	if err != nil {
		t.Fatalf("parse %s: %v", name, err)
	}
	info := NewInfo()
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(name, fset, files, info)
	if err != nil {
		t.Fatalf("typecheck %s: %v", name, err)
	}
	return &Pass{Fset: fset, Files: files, Pkg: pkg, Info: info}
}

// want is one expectation: a finding at file:line matching re.
type want struct {
	file string
	line int
	re   *regexp.Regexp
}

// wantRx matches one `want` clause inside a comment: an optional [offset]
// followed by one or more quoted regexps.
var wantRx = regexp.MustCompile(`want(?:\[(-?\d+)\])?((?:\s+"(?:[^"\\]|\\.)*")+)`)

var quotedRx = regexp.MustCompile(`"(?:[^"\\]|\\.)*"`)

// collectWants extracts every want annotation from the parsed files.
func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) []want {
	t.Helper()
	var wants []want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.Contains(c.Text, "want") {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, m := range wantRx.FindAllStringSubmatch(c.Text, -1) {
					offset := 0
					if m[1] != "" {
						offset, _ = strconv.Atoi(m[1])
					}
					for _, q := range quotedRx.FindAllString(m[2], -1) {
						pat, err := strconv.Unquote(q)
						if err != nil {
							t.Fatalf("%s: bad want pattern %s: %v", pos, q, err)
						}
						re, err := regexp.Compile(pat)
						if err != nil {
							t.Fatalf("%s: bad want regexp %q: %v", pos, pat, err)
						}
						wants = append(wants, want{file: pos.Filename, line: pos.Line + offset, re: re})
					}
				}
			}
		}
	}
	return wants
}

// checkWants matches findings against wants one-to-one.
func checkWants(t *testing.T, findings []Finding, wants []want) {
	t.Helper()
	claimed := make([]bool, len(findings))
	for _, w := range wants {
		matched := false
		for i, f := range findings {
			if claimed[i] || f.Pos.Filename != w.file || f.Pos.Line != w.line {
				continue
			}
			if w.re.MatchString(fmt.Sprintf("[%s] %s", f.Analyzer, f.Message)) {
				claimed[i] = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s:%d: no finding matching %q", w.file, w.line, w.re)
		}
	}
	for i, f := range findings {
		if !claimed[i] {
			t.Errorf("unexpected finding: %s", f)
		}
	}
}

// runGolden loads one testdata package and verifies its annotations.
func runGolden(t *testing.T, name string) {
	t.Helper()
	pass := loadTestPackage(t, name)
	findings := pass.RunAnalyzers()
	checkWants(t, findings, collectWants(t, pass.Fset, pass.Files))
}

func TestRefbalanceGolden(t *testing.T)  { runGolden(t, "refbalance") }
func TestBufbalanceGolden(t *testing.T)  { runGolden(t, "bufbalance") }
func TestLockholdGolden(t *testing.T)    { runGolden(t, "lockhold") }
func TestHeadershareGolden(t *testing.T) { runGolden(t, "headershare") }
func TestAtomicmixGolden(t *testing.T)   { runGolden(t, "atomicmix") }
func TestGoleakGolden(t *testing.T)      { runGolden(t, "broker") }

// TestDroptaxonomyGolden: ignored TryPut refusals and uncounted PopIf sheds
// are findings; bound errors and counted sheds pass.
func TestDroptaxonomyGolden(t *testing.T) { runGolden(t, "droptaxonomy") }

// TestTypeswitchGolden: switches over message.Type must be exhaustive or
// carry a deliberate default; aliases cover their value.
func TestTypeswitchGolden(t *testing.T) { runGolden(t, "typeswitch") }

// TestLockorderGolden: a seeded two-mutex cycle — one direct nesting edge,
// one edge through the call graph — is reported on both edges.
func TestLockorderGolden(t *testing.T) { runGolden(t, "lockorder") }

// TestMetricdriftGolden: unfed taxonomy fields, counters that rot (never
// incremented / never read), and a snapshot conversion that drops a counter.
func TestMetricdriftGolden(t *testing.T) { runGolden(t, "metricdrift") }

// TestCrossPackageModule runs two packages as one module: xmoda acquires
// references, xmodb releases them. The hand-off through xmodb.Consume must
// pass without //lint:owns; the hand-off through xmodb.Inspect (which
// releases nothing) is the deliberate cross-package leak that must be
// reported.
func TestCrossPackageModule(t *testing.T) {
	pa := loadTestPackage(t, "xmoda")
	pb := loadTestPackage(t, "xmodb")
	findings := NewModule([]*Pass{pa, pb}).Run()
	wants := collectWants(t, pa.Fset, pa.Files)
	wants = append(wants, collectWants(t, pb.Fset, pb.Files)...)
	checkWants(t, findings, wants)
}

// TestGoleakFaultinjectGolden: the goleak net extends to the fault-injection
// package, in both literal and named-callee forms.
func TestGoleakFaultinjectGolden(t *testing.T) { runGolden(t, "faultinject") }

// TestDirectiveValidationGolden covers satellite 3: //lint:ignore with a
// wrong analyzer name or a missing reason is itself a finding, and a
// malformed or mistargeted suppression does not silence anything.
func TestDirectiveValidationGolden(t *testing.T) { runGolden(t, "directives") }

// TestSuppressedGolden: well-formed ignores on the finding's line or the line
// above silence it completely.
func TestSuppressedGolden(t *testing.T) {
	pass := loadTestPackage(t, "suppressed")
	if findings := pass.RunAnalyzers(); len(findings) != 0 {
		for _, f := range findings {
			t.Errorf("finding survived a well-formed suppression: %s", f)
		}
	}
}

// TestFindingString pins the canonical report format the CI step greps for.
func TestFindingString(t *testing.T) {
	f := Finding{
		Pos:      token.Position{Filename: "pkg/file.go", Line: 42},
		Analyzer: "lockhold",
		Message:  "blocking time.Sleep while holding s.mu (locked at line 40)",
	}
	got := f.String()
	if want := "pkg/file.go:42: [lockhold] blocking time.Sleep while holding s.mu (locked at line 40)"; got != want {
		t.Errorf("Finding.String() = %q, want %q", got, want)
	}
}

// TestFindingsSorted: RunAnalyzers output is deterministic — sorted by file,
// line, analyzer.
func TestFindingsSorted(t *testing.T) {
	pass := loadTestPackage(t, "lockhold")
	findings := pass.RunAnalyzers()
	if len(findings) < 2 {
		t.Fatalf("expected multiple findings, got %d", len(findings))
	}
	sorted := sort.SliceIsSorted(findings, func(i, j int) bool {
		if findings[i].Pos.Filename != findings[j].Pos.Filename {
			return findings[i].Pos.Filename < findings[j].Pos.Filename
		}
		if findings[i].Pos.Line != findings[j].Pos.Line {
			return findings[i].Pos.Line < findings[j].Pos.Line
		}
		return findings[i].Analyzer < findings[j].Analyzer
	})
	if !sorted {
		t.Error("findings are not sorted by file, line, analyzer")
	}
}

// TestKnownAnalyzers: the registry exposes all nine analyzers plus the
// directive pseudo-analyzer — ten suppressible names in all.
func TestKnownAnalyzers(t *testing.T) {
	known := KnownAnalyzers()
	for _, name := range []string{
		"refbalance", "lockhold", "headershare", "atomicmix", "goleak",
		"droptaxonomy", "lockorder", "typeswitch", "metricdrift", "directive",
	} {
		if !known[name] {
			t.Errorf("KnownAnalyzers() is missing %q", name)
		}
	}
	if len(known) != 10 {
		t.Errorf("KnownAnalyzers() has %d entries, want 10", len(known))
	}
}
