// Package objectstore is a hermetic stub of the real object store: the
// analyzers match types structurally (package name + type/method names), so
// the golden files type-check against this instead of the full module.
package objectstore

// ID identifies an object.
type ID uint64

// Store is the ref-counted object store stub.
type Store struct{}

// New returns an empty store.
func New() *Store { return &Store{} }

// Put inserts data with an initial reference count.
func (s *Store) Put(data []byte, refs int) ID { return 0 }

// TryPut inserts data unless the byte budget refuses admission.
func (s *Store) TryPut(data []byte, refs int) (ID, error) { return 0, nil }

// Get returns the object's bytes without copying.
func (s *Store) Get(id ID) ([]byte, error) { return nil, nil }

// Pin increments the reference count.
func (s *Store) Pin(id ID) error { return nil }

// Release decrements the reference count.
func (s *Store) Release(id ID) error { return nil }
