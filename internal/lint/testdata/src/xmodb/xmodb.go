// Package xmodb is the releasing half of the cross-package refbalance
// golden: its summaries must carry the release contract across the package
// boundary into xmoda.
package xmodb

import "objectstore"

// Consume releases the reference on every path.
func Consume(s *objectstore.Store, id objectstore.ID) error {
	return s.Release(id)
}

// Inspect reads the object's identity without releasing anything.
func Inspect(s *objectstore.Store, id objectstore.ID) uint64 {
	return uint64(id)
}
