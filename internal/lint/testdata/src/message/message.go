// Package message is a hermetic stub of the real message package.
package message

// Header is the per-message routing metadata.
type Header struct {
	ID       uint64
	ObjectID uint64
	Dst      []string
}

// Message pairs a header with a body.
type Message struct {
	Header *Header
	Body   any
}

// Type tags the payload carried by a message, mirroring the real enum so the
// typeswitch analyzer's goldens can exercise exhaustiveness.
type Type uint8

// Message types.
const (
	TypeRollout Type = iota + 1
	TypeWeights
	TypeStats
	TypeControl
	TypeDummy
	TypeWeightsDelta
)
