// Package message is a hermetic stub of the real message package.
package message

// Header is the per-message routing metadata.
type Header struct {
	ID       uint64
	ObjectID uint64
	Dst      []string
}

// Message pairs a header with a body.
type Message struct {
	Header *Header
	Body   any
}
