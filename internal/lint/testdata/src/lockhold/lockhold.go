// Package lockhold seeds violations and corrected forms for the lockhold
// analyzer.
package lockhold

import (
	"io"
	"net"
	"queue"
	"sync"
	"time"
)

type server struct {
	mu sync.Mutex
	q  *queue.Queue[int]
}

// sleepUnderLock parks every other client of s.mu for the whole sleep.
func (s *server) sleepUnderLock() {
	s.mu.Lock()
	time.Sleep(time.Second) // want "blocking time.Sleep while holding s.mu"
	s.mu.Unlock()
}

// sleepOutsideLock is the corrected form.
func (s *server) sleepOutsideLock() {
	s.mu.Lock()
	s.mu.Unlock()
	time.Sleep(time.Second)
}

// queuePutUnderDeferredLock: the deferred unlock keeps the mutex held across
// the blocking Put.
func (s *server) queuePutUnderDeferredLock(v int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.q.Put(v) // want "blocking queue.Put while holding s.mu"
}

// tryPutUnderLock is fine: TryPut never blocks.
func (s *server) tryPutUnderLock(v int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.q.TryPut(v)
}

// recvUnderLock parks on a channel while holding the lock.
func (s *server) recvUnderLock(ch chan int) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return <-ch // want "blocking channel receive while holding s.mu"
}

// sendUnderLock parks on a channel send while holding the lock.
func (s *server) sendUnderLock(ch chan int, v int) {
	s.mu.Lock()
	ch <- v // want "blocking channel send while holding s.mu"
	s.mu.Unlock()
}

// sendAfterUnlock is the corrected form.
func (s *server) sendAfterUnlock(ch chan int, v int) {
	s.mu.Lock()
	s.mu.Unlock()
	ch <- v
}

// selectNoDefaultUnderLock parks until a case fires.
func (s *server) selectNoDefaultUnderLock(a, b chan int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	select { // want "blocking select with no default while holding s.mu"
	case <-a:
	case <-b:
	}
}

// selectWithDefaultUnderLock never parks.
func (s *server) selectWithDefaultUnderLock(a chan int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case <-a:
	default:
	}
}

type condServer struct {
	mu   sync.Mutex
	cond *sync.Cond
}

// condWaitUnderLock is exempt: Cond.Wait releases the mutex while parked.
func (c *condServer) condWaitUnderLock() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.cond.Wait()
}

// netWriteUnderLock performs network I/O while holding the lock.
func (s *server) netWriteUnderLock(conn net.Conn, b []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, _ = conn.Write(b) // want "blocking net I/O"
}

// readFullUnderLock blocks on io.ReadFull while holding the lock.
func (s *server) readFullUnderLock(r io.Reader, b []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, _ = io.ReadFull(r, b) // want "blocking io.ReadFull while holding s.mu"
}

type rw struct{ mu sync.RWMutex }

// rlockSleep: read locks count too.
func (r *rw) rlockSleep() {
	r.mu.RLock()
	time.Sleep(time.Second) // want "blocking time.Sleep while holding r.mu"
	r.mu.RUnlock()
}

// goroutineStartsUnlocked: a literal spawned under the lock runs with its own
// (empty) lock state, so its receive is not a finding.
func (s *server) goroutineStartsUnlocked(ch chan int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	go func() {
		<-ch
	}()
}
