// Package refbalance seeds violations and corrected forms for the
// refbalance analyzer.
package refbalance

import "objectstore"

// getNoRelease leaks: the reference falls off the end of the function.
func getNoRelease(s *objectstore.Store, id objectstore.ID) {
	data, err := s.Get(id) // want "objectstore Get\\(id\\) is not released on the path to the end of the function"
	if err != nil {
		return
	}
	_ = data
}

// getEarlyReturn leaks on the flag path only.
func getEarlyReturn(s *objectstore.Store, id objectstore.ID, flag bool) error {
	data, err := s.Get(id) // want "objectstore Get\\(id\\) is not released on the path to the return"
	if err != nil {
		return err
	}
	if flag {
		return nil
	}
	_ = data
	return s.Release(id)
}

// getDeferRelease is the corrected form: a deferred release covers every path,
// and the err-checked early return is the store-miss exemption.
func getDeferRelease(s *objectstore.Store, id objectstore.ID, flag bool) error {
	data, err := s.Get(id)
	if err != nil {
		return err
	}
	defer s.Release(id)
	if flag {
		return nil
	}
	_ = data
	return nil
}

// getReleaseAllPaths releases explicitly on each exit instead.
func getReleaseAllPaths(s *objectstore.Store, id objectstore.ID, flag bool) error {
	_, err := s.Get(id)
	if err != nil {
		return err
	}
	if flag {
		return s.Release(id)
	}
	return s.Release(id)
}

// loopGetNoRelease leaks one reference per iteration.
func loopGetNoRelease(s *objectstore.Store, ids []objectstore.ID) {
	for _, id := range ids {
		data, err := s.Get(id) // want "objectstore Get\\(id\\) is not released on the path to the end of the loop body"
		if err != nil {
			continue
		}
		_ = data
	}
}

// loopGetRelease is the corrected form.
func loopGetRelease(s *objectstore.Store, ids []objectstore.ID) {
	for _, id := range ids {
		data, err := s.Get(id)
		if err != nil {
			continue
		}
		_ = data
		_ = s.Release(id)
	}
}

// pinNoRelease leaks the pinned reference.
func pinNoRelease(s *objectstore.Store, id objectstore.ID) error {
	if err := s.Pin(id); err != nil { // want "objectstore Pin\\(id\\) is not released"
		return err
	}
	return nil
}

// pinBalanced pairs the pin with a deferred release.
func pinBalanced(s *objectstore.Store, id objectstore.ID) error {
	if err := s.Pin(id); err != nil {
		return err
	}
	defer s.Release(id)
	return nil
}

// handOff transfers the reference to a downstream owner, so the missing
// release is by design and declared with the owns directive.
//
//lint:owns the forwarder queue releases after the remote send resolves
func handOff(s *objectstore.Store, id objectstore.ID) ([]byte, error) {
	return s.Get(id)
}

type wrapper struct{ s *objectstore.Store }

// release is a named wrapper; refbalance accepts it as a releasing call.
func (w *wrapper) release(id objectstore.ID) { _ = w.s.Release(id) }

// viaWrapper balances the Get through the wrapper helper.
func viaWrapper(w *wrapper, id objectstore.ID) {
	_, err := w.s.Get(id)
	if err != nil {
		return
	}
	w.release(id)
}

// consumeRef releases its argument on every path. Its summary advertises the
// hand-off (ReleasesParams includes the id parameter), so callers passing a
// held reference here are balanced without any //lint:owns escape — note the
// name is deliberately not Release-shaped.
func consumeRef(s *objectstore.Store, id objectstore.ID) {
	_ = s.Release(id)
}

// noteRef only inspects the reference; passing a held one here releases
// nothing.
func noteRef(s *objectstore.Store, id objectstore.ID) {}

// handoffToCallee is balanced interprocedurally: the Get is matched by
// consumeRef's documented release.
func handoffToCallee(s *objectstore.Store, id objectstore.ID) {
	data, err := s.Get(id)
	if err != nil {
		return
	}
	_ = data
	consumeRef(s, id)
}

// handoffLeak hands the reference to a callee that does not release it.
func handoffLeak(s *objectstore.Store, id objectstore.ID) {
	data, err := s.Get(id) // want "objectstore Get\\(id\\) is not released on the path to the end of the function"
	if err != nil {
		return
	}
	_ = data
	noteRef(s, id)
}

// staleOwns is marked owns, but consumeRef now provably releases the
// reference: the directive outlived the code it excused.
//
//lint:owns legacy note: the sender used to keep the reference
func staleOwns(s *objectstore.Store, id objectstore.ID) {
	// want[-2] "stale //lint:owns: every reference acquired here is released on all paths"
	data, err := s.Get(id)
	if err != nil {
		return
	}
	_ = data
	consumeRef(s, id)
}
