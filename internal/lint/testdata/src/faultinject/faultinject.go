// Package faultinject seeds goleak coverage for the fault-injection harness
// and the supervision/redial loops: goroutines that replay fault schedules or
// redial peers must observe a stop signal like any channel goroutine.
package faultinject

import (
	"net"
	"sync"
)

type injector struct {
	wg   sync.WaitGroup
	done chan struct{}
	ln   net.Listener
}

// replayForever spawns an unstoppable fault-replay goroutine.
func (i *injector) replayForever() {
	go func() { // want "observes no stop signal"
		for {
		}
	}()
}

// replayUntilDone observes the done channel each iteration.
func (i *injector) replayUntilDone() {
	go func() {
		for {
			select {
			case <-i.done:
				return
			default:
			}
		}
	}()
}

func (i *injector) pump() {
	for {
	}
}

// startPump spawns a named callee with no shutdown evidence in its body.
func (i *injector) startPump() {
	go i.pump() // want "goroutine pump observes no stop signal"
}

// redialLoop backs off on the done channel — the supervision/redial shape.
func (i *injector) redialLoop() {
	for {
		select {
		case <-i.done:
			return
		default:
		}
	}
}

func (i *injector) startRedial() {
	go i.redialLoop()
}

// acceptLoop exits when its listener closes.
func (i *injector) acceptLoop() {
	for {
		if _, err := i.ln.Accept(); err != nil {
			return
		}
	}
}

func (i *injector) startAccept() {
	i.wg.Add(1)
	go i.acceptLoop()
}
