// Package serialize stubs the pooled-buffer API surface the refbalance
// analyzer tracks.
package serialize

// GetBuf hands out a pooled buffer owned by the caller.
func GetBuf(capHint int) []byte { return make([]byte, 0, capHint) }

// FreeBuf returns a buffer to the pool.
func FreeBuf(b []byte) { _ = b }

// MarshalPooled encodes body into a pooled buffer owned by the caller.
func MarshalPooled(body any) ([]byte, error) { return nil, nil }
