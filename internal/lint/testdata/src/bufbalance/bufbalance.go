// Package bufbalance seeds violations and corrected forms for the pooled
// serialization-buffer leg of the refbalance analyzer.
package bufbalance

import "serialize"

// getNoFree leaks: the buffer falls off the end of the function.
func getNoFree() {
	buf := serialize.GetBuf(64) // want "pooled buffer buf from serialize.GetBuf is not freed on the path to the end of the function"
	_ = buf
}

// getEarlyReturn leaks on the flag path only.
func getEarlyReturn(flag bool) error {
	buf := serialize.GetBuf(64) // want "pooled buffer buf from serialize.GetBuf is not freed on the path to the return"
	if flag {
		return nil
	}
	_ = buf
	serialize.FreeBuf(buf)
	return nil
}

// getFreeAllPaths frees explicitly on each exit.
func getFreeAllPaths(flag bool) {
	buf := serialize.GetBuf(64)
	if flag {
		serialize.FreeBuf(buf)
		return
	}
	_ = buf
	serialize.FreeBuf(buf)
}

// getDeferFree is the corrected form: a deferred free covers every path.
func getDeferFree(flag bool) error {
	buf := serialize.GetBuf(64)
	defer serialize.FreeBuf(buf)
	if flag {
		return nil
	}
	_ = buf
	return nil
}

// marshalErrExempt: a failed MarshalPooled holds nothing, so the err-checked
// early return is exempt, and the success path frees.
func marshalErrExempt(body any) error {
	raw, err := serialize.MarshalPooled(body)
	if err != nil {
		return err
	}
	_ = raw
	serialize.FreeBuf(raw)
	return nil
}

// marshalLeak leaks the encoded buffer past the error check.
func marshalLeak(body any) error {
	raw, err := serialize.MarshalPooled(body) // want "pooled buffer raw from serialize.MarshalPooled is not freed on the path to the return"
	if err != nil {
		return err
	}
	_ = raw
	return nil
}

// loopNoFree leaks one buffer per iteration.
func loopNoFree(sizes []int) {
	for _, n := range sizes {
		buf := serialize.GetBuf(n) // want "pooled buffer buf from serialize.GetBuf is not freed on the path to the end of the loop body"
		_ = buf
	}
}

// loopFree is the corrected form.
func loopFree(sizes []int) {
	for _, n := range sizes {
		buf := serialize.GetBuf(n)
		_ = buf
		serialize.FreeBuf(buf)
	}
}

// handOff transfers buffer ownership to the caller, declared with owns.
//
//lint:owns the caller frees the returned buffer after the frame is written
func handOff(n int) []byte {
	buf := serialize.GetBuf(n)
	return buf
}

// release is Release-shaped but is not FreeBuf.
func release(b []byte) { _ = b }

// releaseDoesNotFree: a Release-shaped call must not satisfy a buffer
// acquire — only serialize.FreeBuf frees pooled buffers.
func releaseDoesNotFree() {
	buf := serialize.GetBuf(64) // want "pooled buffer buf from serialize.GetBuf is not freed on the path to the end of the function"
	release(buf)
}

// nestedHandOff is untracked by design: the pooled call's result goes
// straight to the enclosing call, never bound to a caller-owned name.
func nestedHandOff() {
	release(serialize.GetBuf(64))
}
