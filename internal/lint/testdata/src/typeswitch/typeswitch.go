// Package typeswitch exercises the typeswitch analyzer: every switch over
// message.Type must list all declared constants or carry a deliberate
// default clause.
package typeswitch

import "message"

// classifyExhaustive covers every constant: no finding.
func classifyExhaustive(t message.Type) string {
	switch t {
	case message.TypeRollout:
		return "rollout"
	case message.TypeWeights, message.TypeWeightsDelta:
		return "weights"
	case message.TypeStats:
		return "stats"
	case message.TypeControl:
		return "control"
	case message.TypeDummy:
		return "dummy"
	}
	return ""
}

// classifyDefaulted funnels new classes through a deliberate default: no
// finding even though cases are missing.
func classifyDefaulted(t message.Type) bool {
	switch t {
	case message.TypeWeights, message.TypeWeightsDelta:
		return true
	default:
		return false
	}
}

// classifyLeaky forgets the newer classes and has no default: a new message
// type silently falls through.
func classifyLeaky(t message.Type) bool {
	switch t { // want "switch over message.Type is not exhaustive: missing TypeControl, TypeDummy, TypeWeightsDelta; add the case\\(s\\) or a deliberate default"
	case message.TypeRollout, message.TypeStats:
		return true
	case message.TypeWeights:
		return false
	}
	return false
}

// classifyAliased covers a constant through a same-value alias: aliases
// count, so only the genuinely missing classes are reported.
const weightsAlias = message.TypeWeights

func classifyAliased(t message.Type) bool {
	switch t { // want "switch over message.Type is not exhaustive: missing TypeDummy, TypeWeightsDelta; add the case\\(s\\) or a deliberate default"
	case message.TypeRollout, message.TypeStats, message.TypeControl:
		return false
	case weightsAlias:
		return true
	}
	return false
}

// switchOverOtherType is not a message.Type switch: ignored.
func switchOverOtherType(n int) bool {
	switch n {
	case 1:
		return true
	}
	return false
}
