// Package io is a hermetic stub of the standard library package.
package io

// Reader is the standard Reader interface.
type Reader interface {
	Read(p []byte) (int, error)
}

// ReadFull reads exactly len(buf) bytes.
func ReadFull(r Reader, buf []byte) (int, error) { return 0, nil }
