// Package queue is a hermetic stub of the real blocking queue.
package queue

// Queue is a blocking FIFO stub.
type Queue[T any] struct{}

// New returns a queue.
func New[T any]() *Queue[T] { return &Queue[T]{} }

// Put blocks while a bounded queue is full.
func (q *Queue[T]) Put(item T) error { return nil }

// TryPut never blocks.
func (q *Queue[T]) TryPut(item T) error { return nil }

// Get blocks until an item is available.
func (q *Queue[T]) Get() (T, error) {
	var zero T
	return zero, nil
}

// PopIf pops the head when pred approves it.
func (q *Queue[T]) PopIf(pred func(T) bool) (T, bool) {
	var zero T
	return zero, false
}

// TryGet never blocks.
func (q *Queue[T]) TryGet() (T, error) {
	var zero T
	return zero, nil
}

// GetTimeout blocks up to a deadline.
func (q *Queue[T]) GetTimeout(d int64) (T, error) {
	var zero T
	return zero, nil
}
