// Package lockorder seeds a two-mutex ordering cycle for the lockorder
// analyzer: one edge is a direct nested acquisition, the other arises only
// interprocedurally (a call made with a lock held reaches a function that
// takes the opposite lock), so the golden exercises both the direct-edge
// path and the call-graph closure.
package lockorder

import "sync"

// Ledger and Journal each guard their own state.
type Ledger struct {
	mu sync.Mutex
	n  int
}

type Journal struct {
	mu sync.Mutex
	n  int
}

// appendJournal takes the journal lock on its own; it is the far end of the
// interprocedural edge.
func appendJournal(j *Journal) {
	j.mu.Lock()
	j.n++
	j.mu.Unlock()
}

// ledgerThenJournal holds the ledger lock across a call that acquires the
// journal lock: edge Ledger.mu → Journal.mu, discovered through the closure.
func ledgerThenJournal(l *Ledger, j *Journal) {
	l.mu.Lock()
	appendJournal(j) // want "lock-order cycle: lockorder.Journal.mu acquired while lockorder.Ledger.mu is held"
	l.n++
	l.mu.Unlock()
}

// journalThenLedger nests the acquisitions directly the other way around:
// edge Journal.mu → Ledger.mu, closing the cycle.
func journalThenLedger(l *Ledger, j *Journal) {
	j.mu.Lock()
	l.mu.Lock() // want "lock-order cycle: lockorder.Ledger.mu acquired while lockorder.Journal.mu is held"
	l.n++
	j.n++
	l.mu.Unlock()
	j.mu.Unlock()
}

// nestedSameOrder repeats the Ledger → Journal order: consistent nesting is
// not a cycle and stays silent (the edge is already represented above).
func nestedSameOrder(l *Ledger, j *Journal) {
	l.mu.Lock()
	j.mu.Lock()
	j.n++
	j.mu.Unlock()
	l.mu.Unlock()
}
