// Package headershare seeds violations and corrected forms for the
// headershare analyzer.
package headershare

import (
	"message"
	"queue"
)

// sharedHeaderFanout pushes one header to every destination queue: after the
// loop all consumers alias the same Header.
func sharedHeaderFanout(h *message.Header, queues []*queue.Queue[*message.Header]) {
	for _, q := range queues {
		_ = q.Put(h) // want "pushed to a queue Put inside a loop"
	}
}

// copiedHeaderFanout is the corrected form: one copy per destination.
func copiedHeaderFanout(h *message.Header, queues []*queue.Queue[*message.Header]) {
	for _, q := range queues {
		hc := *h
		_ = q.Put(&hc)
	}
}

// fieldReadIsFine reads a scalar through the header without sharing it.
func fieldReadIsFine(h *message.Header, q *queue.Queue[uint64]) {
	for i := 0; i < 3; i++ {
		_ = q.Put(h.ObjectID)
	}
}

// sharedHeaderChannelSend fans the same pointer out over channels.
func sharedHeaderChannelSend(h *message.Header, chans []chan *message.Header) {
	for _, c := range chans {
		c <- h // want "pushed to a channel send inside a loop"
	}
}

// freshHeaderChannelSend is fine: a fresh literal per destination.
func freshHeaderChannelSend(chans []chan *message.Header) {
	for _, c := range chans {
		c <- &message.Header{}
	}
}

// goroutineCapture aliases the header between the spawner and the goroutine.
func goroutineCapture(h *message.Header) {
	go func() {
		_ = h // want "goroutine captures"
	}()
}

// goroutineParam is the corrected form: the goroutine gets a value copy.
func goroutineParam(h *message.Header) {
	go func(hc message.Header) {
		_ = hc
	}(*h)
}

type item struct{ header *message.Header }

// wrappedShare hides the shared pointer inside a struct literal; it is still
// the same Header fanned out N times.
func wrappedShare(h *message.Header, q *queue.Queue[item]) {
	for i := 0; i < 3; i++ {
		_ = q.Put(item{header: h}) // want "pushed to a queue Put inside a loop"
	}
}

// wrappedCopy is the corrected form of wrappedShare.
func wrappedCopy(h *message.Header, q *queue.Queue[item]) {
	for i := 0; i < 3; i++ {
		hc := *h
		_ = q.Put(item{header: &hc})
	}
}
