// Package suppressed shows well-formed //lint:ignore directives silencing
// real findings; the golden expectation is zero findings.
package suppressed

import (
	"sync"
	"time"
)

type actor struct{ mu sync.Mutex }

// sleepSuppressedPrevLine would be a lockhold finding; the directive on the
// line above suppresses it.
func (a *actor) sleepSuppressedPrevLine() {
	a.mu.Lock()
	defer a.mu.Unlock()
	//lint:ignore lockhold modelled handler cost must serialize under the actor lock
	time.Sleep(time.Second)
}

// sleepSuppressedSameLine carries the directive on the finding's own line.
func (a *actor) sleepSuppressedSameLine() {
	a.mu.Lock()
	defer a.mu.Unlock()
	time.Sleep(time.Second) //lint:ignore lockhold modelled handler cost must serialize under the actor lock
}
