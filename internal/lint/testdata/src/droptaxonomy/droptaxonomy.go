// Package droptaxonomy exercises the droptaxonomy analyzer: ignored TryPut
// results and uncounted PopIf sheds are findings; bound errors and counted
// sheds are clean.
package droptaxonomy

import (
	"objectstore"
	"queue"
)

// counter is a stand-in for an atomic drop counter.
type counter struct{}

// Add increments the counter.
func (counter) Add(delta int64) {}

// health mirrors the broker's taxonomy struct: some fields are drop
// counters, some are ordinary traffic counters.
type health struct {
	dropShedOldest counter
	statsRouted    counter
}

var shedBytes counter

// ignoredStoreTryPut discards the store's admission verdict entirely.
func ignoredStoreTryPut(s *objectstore.Store, b []byte) {
	s.TryPut(b, 1) // want "TryPut result ignored"
}

// blankedStoreErr binds the refusal to the blank identifier.
func blankedStoreErr(s *objectstore.Store, b []byte) objectstore.ID {
	id, _ := s.TryPut(b, 1) // want "TryPut error discarded"
	return id
}

// boundStoreErr handles the refusal: clean.
func boundStoreErr(s *objectstore.Store, h *health, b []byte) objectstore.ID {
	id, err := s.TryPut(b, 1)
	if err != nil {
		h.dropShedOldest.Add(1)
		return 0
	}
	return id
}

// ignoredQueueTryPut drops a full-queue refusal on the floor.
func ignoredQueueTryPut(q *queue.Queue[int]) {
	q.TryPut(7) // want "TryPut result ignored"
}

// blankedQueueErr is the single-result blank-assign shape.
func blankedQueueErr(q *queue.Queue[int]) {
	_ = q.TryPut(7) // want "TryPut error discarded"
}

// returnedQueueErr propagates the refusal to the caller: clean.
func returnedQueueErr(q *queue.Queue[int]) error {
	return q.TryPut(7)
}

// uncountedShed pops droppable heads without touching any drop counter.
func uncountedShed(q *queue.Queue[int], h *health) {
	for {
		v, ok := q.PopIf(func(int) bool { return true }) // want "PopIf shed is not counted"
		if !ok {
			return
		}
		h.statsRouted.Add(int64(v)) // traffic counter, not a drop counter
	}
}

// countedShed increments a taxonomy counter for every shed: clean.
func countedShed(q *queue.Queue[int], h *health) {
	for {
		if _, ok := q.PopIf(func(int) bool { return true }); !ok {
			return
		}
		h.dropShedOldest.Add(1)
	}
}

// countedShedPackageVar counts through a package-level shed counter: clean.
func countedShedPackageVar(q *queue.Queue[int]) {
	if _, ok := q.PopIf(func(int) bool { return true }); ok {
		shedBytes.Add(1)
	}
}
