// Package time is a hermetic stub of the standard library package.
package time

// Duration is a span of time in nanoseconds.
type Duration int64

// Second is one second.
const Second Duration = 1000000000

// Sleep pauses the calling goroutine.
func Sleep(d Duration) {}
