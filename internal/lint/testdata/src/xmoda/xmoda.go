// Package xmoda is the acquiring half of the cross-package refbalance
// golden: references taken here are handed to xmodb, and only the functions
// whose callee provably releases stay silent.
package xmoda

import (
	"objectstore"
	"xmodb"
)

// HandOff is balanced across the package boundary: xmodb.Consume's summary
// proves it releases the id parameter, so no //lint:owns is needed.
func HandOff(s *objectstore.Store, id objectstore.ID) error {
	data, err := s.Get(id)
	if err != nil {
		return err
	}
	_ = data
	return xmodb.Consume(s, id)
}

// Leak crosses the boundary into a callee that does not release: the
// deliberate cross-package leak the module run must report.
func Leak(s *objectstore.Store, id objectstore.ID) uint64 {
	data, err := s.Get(id) // want "objectstore Get\\(id\\) is not released on the path to the return"
	if err != nil {
		return 0
	}
	_ = data
	return xmodb.Inspect(s, id)
}
