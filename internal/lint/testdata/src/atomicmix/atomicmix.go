// Package atomicmix seeds violations and corrected forms for the atomicmix
// analyzer.
package atomicmix

import "sync/atomic"

// counters bears atomic fields: copying it forks the counters.
type counters struct {
	hits   atomic.Int64
	misses atomic.Int64
}

// snapshotByValue copies the whole struct out from under concurrent writers.
func snapshotByValue(c *counters) counters {
	return *c // want "copies atomic-bearing"
}

// total copies the receiver on every call.
func (c counters) total() int64 { // want "value receiver"
	return c.hits.Load() + c.misses.Load()
}

// totalPtr is the corrected form.
func (c *counters) totalPtr() int64 {
	return c.hits.Load() + c.misses.Load()
}

func use(c counters)     {}
func usePtr(c *counters) {}

// passByValue copies into the callee.
func passByValue(c *counters) {
	use(*c) // want "copies atomic-bearing"
}

// passByPointer is the corrected form.
func passByPointer(c *counters) {
	usePtr(c)
}

// rangeCopies duplicates each element into the loop variable.
func rangeCopies(cs []counters) {
	for _, c := range cs { // want "range copies atomic-bearing"
		_ = &c
	}
}

// rangeByIndex is the corrected form.
func rangeByIndex(cs []counters) {
	for i := range cs {
		_ = cs[i].hits.Load()
	}
}

// mixed touches the same field atomically and plainly.
type mixed struct {
	n int64
}

func (m *mixed) incAtomic() {
	atomic.AddInt64(&m.n, 1)
}

func (m *mixed) readPlain() int64 {
	return m.n // want "accessed with atomic.AddInt64"
}

// disciplined uses atomic access everywhere: no findings.
type disciplined struct {
	n int64
}

func (d *disciplined) inc() {
	atomic.AddInt64(&d.n, 1)
}

func (d *disciplined) read() int64 {
	return atomic.LoadInt64(&d.n)
}
