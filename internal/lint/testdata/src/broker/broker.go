// Package broker seeds violations and corrected forms for the goleak
// analyzer, which only fires in the broker/fabric/core packages.
package broker

import (
	"queue"
	"sync"
)

type worker struct {
	wg      sync.WaitGroup
	stopped chan struct{}
	q       *queue.Queue[int]
}

// fireAndForget spawns a goroutine nothing can ever stop.
func (w *worker) fireAndForget() {
	go func() { // want "observes no stop signal"
		for i := 0; ; i++ {
			_ = i
		}
	}()
}

// waitGroupLoop is owned: Done on exit, and the queue Get loop unblocks with
// ErrClosed when the queue shuts down.
func (w *worker) waitGroupLoop() {
	w.wg.Add(1)
	go func() {
		defer w.wg.Done()
		for {
			if _, err := w.q.Get(); err != nil {
				return
			}
		}
	}()
}

// doneChannelLoop observes the stop channel each iteration.
func (w *worker) doneChannelLoop() {
	go func() {
		for {
			select {
			case <-w.stopped:
				return
			default:
			}
		}
	}()
}

func (w *worker) run() {}

// startMethod spawns a named method with no shutdown evidence in its body —
// as much of a leak as the literal form.
func (w *worker) startMethod() {
	go w.run() // want "goroutine run observes no stop signal"
}

// drain loops on the queue Get family, which returns ErrClosed at shutdown.
func (w *worker) drain() {
	for {
		if _, err := w.q.Get(); err != nil {
			return
		}
	}
}

// startDrain spawns a named method whose body carries the evidence.
func (w *worker) startDrain() {
	go w.drain()
}

// startExternal spawns a callee declared outside this package: out of scope
// (reviewed where it is declared).
func (w *worker) startExternal(f func()) {
	go f()
}

// Port mimics the real broker.Port: Recv errors once the broker closes the
// client's ID queue, so a receiver loop on it is shutdown-aware.
type Port struct{}

// Recv blocks for the next message.
func (p *Port) Recv() (int, error) { return 0, nil }

// receiverLoop loops on Port.Recv — unblocked by broker shutdown.
func (w *worker) receiverLoop(port *Port) {
	go func() {
		for {
			if _, err := port.Recv(); err != nil {
				return
			}
		}
	}()
}
