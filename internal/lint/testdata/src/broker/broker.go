// Package broker seeds violations and corrected forms for the goleak
// analyzer, which only fires in the broker/fabric/core packages.
package broker

import (
	"queue"
	"sync"
)

type worker struct {
	wg      sync.WaitGroup
	stopped chan struct{}
	q       *queue.Queue[int]
}

// fireAndForget spawns a goroutine nothing can ever stop.
func (w *worker) fireAndForget() {
	go func() { // want "observes no stop signal"
		for i := 0; ; i++ {
			_ = i
		}
	}()
}

// waitGroupLoop is owned: Done on exit, and the queue Get loop unblocks with
// ErrClosed when the queue shuts down.
func (w *worker) waitGroupLoop() {
	w.wg.Add(1)
	go func() {
		defer w.wg.Done()
		for {
			if _, err := w.q.Get(); err != nil {
				return
			}
		}
	}()
}

// doneChannelLoop observes the stop channel each iteration.
func (w *worker) doneChannelLoop() {
	go func() {
		for {
			select {
			case <-w.stopped:
				return
			default:
			}
		}
	}()
}

func (w *worker) run() {}

// startMethod is out of scope: goleak checks literals only; named methods are
// reviewed through their Start/Stop owner.
func (w *worker) startMethod() {
	go w.run()
}
