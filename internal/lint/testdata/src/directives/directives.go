// Package directives exercises //lint: directive validation: a suppression
// that cannot explain itself is itself a finding. The want annotations use a
// [-1] offset because a //lint: comment swallows the rest of its own line.
package directives

import (
	"sync"
	"time"
)

// badIgnores seeds one malformed directive of each kind.
func badIgnores() {
	//lint:ignore nosuchanalyzer sleeping is fine here
	time.Sleep(time.Second) // want[-1] "names unknown analyzer \"nosuchanalyzer\""
	//lint:ignore lockhold
	time.Sleep(time.Second) // want[-1] "is missing a reason"
	//lint:ignore
	time.Sleep(time.Second) // want[-1] "missing an analyzer name"
	//lint:frobnicate whatever
	time.Sleep(time.Second) // want[-1] "unknown //lint: directive \"frobnicate\""
}

//lint:owns
func ownsNeedsReason() {} // want[-1] "//lint:owns is missing a reason"

type locked struct{ mu sync.Mutex }

// wrongNameDoesNotSuppress: the directive is well-formed but names a
// different analyzer, so the lockhold finding survives.
func (l *locked) wrongNameDoesNotSuppress() {
	l.mu.Lock()
	defer l.mu.Unlock()
	//lint:ignore refbalance wrong analyzer for this finding
	time.Sleep(time.Second) // want "blocking time.Sleep while holding l.mu"
}

// malformedDoesNotSuppress: a directive with no reason is malformed, so it
// reports itself and the finding it sat above survives.
func (l *locked) malformedDoesNotSuppress() {
	l.mu.Lock()
	defer l.mu.Unlock()
	//lint:ignore lockhold
	time.Sleep(time.Second) // want[-1] "is missing a reason" // want "blocking time.Sleep while holding l.mu"
}
