// Package atomic is a hermetic stub of sync/atomic.
package atomic

// Int64 is an atomically accessed int64 stub.
type Int64 struct{ v int64 }

func (x *Int64) Load() int64           { return x.v }
func (x *Int64) Store(v int64)         { x.v = v }
func (x *Int64) Add(delta int64) int64 { return x.v }

// Int32 is an atomically accessed int32 stub.
type Int32 struct{ v int32 }

func (x *Int32) Load() int32           { return x.v }
func (x *Int32) Store(v int32)         { x.v = v }
func (x *Int32) Add(delta int32) int32 { return x.v }

// Bool is an atomically accessed bool stub.
type Bool struct{ v bool }

func (x *Bool) Load() bool   { return x.v }
func (x *Bool) Store(v bool) { x.v = v }

// Value is an atomically accessed interface stub.
type Value struct{ v any }

func (x *Value) Load() any   { return x.v }
func (x *Value) Store(v any) { x.v = v }

// AddInt64 atomically adds delta to *addr.
func AddInt64(addr *int64, delta int64) int64 { return *addr }

// LoadInt64 atomically loads *addr.
func LoadInt64(addr *int64) int64 { return *addr }

// StoreInt64 atomically stores v into *addr.
func StoreInt64(addr *int64, v int64) {}

// CompareAndSwapInt64 performs an atomic CAS on *addr.
func CompareAndSwapInt64(addr *int64, old, new int64) bool { return false }
