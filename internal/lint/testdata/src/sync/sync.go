// Package sync is a hermetic stub of the standard library package: only the
// identifiers the analyzers match structurally.
package sync

// Locker is the standard Locker interface.
type Locker interface {
	Lock()
	Unlock()
}

// Mutex is a mutual-exclusion lock stub.
type Mutex struct{}

func (m *Mutex) Lock()         {}
func (m *Mutex) TryLock() bool { return true }
func (m *Mutex) Unlock()       {}

// RWMutex is a reader/writer lock stub.
type RWMutex struct{}

func (m *RWMutex) Lock()          {}
func (m *RWMutex) Unlock()        {}
func (m *RWMutex) RLock()         {}
func (m *RWMutex) RUnlock()       {}
func (m *RWMutex) TryLock() bool  { return true }
func (m *RWMutex) TryRLock() bool { return true }

// WaitGroup is a completion-waiting stub.
type WaitGroup struct{}

func (w *WaitGroup) Add(delta int) {}
func (w *WaitGroup) Done()         {}
func (w *WaitGroup) Wait()         {}

// Cond is a condition-variable stub.
type Cond struct {
	L Locker
}

// NewCond returns a condition variable.
func NewCond(l Locker) *Cond { return &Cond{L: l} }

func (c *Cond) Wait()      {}
func (c *Cond) Signal()    {}
func (c *Cond) Broadcast() {}

// Once is a one-shot stub.
type Once struct{}

func (o *Once) Do(f func()) {}
