// Package net is a hermetic stub of the standard library package.
package net

// Conn is a stream connection stub.
type Conn interface {
	Read(b []byte) (int, error)
	Write(b []byte) (int, error)
	Close() error
}

// Listener is a stream listener stub.
type Listener interface {
	Accept() (Conn, error)
	Close() error
}

// Dial connects to an address.
func Dial(network, address string) (Conn, error) { return nil, nil }
