// Package fabric (import path "metricdrift") exercises the metricdrift
// analyzer: taxonomy fields must be summed in Total() and fed somewhere,
// atomic counters in broker/fabric packages must be both incremented and
// read, and a Metrics conversion method must carry every counter across.
package fabric

import "sync/atomic"

// Drops is a taxonomy struct: it has a Total() method, so every integer
// field must appear in the sum and be written somewhere in the module.
type Drops struct {
	QueueFull int64 // summed and fed: silent
	Shed      int64 // want "taxonomy field fabric.Drops.Shed is not summed in fabric.Drops.Total"
	Phantom   int64 // want "taxonomy field fabric.Drops.Phantom is never written anywhere in the module"
}

// Total deliberately forgets Shed.
func (d Drops) Total() int64 {
	return d.QueueFull + d.Phantom
}

// record feeds the fields Total should see (Phantom stays unfed).
func record(d *Drops) {
	d.QueueFull++
	d.Shed++
}

// health carries atomic wire counters: each must be mutated and loaded
// somewhere in the module.
type health struct {
	framesSent atomic.Int64 // bumped and snapshotted: silent
	ghost      atomic.Int64 // want "atomic counter fabric.health.ghost is never incremented anywhere in the module"
	hoarded    atomic.Int64 // want "atomic counter fabric.health.hoarded is incremented but never read anywhere in the module"
}

func (h *health) bump() {
	h.framesSent.Add(1)
	h.hoarded.Add(1)
}

func (h *health) snapshot() int64 {
	return h.framesSent.Load()
}

// Metrics is a local snapshot; its Wire conversions must consume every
// integer receiver field (snapshot parity).
type Metrics struct {
	FramesSent int64
	FramesRecv int64
	BytesSent  int64
	Corrupt    int64
}

// WireShape is the transport-neutral form Metrics converts into.
type WireShape struct {
	FramesSent int64
	FramesRecv int64
	BytesSent  int64
	Corrupt    int64
}

// Wire drops Corrupt on the floor: the counter still costs an atomic on the
// hot path but vanishes from cluster health.
func (m Metrics) Wire() WireShape { // want "metrics conversion Metrics.Wire → WireShape drops counter field\\(s\\) Corrupt"
	return WireShape{
		FramesSent: m.FramesSent,
		FramesRecv: m.FramesRecv,
		BytesSent:  m.BytesSent,
	}
}

// WireFull carries everything across: silent.
func (m Metrics) WireFull() WireShape {
	return WireShape{
		FramesSent: m.FramesSent,
		FramesRecv: m.FramesRecv,
		BytesSent:  m.BytesSent,
		Corrupt:    m.Corrupt,
	}
}
