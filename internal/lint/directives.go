package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// directive is one parsed //lint: comment.
type directive struct {
	pos       token.Pos
	file      string
	line      int
	verb      string // "ignore" or "owns"
	analyzer  string // ignore only
	reason    string
	malformed bool // recorded by validateDirectives; malformed ignores never suppress
}

// parseDirectives extracts every //lint: comment from the files. The
// supported forms are:
//
//	//lint:ignore <analyzer> <reason>  — suppress matching findings on this
//	                                     line or the next line
//	//lint:owns <reason>               — mark the enclosing function as
//	                                     transferring ownership of acquired
//	                                     object-store references
func parseDirectives(fset *token.FileSet, files []*ast.File) []directive {
	var out []directive
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//lint:")
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				d := directive{pos: c.Pos(), file: pos.Filename, line: pos.Line}
				fields := strings.Fields(text)
				if len(fields) > 0 {
					d.verb = fields[0]
				}
				switch d.verb {
				case "ignore":
					if len(fields) > 1 {
						d.analyzer = fields[1]
					}
					if len(fields) > 2 {
						d.reason = strings.Join(fields[2:], " ")
					}
				default:
					if len(fields) > 1 {
						d.reason = strings.Join(fields[1:], " ")
					}
				}
				out = append(out, d)
			}
		}
	}
	return out
}

// validateDirectives reports malformed //lint: comments as findings under
// the "directive" pseudo-analyzer: unknown verbs, unknown analyzer names in
// an ignore, and ignores or owns markers with no reason. A suppression that
// cannot explain itself is itself a contract violation.
func validateDirectives(p *Pass) {
	known := KnownAnalyzers()
	for i := range p.directives {
		d := &p.directives[i]
		switch d.verb {
		case "ignore":
			if !known[d.analyzer] {
				d.malformed = true
				if d.analyzer == "" {
					p.reportAs(DirectiveAnalyzer, d.pos, "//lint:ignore is missing an analyzer name")
				} else {
					p.reportAs(DirectiveAnalyzer, d.pos, "//lint:ignore names unknown analyzer %q", d.analyzer)
				}
				continue
			}
			if d.reason == "" {
				d.malformed = true
				p.reportAs(DirectiveAnalyzer, d.pos, "//lint:ignore %s is missing a reason", d.analyzer)
			}
		case "owns":
			if d.reason == "" {
				d.malformed = true
				p.reportAs(DirectiveAnalyzer, d.pos, "//lint:owns is missing a reason (name the new owner of the reference)")
			}
		default:
			d.malformed = true
			p.reportAs(DirectiveAnalyzer, d.pos, "unknown //lint: directive %q (known: ignore, owns)", d.verb)
		}
	}
}

// suppress drops findings covered by a well-formed //lint:ignore directive
// on the finding's line or the line directly above it. Directive-validation
// findings are never suppressible.
func suppress(findings []Finding, directives []directive) []Finding {
	type key struct {
		file     string
		line     int
		analyzer string
	}
	covered := make(map[key]bool)
	for _, d := range directives {
		if d.verb != "ignore" || d.malformed {
			continue
		}
		covered[key{d.file, d.line, d.analyzer}] = true
		covered[key{d.file, d.line + 1, d.analyzer}] = true
	}
	var out []Finding
	for _, f := range findings {
		if f.Analyzer != DirectiveAnalyzer && covered[key{f.Pos.Filename, f.Pos.Line, f.Analyzer}] {
			continue
		}
		out = append(out, f)
	}
	return out
}

// ownsMarked reports whether a //lint:owns directive falls inside [lo, hi]
// (a function body or declaration span, doc comment included).
func ownsMarked(p *Pass, lo, hi token.Pos) bool {
	return ownsDirectiveIn(p, lo, hi) != nil
}

// ownsDirectiveIn returns the first //lint:owns directive inside [lo, hi],
// or nil.
func ownsDirectiveIn(p *Pass, lo, hi token.Pos) *directive {
	for i := range p.directives {
		d := &p.directives[i]
		if d.verb == "owns" && d.pos >= lo && d.pos <= hi {
			return d
		}
	}
	return nil
}
