package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
)

// listPackage is the subset of `go list -json` output the driver consumes.
type listPackage struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
	Export     string
	Deps       []string
	Module     *struct {
		Path string
		Main bool
	}
	Error *struct {
		Err string
	}
}

// Load resolves patterns (e.g. "./...") with the go tool, parses every
// matched module package from source, and type-checks it against compiled
// export data for its dependencies. It is the stdlib-only replacement for
// golang.org/x/tools/go/packages: `go list -deps -export -json` supplies
// package metadata plus export-data files, go/parser and go/types do the
// rest.
func Load(dir string, patterns []string) ([]*Pass, error) {
	m, _, err := LoadModule(dir, patterns, nil)
	if err != nil {
		return nil, err
	}
	return m.Passes, nil
}

// LoadStats summarizes one LoadModule resolution for the JSON report.
type LoadStats struct {
	// Packages is the number of module packages matched by the patterns.
	Packages int `json:"packages"`
	// CacheHits counts packages restored from the summary cache without
	// parsing or type-checking.
	CacheHits int `json:"cache_hits"`
	// CacheMisses counts packages analyzed fresh (cache disabled counts
	// everything here).
	CacheMisses int `json:"cache_misses"`
}

// LoadModule resolves patterns like Load but returns a ready-to-Run Module.
// With a non-nil cache, packages whose key (suite version + own sources +
// dependency export data) hits a stored entry are restored as PkgFacts —
// their per-package findings replay verbatim and their summaries still feed
// the module analyzers — and only the rest are parsed and type-checked.
// Fresh results are written back to the cache by Module.Run.
func LoadModule(dir string, patterns []string, cache *Cache) (*Module, *LoadStats, error) {
	targets, exports, err := listTargets(dir, patterns)
	if err != nil {
		return nil, nil, err
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})

	stats := &LoadStats{}
	var passes []*Pass
	var restored []*PkgFacts
	keyOf := make(map[*Pass]string)
	for _, t := range targets {
		stats.Packages++
		key := ""
		if cache != nil {
			key = cache.key(t, exports)
		}
		if key != "" {
			if f, ok := cache.lookup(key); ok && f.ImportPath == t.ImportPath {
				restored = append(restored, f)
				stats.CacheHits++
				continue
			}
		}
		stats.CacheMisses++
		pass, err := checkPackage(fset, imp, t)
		if err != nil {
			return nil, nil, err
		}
		passes = append(passes, pass)
		if key != "" {
			keyOf[pass] = key
		}
	}

	m := NewModule(passes)
	for _, f := range restored {
		m.AddFacts(f)
	}
	m.cache, m.cacheKeys = cache, keyOf
	return m, stats, nil
}

// listTargets runs `go list -deps -export -json`, returning the module
// packages to analyze (sorted by import path) and the export-data file of
// every resolved package.
func listTargets(dir string, patterns []string) ([]listPackage, map[string]string, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-deps", "-export", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, nil, fmt.Errorf("go list %v: %w\n%s", patterns, err, stderr.String())
	}

	exports := make(map[string]string)
	var targets []listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, nil, fmt.Errorf("decode go list output: %w", err)
		}
		if p.Error != nil {
			return nil, nil, fmt.Errorf("load %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if p.Module != nil && !p.Standard && !p.DepOnly {
			targets = append(targets, p)
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })
	return targets, exports, nil
}

// checkPackage parses and type-checks one module package from source.
func checkPackage(fset *token.FileSet, imp types.Importer, t listPackage) (*Pass, error) {
	var files []*ast.File
	for _, name := range t.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(t.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("parse %s: %w", name, err)
		}
		files = append(files, f)
	}
	info := NewInfo()
	conf := types.Config{
		Importer: imp,
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
	}
	pkg, err := conf.Check(t.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %w", t.ImportPath, err)
	}
	return &Pass{Fset: fset, Files: files, Pkg: pkg, Info: info}, nil
}

// NewInfo allocates the full set of type-checker fact tables the analyzers
// consume.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// Run executes the analyzer suite over every pass as one module — summaries
// and the module analyzers see all packages together — and returns all
// surviving findings in deterministic order.
func Run(passes []*Pass) []Finding {
	return NewModule(passes).Run()
}
