package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// runTypeswitch enforces that every `switch` over message.Type either lists
// all declared constants of the type or carries a deliberate default clause.
// The message taxonomy routes everything — droppability, weights-class relay
// fan-out, drop accounting — so a new message class added to the enum must
// be a compile-visible decision at every classification site, not a silent
// fall-through into "not droppable" or "not weights".
//
// Matching is structural, like the rest of the suite: a named type `Type`
// declared in a package named "message". Case expressions are compared by
// constant value, so aliased constants count as covering their target.
func runTypeswitch(p *Pass) {
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok || sw.Tag == nil {
				return true
			}
			tv, ok := p.Info.Types[sw.Tag]
			if !ok {
				return true
			}
			named := derefNamed(tv.Type)
			if named == nil || !isNamedType(named, "message", "Type") {
				return true
			}
			checkTypeSwitch(p, sw, named)
			return true
		})
	}
}

// checkTypeSwitch verifies one switch over message.Type.
func checkTypeSwitch(p *Pass, sw *ast.SwitchStmt, named *types.Named) {
	consts := typeConstants(named)
	if len(consts) == 0 {
		return
	}
	covered := make(map[string]bool, len(consts))
	hasDefault := false
	for _, c := range sw.Body.List {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			hasDefault = true
			continue
		}
		for _, e := range cc.List {
			v, ok := p.Info.Types[e]
			if !ok || v.Value == nil {
				continue // non-constant case: treat as covering nothing provable
			}
			for _, tc := range consts {
				if constant.Compare(v.Value, token.EQL, tc.Val()) {
					covered[tc.Name()] = true
				}
			}
		}
	}
	if hasDefault {
		return // deliberate default: new classes funnel there visibly
	}
	var missing []string
	for _, tc := range consts {
		if !covered[tc.Name()] {
			missing = append(missing, tc.Name())
		}
	}
	if len(missing) == 0 {
		return
	}
	p.Reportf(sw.Pos(), "switch over message.Type is not exhaustive: missing %s; add the case(s) or a deliberate default",
		strings.Join(missing, ", "))
}

// typeConstants returns the constants of the named type declared in its
// package, in declaration (value) order.
func typeConstants(named *types.Named) []*types.Const {
	pkg := named.Obj().Pkg()
	if pkg == nil {
		return nil
	}
	var out []*types.Const
	scope := pkg.Scope()
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok {
			continue
		}
		if types.Identical(c.Type(), named) {
			out = append(out, c)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		return constant.Compare(out[i].Val(), token.LSS, out[j].Val())
	})
	return out
}
