package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// goleakPackages are the package names in which every goroutine literal must
// observe a stop signal. These are the packages owning long-lived channel
// infrastructure; DESIGN.md §5 requires every long-lived goroutine there to
// be owned by a struct with Start/Stop and waited on.
var goleakPackages = map[string]bool{
	"broker": true,
	"fabric": true,
	"core":   true,
}

// runGoleak reports `go func` literals in the broker, fabric, and core
// packages whose body shows no evidence of shutdown discipline. Accepted
// evidence (any one):
//
//   - a sync.WaitGroup Done/Wait call (typically `defer wg.Done()`),
//   - a channel receive or a select statement (the goroutine can observe a
//     stop/closed channel),
//   - a close() of a channel (the done-channel completion signal, paired
//     with a waiter elsewhere, as in Broker.New's router goroutine),
//   - a call whose error return is the loop exit on a closed queue — the
//     queue Get family returns ErrClosed at shutdown.
func runGoleak(p *Pass) {
	if !goleakPackages[p.Pkg.Name()] {
		return
	}
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			lit, ok := gs.Call.Fun.(*ast.FuncLit)
			if !ok {
				return true
			}
			if !glObservesStop(p, lit) {
				p.Reportf(gs.Pos(),
					"goroutine literal observes no stop signal (no WaitGroup Done/Wait, done-channel receive or close, select, or queue Get loop); it cannot be shut down")
			}
			return true
		})
	}
}

// glObservesStop scans a goroutine literal body for shutdown evidence.
func glObservesStop(p *Pass, lit *ast.FuncLit) bool {
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				found = true
			}
		case *ast.SelectStmt:
			found = true
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "close" && len(n.Args) == 1 {
				if tv, ok := p.Info.Types[n.Args[0]]; ok {
					if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
						found = true
					}
				}
			}
			f := calleeFunc(p.Info, n)
			if isMethodOn(f, "sync", "WaitGroup", "Done", "Wait") {
				found = true
			}
			if isMethodOn(f, "queue", "Queue", "Get", "GetTimeout", "TryGet") {
				found = true // returns ErrClosed at shutdown; loop exits on err
			}
		}
		return true
	})
	return found
}
