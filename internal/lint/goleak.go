package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// goleakPackages are the package names in which every spawned goroutine must
// observe a stop signal. These are the packages owning long-lived channel
// infrastructure (plus the fault-injection harness that perturbs it);
// DESIGN.md §5 requires every long-lived goroutine there to be owned by a
// struct with Start/Stop and waited on.
var goleakPackages = map[string]bool{
	"broker":      true,
	"fabric":      true,
	"core":        true,
	"faultinject": true,
}

// runGoleak reports `go` statements in the broker, fabric, core, and
// faultinject packages whose goroutine body shows no evidence of shutdown
// discipline. Both forms are checked: `go func() {...}()` literals, and
// `go x.method()` / `go fn()` where the callee is declared in the same
// package (its body is inspected; callees from other packages are out of
// scope). Accepted evidence (any one):
//
//   - a sync.WaitGroup Done/Wait call (typically `defer wg.Done()`),
//   - a channel receive or a select statement (the goroutine can observe a
//     stop/closed channel),
//   - a close() of a channel (the done-channel completion signal, paired
//     with a waiter elsewhere, as in Broker.New's router goroutine),
//   - a call whose error return is the loop exit at shutdown: the queue Get
//     family returns ErrClosed when the queue closes, buffer.Buffer
//     Next/TryNext and broker.Port Recv/TryRecv unblock the sender/receiver
//     loops the same way, and a net Accept loop exits when its listener
//     closes.
func runGoleak(p *Pass) {
	if !goleakPackages[p.Pkg.Name()] {
		return
	}
	decls := packageFuncDecls(p)
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if lit, ok := gs.Call.Fun.(*ast.FuncLit); ok {
				if !glObservesStop(p, lit.Body) {
					p.Reportf(gs.Pos(),
						"goroutine literal observes no stop signal (no WaitGroup Done/Wait, done-channel receive or close, select, or shutdown-aware blocking call); it cannot be shut down")
				}
				return true
			}
			f := calleeFunc(p.Info, gs.Call)
			if f == nil {
				return true
			}
			fd, local := decls[f]
			if !local || fd.Body == nil {
				return true // declared outside this package: out of scope
			}
			if !glObservesStop(p, fd.Body) {
				p.Reportf(gs.Pos(),
					"goroutine %s observes no stop signal (no WaitGroup Done/Wait, done-channel receive or close, select, or shutdown-aware blocking call); it cannot be shut down", f.Name())
			}
			return true
		})
	}
}

// packageFuncDecls indexes the package's function and method declarations by
// their type-checker objects, so a `go x.method()` statement can be resolved
// to the body it spawns.
func packageFuncDecls(p *Pass) map[*types.Func]*ast.FuncDecl {
	decls := make(map[*types.Func]*ast.FuncDecl)
	for _, file := range p.Files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if fn, ok := p.Info.Defs[fd.Name].(*types.Func); ok {
				decls[fn] = fd
			}
		}
	}
	return decls
}

// glObservesStop scans a goroutine body for shutdown evidence.
func glObservesStop(p *Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				found = true
			}
		case *ast.SelectStmt:
			found = true
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "close" && len(n.Args) == 1 {
				if tv, ok := p.Info.Types[n.Args[0]]; ok {
					if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
						found = true
					}
				}
			}
			f := calleeFunc(p.Info, n)
			if isMethodOn(f, "sync", "WaitGroup", "Done", "Wait") {
				found = true
			}
			if isMethodOn(f, "queue", "Queue", "Get", "GetTimeout", "TryGet") {
				found = true // returns ErrClosed at shutdown; loop exits on err
			}
			if isMethodOn(f, "buffer", "Buffer", "Next", "TryNext") {
				found = true // errors when the buffer closes; loop exits on err
			}
			if isMethodOn(f, "broker", "Port", "Recv", "TryRecv") {
				found = true // errors when the broker closes the ID queue
			}
			if isMethodOnPkgType(f, "net", "Accept") {
				found = true // accept loop exits when the listener closes
			}
		}
		return true
	})
	return found
}
