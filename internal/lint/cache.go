package lint

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
)

// SuiteVersion identifies the analyzer suite in cache keys and the JSON
// report. Bump it whenever analyzer behaviour changes: every old cache entry
// becomes an unreachable key and the module is re-analyzed from scratch.
const SuiteVersion = "xt-lint/v1"

// Cache persists one PkgFacts JSON file per package, keyed by everything
// that can change the package's analysis result:
//
//   - the suite version (analyzer changes invalidate everything),
//   - the package's own source files (content, not mtime),
//   - the export data of its transitive dependencies — a dependency's API
//     surface, which is also what the type-checker itself consumes, and
//     which changes with the toolchain version.
//
// The key deliberately does NOT include other packages' sources beyond their
// export data: a body-only edit in a dependency re-analyzes that package but
// not its importers, which is what keeps CI lint time flat as the module
// grows. Cross-package correctness is preserved because the module analyzers
// run over the merged PkgFacts every time — only parsing, type-checking, and
// fact collection are skipped.
type Cache struct {
	dir string
	// fileHash memoizes export-data content hashes: the stdlib's export
	// files are dependencies of nearly every package, so each is read once
	// per run, not once per package.
	fileHash map[string]string
}

// NewCache opens (creating on first store) a cache rooted at dir.
func NewCache(dir string) *Cache {
	return &Cache{dir: dir, fileHash: make(map[string]string)}
}

// DefaultCacheDir is the per-user cache location used when no -cache flag is
// given: <os user cache dir>/xt-lint.
func DefaultCacheDir() (string, error) {
	base, err := os.UserCacheDir()
	if err != nil {
		return "", err
	}
	return filepath.Join(base, "xt-lint"), nil
}

// key computes the cache key for one package, or "" when the package is not
// cacheable (unreadable sources or export data — analyzed fresh, never
// stored).
func (c *Cache) key(t listPackage, exports map[string]string) string {
	h := sha256.New()
	fmt.Fprintf(h, "%s\n%s\n", SuiteVersion, t.ImportPath)
	for _, name := range t.GoFiles {
		data, err := os.ReadFile(filepath.Join(t.Dir, name))
		if err != nil {
			return ""
		}
		fmt.Fprintf(h, "src %s %x\n", name, sha256.Sum256(data))
	}
	deps := append([]string(nil), t.Deps...)
	sort.Strings(deps)
	for _, dep := range deps {
		exp, ok := exports[dep]
		if !ok {
			continue // source-only dep (another target): its key covers it
		}
		fh := c.hashFile(exp)
		if fh == "" {
			return ""
		}
		fmt.Fprintf(h, "dep %s %s\n", dep, fh)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// hashFile returns the memoized content hash of one export-data file, or ""
// when unreadable.
func (c *Cache) hashFile(path string) string {
	if h, ok := c.fileHash[path]; ok {
		return h
	}
	f, err := os.Open(path)
	if err != nil {
		c.fileHash[path] = ""
		return ""
	}
	defer f.Close()
	hash := sha256.New()
	if _, err := io.Copy(hash, f); err != nil {
		c.fileHash[path] = ""
		return ""
	}
	h := hex.EncodeToString(hash.Sum(nil))
	c.fileHash[path] = h
	return h
}

// lookup restores the facts stored under key, if any. A corrupt or
// unreadable entry is a miss, never an error: the package is simply
// re-analyzed.
func (c *Cache) lookup(key string) (*PkgFacts, bool) {
	data, err := os.ReadFile(c.entryPath(key))
	if err != nil {
		return nil, false
	}
	var f PkgFacts
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, false
	}
	return &f, true
}

// store writes facts under key atomically (temp file + rename) so a crashed
// run never leaves a truncated entry behind. Store failures are swallowed:
// the cache is an accelerator, not a correctness dependency.
func (c *Cache) store(key string, f *PkgFacts) {
	if err := os.MkdirAll(c.dir, 0o755); err != nil {
		return
	}
	data, err := json.Marshal(f)
	if err != nil {
		return
	}
	tmp, err := os.CreateTemp(c.dir, "entry-*.tmp")
	if err != nil {
		return
	}
	name := tmp.Name()
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(name)
		return
	}
	if err := os.Rename(name, c.entryPath(key)); err != nil {
		os.Remove(name)
	}
}

func (c *Cache) entryPath(key string) string {
	return filepath.Join(c.dir, key+".json")
}
